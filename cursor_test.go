package skipvector

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
)

func TestCursorFullScan(t *testing.T) {
	m := New[int64]()
	for k := int64(0); k < 100; k += 5 {
		m.Insert(k, k*2)
	}
	c := m.Cursor(MinKey + 1)
	var got []int64
	for {
		k, v, ok := c.Next()
		if !ok {
			break
		}
		if v != k*2 {
			t.Fatalf("value mismatch at %d", k)
		}
		got = append(got, k)
	}
	if len(got) != 20 {
		t.Fatalf("scanned %d keys", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatal("cursor not ascending")
		}
	}
	// Exhausted cursor stays exhausted.
	if _, _, ok := c.Next(); ok {
		t.Fatal("exhausted cursor yielded a key")
	}
}

func TestCursorSeek(t *testing.T) {
	m := New[int]()
	for k := int64(0); k < 50; k++ {
		m.Insert(k, int(k))
	}
	c := m.Cursor(40)
	if k, _, ok := c.Next(); !ok || k != 40 {
		t.Fatalf("first = %d,%t", k, ok)
	}
	c.SeekTo(10)
	if k, _, ok := c.Next(); !ok || k != 10 {
		t.Fatalf("after seek = %d,%t", k, ok)
	}
	c.SeekTo(1000)
	if _, _, ok := c.Next(); ok {
		t.Fatal("seek past end should exhaust")
	}
	c.SeekTo(0)
	if k, _, ok := c.Next(); !ok || k != 0 {
		t.Fatal("re-seek after exhaustion failed")
	}
}

func TestCursorSkipsRemovedSeesAhead(t *testing.T) {
	m := New[int]()
	for k := int64(0); k < 10; k++ {
		m.Insert(k, 0)
	}
	c := m.Cursor(0)
	k, _, _ := c.Next() // 0
	if k != 0 {
		t.Fatalf("first = %d", k)
	}
	m.Remove(1)
	m.Remove(2)
	m.Insert(100, 0) // ahead of the cursor
	var rest []int64
	for {
		k, _, ok := c.Next()
		if !ok {
			break
		}
		rest = append(rest, k)
	}
	want := []int64{3, 4, 5, 6, 7, 8, 9, 100}
	if len(rest) != len(want) {
		t.Fatalf("rest = %v", rest)
	}
	for i := range want {
		if rest[i] != want[i] {
			t.Fatalf("rest = %v, want %v", rest, want)
		}
	}
}

func TestCursorEdgeKeys(t *testing.T) {
	m := New[int]()
	m.Insert(MinKey+1, 1)
	m.Insert(MaxKey-1, 2)
	c := m.Cursor(MinKey + 1)
	k1, _, ok1 := c.Next()
	k2, _, ok2 := c.Next()
	_, _, ok3 := c.Next()
	if !ok1 || k1 != MinKey+1 || !ok2 || k2 != MaxKey-1 || ok3 {
		t.Fatalf("edge scan = (%d,%t) (%d,%t) (%t)", k1, ok1, k2, ok2, ok3)
	}
}

// TestCursorSessionLifecycle verifies the cursor's pinned session: it is
// acquired lazily on the first Next, released automatically when the scan
// exhausts, released by Close mid-scan (idempotently), and re-acquired when
// a closed cursor is revived with SeekTo.
func TestCursorSessionLifecycle(t *testing.T) {
	m := New[int]()
	for k := int64(0); k < 30; k++ {
		m.Insert(k, int(k))
	}
	c := m.Cursor(0)
	if c.h != nil {
		t.Fatal("session pinned before first Next")
	}
	if k, _, ok := c.Next(); !ok || k != 0 {
		t.Fatalf("first = %d,%t", k, ok)
	}
	if c.h == nil {
		t.Fatal("first Next did not pin a session")
	}
	// Close mid-scan releases the session; a second Close is a no-op.
	c.Close()
	c.Close()
	if c.h != nil {
		t.Fatal("Close left the session pinned")
	}
	if _, _, ok := c.Next(); ok {
		t.Fatal("closed cursor yielded a key")
	}
	// SeekTo revives the cursor and Next re-pins a session.
	c.SeekTo(10)
	if k, _, ok := c.Next(); !ok || k != 10 {
		t.Fatalf("after revive = %d,%t", k, ok)
	}
	if c.h == nil {
		t.Fatal("revived cursor did not re-pin a session")
	}
	// Exhausting the scan auto-releases the session.
	for {
		if _, _, ok := c.Next(); !ok {
			break
		}
	}
	if c.h != nil {
		t.Fatal("exhausted cursor kept its session")
	}
}

// TestCursorScanUsesFinger confirms a sequential scan actually rides the
// search finger: after the first step, each Next should resume at the chunk
// the previous step finished on.
func TestCursorScanUsesFinger(t *testing.T) {
	m := New[int64]()
	const n = 3000
	for k := int64(0); k < n; k++ {
		m.Insert(k, k)
	}
	before := m.Stats()
	c := m.Cursor(0)
	count := 0
	for {
		if _, _, ok := c.Next(); !ok {
			break
		}
		count++
	}
	if count != n {
		t.Fatalf("scanned %d keys, want %d", count, n)
	}
	st := m.Stats()
	hits := st.FingerHits - before.FingerHits
	misses := st.FingerMisses - before.FingerMisses
	if hits+misses == 0 {
		t.Fatal("scan recorded no finger activity")
	}
	if rate := float64(hits) / float64(hits+misses); rate < 0.5 {
		t.Fatalf("scan finger hit rate %.2f (hits=%d misses=%d)", rate, hits, misses)
	}
}

// TestCursorUnderConcurrentChurn verifies a cursor makes monotone progress
// and only ever reports stable keys while churn happens around it.
func TestCursorUnderConcurrentChurn(t *testing.T) {
	m := New[int64]()
	const stableStep = 10
	for k := int64(0); k <= 5000; k += stableStep {
		m.Insert(k, k)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 30000; i++ {
			k := int64(i%5000) + 1
			if k%stableStep == 0 {
				k++
			}
			if i%2 == 0 {
				m.Insert(k, k)
			} else {
				m.Remove(k)
			}
		}
		close(stop)
	}()
	c := m.Cursor(0)
	prev := int64(-1)
	n := 0
	for {
		k, v, ok := c.Next()
		if !ok {
			c.SeekTo(0)
			prev = -1
			select {
			case <-stop:
				wg.Wait()
				if n == 0 {
					t.Fatal("cursor never scanned anything")
				}
				return
			default:
				continue
			}
		}
		if k <= prev {
			t.Fatalf("cursor went backwards: %d after %d", k, prev)
		}
		if v != k {
			t.Fatalf("corrupt value %d at %d", v, k)
		}
		prev = k
		n++
	}
}

// TestSnapshotCursorSeededReplay is the cursor-over-snapshot campaign: a
// seeded 10k-op tape mutates the map while snapshots pinned at known points
// carry exact model copies. Each snapshot's cursor — stepped lazily,
// interleaved with ongoing live churn and split/merge/orphan maintenance —
// must reproduce its pinned model exactly, key by key, value by value.
func TestSnapshotCursorSeededReplay(t *testing.T) {
	const (
		seed     = 0xC0FFEE
		ops      = 10_000
		keySpace = 2048
	)
	m := New[int64](WithTargetDataVectorSize(4), WithLayerCount(5))
	ref := map[int64]int64{}
	rng := rand.New(rand.NewSource(seed))

	type pinned struct {
		c     *SnapshotCursor[int64]
		s     *Snapshot[int64]
		model []int64 // interleaved key,value pairs, ascending by key
		at    int     // replay position (in pairs)
	}
	var pins []pinned

	takePin := func() {
		s := m.Snapshot()
		keys := make([]int64, 0, len(ref))
		for k := range ref {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		model := make([]int64, 0, 2*len(keys))
		for _, k := range keys {
			model = append(model, k, ref[k])
		}
		pins = append(pins, pinned{c: s.Cursor(MinKey + 1), s: s, model: model})
	}

	stepPins := func(steps int) {
		for i := range pins {
			p := &pins[i]
			for n := 0; n < steps && p.c != nil; n++ {
				k, v, ok := p.c.Next()
				if !ok {
					if p.at != len(p.model)/2 {
						t.Fatalf("pin %d: cursor exhausted after %d of %d pairs",
							i, p.at, len(p.model)/2)
					}
					p.s.Close()
					p.c = nil
					break
				}
				if p.at >= len(p.model)/2 {
					t.Fatalf("pin %d: cursor produced extra pair (%d,%d)", i, k, v)
				}
				if wk, wv := p.model[2*p.at], p.model[2*p.at+1]; k != wk || v != wv {
					t.Fatalf("pin %d: pair %d: got (%d,%d), want (%d,%d)", i, p.at, k, v, wk, wv)
				}
				p.at++
			}
		}
	}

	for i := 0; i < ops; i++ {
		k := int64(rng.Intn(keySpace))
		switch rng.Intn(6) {
		case 0, 1:
			v := int64(i)
			if m.Insert(k, v) {
				ref[k] = v
			}
		case 2:
			m.Upsert(k, int64(-i))
			ref[k] = int64(-i)
		case 3:
			m.Remove(k)
			delete(ref, k)
		case 4:
			hi := k + int64(rng.Intn(64))
			m.RangeUpdate(k, hi, func(_ int64, v int64) int64 { return v + 1 })
			for rk := range ref {
				if rk >= k && rk <= hi {
					ref[rk]++
				}
			}
		default:
			v, ok := m.Lookup(k)
			want, had := ref[k]
			if ok != had || (ok && v != want) {
				t.Fatalf("op %d: Lookup(%d) diverged from model", i, k)
			}
		}
		if i%1000 == 999 && len(pins) < 8 {
			takePin()
		}
		if i%37 == 0 {
			stepPins(3) // lazy stepping, interleaved with churn
		}
	}
	// Drain every remaining cursor to exhaustion.
	stepPins(2 * keySpace)
	for i := range pins {
		if pins[i].c != nil {
			t.Fatalf("pin %d: cursor still unfinished after full drain", i)
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}
