package skipvector

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestPublicAPIBasics(t *testing.T) {
	m := New[string]()
	if !m.Insert(1, "one") {
		t.Fatal("Insert failed")
	}
	if m.Insert(1, "uno") {
		t.Fatal("duplicate Insert succeeded")
	}
	if v, ok := m.Lookup(1); !ok || v != "one" {
		t.Fatalf("Lookup = %q,%t", v, ok)
	}
	if !m.Contains(1) || m.Contains(2) {
		t.Fatal("Contains wrong")
	}
	if !m.Remove(1) || m.Remove(1) {
		t.Fatal("Remove semantics wrong")
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestUpsert(t *testing.T) {
	m := New[string]()
	if !m.Upsert(5, "a") {
		t.Fatal("first Upsert should report insert")
	}
	if m.Upsert(5, "b") {
		t.Fatal("second Upsert should report replace")
	}
	if v, _ := m.Lookup(5); v != "b" {
		t.Fatalf("value = %q, want b", v)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestUpsertConcurrent(t *testing.T) {
	m := New[int]()
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				m.Upsert(int64(i%40), id)
				if i%7 == 0 {
					m.Remove(int64(i % 40))
				}
			}
		}(g)
	}
	wg.Wait()
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestOptionsApply(t *testing.T) {
	m := New[int](
		WithLayerCount(4),
		WithTargetDataVectorSize(8),
		WithTargetIndexVectorSize(4),
		WithMergeFactor(1.5),
		WithSortedIndex(false),
		WithSortedData(true),
		WithHazardPointers(false),
		WithSeed(7),
	)
	for k := int64(0); k < 500; k++ {
		m.Insert(k, int(k))
	}
	if m.Len() != 500 {
		t.Fatalf("Len = %d", m.Len())
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if s := m.Stats(); s.Reuses != 0 {
		t.Fatal("leak mode must not reuse nodes")
	}
}

func TestInvalidOptionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for invalid option")
		}
	}()
	New[int](WithLayerCount(-1))
}

func TestRangeQueryOrderAndBounds(t *testing.T) {
	m := New[int64]()
	for k := int64(0); k < 300; k += 3 {
		m.Insert(k, k*2)
	}
	var got []int64
	m.RangeQuery(30, 90, func(k int64, v int64) bool {
		if v != k*2 {
			t.Fatalf("value mismatch at %d", k)
		}
		got = append(got, k)
		return true
	})
	var want []int64
	for k := int64(30); k <= 90; k += 3 {
		want = append(want, k)
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("RangeQuery = %v, want %v", got, want)
	}
}

func TestRangeQueryEarlyStop(t *testing.T) {
	m := New[int]()
	for k := int64(0); k < 100; k++ {
		m.Insert(k, 0)
	}
	n := 0
	m.RangeQuery(0, 99, func(k int64, v int) bool {
		n++
		return n < 10
	})
	if n != 10 {
		t.Fatalf("visited %d, want 10", n)
	}
	// Map must be fully usable afterwards (locks released).
	if !m.Insert(1000, 1) {
		t.Fatal("Insert after early-stopped range failed")
	}
}

func TestRangeUpdateCount(t *testing.T) {
	m := New[int]()
	for k := int64(0); k < 50; k++ {
		m.Insert(k, 1)
	}
	n := m.RangeUpdate(10, 19, func(k int64, v int) int { return v + 100 })
	if n != 10 {
		t.Fatalf("updated %d, want 10", n)
	}
	for k := int64(0); k < 50; k++ {
		v, _ := m.Lookup(k)
		want := 1
		if k >= 10 && k <= 19 {
			want = 101
		}
		if v != want {
			t.Fatalf("key %d = %d, want %d", k, v, want)
		}
	}
}

func TestAscend(t *testing.T) {
	m := New[int]()
	keys := []int64{5, -3, 99, 0, 42}
	for _, k := range keys {
		m.Insert(k, int(k))
	}
	var got []int64
	m.Ascend(func(k int64, v int) bool {
		got = append(got, k)
		return true
	})
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	if fmt.Sprint(got) != fmt.Sprint(keys) {
		t.Fatalf("Ascend = %v, want %v", got, keys)
	}
}

func TestEmptyRange(t *testing.T) {
	m := New[int]()
	m.Insert(5, 5)
	called := false
	m.RangeQuery(10, 3, func(int64, int) bool { called = true; return true })
	if called {
		t.Fatal("inverted range should visit nothing")
	}
	if n := m.RangeUpdate(100, 200, func(_ int64, v int) int { return v }); n != 0 {
		t.Fatalf("empty window updated %d", n)
	}
}

func TestStructValues(t *testing.T) {
	type rec struct {
		Name string
		N    int
	}
	m := New[rec]()
	m.Insert(1, rec{Name: "x", N: 7})
	v, ok := m.Lookup(1)
	if !ok || v.Name != "x" || v.N != 7 {
		t.Fatalf("Lookup = %+v", v)
	}
}

// TestQuickMatchesReference property-tests the public API against a
// reference map + sorted-keys oracle, including range queries.
func TestQuickMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := New[int64](WithTargetDataVectorSize(4), WithTargetIndexVectorSize(4), WithLayerCount(4))
		ref := map[int64]int64{}
		for i := 0; i < 500; i++ {
			k := int64(rng.Intn(120))
			switch rng.Intn(4) {
			case 0:
				_, had := ref[k]
				if m.Insert(k, k) == had {
					return false
				}
				if !had {
					ref[k] = k
				}
			case 1:
				_, had := ref[k]
				if m.Remove(k) != had {
					return false
				}
				delete(ref, k)
			case 2:
				_, had := ref[k]
				if m.Contains(k) != had {
					return false
				}
			case 3:
				lo := k - int64(rng.Intn(20))
				hi := k + int64(rng.Intn(20))
				var got []int64
				m.RangeQuery(lo, hi, func(kk int64, _ int64) bool {
					got = append(got, kk)
					return true
				})
				var want []int64
				for rk := range ref {
					if rk >= lo && rk <= hi {
						want = append(want, rk)
					}
				}
				sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
				if fmt.Sprint(got) != fmt.Sprint(want) {
					return false
				}
			}
		}
		return m.CheckInvariants() == nil && m.Len() == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func ExampleMap() {
	m := New[string]()
	m.Insert(3, "three")
	m.Insert(1, "one")
	m.Insert(2, "two")
	m.Ascend(func(k int64, v string) bool {
		fmt.Println(k, v)
		return true
	})
	// Output:
	// 1 one
	// 2 two
	// 3 three
}

func TestNavigationAPI(t *testing.T) {
	m := New[string]()
	if _, _, ok := m.Min(); ok {
		t.Fatal("Min on empty map")
	}
	if _, _, ok := m.Max(); ok {
		t.Fatal("Max on empty map")
	}
	m.Insert(10, "ten")
	m.Insert(30, "thirty")
	m.Insert(20, "twenty")
	if k, v, ok := m.Min(); !ok || k != 10 || v != "ten" {
		t.Fatalf("Min = %d,%q,%t", k, v, ok)
	}
	if k, v, ok := m.Max(); !ok || k != 30 || v != "thirty" {
		t.Fatalf("Max = %d,%q,%t", k, v, ok)
	}
	if k, v, ok := m.Floor(25); !ok || k != 20 || v != "twenty" {
		t.Fatalf("Floor(25) = %d,%q,%t", k, v, ok)
	}
	if k, v, ok := m.Ceiling(25); !ok || k != 30 || v != "thirty" {
		t.Fatalf("Ceiling(25) = %d,%q,%t", k, v, ok)
	}
	if _, _, ok := m.Floor(5); ok {
		t.Fatal("Floor(5) should miss")
	}
	if _, _, ok := m.Ceiling(35); ok {
		t.Fatal("Ceiling(35) should miss")
	}
}

func TestNewFromSorted(t *testing.T) {
	keys := []int64{1, 5, 9, 13}
	vals := []string{"a", "b", "c", "d"}
	m, err := NewFromSorted(keys, vals)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := m.Lookup(9); !ok || v != "c" {
		t.Fatalf("Lookup(9) = %q,%t", v, ok)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if _, err := NewFromSorted([]int64{2, 1}, []string{"x", "y"}); err == nil {
		t.Fatal("descending keys accepted")
	}
	if _, err := NewFromSorted[string]([]int64{1}, nil); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
}

func TestApplyBatchFacade(t *testing.T) {
	m := New[string]()
	m.Insert(2, "two")
	m.Insert(4, "four")
	res := m.ApplyBatch([]BatchOp[string]{
		{Key: 1, Val: "one"},                   // fresh insert
		{Key: 2, Val: "TWO"},                   // overwrite
		{Key: 4, Val: "FOUR", InsertOnly: true}, // blocked: key present
		{Key: 3, Val: "three", InsertOnly: true},
		{Key: 2, Delete: true},
		{Key: 9, Delete: true}, // absent
	})
	want := []BatchOutcome{BatchInserted, BatchUpdated, BatchExists, BatchInserted, BatchRemoved, BatchAbsent}
	for i, w := range want {
		if res[i].Outcome != w {
			t.Fatalf("op %d: outcome %v, want %v", i, res[i].Outcome, w)
		}
	}
	if v, ok := m.Lookup(4); !ok || v != "four" {
		t.Fatalf("InsertOnly overwrote: Lookup(4) = %q,%t", v, ok)
	}
	if m.Contains(2) {
		t.Fatal("deleted key 2 still present")
	}
	if m.Len() != 3 { // {1, 3, 4}
		t.Fatalf("Len = %d, want 3", m.Len())
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

func TestApplyBatchFacadeDuplicateKeys(t *testing.T) {
	m := New[int]()
	res := m.ApplyBatch([]BatchOp[int]{
		{Key: 7, Val: 1},
		{Key: 7, Val: 2},
		{Key: 7, Delete: true},
		{Key: 7, Val: 3, InsertOnly: true},
	})
	want := []BatchOutcome{BatchInserted, BatchUpdated, BatchRemoved, BatchInserted}
	for i, w := range want {
		if res[i].Outcome != w {
			t.Fatalf("op %d: outcome %v, want %v", i, res[i].Outcome, w)
		}
	}
	if v, ok := m.Lookup(7); !ok || v != 3 {
		t.Fatalf("last write did not win: Lookup(7) = %d,%t", v, ok)
	}
}

func TestApplyBatchFacadeValueCopies(t *testing.T) {
	// The facade must copy each op's value: mutating the ops slice after
	// ApplyBatch returns must not reach into the map.
	m := New[[2]int]()
	ops := []BatchOp[[2]int]{{Key: 1, Val: [2]int{10, 20}}}
	m.ApplyBatch(ops)
	ops[0].Val[0] = 999
	if v, _ := m.Lookup(1); v != [2]int{10, 20} {
		t.Fatalf("stored value aliased the request slice: %v", v)
	}
}

func TestHandleUpsertAndApplyBatch(t *testing.T) {
	m := New[int](WithSearchFinger(true))
	h := m.NewHandle()
	defer h.Close()
	if !h.Upsert(3, 30) {
		t.Fatal("handle Upsert should insert")
	}
	if h.Upsert(3, 33) {
		t.Fatal("handle Upsert should replace")
	}
	for base := int64(0); base < 256; base += 16 {
		ops := make([]BatchOp[int], 16)
		for i := range ops {
			ops[i] = BatchOp[int]{Key: base + int64(i), Val: int(base) + i}
		}
		for _, r := range h.ApplyBatch(ops) {
			if r.Outcome != BatchInserted && r.Outcome != BatchUpdated {
				t.Fatalf("unexpected outcome %v", r.Outcome)
			}
		}
	}
	if m.Len() != 256 {
		t.Fatalf("Len = %d, want 256", m.Len())
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}
