// Ycsbdemo: the skip vector as a database index — a miniature version of
// the paper's Figure 6 experiment. It loads a table into the bundled
// mini-DBx1000 OLTP engine, runs YCSB transactions (16 accesses, 90% reads,
// Zipfian keys) under NO_WAIT two-phase locking, and compares the skip
// vector index against the un-chunked skip list index.
package main

import (
	"fmt"
	"log"

	"skipvector/internal/dbx"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg := dbx.DefaultYCSBConfig()
	cfg.Rows = 1 << 16
	cfg.TxnsPerThread = 2_000
	cfg.Threads = 4
	cfg.Theta = 0.6

	indexes := []dbx.Index{
		dbx.NewSkipVectorIndex(cfg.Rows),
		dbx.NewSkipListIndex(cfg.Rows),
	}
	fmt.Printf("YCSB: %d rows, %d txns/thread, %d threads, zipf theta %.1f\n\n",
		cfg.Rows, cfg.TxnsPerThread, cfg.Threads, cfg.Theta)

	for _, ix := range indexes {
		table, err := dbx.LoadTable(cfg, ix)
		if err != nil {
			return fmt.Errorf("load (%s): %w", ix.Name(), err)
		}
		res, err := dbx.RunYCSB(table, cfg)
		if err != nil {
			return fmt.Errorf("run (%s): %w", ix.Name(), err)
		}
		fmt.Printf("%-8s committed %d txns in %v  (%.0f txn/s, %d aborts)\n",
			ix.Name(), res.Committed, res.Elapsed.Round(1e6), res.Throughput, res.Aborts)
	}
	return nil
}
