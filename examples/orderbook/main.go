// Orderbook: a limit order book built on the skip vector — the classic
// "ordered map under concurrent mutation" workload that motivates the
// paper. Price levels are keys; each side of the book is one map. Matching
// needs ordered traversal from the best price, market-data snapshots need
// linearizable range queries, and order entry/cancel hammer the structure
// from many goroutines at once.
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"

	"skipvector"
	"skipvector/internal/workload"
)

// level aggregates resting quantity at one price.
type level struct {
	Qty atomic.Int64
}

// book is one side of a limit order book keyed by price (ticks).
type book struct {
	side   string
	levels *skipvector.Map[*level]
}

func newBook(side string) *book {
	return &book{
		side: side,
		levels: skipvector.New[*level](
			skipvector.WithTargetDataVectorSize(32),
			skipvector.WithLayerCount(4),
		),
	}
}

// add rests qty at price, creating the level if needed.
func (b *book) add(price, qty int64) {
	for {
		if lv, ok := b.levels.Lookup(price); ok {
			lv.Qty.Add(qty)
			return
		}
		lv := &level{}
		lv.Qty.Add(qty)
		if b.levels.Insert(price, lv) {
			return
		}
		// Lost the race to create the level; retry the lookup path.
	}
}

// cancel removes qty from price (best effort).
func (b *book) cancel(price, qty int64) {
	if lv, ok := b.levels.Lookup(price); ok {
		lv.Qty.Add(-qty)
	}
}

// depth returns the total resting quantity within a price window as one
// linearizable observation — exactly what a market-data feed wants.
func (b *book) depth(lo, hi int64) int64 {
	var total int64
	b.levels.RangeQuery(lo, hi, func(_ int64, lv *level) bool {
		if q := lv.Qty.Load(); q > 0 {
			total += q
		}
		return true
	})
	return total
}

// bestLevels returns up to n best prices with positive quantity, ascending
// from lo (for asks; a bid book would iterate a mirrored key).
func (b *book) bestLevels(lo int64, n int) []int64 {
	out := make([]int64, 0, n)
	b.levels.RangeQuery(lo, lo+1_000_000, func(p int64, lv *level) bool {
		if lv.Qty.Load() > 0 {
			out = append(out, p)
		}
		return len(out) < n
	})
	return out
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	asks := newBook("ask")
	const (
		traders   = 8
		opsEach   = 5_000
		midPrice  = 50_000
		priceBand = 2_000
	)

	var wg sync.WaitGroup
	for tr := 0; tr < traders; tr++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := workload.NewRNG(seed)
			for i := 0; i < opsEach; i++ {
				price := midPrice + rng.Intn(priceBand)
				qty := 1 + rng.Intn(100)
				switch rng.Intn(10) {
				case 0, 1: // 20% cancels
					asks.cancel(price, qty)
				default: // 80% new orders
					asks.add(price, qty)
				}
			}
		}(uint64(tr) + 1)
	}
	wg.Wait()

	fmt.Printf("ask book: %d price levels populated\n", asks.levels.Len())
	fmt.Printf("depth within 50 ticks of mid: %d\n", asks.depth(midPrice, midPrice+50))
	fmt.Printf("top 5 ask levels: %v\n", asks.bestLevels(midPrice, 5))

	// Snapshot consistency demo: take a linearizable snapshot of a band
	// while another goroutine mutates it; the snapshot is one atomic view.
	var snapshotSum int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		rng := workload.NewRNG(99)
		for i := 0; i < 2_000; i++ {
			asks.add(midPrice+rng.Intn(50), 10)
		}
	}()
	snapshotSum = asks.depth(midPrice, midPrice+50)
	<-done
	fmt.Printf("mid-mutation snapshot saw depth %d (atomic view)\n", snapshotSum)

	if err := asks.levels.CheckInvariants(); err != nil {
		return fmt.Errorf("book invariants: %w", err)
	}
	fmt.Println("order book verified")
	return nil
}
