// Quickstart: the smallest useful tour of the skipvector API — point
// operations, ordered iteration, linearizable range queries, the
// concurrency that makes the structure interesting, and a durable
// close/reopen round-trip backed by the chunk log.
package main

import (
	"fmt"
	"log"
	"os"
	"sync"

	"skipvector"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A map from int64 keys to any value type. Defaults follow the paper:
	// 6 layers, 32-entry chunks, sorted index / unsorted data vectors,
	// hazard-pointer reclamation.
	m := skipvector.New[string]()

	// Point operations.
	m.Insert(30, "thirty")
	m.Insert(10, "ten")
	m.Insert(20, "twenty")
	if v, ok := m.Lookup(20); ok {
		fmt.Println("lookup(20) =", v)
	}
	if !m.Insert(10, "TEN") {
		fmt.Println("insert(10) correctly refused: key exists (use Upsert to overwrite)")
	}
	m.Upsert(10, "TEN")

	// Ordered iteration — the reason to use an ordered map at all.
	fmt.Println("ascending contents:")
	m.Ascend(func(k int64, v string) bool {
		fmt.Printf("  %d -> %s\n", k, v)
		return true
	})

	// Linearizable range query: one atomic observation of [10,25].
	fmt.Println("range [10,25]:")
	m.RangeQuery(10, 25, func(k int64, v string) bool {
		fmt.Printf("  %d -> %s\n", k, v)
		return true
	})

	// Concurrency: the whole point. Hammer the map from several goroutines;
	// every operation is atomic and the structure stays consistent.
	counts := skipvector.New[int64](
		skipvector.WithTargetDataVectorSize(16),
		skipvector.WithSeed(42),
	)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(base int64) {
			defer wg.Done()
			for i := int64(0); i < 1000; i++ {
				counts.Insert(base*1000+i, i)
			}
		}(int64(w))
	}
	wg.Wait()
	fmt.Println("concurrent inserts landed:", counts.Len())

	// A mutating range update is a single serializable transaction.
	updated := counts.RangeUpdate(0, 499, func(k int64, v int64) int64 {
		return v + 1_000_000
	})
	fmt.Println("range-updated", updated, "values atomically")

	if err := counts.CheckInvariants(); err != nil {
		return fmt.Errorf("invariants: %w", err)
	}
	fmt.Println("structure verified")

	// Durability: the same map backed by an append-only chunk log. Close
	// and reopen the directory and every committed write comes back —
	// checkpoint bulk-load plus committed-tail replay.
	dir, err := os.MkdirTemp("", "quickstart-durable-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	d, err := skipvector.OpenDurable[string](dir, skipvector.StringCodec())
	if err != nil {
		return err
	}
	for i := int64(1); i <= 5; i++ {
		if _, err := d.Upsert(i, fmt.Sprintf("value-%d", i)); err != nil {
			return err
		}
	}
	// Compact folds the log into a checkpoint image so reopen cost stays
	// proportional to the live map, not the write history.
	if err := d.Compact(); err != nil {
		return err
	}
	if _, err := d.Upsert(6, "value-6"); err != nil {
		return err
	}
	if err := d.Close(); err != nil {
		return err
	}

	// Reopen the directory: recovery replays the log tail on top of the
	// checkpoint. After a crash, torn trailing frames are truncated and
	// every acknowledged commit survives.
	d2, err := skipvector.OpenDurable[string](dir, skipvector.StringCodec())
	if err != nil {
		return err
	}
	defer d2.Close()
	info := d2.Recovery()
	fmt.Printf("reopened durable map: %d keys (checkpoint=%d, tail records=%d)\n",
		d2.Len(), info.CheckpointKeys, info.TailRecords)
	if v, ok := d2.Lookup(6); ok {
		fmt.Println("post-checkpoint write survived reopen: 6 ->", v)
	}
	return nil
}
