// Eventindex: a time-ordered event log with windowed analytics and
// retention, the second workload family the paper's introduction motivates
// (ordered traversal / range queries under concurrent insertion).
//
// Events are keyed by (timestamp << 20 | sequence), so keys arrive in
// roughly ascending order — the adversarial pattern for chunked structures,
// since every insert lands in the rightmost chunk and forces splits there.
// Concurrent windowed readers aggregate over time ranges while a retention
// goroutine deletes expired prefixes.
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"

	"skipvector"
	"skipvector/internal/workload"
)

// event is a fixed-size log record.
type event struct {
	Source  int32
	Kind    int32
	Payload uint64
}

// eventKey packs a logical timestamp and a per-timestamp sequence number
// into an ordered int64 key.
func eventKey(ts int64, seq int64) int64 { return ts<<20 | (seq & 0xfffff) }

// keyTS recovers the timestamp from a key.
func keyTS(k int64) int64 { return k >> 20 }

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	idx := skipvector.New[event](
		skipvector.WithTargetDataVectorSize(64), // bigger chunks: append-heavy
		skipvector.WithLayerCount(5),
	)

	const (
		writers    = 4
		eventsEach = 10_000
		horizon    = 1_000 // logical time units
	)

	var (
		clock   atomic.Int64 // logical time driven by writers
		written atomic.Int64
		wg      sync.WaitGroup
	)

	// Writers append events at the advancing logical time.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(src int32, seed uint64) {
			defer wg.Done()
			rng := workload.NewRNG(seed)
			for i := 0; i < eventsEach; i++ {
				ts := clock.Load()
				if rng.Intn(16) == 0 {
					ts = clock.Add(1) // occasionally advance time
				}
				seq := rng.Intn(1 << 20)
				ev := event{Source: src, Kind: int32(rng.Intn(8)), Payload: rng.Uint64()}
				// Sequence collisions across writers are possible; retry
				// with a fresh sequence.
				for !idx.Insert(eventKey(ts, seq), ev) {
					seq = rng.Intn(1 << 20)
				}
				written.Add(1)
			}
		}(int32(w), uint64(w)+1)
	}

	// Windowed analytics: count events per kind over a sliding time window,
	// concurrent with the writers, each scan one atomic observation.
	var scans atomic.Int64
	analytics := make(chan [8]int64, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		var lastCounts [8]int64
		for i := 0; i < 200; i++ {
			now := clock.Load()
			lo := eventKey(now-10, 0)
			hi := eventKey(now+1, 0) - 1
			var counts [8]int64
			idx.RangeQuery(lo, hi, func(_ int64, ev event) bool {
				counts[ev.Kind]++
				return true
			})
			lastCounts = counts
			scans.Add(1)
		}
		analytics <- lastCounts
	}()

	// Retention: delete events older than the horizon.
	var retired atomic.Int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			cutoff := clock.Load() - horizon
			if cutoff <= 0 {
				continue
			}
			var victims []int64
			idx.RangeQuery(0, eventKey(cutoff, 0), func(k int64, _ event) bool {
				victims = append(victims, k)
				return len(victims) < 1024
			})
			for _, k := range victims {
				if idx.Remove(k) {
					retired.Add(1)
				}
			}
		}
	}()

	wg.Wait()
	counts := <-analytics

	fmt.Printf("events written:   %d\n", written.Load())
	fmt.Printf("events retained:  %d (retired %d)\n", idx.Len(), retired.Load())
	fmt.Printf("window scans run: %d\n", scans.Load())
	fmt.Printf("last window kind histogram: %v\n", counts)

	// Verify ordering end-to-end: timestamps must ascend over a full scan.
	prevTS := int64(-1)
	ordered := true
	idx.Ascend(func(k int64, _ event) bool {
		if ts := keyTS(k); ts < prevTS {
			ordered = false
			return false
		} else {
			prevTS = ts
		}
		return true
	})
	if !ordered {
		return fmt.Errorf("event log out of order")
	}
	if err := idx.CheckInvariants(); err != nil {
		return fmt.Errorf("invariants: %w", err)
	}
	fmt.Println("event index verified")
	return nil
}
