package skipvector

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"testing"

	"skipvector/internal/wal"
)

// durableHash fingerprints a durable map's full content; comparable with
// modelHash over a reference map.
func durableHash[V any](d *DurableMap[V]) uint64 {
	h := fnv.New64a()
	d.Ascend(func(k int64, v V) bool {
		fmt.Fprintf(h, "%d=%v;", k, v)
		return true
	})
	return h.Sum64()
}

// modelHash fingerprints a reference map the same way.
func modelHash(m map[int64]string) uint64 {
	keys := make([]int64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	h := fnv.New64a()
	for _, k := range keys {
		fmt.Fprintf(h, "%d=%v;", k, m[k])
	}
	return h.Sum64()
}

// metricValue extracts one metric from a durable map's Prometheus
// exposition.
func metricValue[V any](t *testing.T, d *DurableMap[V], name string) float64 {
	t.Helper()
	var buf bytes.Buffer
	if err := d.WriteMetrics(&buf); err != nil {
		t.Fatalf("WriteMetrics: %v", err)
	}
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, name+" ") {
			v, err := strconv.ParseFloat(strings.TrimPrefix(line, name+" "), 64)
			if err != nil {
				t.Fatalf("metric %s: bad value in %q", name, line)
			}
			return v
		}
	}
	t.Fatalf("metric %s not exposed", name)
	return 0
}

// verifyWALMetricIdentities gates the recovery accounting identities on a
// freshly reopened map: every scanned record was either replayed or dropped
// (uncommitted batch parts), the RecoveryInfo mirror matches the metrics,
// and no more records were scanned than the previous life appended
// (prevAppended < 0 skips the cross-life check).
func verifyWALMetricIdentities[V any](t *testing.T, d *DurableMap[V], prevAppended float64) {
	t.Helper()
	scanned := metricValue(t, d, "sv_wal_records_scanned_total")
	replayed := metricValue(t, d, "sv_wal_records_replayed_total")
	dropped := metricValue(t, d, "sv_wal_records_dropped_total")
	if scanned != replayed+dropped {
		t.Fatalf("identity violated: scanned %v != replayed %v + dropped %v", scanned, replayed, dropped)
	}
	info := d.Recovery()
	if uint64(scanned) != info.ScannedRecords || uint64(replayed) != info.ReplayedRecords || uint64(dropped) != info.DroppedRecords {
		t.Fatalf("RecoveryInfo %+v disagrees with metrics scanned=%v replayed=%v dropped=%v",
			info, scanned, replayed, dropped)
	}
	truncs := metricValue(t, d, "sv_wal_recovery_truncations_total")
	if info.Truncated != (truncs > 0) {
		t.Fatalf("truncation flag %v vs metric %v", info.Truncated, truncs)
	}
	if prevAppended >= 0 && scanned > prevAppended {
		t.Fatalf("scanned %v records but previous life appended only %v", scanned, prevAppended)
	}
}

func TestDurableRoundTrip(t *testing.T) {
	fs := wal.NewMemFS(1)
	d, err := OpenDurable[string]("/db", StringCodec(), WithWALFS(fs))
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := d.Insert(1, "one"); !ok || err != nil {
		t.Fatalf("Insert: %v %v", ok, err)
	}
	if ok, err := d.Insert(1, "dup"); ok || err != nil {
		t.Fatalf("duplicate Insert: %v %v", ok, err)
	}
	if _, err := d.Upsert(2, "two"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ApplyBatch([]BatchOp[string]{
		{Key: 3, Val: "three"}, {Key: 4, Val: "four"}, {Key: 2, Delete: true},
	}); err != nil {
		t.Fatal(err)
	}
	if err := d.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Insert(5, "five"); err != nil {
		t.Fatal(err)
	}
	if n, err := d.RangeUpdate(3, 5, func(k int64, v string) string { return v + "!" }); n != 3 || err != nil {
		t.Fatalf("RangeUpdate: %d %v", n, err)
	}
	prevAppended := metricValue(t, d, "sv_wal_records_appended_total")
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenDurable[string]("/db", StringCodec(), WithWALFS(fs))
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	want := map[int64]string{1: "one", 3: "three!", 4: "four!", 5: "five!"}
	if durableHash(d2) != modelHash(want) {
		t.Fatalf("recovered content differs: keys %v", d2.Keys())
	}
	if info := d2.Recovery(); info.Truncated || info.CheckpointKeys != 3 {
		t.Fatalf("recovery info: %+v", info)
	}
	if err := d2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	verifyWALMetricIdentities(t, d2, prevAppended)
}

func TestDurableBatchAtomicityAcrossReopen(t *testing.T) {
	// A batch's groups commit under several chunk locks; the log frames them
	// as one unit. With tiny chunks the batch spans many groups, and every
	// reopen must see all of it.
	fs := wal.NewMemFS(2)
	small := WithMapOptions(WithTargetDataVectorSize(4), WithLayerCount(3))
	d, err := OpenDurable[string]("/db", StringCodec(), WithWALFS(fs), small)
	if err != nil {
		t.Fatal(err)
	}
	var ops []BatchOp[string]
	for k := int64(0); k < 100; k++ {
		ops = append(ops, BatchOp[string]{Key: k * 3, Val: fmt.Sprintf("b%d", k)})
	}
	if _, err := d.ApplyBatch(ops); err != nil {
		t.Fatal(err)
	}
	d.Close()

	d2, err := OpenDurable[string]("/db", StringCodec(), WithWALFS(fs), small)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Len() != 100 {
		t.Fatalf("recovered %d of 100 batch keys", d2.Len())
	}
}

func TestDurableWriteAfterCloseFails(t *testing.T) {
	fs := wal.NewMemFS(3)
	d, err := OpenDurable[string]("/db", StringCodec(), WithWALFS(fs))
	if err != nil {
		t.Fatal(err)
	}
	d.Close()
	if _, err := d.Upsert(1, "late"); !errors.Is(err, wal.ErrClosed) {
		t.Fatalf("write after close acknowledged: %v", err)
	}
	if _, err := d.ApplyBatch([]BatchOp[string]{{Key: 2, Val: "late"}}); !errors.Is(err, wal.ErrClosed) {
		t.Fatalf("batch after close acknowledged: %v", err)
	}
}

func TestDurableCodecs(t *testing.T) {
	t.Run("bytes", func(t *testing.T) {
		fs := wal.NewMemFS(4)
		d, err := Open("/db", WithWALFS(fs))
		if err != nil {
			t.Fatal(err)
		}
		d.Insert(1, []byte{0x00, 0xff, 0x7f})
		d.Insert(2, nil)
		d.Close()
		d2, err := Open("/db", WithWALFS(fs))
		if err != nil {
			t.Fatal(err)
		}
		defer d2.Close()
		if v, ok := d2.Lookup(1); !ok || !bytes.Equal(v, []byte{0x00, 0xff, 0x7f}) {
			t.Fatalf("bytes round trip: %v %v", v, ok)
		}
		if v, ok := d2.Lookup(2); !ok || len(v) != 0 {
			t.Fatalf("empty bytes round trip: %v %v", v, ok)
		}
	})
	t.Run("int64", func(t *testing.T) {
		fs := wal.NewMemFS(5)
		d, err := OpenDurable[int64]("/db", Int64Codec(), WithWALFS(fs))
		if err != nil {
			t.Fatal(err)
		}
		d.Insert(1, -1<<62)
		d.Insert(2, 42)
		d.Compact()
		d.Close()
		d2, err := OpenDurable[int64]("/db", Int64Codec(), WithWALFS(fs))
		if err != nil {
			t.Fatal(err)
		}
		defer d2.Close()
		if v, _ := d2.Lookup(1); v != -1<<62 {
			t.Fatalf("int64 round trip: %d", v)
		}
		if v, _ := d2.Lookup(2); v != 42 {
			t.Fatalf("int64 round trip: %d", v)
		}
	})
}

func TestDurableOSFilesystem(t *testing.T) {
	// One pass over the real filesystem: the osFS seam (create, append,
	// fsync, rename + directory sync, truncate) behind a tmp dir.
	dir := t.TempDir() + "/db"
	d, err := OpenDurable[string](dir, StringCodec())
	if err != nil {
		t.Fatal(err)
	}
	for k := int64(0); k < 200; k++ {
		if _, err := d.Upsert(k, fmt.Sprintf("v%d", k)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Compact(); err != nil {
		t.Fatal(err)
	}
	d.Remove(100)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenDurable[string](dir, StringCodec())
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Len() != 199 {
		t.Fatalf("recovered %d keys, want 199", d2.Len())
	}
	if _, ok := d2.Lookup(100); ok {
		t.Fatal("removed key resurrected")
	}
	if info := d2.Recovery(); info.CheckpointKeys != 200 || info.TailRecords != 1 {
		t.Fatalf("recovery info: %+v", info)
	}
}
