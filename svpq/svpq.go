// Package svpq builds a concurrent priority queue on top of the skip
// vector, the application family the paper's introduction points at
// (skip-list-based priority queues in the style of Lotan/Shavit): PopMin is
// an ordered-map First+Remove, so all of the skip vector's locality and
// scalability carries over.
//
// Priorities are int64 (bounded to ±2^42; see Push). Duplicate priorities
// are allowed — each entry gets a unique sub-sequence number, and ties pop
// in FIFO-ish order of arrival.
package svpq

import (
	"fmt"
	"sync/atomic"

	"skipvector"
)

// seqBits is the number of low key bits used to disambiguate entries with
// equal priority.
const seqBits = 21

// MaxPriority bounds the priorities Push accepts (|p| < 2^42).
const MaxPriority = int64(1) << 42

// Queue is a concurrent min-priority queue. All methods are safe for
// concurrent use. The zero value is not usable; construct with New.
type Queue[V any] struct {
	m   *skipvector.Map[V]
	seq atomic.Uint64
}

// Option re-exports skip vector tuning options for the queue's underlying
// map.
type Option = skipvector.Option

// New builds an empty queue. Options tune the underlying skip vector.
func New[V any](opts ...Option) *Queue[V] {
	return &Queue[V]{m: skipvector.New[V](opts...)}
}

// key packs (priority, sequence) into an ordered map key: higher bits order
// by priority, low bits break ties by arrival.
func (q *Queue[V]) key(priority int64) int64 {
	if priority <= -MaxPriority || priority >= MaxPriority {
		panic(fmt.Sprintf("svpq: priority %d outside ±2^42", priority))
	}
	seq := q.seq.Add(1) & (1<<seqBits - 1)
	return priority<<seqBits | int64(seq)
}

// unkey recovers the priority from a packed key.
func unkey(k int64) int64 { return k >> seqBits }

// Push enqueues v with the given priority (smaller pops first).
func (q *Queue[V]) Push(priority int64, v V) {
	for {
		if q.m.Insert(q.key(priority), v) {
			return
		}
		// Sequence collision after 2^21 same-priority pushes wrapped; the
		// retry draws a fresh sequence number.
	}
}

// Item is one PushBatch element.
type Item[V any] struct {
	Priority int64
	Val      V
}

// PushBatch enqueues all items in one batched map update. Entries with
// equal or nearby priorities pack into the same data chunks, so their
// inserts commit under shared lock acquisitions — bulk event injection with
// clustered priorities is where this wins over a Push loop. Each item still
// gets its own arrival sequence number.
func (q *Queue[V]) PushBatch(items []Item[V]) {
	if len(items) == 0 {
		return
	}
	ops := make([]skipvector.BatchOp[V], len(items))
	for i, it := range items {
		ops[i] = skipvector.BatchOp[V]{Key: q.key(it.Priority), Val: it.Val, InsertOnly: true}
	}
	for i, r := range q.m.ApplyBatch(ops) {
		if r.Outcome == skipvector.BatchExists {
			// Sequence collision with a still-queued entry (2^21 same-priority
			// pushes wrapped); fall back to the retrying singleton path.
			q.Push(items[i].Priority, items[i].Val)
		}
	}
}

// PopMin dequeues the entry with the smallest priority. ok=false when the
// queue is empty.
func (q *Queue[V]) PopMin() (priority int64, v V, ok bool) {
	for {
		k, val, found := q.m.Min()
		if !found {
			var zero V
			return 0, zero, false
		}
		if q.m.Remove(k) {
			return unkey(k), val, true
		}
		// Another popper won the race for k; retry with the new minimum.
	}
}

// PeekMin returns the current minimum without removing it. The answer is a
// linearizable observation but may be stale by the time the caller acts on
// it (use PopMin for atomic take).
func (q *Queue[V]) PeekMin() (priority int64, v V, ok bool) {
	k, val, found := q.m.Min()
	if !found {
		var zero V
		return 0, zero, false
	}
	return unkey(k), val, true
}

// Len returns the number of queued entries.
func (q *Queue[V]) Len() int { return q.m.Len() }

// Snapshot pins the queue's current contents and returns an immutable view
// of it — a consistent audit of everything queued at one instant, taken in
// O(1) without pausing pushers or poppers. Close the snapshot when done.
func (q *Queue[V]) Snapshot() *Snapshot[V] {
	return &Snapshot[V]{s: q.m.Snapshot()}
}

// Snapshot is an immutable point-in-time view of a Queue. Safe for
// concurrent use; using it after Close panics.
type Snapshot[V any] struct {
	s *skipvector.Snapshot[V]
}

// Close releases the snapshot's pin. Idempotent.
func (s *Snapshot[V]) Close() { s.s.Close() }

// Len counts the snapshot's entries with a full scan.
func (s *Snapshot[V]) Len() int { return s.s.Len() }

// PeekMin returns the snapshot's minimum-priority entry (ok=false when the
// snapshot is empty). Unlike Queue.PeekMin, the answer can never go stale —
// it is the minimum at the snapshot's point in time, forever.
func (s *Snapshot[V]) PeekMin() (priority int64, v V, ok bool) {
	var zero V
	priority, v, ok = 0, zero, false
	s.s.Ascend(func(k int64, val V) bool {
		priority, v, ok = unkey(k), val, true
		return false
	})
	return
}

// Ascend calls fn for every queued entry at the snapshot's point in time, in
// pop order (ascending priority, arrival order within a priority). fn
// returning false stops early.
func (s *Snapshot[V]) Ascend(fn func(priority int64, v V) bool) {
	s.s.Ascend(func(k int64, v V) bool { return fn(unkey(k), v) })
}

// Drain pops everything, calling fn in priority order, and returns the
// number of entries drained. Concurrent pushes may extend the drain.
func (q *Queue[V]) Drain(fn func(priority int64, v V)) int {
	n := 0
	for {
		p, v, ok := q.PopMin()
		if !ok {
			return n
		}
		fn(p, v)
		n++
	}
}
