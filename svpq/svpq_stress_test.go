package svpq

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"skipvector/internal/chaos"
)

// stressChaos mirrors the core chaos stress tuning: frequent forced
// validation failures plus yields so the queue's Push/PopMin retry loops run
// against real interleavings even on few cores.
func stressChaos(seed uint64) chaos.Config {
	return chaos.Config{
		Seed:       seed,
		FailOneIn:  48,
		YieldOneIn: 24,
		DelayOneIn: 4096,
		Delay:      5 * time.Microsecond,
	}
}

// TestStressConcurrentPushPop hammers the queue with concurrent pushers and
// poppers under chaos, then checks conservation against a reference multiset:
// every priority popped or left behind was pushed exactly once, nothing was
// lost, duplicated, or invented.
func TestStressConcurrentPushPop(t *testing.T) {
	const (
		pushers = 4
		poppers = 3
	)
	pushesPerG := 4000
	if testing.Short() {
		pushesPerG = 1000
	}

	q := New[int64]()
	pushed := make([]map[int64]int, pushers) // per-pusher priority multisets
	popped := make([]map[int64]int, poppers)

	chaos.Enable(stressChaos(0x5119))
	var wg sync.WaitGroup
	var done sync.WaitGroup
	for g := 0; g < pushers; g++ {
		wg.Add(1)
		pushed[g] = make(map[int64]int)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) + 17))
			for i := 0; i < pushesPerG; i++ {
				p := int64(rng.Intn(64)) // small range forces duplicate priorities
				q.Push(p, p)
				pushed[g][p]++
			}
		}(g)
	}
	stop := make(chan struct{})
	for g := 0; g < poppers; g++ {
		done.Add(1)
		popped[g] = make(map[int64]int)
		go func(g int) {
			defer done.Done()
			for {
				p, v, ok := q.PopMin()
				if ok {
					if p != v {
						t.Errorf("PopMin returned priority %d with value %d", p, v)
						return
					}
					popped[g][p]++
					continue
				}
				select {
				case <-stop:
					return
				default:
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	done.Wait()
	rep := chaos.Disable()
	t.Logf("%v", rep)
	if t.Failed() {
		return
	}
	if rep.Fails() == 0 || rep.Perturbations() == 0 {
		t.Fatalf("chaos injected nothing: %v", rep)
	}

	// Fold the leftovers into the popped side, then compare multisets.
	leftovers := make(map[int64]int)
	drained := q.Drain(func(p int64, v int64) { leftovers[p]++ })
	if q.Len() != 0 {
		t.Fatalf("Len = %d after drain", q.Len())
	}
	want := make(map[int64]int)
	for _, m := range pushed {
		for p, n := range m {
			want[p] += n
		}
	}
	got := leftovers
	for _, m := range popped {
		for p, n := range m {
			got[p] += n
		}
	}
	if len(got) != len(want) {
		t.Fatalf("priority sets differ: got %d distinct, want %d", len(got), len(want))
	}
	for p, n := range want {
		if got[p] != n {
			t.Fatalf("priority %d: popped+drained %d times, pushed %d times (drained %d total)",
				p, got[p], n, drained)
		}
	}
}

// TestStressDrainOrdered verifies that after concurrent mixed pushes the
// final drain observes priorities in non-decreasing order — the heap property
// of the queue as realised by the underlying ordered map.
func TestStressDrainOrdered(t *testing.T) {
	const goroutines = 6
	pushesPerG := 3000
	if testing.Short() {
		pushesPerG = 800
	}
	q := New[int64]()
	chaos.Enable(stressChaos(0xd4a1))
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < pushesPerG; i++ {
				p := int64(rng.Intn(10_000)) - 5000 // negative priorities too
				q.Push(p, p)
			}
		}(g)
	}
	wg.Wait()
	rep := chaos.Disable()
	if rep.Fails() == 0 {
		t.Fatalf("chaos injected nothing: %v", rep)
	}

	last := int64(-1 << 62)
	n := q.Drain(func(p int64, v int64) {
		if p < last {
			t.Fatalf("drain out of order: %d after %d", p, last)
		}
		last = p
	})
	if want := goroutines * pushesPerG; n != want {
		t.Fatalf("drained %d entries, pushed %d", n, want)
	}
}
