package svpq

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
)

func TestEmptyQueue(t *testing.T) {
	q := New[string]()
	if _, _, ok := q.PopMin(); ok {
		t.Fatal("PopMin on empty queue")
	}
	if _, _, ok := q.PeekMin(); ok {
		t.Fatal("PeekMin on empty queue")
	}
	if q.Len() != 0 {
		t.Fatal("Len != 0")
	}
}

func TestPushPopOrder(t *testing.T) {
	q := New[int64]()
	prios := []int64{5, -2, 9, 0, 7, -8, 3}
	for _, p := range prios {
		q.Push(p, p*10)
	}
	sorted := append([]int64(nil), prios...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, want := range sorted {
		p, v, ok := q.PopMin()
		if !ok || p != want || v != want*10 {
			t.Fatalf("PopMin = %d,%d,%t want %d", p, v, ok, want)
		}
	}
	if _, _, ok := q.PopMin(); ok {
		t.Fatal("queue should be empty")
	}
}

func TestDuplicatePrioritiesFIFO(t *testing.T) {
	q := New[int]()
	for i := 0; i < 10; i++ {
		q.Push(5, i)
	}
	for want := 0; want < 10; want++ {
		p, v, ok := q.PopMin()
		if !ok || p != 5 || v != want {
			t.Fatalf("PopMin = %d,%d,%t want 5,%d", p, v, ok, want)
		}
	}
}

func TestPeekDoesNotRemove(t *testing.T) {
	q := New[string]()
	q.Push(1, "a")
	if p, v, ok := q.PeekMin(); !ok || p != 1 || v != "a" {
		t.Fatalf("PeekMin = %d,%q,%t", p, v, ok)
	}
	if q.Len() != 1 {
		t.Fatal("Peek removed the entry")
	}
}

func TestNegativeAndZeroPriorities(t *testing.T) {
	q := New[int]()
	q.Push(0, 1)
	q.Push(-100, 2)
	q.Push(100, 3)
	if p, v, _ := q.PopMin(); p != -100 || v != 2 {
		t.Fatalf("first pop = %d,%d", p, v)
	}
	if p, v, _ := q.PopMin(); p != 0 || v != 1 {
		t.Fatalf("second pop = %d,%d", p, v)
	}
}

func TestPriorityBoundsPanic(t *testing.T) {
	q := New[int]()
	for _, p := range []int64{MaxPriority, -MaxPriority} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("priority %d accepted", p)
				}
			}()
			q.Push(p, 0)
		}()
	}
	// Boundary-adjacent values are fine.
	q.Push(MaxPriority-1, 0)
	q.Push(-MaxPriority+1, 0)
}

func TestDrain(t *testing.T) {
	q := New[int]()
	for i := 0; i < 50; i++ {
		q.Push(int64(50-i), i)
	}
	prev := int64(-1 << 40)
	n := q.Drain(func(p int64, _ int) {
		if p < prev {
			t.Fatalf("drain out of order: %d after %d", p, prev)
		}
		prev = p
	})
	if n != 50 || q.Len() != 0 {
		t.Fatalf("drained %d, Len %d", n, q.Len())
	}
}

// TestConcurrentPushPop checks every pushed element is popped exactly once.
func TestConcurrentPushPop(t *testing.T) {
	q := New[int64]()
	const (
		pushers = 4
		poppers = 4
		perG    = 2000
	)
	total := int64(pushers * perG)
	var popped atomic.Int64
	seen := make([]atomic.Int32, total)
	var wg sync.WaitGroup
	for g := 0; g < pushers; g++ {
		wg.Add(1)
		go func(base int64, seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := int64(0); i < perG; i++ {
				q.Push(int64(rng.Intn(1000)), base+i)
			}
		}(int64(g)*perG, int64(g)+1)
	}
	for g := 0; g < poppers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for popped.Load() < total {
				if _, v, ok := q.PopMin(); ok {
					seen[v].Add(1)
					popped.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	for i := range seen {
		if c := seen[i].Load(); c != 1 {
			t.Fatalf("element %d popped %d times", i, c)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after full drain", q.Len())
	}
}

// TestConcurrentPopMonotonePerPopper: with pushes finished, each popper's
// sequence of popped priorities must be non-decreasing up to concurrent
// interference; globally, the multiset of popped priorities must match the
// pushed one.
func TestConcurrentPopMultisetPreserved(t *testing.T) {
	q := New[int]()
	pushed := map[int64]int{}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		p := int64(rng.Intn(100))
		pushed[p]++
		q.Push(p, 0)
	}
	var mu sync.Mutex
	got := map[int64]int{}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				p, _, ok := q.PopMin()
				if !ok {
					return
				}
				mu.Lock()
				got[p]++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(got) != len(pushed) {
		t.Fatalf("popped %d distinct priorities, want %d", len(got), len(pushed))
	}
	for p, n := range pushed {
		if got[p] != n {
			t.Fatalf("priority %d popped %d times, want %d", p, got[p], n)
		}
	}
}

func BenchmarkPushPop(b *testing.B) {
	q := New[int]()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(1))
		for pb.Next() {
			if rng.Intn(2) == 0 {
				q.Push(int64(rng.Intn(1_000_000)), 0)
			} else {
				q.PopMin()
			}
		}
	})
}

func TestPushBatch(t *testing.T) {
	q := New[string]()
	q.PushBatch([]Item[string]{
		{Priority: 5, Val: "e"},
		{Priority: 1, Val: "a"},
		{Priority: 5, Val: "e2"}, // duplicate priority in one batch
		{Priority: 3, Val: "c"},
	})
	q.PushBatch(nil)
	if q.Len() != 4 {
		t.Fatalf("Len = %d, want 4", q.Len())
	}
	var order []int64
	q.Drain(func(p int64, _ string) { order = append(order, p) })
	want := []int64{1, 3, 5, 5}
	for i, p := range want {
		if order[i] != p {
			t.Fatalf("drain order %v, want %v", order, want)
		}
	}
}

func TestPushBatchConcurrentWithPop(t *testing.T) {
	q := New[int]()
	const producers, batches, batchLen = 4, 50, 16
	var wg sync.WaitGroup
	for g := 0; g < producers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				items := make([]Item[int], batchLen)
				for i := range items {
					items[i] = Item[int]{Priority: int64(b), Val: g}
				}
				q.PushBatch(items)
			}
		}(g)
	}
	wg.Wait()
	popped := 0
	last := int64(-1 << 40)
	for {
		p, _, ok := q.PopMin()
		if !ok {
			break
		}
		if p < last {
			t.Fatalf("pop order regressed: %d after %d", p, last)
		}
		last = p
		popped++
	}
	if popped != producers*batches*batchLen {
		t.Fatalf("popped %d, want %d", popped, producers*batches*batchLen)
	}
}

func TestQueueSnapshot(t *testing.T) {
	q := New[string]()
	q.Push(30, "c")
	q.Push(10, "a")
	q.Push(20, "b")

	snap := q.Snapshot()
	defer snap.Close()

	// Pop and push after the pin: the snapshot's audit is unaffected.
	q.PopMin()
	q.Push(5, "z")

	if n := snap.Len(); n != 3 {
		t.Fatalf("snapshot Len = %d, want 3", n)
	}
	p, v, ok := snap.PeekMin()
	if !ok || p != 10 || v != "a" {
		t.Fatalf("snapshot PeekMin = (%d,%q,%t)", p, v, ok)
	}
	var order []int64
	snap.Ascend(func(pr int64, _ string) bool { order = append(order, pr); return true })
	if len(order) != 3 || order[0] != 10 || order[1] != 20 || order[2] != 30 {
		t.Fatalf("snapshot Ascend order = %v", order)
	}
	// Live queue moved on: 5 is now the minimum.
	if p, _, _ := q.PeekMin(); p != 5 {
		t.Fatalf("live PeekMin = %d, want 5", p)
	}
}
