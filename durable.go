package skipvector

import (
	"fmt"
	"io"
	"sync"
	"time"

	"skipvector/internal/core"
	"skipvector/internal/telemetry"
	"skipvector/internal/wal"
)

// Durable maps: the in-memory skip vector fronted by an append-only chunk
// log (internal/wal). Every effective mutation is logged at its
// linearization point through the core commit hook, batches are framed as
// atomic commit units, and Compact checkpoints the map through a pinned
// snapshot while writers proceed. Reopening the directory replays the
// checkpoint through the bulk-load fast path and the tail through
// ApplyBatch, reconstructing exactly the durable prefix of the history.

// SyncPolicy selects when a durable map's writes reach stable storage.
type SyncPolicy = wal.SyncPolicy

const (
	// SyncEveryCommit fsyncs before each write call returns (group commit
	// amortizes the fsync across concurrent writers). Strongest; slowest.
	SyncEveryCommit = wal.SyncEveryCommit
	// SyncInterval acknowledges immediately and fsyncs on a background
	// ticker (default 2ms): a crash loses at most the last interval.
	SyncInterval = wal.SyncInterval
	// SyncOS never fsyncs; durability is whatever the OS page cache gives.
	SyncOS = wal.SyncOS
)

// DurableOption configures OpenDurable.
type DurableOption func(*durableConfig)

type durableConfig struct {
	wal     wal.Options
	mapOpts []Option
}

// WithSyncPolicy selects the fsync policy (default SyncEveryCommit).
func WithSyncPolicy(p SyncPolicy) DurableOption {
	return func(c *durableConfig) { c.wal.Policy = p }
}

// WithSyncInterval sets the background fsync cadence under SyncInterval
// (default 2ms).
func WithSyncInterval(d time.Duration) DurableOption {
	return func(c *durableConfig) { c.wal.Interval = d }
}

// WithSegmentBytes sets the log's segment rotation size (default 64 MiB).
func WithSegmentBytes(n int64) DurableOption {
	return func(c *durableConfig) { c.wal.SegmentBytes = n }
}

// WithWALFS substitutes the log's filesystem — the crash-injection seam the
// durability test campaign drives (wal.NewMemFS). Production leaves it nil.
func WithWALFS(fs wal.FS) DurableOption {
	return func(c *durableConfig) { c.wal.FS = fs }
}

// WithMapOptions forwards in-memory map options (layer counts, chunk sizes,
// …) to the recovered map.
func WithMapOptions(opts ...Option) DurableOption {
	return func(c *durableConfig) { c.mapOpts = append(c.mapOpts, opts...) }
}

// RecoveryInfo reports what opening a durable map found in its log.
type RecoveryInfo struct {
	// CheckpointKeys is the number of mappings restored from the checkpoint;
	// TailRecords the number of log records replayed on top of it.
	CheckpointKeys int
	TailRecords    int
	// Truncated reports that a torn or corrupt frame was found and the log
	// was cut back to the last intact record; TruncatedBytes counts the
	// discarded suffix. A truncation after a crash is expected, not an error:
	// everything cut off was never acknowledged as durable.
	Truncated      bool
	TruncatedBytes int64
	// ScannedRecords = ReplayedRecords + DroppedRecords; dropped records are
	// parts of batch commit units whose commit marker didn't survive.
	ScannedRecords  uint64
	ReplayedRecords uint64
	DroppedRecords  uint64
}

// Open opens (or creates) a durable map of []byte values in dir — the
// convenience form of OpenDurable for the common raw-bytes case.
func Open(dir string, opts ...DurableOption) (*DurableMap[[]byte], error) {
	return OpenDurable(dir, BytesCodec(), opts...)
}

// OpenDurable opens (or creates) the durable map stored in dir, recovering
// its state from the chunk log: the newest checkpoint's chunk images are
// bulk-loaded in O(n), then the committed tail records are replayed through
// the batch path. A torn tail — the normal residue of a crash — is truncated
// at the first corrupt frame; only writes that were never acknowledged under
// the chosen sync policy can be lost. The returned map must be Closed.
func OpenDurable[V any](dir string, codec Codec[V], opts ...DurableOption) (*DurableMap[V], error) {
	if codec == nil {
		return nil, fmt.Errorf("skipvector: OpenDurable requires a codec")
	}
	var dc durableConfig
	for _, opt := range opts {
		opt(&dc)
	}
	log, rec, err := wal.Open(dir, dc.wal)
	if err != nil {
		return nil, err
	}

	m, tail, err := rebuild(rec, codec, dc.mapOpts)
	if err != nil {
		log.Close()
		return nil, err
	}

	d := &DurableMap[V]{
		mem:   Map[V]{m: m},
		log:   log,
		codec: codec,
		info: RecoveryInfo{
			CheckpointKeys:  len(rec.CheckpointKeys),
			TailRecords:     tail,
			Truncated:       rec.Truncated,
			TruncatedBytes:  rec.TruncatedBytes,
			ScannedRecords:  rec.ScannedRecords,
			ReplayedRecords: rec.ReplayedRecords,
			DroppedRecords:  rec.DroppedRecords,
		},
	}
	// Installed only now: recovery replay itself must not be re-logged.
	m.SetCommitHook(d.commit)
	return d, nil
}

// rebuild reconstructs the in-memory map from a recovery result: checkpoint
// images through the bulk-load fast path, tail records through ApplyBatch.
func rebuild[V any](rec *wal.Recovery, codec Codec[V], mapOpts []Option) (*core.Map[V], int, error) {
	cfg := core.DefaultConfig()
	for _, opt := range mapOpts {
		opt(&cfg)
	}
	vals := make([]*V, len(rec.CheckpointKeys))
	for i, b := range rec.CheckpointVals {
		v, err := codec.Decode(b)
		if err != nil {
			return nil, 0, fmt.Errorf("skipvector: checkpoint value for key %d: %w", rec.CheckpointKeys[i], err)
		}
		vals[i] = &v
	}
	m, err := core.BulkLoad(cfg, rec.CheckpointKeys, vals)
	if err != nil {
		return nil, 0, err
	}

	// Tail replay. Records are gathered into large batches: ApplyBatch
	// preserves same-key request order (last write wins), so concatenating
	// records reaches the same final state as applying them one by one.
	const replayBatch = 4096
	var ops []core.BatchOp[V]
	flush := func() error {
		if len(ops) == 0 {
			return nil
		}
		m.ApplyBatch(ops)
		ops = ops[:0]
		return nil
	}
	for _, r := range rec.Tail {
		for _, op := range r.Ops {
			cop := core.BatchOp[V]{Key: op.Key, Del: op.Del}
			if !op.Del {
				v, err := codec.Decode(op.Val)
				if err != nil {
					return nil, 0, fmt.Errorf("skipvector: log value for key %d: %w", op.Key, err)
				}
				cop.Val = &v
			}
			ops = append(ops, cop)
			if len(ops) >= replayBatch {
				if err := flush(); err != nil {
					return nil, 0, err
				}
			}
		}
	}
	if err := flush(); err != nil {
		return nil, 0, err
	}
	return m, len(rec.Tail), nil
}

// DurableMap is a Map whose mutations survive crashes through an append-only
// chunk log. Reads are served entirely from memory at the in-memory map's
// cost; writes additionally append to the log and, depending on the sync
// policy, wait for an fsync. All methods are safe for concurrent use.
//
// Write methods return an error: once the log fails (disk full, I/O error)
// it poisons itself, every subsequent write reports the failure, and no
// acknowledgement is ever issued for a record that didn't reach the log.
type DurableMap[V any] struct {
	mem   Map[V]
	log   *wal.Log
	codec Codec[V]
	info  RecoveryInfo

	// encPool holds per-call encode buffers: the commit hook runs
	// concurrently from many goroutines under chunk locks, so it cannot
	// share one scratch.
	encPool sync.Pool

	// compactMu serializes Compact calls.
	compactMu sync.Mutex
}

type encScratch struct {
	ops []wal.Op
	buf []byte
}

// commit is the core commit hook: encode the effective ops and append them
// at the linearization point. unit ties batch-routed ops to their commit
// unit so recovery can enforce batch atomicity.
func (d *DurableMap[V]) commit(unit uint64, _ core.CommitKind, ops []core.CommitOp[V]) {
	es, _ := d.encPool.Get().(*encScratch)
	if es == nil {
		es = &encScratch{}
	}
	wops := es.ops[:0]
	buf := es.buf[:0]
	for i := range ops {
		op := &ops[i]
		if op.Del {
			wops = append(wops, wal.Op{Key: op.Key, Del: true})
			continue
		}
		start := len(buf)
		buf = d.codec.Append(buf, *op.Val)
		wops = append(wops, wal.Op{Key: op.Key, Val: buf[start:]})
	}
	// The appends below consume wops synchronously (the log copies into its
	// own frame buffer), so the scratch is reusable on return. Append errors
	// poison the log; the write call in progress reports them on its way out.
	if unit == 0 {
		_ = d.log.AppendOps(wops)
	} else {
		_ = d.log.AppendBatchPart(unit, wops)
	}
	clear(wops)
	es.ops, es.buf = wops[:0], buf[:0]
	d.encPool.Put(es)
}

// Recovery reports what opening this map found in its log.
func (d *DurableMap[V]) Recovery() RecoveryInfo { return d.info }

// Dir returns the log directory.
func (d *DurableMap[V]) Dir() string { return d.log.Dir() }

// Insert adds k→v. It returns false when k is already present. A nil error
// means the write is durable to the extent the sync policy promises.
func (d *DurableMap[V]) Insert(k int64, v V) (bool, error) {
	ok := d.mem.Insert(k, v)
	if !ok {
		return false, d.log.Err()
	}
	return true, d.log.Commit()
}

// Upsert adds or replaces k→v, returning true on insert, false on replace.
func (d *DurableMap[V]) Upsert(k int64, v V) (bool, error) {
	ok := d.mem.Upsert(k, v)
	return ok, d.log.Commit()
}

// Remove deletes k, returning whether it was present.
func (d *DurableMap[V]) Remove(k int64) (bool, error) {
	ok := d.mem.Remove(k)
	if !ok {
		return false, d.log.Err()
	}
	return true, d.log.Commit()
}

// ApplyBatch applies ops with Map.ApplyBatch's semantics and frames them as
// one atomic commit unit in the log: recovery replays either the whole
// batch's effects or none of them, never a prefix — even though live readers
// may still observe intermediate states between chunk-run commits.
func (d *DurableMap[V]) ApplyBatch(ops []BatchOp[V]) ([]BatchResult, error) {
	unit := d.log.BeginUnit()
	results := d.mem.m.ApplyBatchLogged(unit, toCoreOps(ops))
	if err := d.log.EndUnit(unit); err != nil {
		return results, err
	}
	return results, d.log.Commit()
}

// RangeUpdate is Map.RangeUpdate with durability: the whole update set is
// logged as a single record, so recovery applies it atomically.
func (d *DurableMap[V]) RangeUpdate(lo, hi int64, fn func(k int64, v V) V) (int, error) {
	n := d.mem.RangeUpdate(lo, hi, fn)
	return n, d.log.Commit()
}

// Lookup returns the value mapped to k.
func (d *DurableMap[V]) Lookup(k int64) (V, bool) { return d.mem.Lookup(k) }

// Contains reports whether k is in the map.
func (d *DurableMap[V]) Contains(k int64) bool { return d.mem.Contains(k) }

// Len returns the number of mappings.
func (d *DurableMap[V]) Len() int { return d.mem.Len() }

// RangeQuery is Map.RangeQuery (reads never touch the log).
func (d *DurableMap[V]) RangeQuery(lo, hi int64, fn func(k int64, v V) bool) {
	d.mem.RangeQuery(lo, hi, fn)
}

// Ascend is Map.Ascend.
func (d *DurableMap[V]) Ascend(fn func(k int64, v V) bool) { d.mem.Ascend(fn) }

// Floor is Map.Floor.
func (d *DurableMap[V]) Floor(k int64) (int64, V, bool) { return d.mem.Floor(k) }

// Ceiling is Map.Ceiling.
func (d *DurableMap[V]) Ceiling(k int64) (int64, V, bool) { return d.mem.Ceiling(k) }

// Min is Map.Min.
func (d *DurableMap[V]) Min() (int64, V, bool) { return d.mem.Min() }

// Max is Map.Max.
func (d *DurableMap[V]) Max() (int64, V, bool) { return d.mem.Max() }

// Keys is Map.Keys.
func (d *DurableMap[V]) Keys() []int64 { return d.mem.Keys() }

// Cursor is Map.Cursor: a lock-free forward iterator over the live map.
func (d *DurableMap[V]) Cursor(start int64) *Cursor[V] { return d.mem.Cursor(start) }

// Snapshot is Map.Snapshot: an O(1) immutable point-in-time view.
func (d *DurableMap[V]) Snapshot() *Snapshot[V] { return d.mem.Snapshot() }

// Sync forces everything appended so far to stable storage, regardless of
// the sync policy. It returns once the fsync (possibly another committer's,
// via group commit) covers the current log tail.
func (d *DurableMap[V]) Sync() error { return d.log.Sync() }

// Compact checkpoints the map online: it pins a snapshot at a cut no batch
// commit unit straddles, streams the snapshot's live mappings as sorted
// chunk images into a new checkpoint file while writers proceed, then
// atomically swaps the log's manifest to {checkpoint + segments after the
// cut} and prunes the now-unreferenced segments. Recovery cost after Compact
// is proportional to the live set plus the post-checkpoint tail, not the
// whole write history.
func (d *DurableMap[V]) Compact() error {
	d.compactMu.Lock()
	defer d.compactMu.Unlock()

	var snap *Snapshot[V]
	cw, err := d.log.BeginCheckpoint(func() { snap = d.mem.Snapshot() })
	if err != nil {
		return err
	}
	defer snap.Close()

	// Stream the snapshot in chunk-sized runs. The image layout matches the
	// map's own chunking (vectormap.AppendImage), so recovery bulk-loads it
	// without re-sorting.
	const chunkKeys = 512
	var (
		keys []int64
		vals [][]byte
		buf  []byte
	)
	flush := func() error {
		if len(keys) == 0 {
			return nil
		}
		if err := cw.WriteChunk(keys, vals); err != nil {
			return err
		}
		keys, vals, buf = keys[:0], vals[:0], buf[:0]
		return nil
	}
	cur := snap.Cursor(MinKey + 1)
	for {
		k, v, ok := cur.Next()
		if !ok {
			break
		}
		start := len(buf)
		buf = d.codec.Append(buf, v)
		keys = append(keys, k)
		vals = append(vals, buf[start:])
		if len(keys) >= chunkKeys {
			if err := flush(); err != nil {
				cw.Abort()
				return err
			}
		}
	}
	if err := flush(); err != nil {
		cw.Abort()
		return err
	}
	return cw.Commit()
}

// Metrics returns the combined metric catalog: the in-memory map's
// instruments, the log's sv_wal_* series, and the process-global registry.
func (d *DurableMap[V]) Metrics() *telemetry.View {
	return telemetry.NewView(d.mem.m.Registry(), d.log.Registry(), telemetry.Global)
}

// WriteMetrics renders the combined catalog in Prometheus text format.
func (d *DurableMap[V]) WriteMetrics(w io.Writer) error {
	return d.Metrics().WritePrometheus(w)
}

// Stats reports the in-memory map's internal event counters.
func (d *DurableMap[V]) Stats() core.StatsSnapshot { return d.mem.Stats() }

// CheckInvariants validates the in-memory structure. Quiescent use only.
func (d *DurableMap[V]) CheckInvariants() error { return d.mem.CheckInvariants() }

// Close flushes and closes the log. The in-memory map stays readable, but
// further writes will fail. Close is not an fsync barrier under SyncOS; call
// Sync first if those writes must survive.
func (d *DurableMap[V]) Close() error { return d.log.Close() }
