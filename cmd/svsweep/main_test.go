package main

import (
	"testing"

	"skipvector/internal/workload"
)

func TestParseMix(t *testing.T) {
	m, err := parseMix("80/10/10")
	if err != nil || m != (workload.Mix{LookupPct: 80, InsertPct: 10, RemovePct: 10}) {
		t.Fatalf("parseMix = %+v, %v", m, err)
	}
	for _, bad := range []string{"80/10", "80/10/20", "a/b/c", "80/10/10/0"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("mix %q accepted", bad)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{"-param", "nonsense"},
		{"-mix", "50/50"},
		{"-bogus"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunSortednessSweepTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	err := run([]string{
		"-param", "sortedness", "-keybits", "10", "-threads", "1",
		"-duration", "10ms", "-reps", "1", "-csv",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunMergeSweepTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	err := run([]string{
		"-param", "merge", "-keybits", "10", "-threads", "1",
		"-duration", "10ms", "-reps", "1", "-mix", "0/50/50",
	})
	if err != nil {
		t.Fatal(err)
	}
}
