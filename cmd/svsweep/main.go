// Command svsweep runs one-dimensional parameter sweeps over the skip
// vector's tunables, printing throughput per setting. It generalizes the
// Figure 7 sensitivity study to every configuration axis.
//
// Usage:
//
//	svsweep -param index-size -keybits 20 -threads 4 -mix 80/10/10
//	svsweep -param merge -mix 0/50/50
//	svsweep -param data-size -duration 2s
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"skipvector/internal/bench"
	"skipvector/internal/core"
	"skipvector/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "svsweep:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("svsweep", flag.ContinueOnError)
	var (
		param    = fs.String("param", "index-size", "axis: index-size, data-size, merge, layers, sortedness")
		keybits  = fs.Int("keybits", 20, "key-range exponent")
		threads  = fs.Int("threads", 4, "worker goroutines")
		mixStr   = fs.String("mix", "80/10/10", "lookup/insert/remove percentages")
		duration = fs.Duration("duration", time.Second, "per-trial duration")
		reps     = fs.Int("reps", 3, "repetitions per cell")
		csv      = fs.Bool("csv", false, "emit CSV")
		seed     = fs.Uint64("seed", 0x5eed, "workload seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	mix, err := parseMix(*mixStr)
	if err != nil {
		return err
	}
	keyRange := bench.Pow2(*keybits)
	trial := bench.TrialConfig{
		Threads:  *threads,
		Duration: *duration,
		KeyRange: keyRange,
		Mix:      mix,
		Seed:     *seed,
	}

	type point struct {
		label string
		mut   func(*core.Config)
	}
	var points []point
	switch *param {
	case "index-size":
		for _, ti := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256} {
			ti := ti
			points = append(points, point{strconv.Itoa(ti), func(c *core.Config) {
				c.TargetIndexVectorSize = ti
			}})
		}
	case "data-size":
		for _, td := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256} {
			td := td
			points = append(points, point{strconv.Itoa(td), func(c *core.Config) {
				c.TargetDataVectorSize = td
			}})
		}
	case "merge":
		for _, f := range []float64{0.5, 1.0, 1.33, 1.67, 2.0} {
			f := f
			points = append(points, point{fmt.Sprintf("%.2f", f), func(c *core.Config) {
				c.MergeFactor = f
			}})
		}
	case "layers":
		for _, l := range []int{2, 3, 4, 5, 6, 8, 10} {
			l := l
			points = append(points, point{strconv.Itoa(l), func(c *core.Config) {
				c.LayerCount = l
			}})
		}
	case "sortedness":
		combos := []struct {
			label    string
			idx, dat bool
		}{
			{"idx-sorted/data-unsorted", true, false},
			{"idx-sorted/data-sorted", true, true},
			{"idx-unsorted/data-unsorted", false, false},
			{"idx-unsorted/data-sorted", false, true},
		}
		for _, c := range combos {
			c := c
			points = append(points, point{c.label, func(cfg *core.Config) {
				cfg.SortedIndex = c.idx
				cfg.SortedData = c.dat
			}})
		}
	default:
		return fmt.Errorf("unknown param %q", *param)
	}

	t := bench.NewTable(
		fmt.Sprintf("sweep %s: %s mix, 2^%d keys, %d threads", *param, mix, *keybits, *threads),
		*param, []string{"SV-HP"})
	for _, p := range points {
		p := p
		v := bench.Variant{Name: "SV-HP-" + p.label, New: func(r int64) bench.IntMap {
			cfg := core.DefaultConfig()
			cfg.LayerCount = bench.MinLayers(r/2, cfg.TargetDataVectorSize, cfg.TargetIndexVectorSize)
			if cfg.LayerCount < 2 {
				cfg.LayerCount = 2
			}
			p.mut(&cfg)
			return bench.NewSkipVector(cfg)
		}}
		tp, err := bench.RunAveraged(v, trial, *reps)
		if err != nil {
			return err
		}
		t.AddRow(p.label, []float64{tp})
	}
	if *csv {
		fmt.Print(t.CSV())
	} else {
		fmt.Println(t.Render())
	}
	return nil
}

func parseMix(s string) (workload.Mix, error) {
	parts := strings.Split(s, "/")
	if len(parts) != 3 {
		return workload.Mix{}, fmt.Errorf("mix %q: want lookup/insert/remove", s)
	}
	var vals [3]int
	for i, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return workload.Mix{}, err
		}
		vals[i] = n
	}
	m := workload.Mix{LookupPct: vals[0], InsertPct: vals[1], RemovePct: vals[2]}
	return m, m.Validate()
}
