package main

import (
	"strings"
	"testing"
)

func TestRunRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{"-scale", "warp"},
		{"-fig", "99"},
		{"-bogus"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunFig1Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if err := run([]string{"-fig", "1", "-scale", "quick"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFigMemQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if err := run([]string{"-fig", "mem", "-scale", "quick", "-csv"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFig7bQuickWithOverrides(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	err := run([]string{"-fig", "7b", "-scale", "quick", "-duration", "10ms", "-reps", "1"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFigureListMentionsAllFigures(t *testing.T) {
	// Guard that the "all" list and the usage string stay in sync with the
	// figure switch: run each figure name through the dispatcher with an
	// invalid scale so dispatch is exercised without timing anything.
	for _, name := range []string{"1", "4", "5", "7a", "7b", "8", "hp", "merge", "mem", "blt"} {
		err := run([]string{"-fig", name, "-scale", "nope"})
		if err == nil || !strings.Contains(err.Error(), "unknown scale") {
			t.Errorf("fig %s: dispatcher did not reach scale validation: %v", name, err)
		}
	}
}
