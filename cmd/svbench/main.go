// Command svbench regenerates the paper's microbenchmark figures (1, 4, 5,
// 7a, 7b, 8) plus the repo's own ablations (hazard-pointer cost, merge
// threshold, memory footprint, B-link-tree comparator, search-finger locality
// sweep, hot-path prefetch×branchless grid, chunk-fanout sweep, WAL
// durability cost), printing each figure as an aligned table (or CSV) of
// throughput numbers.
//
// Usage:
//
//	svbench -fig 4 -scale paper
//	svbench -fig all -scale quick -csv
//	svbench -fig finger -scale paper -reps 6 -json BENCH_finger.json
//
// The "paper" scale is the scaled-down reproduction documented in
// EXPERIMENTS.md; "quick" is a smoke-test setting.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"skipvector/internal/bench"
	"skipvector/internal/telemetry"
	"skipvector/internal/walbench"
	"skipvector/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "svbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("svbench", flag.ContinueOnError)
	var (
		fig      = fs.String("fig", "all", "figure to run: 1, 4, 5, 7a, 7b, 8, hp, merge, mem, blt, finger, batch, snapshot, hotpath, fanout, wal, shard, all")
		scale    = fs.String("scale", "paper", "experiment scale: quick or paper")
		duration = fs.Duration("duration", 0, "override per-trial duration")
		reps     = fs.Int("reps", 0, "override repetitions per cell")
		threads  = fs.String("threads", "", "override the thread-count axis (comma-separated, e.g. 1,2,4,8)")
		csv      = fs.Bool("csv", false, "emit CSV instead of aligned tables")
		jsonOut  = fs.String("json", "", "also write the emitted tables to this file as JSON")
		metrics  = fs.String("metrics", "", "serve Prometheus metrics on this address (e.g. :8090) while figures run; implies telemetry recording")
		metOut   = fs.String("metrics-out", "", "write a Prometheus snapshot to this file after the run; implies telemetry recording")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// The structures under test are created per trial inside the figure
	// runners, so the stable scrape target is the process-global registry:
	// the seqlock spin/CAS and vectormap shift-distance instruments, which
	// accumulate across every trial in the run. Per-map catalogs (restarts,
	// occupancy, hazard counters) are reachable programmatically through
	// bench.Metricser.
	if *metrics != "" || *metOut != "" {
		telemetry.SetEnabled(true)
	}
	if *metrics != "" {
		ln, err := net.Listen("tcp", *metrics)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = telemetry.Global.WritePrometheus(w)
		})
		fmt.Fprintf(os.Stderr, "[serving metrics on http://%s/metrics]\n", ln.Addr())
		go func() { _ = http.Serve(ln, mux) }()
	}
	if *metOut != "" {
		defer func() {
			f, err := os.Create(*metOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "svbench: metrics-out:", err)
				return
			}
			defer f.Close()
			if err := telemetry.Global.WritePrometheus(f); err != nil {
				fmt.Fprintln(os.Stderr, "svbench: metrics-out:", err)
			}
		}()
	}

	var s bench.Scale
	switch *scale {
	case "quick":
		s = bench.QuickScale()
	case "paper":
		s = bench.PaperScale()
	default:
		return fmt.Errorf("unknown scale %q", *scale)
	}
	if *duration > 0 {
		s.Duration = *duration
	}
	if *reps > 0 {
		s.Reps = *reps
	}
	if *threads != "" {
		ts, err := parseThreads(*threads)
		if err != nil {
			return err
		}
		s.Threads = ts
		s.YCSBThreads = ts
		if n := ts[len(ts)-1]; n > 0 {
			s.SensitivityThreads = n
		}
	}

	var emitted []*bench.Table
	emit := func(tables ...*bench.Table) {
		for _, t := range tables {
			emitted = append(emitted, t)
			if *csv {
				fmt.Print(t.CSV())
			} else {
				fmt.Println(t.Render())
			}
		}
	}
	writeJSON := func() error {
		if *jsonOut == "" {
			return nil
		}
		data, err := json.MarshalIndent(emitted, "", "  ")
		if err != nil {
			return err
		}
		return os.WriteFile(*jsonOut, append(data, '\n'), 0o644)
	}

	runFig := func(name string) error {
		start := time.Now()
		defer func() {
			fmt.Fprintf(os.Stderr, "[fig %s done in %v]\n", name, time.Since(start).Round(time.Millisecond))
		}()
		switch name {
		case "1":
			emit(bench.Fig1(s))
		case "4":
			ts, err := bench.Fig4(s)
			if err != nil {
				return err
			}
			emit(ts...)
		case "5":
			ts, err := bench.Fig5(s)
			if err != nil {
				return err
			}
			emit(ts...)
		case "7a":
			t, err := bench.Fig7a(s)
			if err != nil {
				return err
			}
			emit(t)
		case "7b":
			t, err := bench.Fig7b(s)
			if err != nil {
				return err
			}
			emit(t)
		case "8":
			ts, err := bench.Fig8(s)
			if err != nil {
				return err
			}
			emit(ts...)
		case "hp":
			t, err := bench.AblationHazardCost(s)
			if err != nil {
				return err
			}
			emit(t)
		case "merge":
			t, err := bench.AblationMergeThreshold(s)
			if err != nil {
				return err
			}
			emit(t)
		case "mem":
			emit(bench.MemoryFootprint(s.MixedRangeExps, s.Seed))
		case "blt":
			t, err := bench.AblationBLinkTree(s, workload.MixReadHeavy)
			if err != nil {
				return err
			}
			emit(t)
		case "finger":
			t, err := bench.FigFinger(s)
			if err != nil {
				return err
			}
			emit(t)
		case "batch":
			t, err := bench.FigBatch(s)
			if err != nil {
				return err
			}
			emit(t)
		case "snapshot":
			t, err := bench.FigSnapshot(s)
			if err != nil {
				return err
			}
			emit(t)
		case "hotpath":
			t, err := bench.FigHotpath(s)
			if err != nil {
				return err
			}
			emit(t)
		case "fanout":
			t, err := bench.FigFanout(s)
			if err != nil {
				return err
			}
			emit(t)
		case "wal":
			t, err := walbench.FigWAL(s)
			if err != nil {
				return err
			}
			emit(t)
		case "shard":
			ts, err := bench.FigShard(s)
			if err != nil {
				return err
			}
			rt, err := bench.FigRebalance(s)
			if err != nil {
				return err
			}
			emit(append(ts, rt)...)
		default:
			return fmt.Errorf("unknown figure %q", name)
		}
		return nil
	}

	if *fig == "all" {
		for _, name := range []string{"1", "4", "5", "7a", "7b", "8", "hp", "merge", "mem", "blt", "finger", "batch", "snapshot", "hotpath", "fanout", "wal", "shard"} {
			if err := runFig(name); err != nil {
				return err
			}
		}
		return writeJSON()
	}
	if err := runFig(*fig); err != nil {
		return err
	}
	return writeJSON()
}

// parseThreads parses the -threads axis override ("1,2,4,8").
func parseThreads(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -threads element %q (want positive ints, comma-separated)", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -threads list")
	}
	return out, nil
}
