// Command ycsbbench regenerates Figure 6: YCSB transaction throughput on
// the mini-DBx1000 engine with the skip vector (SV-HP), unrolled skip list
// (USL-HP) and plain skip list (SL-HP) as the primary index.
//
// Usage:
//
//	ycsbbench -rows 1048576 -txns 10000 -thetas 0.1,0.6,0.9 -threads 1,2,4,8
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"skipvector/internal/bench"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ycsbbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ycsbbench", flag.ContinueOnError)
	var (
		rows    = fs.Int64("rows", 1<<20, "table size in rows")
		txns    = fs.Int("txns", 10_000, "transactions per thread")
		thetas  = fs.String("thetas", "0.1,0.6,0.9", "comma-separated Zipfian thetas")
		threads = fs.String("threads", "1,2,4,8", "comma-separated thread counts")
		csv     = fs.Bool("csv", false, "emit CSV instead of aligned tables")
		seed    = fs.Uint64("seed", 0xdb1000, "workload seed")
		scanPct = fs.Int("scanpct", 0, "percent of accesses that are scans (YCSB-E style, carved out of reads)")
		scanLen = fs.Int("scanlen", 16, "rows per scan access")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	s := bench.PaperScale()
	s.YCSBRows = *rows
	s.YCSBTxns = *txns
	s.Seed = *seed
	s.YCSBScanPct = *scanPct
	s.YCSBScanLen = *scanLen

	var err error
	if s.YCSBThetas, err = parseFloats(*thetas); err != nil {
		return fmt.Errorf("-thetas: %w", err)
	}
	if s.YCSBThreads, err = parseInts(*threads); err != nil {
		return fmt.Errorf("-threads: %w", err)
	}

	tables, err := bench.Fig6(s)
	if err != nil {
		return err
	}
	for _, t := range tables {
		if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Println(t.Render())
		}
	}
	return nil
}

func parseFloats(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}
