package main

import "testing"

func TestParseHelpers(t *testing.T) {
	fs, err := parseFloats("0.1, 0.6,0.9")
	if err != nil || len(fs) != 3 || fs[1] != 0.6 {
		t.Fatalf("parseFloats = %v, %v", fs, err)
	}
	if _, err := parseFloats("0.1,x"); err == nil {
		t.Fatal("bad float accepted")
	}
	is, err := parseInts("1, 2,8")
	if err != nil || len(is) != 3 || is[2] != 8 {
		t.Fatalf("parseInts = %v, %v", is, err)
	}
	if _, err := parseInts("1,two"); err == nil {
		t.Fatal("bad int accepted")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{"-thetas", "abc"},
		{"-threads", "x"},
		{"-bogus"},
		{"-rows", "0"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	err := run([]string{"-rows", "4096", "-txns", "100", "-thetas", "0.5", "-threads", "1,2", "-csv"})
	if err != nil {
		t.Fatal(err)
	}
}
