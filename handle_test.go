package skipvector

import (
	"math/rand"
	"sync"
	"testing"
)

func TestHandleBasics(t *testing.T) {
	m := New[string]()
	h := m.NewHandle()
	defer h.Close()
	if !h.Insert(1, "one") {
		t.Fatal("Insert failed")
	}
	if h.Insert(1, "uno") {
		t.Fatal("duplicate Insert succeeded")
	}
	if v, ok := h.Lookup(1); !ok || v != "one" {
		t.Fatalf("Lookup = %q,%t", v, ok)
	}
	if !h.Contains(1) || h.Contains(2) {
		t.Fatal("Contains wrong")
	}
	h.Insert(5, "five")
	h.Insert(9, "nine")
	if k, v, ok := h.Floor(7); !ok || k != 5 || v != "five" {
		t.Fatalf("Floor(7) = %d,%q,%t", k, v, ok)
	}
	if k, v, ok := h.Ceiling(7); !ok || k != 9 || v != "nine" {
		t.Fatalf("Ceiling(7) = %d,%q,%t", k, v, ok)
	}
	if !h.Remove(1) || h.Remove(1) {
		t.Fatal("Remove semantics wrong")
	}
	// Handle and map views are the same structure.
	if m.Len() != 2 {
		t.Fatalf("Len = %d", m.Len())
	}
	if v, ok := m.Lookup(5); !ok || v != "five" {
		t.Fatalf("map Lookup(5) = %q,%t", v, ok)
	}
}

func TestHandleCloseIdempotent(t *testing.T) {
	m := New[int]()
	h := m.NewHandle()
	h.Insert(1, 1)
	h.Close()
	h.Close() // second Close must be a no-op
	if !m.Contains(1) {
		t.Fatal("key lost after handle close")
	}
}

// TestHandlesConcurrent runs one pinned handle per goroutine over disjoint
// key stripes — the intended usage pattern — and checks every result
// against a per-goroutine reference.
func TestHandlesConcurrent(t *testing.T) {
	m := New[int64]()
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := m.NewHandle()
			defer h.Close()
			base := int64(g) * 100_000
			ref := map[int64]int64{}
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 5000; i++ {
				k := base + int64(rng.Intn(512))
				switch rng.Intn(4) {
				case 0, 1:
					got := h.Insert(k, k)
					if _, had := ref[k]; got == had {
						errs <- "Insert mismatch"
						return
					}
					if got {
						ref[k] = k
					}
				case 2:
					got := h.Remove(k)
					if _, had := ref[k]; got != had {
						errs <- "Remove mismatch"
						return
					}
					delete(ref, k)
				default:
					v, got := h.Lookup(k)
					want, had := ref[k]
					if got != had || (got && v != want) {
						errs <- "Lookup mismatch"
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}

// TestSearchFingerOption verifies the WithSearchFinger ablation switch: with
// the finger off no hits or misses are counted and results are unchanged;
// with it on (the default) an ascending handle workload registers hits.
func TestSearchFingerOption(t *testing.T) {
	build := func(enabled bool) *Map[int64] {
		m := New[int64](WithSearchFinger(enabled))
		h := m.NewHandle()
		defer h.Close()
		for k := int64(0); k < 2000; k++ {
			if !h.Insert(k, k) {
				t.Fatalf("Insert(%d) failed", k)
			}
			if v, ok := h.Lookup(k); !ok || v != k {
				t.Fatalf("Lookup(%d) = %d,%t", k, v, ok)
			}
		}
		return m
	}
	off := build(false)
	if st := off.Stats(); st.FingerHits != 0 || st.FingerMisses != 0 {
		t.Fatalf("disabled finger counted activity: %+v", st)
	}
	on := build(true)
	if st := on.Stats(); st.FingerHits == 0 {
		t.Fatal("enabled finger never hit on an ascending workload")
	}
	if off.Len() != on.Len() {
		t.Fatalf("ablation changed contents: %d vs %d", off.Len(), on.Len())
	}
}
