package skipvector

// One testing.B benchmark per table/figure in the paper's evaluation
// (Section V). These are the go-bench counterparts of the cmd/svbench and
// cmd/ycsbbench drivers: each sub-benchmark measures per-operation cost for
// one (variant, parameter) cell of the corresponding figure. Run a specific
// figure with e.g.
//
//	go test -bench 'Fig4' -benchmem
//
// Concurrency scaling (the figures' X axis) comes from -cpu:
//
//	go test -bench 'Fig4' -cpu 1,2,4,8
//
// Key ranges are scaled down from the paper's 2^20..2^31 so each cell's
// prefill stays in the millisecond range; EXPERIMENTS.md records the mapping
// and the full-scale runs.

import (
	"fmt"
	"testing"

	"skipvector/internal/bench"
	"skipvector/internal/dbx"
	"skipvector/internal/seqset"
	"skipvector/internal/workload"
)

// benchVariants is the Figure 4/5 legend.
func benchVariants() []bench.Variant {
	return bench.ScalabilityVariants()
}

// runMixedOp executes one operation of a mix against m.
func runMixedOp(m bench.IntMap, mix workload.Mix, rng *workload.RNG, keyRange int64) {
	k := rng.Intn(keyRange)
	switch mix.Next(rng) {
	case workload.OpLookup:
		m.Lookup(k)
	case workload.OpInsert:
		m.Insert(k, uint64(k))
	default:
		m.Remove(k)
	}
}

// BenchmarkFig1SequentialSets reproduces Figure 1: sequential set cost for
// an 80/10/10 mix as the key range grows, for the four classic structures.
func BenchmarkFig1SequentialSets(b *testing.B) {
	makers := map[string]func() seqset.Set{
		"unsorted-vector": func() seqset.Set { return seqset.NewUnsortedVec() },
		"sorted-vector":   func() seqset.Set { return seqset.NewSortedVec() },
		"tree-map":        func() seqset.Set { return seqset.NewTreeMap() },
		"skip-list":       func() seqset.Set { return seqset.NewSkipList() },
	}
	for _, bits := range []int{8, 12, 16} {
		keyRange := bench.Pow2(bits)
		for name, mk := range makers {
			b.Run(fmt.Sprintf("%s/k%d", name, bits), func(b *testing.B) {
				set := mk()
				pf := workload.NewPrefiller(keyRange, 7)
				pf.Keys(0, pf.Count(), func(k int64) { set.Insert(k) })
				rng := workload.NewRNG(99)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					k := rng.Intn(keyRange)
					switch workload.MixReadHeavy.Next(rng) {
					case workload.OpLookup:
						set.Contains(k)
					case workload.OpInsert:
						set.Insert(k)
					default:
						set.Remove(k)
					}
				}
			})
		}
	}
}

// benchScalability is the shared body of the Figure 4 and 5 benchmarks.
func benchScalability(b *testing.B, mix workload.Mix, rangeBits []int) {
	for _, bits := range rangeBits {
		keyRange := bench.Pow2(bits)
		for _, v := range benchVariants() {
			b.Run(fmt.Sprintf("%s/k%d", v.Name, bits), func(b *testing.B) {
				m := v.New(keyRange)
				bench.Prefill(m, keyRange, 7, 4)
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					rng := workload.NewRNG(workload.NewRNG(uint64(b.N)).Uint64())
					for pb.Next() {
						runMixedOp(m, mix, rng, keyRange)
					}
				})
			})
		}
	}
}

// BenchmarkFig4Mixed801010 reproduces Figure 4: 80/10/10 throughput across
// the SV/USL/FSL variants (scale concurrency with -cpu 1,2,4,8).
func BenchmarkFig4Mixed801010(b *testing.B) {
	benchScalability(b, workload.MixReadHeavy, []int{16, 20})
}

// BenchmarkFig5WriteHeavy reproduces Figure 5: the 0/50/50 mix.
func BenchmarkFig5WriteHeavy(b *testing.B) {
	benchScalability(b, workload.MixWriteOnly, []int{16, 20})
}

// BenchmarkFig6YCSB reproduces Figure 6: YCSB transactions on the
// mini-DBx1000 with each index, per Zipfian theta.
func BenchmarkFig6YCSB(b *testing.B) {
	indexes := []struct {
		name string
		mk   func(int64) dbx.Index
	}{
		{"SV-HP", dbx.NewSkipVectorIndex},
		{"USL-HP", dbx.NewUnrolledIndex},
		{"SL-HP", dbx.NewSkipListIndex},
	}
	const rows = 1 << 16
	for _, theta := range []float64{0.1, 0.6, 0.9} {
		for _, ix := range indexes {
			b.Run(fmt.Sprintf("%s/theta%.1f", ix.name, theta), func(b *testing.B) {
				cfg := dbx.DefaultYCSBConfig()
				cfg.Rows = rows
				cfg.Theta = theta
				cfg.Threads = 1
				table, err := dbx.LoadTable(cfg, ix.mk(rows))
				if err != nil {
					b.Fatal(err)
				}
				cfg.TxnsPerThread = b.N
				b.ResetTimer()
				if _, err := dbx.RunYCSB(table, cfg); err != nil {
					b.Fatal(err)
				}
			})
		}
	}
}

// BenchmarkFig7aIndexVectorSize reproduces Figure 7a: sensitivity to the
// index chunk target size under the 80/10/10 mix.
func BenchmarkFig7aIndexVectorSize(b *testing.B) {
	const bits = 18
	keyRange := bench.Pow2(bits)
	for _, ti := range []int{2, 8, 32, 128} {
		v := bench.TunedSV(fmt.Sprintf("Ti%d", ti), 32, ti, true, false)
		b.Run(fmt.Sprintf("Ti%d", ti), func(b *testing.B) {
			m := v.New(keyRange)
			bench.Prefill(m, keyRange, 7, 4)
			rng := workload.NewRNG(3)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runMixedOp(m, workload.MixReadHeavy, rng, keyRange)
			}
		})
	}
}

// BenchmarkFig7bSortedUnsorted reproduces Figure 7b: the four
// sorted/unsorted chunk policy combinations.
func BenchmarkFig7bSortedUnsorted(b *testing.B) {
	const bits = 18
	keyRange := bench.Pow2(bits)
	combos := []struct {
		name     string
		idx, dat bool
	}{
		{"idxS-datU", true, false},
		{"idxS-datS", true, true},
		{"idxU-datU", false, false},
		{"idxU-datS", false, true},
	}
	for _, c := range combos {
		v := bench.TunedSV(c.name, 32, 32, c.idx, c.dat)
		b.Run(c.name, func(b *testing.B) {
			m := v.New(keyRange)
			bench.Prefill(m, keyRange, 7, 4)
			rng := workload.NewRNG(3)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runMixedOp(m, workload.MixReadHeavy, rng, keyRange)
			}
		})
	}
}

// BenchmarkFig8RangeOps reproduces Figure 8: mutating range operations on
// the chunked skip vector versus the un-chunked configuration.
func BenchmarkFig8RangeOps(b *testing.B) {
	const bits = 16
	keyRange := bench.Pow2(bits)
	variants := []bench.Variant{
		bench.TunedSV("SV", 32, 32, true, false),
		bench.TunedSV("SL", 1, 1, true, true),
	}
	for _, spanBits := range []int{8, 13} {
		span := bench.Pow2(spanBits)
		for _, v := range variants {
			b.Run(fmt.Sprintf("%s/span%d", v.Name, spanBits), func(b *testing.B) {
				m := v.New(keyRange)
				rm, ok := m.(bench.RangeMap)
				if !ok {
					b.Fatal("variant lacks range support")
				}
				bench.Prefill(m, keyRange, 7, 4)
				rng := workload.NewRNG(3)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					lo := rng.Intn(keyRange)
					rm.RangeUpdate(lo, lo+span-1, func(_ int64, v uint64) uint64 {
						return v + 1
					})
				}
			})
		}
	}
}

// BenchmarkAblationHazardCost isolates the hazard-pointer protocol cost
// (Section V-A's SV-HP vs SV-Leak comparison).
func BenchmarkAblationHazardCost(b *testing.B) {
	const bits = 18
	keyRange := bench.Pow2(bits)
	for _, v := range []bench.Variant{bench.SVHP, bench.SVLeak} {
		b.Run(v.Name, func(b *testing.B) {
			m := v.New(keyRange)
			bench.Prefill(m, keyRange, 7, 4)
			rng := workload.NewRNG(3)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runMixedOp(m, workload.MixReadHeavy, rng, keyRange)
			}
		})
	}
}

// BenchmarkPointOps is a plain per-operation microbenchmark of the public
// API (not tied to a figure; useful for profiling).
func BenchmarkPointOps(b *testing.B) {
	const keyRange = 1 << 18
	b.Run("Lookup", func(b *testing.B) {
		m := New[uint64]()
		for k := int64(0); k < keyRange; k += 2 {
			m.Insert(k, uint64(k))
		}
		rng := workload.NewRNG(1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Lookup(rng.Intn(keyRange))
		}
	})
	b.Run("InsertRemove", func(b *testing.B) {
		m := New[uint64]()
		rng := workload.NewRNG(2)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k := rng.Intn(keyRange)
			if i%2 == 0 {
				m.Insert(k, uint64(k))
			} else {
				m.Remove(k)
			}
		}
	})
	b.Run("RangeQuery256", func(b *testing.B) {
		m := New[uint64]()
		for k := int64(0); k < keyRange; k++ {
			m.Insert(k, uint64(k))
		}
		rng := workload.NewRNG(3)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			lo := rng.Intn(keyRange - 256)
			n := 0
			m.RangeQuery(lo, lo+255, func(int64, uint64) bool {
				n++
				return true
			})
		}
	})
}

// BenchmarkFingerLocality measures the search-finger fast path against its
// ablation for the locality spectrum: ascending lookups and cursor scans
// (near-perfect locality), ascending bulk ingest, and uniform lookups (the
// adversarial no-locality case, which bounds the finger's overhead). The
// cmd/svbench "finger" figure is the multi-threaded counterpart.
func BenchmarkFingerLocality(b *testing.B) {
	const keyRange = 1 << 18
	build := func(finger bool) *Map[uint64] {
		m := New[uint64](WithSearchFinger(finger))
		for k := int64(0); k < keyRange; k += 2 {
			m.Insert(k, uint64(k))
		}
		return m
	}
	for _, mode := range []struct {
		name   string
		finger bool
	}{{"finger-on", true}, {"finger-off", false}} {
		b.Run("SeqLookup/"+mode.name, func(b *testing.B) {
			m := build(mode.finger)
			h := m.NewHandle()
			defer h.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h.Lookup(int64(i) % keyRange)
			}
		})
		b.Run("UniformLookup/"+mode.name, func(b *testing.B) {
			m := build(mode.finger)
			h := m.NewHandle()
			defer h.Close()
			rng := workload.NewRNG(1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h.Lookup(rng.Intn(keyRange))
			}
		})
		b.Run("CursorScan/"+mode.name, func(b *testing.B) {
			m := build(mode.finger)
			cur := m.Cursor(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, ok := cur.Next(); !ok {
					cur.SeekTo(0)
				}
			}
			b.StopTimer()
			cur.Close()
		})
		b.Run("AscendingInsert/"+mode.name, func(b *testing.B) {
			m := New[uint64](WithSearchFinger(mode.finger))
			h := m.NewHandle()
			defer h.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h.Insert(int64(i), uint64(i))
			}
		})
	}
}

// BenchmarkTelemetryOnOff measures the cost of the telemetry gate on the
// hot paths: the same workloads with hot-path metric recording enabled and
// disabled. Disabled is the shipping default, so the interesting number is
// the "off" column against the pre-telemetry baseline (EXPERIMENTS.md §9
// records both gaps; the disabled gap is required to stay under 3%). Uniform
// lookups are the sensitive case — every operation pays the descent-depth
// gate — and the insert/remove mix adds the freeze-counter gate.
func BenchmarkTelemetryOnOff(b *testing.B) {
	const keyRange = 1 << 18
	prev := TelemetryEnabled()
	defer SetTelemetry(prev)
	for _, mode := range []struct {
		name string
		on   bool
	}{{"off", false}, {"on", true}} {
		b.Run("UniformLookup/"+mode.name, func(b *testing.B) {
			SetTelemetry(false) // build phase identical for both modes
			m := New[uint64]()
			for k := int64(0); k < keyRange; k += 2 {
				m.Insert(k, uint64(k))
			}
			h := m.NewHandle()
			defer h.Close()
			rng := workload.NewRNG(1)
			SetTelemetry(mode.on)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h.Lookup(rng.Intn(keyRange))
			}
		})
		b.Run("InsertRemove/"+mode.name, func(b *testing.B) {
			SetTelemetry(mode.on)
			m := New[uint64]()
			h := m.NewHandle()
			defer h.Close()
			rng := workload.NewRNG(2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := rng.Intn(keyRange)
				if i%2 == 0 {
					h.Insert(k, uint64(k))
				} else {
					h.Remove(k)
				}
			}
		})
	}
}

// BenchmarkBulkLoad compares O(n) bulk loading against incremental inserts
// for index construction (the database-index build path).
func BenchmarkBulkLoad(b *testing.B) {
	const n = 1 << 16
	keys := make([]int64, n)
	vals := make([]uint64, n)
	for i := range keys {
		keys[i] = int64(i)
		vals[i] = uint64(i)
	}
	b.Run("Bulk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m, err := NewFromSorted(keys, vals)
			if err != nil {
				b.Fatal(err)
			}
			if m.Len() != n {
				b.Fatal("short load")
			}
		}
	})
	b.Run("Incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m := New[uint64]()
			for j := range keys {
				m.Insert(keys[j], vals[j])
			}
			if m.Len() != n {
				b.Fatal("short load")
			}
		}
	})
}
