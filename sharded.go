package skipvector

import (
	"fmt"
	"io"

	"skipvector/internal/core"
	"skipvector/internal/shard"
	"skipvector/internal/telemetry"
)

// ShardedMap is a concurrent ordered map partitioned by key range across N
// independent skip vectors behind a lock-free router. It trades the single
// map's global operations for scale-out: point operations on different
// shards share no synchronization state at all (separate chunks, seqlocks,
// hazard domains), so write-heavy multi-core workloads scale with the shard
// count instead of contending on one structure.
//
// The API mirrors Map with the same by-value semantics. The differences are
// the consistency scope of multi-key operations and the missing Snapshot:
//
//   - Point operations (Insert/Upsert/Lookup/Remove/Floor/Ceiling) are
//     linearizable, exactly as on Map.
//   - ApplyBatch commits per shard: each shard's part is applied with the
//     core chunk-grouped batch (its per-chunk runs atomic), parts run in
//     parallel, and the call returns after all shards committed — but a
//     concurrent reader can observe some shards' parts before others.
//   - RangeQuery/RangeUpdate/Ascend windows crossing a shard boundary are
//     stitched from per-shard linearizable segments in key order; the whole
//     window is not one atomic operation.
//   - There is no sharded Snapshot: MVCC epochs are per shard, so pinning
//     all shards would not capture one point in time — a write racing the
//     pin loop could be visible in a later-pinned shard but invisible in an
//     earlier one. Use a single Map when point-in-time views are needed.
//
// Boundaries are not fixed at construction: SplitShard/MergeShards move
// them online (readers never block; writes into the moving range are
// briefly parked), and StartRebalancer runs a skew observer that does it
// automatically when per-shard load goes hot or cold. Point operations stay
// linearizable across a boundary move.
//
// Construct with NewSharded. All methods are safe for concurrent use.
type ShardedMap[V any] struct {
	s *shard.Sharded[V]
}

// EvenShardBounds returns interior split keys dividing [lo, hi) into the
// given number of near-equal key ranges — the bounds argument for NewSharded
// when keys are expected to be roughly uniform over a known interval. Keys
// outside [lo, hi) still route (to the first or last shard); only balance
// suffers.
func EvenShardBounds(lo, hi int64, shards int) []int64 {
	return shard.EvenBounds(lo, hi, shards)
}

// NewSharded builds a sharded map of len(splits)+1 shards, each configured
// with the paper's defaults modified by the given options. splits are the
// interior boundary keys, strictly ascending (see EvenShardBounds); an empty
// splits slice yields a single-shard map, useful as a baseline. Like New it
// panics on an invalid configuration.
//
//	m := skipvector.NewSharded[string](skipvector.EvenShardBounds(0, 1<<20, 8))
//	m.Upsert(42, "answer")        // routed to shard 0: one atomic load + binary search
//	v, ok := m.Lookup(42)
func NewSharded[V any](splits []int64, opts ...Option) *ShardedMap[V] {
	cfg := core.DefaultConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	s, err := shard.New[V](cfg, splits)
	if err != nil {
		panic(fmt.Sprintf("skipvector: %v", err))
	}
	return &ShardedMap[V]{s: s}
}

// ShardCount returns the number of shards.
func (m *ShardedMap[V]) ShardCount() int { return m.s.ShardCount() }

// ShardBounds returns the interior boundary keys (a copy).
func (m *ShardedMap[V]) ShardBounds() []int64 { return m.s.Bounds() }

// ShardFor returns the index of the shard that owns k.
func (m *ShardedMap[V]) ShardFor(k int64) int { return m.s.ShardFor(k) }

// Insert adds the mapping k→v; false when k is already present.
func (m *ShardedMap[V]) Insert(k int64, v V) bool { return m.s.Insert(k, &v) }

// Upsert adds or replaces the mapping k→v; true when newly inserted.
func (m *ShardedMap[V]) Upsert(k int64, v V) bool { return m.s.Upsert(k, &v) }

// Lookup returns the value mapped to k.
func (m *ShardedMap[V]) Lookup(k int64) (V, bool) {
	if p, ok := m.s.Lookup(k); ok {
		return *p, true
	}
	var zero V
	return zero, false
}

// Contains reports whether k is in the map.
func (m *ShardedMap[V]) Contains(k int64) bool { return m.s.Contains(k) }

// Remove deletes the mapping for k, returning whether it was present.
func (m *ShardedMap[V]) Remove(k int64) bool { return m.s.Remove(k) }

// Len returns the number of mappings (linearizable only at quiescence).
func (m *ShardedMap[V]) Len() int { return m.s.Len() }

// ApplyBatch partitions ops at shard boundaries, applies each part with the
// owning shard's chunk-grouped batch in parallel, waits for all parts to
// commit, and returns one result per op in request order. Sorted ops
// partition zero-copy; per-key last-write-wins order is preserved either
// way (same-key ops cannot span shards). See the type comment for the
// cross-shard atomicity caveat.
func (m *ShardedMap[V]) ApplyBatch(ops []BatchOp[V]) []BatchResult {
	return m.s.ApplyBatch(toCoreOps(ops))
}

// RangeQuery calls fn for every mapping with lo ≤ key ≤ hi in ascending key
// order, stitched shard by shard. Each per-shard segment is linearizable;
// the whole window is not one atomic operation when it crosses a boundary.
// fn returning false stops early; fn must not call back into the map.
func (m *ShardedMap[V]) RangeQuery(lo, hi int64, fn func(k int64, v V) bool) {
	m.s.RangeQuery(lo, hi, func(k int64, v *V) bool { return fn(k, *v) })
}

// RangeUpdate replaces the value of every mapping with lo ≤ key ≤ hi by fn's
// return value and reports how many mappings were visited. Atomic per shard
// segment, not across the whole window.
func (m *ShardedMap[V]) RangeUpdate(lo, hi int64, fn func(k int64, v V) V) int {
	return m.s.RangeUpdate(lo, hi, func(k int64, v *V) *V {
		nv := fn(k, *v)
		return &nv
	})
}

// Ascend iterates all mappings in ascending key order, stitched shard by
// shard. fn returning false stops early.
func (m *ShardedMap[V]) Ascend(fn func(k int64, v V) bool) {
	m.s.Ascend(func(k int64, v *V) bool { return fn(k, *v) })
}

// Floor returns the largest key ≤ k and its value (ok=false when none).
func (m *ShardedMap[V]) Floor(k int64) (int64, V, bool) { return unwrap[V](m.s.Floor(k)) }

// Ceiling returns the smallest key ≥ k and its value (ok=false when none).
func (m *ShardedMap[V]) Ceiling(k int64) (int64, V, bool) { return unwrap[V](m.s.Ceiling(k)) }

// Min returns the smallest key and its value (ok=false when empty).
func (m *ShardedMap[V]) Min() (int64, V, bool) { return unwrap[V](m.s.First()) }

// Max returns the largest key and its value (ok=false when empty).
func (m *ShardedMap[V]) Max() (int64, V, bool) { return unwrap[V](m.s.Last()) }

// Keys returns every key in ascending order. Quiescent use only.
func (m *ShardedMap[V]) Keys() []int64 { return m.s.Keys() }

// Cursor returns a stateful forward iterator positioned before the first key
// ≥ start. Like the Map cursor it holds no locks between Next calls — each
// step is an independent Ceiling — so it crosses shard boundaries
// transparently and can be long-lived under concurrent mutation. The cursor
// pins one session per shard it touches; Close releases them (automatic when
// the scan is exhausted).
func (m *ShardedMap[V]) Cursor(start int64) *ShardedCursor[V] {
	return &ShardedCursor[V]{m: m, next: start}
}

// ShardedCursor is a forward iterator over a ShardedMap. Not safe for
// concurrent use (the underlying map remains fully concurrent).
type ShardedCursor[V any] struct {
	m    *ShardedMap[V]
	h    *shard.Handle[V]
	next int64
	done bool
}

// Next advances to the next key ≥ the cursor position and returns it.
// ok=false means the scan is exhausted.
func (c *ShardedCursor[V]) Next() (int64, V, bool) {
	if c.done {
		var zero V
		return 0, zero, false
	}
	if c.h == nil {
		c.h = c.m.s.NewHandle()
	}
	k, v, ok := unwrap[V](c.h.Ceiling(c.next))
	if !ok {
		c.Close()
		var zero V
		return 0, zero, false
	}
	if k == MaxKey-1 {
		c.Close()
	} else {
		c.next = k + 1
	}
	return k, v, true
}

// SeekTo repositions the cursor before the first key ≥ start.
func (c *ShardedCursor[V]) SeekTo(start int64) {
	c.next = start
	c.done = false
}

// Close releases the cursor's pinned sessions. Idempotent; a closed cursor
// can be revived with SeekTo followed by Next.
func (c *ShardedCursor[V]) Close() {
	if c.h != nil {
		c.h.Close()
		c.h = nil
	}
	c.done = true
}

// NewHandle pins a per-goroutine session: one core session per shard the
// caller touches, opened lazily, so key locality becomes search-finger hits
// inside the owning shard. Not safe for concurrent use; Close it.
func (m *ShardedMap[V]) NewHandle() *ShardedHandle[V] {
	return &ShardedHandle[V]{h: m.s.NewHandle()}
}

// ShardedHandle is a single-goroutine session over a ShardedMap. See
// ShardedMap.NewHandle.
type ShardedHandle[V any] struct {
	h *shard.Handle[V]
}

// Close returns the session's resources. Idempotent.
func (h *ShardedHandle[V]) Close() { h.h.Close() }

// Insert is ShardedMap.Insert through the pinned session.
func (h *ShardedHandle[V]) Insert(k int64, v V) bool { return h.h.Insert(k, &v) }

// Upsert is ShardedMap.Upsert through the pinned session.
func (h *ShardedHandle[V]) Upsert(k int64, v V) bool { return h.h.Upsert(k, &v) }

// Lookup is ShardedMap.Lookup through the pinned session.
func (h *ShardedHandle[V]) Lookup(k int64) (V, bool) {
	if p, ok := h.h.Lookup(k); ok {
		return *p, true
	}
	var zero V
	return zero, false
}

// Contains is ShardedMap.Contains through the pinned session.
func (h *ShardedHandle[V]) Contains(k int64) bool { return h.h.Contains(k) }

// Remove is ShardedMap.Remove through the pinned session.
func (h *ShardedHandle[V]) Remove(k int64) bool { return h.h.Remove(k) }

// ApplyBatch is ShardedMap.ApplyBatch through the pinned session: batches
// confined to one shard run on that shard's pinned session (finger-resumable);
// cross-shard batches fall back to the parallel fan-out.
func (h *ShardedHandle[V]) ApplyBatch(ops []BatchOp[V]) []BatchResult {
	return h.h.ApplyBatch(toCoreOps(ops))
}

// Floor is ShardedMap.Floor through the pinned session.
func (h *ShardedHandle[V]) Floor(k int64) (int64, V, bool) { return unwrap[V](h.h.Floor(k)) }

// Ceiling is ShardedMap.Ceiling through the pinned session.
func (h *ShardedHandle[V]) Ceiling(k int64) (int64, V, bool) { return unwrap[V](h.h.Ceiling(k)) }

// ShardStats reports each shard's internal event counters, indexed by shard.
func (m *ShardedMap[V]) ShardStats() []core.StatsSnapshot { return m.s.ShardStats() }

// RebalanceConfig tunes the skew observer: observation interval, hot/cold
// thresholds as multiples of the fair per-shard share, and floors that keep
// the planner from acting on noise. The zero value uses the defaults
// documented on each field.
type RebalanceConfig = shard.RebalanceConfig

// Migration reports what one online boundary move did: kind, pairs copied
// through the pinned snapshots, sealed-window reconcile fixes, how long the
// write redirect was in force, and the resulting bounds — or the step an
// injected abort stopped at.
type Migration = shard.Migration

// ShardLoadStat is one shard's standing in the current boundary table: ops
// routed to it since the table was published, and its current occupancy.
type ShardLoadStat = shard.ShardLoadStat

// ShardLoadStats samples each shard's op count and occupancy — the skew
// observer's input, exposed for external planners and diagnostics.
func (m *ShardedMap[V]) ShardLoadStats() []ShardLoadStat { return m.s.LoadStats() }

// SplitShard splits shard i at key online: keys below key stay left, keys
// at or above it go right, and the boundary table gains a split. Readers
// never block; writes into shard i's range are parked for the brief sealed
// window (micro- to milliseconds) while the final delta is reconciled.
func (m *ShardedMap[V]) SplitShard(i int, key int64) (Migration, error) {
	return m.s.SplitShard(i, key)
}

// MergeShards merges shards i and i+1 online, dropping the split between
// them. Same online protocol and blocking behavior as SplitShard.
func (m *ShardedMap[V]) MergeShards(i int) (Migration, error) { return m.s.MergeShards(i) }

// Rebalance runs one observe→plan→migrate pass: split the hottest shard at
// its occupancy median or merge the coldest adjacent pair, at most one move
// per call. It reports the migration and whether a move was attempted.
func (m *ShardedMap[V]) Rebalance(cfg RebalanceConfig) (Migration, bool, error) {
	return m.s.Rebalance(cfg)
}

// StartRebalancer runs Rebalance every cfg.Interval in a background
// goroutine until StopRebalancer. Starting twice is an error.
func (m *ShardedMap[V]) StartRebalancer(cfg RebalanceConfig) error { return m.s.StartRebalancer(cfg) }

// StopRebalancer stops the background skew observer and waits for it (any
// in-flight migration completes first). No-op when not running.
func (m *ShardedMap[V]) StopRebalancer() { m.s.StopRebalancer() }

// Metrics returns the combined metric catalog: the router's own instruments
// (sv_shard_count, fan-out counters), every shard's registry — each labeled
// shard="i" so same-named families export as distinct series — and the
// process-global instruments, as one exposable view.
func (m *ShardedMap[V]) Metrics() *telemetry.View { return m.s.Metrics() }

// WriteMetrics renders the combined catalog in Prometheus text exposition
// format.
func (m *ShardedMap[V]) WriteMetrics(w io.Writer) error { return m.s.WriteMetrics(w) }

// FlushRetired forces a reclamation scan on every shard. Tests and teardown.
func (m *ShardedMap[V]) FlushRetired() { m.s.FlushRetired() }

// CheckInvariants validates every shard's structure and the routing
// invariant (each shard holds only keys inside its boundary interval).
// Quiescent use only.
func (m *ShardedMap[V]) CheckInvariants() error { return m.s.CheckInvariants() }
