package skipvector

import (
	"encoding/binary"
	"fmt"
	"sort"
	"testing"
	"time"
)

// TestShardedMapRebalanceFacade exercises the online-boundary API through
// the public facade: split, merge, one-shot planner pass, load sampling,
// and the background rebalancer lifecycle — with the content intact and
// invariants green across every move.
func TestShardedMapRebalanceFacade(t *testing.T) {
	m := newShardedTest(t)
	for k := int64(0); k < 40; k++ {
		m.Upsert(k, fmt.Sprintf("v%d", k))
	}

	rep, err := m.SplitShard(0, 5)
	if err != nil {
		t.Fatalf("SplitShard: %v", err)
	}
	if rep.Aborted || rep.Kind != "split" {
		t.Fatalf("split report %+v", rep)
	}
	if m.ShardCount() != 5 || m.ShardFor(4) != 0 || m.ShardFor(5) != 1 {
		t.Fatalf("post-split routing: %d shards, bounds %v", m.ShardCount(), m.ShardBounds())
	}

	if rep, err = m.MergeShards(0); err != nil || rep.Kind != "merge" {
		t.Fatalf("MergeShards: %+v %v", rep, err)
	}
	if m.ShardCount() != 4 {
		t.Fatalf("post-merge shards = %d", m.ShardCount())
	}

	// The load observer sees the ops the facade routed.
	for i := 0; i < 64; i++ {
		m.Contains(int64(i % 40))
	}
	stats := m.ShardLoadStats()
	if len(stats) != 4 {
		t.Fatalf("ShardLoadStats = %d entries", len(stats))
	}
	var ops int64
	for _, st := range stats {
		ops += st.Ops
	}
	if ops == 0 {
		t.Fatal("load observer recorded nothing")
	}

	// One-shot planner pass: every op above went to a tiny window, so with
	// permissive thresholds it must act (split the hottest shard).
	if _, moved, err := m.Rebalance(RebalanceConfig{MinOps: 1, MinKeys: 2, HotFactor: 1.01}); err != nil {
		t.Fatalf("Rebalance: %v", err)
	} else if !moved {
		t.Log("planner saw no skew worth acting on (balanced window)")
	}

	if err := m.StartRebalancer(RebalanceConfig{Interval: time.Millisecond}); err != nil {
		t.Fatalf("StartRebalancer: %v", err)
	}
	if err := m.StartRebalancer(RebalanceConfig{}); err == nil {
		t.Fatal("second StartRebalancer must fail")
	}
	m.StopRebalancer()
	m.StopRebalancer() // idempotent

	for k := int64(0); k < 40; k++ {
		if v, ok := m.Lookup(k); !ok || v != fmt.Sprintf("v%d", k) {
			t.Fatalf("key %d lost across boundary moves: %q,%v", k, v, ok)
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// FuzzShardedCursorBoundaries drives the public cursor across fuzz-derived
// shard boundaries: the walk from MinKey must enumerate exactly the sorted
// key set whatever the split layout, and SeekTo/Floor/Ceiling probed at,
// below, and above every boundary must agree with a sorted-slice oracle.
func FuzzShardedCursorBoundaries(f *testing.F) {
	f.Add([]byte{2, 10, 0, 0, 0, 0, 0, 0, 0, 20, 0, 0, 0, 0, 0, 0, 0, 15})
	f.Add([]byte{5, 1, 0, 1, 0, 0, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		n := int(data[0]%6) + 1
		data = data[1:]
		raw := map[int64]bool{}
		for i := 0; i < n && len(data) >= 8; i++ {
			k := int64(binary.LittleEndian.Uint64(data[:8]) % 1000)
			data = data[8:]
			if k > 0 {
				raw[k] = true
			}
		}
		if len(raw) == 0 {
			return
		}
		var splits []int64
		for k := range raw {
			splits = append(splits, k)
		}
		sort.Slice(splits, func(i, j int) bool { return splits[i] < splits[j] })

		m := NewSharded[int64](splits,
			WithLayerCount(2), WithTargetDataVectorSize(4), WithTargetIndexVectorSize(4))
		present := map[int64]bool{}
		for _, sp := range splits {
			for _, k := range []int64{sp - 1, sp, sp + 1} {
				if k > MinKey && k < MaxKey && !present[k] {
					m.Upsert(k, k)
					present[k] = true
				}
			}
		}
		var keys []int64
		for k := range present {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

		// Full walk across every boundary.
		c := m.Cursor(MinKey + 1)
		defer c.Close()
		for i, want := range keys {
			k, v, ok := c.Next()
			if !ok || k != want || v != want {
				t.Fatalf("walk[%d] over %v = (%d,%d,%t), want %d", i, splits, k, v, ok, want)
			}
		}
		if k, _, ok := c.Next(); ok {
			t.Fatalf("walk overran: extra key %d", k)
		}

		// SeekTo and Floor/Ceiling exactly at, below, and above each split.
		for _, sp := range splits {
			for _, probe := range []int64{sp - 1, sp, sp + 1} {
				if probe <= MinKey || probe >= MaxKey {
					continue
				}
				i := sort.Search(len(keys), func(i int) bool { return keys[i] >= probe })
				c.SeekTo(probe)
				k, _, ok := c.Next()
				if i == len(keys) {
					if ok {
						t.Fatalf("SeekTo(%d) over %v found %d past the end", probe, splits, k)
					}
				} else if !ok || k != keys[i] {
					t.Fatalf("SeekTo(%d) over %v = (%d,%t), want %d", probe, splits, k, ok, keys[i])
				}
				fk, _, fok := m.Floor(probe)
				j := sort.Search(len(keys), func(i int) bool { return keys[i] > probe })
				if wok := j > 0; fok != wok || (fok && fk != keys[j-1]) {
					t.Fatalf("Floor(%d) over %v = (%d,%t)", probe, splits, fk, fok)
				}
				ck, _, cok := m.Ceiling(probe)
				if wok := i < len(keys); cok != wok || (cok && ck != keys[i]) {
					t.Fatalf("Ceiling(%d) over %v = (%d,%t)", probe, splits, ck, cok)
				}
			}
		}
		if err := m.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	})
}
