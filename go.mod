module skipvector

go 1.24
