package skipvector

import (
	"encoding/binary"
	"fmt"
)

// Codec translates values to and from the byte strings the durable log
// stores. Append runs inside the commit hook — under a chunk's write lock,
// on every logged mutation — so it must be fast, allocation-shy (append into
// dst and return it), and infallible: any value the map accepts must encode.
// Decode runs only during recovery and may fail, which surfaces as an
// OpenDurable error. Decode must copy: the input aliases a recovery buffer
// that is reused after the call.
type Codec[V any] interface {
	Append(dst []byte, v V) []byte
	Decode(b []byte) (V, error)
}

// BytesCodec stores []byte values verbatim.
func BytesCodec() Codec[[]byte] { return bytesCodec{} }

type bytesCodec struct{}

func (bytesCodec) Append(dst []byte, v []byte) []byte { return append(dst, v...) }
func (bytesCodec) Decode(b []byte) ([]byte, error) {
	out := make([]byte, len(b))
	copy(out, b)
	return out, nil
}

// StringCodec stores string values as their bytes.
func StringCodec() Codec[string] { return stringCodec{} }

type stringCodec struct{}

func (stringCodec) Append(dst []byte, v string) []byte { return append(dst, v...) }
func (stringCodec) Decode(b []byte) (string, error)    { return string(b), nil }

// Int64Codec stores int64 values as 8 little-endian bytes.
func Int64Codec() Codec[int64] { return int64Codec{} }

type int64Codec struct{}

func (int64Codec) Append(dst []byte, v int64) []byte {
	return binary.LittleEndian.AppendUint64(dst, uint64(v))
}

func (int64Codec) Decode(b []byte) (int64, error) {
	if len(b) != 8 {
		return 0, fmt.Errorf("skipvector: int64 codec: %d-byte value", len(b))
	}
	return int64(binary.LittleEndian.Uint64(b)), nil
}
