package skipvector

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"skipvector/internal/chaos"
	"skipvector/internal/wal"
)

// Crash-recovery differential campaign.
//
// A deterministic tape of top-level operations runs against a durable map on
// an in-memory filesystem with power-failure semantics (wal.MemFS). For every
// filesystem mutation boundary the workload crosses — every write, fsync,
// create, rename, including mid-fsync and mid-compaction-swap — the campaign
// kills the filesystem at exactly that operation, settles the disk image with
// a seeded torn/dropped/kept draw, reopens the directory, and checks the
// recovered map against a pure-Go model:
//
//	recovered state == model prefix after K steps,  durableLB ≤ K ≤ attempted
//
// where durableLB is the last step the sync policy acknowledged as durable
// (every acked step under SyncEveryCommit; the last explicit Sync/Compact
// barrier under SyncInterval and SyncOS) and attempted includes the step the
// crash interrupted — its lone record may legitimately survive in the page
// cache even though it was never acknowledged. Batch steps occupy a single K
// because the log frames them as atomic commit units; there is no K exposing
// half a batch.

// tapeStep is one top-level operation: a durable-map mutation paired with the
// equivalent update of the reference model. barrier marks steps that are
// durability barriers under every sync policy (Sync, Compact).
type tapeStep struct {
	name    string
	barrier bool
	mutate  func(d *DurableMap[string]) error
	model   func(m map[int64]string)
}

func splitmix(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// buildTape generates the deterministic op tape: singleton puts and deletes,
// batches with mixed upsert/insert-only/delete ops, range updates, and
// interleaved Compact and Sync barriers.
func buildTape(seed uint64) []tapeStep {
	rng := seed | 1
	const keySpace = 240
	var steps []tapeStep
	for i := 0; i < 46; i++ {
		switch {
		case i == 12 || i == 33:
			steps = append(steps, tapeStep{
				name:    fmt.Sprintf("%02d-compact", i),
				barrier: true,
				mutate:  func(d *DurableMap[string]) error { return d.Compact() },
				model:   func(map[int64]string) {},
			})
		case i == 20 || i == 40:
			steps = append(steps, tapeStep{
				name:    fmt.Sprintf("%02d-sync", i),
				barrier: true,
				mutate:  func(d *DurableMap[string]) error { return d.Sync() },
				model:   func(map[int64]string) {},
			})
		case i%7 == 3:
			n := int(8 + splitmix(&rng)%25)
			ops := make([]BatchOp[string], n)
			for j := range ops {
				r := splitmix(&rng)
				op := BatchOp[string]{Key: int64(r % keySpace)}
				switch r >> 32 % 4 {
				case 0:
					op.Delete = true
				case 1:
					op.InsertOnly = true
					op.Val = fmt.Sprintf("io%d.%d", i, j)
				default:
					op.Val = fmt.Sprintf("b%d.%d", i, j)
				}
				ops[j] = op
			}
			steps = append(steps, tapeStep{
				name: fmt.Sprintf("%02d-batch%d", i, n),
				mutate: func(d *DurableMap[string]) error {
					_, err := d.ApplyBatch(ops)
					return err
				},
				model: func(m map[int64]string) {
					for _, op := range ops {
						switch {
						case op.Delete:
							delete(m, op.Key)
						case op.InsertOnly:
							if _, ok := m[op.Key]; !ok {
								m[op.Key] = op.Val
							}
						default:
							m[op.Key] = op.Val
						}
					}
				},
			})
		case i%7 == 5:
			lo := int64(splitmix(&rng) % keySpace)
			hi := lo + int64(splitmix(&rng)%40)
			suffix := fmt.Sprintf("+r%d", i)
			fn := func(k int64, v string) string { return v + suffix }
			steps = append(steps, tapeStep{
				name: fmt.Sprintf("%02d-range[%d,%d]", i, lo, hi),
				mutate: func(d *DurableMap[string]) error {
					_, err := d.RangeUpdate(lo, hi, fn)
					return err
				},
				model: func(m map[int64]string) {
					for k, v := range m {
						if k >= lo && k <= hi {
							m[k] = fn(k, v)
						}
					}
				},
			})
		default:
			r := splitmix(&rng)
			k := int64(r % keySpace)
			switch i % 3 {
			case 0:
				v := fmt.Sprintf("u%d", i)
				steps = append(steps, tapeStep{
					name: fmt.Sprintf("%02d-upsert%d", i, k),
					mutate: func(d *DurableMap[string]) error {
						_, err := d.Upsert(k, v)
						return err
					},
					model: func(m map[int64]string) { m[k] = v },
				})
			case 1:
				v := fmt.Sprintf("i%d", i)
				steps = append(steps, tapeStep{
					name: fmt.Sprintf("%02d-insert%d", i, k),
					mutate: func(d *DurableMap[string]) error {
						_, err := d.Insert(k, v)
						return err
					},
					model: func(m map[int64]string) {
						if _, ok := m[k]; !ok {
							m[k] = v
						}
					},
				})
			default:
				steps = append(steps, tapeStep{
					name: fmt.Sprintf("%02d-remove%d", i, k),
					mutate: func(d *DurableMap[string]) error {
						_, err := d.Remove(k)
						return err
					},
					model: func(m map[int64]string) { delete(m, k) },
				})
			}
		}
	}
	return steps
}

// tapeHashes precomputes the model fingerprint after every tape prefix:
// hashes[K] is the state after the first K steps.
func tapeHashes(steps []tapeStep) []uint64 {
	model := make(map[int64]string)
	hashes := make([]uint64, len(steps)+1)
	hashes[0] = modelHash(model)
	for i, s := range steps {
		s.model(model)
		hashes[i+1] = modelHash(model)
	}
	return hashes
}

func crashDurableOpts(policy SyncPolicy, fs *wal.MemFS, seed uint64) []DurableOption {
	return []DurableOption{
		WithWALFS(fs),
		WithSyncPolicy(policy),
		// The background flusher would make interval-policy durability
		// nondeterministic; an hour-long interval means only explicit
		// barriers advance the durable frontier.
		WithSyncInterval(time.Hour),
		WithSegmentBytes(2048),
		WithMapOptions(
			WithTargetDataVectorSize(4),
			WithTargetIndexVectorSize(4),
			WithLayerCount(3),
			WithSeed(seed|1),
		),
	}
}

// runCrashPoint executes one campaign point: run the tape with a crash armed
// at filesystem op crashAt, settle, reopen, and verify the recovered state is
// a durable model prefix. It reports whether the crash actually fired (false
// means crashAt was beyond the workload's op count, i.e. the sweep is done).
func runCrashPoint(t *testing.T, policy SyncPolicy, steps []tapeStep, hashes []uint64, seed uint64, crashAt int64) bool {
	t.Helper()
	fs := wal.NewMemFS(seed ^ uint64(crashAt)*0x9e3779b97f4a7c15)
	opts := crashDurableOpts(policy, fs, seed)
	d, err := OpenDurable[string]("/db", StringCodec(), opts...)
	if err != nil {
		t.Fatalf("crashAt=%d: initial open: %v", crashAt, err)
	}
	fs.SetCrashAfter(crashAt) // armed only after open: sweep covers the tape

	applied, durableLB, attempted := 0, 0, 0
	for i, s := range steps {
		attempted = i + 1
		if err := s.mutate(d); err != nil {
			break
		}
		applied = i + 1
		if policy == SyncEveryCommit || s.barrier {
			durableLB = i + 1
		}
	}
	crashedInTape := fs.Crashed()
	_ = d.Close() // fails after a crash; the map is dead either way
	crashed := fs.Crashed()
	switch {
	case !crashed:
		// Clean run: Close synced, so recovery must reproduce the final state.
		durableLB = applied
		attempted = applied
	case !crashedInTape:
		// The crash fired inside Close's final fsync: every step applied, but
		// only the last barrier is promised durable.
		attempted = applied
	}
	fs.Crash() // settle the disk image (no-op on a clean image)

	d2, err := OpenDurable[string]("/db", StringCodec(), opts...)
	if err != nil {
		t.Fatalf("crashAt=%d (crashed=%v): recovery open: %v", crashAt, crashed, err)
	}
	defer d2.Close()

	got := durableHash(d2)
	matched := -1
	for k := durableLB; k <= attempted; k++ {
		if got == hashes[k] {
			matched = k
			break
		}
	}
	if matched < 0 {
		t.Fatalf("crashAt=%d policy=%v: recovered state (len=%d, info=%+v) matches no durable prefix in [%d,%d] (applied=%d)",
			crashAt, policy, d2.Len(), d2.Recovery(), durableLB, attempted, applied)
	}
	if err := d2.CheckInvariants(); err != nil {
		t.Fatalf("crashAt=%d: recovered map invariants: %v", crashAt, err)
	}
	verifyWALMetricIdentities(t, d2, -1)
	return crashed
}

// sweepCrashPoints walks crash points c = 0, stride, 2*stride, … until a run
// completes without crashing, returning how many points actually crashed.
func sweepCrashPoints(t *testing.T, policy SyncPolicy, seed uint64, stride int64) int {
	t.Helper()
	steps := buildTape(seed)
	hashes := tapeHashes(steps)
	points := 0
	for c := int64(0); ; c += stride {
		if !runCrashPoint(t, policy, steps, hashes, seed, c) {
			break
		}
		points++
	}
	return points
}

// TestCrashRecoveryDifferential is the campaign entry point: every sync
// policy, every filesystem op boundary (stride 1; widened under -short), plus
// a chaos variant that forces torn-write settlement of the unsynced suffix.
func TestCrashRecoveryDifferential(t *testing.T) {
	stride := int64(1)
	if testing.Short() {
		stride = 7
	}
	policies := []struct {
		name   string
		policy SyncPolicy
		seed   uint64
	}{
		{"every-commit", SyncEveryCommit, 0xc0ffee},
		{"interval", SyncInterval, 0xdecade},
		{"os", SyncOS, 0xfacade},
	}
	total := 0
	var mu sync.Mutex
	for _, p := range policies {
		t.Run(p.name, func(t *testing.T) {
			n := sweepCrashPoints(t, p.policy, p.seed, stride)
			t.Logf("policy=%s: %d crash points verified", p.name, n)
			mu.Lock()
			total += n
			mu.Unlock()
		})
	}
	t.Run("torn-writes", func(t *testing.T) {
		// Force the settlement draw toward torn prefixes: every unsynced
		// suffix tears, exercising the truncation path at every boundary.
		chaos.Enable(chaos.Config{
			Seed:      0x7041,
			FailOneIn: 1,
			Sites:     chaos.MaskOf(chaos.WALTornWrite),
		})
		defer chaos.Disable()
		n := sweepCrashPoints(t, SyncInterval, 0x70417041, stride)
		n += sweepCrashPoints(t, SyncEveryCommit, 0x70417042, stride)
		t.Logf("torn-write variant: %d crash points verified", n)
		mu.Lock()
		total += n
		mu.Unlock()
	})
	if !testing.Short() && total < 200 {
		t.Fatalf("campaign covered only %d crash points, want >= 200", total)
	}
	t.Logf("campaign total: %d crash points", total)
}

// TestCompactionVsWritersChaos runs online compaction against concurrent
// writers under chaos scheduling perturbation, with a snapshot pinned across
// the compactions, then proves the compacted log recovers the full state and
// that compaction pruned the superseded segments.
func TestCompactionVsWritersChaos(t *testing.T) {
	chaos.Enable(chaos.Config{
		Seed:       0xcafe,
		YieldOneIn: 16,
		DelayOneIn: 2048,
		Delay:      2 * time.Microsecond,
		Sites:      chaos.AllSites(),
	})
	defer chaos.Disable()

	fs := wal.NewMemFS(0xbeef)
	opts := []DurableOption{
		WithWALFS(fs),
		WithSyncPolicy(SyncInterval),
		WithSyncInterval(200 * time.Microsecond),
		WithSegmentBytes(4096),
		WithMapOptions(WithTargetDataVectorSize(8), WithLayerCount(3)),
	}
	d, err := OpenDurable[string]("/db", StringCodec(), opts...)
	if err != nil {
		t.Fatal(err)
	}

	// Seed some state on negative keys — disjoint from every writer stripe —
	// then pin a snapshot that must stay frozen across every compaction below.
	for k := int64(0); k < 64; k++ {
		if _, err := d.Upsert(-(k + 1), fmt.Sprintf("seed%d", k)); err != nil {
			t.Fatal(err)
		}
	}
	pinned := d.Snapshot()
	defer pinned.Close()
	pinnedHash := snapshotHash(pinned)

	const writers = 4
	const opsPerWriter = 800
	refs := make([]map[int64]string, writers)
	var wg sync.WaitGroup
	var writeErr error
	var errMu sync.Mutex
	for w := 0; w < writers; w++ {
		refs[w] = make(map[int64]string)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := uint64(w)*0x9e3779b9 + 1
			ref := refs[w]
			for i := 0; i < opsPerWriter; i++ {
				r := splitmix(&rng)
				// Disjoint stripes: writer w owns keys ≡ w (mod writers),
				// offset past the seeded keys' stripe.
				k := int64(r%4000)*int64(writers) + int64(w) + 1
				var err error
				if r>>40%5 == 0 {
					_, err = d.Remove(k)
					delete(ref, k)
				} else {
					v := fmt.Sprintf("w%d.%d", w, i)
					_, err = d.Upsert(k, v)
					ref[k] = v
				}
				if err != nil {
					errMu.Lock()
					writeErr = err
					errMu.Unlock()
					return
				}
			}
		}(w)
	}

	compactions := 0
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		if err := d.Compact(); err != nil {
			t.Errorf("compact #%d: %v", compactions, err)
			break
		}
		compactions++
		select {
		case <-done:
		default:
			continue
		}
		break
	}
	wg.Wait()
	if writeErr != nil {
		t.Fatalf("writer failed: %v", writeErr)
	}
	if compactions < 2 {
		t.Fatalf("only %d compactions overlapped the writers", compactions)
	}
	if h := snapshotHash(pinned); h != pinnedHash {
		t.Fatal("pinned snapshot changed across online compactions")
	}

	// Quiescent final compaction: everything before it is superseded, so the
	// directory must shrink to the manifest, the checkpoint, and the tail
	// segment — superseded segments and checkpoints pruned.
	if err := d.Compact(); err != nil {
		t.Fatal(err)
	}
	if names := fs.FileNames(); len(names) > 3 {
		t.Fatalf("compaction left unpruned files: %v", names)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenDurable[string]("/db", StringCodec(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	want := make(map[int64]string)
	for k := int64(0); k < 64; k++ {
		want[-(k + 1)] = fmt.Sprintf("seed%d", k)
	}
	for _, ref := range refs {
		for k, v := range ref {
			want[k] = v
		}
	}
	// Every key is owned by exactly one writer (or the seed), so merging the
	// per-writer reference maps yields the exact expected state.
	if got, wantHash := durableHash(d2), modelHash(want); got != wantHash {
		t.Fatalf("post-compaction recovery diverged: recovered %d keys, model %d", d2.Len(), len(want))
	}
	if err := d2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	verifyWALMetricIdentities(t, d2, -1)
	if info := d2.Recovery(); info.CheckpointKeys == 0 {
		t.Fatalf("recovery ignored the checkpoint: %+v", info)
	}
}

func snapshotHash(s *Snapshot[string]) uint64 {
	m := make(map[int64]string)
	cur := s.Cursor(MinKey + 1)
	for {
		k, v, ok := cur.Next()
		if !ok {
			break
		}
		m[k] = v
	}
	return modelHash(m)
}

// TestCrashDuringRecoveryTruncation arms crashes inside recovery itself: the
// truncation write that repairs a torn tail is also a mutation, and a crash
// there must leave a log the next open can still recover.
func TestCrashDuringRecoveryTruncation(t *testing.T) {
	steps := buildTape(0xabcdef)
	hashes := tapeHashes(steps)
	fs := wal.NewMemFS(0xabcdef)
	opts := crashDurableOpts(SyncOS, fs, 0xabcdef)
	d, err := OpenDurable[string]("/db", StringCodec(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	applied := 0
	for i, s := range steps {
		if err := s.mutate(d); err != nil {
			t.Fatal(err)
		}
		applied = i + 1
	}
	_ = d.Close()
	// Tear the tail by hand so recovery must truncate, then crash recovery at
	// each of its own first few mutations.
	names := fs.FileNames()
	tail := names[len(names)-1]
	if sz := fs.FileSize(tail); sz > 3 {
		fs.Truncate(tail, sz-3)
	}
	for c := int64(0); ; c++ {
		fs.SetCrashAfter(c)
		d2, err := OpenDurable[string]("/db", StringCodec(), opts...)
		crashed := fs.Crashed()
		if err == nil {
			d2.Close()
		} else if !crashed && !errors.Is(err, wal.ErrCrashed) {
			t.Fatalf("recovery crashAt=%d: unexpected error: %v", c, err)
		}
		if crashed {
			fs.Crash()
			continue
		}
		fs.SetCrashAfter(-1)
		break
	}
	// Recovery now completes; the recovered state is some durable prefix.
	d3, err := OpenDurable[string]("/db", StringCodec(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer d3.Close()
	got := durableHash(d3)
	ok := false
	for k := 0; k <= applied; k++ {
		if got == hashes[k] {
			ok = true
			break
		}
	}
	if !ok {
		t.Fatalf("state after crashed recoveries matches no tape prefix (len=%d)", d3.Len())
	}
}
