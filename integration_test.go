package skipvector

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// TestKitchenSink drives every public API surface concurrently against one
// map for a sustained period: point ops, upserts, range queries, range
// updates, navigation queries, and cursors — then verifies the full
// structural invariant suite and an accounting oracle.
func TestKitchenSink(t *testing.T) {
	m := New[int64](
		WithTargetDataVectorSize(4),
		WithTargetIndexVectorSize(4),
		WithLayerCount(5),
		WithSeed(1234),
	)
	const (
		keySpace = 2048
		workers  = 6
		opsEach  = 4000
	)
	var inserted, removed [keySpace]atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			cur := m.Cursor(0)
			for i := 0; i < opsEach; i++ {
				k := int64(rng.Intn(keySpace))
				switch rng.Intn(10) {
				case 0, 1, 2:
					if m.Insert(k, k) {
						inserted[k].Add(1)
					}
				case 3, 4:
					if m.Remove(k) {
						removed[k].Add(1)
					}
				case 5:
					if v, ok := m.Lookup(k); ok && v%keySpace != k%keySpace {
						t.Errorf("corrupt value at %d: %d", k, v)
						return
					}
				case 6:
					lo := k
					hi := k + int64(rng.Intn(64))
					prev := int64(-1)
					m.RangeQuery(lo, hi, func(kk int64, _ int64) bool {
						if kk < lo || kk > hi || kk <= prev {
							t.Errorf("range scan inconsistency at %d", kk)
							return false
						}
						prev = kk
						return true
					})
				case 7:
					m.RangeUpdate(k, k+16, func(kk int64, v int64) int64 {
						return v + keySpace // preserves v mod keySpace
					})
				case 8:
					if fk, _, ok := m.Floor(k); ok && fk > k {
						t.Errorf("Floor(%d) = %d", k, fk)
						return
					}
					if ck, _, ok := m.Ceiling(k); ok && ck < k {
						t.Errorf("Ceiling(%d) = %d", k, ck)
						return
					}
				default:
					kk, v, ok := cur.Next()
					if !ok {
						cur.SeekTo(0)
					} else if v%keySpace != kk%keySpace {
						t.Errorf("cursor corrupt value at %d", kk)
						return
					}
				}
			}
		}(int64(w) + 99)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	total := 0
	for k := 0; k < keySpace; k++ {
		diff := inserted[k].Load() - removed[k].Load()
		if diff != 0 && diff != 1 {
			t.Fatalf("key %d: inserted-removed = %d", k, diff)
		}
		present := m.Contains(int64(k))
		if present != (diff == 1) {
			t.Fatalf("key %d: present=%t diff=%d", k, present, diff)
		}
		if present {
			total++
		}
	}
	if m.Len() != total {
		t.Fatalf("Len = %d, oracle %d", m.Len(), total)
	}
}

// TestManyMapsIndependent verifies instances share no hidden state.
func TestManyMapsIndependent(t *testing.T) {
	maps := make([]*Map[int], 8)
	for i := range maps {
		maps[i] = New[int](WithSeed(uint64(i)))
	}
	var wg sync.WaitGroup
	for i, m := range maps {
		wg.Add(1)
		go func(i int, m *Map[int]) {
			defer wg.Done()
			for k := int64(0); k < 500; k++ {
				m.Insert(k*int64(i+1), i)
			}
		}(i, m)
	}
	wg.Wait()
	for i, m := range maps {
		if m.Len() != 500 {
			t.Fatalf("map %d has %d keys", i, m.Len())
		}
		if v, ok := m.Lookup(int64(i + 1)); !ok || v != i {
			t.Fatalf("map %d cross-contaminated", i)
		}
		if err := m.CheckInvariants(); err != nil {
			t.Fatalf("map %d: %v", i, err)
		}
	}
}
