// Package skipvector provides a scalable concurrent ordered map — the skip
// vector of Rodriguez, Hassan and Spear, "Exploiting Locality in Scalable
// Ordered Maps" (ICDCS 2021).
//
// A skip vector is a skip list whose index and data layers are flattened
// into fixed-capacity vectors ("chunks"). Chunking at every layer gives the
// structure far better spatial locality than a skip list — each layer is
// traversed with a handful of cache-line fetches instead of per-element
// pointer chasing — while keeping the skip list's O(log n) expected cost,
// its freedom from rebalancing, and its scalability under concurrent
// access. Nodes are synchronized with sequence locks (readers are
// speculative and never block writers), and memory is reclaimed precisely
// with hazard pointers.
//
// Keys are int64 (excluding math.MinInt64 and math.MaxInt64, which are the
// internal sentinels); values are any Go type. All methods are safe for
// concurrent use:
//
//	m := skipvector.New[string]()
//	m.Insert(42, "answer")
//	v, ok := m.Lookup(42)         // "answer", true
//	m.RangeQuery(0, 100, func(k int64, v string) bool { ... })
//	m.Remove(42)
//
// The map follows the paper's set-style semantics: Insert fails (returns
// false) when the key is already present; use Upsert for overwrite
// semantics. Range operations are linearizable (serializable two-phase
// locking over the affected chunks), including the mutating RangeUpdate.
package skipvector

import (
	"fmt"
	"io"
	"runtime"

	"skipvector/internal/core"
	"skipvector/internal/telemetry"
)

// Key range limits: user keys must satisfy MinKey < k < MaxKey.
const (
	MinKey = core.MinKey
	MaxKey = core.MaxKey
)

// Option configures a Map at construction time.
type Option func(*core.Config)

// WithLayerCount sets the total layer count including the data layer
// (default 6). With the default chunk sizes, 6 layers cover ~32^5 ≈ 3.3·10^7
// expected elements; oversizing costs almost nothing because extra layers
// stay near-empty (Section V-B).
func WithLayerCount(n int) Option {
	return func(c *core.Config) { c.LayerCount = n }
}

// WithTargetDataVectorSize sets the expected data-chunk occupancy T_D
// (default 32; chunk capacity is 2×T_D).
func WithTargetDataVectorSize(n int) Option {
	return func(c *core.Config) { c.TargetDataVectorSize = n }
}

// WithTargetIndexVectorSize sets the expected index-chunk occupancy T_I
// (default 32).
func WithTargetIndexVectorSize(n int) Option {
	return func(c *core.Config) { c.TargetIndexVectorSize = n }
}

// WithMergeFactor sets the orphan-merge threshold as a multiple of the
// target chunk size (default 1.67, the paper's recommendation).
func WithMergeFactor(f float64) Option {
	return func(c *core.Config) { c.MergeFactor = f }
}

// WithSortedIndex selects sorted (true, default) or unsorted index chunks.
func WithSortedIndex(sorted bool) Option {
	return func(c *core.Config) { c.SortedIndex = sorted }
}

// WithSortedData selects sorted or unsorted (false, default) data chunks.
func WithSortedData(sorted bool) Option {
	return func(c *core.Config) { c.SortedData = sorted }
}

// WithHazardPointers enables (true, default) or disables precise memory
// reclamation. When disabled, unlinked nodes are left to the garbage
// collector ("Leak" configuration in the paper's evaluation).
func WithHazardPointers(enabled bool) Option {
	return func(c *core.Config) {
		if enabled {
			c.Reclaim = core.ReclaimHazard
		} else {
			c.Reclaim = core.ReclaimLeak
		}
	}
}

// WithSeed seeds the height-generation RNG streams (default is a fixed
// constant, so structures are reproducible).
func WithSeed(seed uint64) Option {
	return func(c *core.Config) { c.Seed = seed }
}

// WithSearchFinger enables (true, default) or disables the search finger: a
// per-session cache of the data chunk the previous operation finished on.
// When consecutive operations touch nearby keys — cursors, ascending loads,
// Zipfian traffic — the finger resolves them in O(1) at the data layer,
// skipping the index descent entirely; validation against the chunk's
// sequence lock falls back to the full descent whenever the chunk changed.
// Disabling exists for ablation benchmarks and as an escape hatch.
func WithSearchFinger(enabled bool) Option {
	return func(c *core.Config) { c.DisableFinger = !enabled }
}

// Map is a concurrent ordered map from int64 keys to values of type V.
// The zero value is not usable; construct with New.
type Map[V any] struct {
	m *core.Map[V]
}

// NewFromSorted bulk-loads a map from strictly ascending keys in O(n) with
// perfectly packed chunks — the fast path for building large indexes from
// pre-sorted data. vals must be the same length as keys.
func NewFromSorted[V any](keys []int64, vals []V, opts ...Option) (*Map[V], error) {
	if len(vals) != len(keys) {
		return nil, fmt.Errorf("skipvector: %d keys but %d values", len(keys), len(vals))
	}
	cfg := core.DefaultConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	ptrs := make([]*V, len(vals))
	for i := range vals {
		ptrs[i] = &vals[i]
	}
	m, err := core.BulkLoad(cfg, keys, ptrs)
	if err != nil {
		return nil, err
	}
	return &Map[V]{m: m}, nil
}

// New builds an empty map with the paper's default configuration, modified
// by the given options. It panics on an invalid configuration (configuration
// is programmer-controlled; there is no runtime error path).
func New[V any](opts ...Option) *Map[V] {
	cfg := core.DefaultConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	m, err := core.NewMap[V](cfg)
	if err != nil {
		panic(fmt.Sprintf("skipvector: %v", err))
	}
	return &Map[V]{m: m}
}

// Insert adds the mapping k→v. It returns false (leaving the map unchanged)
// when k is already present.
func (m *Map[V]) Insert(k int64, v V) bool {
	return m.m.Insert(k, &v)
}

// Upsert adds or replaces the mapping k→v, returning true when the key was
// newly inserted and false when an existing mapping was replaced.
func (m *Map[V]) Upsert(k int64, v V) bool {
	return m.m.Upsert(k, &v)
}

// BatchOp is one element of an ApplyBatch request: a put of Key→Val, or a
// delete of Key when Delete is set. InsertOnly makes a put succeed only when
// Key is absent (the existing value is left untouched and the op reports
// BatchExists); the zero value is an upsert.
type BatchOp[V any] struct {
	Key        int64
	Val        V
	Delete     bool
	InsertOnly bool
}

// BatchResult reports the outcome of one BatchOp, positionally aligned with
// the request slice.
type BatchResult = core.BatchResult

// BatchOutcome is the per-op outcome enum of ApplyBatch.
type BatchOutcome = core.BatchOutcome

// Per-op outcomes: puts report BatchInserted or BatchUpdated (BatchExists
// when InsertOnly found the key present), deletes report BatchRemoved or
// BatchAbsent.
const (
	BatchInserted = core.BatchInserted
	BatchUpdated  = core.BatchUpdated
	BatchRemoved  = core.BatchRemoved
	BatchAbsent   = core.BatchAbsent
	BatchExists   = core.BatchExists
)

// ApplyBatch applies ops and returns one result per op, in request order.
// Ops commit in ascending key order (same-key ops in request order, last
// write wins), and every run of keys owned by one data chunk commits
// atomically under a single lock acquisition — on batches with spatial
// locality this amortizes one traversal and one lock round trip over the
// whole run, which is where the chunked layout beats issuing the ops one by
// one. The batch as a whole is not atomic: concurrent readers may observe a
// state between two chunk commits, but never a partially-applied chunk run.
func (m *Map[V]) ApplyBatch(ops []BatchOp[V]) []BatchResult {
	return m.m.ApplyBatch(toCoreOps(ops))
}

func toCoreOps[V any](ops []BatchOp[V]) []core.BatchOp[V] {
	cops := make([]core.BatchOp[V], len(ops))
	for i := range ops {
		op := &ops[i]
		cops[i] = core.BatchOp[V]{Key: op.Key, Del: op.Delete, InsertOnly: op.InsertOnly}
		if !op.Delete {
			v := op.Val
			cops[i].Val = &v
		}
	}
	return cops
}

// Lookup returns the value mapped to k.
func (m *Map[V]) Lookup(k int64) (V, bool) {
	if p, ok := m.m.Lookup(k); ok {
		return *p, true
	}
	var zero V
	return zero, false
}

// Contains reports whether k is in the map.
func (m *Map[V]) Contains(k int64) bool {
	return m.m.Contains(k)
}

// Remove deletes the mapping for k, returning whether it was present.
func (m *Map[V]) Remove(k int64) bool {
	return m.m.Remove(k)
}

// Len returns the number of mappings.
func (m *Map[V]) Len() int { return m.m.Len() }

// RangeQuery calls fn for every mapping with lo ≤ key ≤ hi in ascending key
// order, as one linearizable operation. fn returning false stops early.
// fn must not call back into the map.
func (m *Map[V]) RangeQuery(lo, hi int64, fn func(k int64, v V) bool) {
	m.m.RangeQuery(lo, hi, func(k int64, v *V) bool {
		return fn(k, *v)
	})
}

// RangeUpdate replaces the value of every mapping with lo ≤ key ≤ hi by
// fn's return value, as one serializable operation, and returns the number
// of mappings updated. fn must not call back into the map.
func (m *Map[V]) RangeUpdate(lo, hi int64, fn func(k int64, v V) V) int {
	return m.m.RangeUpdate(lo, hi, func(k int64, v *V) *V {
		nv := fn(k, *v)
		return &nv
	})
}

// Ascend iterates all mappings in ascending key order as one linearizable
// snapshot-like pass. fn returning false stops early.
func (m *Map[V]) Ascend(fn func(k int64, v V) bool) {
	m.m.Ascend(func(k int64, v *V) bool { return fn(k, *v) })
}

// Floor returns the largest key ≤ k and its value (ok=false when none).
func (m *Map[V]) Floor(k int64) (int64, V, bool) {
	return unwrap[V](m.m.Floor(k))
}

// Ceiling returns the smallest key ≥ k and its value (ok=false when none).
func (m *Map[V]) Ceiling(k int64) (int64, V, bool) {
	return unwrap[V](m.m.Ceiling(k))
}

// Min returns the smallest key and its value (ok=false when empty).
func (m *Map[V]) Min() (int64, V, bool) {
	return unwrap[V](m.m.First())
}

// Max returns the largest key and its value (ok=false when empty).
func (m *Map[V]) Max() (int64, V, bool) {
	return unwrap[V](m.m.Last())
}

func unwrap[V any](k int64, p *V, ok bool) (int64, V, bool) {
	if !ok || p == nil {
		var zero V
		return 0, zero, false
	}
	return k, *p, true
}

// Keys returns every key in ascending order. Intended for quiescent use
// (tests, debugging); concurrent callers should prefer RangeQuery.
func (m *Map[V]) Keys() []int64 { return m.m.Keys() }

// Cursor returns a stateful forward iterator positioned before the first
// key ≥ start. Unlike Ascend/RangeQuery — which hold node locks for the
// duration of the scan — a cursor holds no locks between Next calls: each
// step is an independent linearizable successor query (Ceiling), so it can
// be long-lived and interleaved with arbitrary mutations. Keys inserted
// behind the cursor are not revisited; keys inserted ahead are seen.
//
// The cursor pins a map session on first use, so its search finger tracks
// the scan: after the first Next, each step resumes at the data chunk the
// previous step finished on and walks at most one chunk right — no index
// descent. The session is released automatically when the scan is exhausted;
// call Close when abandoning a cursor mid-scan.
func (m *Map[V]) Cursor(start int64) *Cursor[V] {
	return &Cursor[V]{m: m, next: start}
}

// Cursor is a forward iterator over a Map. Not safe for concurrent use by
// multiple goroutines (the underlying map remains fully concurrent).
type Cursor[V any] struct {
	m    *Map[V]
	h    *core.Handle[V]
	next int64
	done bool
}

// Next advances to the next key ≥ the cursor position and returns it.
// ok=false means the scan is exhausted.
func (c *Cursor[V]) Next() (int64, V, bool) {
	if c.done {
		var zero V
		return 0, zero, false
	}
	if c.h == nil {
		c.h = c.m.m.NewHandle()
	}
	k, v, ok := unwrap[V](c.h.Ceiling(c.next))
	if !ok {
		c.Close()
		var zero V
		return 0, zero, false
	}
	if k == MaxKey-1 {
		c.Close() // cannot advance past the largest legal key
	} else {
		c.next = k + 1
	}
	return k, v, true
}

// SeekTo repositions the cursor before the first key ≥ start.
func (c *Cursor[V]) SeekTo(start int64) {
	c.next = start
	c.done = false
}

// Close releases the cursor's pinned session. It is called automatically
// when the scan is exhausted and is idempotent; only a cursor abandoned
// mid-scan needs an explicit Close. A closed cursor can be revived with
// SeekTo followed by Next.
func (c *Cursor[V]) Close() {
	if c.h != nil {
		c.h.Close()
		c.h = nil
	}
	c.done = true
}

// Snapshot pins the map's state at a single linearization point and returns
// an immutable read-only view of it. Acquisition is O(1) — nothing is copied
// up front; instead, writers that overlap a pinned snapshot publish chunk
// pre-images copy-on-write, so the snapshot's cost is proportional to the
// churn it overlaps, not to the map's size.
//
// Snapshot reads never block writers, and snapshot scans (Range, Ascend,
// Cursor) never restart no matter how much concurrent churn the live map
// sees — unlike the live map's RangeQuery/Ascend, which hold chunk locks, a
// snapshot scan is lock-free and can safely run for as long as it likes.
//
// Close must be called when done: a pinned snapshot retains the pre-image
// records and retired chunks it might still read. A snapshot that becomes
// garbage without Close is released by a finalizer and counted in the
// sv_snapshots_leaked_total metric; treat that as a bug in the caller, not a
// resource-management strategy.
func (m *Map[V]) Snapshot() *Snapshot[V] {
	s := &Snapshot[V]{s: m.m.Snapshot()}
	runtime.SetFinalizer(s, func(s *Snapshot[V]) { s.s.MarkLeaked() })
	return s
}

// Snapshot is an immutable point-in-time view of a Map, pinned at a single
// epoch. Safe for concurrent use by multiple goroutines. Using a snapshot
// after Close panics.
type Snapshot[V any] struct {
	s *core.Snapshot[V]
}

// Close releases the snapshot's pin, allowing the versions it was holding to
// be reclaimed. Idempotent.
func (s *Snapshot[V]) Close() {
	s.s.Close()
	runtime.SetFinalizer(s, nil)
}

// Epoch returns the internal epoch the snapshot is pinned at. Epochs are
// monotone across snapshots of one map; they are useful for diagnostics and
// for asserting snapshot ordering in tests.
func (s *Snapshot[V]) Epoch() uint64 { return s.s.Epoch() }

// Closed reports whether the snapshot has been released.
func (s *Snapshot[V]) Closed() bool { return s.s.Closed() }

// Get returns the value bound to k at the snapshot's point in time.
func (s *Snapshot[V]) Get(k int64) (V, bool) {
	if p, ok := s.s.Get(k); ok {
		return *p, true
	}
	var zero V
	return zero, false
}

// Contains reports whether k was present at the snapshot's point in time.
func (s *Snapshot[V]) Contains(k int64) bool { return s.s.Contains(k) }

// Range calls fn for every mapping with lo ≤ key ≤ hi at the snapshot's
// point in time, in ascending key order. fn returning false stops early.
func (s *Snapshot[V]) Range(lo, hi int64, fn func(k int64, v V) bool) {
	s.s.Range(lo, hi, func(k int64, v *V) bool { return fn(k, *v) })
}

// Ascend calls fn for every mapping in the snapshot in ascending key order.
func (s *Snapshot[V]) Ascend(fn func(k int64, v V) bool) {
	s.s.Ascend(func(k int64, v *V) bool { return fn(k, *v) })
}

// Len counts the snapshot's mappings with a full scan.
func (s *Snapshot[V]) Len() int { return s.s.Len() }

// Cursor returns a stateful forward iterator over the snapshot's mappings
// with keys ≥ start. Unlike a live-map Cursor — whose steps are independent
// successor queries against a moving target — a snapshot cursor iterates one
// frozen version: the sequence it returns is exactly the snapshot's content,
// regardless of concurrent writes. The cursor borrows the snapshot and must
// not outlive it; it is not safe for concurrent use.
func (s *Snapshot[V]) Cursor(start int64) *SnapshotCursor[V] {
	return &SnapshotCursor[V]{c: s.s.Cursor(start)}
}

// SnapshotCursor is a forward iterator over a Snapshot. See Snapshot.Cursor.
type SnapshotCursor[V any] struct {
	c *core.SnapCursor[V]
}

// Next returns the next mapping, or ok=false when the scan is exhausted.
func (c *SnapshotCursor[V]) Next() (int64, V, bool) {
	return unwrap[V](c.c.Next())
}

// NewHandle pins a per-goroutine session on the map. Map methods already
// benefit from the search finger when a single goroutine is active, but
// under concurrency the pooled per-operation contexts — and the fingers they
// carry — shuffle between goroutines. A Handle fixes one context to the
// caller, so locality in its key sequence reliably becomes finger hits
// (ascending loads, per-shard workers, time-series appenders).
//
// A Handle is not safe for concurrent use; create one per goroutine. Close
// it when the session ends to return its resources to the map.
func (m *Map[V]) NewHandle() *Handle[V] {
	return &Handle[V]{h: m.m.NewHandle()}
}

// Handle is a single-goroutine session over a Map with a pinned search
// finger. See Map.NewHandle.
type Handle[V any] struct {
	h *core.Handle[V]
}

// Close returns the session's resources to the map. Idempotent; the handle
// must not be used afterwards.
func (h *Handle[V]) Close() { h.h.Close() }

// Insert is Map.Insert through the pinned session.
func (h *Handle[V]) Insert(k int64, v V) bool { return h.h.Insert(k, &v) }

// Upsert is Map.Upsert through the pinned session.
func (h *Handle[V]) Upsert(k int64, v V) bool { return h.h.Upsert(k, &v) }

// ApplyBatch is Map.ApplyBatch through the pinned session. Batches whose
// first keys land where the previous operation finished resume from the
// session's search finger, skipping even the one descent per chunk run.
func (h *Handle[V]) ApplyBatch(ops []BatchOp[V]) []BatchResult {
	return h.h.ApplyBatch(toCoreOps(ops))
}

// Lookup is Map.Lookup through the pinned session.
func (h *Handle[V]) Lookup(k int64) (V, bool) {
	if p, ok := h.h.Lookup(k); ok {
		return *p, true
	}
	var zero V
	return zero, false
}

// Contains is Map.Contains through the pinned session.
func (h *Handle[V]) Contains(k int64) bool { return h.h.Contains(k) }

// Remove is Map.Remove through the pinned session.
func (h *Handle[V]) Remove(k int64) bool { return h.h.Remove(k) }

// Floor is Map.Floor through the pinned session.
func (h *Handle[V]) Floor(k int64) (int64, V, bool) { return unwrap[V](h.h.Floor(k)) }

// Ceiling is Map.Ceiling through the pinned session.
func (h *Handle[V]) Ceiling(k int64) (int64, V, bool) { return unwrap[V](h.h.Ceiling(k)) }

// Stats reports internal event counters (restarts overall and per op kind,
// splits, merges, orphans, node allocation and reuse, hazard-domain
// retire/reclaim totals, finger hits and misses). The snapshot is tear-free:
// every field is a single atomic load, so it may be taken while other
// goroutines mutate the map.
func (m *Map[V]) Stats() core.StatsSnapshot { return m.m.Stats() }

// Occupancy walks the structure and reports chunk-fill aggregates per layer
// class — the paper's locality argument made measurable. Approximate while
// mutators run; exact at quiescence.
func (m *Map[V]) Occupancy() core.OccupancySnapshot { return m.m.Occupancy() }

// Metrics returns the map's full metric catalog (its per-instance registry
// combined with the process-global seqlock/vectormap instruments) as a view
// that renders Prometheus text exposition via WritePrometheus and
// expvar-compatible JSON via String — so expvar.Publish("skipvector",
// m.Metrics()) exposes everything on /debug/vars.
//
// Most metrics are always-on; the hot-path instruments (descent depths, spin
// counts, shift distances, freeze counts) record only while telemetry
// collection is enabled — see SetTelemetry.
func (m *Map[V]) Metrics() *telemetry.View { return m.m.Metrics() }

// WriteMetrics renders the full metric catalog in Prometheus text exposition
// format.
func (m *Map[V]) WriteMetrics(w io.Writer) error { return m.m.WriteMetrics(w) }

// SetTelemetry turns hot-path metric recording on or off (process-wide,
// default off). Disabled, every instrumented site costs one atomic load and
// a predicted branch; see BenchmarkTelemetryOnOff for the measured gap.
func SetTelemetry(on bool) { telemetry.SetEnabled(on) }

// TelemetryEnabled reports whether hot-path metric recording is on.
func TelemetryEnabled() bool { return telemetry.Enabled() }

// FlushRetired forces a hazard-pointer reclamation scan on every pooled
// session. At quiescence — no operations in flight, all handles and cursors
// closed — it drains pending retired nodes to zero. Intended for tests and
// controlled teardown.
func (m *Map[V]) FlushRetired() { m.m.FlushRetired() }

// CheckInvariants validates the whole structure. Quiescent use only.
func (m *Map[V]) CheckInvariants() error { return m.m.CheckInvariants() }
