// Package svset provides a concurrent sorted set of int64 keys backed by
// the skip vector — the set interface the paper's microbenchmarks drive
// (80/10/10 contains/insert/remove over a key range). It is a thin facade
// over skipvector.Map with empty values, so every performance and
// linearizability property of the map carries over.
package svset

import (
	"skipvector"
)

// Option re-exports skip vector tuning options.
type Option = skipvector.Option

// Set is a concurrent sorted set. All methods are safe for concurrent use.
// Construct with New.
type Set struct {
	m *skipvector.Map[struct{}]
}

// New builds an empty set; options tune the underlying skip vector.
func New(opts ...Option) *Set {
	return &Set{m: skipvector.New[struct{}](opts...)}
}

// Insert adds k, returning false if it was already present.
func (s *Set) Insert(k int64) bool { return s.m.Insert(k, struct{}{}) }

// InsertBatch adds every key in ks and returns how many were newly
// inserted. Runs of keys that land in one data chunk commit under a single
// lock acquisition, so sorted or clustered inputs are substantially cheaper
// than an Insert loop. Duplicate keys in ks count once.
func (s *Set) InsertBatch(ks []int64) int {
	ops := make([]skipvector.BatchOp[struct{}], len(ks))
	for i, k := range ks {
		ops[i] = skipvector.BatchOp[struct{}]{Key: k, InsertOnly: true}
	}
	n := 0
	for _, r := range s.m.ApplyBatch(ops) {
		if r.Outcome == skipvector.BatchInserted {
			n++
		}
	}
	return n
}

// Remove deletes k, returning false if it was absent.
func (s *Set) Remove(k int64) bool { return s.m.Remove(k) }

// RemoveBatch deletes every key in ks and returns how many were present.
// Like InsertBatch, chunk-local runs commit under one lock acquisition.
func (s *Set) RemoveBatch(ks []int64) int {
	ops := make([]skipvector.BatchOp[struct{}], len(ks))
	for i, k := range ks {
		ops[i] = skipvector.BatchOp[struct{}]{Key: k, Delete: true}
	}
	n := 0
	for _, r := range s.m.ApplyBatch(ops) {
		if r.Outcome == skipvector.BatchRemoved {
			n++
		}
	}
	return n
}

// Contains reports membership of k.
func (s *Set) Contains(k int64) bool { return s.m.Contains(k) }

// Len returns the number of elements.
func (s *Set) Len() int { return s.m.Len() }

// Min returns the smallest element (ok=false when empty).
func (s *Set) Min() (int64, bool) {
	k, _, ok := s.m.Min()
	return k, ok
}

// Max returns the largest element (ok=false when empty).
func (s *Set) Max() (int64, bool) {
	k, _, ok := s.m.Max()
	return k, ok
}

// Floor returns the largest element ≤ k (ok=false when none).
func (s *Set) Floor(k int64) (int64, bool) {
	fk, _, ok := s.m.Floor(k)
	return fk, ok
}

// Ceiling returns the smallest element ≥ k (ok=false when none).
func (s *Set) Ceiling(k int64) (int64, bool) {
	ck, _, ok := s.m.Ceiling(k)
	return ck, ok
}

// Range calls fn for every element in [lo,hi] in ascending order as one
// linearizable operation; fn returning false stops early.
func (s *Set) Range(lo, hi int64, fn func(k int64) bool) {
	s.m.RangeQuery(lo, hi, func(k int64, _ struct{}) bool { return fn(k) })
}

// Ascend iterates all elements in ascending order.
func (s *Set) Ascend(fn func(k int64) bool) {
	s.m.Ascend(func(k int64, _ struct{}) bool { return fn(k) })
}

// Elements returns every element in ascending order (quiescent use).
func (s *Set) Elements() []int64 { return s.m.Keys() }

// Snapshot pins the set's current membership and returns an immutable view
// of it. Acquisition is O(1) copy-on-write; scans over the snapshot never
// restart and never block concurrent mutators. Close the snapshot when done.
func (s *Set) Snapshot() *Snapshot {
	return &Snapshot{s: s.m.Snapshot()}
}

// Snapshot is an immutable point-in-time view of a Set. Safe for concurrent
// use; using it after Close panics.
type Snapshot struct {
	s *skipvector.Snapshot[struct{}]
}

// Close releases the snapshot's pin. Idempotent.
func (s *Snapshot) Close() { s.s.Close() }

// Contains reports membership of k at the snapshot's point in time.
func (s *Snapshot) Contains(k int64) bool { return s.s.Contains(k) }

// Len counts the snapshot's elements with a full scan.
func (s *Snapshot) Len() int { return s.s.Len() }

// Range calls fn for every element in [lo,hi] at the snapshot's point in
// time, in ascending order; fn returning false stops early.
func (s *Snapshot) Range(lo, hi int64, fn func(k int64) bool) {
	s.s.Range(lo, hi, func(k int64, _ struct{}) bool { return fn(k) })
}

// Ascend iterates the snapshot's elements in ascending order.
func (s *Snapshot) Ascend(fn func(k int64) bool) {
	s.s.Ascend(func(k int64, _ struct{}) bool { return fn(k) })
}

// Elements returns the snapshot's elements in ascending order.
func (s *Snapshot) Elements() []int64 {
	var ks []int64
	s.Ascend(func(k int64) bool { ks = append(ks, k); return true })
	return ks
}
