package svset

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestBasicSetSemantics(t *testing.T) {
	s := New()
	if s.Contains(1) {
		t.Fatal("empty set contains 1")
	}
	if !s.Insert(1) || s.Insert(1) {
		t.Fatal("Insert semantics")
	}
	if !s.Contains(1) {
		t.Fatal("Contains after insert")
	}
	if !s.Remove(1) || s.Remove(1) {
		t.Fatal("Remove semantics")
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestNavigationAndRange(t *testing.T) {
	s := New()
	for _, k := range []int64{30, 10, 50, 20, 40} {
		s.Insert(k)
	}
	if minK, ok := s.Min(); !ok || minK != 10 {
		t.Fatalf("Min = %d,%t", minK, ok)
	}
	if maxK, ok := s.Max(); !ok || maxK != 50 {
		t.Fatalf("Max = %d,%t", maxK, ok)
	}
	if f, ok := s.Floor(35); !ok || f != 30 {
		t.Fatalf("Floor(35) = %d,%t", f, ok)
	}
	if c, ok := s.Ceiling(35); !ok || c != 40 {
		t.Fatalf("Ceiling(35) = %d,%t", c, ok)
	}
	var got []int64
	s.Range(15, 45, func(k int64) bool {
		got = append(got, k)
		return true
	})
	want := []int64{20, 30, 40}
	if len(got) != len(want) {
		t.Fatalf("Range = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Range = %v, want %v", got, want)
		}
	}
	var all []int64
	s.Ascend(func(k int64) bool {
		all = append(all, k)
		return true
	})
	if len(all) != 5 {
		t.Fatalf("Ascend visited %d", len(all))
	}
}

func TestElementsSorted(t *testing.T) {
	s := New()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		s.Insert(int64(rng.Intn(500)))
	}
	es := s.Elements()
	for i := 1; i < len(es); i++ {
		if es[i] <= es[i-1] {
			t.Fatal("Elements not strictly ascending")
		}
	}
	if len(es) != s.Len() {
		t.Fatalf("Elements len %d != Len %d", len(es), s.Len())
	}
}

func TestQuickAgainstModel(t *testing.T) {
	f := func(ops []int16) bool {
		s := New()
		model := map[int64]bool{}
		for _, raw := range ops {
			k := int64(raw % 128)
			switch (int(raw) / 128) % 3 {
			case 0:
				if s.Insert(k) == model[k] {
					return false
				}
				model[k] = true
			case 1:
				if s.Remove(k) != model[k] {
					return false
				}
				delete(model, k)
			default:
				if s.Contains(k) != model[k] {
					return false
				}
			}
		}
		return s.Len() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentMembership(t *testing.T) {
	s := New(skipvectorOptions()...)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(base int64) {
			defer wg.Done()
			for i := int64(0); i < 500; i++ {
				s.Insert(base + i)
			}
			for i := int64(0); i < 500; i += 2 {
				s.Remove(base + i)
			}
		}(int64(g) * 1000)
	}
	wg.Wait()
	if s.Len() != 8*250 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func skipvectorOptions() []Option {
	return []Option{}
}

func TestBatchInsertRemove(t *testing.T) {
	s := New()
	ks := make([]int64, 100)
	for i := range ks {
		ks[i] = int64(i)
	}
	if n := s.InsertBatch(ks); n != 100 {
		t.Fatalf("InsertBatch inserted %d, want 100", n)
	}
	// Re-insert plus a few fresh keys: only the fresh ones count.
	if n := s.InsertBatch([]int64{5, 50, 100, 101, 5}); n != 2 {
		t.Fatalf("second InsertBatch inserted %d, want 2", n)
	}
	if s.Len() != 102 {
		t.Fatalf("Len = %d, want 102", s.Len())
	}
	if n := s.RemoveBatch([]int64{0, 1, 2, 777}); n != 3 {
		t.Fatalf("RemoveBatch removed %d, want 3", n)
	}
	if s.Contains(0) || !s.Contains(3) {
		t.Fatal("RemoveBatch membership wrong")
	}
	if s.Len() != 99 {
		t.Fatalf("Len = %d, want 99", s.Len())
	}
}

func TestSetSnapshot(t *testing.T) {
	s := New()
	for k := int64(0); k < 100; k += 2 {
		s.Insert(k)
	}
	snap := s.Snapshot()
	defer snap.Close()

	for k := int64(0); k < 100; k += 2 {
		s.Remove(k)
		s.Insert(k + 1)
	}

	if n := snap.Len(); n != 50 {
		t.Fatalf("snapshot Len = %d, want 50", n)
	}
	if !snap.Contains(42) || snap.Contains(43) {
		t.Fatal("snapshot membership drifted with post-pin churn")
	}
	elems := snap.Elements()
	if len(elems) != 50 {
		t.Fatalf("snapshot Elements has %d keys", len(elems))
	}
	for i, k := range elems {
		if k != int64(2*i) {
			t.Fatalf("snapshot element %d = %d, want %d", i, k, 2*i)
		}
	}
	var inWin []int64
	snap.Range(10, 20, func(k int64) bool { inWin = append(inWin, k); return true })
	if len(inWin) != 6 || inWin[0] != 10 || inWin[5] != 20 {
		t.Fatalf("snapshot Range[10,20] = %v", inWin)
	}
	// Live set moved on.
	if s.Contains(42) || !s.Contains(43) {
		t.Fatal("live set does not reflect the churn")
	}
}
