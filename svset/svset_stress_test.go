package svset

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"skipvector/internal/chaos"
)

// stressChaos mirrors the core chaos stress tuning so the facade is exercised
// against forced validation failures and stretched freeze/merge windows, not
// just whatever interleavings the scheduler happens to produce.
func stressChaos(seed uint64) chaos.Config {
	return chaos.Config{
		Seed:       seed,
		FailOneIn:  48,
		YieldOneIn: 24,
		DelayOneIn: 4096,
		Delay:      5 * time.Microsecond,
	}
}

// TestStressDifferential runs a chaos-perturbed concurrent workload against a
// mutex-guarded reference set. Each goroutine owns a disjoint key stripe, so
// every operation's boolean result is exactly predicted by the reference; the
// run ends with a full content comparison through Elements.
func TestStressDifferential(t *testing.T) {
	const goroutines = 6
	opsPerG := 3000
	if testing.Short() {
		opsPerG = 800
	}
	s := New()
	ref := make(map[int64]struct{})
	var refMu sync.Mutex

	chaos.Enable(stressChaos(0x5e7))
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := int64(g) * 10_000 // disjoint stripe per goroutine
			rng := rand.New(rand.NewSource(int64(g) + 5))
			for i := 0; i < opsPerG; i++ {
				k := base + int64(rng.Intn(256))
				switch rng.Intn(6) {
				case 0, 1:
					got := s.Insert(k)
					refMu.Lock()
					_, had := ref[k]
					ref[k] = struct{}{}
					refMu.Unlock()
					if got == had {
						t.Errorf("Insert(%d) = %t but reference had=%t", k, got, had)
						return
					}
				case 2:
					got := s.Remove(k)
					refMu.Lock()
					_, had := ref[k]
					delete(ref, k)
					refMu.Unlock()
					if got != had {
						t.Errorf("Remove(%d) = %t but reference had=%t", k, got, had)
						return
					}
				case 3:
					got := s.Contains(k)
					refMu.Lock()
					_, had := ref[k]
					refMu.Unlock()
					if got != had {
						t.Errorf("Contains(%d) = %t but reference had=%t", k, got, had)
						return
					}
				case 4:
					// Floor within the stripe: the answer must be a key the
					// stripe owner once inserted; exactness is checked by the
					// final sweep, here it must just stay inside the stripe.
					if f, ok := s.Floor(k); ok && f >= base && f > k {
						t.Errorf("Floor(%d) = %d > query", k, f)
						return
					}
				default:
					if c, ok := s.Ceiling(k); ok && c < k {
						t.Errorf("Ceiling(%d) = %d < query", k, c)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	rep := chaos.Disable()
	t.Logf("%v", rep)
	if t.Failed() {
		return
	}
	if rep.Fails() == 0 || rep.Perturbations() == 0 {
		t.Fatalf("chaos injected nothing: %v", rep)
	}

	// Differential sweep: identical contents, in order.
	if s.Len() != len(ref) {
		t.Fatalf("Len = %d, reference holds %d", s.Len(), len(ref))
	}
	elems := s.Elements()
	for i := 1; i < len(elems); i++ {
		if elems[i-1] >= elems[i] {
			t.Fatalf("Elements not strictly ascending at %d: %d, %d", i, elems[i-1], elems[i])
		}
	}
	for _, k := range elems {
		if _, ok := ref[k]; !ok {
			t.Fatalf("set holds key %d absent from reference", k)
		}
	}
	for k := range ref {
		if !s.Contains(k) {
			t.Fatalf("reference key %d missing from set", k)
		}
	}
}
