package skipvector

import (
	"strings"
	"testing"
)

// newShardedTest builds a 4-shard map over [0, 40) with small chunks.
func newShardedTest(t *testing.T) *ShardedMap[string] {
	t.Helper()
	return NewSharded[string](EvenShardBounds(0, 40, 4),
		WithLayerCount(3), WithTargetDataVectorSize(2), WithTargetIndexVectorSize(2))
}

func TestShardedMapBasics(t *testing.T) {
	m := newShardedTest(t)
	if m.ShardCount() != 4 {
		t.Fatalf("ShardCount = %d", m.ShardCount())
	}
	if b := m.ShardBounds(); len(b) != 3 || b[0] != 10 || b[1] != 20 || b[2] != 30 {
		t.Fatalf("ShardBounds = %v", b)
	}
	if m.ShardFor(9) != 0 || m.ShardFor(10) != 1 || m.ShardFor(39) != 3 {
		t.Fatal("routing off")
	}

	if !m.Insert(5, "five") || m.Insert(5, "dup") {
		t.Fatal("Insert semantics")
	}
	if !m.Upsert(15, "fifteen") || m.Upsert(15, "fifteen'") {
		t.Fatal("Upsert semantics")
	}
	if v, ok := m.Lookup(15); !ok || v != "fifteen'" {
		t.Fatalf("Lookup(15) = %q,%v", v, ok)
	}
	if !m.Contains(5) || m.Contains(6) {
		t.Fatal("Contains")
	}
	m.Upsert(25, "twentyfive")
	m.Upsert(35, "thirtyfive")
	if m.Len() != 4 {
		t.Fatalf("Len = %d", m.Len())
	}
	if k, v, ok := m.Min(); !ok || k != 5 || v != "five" {
		t.Fatalf("Min = %d,%q,%v", k, v, ok)
	}
	if k, _, ok := m.Max(); !ok || k != 35 {
		t.Fatalf("Max = %d,%v", k, ok)
	}
	if k, _, ok := m.Floor(24); !ok || k != 15 {
		t.Fatalf("Floor(24) = %d,%v (cross-shard walk)", k, ok)
	}
	if k, _, ok := m.Ceiling(26); !ok || k != 35 {
		t.Fatalf("Ceiling(26) = %d,%v", k, ok)
	}
	if got := m.Keys(); len(got) != 4 || got[0] != 5 || got[3] != 35 {
		t.Fatalf("Keys = %v", got)
	}
	var seen []int64
	m.Ascend(func(k int64, _ string) bool { seen = append(seen, k); return true })
	if len(seen) != 4 || seen[0] != 5 || seen[3] != 35 {
		t.Fatalf("Ascend = %v", seen)
	}
	if !m.Remove(5) || m.Remove(5) {
		t.Fatal("Remove semantics")
	}
	if n := m.RangeUpdate(0, 40, func(_ int64, v string) string { return v + "!" }); n != 3 {
		t.Fatalf("RangeUpdate visited %d", n)
	}
	if v, _ := m.Lookup(25); v != "twentyfive!" {
		t.Fatalf("RangeUpdate result %q", v)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if len(m.ShardStats()) != 4 {
		t.Fatal("ShardStats")
	}
	m.FlushRetired()
}

func TestShardedApplyBatchOutcomes(t *testing.T) {
	m := newShardedTest(t)
	res := m.ApplyBatch([]BatchOp[string]{
		{Key: 5, Val: "a"},
		{Key: 15, Val: "b"},
		{Key: 25, Val: "c"},
		{Key: 35, Val: "d"},
	})
	for i, r := range res {
		if r.Outcome != BatchInserted {
			t.Fatalf("op %d: %v", i, r.Outcome)
		}
	}
	// Unsorted, duplicates, deletes, insert-only — spanning shards.
	res = m.ApplyBatch([]BatchOp[string]{
		{Key: 35, Val: "d2"},
		{Key: 5, Delete: true},
		{Key: 15, Val: "b2"},
		{Key: 15, Val: "b3"},
		{Key: 25, Val: "x", InsertOnly: true},
		{Key: 7, Delete: true},
	})
	want := []BatchOutcome{BatchUpdated, BatchRemoved, BatchUpdated, BatchUpdated, BatchExists, BatchAbsent}
	for i, w := range want {
		if res[i].Outcome != w {
			t.Fatalf("op %d: %v, want %v", i, res[i].Outcome, w)
		}
	}
	if v, _ := m.Lookup(15); v != "b3" {
		t.Fatalf("duplicate key resolved to %q, want b3", v)
	}
	if v, _ := m.Lookup(25); v != "c" {
		t.Fatalf("InsertOnly clobbered value: %q", v)
	}
}

// TestShardedCursorAcrossBoundaries scans a cursor through all four shards,
// seeks backwards across a boundary, and revives a closed cursor.
func TestShardedCursorAcrossBoundaries(t *testing.T) {
	m := newShardedTest(t)
	keys := []int64{1, 9, 10, 19, 20, 29, 30, 39}
	for _, k := range keys {
		m.Upsert(k, "v")
	}
	c := m.Cursor(0)
	defer c.Close()
	var got []int64
	for {
		k, _, ok := c.Next()
		if !ok {
			break
		}
		got = append(got, k)
	}
	if len(got) != len(keys) {
		t.Fatalf("scan = %v", got)
	}
	for i := range keys {
		if got[i] != keys[i] {
			t.Fatalf("scan = %v, want %v", got, keys)
		}
	}
	// Exhausted cursor stays exhausted...
	if _, _, ok := c.Next(); ok {
		t.Fatal("cursor revived itself")
	}
	// ...until SeekTo revives it, mid-keyspace, across a boundary.
	c.SeekTo(15)
	if k, _, ok := c.Next(); !ok || k != 19 {
		t.Fatalf("after SeekTo(15): %d,%v", k, ok)
	}
	if k, _, ok := c.Next(); !ok || k != 20 {
		t.Fatalf("boundary crossing: %d,%v", k, ok)
	}
	c.Close()
	c.Close() // idempotent
}

func TestShardedHandleFacade(t *testing.T) {
	m := newShardedTest(t)
	h := m.NewHandle()
	defer h.Close()
	if !h.Insert(5, "five") || h.Insert(5, "dup") {
		t.Fatal("handle Insert")
	}
	if h.Upsert(15, "fifteen") != true {
		t.Fatal("handle Upsert")
	}
	if v, ok := h.Lookup(5); !ok || v != "five" {
		t.Fatalf("handle Lookup = %q,%v", v, ok)
	}
	if !h.Contains(15) {
		t.Fatal("handle Contains")
	}
	if k, _, ok := h.Floor(30); !ok || k != 15 {
		t.Fatalf("handle Floor(30) = %d,%v", k, ok)
	}
	if k, _, ok := h.Ceiling(6); !ok || k != 15 {
		t.Fatalf("handle Ceiling(6) = %d,%v", k, ok)
	}
	res := h.ApplyBatch([]BatchOp[string]{{Key: 25, Val: "c"}, {Key: 35, Val: "d"}})
	if len(res) != 2 || res[0].Outcome != BatchInserted {
		t.Fatalf("handle ApplyBatch: %+v", res)
	}
	if !h.Remove(5) {
		t.Fatal("handle Remove")
	}
	h.Close()
	h.Close()
}

// TestShardedWriteMetrics pins the exported exposition: the router gauge and
// per-shard labeled series are present, with one TYPE header per family.
func TestShardedWriteMetrics(t *testing.T) {
	m := newShardedTest(t)
	for k := int64(0); k < 40; k += 2 {
		m.Upsert(k, "v")
	}
	var b strings.Builder
	if err := m.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"sv_shard_count 4",
		`sv_len{shard="0"}`,
		`sv_len{shard="3"}`,
		"sv_shard_batch_fanout_total",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if n := strings.Count(out, "# TYPE sv_len gauge"); n != 1 {
		t.Fatalf("sv_len TYPE headers = %d", n)
	}
	if m.Metrics() == nil {
		t.Fatal("Metrics() nil")
	}
}

func TestNewShardedPanicsOnBadSplits(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on descending splits")
		}
	}()
	NewSharded[int]([]int64{20, 10})
}
