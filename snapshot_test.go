package skipvector

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestSnapshotFacadeBasics covers the public snapshot surface end to end:
// pin, churn, value-typed reads, windowed range, cursor, close.
func TestSnapshotFacadeBasics(t *testing.T) {
	m := New[string]()
	m.Insert(1, "one")
	m.Insert(2, "two")
	m.Insert(3, "three")

	s := m.Snapshot()
	defer s.Close()

	m.Remove(2)
	m.Upsert(3, "THREE")
	m.Insert(4, "four")

	if v, ok := s.Get(2); !ok || v != "two" {
		t.Fatalf("snapshot Get(2) = (%q,%t)", v, ok)
	}
	if v, _ := s.Get(3); v != "three" {
		t.Fatalf("snapshot saw post-pin overwrite: %q", v)
	}
	if s.Contains(4) {
		t.Fatal("snapshot saw post-pin insert")
	}
	if n := s.Len(); n != 3 {
		t.Fatalf("snapshot Len = %d", n)
	}
	var got []string
	s.Range(1, 3, func(k int64, v string) bool {
		got = append(got, v)
		return true
	})
	if strings.Join(got, ",") != "one,two,three" {
		t.Fatalf("snapshot Range = %v", got)
	}
	c := s.Cursor(2)
	k, v, ok := c.Next()
	if !ok || k != 2 || v != "two" {
		t.Fatalf("cursor first = (%d,%q,%t)", k, v, ok)
	}
	if !s.Closed() == false {
		t.Fatal("Closed before Close")
	}

	// The live map moved on.
	if lv, _ := m.Lookup(3); lv != "THREE" {
		t.Fatalf("live map Lookup(3) = %q", lv)
	}
}

// TestSnapshotFacadeLeakFinalizer proves the leak detector: a snapshot that
// becomes garbage without Close is released by its finalizer and surfaces in
// the sv_snapshots_leaked_total metric, so the pin cannot outlive its owner
// silently. (Finalizer scheduling is the runtime's business, so the test
// retries GC cycles and skips rather than flakes if it never runs.)
func TestSnapshotFacadeLeakFinalizer(t *testing.T) {
	m := New[int64]()
	for k := int64(0); k < 64; k++ {
		m.Insert(k, k)
	}

	func() {
		s := m.Snapshot()
		_ = s.Len()
		// s goes out of scope unclosed: a leak.
	}()

	deadline := time.Now().Add(5 * time.Second)
	for m.Stats().SnapshotsActive != 0 {
		if time.Now().After(deadline) {
			t.Skip("finalizer did not run within the deadline; cannot observe the leak path")
		}
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
	st := m.Stats()
	if st.SnapshotsReleased != st.SnapshotsPinned {
		t.Fatalf("finalizer released %d of %d pins", st.SnapshotsReleased, st.SnapshotsPinned)
	}
	var sb strings.Builder
	if err := m.WriteMetrics(&sb); err != nil {
		t.Fatalf("WriteMetrics: %v", err)
	}
	if !strings.Contains(sb.String(), "sv_snapshots_leaked_total 1") {
		t.Fatal("leaked snapshot not counted in sv_snapshots_leaked_total")
	}

	// An explicitly closed snapshot must NOT count as a leak.
	s := m.Snapshot()
	s.Close()
	runtime.GC()
	time.Sleep(10 * time.Millisecond)
	sb.Reset()
	if err := m.WriteMetrics(&sb); err != nil {
		t.Fatalf("WriteMetrics: %v", err)
	}
	if !strings.Contains(sb.String(), "sv_snapshots_leaked_total 1") {
		t.Fatal("explicit Close was miscounted as a leak")
	}
}
