// Package telemetry is the skip vector's low-overhead metrics layer: sharded
// counters, gauges, high-water trackers, and power-of-two-bucket histograms,
// collected into named registries that render as Prometheus text exposition
// or expvar-compatible JSON.
//
// The package follows the same cost discipline as internal/chaos: recording
// is gated on a single package-global atomic flag, so when telemetry is
// disabled (the default) every hook on a hot path reduces to one atomic load
// and a predicted branch. Reads (Load, Snapshot, registry exposition) always
// work, returning whatever was recorded while the flag was up. This split
// matters because the instrumented sites include per-operation paths — the
// seqlock spin loops, the insert freeze, the index descent — where even one
// uncontended atomic RMW per operation would be measurable.
//
// Writes are sharded: a Counter or Histogram spreads its increments across
// cache-line-padded stripes, chosen per caller, so a counter bumped on every
// operation by every goroutine never becomes the contention point the data
// structure itself is built to avoid. Callers with a natural stripe (the
// per-operation context) pass it via the *At variants; callers without one
// (the seqlock, whose only identity is the lock's address) pass any cheap
// locality token to the hinted variants.
//
// None of the aggregates are cross-field-consistent snapshots: a sum read
// while writers run is a value that the true total passed through, which is
// exactly what monotonic metrics need and all they promise.
package telemetry

import (
	"math/bits"
	"sync/atomic"
)

// enabled gates all recording. Reads are never gated.
var enabled atomic.Bool

// Enabled reports whether recording is on.
func Enabled() bool { return enabled.Load() }

// SetEnabled turns recording on or off. Metrics keep their accumulated
// values across transitions; callers that want a clean run snapshot before
// enabling and diff afterwards.
func SetEnabled(on bool) { enabled.Store(on) }

// Enable turns recording on. Shorthand for SetEnabled(true).
func Enable() { enabled.Store(true) }

// Disable turns recording off. Shorthand for SetEnabled(false).
func Disable() { enabled.Store(false) }

// numStripes is the sharding width of counters and histograms. 16 padded
// stripes keep concurrent writers off each other's cache lines up to the
// thread counts the paper evaluates.
const numStripes = 16

// padCell is one cache-line-padded atomic cell.
type padCell struct {
	v atomic.Int64
	_ [7]int64
}

// Counter is a monotonically increasing, sharded counter.
type Counter struct {
	stripes [numStripes]padCell
}

// Inc adds 1 using the caller-supplied stripe hint.
func (c *Counter) Inc(hint int) { c.Add(hint, 1) }

// Add adds n on the hinted stripe. hint is any cheap locality token — a
// per-goroutine stripe id, low bits of a pointer — reduced modulo the stripe
// count; correctness never depends on it, only write-side contention.
func (c *Counter) Add(hint int, n int64) {
	if !enabled.Load() {
		return
	}
	c.stripes[uint(hint)%numStripes].v.Add(n)
}

// Load returns the current total across all stripes.
func (c *Counter) Load() int64 {
	var sum int64
	for i := range c.stripes {
		sum += c.stripes[i].v.Load()
	}
	return sum
}

// Gauge is a single instantaneous value (set/add semantics, no sharding:
// gauges track states, not event rates, and are written on rare paths).
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if !enabled.Load() {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if !enabled.Load() {
		return
	}
	g.v.Add(delta)
}

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Max is a high-water-mark tracker: Observe keeps the largest value seen.
type Max struct {
	v atomic.Int64
}

// Observe raises the mark to v if v exceeds it.
func (m *Max) Observe(v int64) {
	if !enabled.Load() {
		return
	}
	for {
		cur := m.v.Load()
		if v <= cur || m.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Load returns the high-water mark.
func (m *Max) Load() int64 { return m.v.Load() }

// Reset clears the mark. High-water marks are deliberately sticky — a
// transient spike should survive until someone reads it — so Reset exists for
// the rare caller that has explained the spike and wants to watch for the
// next one (e.g. the invariant suite after clearing an injected fault).
func (m *Max) Reset() { m.v.Store(0) }

// NumBuckets is the fixed bucket count of every Histogram. Bucket 0 counts
// zero-valued observations; bucket i (1 ≤ i < NumBuckets-1) counts values in
// [2^(i-1), 2^i); the last bucket is the overflow (≥ 2^(NumBuckets-2)).
// Eighteen buckets span 0..65535 exactly, which covers every instrumented
// quantity (spin counts, descent depths, shift distances, chunk sizes) with
// room to spare.
const NumBuckets = 18

// Histogram is a sharded power-of-two-bucket histogram with an exact count
// and sum (so means are exact even though bucket boundaries are coarse).
type Histogram struct {
	stripes [numStripes]histStripe
}

type histStripe struct {
	buckets [NumBuckets]atomic.Int64
	sum     atomic.Int64
	_       [4]int64
}

// BucketOf maps a value to its bucket index. Negative values clamp to 0:
// every instrumented quantity is a size or a count, so a negative can only
// come from a racy snapshot and belongs with the zeros. Exported so callers
// that assemble a HistSnapshot by hand (scrape-time structural walks) bucket
// identically to live histograms.
func BucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	b := bits.Len64(uint64(v))
	if b > NumBuckets-1 {
		return NumBuckets - 1
	}
	return b
}

// Observe records one value on the hinted stripe.
func (h *Histogram) Observe(hint int, v int64) {
	if !enabled.Load() {
		return
	}
	st := &h.stripes[uint(hint)%numStripes]
	st.buckets[BucketOf(v)].Add(1)
	if v > 0 {
		st.sum.Add(v)
	}
}

// HistSnapshot is a point-in-time aggregate of a Histogram.
type HistSnapshot struct {
	Count   int64
	Sum     int64
	Buckets [NumBuckets]int64
}

// Mean returns the average observed value (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// UpperBound returns the inclusive upper bound of bucket i, with the last
// bucket reported as -1 (+Inf).
func UpperBound(i int) int64 {
	switch {
	case i == 0:
		return 0
	case i >= NumBuckets-1:
		return -1
	default:
		return int64(1)<<i - 1
	}
}

// Snapshot sums the stripes. Concurrent writers may land between stripe
// reads; each field is individually a value the true aggregate passed
// through.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.stripes {
		st := &h.stripes[i]
		for b := range st.buckets {
			s.Buckets[b] += st.buckets[b].Load()
		}
		s.Sum += st.sum.Load()
	}
	for _, c := range s.Buckets {
		s.Count += c
	}
	return s
}
