package telemetry

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// withEnabled runs f with recording on, restoring the prior state after.
func withEnabled(t *testing.T, f func()) {
	t.Helper()
	prev := Enabled()
	SetEnabled(true)
	defer SetEnabled(prev)
	f()
}

func TestCounterGated(t *testing.T) {
	var c Counter
	SetEnabled(false)
	c.Inc(0)
	c.Add(3, 10)
	if got := c.Load(); got != 0 {
		t.Fatalf("disabled counter recorded: %d", got)
	}
	withEnabled(t, func() {
		c.Inc(0)
		c.Add(7, 41)
	})
	if got := c.Load(); got != 42 {
		t.Fatalf("Load = %d, want 42", got)
	}
}

func TestCounterStripesSum(t *testing.T) {
	withEnabled(t, func() {
		var c Counter
		var wg sync.WaitGroup
		const workers, per = 8, 1000
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < per; i++ {
					c.Inc(w)
				}
			}(w)
		}
		wg.Wait()
		if got := c.Load(); got != workers*per {
			t.Fatalf("Load = %d, want %d", got, workers*per)
		}
	})
}

func TestGaugeAndMax(t *testing.T) {
	var g Gauge
	var m Max
	SetEnabled(false)
	g.Set(5)
	m.Observe(5)
	if g.Load() != 0 || m.Load() != 0 {
		t.Fatalf("disabled gauge/max recorded: %d/%d", g.Load(), m.Load())
	}
	withEnabled(t, func() {
		g.Set(5)
		g.Add(-2)
		m.Observe(7)
		m.Observe(3) // must not lower the mark
	})
	if g.Load() != 3 {
		t.Fatalf("gauge = %d, want 3", g.Load())
	}
	if m.Load() != 7 {
		t.Fatalf("max = %d, want 7", m.Load())
	}
}

func TestBucketOf(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-3, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{65535, 16}, {65536, 17}, {1 << 40, NumBuckets - 1},
	}
	for _, c := range cases {
		if got := BucketOf(c.v); got != c.want {
			t.Errorf("BucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestUpperBoundMatchesBuckets(t *testing.T) {
	// Every bucket's inclusive upper bound must itself land in that bucket,
	// and the next value must land in the next bucket.
	for i := 0; i < NumBuckets-1; i++ {
		ub := UpperBound(i)
		if got := BucketOf(ub); got != i {
			t.Errorf("BucketOf(UpperBound(%d)=%d) = %d", i, ub, got)
		}
		if got := BucketOf(ub + 1); got != i+1 {
			t.Errorf("BucketOf(UpperBound(%d)+1) = %d, want %d", i, got, i+1)
		}
	}
	if UpperBound(NumBuckets-1) != -1 {
		t.Errorf("last bucket upper bound = %d, want -1 (+Inf)", UpperBound(NumBuckets-1))
	}
}

func TestHistogramSnapshot(t *testing.T) {
	withEnabled(t, func() {
		var h Histogram
		vals := []int64{0, 1, 1, 3, 100, 65536}
		for i, v := range vals {
			h.Observe(i, v)
		}
		s := h.Snapshot()
		if s.Count != int64(len(vals)) {
			t.Fatalf("Count = %d, want %d", s.Count, len(vals))
		}
		var wantSum int64
		for _, v := range vals {
			wantSum += v
		}
		if s.Sum != wantSum {
			t.Fatalf("Sum = %d, want %d", s.Sum, wantSum)
		}
		if s.Buckets[0] != 1 || s.Buckets[1] != 2 || s.Buckets[2] != 1 {
			t.Fatalf("low buckets = %v", s.Buckets[:3])
		}
		if got := s.Mean(); got != float64(wantSum)/float64(len(vals)) {
			t.Fatalf("Mean = %v", got)
		}
	})
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup", "first")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Counter("dup", "second")
}

func TestPrometheusExposition(t *testing.T) {
	withEnabled(t, func() {
		r := NewRegistry()
		c := r.Counter("sv_ops_total", "total ops")
		g := r.Gauge("sv_live", "live nodes")
		h := r.Histogram("sv_depth", "descent depth")
		r.CounterFunc("sv_fn_total", "func-backed", func() int64 { return 9 })
		r.GaugeFunc("sv_occ_mean", "mean occupancy", func() float64 { return 1.5 })
		c.Add(0, 3)
		g.Set(4)
		h.Observe(0, 2)
		h.Observe(0, 5)

		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		out := b.String()
		for _, want := range []string{
			"# TYPE sv_ops_total counter",
			"sv_ops_total 3",
			"# TYPE sv_live gauge",
			"sv_live 4",
			"# TYPE sv_depth histogram",
			`sv_depth_bucket{le="0"} 0`,
			`sv_depth_bucket{le="3"} 1`,
			`sv_depth_bucket{le="7"} 2`,
			`sv_depth_bucket{le="+Inf"} 2`,
			"sv_depth_sum 7",
			"sv_depth_count 2",
			"sv_fn_total 9",
			"sv_occ_mean 1.5",
		} {
			if !strings.Contains(out, want) {
				t.Errorf("exposition missing %q:\n%s", want, out)
			}
		}
		// Cumulative bucket counts must be non-decreasing.
		last := int64(-1)
		for _, line := range strings.Split(out, "\n") {
			if !strings.HasPrefix(line, "sv_depth_bucket") {
				continue
			}
			v, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
			if err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			if v < last {
				t.Fatalf("bucket counts not cumulative: %q after %d", line, last)
			}
			last = v
		}
	})
}

func TestJSONSnapshotIsValid(t *testing.T) {
	withEnabled(t, func() {
		r := NewRegistry()
		c := r.Counter("ops", "ops")
		h := r.Histogram("hist", "hist")
		c.Inc(0)
		h.Observe(0, 8)

		var doc map[string]any
		if err := json.Unmarshal([]byte(r.String()), &doc); err != nil {
			t.Fatalf("String() is not valid JSON: %v\n%s", err, r.String())
		}
		if doc["ops"] != float64(1) {
			t.Fatalf("ops = %v", doc["ops"])
		}
		hv, ok := doc["hist"].(map[string]any)
		if !ok || hv["count"] != float64(1) || hv["sum"] != float64(8) {
			t.Fatalf("hist = %v", doc["hist"])
		}
	})
}

func TestViewCombinesRegistries(t *testing.T) {
	withEnabled(t, func() {
		a, b := NewRegistry(), NewRegistry()
		a.Counter("from_a", "a").Inc(0)
		b.Counter("from_b", "b").Inc(0)
		v := NewView(a, b)
		var sb strings.Builder
		if err := v.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		out := sb.String()
		if !strings.Contains(out, "from_a 1") || !strings.Contains(out, "from_b 1") {
			t.Fatalf("view missing registries:\n%s", out)
		}
		names := v.Names()
		if len(names) != 2 || names[0] != "from_a" || names[1] != "from_b" {
			t.Fatalf("Names = %v", names)
		}
	})
}

func TestConcurrentObserveAndSnapshot(t *testing.T) {
	// Race-detector exercise: snapshots while writers run must be clean.
	withEnabled(t, func() {
		var h Histogram
		var c Counter
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					h.Observe(w, int64(i%100))
					c.Inc(w)
				}
			}(w)
		}
		for i := 0; i < 100; i++ {
			s := h.Snapshot()
			if s.Count < 0 || s.Sum < 0 {
				t.Errorf("negative snapshot: %+v", s)
			}
			_ = c.Load()
		}
		close(stop)
		wg.Wait()
		s := h.Snapshot()
		if s.Count != c.Load() {
			t.Fatalf("quiescent Count %d != counter %d", s.Count, c.Load())
		}
	})
}

func TestLabeledRegistrySeries(t *testing.T) {
	withEnabled(t, func() {
		r := NewLabeledRegistry("shard", "3")
		r.Counter("sv_ops_total", "total ops").Add(0, 7)
		h := r.Histogram("sv_depth", "descent depth")
		h.Observe(0, 2)

		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		out := b.String()
		for _, want := range []string{
			"# TYPE sv_ops_total counter",
			`sv_ops_total{shard="3"} 7`,
			`sv_depth_bucket{shard="3",le="3"} 1`,
			`sv_depth_sum{shard="3"} 2`,
			`sv_depth_count{shard="3"} 1`,
		} {
			if !strings.Contains(out, want) {
				t.Errorf("labeled exposition missing %q:\n%s", want, out)
			}
		}
		var doc map[string]any
		if err := json.Unmarshal([]byte(r.String()), &doc); err != nil {
			t.Fatalf("String() is not valid JSON: %v\n%s", err, r.String())
		}
		if doc[`sv_ops_total{shard="3"}`] != float64(7) {
			t.Fatalf("labeled JSON key missing: %v", doc)
		}
	})
}

// TestLabeledViewDoesNotCollide is the sharded roll-up contract: a view over
// N same-shaped registries with distinct shard labels exposes N distinct
// series per family, one HELP/TYPE header per family, and N distinct names.
func TestLabeledViewDoesNotCollide(t *testing.T) {
	withEnabled(t, func() {
		const n = 4
		regs := make([]*Registry, n)
		for i := range regs {
			regs[i] = NewLabeledRegistry("shard", strconv.Itoa(i))
			regs[i].Counter("sv_restarts_total", "restarts").Add(0, int64(i))
		}
		v := NewView(regs...)
		var sb strings.Builder
		if err := v.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		out := sb.String()
		if got := strings.Count(out, "# TYPE sv_restarts_total counter"); got != 1 {
			t.Fatalf("want one TYPE header per family, got %d:\n%s", got, out)
		}
		for i := 0; i < n; i++ {
			want := fmt.Sprintf("sv_restarts_total{shard=%q} %d", strconv.Itoa(i), i)
			if !strings.Contains(out, want) {
				t.Fatalf("view missing series %q:\n%s", want, out)
			}
		}
		names := v.Names()
		seen := map[string]bool{}
		for _, nm := range names {
			if seen[nm] {
				t.Fatalf("colliding series name %q in %v", nm, names)
			}
			seen[nm] = true
		}
		if len(names) != n {
			t.Fatalf("want %d distinct series, got %v", n, names)
		}
	})
}
