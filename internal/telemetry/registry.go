package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Kind is the exposition type of a registered metric.
type Kind int

const (
	KindCounter Kind = iota + 1
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// entry is one registered metric: a name, a help line, and a collector
// closure evaluated at exposition time. Func-backed entries let always-on
// counters that live elsewhere (striped map counters, hazard-domain totals,
// structural walks) appear in the same exposition as telemetry-native types.
type entry struct {
	name string
	help string
	kind Kind
	val  func() float64
	hist func() HistSnapshot
}

// Registry is an ordered collection of metrics. A registry is typically
// owned by one structure instance (a Map) or by a package (Global); combine
// several into one exposition with NewView.
type Registry struct {
	mu      sync.Mutex
	entries []entry
	names   map[string]bool
	// labels is the registry's pre-rendered const label set (`shard="3"`),
	// attached to every series it exposes. Empty for unlabeled registries.
	labels string
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

// NewLabeledRegistry creates an empty registry whose every series carries the
// given constant label pairs (name1, value1, name2, value2, ...). Labels make
// same-named metrics from several registries distinct series instead of
// colliding duplicates, so N structure instances — the shards of a
// key-range-partitioned map, say — can export through one View. It panics on
// an odd pair count (programmer error, like a duplicate metric name).
func NewLabeledRegistry(pairs ...string) *Registry {
	if len(pairs)%2 != 0 {
		panic("telemetry: NewLabeledRegistry needs name/value pairs")
	}
	r := NewRegistry()
	var b strings.Builder
	for i := 0; i < len(pairs); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", pairs[i], pairs[i+1])
	}
	r.labels = b.String()
	return r
}

// Labels returns the registry's pre-rendered const label set ("" when
// unlabeled).
func (r *Registry) Labels() string { return r.labels }

// series renders a metric name with the registry's const labels and any
// extra per-series labels (a histogram bucket's le), in exposition form.
func (r *Registry) series(name string, extra ...string) string {
	if r.labels == "" && len(extra) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	b.WriteString(r.labels)
	for _, e := range extra {
		if b.Len() > len(name)+1 {
			b.WriteByte(',')
		}
		b.WriteString(e)
	}
	b.WriteByte('}')
	return b.String()
}

// Global is the process-wide registry. Packages whose metrics are not tied
// to a structure instance (seqlock, vectormap) register here at init.
var Global = NewRegistry()

func (r *Registry) add(e entry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[e.name] {
		panic("telemetry: duplicate metric name " + e.name)
	}
	r.names[e.name] = true
	r.entries = append(r.entries, e)
}

// Counter creates, registers, and returns a sharded counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.add(entry{name: name, help: help, kind: KindCounter, val: func() float64 { return float64(c.Load()) }})
	return c
}

// Gauge creates, registers, and returns a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.add(entry{name: name, help: help, kind: KindGauge, val: func() float64 { return float64(g.Load()) }})
	return g
}

// MaxGauge creates, registers, and returns a high-water tracker, exposed as
// a gauge.
func (r *Registry) MaxGauge(name, help string) *Max {
	m := &Max{}
	r.add(entry{name: name, help: help, kind: KindGauge, val: func() float64 { return float64(m.Load()) }})
	return m
}

// Histogram creates, registers, and returns a power-of-two histogram.
func (r *Registry) Histogram(name, help string) *Histogram {
	h := &Histogram{}
	r.add(entry{name: name, help: help, kind: KindHistogram, hist: h.Snapshot})
	return h
}

// CounterFunc registers a counter whose value is collected from fn at
// exposition time (for always-on totals owned elsewhere).
func (r *Registry) CounterFunc(name, help string, fn func() int64) {
	r.add(entry{name: name, help: help, kind: KindCounter, val: func() float64 { return float64(fn()) }})
}

// GaugeFunc registers a gauge collected from fn at exposition time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.add(entry{name: name, help: help, kind: KindGauge, val: fn})
}

// HistogramFunc registers a histogram whose snapshot is collected from fn at
// exposition time.
func (r *Registry) HistogramFunc(name, help string, fn func() HistSnapshot) {
	r.add(entry{name: name, help: help, kind: KindHistogram, hist: fn})
}

// snapshotEntries copies the entry list under the lock; collectors run
// outside it (a GaugeFunc may walk the owning structure).
func (r *Registry) snapshotEntries() []entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]entry(nil), r.entries...)
}

// WritePrometheus renders the registry in Prometheus text exposition format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return NewView(r).WritePrometheus(w)
}

// String renders the registry as JSON; Registry implements expvar.Var, so
// expvar.Publish("skipvector", reg) exposes it on /debug/vars.
func (r *Registry) String() string {
	return NewView(r).String()
}

// View is a read-only composition of registries exposed as one metrics
// document (e.g. a map's own registry plus the process-global one).
type View struct {
	regs []*Registry
}

// NewView combines registries, in order, into one exposition.
func NewView(regs ...*Registry) *View { return &View{regs: regs} }

// WritePrometheus renders every metric of every registry in Prometheus text
// exposition format (HELP/TYPE comments, cumulative histogram buckets). When
// several registries expose the same metric family — N labeled shard
// registries, say — the HELP/TYPE header is emitted once per family and the
// per-registry series are distinguished by their const labels.
func (v *View) WritePrometheus(w io.Writer) error {
	headered := map[string]bool{}
	for _, r := range v.regs {
		for _, e := range r.snapshotEntries() {
			if !headered[e.name] {
				headered[e.name] = true
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", e.name, e.help, e.name, e.kind); err != nil {
					return err
				}
			}
			if e.kind == KindHistogram {
				s := e.hist()
				cum := int64(0)
				for i, c := range s.Buckets {
					cum += c
					le := "+Inf"
					if ub := UpperBound(i); ub >= 0 {
						le = fmt.Sprintf("%d", ub)
					}
					if _, err := fmt.Fprintf(w, "%s %d\n", r.series(e.name+"_bucket", fmt.Sprintf("le=%q", le)), cum); err != nil {
						return err
					}
				}
				if _, err := fmt.Fprintf(w, "%s %d\n%s %d\n", r.series(e.name+"_sum"), s.Sum, r.series(e.name+"_count"), s.Count); err != nil {
					return err
				}
				continue
			}
			if _, err := fmt.Fprintf(w, "%s %s\n", r.series(e.name), formatFloat(e.val())); err != nil {
				return err
			}
		}
	}
	return nil
}

// String renders the view as one JSON object keyed by metric name, with
// histograms as {"count","sum","buckets"} sub-objects. The output is valid
// expvar.Var content.
func (v *View) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for _, r := range v.regs {
		for _, e := range r.snapshotEntries() {
			if !first {
				b.WriteByte(',')
			}
			first = false
			fmt.Fprintf(&b, "%q:", r.series(e.name))
			if e.kind == KindHistogram {
				s := e.hist()
				fmt.Fprintf(&b, `{"count":%d,"sum":%d,"buckets":[`, s.Count, s.Sum)
				for i, c := range s.Buckets {
					if i > 0 {
						b.WriteByte(',')
					}
					fmt.Fprintf(&b, "%d", c)
				}
				b.WriteString("]}")
				continue
			}
			b.WriteString(formatFloat(e.val()))
		}
	}
	b.WriteByte('}')
	return b.String()
}

// Names returns the sorted series names across the view (tests, discovery).
// Labeled registries contribute their names with the label set attached, so a
// view over N labeled shard registries reports N distinct series per family.
func (v *View) Names() []string {
	var out []string
	for _, r := range v.regs {
		for _, e := range r.snapshotEntries() {
			out = append(out, r.series(e.name))
		}
	}
	sort.Strings(out)
	return out
}

// formatFloat renders a metric value: integral values without an exponent or
// trailing zeros, everything else with full float formatting.
func formatFloat(f float64) string {
	if f == float64(int64(f)) {
		return fmt.Sprintf("%d", int64(f))
	}
	return fmt.Sprintf("%g", f)
}
