// Package blink implements a concurrent B-link tree (Lehman & Yao) with
// optimistic lock coupling, built on the same sequence-lock primitive as
// the skip vector. The paper notes that the skip vector "bears similarity
// to B+ trees" but that no correct, concurrent, high-performance B+ tree
// was available to compare against (Section V-A — it even mentions, and
// rejects for methodology reasons, a third-party Go implementation); this
// package supplies that missing comparator on equal footing: same language,
// same lock primitive, same value representation.
//
// Design notes:
//
//   - Every node carries a high key (fence) and a right-sibling pointer,
//     the B-link invention that lets readers recover from concurrent
//     splits by moving right instead of restarting or locking.
//   - Readers use optimistic lock coupling: snapshot a node's sequence
//     lock, read, validate, descend; any interference restarts the
//     operation. All optimistically-read fields are atomic cells (as in
//     the skip vector) so the scheme is well-defined under the Go memory
//     model.
//   - Writers lock the leaf, and on overflow split it and propagate the
//     separator upward by re-locking ancestors recorded during the
//     descent, moving right as needed to find the correct parent.
//   - Like many production B-link implementations, deletion is lazy: keys
//     are removed from leaves but nodes are never merged; structural
//     shrinking is left as maintenance. (The skip vector's lazy orphan
//     merging is its analogue of this choice.)
package blink

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"skipvector/internal/seqlock"
)

// Fanout is the maximum number of keys per node. 32 matches the skip
// vector's default chunk target for a like-for-like locality comparison.
const Fanout = 32

// Sentinel key bounds; user keys must lie strictly between them.
const (
	minKey = math.MinInt64
	maxKey = math.MaxInt64
)

// node is a B-link tree node. keys are sorted; for leaves, vals[i] is the
// payload for keys[i]; for interior nodes, kids[i] is the subtree for keys
// < keys[i]... following the "separator after child" convention: kids[i]
// covers [keys[i-1], keys[i]) with keys[-1] = the node's low bound.
//
// All fields read optimistically are atomic cells; size is the element
// count of keys. highKey is the node's upper fence: a search key ≥ highKey
// must move right to the sibling.
type node[V any] struct {
	lock    seqlock.Lock
	leaf    bool
	level   int32 // 0 for leaves; parents are child level + 1
	size    atomic.Int32
	highKey atomic.Int64
	next    atomic.Pointer[node[V]]
	keys    []atomic.Int64
	vals    []atomic.Pointer[V]       // leaves only
	kids    []atomic.Pointer[node[V]] // interior only; len = Fanout+1
}

func newNode[V any](leaf bool, level int32) *node[V] {
	n := &node[V]{leaf: leaf, level: level}
	n.keys = make([]atomic.Int64, Fanout)
	if leaf {
		n.vals = make([]atomic.Pointer[V], Fanout)
	} else {
		n.kids = make([]atomic.Pointer[node[V]], Fanout+1)
	}
	n.highKey.Store(maxKey)
	return n
}

// Tree is a concurrent ordered map from int64 keys to *V values. All
// methods are safe for concurrent use.
type Tree[V any] struct {
	root   atomic.Pointer[node[V]]
	rootMu sync.Mutex // serializes root replacement only
	height atomic.Int32
	length atomic.Int64
}

// New builds an empty tree.
func New[V any]() *Tree[V] {
	t := &Tree[V]{}
	t.root.Store(newNode[V](true, 0))
	t.height.Store(1)
	return t
}

// Len returns the number of keys present.
func (t *Tree[V]) Len() int { return int(t.length.Load()) }

// snapshotSize clamps a racy size read into the valid index range.
func (n *node[V]) snapshotSize() int {
	s := int(n.size.Load())
	if s < 0 {
		return 0
	}
	if s > Fanout {
		return Fanout
	}
	return s
}

// search returns the index of the first key ≥ k within the snapshot size s.
func (n *node[V]) search(k int64, s int) int {
	lo, hi := 0, s
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if n.keys[mid].Load() < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// childFor picks the child to descend into for key k: kids[i] where i is
// the number of separators ≤ k (separator keys[i] is the low bound of
// kids[i+1]).
func (n *node[V]) childFor(k int64, s int) *node[V] {
	i := n.search(k, s)
	if i < s && n.keys[i].Load() == k {
		i++
	}
	return n.kids[i].Load()
}

// Lookup returns the value for k.
func (t *Tree[V]) Lookup(k int64) (*V, bool) {
	checkKey(k)
	for {
		if v, ok, valid := t.lookupOnce(k); valid {
			return v, ok
		}
	}
}

func (t *Tree[V]) lookupOnce(k int64) (v *V, found, valid bool) {
	curr := t.root.Load()
	ver, ok := curr.lock.ReadVersion()
	if !ok {
		return nil, false, false
	}
	for {
		// Move right past concurrent splits.
		for k >= curr.highKey.Load() {
			next := curr.next.Load()
			if next == nil {
				return nil, false, false
			}
			nv, ok2 := next.lock.ReadVersion()
			if !ok2 || !curr.lock.Validate(ver) {
				return nil, false, false
			}
			curr, ver = next, nv
		}
		s := curr.snapshotSize()
		if curr.leaf {
			i := curr.search(k, s)
			var val *V
			hit := i < s && curr.keys[i].Load() == k
			if hit {
				val = curr.vals[i].Load()
			}
			if !curr.lock.Validate(ver) {
				return nil, false, false
			}
			return val, hit, true
		}
		child := curr.childFor(k, s)
		if child == nil {
			return nil, false, false
		}
		cv, ok2 := child.lock.ReadVersion()
		if !ok2 || !curr.lock.Validate(ver) {
			return nil, false, false
		}
		curr, ver = child, cv
	}
}

// Contains reports whether k is present.
func (t *Tree[V]) Contains(k int64) bool {
	_, ok := t.Lookup(k)
	return ok
}

// checkKey rejects sentinel keys.
func checkKey(k int64) {
	if k == minKey || k == maxKey {
		panic(fmt.Sprintf("blink: key %d is reserved", k))
	}
}
