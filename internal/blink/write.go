package blink

// Insert adds k→v, returning false if k is already present.
func (t *Tree[V]) Insert(k int64, v *V) bool {
	checkKey(k)
	for {
		leaf, ok := t.lockLeaf(k)
		if !ok {
			continue
		}
		s := int(leaf.size.Load())
		i := leaf.search(k, s)
		if i < s && leaf.keys[i].Load() == k {
			leaf.lock.Abort()
			return false
		}
		if s < Fanout {
			for j := s; j > i; j-- {
				leaf.keys[j].Store(leaf.keys[j-1].Load())
				leaf.vals[j].Store(leaf.vals[j-1].Load())
			}
			leaf.keys[i].Store(k)
			leaf.vals[i].Store(v)
			leaf.size.Store(int32(s + 1))
			leaf.lock.Release()
			t.length.Add(1)
			return true
		}
		// Overflow: split the leaf and insert into the proper half, then
		// propagate the separator upward.
		sib := newNode[V](true, 0)
		half := Fanout / 2
		for j := half; j < Fanout; j++ {
			sib.keys[j-half].Store(leaf.keys[j].Load())
			sib.vals[j-half].Store(leaf.vals[j].Load())
			leaf.vals[j].Store(nil)
		}
		sib.size.Store(int32(Fanout - half))
		leaf.size.Store(int32(half))
		sep := sib.keys[0].Load()
		sib.highKey.Store(leaf.highKey.Load())
		sib.next.Store(leaf.next.Load())
		// Insert k into the correct side while sib is still private (and
		// the leaf still locked).
		target := leaf
		if k >= sep {
			target = sib
		}
		ts := int(target.size.Load())
		ti := target.search(k, ts)
		for j := ts; j > ti; j-- {
			target.keys[j].Store(target.keys[j-1].Load())
			target.vals[j].Store(target.vals[j-1].Load())
		}
		target.keys[ti].Store(k)
		target.vals[ti].Store(v)
		target.size.Store(int32(ts + 1))
		// Publish: link sib, shrink leaf's fence, release.
		leaf.next.Store(sib)
		leaf.highKey.Store(sep)
		leaf.lock.Release()
		t.length.Add(1)
		t.propagate(leaf, sep, sib)
		return true
	}
}

// lockLeaf descends optimistically to the leaf owning k and write-locks it.
// ok=false requests a full retry.
func (t *Tree[V]) lockLeaf(k int64) (*node[V], bool) {
	curr := t.root.Load()
	ver, ok := curr.lock.ReadVersion()
	if !ok {
		return nil, false
	}
	for {
		for k >= curr.highKey.Load() {
			next := curr.next.Load()
			if next == nil {
				return nil, false
			}
			nv, ok2 := next.lock.ReadVersion()
			if !ok2 || !curr.lock.Validate(ver) {
				return nil, false
			}
			curr, ver = next, nv
		}
		if curr.leaf {
			if !curr.lock.TryUpgrade(ver) {
				return nil, false
			}
			return curr, true
		}
		child := curr.childFor(k, curr.snapshotSize())
		if child == nil {
			return nil, false
		}
		cv, ok2 := child.lock.ReadVersion()
		if !ok2 || !curr.lock.Validate(ver) {
			return nil, false
		}
		curr, ver = child, cv
	}
}

// propagate inserts the separator (sep → right) into the parent level of
// the freshly split node left, splitting upward recursively and growing the
// root as needed. No locks are held on entry (Lehman-Yao: children are
// released before parents are locked, so writers hold one lock at a time).
func (t *Tree[V]) propagate(left *node[V], sep int64, right *node[V]) {
	for {
		parent, grewRoot := t.lockParentOf(left, sep, right)
		if grewRoot {
			return // left was the root; a new root now holds the separator
		}
		if parent == nil {
			continue // interference; retry
		}
		s := int(parent.size.Load())
		i := parent.search(sep, s)
		if s < Fanout {
			for j := s; j > i; j-- {
				parent.keys[j].Store(parent.keys[j-1].Load())
			}
			for j := s + 1; j > i+1; j-- {
				parent.kids[j].Store(parent.kids[j-1].Load())
			}
			parent.keys[i].Store(sep)
			parent.kids[i+1].Store(right)
			parent.size.Store(int32(s + 1))
			parent.lock.Release()
			return
		}
		// Parent full: split it, then continue propagating one level up.
		sib := newNode[V](false, parent.level)
		half := Fanout / 2
		// Separator promoted out of the interior node (classic B+ interior
		// split): keys[half] moves up, keys[half+1:] and kids[half+1:] move
		// to sib.
		promoted := parent.keys[half].Load()
		n := 0
		for j := half + 1; j < Fanout; j++ {
			sib.keys[n].Store(parent.keys[j].Load())
			n++
		}
		kn := 0
		for j := half + 1; j <= Fanout; j++ {
			sib.kids[kn].Store(parent.kids[j].Load())
			parent.kids[j].Store(nil)
			kn++
		}
		sib.size.Store(int32(n))
		sib.highKey.Store(parent.highKey.Load())
		sib.next.Store(parent.next.Load())
		parent.size.Store(int32(half))

		// Insert (sep,right) into the correct half while sib is private.
		target := parent
		if sep >= promoted {
			target = sib
		}
		ts := int(target.size.Load())
		ti := target.search(sep, ts)
		for j := ts; j > ti; j-- {
			target.keys[j].Store(target.keys[j-1].Load())
		}
		for j := ts + 1; j > ti+1; j-- {
			target.kids[j].Store(target.kids[j-1].Load())
		}
		target.keys[ti].Store(sep)
		target.kids[ti+1].Store(right)
		target.size.Store(int32(ts + 1))

		parent.next.Store(sib)
		parent.highKey.Store(promoted)
		parent.lock.Release()

		left, sep, right = parent, promoted, sib
	}
}

// lockParentOf locks the node one level above child that should receive a
// separator ≥ child's low bound. If child is the root, it grows the tree
// (installing a new root that already contains the separator) and reports
// grewRoot=true. Returns (nil, false) on interference.
func (t *Tree[V]) lockParentOf(child *node[V], sep int64, right *node[V]) (*node[V], bool) {
	t.rootMu.Lock()
	root := t.root.Load()
	if root == child {
		// Grow: new root over child and the sibling this caller split off.
		// Even if child has been split again meanwhile, (sep, right) is
		// still a correct first separator; later separators are propagated
		// into this new root by their own writers.
		nr := newNode[V](false, child.level+1)
		nr.keys[0].Store(sep)
		nr.kids[0].Store(child)
		nr.kids[1].Store(right)
		nr.size.Store(1)
		t.root.Store(nr)
		t.height.Add(1)
		t.rootMu.Unlock()
		return nil, true
	}
	t.rootMu.Unlock()

	// Descend from the root to the level just above child, steering by
	// sep; then lock and move right until sep < highKey.
	curr := root
	ver, ok := curr.lock.ReadVersion()
	if !ok {
		return nil, false
	}
	for {
		for sep >= curr.highKey.Load() {
			next := curr.next.Load()
			if next == nil {
				return nil, false
			}
			nv, ok2 := next.lock.ReadVersion()
			if !ok2 || !curr.lock.Validate(ver) {
				return nil, false
			}
			curr, ver = next, nv
		}
		if curr.level == child.level+1 {
			if !curr.lock.TryUpgrade(ver) {
				return nil, false
			}
			return curr, false
		}
		if curr.leaf || curr.level <= child.level {
			return nil, false // tree changed shape under us; retry
		}
		grand := curr.childFor(sep, curr.snapshotSize())
		if grand == nil {
			return nil, false
		}
		gv, ok2 := grand.lock.ReadVersion()
		if !ok2 || !curr.lock.Validate(ver) {
			return nil, false
		}
		curr, ver = grand, gv
	}
}
