package blink

import "fmt"

// Remove deletes k, returning false if absent. Deletion is leaf-local and
// lazy (no merging), the common production B-link simplification; the
// structure never shrinks, mirroring how the skip vector defers orphan
// cleanup to later operations.
func (t *Tree[V]) Remove(k int64) bool {
	checkKey(k)
	for {
		leaf, ok := t.lockLeaf(k)
		if !ok {
			continue
		}
		s := int(leaf.size.Load())
		i := leaf.search(k, s)
		if i >= s || leaf.keys[i].Load() != k {
			leaf.lock.Abort()
			return false
		}
		for j := i; j < s-1; j++ {
			leaf.keys[j].Store(leaf.keys[j+1].Load())
			leaf.vals[j].Store(leaf.vals[j+1].Load())
		}
		leaf.vals[s-1].Store(nil)
		leaf.size.Store(int32(s - 1))
		leaf.lock.Release()
		t.length.Add(-1)
		return true
	}
}

// RangeQuery calls fn for keys in [lo,hi] in ascending order. Each leaf is
// read under an optimistic snapshot and validated, so per-leaf results are
// consistent, but the scan as a whole is not linearizable (matching the
// FSL baseline's weaker range semantics rather than the skip vector's
// locked ranges).
func (t *Tree[V]) RangeQuery(lo, hi int64, fn func(k int64, v *V) bool) {
	if lo > hi {
		return
	}
	checkKey(lo)
	type pair struct {
		k int64
		v *V
	}
	curr, ok := t.findLeaf(lo)
	if !ok {
		t.RangeQuery(lo, hi, fn) // retry
		return
	}
	buf := make([]pair, 0, Fanout)
	for curr != nil {
		// Snapshot one leaf.
		for {
			ver, ok := curr.lock.ReadVersion()
			if !ok {
				continue
			}
			buf = buf[:0]
			s := curr.snapshotSize()
			for i := 0; i < s; i++ {
				k := curr.keys[i].Load()
				if k >= lo && k <= hi {
					buf = append(buf, pair{k: k, v: curr.vals[i].Load()})
				}
			}
			next := curr.next.Load()
			high := curr.highKey.Load()
			if !curr.lock.Validate(ver) {
				continue
			}
			for _, p := range buf {
				if !fn(p.k, p.v) {
					return
				}
			}
			if high > hi {
				return
			}
			curr = next
			break
		}
	}
}

// findLeaf descends optimistically to the leaf owning k (read-only).
func (t *Tree[V]) findLeaf(k int64) (*node[V], bool) {
	curr := t.root.Load()
	ver, ok := curr.lock.ReadVersion()
	if !ok {
		return nil, false
	}
	for {
		for k >= curr.highKey.Load() {
			next := curr.next.Load()
			if next == nil {
				return nil, false
			}
			nv, ok2 := next.lock.ReadVersion()
			if !ok2 || !curr.lock.Validate(ver) {
				return nil, false
			}
			curr, ver = next, nv
		}
		if curr.leaf {
			if !curr.lock.Validate(ver) {
				return nil, false
			}
			return curr, true
		}
		child := curr.childFor(k, curr.snapshotSize())
		if child == nil {
			return nil, false
		}
		cv, ok2 := child.lock.ReadVersion()
		if !ok2 || !curr.lock.Validate(ver) {
			return nil, false
		}
		curr, ver = child, cv
	}
}

// Keys returns all keys in ascending order (quiescent use: tests).
func (t *Tree[V]) Keys() []int64 {
	var out []int64
	// Walk down the leftmost spine, then right along the leaf chain.
	curr := t.root.Load()
	for !curr.leaf {
		curr = curr.kids[0].Load()
	}
	for curr != nil {
		s := curr.snapshotSize()
		for i := 0; i < s; i++ {
			out = append(out, curr.keys[i].Load())
		}
		curr = curr.next.Load()
	}
	return out
}

// Height returns the current tree height (leaf = 1).
func (t *Tree[V]) Height() int { return int(t.height.Load()) }

// CheckInvariants validates the structure in a quiescent state: sorted
// unique keys globally, in-node sortedness, fences consistent with
// content, child separators consistent, and every leaf reachable from the
// leftmost spine.
func (t *Tree[V]) CheckInvariants() error {
	return t.checkNode(t.root.Load(), minKey, maxKey)
}

func (t *Tree[V]) checkNode(n *node[V], low, high int64) error {
	s := int(n.size.Load())
	if s < 0 || s > Fanout {
		return errf("size %d out of range", s)
	}
	if n.highKey.Load() > high {
		// A node's fence may be tighter than its ancestors' but not wider.
		return errf("fence %d wider than bound %d", n.highKey.Load(), high)
	}
	prev := low
	for i := 0; i < s; i++ {
		k := n.keys[i].Load()
		if i == 0 {
			if k < low {
				return errf("key %d below low bound %d", k, low)
			}
		} else if k <= prev {
			return errf("keys out of order: %d after %d", k, prev)
		}
		if k >= n.highKey.Load() {
			return errf("key %d >= fence %d", k, n.highKey.Load())
		}
		prev = k
	}
	if n.leaf {
		return nil
	}
	childLow := low
	for i := 0; i <= s; i++ {
		c := n.kids[i].Load()
		if c == nil {
			return errf("nil child %d of interior node", i)
		}
		childHigh := n.highKey.Load()
		if i < s {
			childHigh = n.keys[i].Load()
		}
		if err := t.checkNode(c, childLow, childHigh); err != nil {
			return err
		}
		childLow = childHigh
	}
	return nil
}

func errf(format string, args ...any) error {
	return fmt.Errorf("blink: "+format, args...)
}
