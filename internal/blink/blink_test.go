package blink

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func vp(x int64) *int64 { return &x }

func TestBasicOps(t *testing.T) {
	tr := New[int64]()
	if tr.Contains(5) {
		t.Fatal("empty tree contains 5")
	}
	if !tr.Insert(5, vp(50)) || tr.Insert(5, vp(51)) {
		t.Fatal("Insert semantics")
	}
	if v, ok := tr.Lookup(5); !ok || *v != 50 {
		t.Fatalf("Lookup = %v,%t", v, ok)
	}
	if !tr.Remove(5) || tr.Remove(5) {
		t.Fatal("Remove semantics")
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSplitsAndGrowth(t *testing.T) {
	tr := New[int64]()
	const n = 10000
	for k := int64(0); k < n; k++ {
		if !tr.Insert(k, vp(k)) {
			t.Fatalf("Insert(%d) failed", k)
		}
	}
	if tr.Height() < 3 {
		t.Fatalf("height %d after %d ascending inserts", tr.Height(), n)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for k := int64(0); k < n; k += 97 {
		if v, ok := tr.Lookup(k); !ok || *v != k {
			t.Fatalf("Lookup(%d) failed", k)
		}
	}
	keys := tr.Keys()
	if len(keys) != n {
		t.Fatalf("Keys len %d", len(keys))
	}
	for i := range keys {
		if keys[i] != int64(i) {
			t.Fatalf("keys[%d] = %d", i, keys[i])
		}
	}
}

func TestDescendingInserts(t *testing.T) {
	tr := New[int64]()
	for k := int64(5000); k > 0; k-- {
		tr.Insert(k, vp(k))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	keys := tr.Keys()
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			t.Fatal("keys out of order")
		}
	}
}

func TestSequentialModel(t *testing.T) {
	tr := New[int64]()
	model := map[int64]int64{}
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 8000; i++ {
		k := int64(rng.Intn(500))
		switch rng.Intn(3) {
		case 0:
			_, had := model[k]
			if tr.Insert(k, vp(k+1)) == had {
				t.Fatalf("op %d Insert(%d) mismatch", i, k)
			}
			if !had {
				model[k] = k + 1
			}
		case 1:
			_, had := model[k]
			if tr.Remove(k) != had {
				t.Fatalf("op %d Remove(%d) mismatch", i, k)
			}
			delete(model, k)
		default:
			v, ok := tr.Lookup(k)
			mv, had := model[k]
			if ok != had || (ok && *v != mv) {
				t.Fatalf("op %d Lookup(%d) mismatch", i, k)
			}
		}
		if tr.Len() != len(model) {
			t.Fatalf("op %d Len=%d model=%d", i, tr.Len(), len(model))
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRangeQuery(t *testing.T) {
	tr := New[int64]()
	for k := int64(0); k < 2000; k += 2 {
		tr.Insert(k, vp(k))
	}
	var got []int64
	tr.RangeQuery(100, 200, func(k int64, v *int64) bool {
		if *v != k {
			t.Fatalf("payload mismatch at %d", k)
		}
		got = append(got, k)
		return true
	})
	if len(got) != 51 {
		t.Fatalf("range saw %d keys", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] != got[i-1]+2 {
			t.Fatalf("range = %v", got)
		}
	}
	// Early stop.
	n := 0
	tr.RangeQuery(0, 4000, func(int64, *int64) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestConcurrentDisjoint(t *testing.T) {
	tr := New[int64]()
	var wg sync.WaitGroup
	const goroutines = 8
	const perG = 1500
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(base int64) {
			defer wg.Done()
			for i := int64(0); i < perG; i++ {
				if !tr.Insert(base+i, vp(base+i)) {
					t.Errorf("Insert(%d) failed", base+i)
					return
				}
			}
			for i := int64(0); i < perG; i += 2 {
				if !tr.Remove(base + i) {
					t.Errorf("Remove(%d) failed", base+i)
					return
				}
			}
			for i := int64(1); i < perG; i += 2 {
				if v, ok := tr.Lookup(base + i); !ok || *v != base+i {
					t.Errorf("Lookup(%d) failed", base+i)
					return
				}
			}
		}(int64(g) * 100_000)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if want := goroutines * perG / 2; tr.Len() != want {
		t.Fatalf("Len = %d want %d", tr.Len(), want)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentSharedAccounting(t *testing.T) {
	tr := New[int64]()
	const keySpace = 128
	var inserts, removes [keySpace]atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 2000; i++ {
				k := int64(rng.Intn(keySpace))
				switch rng.Intn(3) {
				case 0:
					if tr.Insert(k, vp(k)) {
						inserts[k].Add(1)
					}
				case 1:
					if tr.Remove(k) {
						removes[k].Add(1)
					}
				default:
					if v, ok := tr.Lookup(k); ok && *v != k {
						t.Errorf("corrupt value at %d", k)
						return
					}
				}
			}
		}(int64(g) + 3)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for k := 0; k < keySpace; k++ {
		diff := inserts[k].Load() - removes[k].Load()
		if diff != 0 && diff != 1 {
			t.Fatalf("key %d diff %d", k, diff)
		}
		if present := tr.Contains(int64(k)); present != (diff == 1) {
			t.Fatalf("key %d present=%t diff=%d", k, present, diff)
		}
		if diff == 1 {
			total++
		}
	}
	if tr.Len() != total {
		t.Fatalf("Len=%d want %d", tr.Len(), total)
	}
}

func TestConcurrentInsertRace(t *testing.T) {
	tr := New[int64]()
	const keys = 500
	var wins [keys]atomic.Int32
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := int64(0); k < keys; k++ {
				if tr.Insert(k, vp(k)) {
					wins[k].Add(1)
				}
			}
		}()
	}
	wg.Wait()
	for k := 0; k < keys; k++ {
		if wins[k].Load() != 1 {
			t.Fatalf("key %d won %d times", k, wins[k].Load())
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMatchesModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := New[int64]()
		model := map[int64]bool{}
		for i := 0; i < 600; i++ {
			k := int64(rng.Intn(200))
			switch rng.Intn(3) {
			case 0:
				if tr.Insert(k, vp(k)) == model[k] {
					return false
				}
				model[k] = true
			case 1:
				if tr.Remove(k) != model[k] {
					return false
				}
				delete(model, k)
			default:
				if tr.Contains(k) != model[k] {
					return false
				}
			}
		}
		return tr.CheckInvariants() == nil && tr.Len() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSentinelKeysPanic(t *testing.T) {
	tr := New[int64]()
	for _, k := range []int64{minKey, maxKey} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("key %d accepted", k)
				}
			}()
			tr.Insert(k, vp(0))
		}()
	}
}

// TestLazyDeletionKeepsWorking empties and refills the tree several times;
// since deletion never merges nodes, the structure accumulates empty leaves
// and must still route correctly through them.
func TestLazyDeletionKeepsWorking(t *testing.T) {
	tr := New[int64]()
	for cycle := 0; cycle < 4; cycle++ {
		for k := int64(0); k < 3000; k++ {
			if !tr.Insert(k, vp(k)) {
				t.Fatalf("cycle %d: Insert(%d) failed", cycle, k)
			}
		}
		for k := int64(0); k < 3000; k++ {
			if !tr.Remove(k) {
				t.Fatalf("cycle %d: Remove(%d) failed", cycle, k)
			}
		}
		if tr.Len() != 0 {
			t.Fatalf("cycle %d: Len = %d", cycle, tr.Len())
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
	}
}

func BenchmarkTreeOps(b *testing.B) {
	tr := New[int64]()
	const keyRange = 1 << 18
	for k := int64(0); k < keyRange; k += 2 {
		tr.Insert(k, vp(k))
	}
	b.Run("Lookup", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr.Lookup(int64(i*7) % keyRange)
		}
	})
	b.Run("InsertRemove", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			k := int64(i*7)%keyRange | 1 // odd keys: initially absent
			if i%2 == 0 {
				tr.Insert(k, vp(k))
			} else {
				tr.Remove(k)
			}
		}
	})
}
