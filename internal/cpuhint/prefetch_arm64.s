//go:build !purego

#include "textflag.h"

// func prefetch(p unsafe.Pointer)
//
// PRFM PLDL1KEEP: load-prefetch into L1 with temporal (keep) hint — the
// arm64 equivalent of PREFETCHT0 for the descent's read-and-search targets.
TEXT ·prefetch(SB), NOSPLIT, $0-8
	MOVD p+0(FP), R0
	PRFM (R0), PLDL1KEEP
	RET
