package cpuhint

import (
	"runtime"
	"testing"
	"unsafe"

	"skipvector/internal/telemetry"
)

// TestPrefetchIsSafeOnAnyPointer exercises the hint with the pointer classes
// the hot paths feed it: live heap memory, interior pointers, nil, and a
// dangling-looking address. None may fault — prefetch is architecturally
// exempt from memory faults, and the no-op build never dereferences at all.
func TestPrefetchIsSafeOnAnyPointer(t *testing.T) {
	buf := make([]byte, 4096)
	Prefetch(unsafe.Pointer(&buf[0]))
	Prefetch(unsafe.Pointer(&buf[len(buf)-1]))
	Prefetch(nil)
	// A misaligned interior pointer: hints take any byte address.
	Prefetch(unsafe.Pointer(&buf[13]))
	Prefetch2(unsafe.Pointer(&buf[0]), unsafe.Pointer(&buf[64]))
	Prefetch2(nil, nil)
	runtime.KeepAlive(buf)
}

// TestSupportedMatchesBuild pins the compile-time support matrix: the asm
// stub exists exactly on amd64/arm64 non-purego builds. A purego build of
// this same test asserts the inverse (CI runs both legs).
func TestSupportedMatchesBuild(t *testing.T) {
	wantAsm := runtime.GOARCH == "amd64" || runtime.GOARCH == "arm64"
	if supported && !wantAsm {
		t.Fatalf("supported=true on GOARCH=%s with no asm stub", runtime.GOARCH)
	}
	if Supported() != supported {
		t.Fatalf("Supported() = %v, const = %v", Supported(), supported)
	}
}

// TestSetEnabledGatesHints checks the ablation toggle and its interaction
// with the telemetry counter: with telemetry recording on, an enabled hint
// on a supported build bumps sv_prefetch_issued_total and a disabled one
// does not.
func TestSetEnabledGatesHints(t *testing.T) {
	defer SetEnabled(true)
	defer telemetry.SetEnabled(false)

	SetEnabled(false)
	if Enabled() {
		t.Fatal("Enabled() = true after SetEnabled(false)")
	}
	telemetry.SetEnabled(true)
	var x int64
	before := issued.Load()
	Prefetch(unsafe.Pointer(&x))
	if got := issued.Load(); got != before {
		t.Fatalf("disabled Prefetch recorded %d hints", got-before)
	}

	SetEnabled(true)
	if Enabled() != supported {
		t.Fatalf("Enabled() = %v on supported=%v build", Enabled(), supported)
	}
	Prefetch(unsafe.Pointer(&x))
	Prefetch2(unsafe.Pointer(&x), unsafe.Pointer(&x))
	got := issued.Load() - before
	want := int64(0)
	if supported {
		want = 3
	}
	if got != want {
		t.Fatalf("enabled Prefetch recorded %d hints, want %d", got, want)
	}
}

// BenchmarkPrefetch measures the per-hint cost (call + toggle check +
// instruction) so EXPERIMENTS.md can cite it against the miss latency it
// hides.
func BenchmarkPrefetch(b *testing.B) {
	buf := make([]byte, 1<<16)
	b.Run("hint", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Prefetch(unsafe.Pointer(&buf[(i*64)&(1<<16-1)]))
		}
	})
	b.Run("disabled", func(b *testing.B) {
		SetEnabled(false)
		defer SetEnabled(true)
		for i := 0; i < b.N; i++ {
			Prefetch(unsafe.Pointer(&buf[(i*64)&(1<<16-1)]))
		}
	})
}
