//go:build (!amd64 && !arm64) || purego

package cpuhint

import "unsafe"

// supported folds the Prefetch wrappers away entirely on this build: with a
// constant false guard the compiler deletes the call sites, so platforms
// without a stub (or purego builds, the fallback CI leg) pay nothing.
const supported = false

// prefetch is unreachable on this build (the wrappers guard on supported);
// it exists so both build flavours present the same internal surface.
func prefetch(p unsafe.Pointer) {}
