//go:build !purego

#include "textflag.h"

// func prefetch(p unsafe.Pointer)
//
// PREFETCHT0: pull the line holding p into every cache level. T0 (rather
// than T1/T2/NTA) because descent targets are read within a handful of
// instructions and then binary-searched — they want L1 residency, and the
// lines are small enough (a node header, a few key lines) not to thrash it.
TEXT ·prefetch(SB), NOSPLIT, $0-8
	MOVQ p+0(FP), AX
	PREFETCHT0 (AX)
	RET
