//go:build (amd64 || arm64) && !purego

package cpuhint

import "unsafe"

// supported folds the Prefetch wrappers down to real hints on this build.
const supported = true

// prefetch is implemented in prefetch_{amd64,arm64}.s. It must never be
// called directly: the wrappers own the nil check and the ablation toggle.
//
//go:noescape
func prefetch(p unsafe.Pointer)
