// Package cpuhint exposes best-effort CPU micro-architectural hints — today
// a single one: software prefetch. The skip vector's descent is a pointer
// chase (tower node → child node → data chunk) whose every step begins with
// a load from a cache line the previous step just discovered; issuing a
// PREFETCHT0/PRFM for that line while the protocol work of the current step
// (hazard publication, seqlock validation) is still in flight overlaps the
// miss latency with work that must happen anyway ("Skiplists with
// Foresight", PPoPP'18).
//
// Hints are exactly that: they never fault, never synchronize, and never
// change program semantics. A prefetch of a stale pointer — a node recycled
// between the load and the hint — merely warms an irrelevant line. That is
// what makes the hint safe to issue for speculatively read pointers *before*
// the seqlock validation that proves them consistent, which is precisely
// where the latency overlap comes from.
//
// Platform support is compile-time: amd64 and arm64 get one-instruction
// assembly stubs; every other GOARCH (or any build with the purego tag)
// compiles Prefetch down to nothing — the `supported` constant folds the
// whole body away, so unsupported platforms pay zero, not a dynamic check.
//
// On supported platforms a process-wide kill switch (SetEnabled) exists for
// ablation benchmarks; it costs one atomic load per hint, which the figures
// in BENCH_hotpath.json show is far below the win. The hint count is
// recorded in the process-global telemetry registry as
// sv_prefetch_issued_total (telemetry-gated, like every other instrument).
package cpuhint

import (
	"sync/atomic"
	"unsafe"

	"skipvector/internal/telemetry"
)

// disabled is the ablation kill switch; the zero value keeps hints on.
// Inverted so that package init needs no store.
var disabled atomic.Bool

// issued counts hints actually executed (supported platform, toggle on).
// Sharded by cache-line address bits: prefetch sites have no per-goroutine
// stripe at hand, and the line address is a free locality token.
var issued = telemetry.Global.Counter("sv_prefetch_issued_total",
	"Software prefetch hints issued on the descent and intra-chunk search hot paths.")

// Supported reports whether this build issues real prefetch instructions.
func Supported() bool { return supported }

// Enabled reports whether hints are currently being issued (always false on
// unsupported builds).
func Enabled() bool { return supported && !disabled.Load() }

// SetEnabled toggles hint emission on supported platforms. It exists for the
// prefetch on/off ablation (svbench -fig hotpath); production callers leave
// it alone. Toggling while other goroutines run is safe (the flag is atomic)
// but mid-trial flips make ablation numbers meaningless, so the benchmarks
// set it before starting workers.
func SetEnabled(on bool) { disabled.Store(!on) }

// Prefetch hints that the cache line containing p will be read soon
// (PREFETCHT0 on amd64, PRFM PLDL1KEEP on arm64). p may be nil, stale, torn,
// or otherwise garbage: prefetch instructions ignore faults by definition,
// and the hint body is assembly the race detector does not instrument, so no
// Go-level read of *p ever occurs. On unsupported builds the call compiles
// to nothing.
func Prefetch(p unsafe.Pointer) {
	if !supported || p == nil || disabled.Load() {
		return
	}
	issued.Inc(int(uintptr(p) >> 6))
	prefetch(p)
}

// Prefetch2 issues hints for two lines with one toggle check. It is the
// common shape on the descent: the next node's header line plus the first
// line of the chunk array the following step will search.
func Prefetch2(p, q unsafe.Pointer) {
	if !supported || disabled.Load() {
		return
	}
	if p != nil {
		issued.Inc(int(uintptr(p) >> 6))
		prefetch(p)
	}
	if q != nil {
		issued.Inc(int(uintptr(q) >> 6))
		prefetch(q)
	}
}
