// Package lincheck is a small linearizability checker for ordered-map
// histories, in the style of Wing & Gong. The test suite uses it to verify
// the skip vector's central claim (Section IV-C): every concurrent history
// of Lookup/Insert/Remove operations is equivalent to some sequential
// history that respects real-time order.
//
// The checker does an exhaustive search with memoization, so it is meant
// for small histories (tens of operations): record a short concurrent run
// with Recorder, then call Check.
package lincheck

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind is the operation type in a history.
type Kind int

// Operation kinds.
const (
	KindLookup Kind = iota + 1
	KindInsert
	KindRemove
	// KindRangeQuery is a serializable range query over [Key,Hi]: the
	// Pairs it observed must equal some linearization point's state
	// restricted to the window, exactly and in ascending key order.
	KindRangeQuery
	// KindRangeUpdate adds Delta to every value in [Key,Hi] as one atomic
	// operation; RetVal is the number of mappings it visited.
	KindRangeUpdate
	// KindBatch applies Items as one atomic multi-key batch, in ascending
	// key order with same-key items in slice order (mirroring ApplyBatch's
	// commit order); every item's recorded Outcome must match what the
	// sequential model produces at the batch's linearization point.
	KindBatch
	// KindSnapshot is a snapshot acquisition whose content was observed by
	// iterating the pinned view over [Key,Hi]. The acquisition linearizes at
	// a single point inside [Invoke,Return] — even though the iteration that
	// produced Pairs may have run long after Return, concurrent with
	// arbitrary later writes — so Pairs must equal the model state's
	// restriction to the window at that point, exactly and in ascending key
	// order. Validation is identical to KindRangeQuery; the difference is
	// operational (the interval covers only Snapshot(), not the reads).
	KindSnapshot
	// KindRebalance is a shard migration over the window [Key,Hi]: the
	// migrator pinned a snapshot of the range at some point inside
	// [Invoke,Return], copied it into fresh shards, and swapped the routing
	// table. Two things must hold of the abstract map: the migration changes
	// NOTHING (it is a pure representation change — the event applies no
	// state mutation), and the content the migrator observed through its
	// pinned snapshot (Pairs) must equal the model state's restriction to
	// the window at the acquisition's linearization point, exactly and in
	// ascending key order. Lost updates across the swap do not show up in
	// the event itself — they surface as later point reads returning stale
	// values, which the surrounding history then fails to linearize.
	KindRebalance
)

func (k Kind) String() string {
	switch k {
	case KindLookup:
		return "lookup"
	case KindInsert:
		return "insert"
	case KindRemove:
		return "remove"
	case KindRangeQuery:
		return "rangequery"
	case KindRangeUpdate:
		return "rangeupdate"
	case KindBatch:
		return "batch"
	case KindSnapshot:
		return "snapshot"
	case KindRebalance:
		return "rebalance"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// KV is one observed key/value pair in a range query's snapshot.
type KV struct {
	K, V int64
}

// BatchOutcome is the per-item result a KindBatch event recorded. The values
// mirror the implementation's outcome vocabulary; lincheck keeps its own copy
// so the checker stays free of implementation imports.
type BatchOutcome int

// Batch item outcomes.
const (
	BatchInserted BatchOutcome = iota + 1
	BatchUpdated
	BatchRemoved
	BatchAbsent
	BatchExists
)

func (o BatchOutcome) String() string {
	switch o {
	case BatchInserted:
		return "inserted"
	case BatchUpdated:
		return "updated"
	case BatchRemoved:
		return "removed"
	case BatchAbsent:
		return "absent"
	case BatchExists:
		return "exists"
	default:
		return fmt.Sprintf("BatchOutcome(%d)", int(o))
	}
}

// BatchItem is one op of a KindBatch event: a put (optionally insert-only) or
// a delete of Key, paired with the Outcome the implementation reported.
type BatchItem struct {
	Key, Val   int64
	Del        bool
	InsertOnly bool
	Outcome    BatchOutcome
}

// String renders the item for failure messages.
func (it BatchItem) String() string {
	switch {
	case it.Del:
		return fmt.Sprintf("del(%d)=%v", it.Key, it.Outcome)
	case it.InsertOnly:
		return fmt.Sprintf("ins(%d,%d)=%v", it.Key, it.Val, it.Outcome)
	default:
		return fmt.Sprintf("put(%d,%d)=%v", it.Key, it.Val, it.Outcome)
	}
}

// Event is one completed operation with its real-time interval. Timestamps
// come from the Recorder's global logical clock: Invoke < Return for each
// event, and intervals order events when they do not overlap.
type Event struct {
	Proc   int
	Kind   Kind
	Key    int64 // point-op key; lower bound of a range window
	Hi     int64 // inclusive upper bound of a range window
	Val    int64 // value argument for Insert
	Delta  int64 // increment a RangeUpdate applies to each value in range
	Pairs  []KV  // snapshot a RangeQuery observed, ascending key order
	Items  []BatchItem // ops of a KindBatch event, in request order
	RetOK  bool  // operation's boolean result (found / inserted / removed)
	RetVal int64 // value returned by a Lookup; count visited by a RangeUpdate
	Invoke int64
	Return int64
}

// String renders the event for failure messages.
func (e Event) String() string {
	switch e.Kind {
	case KindInsert:
		return fmt.Sprintf("P%d insert(%d,%d)=%t @[%d,%d]", e.Proc, e.Key, e.Val, e.RetOK, e.Invoke, e.Return)
	case KindRemove:
		return fmt.Sprintf("P%d remove(%d)=%t @[%d,%d]", e.Proc, e.Key, e.RetOK, e.Invoke, e.Return)
	case KindRangeQuery:
		return fmt.Sprintf("P%d rangequery[%d,%d]=%v @[%d,%d]", e.Proc, e.Key, e.Hi, e.Pairs, e.Invoke, e.Return)
	case KindRangeUpdate:
		return fmt.Sprintf("P%d rangeupdate[%d,%d]+=%d visited %d @[%d,%d]", e.Proc, e.Key, e.Hi, e.Delta, e.RetVal, e.Invoke, e.Return)
	case KindBatch:
		return fmt.Sprintf("P%d batch%v @[%d,%d]", e.Proc, e.Items, e.Invoke, e.Return)
	case KindSnapshot:
		return fmt.Sprintf("P%d snapshot[%d,%d]=%v @[%d,%d]", e.Proc, e.Key, e.Hi, e.Pairs, e.Invoke, e.Return)
	case KindRebalance:
		return fmt.Sprintf("P%d rebalance[%d,%d]=%v @[%d,%d]", e.Proc, e.Key, e.Hi, e.Pairs, e.Invoke, e.Return)
	default:
		return fmt.Sprintf("P%d lookup(%d)=(%d,%t) @[%d,%d]", e.Proc, e.Key, e.RetVal, e.RetOK, e.Invoke, e.Return)
	}
}

// Recorder collects events from concurrent goroutines with a shared logical
// clock. All methods are safe for concurrent use.
type Recorder struct {
	clock  atomic.Int64
	mu     sync.Mutex
	events []Event
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Begin returns an invocation timestamp.
func (r *Recorder) Begin() int64 { return r.clock.Add(1) }

// Now returns a fresh timestamp without recording anything. Use it to close
// an operation's real-time interval before its observations are materialized
// — a snapshot acquisition returns immediately, but the Pairs its event
// carries are produced by iterating the pinned view arbitrarily later.
func (r *Recorder) Now() int64 { return r.clock.Add(1) }

// End records a completed operation whose invocation timestamp was inv.
func (r *Recorder) End(e Event, inv int64) {
	r.EndAt(e, inv, r.clock.Add(1))
}

// EndAt records a completed operation with an explicit interval, for events
// whose observation outlives their linearization interval (KindSnapshot: the
// interval covers only the acquisition, captured with Begin/Now around it,
// while the event is filed after the snapshot has been read).
func (r *Recorder) EndAt(e Event, inv, ret int64) {
	e.Invoke = inv
	e.Return = ret
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

// History returns the recorded events.
func (r *Recorder) History() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Check reports whether the history is linearizable with respect to the
// sequential map specification (Section IV-A): Insert fails iff the key is
// present, Remove succeeds iff present, Lookup returns the mapped value.
// The second return is a human-readable explanation when the check fails.
func Check(history []Event) (bool, string) {
	n := len(history)
	if n == 0 {
		return true, ""
	}
	if n > 24 {
		return false, "lincheck: history too large for exhaustive checking (max 24 events)"
	}
	evs := make([]Event, n)
	copy(evs, history)
	sort.Slice(evs, func(i, j int) bool { return evs[i].Invoke < evs[j].Invoke })

	type stateKey struct {
		mask uint32
		sig  string
	}
	visited := map[stateKey]bool{}

	// DFS over linearization prefixes. state is the map contents.
	var dfs func(mask uint32, state map[int64]int64) bool
	dfs = func(mask uint32, state map[int64]int64) bool {
		if mask == (uint32(1)<<n)-1 {
			return true
		}
		key := stateKey{mask: mask, sig: sigOf(state)}
		if visited[key] {
			return false
		}
		visited[key] = true

		// minReturn over remaining events: an event may linearize next only
		// if no remaining event returned strictly before it was invoked.
		minReturn := int64(1) << 62
		for i := 0; i < n; i++ {
			if mask&(1<<i) == 0 && evs[i].Return < minReturn {
				minReturn = evs[i].Return
			}
		}
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				continue
			}
			e := evs[i]
			if e.Invoke > minReturn {
				continue // some remaining op strictly precedes e
			}
			undo, ok := apply(e, state)
			if !ok {
				continue
			}
			if dfs(mask|(1<<i), state) {
				return true
			}
			if undo != nil {
				undo()
			}
		}
		return false
	}

	if dfs(0, map[int64]int64{}) {
		return true, ""
	}
	var b strings.Builder
	b.WriteString("history not linearizable:\n")
	for _, e := range evs {
		fmt.Fprintf(&b, "  %s\n", e)
	}
	return false, b.String()
}

// apply checks e against the sequential spec and, when consistent,
// applies its effect to state. It returns an undo closure (nil when the
// event changed nothing) so the DFS can backtrack multi-key effects.
func apply(e Event, state map[int64]int64) (func(), bool) {
	switch e.Kind {
	case KindLookup:
		v, present := state[e.Key]
		if e.RetOK != present || (present && e.RetVal != v) {
			return nil, false
		}
		return nil, true
	case KindInsert:
		_, present := state[e.Key]
		if e.RetOK == present {
			return nil, false
		}
		if !e.RetOK {
			return nil, true
		}
		k := e.Key
		state[k] = e.Val
		return func() { delete(state, k) }, true
	case KindRemove:
		v, present := state[e.Key]
		if e.RetOK != present {
			return nil, false
		}
		if !e.RetOK {
			return nil, true
		}
		k := e.Key
		delete(state, k)
		return func() { state[k] = v }, true
	case KindRangeQuery, KindSnapshot, KindRebalance:
		// The observed snapshot must be exactly the state's restriction to
		// [Key,Hi]: same keys, same values, ascending order. A KindSnapshot
		// event mutates nothing — the pinned view's content is decided at the
		// acquisition's linearization point and the later reads only reveal it.
		// A KindRebalance event shares the rule: the migration's pinned
		// pre-copy view linearizes at its acquisition, and the migration
		// itself must be a no-op on the abstract map.
		keys := keysInRange(state, e.Key, e.Hi)
		if len(keys) != len(e.Pairs) {
			return nil, false
		}
		for i, k := range keys {
			if e.Pairs[i].K != k || e.Pairs[i].V != state[k] {
				return nil, false
			}
		}
		return nil, true
	case KindRangeUpdate:
		keys := keysInRange(state, e.Key, e.Hi)
		if e.RetVal != int64(len(keys)) {
			return nil, false
		}
		if e.Delta == 0 || len(keys) == 0 {
			return nil, true
		}
		d := e.Delta
		for _, k := range keys {
			state[k] += d
		}
		return func() {
			for _, k := range keys {
				state[k] -= d
			}
		}, true
	case KindBatch:
		return applyBatch(e, state)
	default:
		return nil, false
	}
}

// prevEntry is one key's pre-batch state, captured for multi-key undo.
type prevEntry struct {
	v       int64
	present bool
}

// applyBatch validates a KindBatch event item by item in ApplyBatch's commit
// order (ascending key, request order within a key), mutating state as it
// goes. First-touch snapshots give an exact multi-key undo, which also
// restores state when a mid-batch item contradicts the model — apply's
// contract is that a failed event leaves state unchanged.
func applyBatch(e Event, state map[int64]int64) (func(), bool) {
	idx := make([]int, len(e.Items))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return e.Items[idx[a]].Key < e.Items[idx[b]].Key })

	saved := map[int64]prevEntry{}
	touch := func(k int64) {
		if _, done := saved[k]; !done {
			v, present := state[k]
			saved[k] = prevEntry{v: v, present: present}
		}
	}
	restore := func() {
		for k, p := range saved {
			if p.present {
				state[k] = p.v
			} else {
				delete(state, k)
			}
		}
	}
	for _, i := range idx {
		it := e.Items[i]
		_, present := state[it.Key]
		var want BatchOutcome
		switch {
		case it.Del:
			if present {
				want = BatchRemoved
			} else {
				want = BatchAbsent
			}
		case it.InsertOnly:
			if present {
				want = BatchExists
			} else {
				want = BatchInserted
			}
		default:
			if present {
				want = BatchUpdated
			} else {
				want = BatchInserted
			}
		}
		if it.Outcome != want {
			restore()
			return nil, false
		}
		switch {
		case it.Del && present:
			touch(it.Key)
			delete(state, it.Key)
		case !it.Del && (!present || !it.InsertOnly):
			touch(it.Key)
			state[it.Key] = it.Val
		}
	}
	if len(saved) == 0 {
		return nil, true
	}
	return restore, true
}

// keysInRange returns the state's keys within [lo,hi], ascending.
func keysInRange(state map[int64]int64, lo, hi int64) []int64 {
	var keys []int64
	for k := range state {
		if lo <= k && k <= hi {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// sigOf serializes the map state for memoization.
func sigOf(state map[int64]int64) string {
	keys := make([]int64, 0, len(state))
	for k := range state {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%d:%d;", k, state[k])
	}
	return b.String()
}
