package lincheck

import (
	"sync"
	"testing"
)

// seq builds a strictly sequential history from (kind,key,val,ok,retval).
func seq(events ...Event) []Event {
	ts := int64(0)
	out := make([]Event, len(events))
	for i, e := range events {
		ts++
		e.Invoke = ts
		ts++
		e.Return = ts
		out[i] = e
	}
	return out
}

func TestEmptyHistory(t *testing.T) {
	if ok, _ := Check(nil); !ok {
		t.Fatal("empty history must be linearizable")
	}
}

func TestSequentialLegalHistory(t *testing.T) {
	h := seq(
		Event{Kind: KindInsert, Key: 1, Val: 10, RetOK: true},
		Event{Kind: KindLookup, Key: 1, RetOK: true, RetVal: 10},
		Event{Kind: KindInsert, Key: 1, Val: 20, RetOK: false},
		Event{Kind: KindRemove, Key: 1, RetOK: true},
		Event{Kind: KindLookup, Key: 1, RetOK: false},
		Event{Kind: KindRemove, Key: 1, RetOK: false},
	)
	if ok, msg := Check(h); !ok {
		t.Fatal(msg)
	}
}

func TestSequentialIllegalHistories(t *testing.T) {
	cases := [][]Event{
		// Lookup finds a key never inserted.
		seq(Event{Kind: KindLookup, Key: 1, RetOK: true, RetVal: 5}),
		// Double successful insert.
		seq(
			Event{Kind: KindInsert, Key: 1, Val: 1, RetOK: true},
			Event{Kind: KindInsert, Key: 1, Val: 2, RetOK: true},
		),
		// Remove succeeds on absent key.
		seq(Event{Kind: KindRemove, Key: 9, RetOK: true}),
		// Lookup returns the wrong value.
		seq(
			Event{Kind: KindInsert, Key: 1, Val: 10, RetOK: true},
			Event{Kind: KindLookup, Key: 1, RetOK: true, RetVal: 11},
		),
		// Lookup misses a key that must be present.
		seq(
			Event{Kind: KindInsert, Key: 1, Val: 10, RetOK: true},
			Event{Kind: KindLookup, Key: 1, RetOK: false},
		),
	}
	for i, h := range cases {
		if ok, _ := Check(h); ok {
			t.Errorf("case %d: illegal history accepted", i)
		}
	}
}

func TestOverlappingOpsReorder(t *testing.T) {
	// Lookup overlaps an insert: both outcomes are linearizable.
	for _, found := range []bool{true, false} {
		h := []Event{
			{Kind: KindInsert, Key: 1, Val: 10, RetOK: true, Invoke: 1, Return: 4},
			{Kind: KindLookup, Key: 1, RetOK: found, RetVal: 10, Invoke: 2, Return: 3},
		}
		if ok, msg := Check(h); !ok {
			t.Fatalf("found=%t: %s", found, msg)
		}
	}
}

func TestRealTimeOrderEnforced(t *testing.T) {
	// Lookup strictly after a successful insert must find the key.
	h := []Event{
		{Kind: KindInsert, Key: 1, Val: 10, RetOK: true, Invoke: 1, Return: 2},
		{Kind: KindLookup, Key: 1, RetOK: false, Invoke: 3, Return: 4},
	}
	if ok, _ := Check(h); ok {
		t.Fatal("stale lookup after completed insert accepted")
	}
}

func TestConcurrentInsertsOnlyOneWins(t *testing.T) {
	// Two overlapping inserts of the same key: exactly one may succeed.
	legal := []Event{
		{Proc: 0, Kind: KindInsert, Key: 5, Val: 1, RetOK: true, Invoke: 1, Return: 5},
		{Proc: 1, Kind: KindInsert, Key: 5, Val: 2, RetOK: false, Invoke: 2, Return: 6},
	}
	if ok, msg := Check(legal); !ok {
		t.Fatal(msg)
	}
	illegal := []Event{
		{Proc: 0, Kind: KindInsert, Key: 5, Val: 1, RetOK: true, Invoke: 1, Return: 5},
		{Proc: 1, Kind: KindInsert, Key: 5, Val: 2, RetOK: true, Invoke: 2, Return: 6},
	}
	if ok, _ := Check(illegal); ok {
		t.Fatal("two winning inserts accepted")
	}
}

func TestInsertRemoveInterleaving(t *testing.T) {
	// insert || remove of same key where remove runs entirely within the
	// insert's interval: remove=true requires insert linearized first.
	h := []Event{
		{Kind: KindInsert, Key: 7, Val: 3, RetOK: true, Invoke: 1, Return: 6},
		{Kind: KindRemove, Key: 7, RetOK: true, Invoke: 2, Return: 5},
		{Kind: KindLookup, Key: 7, RetOK: false, Invoke: 7, Return: 8},
	}
	if ok, msg := Check(h); !ok {
		t.Fatal(msg)
	}
}

func TestTooLargeHistoryRejected(t *testing.T) {
	var h []Event
	for i := 0; i < 25; i++ {
		h = append(h, Event{Kind: KindLookup, Key: 1, Invoke: int64(2*i + 1), Return: int64(2*i + 2)})
	}
	if ok, msg := Check(h); ok || msg == "" {
		t.Fatal("oversized history should be rejected with a message")
	}
}

func TestRecorderTimestamps(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				inv := r.Begin()
				r.End(Event{Proc: p, Kind: KindLookup, Key: int64(i)}, inv)
			}
		}(p)
	}
	wg.Wait()
	h := r.History()
	if len(h) != 20 {
		t.Fatalf("recorded %d events", len(h))
	}
	for _, e := range h {
		if e.Invoke >= e.Return {
			t.Fatalf("event %v has inverted interval", e)
		}
	}
}

func TestKindString(t *testing.T) {
	if KindLookup.String() != "lookup" || KindInsert.String() != "insert" || KindRemove.String() != "remove" {
		t.Fatal("Kind strings wrong")
	}
}

func TestRangeQuerySequential(t *testing.T) {
	h := seq(
		Event{Kind: KindInsert, Key: 1, Val: 10, RetOK: true},
		Event{Kind: KindInsert, Key: 3, Val: 30, RetOK: true},
		Event{Kind: KindInsert, Key: 9, Val: 90, RetOK: true},
		// Window [1,5] sees exactly {1:10, 3:30}, in order.
		Event{Kind: KindRangeQuery, Key: 1, Hi: 5, Pairs: []KV{{1, 10}, {3, 30}}},
		// Empty window.
		Event{Kind: KindRangeQuery, Key: 4, Hi: 8},
		Event{Kind: KindRemove, Key: 3, RetOK: true},
		Event{Kind: KindRangeQuery, Key: 1, Hi: 5, Pairs: []KV{{1, 10}}},
	)
	if ok, msg := Check(h); !ok {
		t.Fatal(msg)
	}
}

func TestRangeQueryIllegalSnapshots(t *testing.T) {
	cases := [][]Event{
		// Sees a key never inserted.
		seq(Event{Kind: KindRangeQuery, Key: 0, Hi: 9, Pairs: []KV{{1, 10}}}),
		// Misses a key that must be present.
		seq(
			Event{Kind: KindInsert, Key: 2, Val: 20, RetOK: true},
			Event{Kind: KindRangeQuery, Key: 0, Hi: 9},
		),
		// Sees a stale value.
		seq(
			Event{Kind: KindInsert, Key: 2, Val: 20, RetOK: true},
			Event{Kind: KindRangeUpdate, Key: 0, Hi: 9, Delta: 1, RetVal: 1},
			Event{Kind: KindRangeQuery, Key: 0, Hi: 9, Pairs: []KV{{2, 20}}},
		),
		// A torn snapshot: observes one of two keys that were both present
		// at every point after their (completed) inserts.
		seq(
			Event{Kind: KindInsert, Key: 1, Val: 1, RetOK: true},
			Event{Kind: KindInsert, Key: 2, Val: 2, RetOK: true},
			Event{Kind: KindRangeQuery, Key: 0, Hi: 9, Pairs: []KV{{2, 2}}},
		),
	}
	for i, h := range cases {
		if ok, _ := Check(h); ok {
			t.Errorf("case %d: illegal range snapshot accepted", i)
		}
	}
}

func TestRangeQueryOverlappingInsertEitherWay(t *testing.T) {
	// Range query overlaps an insert into its window: both the pre- and
	// post-insert snapshots are linearizable.
	for _, pairs := range [][]KV{nil, {{4, 40}}} {
		h := []Event{
			{Kind: KindInsert, Key: 4, Val: 40, RetOK: true, Invoke: 1, Return: 4},
			{Kind: KindRangeQuery, Key: 0, Hi: 9, Pairs: pairs, Invoke: 2, Return: 3},
		}
		if ok, msg := Check(h); !ok {
			t.Fatalf("pairs=%v: %s", pairs, msg)
		}
	}
}

func TestRangeUpdateSequential(t *testing.T) {
	h := seq(
		Event{Kind: KindInsert, Key: 1, Val: 10, RetOK: true},
		Event{Kind: KindInsert, Key: 2, Val: 20, RetOK: true},
		Event{Kind: KindRangeUpdate, Key: 1, Hi: 2, Delta: 5, RetVal: 2},
		Event{Kind: KindLookup, Key: 1, RetOK: true, RetVal: 15},
		Event{Kind: KindLookup, Key: 2, RetOK: true, RetVal: 25},
		// Update over an empty window visits nothing.
		Event{Kind: KindRangeUpdate, Key: 100, Hi: 200, Delta: 1, RetVal: 0},
	)
	if ok, msg := Check(h); !ok {
		t.Fatal(msg)
	}
}

func TestRangeUpdateIllegalHistories(t *testing.T) {
	cases := [][]Event{
		// Count mismatch: claims to have visited a mapping that can't exist.
		seq(Event{Kind: KindRangeUpdate, Key: 0, Hi: 9, Delta: 1, RetVal: 1}),
		// A lookup later observes a value the update must have changed.
		seq(
			Event{Kind: KindInsert, Key: 1, Val: 10, RetOK: true},
			Event{Kind: KindRangeUpdate, Key: 0, Hi: 9, Delta: 1, RetVal: 1},
			Event{Kind: KindLookup, Key: 1, RetOK: true, RetVal: 10},
		),
		// Update applied to only part of its window: key 2's value proves
		// the delta landed, key 1's proves it did not.
		seq(
			Event{Kind: KindInsert, Key: 1, Val: 10, RetOK: true},
			Event{Kind: KindInsert, Key: 2, Val: 20, RetOK: true},
			Event{Kind: KindRangeUpdate, Key: 0, Hi: 9, Delta: 1, RetVal: 2},
			Event{Kind: KindLookup, Key: 1, RetOK: true, RetVal: 10},
			Event{Kind: KindLookup, Key: 2, RetOK: true, RetVal: 21},
		),
	}
	for i, h := range cases {
		if ok, _ := Check(h); ok {
			t.Errorf("case %d: illegal range update accepted", i)
		}
	}
}

func TestRangeUpdateOverlappingLookup(t *testing.T) {
	// Lookup overlapping a range update may see either value.
	for _, val := range []int64{10, 11} {
		h := []Event{
			{Kind: KindInsert, Key: 1, Val: 10, RetOK: true, Invoke: 1, Return: 2},
			{Kind: KindRangeUpdate, Key: 0, Hi: 9, Delta: 1, RetVal: 1, Invoke: 3, Return: 6},
			{Kind: KindLookup, Key: 1, RetOK: true, RetVal: val, Invoke: 4, Return: 5},
		}
		if ok, msg := Check(h); !ok {
			t.Fatalf("val=%d: %s", val, msg)
		}
	}
}

func TestRangeKindStrings(t *testing.T) {
	if KindRangeQuery.String() != "rangequery" || KindRangeUpdate.String() != "rangeupdate" {
		t.Fatal("range Kind strings wrong")
	}
}

func TestBatchSequential(t *testing.T) {
	h := seq(
		Event{Kind: KindBatch, Items: []BatchItem{
			{Key: 1, Val: 10, Outcome: BatchInserted},
			{Key: 2, Val: 20, Outcome: BatchInserted},
		}},
		Event{Kind: KindLookup, Key: 1, RetOK: true, RetVal: 10},
		Event{Kind: KindBatch, Items: []BatchItem{
			{Key: 1, Del: true, Outcome: BatchRemoved},
			{Key: 2, Val: 22, Outcome: BatchUpdated},
			{Key: 3, Val: 30, InsertOnly: true, Outcome: BatchInserted},
			{Key: 2, Val: 23, InsertOnly: true, Outcome: BatchExists},
		}},
		Event{Kind: KindLookup, Key: 1, RetOK: false},
		Event{Kind: KindLookup, Key: 2, RetOK: true, RetVal: 22},
		Event{Kind: KindLookup, Key: 3, RetOK: true, RetVal: 30},
	)
	if ok, msg := Check(h); !ok {
		t.Fatal(msg)
	}
}

func TestBatchDuplicateKeysSequential(t *testing.T) {
	// Same-key ops resolve in request order: insert, delete, insert-only.
	h := seq(
		Event{Kind: KindBatch, Items: []BatchItem{
			{Key: 5, Val: 1, Outcome: BatchInserted},
			{Key: 5, Del: true, Outcome: BatchRemoved},
			{Key: 5, Val: 2, InsertOnly: true, Outcome: BatchInserted},
		}},
		Event{Kind: KindLookup, Key: 5, RetOK: true, RetVal: 2},
	)
	if ok, msg := Check(h); !ok {
		t.Fatal(msg)
	}
}

func TestBatchIllegalHistories(t *testing.T) {
	cases := [][]Event{
		// Inserted reported for a key that must already exist.
		seq(
			Event{Kind: KindInsert, Key: 1, Val: 9, RetOK: true},
			Event{Kind: KindBatch, Items: []BatchItem{{Key: 1, Val: 10, Outcome: BatchInserted}}},
		),
		// Removed reported for an absent key.
		seq(Event{Kind: KindBatch, Items: []BatchItem{{Key: 4, Del: true, Outcome: BatchRemoved}}}),
		// Exists reported for an absent key.
		seq(Event{Kind: KindBatch, Items: []BatchItem{{Key: 4, Val: 1, InsertOnly: true, Outcome: BatchExists}}}),
		// Torn batch: a later lookup sees one half but misses the other.
		seq(
			Event{Kind: KindBatch, Items: []BatchItem{
				{Key: 1, Val: 10, Outcome: BatchInserted},
				{Key: 2, Val: 20, Outcome: BatchInserted},
			}},
			Event{Kind: KindLookup, Key: 1, RetOK: true, RetVal: 10},
			Event{Kind: KindLookup, Key: 2, RetOK: false},
		),
		// Duplicate-key run with outcomes out of request order.
		seq(Event{Kind: KindBatch, Items: []BatchItem{
			{Key: 5, Val: 1, Outcome: BatchUpdated},
			{Key: 5, Del: true, Outcome: BatchRemoved},
		}}),
	}
	for i, h := range cases {
		if ok, _ := Check(h); ok {
			t.Errorf("case %d: illegal batch history accepted", i)
		}
	}
}

func TestBatchOverlappingLookupReorders(t *testing.T) {
	// A lookup overlapping a batch may see the pre- or post-batch state of
	// any key the batch touches — but never a torn mix inside one range
	// query. The checker must backtrack through the batch's multi-key undo
	// to accept the "before" linearization.
	for _, found := range []bool{true, false} {
		h := []Event{
			{Proc: 0, Kind: KindBatch, Invoke: 1, Return: 6, Items: []BatchItem{
				{Key: 1, Val: 10, Outcome: BatchInserted},
				{Key: 2, Val: 20, Outcome: BatchInserted},
			}},
			{Proc: 1, Kind: KindLookup, Key: 2, RetOK: found, RetVal: 20, Invoke: 2, Return: 3},
		}
		if ok, msg := Check(h); !ok {
			t.Fatalf("found=%t: %s", found, msg)
		}
	}
	// A range query overlapping the batch must not see a torn prefix of it.
	torn := []Event{
		{Proc: 0, Kind: KindBatch, Invoke: 1, Return: 6, Items: []BatchItem{
			{Key: 1, Val: 10, Outcome: BatchInserted},
			{Key: 2, Val: 20, Outcome: BatchInserted},
		}},
		{Proc: 1, Kind: KindRangeQuery, Key: 1, Hi: 2, Pairs: []KV{{1, 10}}, Invoke: 2, Return: 3},
	}
	if ok, _ := Check(torn); ok {
		t.Fatal("torn batch snapshot accepted")
	}
}

func TestBatchUndoRestoresPriorValues(t *testing.T) {
	// The batch overwrites and deletes pre-existing keys; a failed DFS branch
	// must restore them exactly or the accepting order will not be found.
	h := []Event{
		{Proc: 0, Kind: KindInsert, Key: 1, Val: 5, RetOK: true, Invoke: 1, Return: 2},
		{Proc: 0, Kind: KindInsert, Key: 2, Val: 6, RetOK: true, Invoke: 3, Return: 4},
		// Batch and the two lookups overlap; only lookup-first orders accept.
		{Proc: 0, Kind: KindBatch, Invoke: 5, Return: 10, Items: []BatchItem{
			{Key: 1, Val: 50, Outcome: BatchUpdated},
			{Key: 2, Del: true, Outcome: BatchRemoved},
		}},
		{Proc: 1, Kind: KindLookup, Key: 1, RetOK: true, RetVal: 5, Invoke: 6, Return: 7},
		{Proc: 1, Kind: KindLookup, Key: 2, RetOK: true, RetVal: 6, Invoke: 8, Return: 9},
	}
	if ok, msg := Check(h); !ok {
		t.Fatal(msg)
	}
}

func TestSnapshotSequential(t *testing.T) {
	// The snapshot's Pairs reflect the state at acquisition even though the
	// iteration that produced them "ran" after later writes completed: the
	// KindSnapshot interval covers only the acquisition.
	h := seq(
		Event{Kind: KindInsert, Key: 1, Val: 10, RetOK: true},
		Event{Kind: KindInsert, Key: 3, Val: 30, RetOK: true},
		Event{Kind: KindSnapshot, Key: 0, Hi: 9, Pairs: []KV{{1, 10}, {3, 30}}},
		Event{Kind: KindRemove, Key: 1, RetOK: true},
		Event{Kind: KindInsert, Key: 5, Val: 50, RetOK: true},
		// A later snapshot sees the mutated state; the earlier one stays valid.
		Event{Kind: KindSnapshot, Key: 0, Hi: 9, Pairs: []KV{{3, 30}, {5, 50}}},
	)
	if ok, msg := Check(h); !ok {
		t.Fatal(msg)
	}
}

func TestSnapshotIllegalHistories(t *testing.T) {
	cases := [][]Event{
		// Sees a key never inserted.
		seq(Event{Kind: KindSnapshot, Key: 0, Hi: 9, Pairs: []KV{{1, 10}}}),
		// Misses a key inserted before the acquisition completed.
		seq(
			Event{Kind: KindInsert, Key: 2, Val: 20, RetOK: true},
			Event{Kind: KindSnapshot, Key: 0, Hi: 9},
		),
		// Sees a write that linearized strictly after the acquisition
		// returned — the pinned view leaked a future state.
		[]Event{
			{Kind: KindSnapshot, Key: 0, Hi: 9, Pairs: []KV{{4, 40}}, Invoke: 1, Return: 2},
			{Kind: KindInsert, Key: 4, Val: 40, RetOK: true, Invoke: 3, Return: 4},
		},
		// Torn view: two keys were inserted before the acquisition and never
		// removed, yet only one appears — no single point has that state.
		seq(
			Event{Kind: KindInsert, Key: 1, Val: 1, RetOK: true},
			Event{Kind: KindInsert, Key: 2, Val: 2, RetOK: true},
			Event{Kind: KindSnapshot, Key: 0, Hi: 9, Pairs: []KV{{2, 2}}},
		),
		// Mixed-epoch view: observes key 1's pre-update value next to key 2's
		// post-update value of one atomic RangeUpdate — a state that never
		// existed at any linearization point.
		seq(
			Event{Kind: KindInsert, Key: 1, Val: 10, RetOK: true},
			Event{Kind: KindInsert, Key: 2, Val: 20, RetOK: true},
			Event{Kind: KindRangeUpdate, Key: 0, Hi: 9, Delta: 1, RetVal: 2},
			Event{Kind: KindSnapshot, Key: 0, Hi: 9, Pairs: []KV{{1, 10}, {2, 21}}},
		),
	}
	for i, h := range cases {
		if ok, _ := Check(h); ok {
			t.Errorf("case %d: illegal snapshot history accepted", i)
		}
	}
}

func TestSnapshotOverlappingInsertEitherWay(t *testing.T) {
	// An insert overlapping the acquisition may land on either side of the
	// snapshot's linearization point.
	for _, pairs := range [][]KV{nil, {{4, 40}}} {
		h := []Event{
			{Kind: KindInsert, Key: 4, Val: 40, RetOK: true, Invoke: 1, Return: 4},
			{Kind: KindSnapshot, Key: 0, Hi: 9, Pairs: pairs, Invoke: 2, Return: 3},
		}
		if ok, msg := Check(h); !ok {
			t.Fatalf("pairs=%v: %s", pairs, msg)
		}
	}
}

func TestSnapshotKindString(t *testing.T) {
	if KindSnapshot.String() != "snapshot" {
		t.Fatalf("KindSnapshot.String() = %q", KindSnapshot.String())
	}
	e := Event{Proc: 2, Kind: KindSnapshot, Key: 0, Hi: 9, Pairs: []KV{{1, 10}}, Invoke: 1, Return: 2}
	if got := e.String(); got != "P2 snapshot[0,9]=[{1 10}] @[1,2]" {
		t.Fatalf("Event.String() = %q", got)
	}
}

func TestRebalanceSequential(t *testing.T) {
	// A rebalance is a pure representation change: its pinned pre-copy view
	// must match the state at acquisition, and the abstract map is untouched
	// — reads before and after see exactly the same mappings.
	h := seq(
		Event{Kind: KindInsert, Key: 1, Val: 10, RetOK: true},
		Event{Kind: KindInsert, Key: 3, Val: 30, RetOK: true},
		Event{Kind: KindInsert, Key: 7, Val: 70, RetOK: true},
		Event{Kind: KindRebalance, Key: 0, Hi: 5, Pairs: []KV{{1, 10}, {3, 30}}},
		Event{Kind: KindLookup, Key: 1, RetOK: true, RetVal: 10},
		Event{Kind: KindLookup, Key: 3, RetOK: true, RetVal: 30},
		Event{Kind: KindLookup, Key: 7, RetOK: true, RetVal: 70},
		// An empty-window migration observes nothing.
		Event{Kind: KindRebalance, Key: 100, Hi: 200},
	)
	if ok, msg := Check(h); !ok {
		t.Fatal(msg)
	}
}

func TestRebalanceIllegalHistories(t *testing.T) {
	cases := [][]Event{
		// The migrator's pinned view saw a key never inserted.
		seq(Event{Kind: KindRebalance, Key: 0, Hi: 9, Pairs: []KV{{1, 10}}}),
		// The pinned view missed a key present throughout.
		seq(
			Event{Kind: KindInsert, Key: 2, Val: 20, RetOK: true},
			Event{Kind: KindRebalance, Key: 0, Hi: 9},
		),
		// Lost update: a write completed before the migration began, but a
		// read after the swap misses it — the classic failure the write gate
		// exists to prevent. The rebalance event itself validates; the stale
		// read after it cannot linearize.
		seq(
			Event{Kind: KindInsert, Key: 4, Val: 40, RetOK: true},
			Event{Kind: KindRebalance, Key: 0, Hi: 9, Pairs: []KV{{4, 40}}},
			Event{Kind: KindLookup, Key: 4, RetOK: false},
		),
		// Resurrection: a key removed before the migration reappears after
		// the swap (a reconcile that failed to carry the delete).
		seq(
			Event{Kind: KindInsert, Key: 5, Val: 50, RetOK: true},
			Event{Kind: KindRemove, Key: 5, RetOK: true},
			Event{Kind: KindRebalance, Key: 0, Hi: 9},
			Event{Kind: KindLookup, Key: 5, RetOK: true, RetVal: 50},
		),
		// Torn pinned view: two keys present for the whole acquisition, only
		// one observed — no single point has that state.
		seq(
			Event{Kind: KindInsert, Key: 1, Val: 1, RetOK: true},
			Event{Kind: KindInsert, Key: 2, Val: 2, RetOK: true},
			Event{Kind: KindRebalance, Key: 0, Hi: 9, Pairs: []KV{{2, 2}}},
		),
	}
	for i, h := range cases {
		if ok, _ := Check(h); ok {
			t.Errorf("case %d: illegal rebalance history accepted", i)
		}
	}
}

func TestRebalanceOverlappingWriteEitherWay(t *testing.T) {
	// A write overlapping the migration's snapshot acquisition may land on
	// either side of its linearization point: the pinned view may or may not
	// carry it, and both must check.
	for _, pairs := range [][]KV{nil, {{4, 40}}} {
		h := []Event{
			{Kind: KindInsert, Key: 4, Val: 40, RetOK: true, Invoke: 1, Return: 4},
			{Kind: KindRebalance, Key: 0, Hi: 9, Pairs: pairs, Invoke: 2, Return: 3},
		}
		if ok, msg := Check(h); !ok {
			t.Fatalf("pairs=%v: %s", pairs, msg)
		}
	}
}

func TestRebalanceKindString(t *testing.T) {
	if KindRebalance.String() != "rebalance" {
		t.Fatalf("KindRebalance.String() = %q", KindRebalance.String())
	}
	e := Event{Proc: 1, Kind: KindRebalance, Key: 0, Hi: 9, Pairs: []KV{{1, 10}}, Invoke: 1, Return: 2}
	if got := e.String(); got != "P1 rebalance[0,9]=[{1 10}] @[1,2]" {
		t.Fatalf("Event.String() = %q", got)
	}
}
