// Package skiplist implements a lock-free concurrent skip list in the style
// of Fraser's practical lock-free skip lists [Fraser 2003], as popularized
// by Herlihy & Shavit. It is the "FSL" baseline of the paper's evaluation
// (Section V-A): one element per node, per-level linked lists, CAS-based
// insertion and logical deletion with helping.
//
// Go pointers cannot carry mark bits, so the (successor, marked) pair that
// Fraser's algorithm updates atomically is represented by an immutable link
// record behind an atomic pointer: marking a level allocates a new link with
// the same successor and marked=true. This adds one indirection per next
// read and an allocation per link swing — overhead the skip vector avoids by
// construction, and of the same flavour as the reference-counting/epoch
// machinery C++ nonblocking lists need. Like the paper's FSL, the structure
// does not reclaim memory precisely: unlinked nodes are left to the garbage
// collector.
package skiplist

import (
	"math/rand/v2"
	"sync/atomic"
)

// MaxHeight is the tallest tower the list builds. 2^32 expected elements
// need 32 levels at p = 1/2.
const MaxHeight = 32

// link is an immutable (successor, marked) pair. The marked flag logically
// deletes the *owning* node at that level (Harris-style: the mark lives in
// the predecessor-to-successor edge of the deleted node).
type link[V any] struct {
	next   *node[V]
	marked bool
}

type node[V any] struct {
	key    int64
	val    atomic.Pointer[V]
	next   []atomic.Pointer[link[V]]
	height int
}

func newNode[V any](key int64, v *V, height int) *node[V] {
	n := &node[V]{
		key:    key,
		next:   make([]atomic.Pointer[link[V]], height),
		height: height,
	}
	n.val.Store(v)
	return n
}

// loadLink reads the (successor, marked) pair at level l.
func (n *node[V]) loadLink(l int) (*node[V], bool) {
	lk := n.next[l].Load()
	if lk == nil {
		return nil, false
	}
	return lk.next, lk.marked
}

// casLink swings level l from (oldNext,oldMarked) to (newNext,newMarked).
func (n *node[V]) casLink(l int, oldNext *node[V], oldMarked bool, newNext *node[V], newMarked bool) bool {
	old := n.next[l].Load()
	if old == nil || old.next != oldNext || old.marked != oldMarked {
		return false
	}
	return n.next[l].CompareAndSwap(old, &link[V]{next: newNext, marked: newMarked})
}

// List is a lock-free concurrent ordered map from int64 keys to *V values.
type List[V any] struct {
	head   *node[V]
	tail   *node[V]
	length atomic.Int64
	seed   atomic.Uint64
}

// New builds an empty list. Head and tail sentinels use the extreme int64
// values; user keys must lie strictly between them.
func New[V any]() *List[V] {
	l := &List[V]{}
	l.head = newNode[V](-1<<63, nil, MaxHeight)
	l.tail = newNode[V](1<<63-1, nil, MaxHeight)
	for i := 0; i < MaxHeight; i++ {
		l.head.next[i].Store(&link[V]{next: l.tail})
	}
	l.seed.Store(0x9e3779b97f4a7c15)
	return l
}

// randomHeight draws a tower height from the geometric distribution with
// p = 1/2, the classic skip list parameter.
func (l *List[V]) randomHeight() int {
	h := 1
	for h < MaxHeight && rand.Uint64()&1 == 0 {
		h++
	}
	return h
}

// find locates the insertion window for key at every level: preds[l] is the
// rightmost unmarked node with key < target, succs[l] its successor. Marked
// nodes encountered on the way are physically unlinked (helping). Returns
// whether an unmarked node with the exact key was found at the bottom level.
func (l *List[V]) find(key int64, preds, succs *[MaxHeight]*node[V]) (*node[V], bool) {
retry:
	for {
		pred := l.head
		for level := MaxHeight - 1; level >= 0; level-- {
			curr, _ := pred.loadLink(level)
			for {
				if curr == nil {
					continue retry
				}
				succ, marked := curr.loadLink(level)
				// Help unlink marked nodes.
				for marked {
					if !pred.casLink(level, curr, false, succ, false) {
						continue retry
					}
					curr = succ
					if curr == nil {
						continue retry
					}
					succ, marked = curr.loadLink(level)
				}
				if curr.key < key {
					pred = curr
					curr = succ
					continue
				}
				break
			}
			preds[level] = pred
			succs[level] = curr
		}
		if succs[0] != nil && succs[0].key == key {
			return succs[0], true
		}
		return nil, false
	}
}

// Insert adds key→v, returning false if the key is already present.
func (l *List[V]) Insert(key int64, v *V) bool {
	var preds, succs [MaxHeight]*node[V]
	height := l.randomHeight()
	for {
		if _, found := l.find(key, &preds, &succs); found {
			return false
		}
		n := newNode(key, v, height)
		for level := 0; level < height; level++ {
			n.next[level].Store(&link[V]{next: succs[level]})
		}
		// Linearization: splice at the bottom level.
		if !preds[0].casLink(0, succs[0], false, n, false) {
			continue // window changed; recompute
		}
		l.length.Add(1)
		// Build the tower above; helping may have changed the windows. The
		// node's own links are only ever CAS'd so a concurrent remover's
		// mark is never overwritten (which would resurrect the node).
		for level := 1; level < height; level++ {
			for {
				succ, marked := n.loadLink(level)
				if marked {
					return true // being removed; abandon the tower
				}
				if succ != succs[level] &&
					!n.casLink(level, succ, false, succs[level], false) {
					continue
				}
				if preds[level].casLink(level, succs[level], false, n, false) {
					break
				}
				// Window changed: re-find to refresh preds/succs. If our
				// node is gone from the bottom level, stop building.
				if _, found := l.find(key, &preds, &succs); !found || succs[0] != n {
					return true
				}
			}
		}
		return true
	}
}

// Lookup returns the value for key. It is wait-free apart from the
// traversal itself and never helps or modifies the structure.
func (l *List[V]) Lookup(key int64) (*V, bool) {
	pred := l.head
	for level := MaxHeight - 1; level >= 0; level-- {
		curr, _ := pred.loadLink(level)
		for curr != nil {
			succ, marked := curr.loadLink(level)
			if curr.key < key {
				pred = curr
				curr = succ
				continue
			}
			if curr.key == key && !marked && level == 0 {
				return curr.val.Load(), true
			}
			if curr.key == key && marked {
				// Logically deleted; skip past at this level.
				curr = succ
				continue
			}
			break
		}
	}
	return nil, false
}

// Contains reports whether key is present.
func (l *List[V]) Contains(key int64) bool {
	_, ok := l.Lookup(key)
	return ok
}

// Remove deletes key, returning false if absent. Deletion marks the victim
// top-down and then physically unlinks it via a helping find.
func (l *List[V]) Remove(key int64) bool {
	var preds, succs [MaxHeight]*node[V]
	victim, found := l.find(key, &preds, &succs)
	if !found {
		return false
	}
	// Mark from the top level down to 1 (idempotent; concurrent removers
	// may race on these levels).
	for level := victim.height - 1; level >= 1; level-- {
		succ, marked := victim.loadLink(level)
		for !marked {
			victim.casLink(level, succ, false, succ, true)
			succ, marked = victim.loadLink(level)
		}
	}
	// Level 0 is the linearization point: exactly one remover wins.
	for {
		succ, marked := victim.loadLink(0)
		if marked {
			return false // another remover linearized first
		}
		if victim.casLink(0, succ, false, succ, true) {
			l.length.Add(-1)
			// Physically unlink via a helping traversal.
			l.find(key, &preds, &succs)
			return true
		}
	}
}

// Len returns the number of keys present.
func (l *List[V]) Len() int { return int(l.length.Load()) }

// Keys returns all keys in ascending order (quiescent use).
func (l *List[V]) Keys() []int64 {
	var out []int64
	curr, _ := l.head.loadLink(0)
	for curr != nil && curr != l.tail {
		succ, marked := curr.loadLink(0)
		if !marked {
			out = append(out, curr.key)
		}
		curr = succ
	}
	return out
}

// RangeQuery calls fn for each unmarked key in [lo,hi] in ascending order.
// Unlike the skip vector's, this range query is NOT linearizable — it is
// the non-linearizable baseline behaviour the paper contrasts against
// (Section V-B).
func (l *List[V]) RangeQuery(lo, hi int64, fn func(k int64, v *V) bool) {
	pred := l.head
	for level := MaxHeight - 1; level >= 0; level-- {
		curr, _ := pred.loadLink(level)
		for curr != nil && curr.key < lo {
			pred = curr
			curr, _ = curr.loadLink(level)
		}
	}
	curr, _ := pred.loadLink(0)
	for curr != nil && curr != l.tail && curr.key <= hi {
		succ, marked := curr.loadLink(0)
		if !marked && curr.key >= lo {
			if !fn(curr.key, curr.val.Load()) {
				return
			}
		}
		curr = succ
	}
}
