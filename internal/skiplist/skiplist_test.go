package skiplist

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func vp(x int64) *int64 { return &x }

func TestBasicOps(t *testing.T) {
	l := New[int64]()
	if l.Contains(5) {
		t.Fatal("empty list contains 5")
	}
	if !l.Insert(5, vp(50)) {
		t.Fatal("Insert failed")
	}
	if l.Insert(5, vp(51)) {
		t.Fatal("duplicate Insert succeeded")
	}
	if v, ok := l.Lookup(5); !ok || *v != 50 {
		t.Fatalf("Lookup = %v,%t", v, ok)
	}
	if !l.Remove(5) || l.Remove(5) {
		t.Fatal("Remove semantics wrong")
	}
	if l.Len() != 0 {
		t.Fatalf("Len = %d", l.Len())
	}
}

func TestOrderedKeys(t *testing.T) {
	l := New[int64]()
	rng := rand.New(rand.NewSource(1))
	want := rng.Perm(500)
	for _, k := range want {
		l.Insert(int64(k), vp(int64(k)))
	}
	keys := l.Keys()
	if len(keys) != 500 {
		t.Fatalf("got %d keys", len(keys))
	}
	for i := range keys {
		if keys[i] != int64(i) {
			t.Fatalf("keys[%d] = %d", i, keys[i])
		}
	}
}

func TestSequentialModel(t *testing.T) {
	l := New[int64]()
	model := map[int64]int64{}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 5000; i++ {
		k := int64(rng.Intn(150))
		switch rng.Intn(3) {
		case 0:
			_, had := model[k]
			if l.Insert(k, vp(k)) == had {
				t.Fatalf("op %d: Insert(%d) mismatch", i, k)
			}
			if !had {
				model[k] = k
			}
		case 1:
			_, had := model[k]
			if l.Remove(k) != had {
				t.Fatalf("op %d: Remove(%d) mismatch", i, k)
			}
			delete(model, k)
		case 2:
			_, had := model[k]
			if l.Contains(k) != had {
				t.Fatalf("op %d: Contains(%d) mismatch", i, k)
			}
		}
		if l.Len() != len(model) {
			t.Fatalf("op %d: Len=%d model=%d", i, l.Len(), len(model))
		}
	}
}

func TestRangeQuery(t *testing.T) {
	l := New[int64]()
	for k := int64(0); k < 100; k += 2 {
		l.Insert(k, vp(k))
	}
	var got []int64
	l.RangeQuery(10, 30, func(k int64, v *int64) bool {
		got = append(got, k)
		return true
	})
	want := []int64{10, 12, 14, 16, 18, 20, 22, 24, 26, 28, 30}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestConcurrentDisjoint(t *testing.T) {
	l := New[int64]()
	var wg sync.WaitGroup
	const goroutines = 8
	const perG = 400
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(base int64) {
			defer wg.Done()
			for i := int64(0); i < perG; i++ {
				if !l.Insert(base+i, vp(base+i)) {
					t.Errorf("Insert(%d) failed", base+i)
					return
				}
			}
			for i := int64(0); i < perG; i += 2 {
				if !l.Remove(base + i) {
					t.Errorf("Remove(%d) failed", base+i)
					return
				}
			}
		}(int64(g) * 100_000)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if want := goroutines * perG / 2; l.Len() != want {
		t.Fatalf("Len = %d want %d", l.Len(), want)
	}
	keys := l.Keys()
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			t.Fatal("keys out of order")
		}
	}
}

func TestConcurrentSharedAccounting(t *testing.T) {
	l := New[int64]()
	const keySpace = 64
	var inserts, removes [keySpace]atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 1500; i++ {
				k := int64(rng.Intn(keySpace))
				switch rng.Intn(3) {
				case 0:
					if l.Insert(k, vp(k)) {
						inserts[k].Add(1)
					}
				case 1:
					if l.Remove(k) {
						removes[k].Add(1)
					}
				default:
					if v, ok := l.Lookup(k); ok && *v != k {
						t.Errorf("corrupt value for %d", k)
						return
					}
				}
			}
		}(int64(g) + 1)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	total := 0
	for k := 0; k < keySpace; k++ {
		diff := inserts[k].Load() - removes[k].Load()
		if diff != 0 && diff != 1 {
			t.Fatalf("key %d diff %d", k, diff)
		}
		if present := l.Contains(int64(k)); present != (diff == 1) {
			t.Fatalf("key %d present=%t diff=%d", k, present, diff)
		}
		if diff == 1 {
			total++
		}
	}
	if l.Len() != total {
		t.Fatalf("Len=%d want %d", l.Len(), total)
	}
}

func TestConcurrentInsertRace(t *testing.T) {
	l := New[int64]()
	const keys = 300
	var wins [keys]atomic.Int32
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := int64(0); k < keys; k++ {
				if l.Insert(k, vp(k)) {
					wins[k].Add(1)
				}
			}
		}()
	}
	wg.Wait()
	for k := 0; k < keys; k++ {
		if wins[k].Load() != 1 {
			t.Fatalf("key %d won %d times", k, wins[k].Load())
		}
	}
}

func TestConcurrentRemoveRace(t *testing.T) {
	l := New[int64]()
	const keys = 300
	for k := int64(0); k < keys; k++ {
		l.Insert(k, vp(k))
	}
	var wins [keys]atomic.Int32
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := int64(0); k < keys; k++ {
				if l.Remove(k) {
					wins[k].Add(1)
				}
			}
		}()
	}
	wg.Wait()
	for k := 0; k < keys; k++ {
		if wins[k].Load() != 1 {
			t.Fatalf("key %d removed %d times", k, wins[k].Load())
		}
	}
	if l.Len() != 0 {
		t.Fatalf("Len = %d", l.Len())
	}
}

func TestQuickMatchesModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := New[int64]()
		model := map[int64]bool{}
		for i := 0; i < 400; i++ {
			k := int64(rng.Intn(60))
			switch rng.Intn(3) {
			case 0:
				if l.Insert(k, vp(k)) == model[k] {
					return false
				}
				model[k] = true
			case 1:
				if l.Remove(k) != model[k] {
					return false
				}
				delete(model, k)
			default:
				if l.Contains(k) != model[k] {
					return false
				}
			}
		}
		keys := l.Keys()
		if len(keys) != len(model) {
			return false
		}
		return sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
