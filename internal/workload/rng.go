// Package workload generates the paper's benchmark workloads (Section V):
// deterministic per-thread random streams, uniform and Zipfian key
// distributions, lookup/insert/remove operation mixes, and the half-full
// prefill used before every trial.
package workload

// RNG is a SplitMix64 pseudo-random generator: one 64-bit word of state,
// high quality, trivially splittable into independent per-goroutine streams.
// The zero value is a valid generator (seed 0).
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Split derives an independent stream (for per-goroutine RNGs).
func (r *RNG) Split() *RNG { return &RNG{state: r.Uint64()} }

// Uint64 returns the next 64-bit value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a value uniformly distributed in [0,n). n must be positive.
func (r *RNG) Intn(n int64) int64 {
	if n <= 0 {
		panic("workload: Intn with non-positive bound")
	}
	// Lemire's multiply-shift rejection-free-ish reduction is overkill for
	// benchmarking; modulo bias is negligible for n ≪ 2^64.
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a value uniformly distributed in [0,1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Permute maps index i ∈ [0,n) to a pseudo-random position in [0,n) such
// that the mapping is a bijection on [0,n). It is a 4-round Feistel network
// over the index bits with cycle-walking, which lets prefill loops insert a
// random permutation of a huge key range without materializing it.
type Permute struct {
	n      uint64
	mask   uint64
	half   uint
	rounds [4]uint64
}

// NewPermute builds a bijection on [0,n) keyed by seed.
func NewPermute(n int64, seed uint64) *Permute {
	if n <= 0 {
		panic("workload: NewPermute with non-positive n")
	}
	bits := uint(1)
	for int64(1)<<bits < n {
		bits++
	}
	if bits%2 == 1 {
		bits++
	}
	p := &Permute{
		n:    uint64(n),
		mask: (uint64(1) << (bits / 2)) - 1,
		half: bits / 2,
	}
	r := NewRNG(seed)
	for i := range p.rounds {
		p.rounds[i] = r.Uint64()
	}
	return p
}

func (p *Permute) feistel(x uint64) uint64 {
	l := x >> p.half
	rt := x & p.mask
	for _, k := range p.rounds {
		f := (rt*0x9e3779b97f4a7c15 + k)
		f = (f ^ (f >> 29)) * 0xbf58476d1ce4e5b9
		l, rt = rt, (l^f)&p.mask
	}
	return (l << p.half) | rt
}

// Apply returns the permuted position of i.
func (p *Permute) Apply(i int64) int64 {
	x := uint64(i)
	if x >= p.n {
		panic("workload: Permute index out of range")
	}
	// Cycle-walk until the value lands inside [0,n).
	for {
		x = p.feistel(x)
		if x < p.n {
			return int64(x)
		}
	}
}
