package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collided %d/100 times", same)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	root := NewRNG(7)
	s1, s2 := root.Split(), root.Split()
	if s1.Uint64() == s2.Uint64() {
		t.Fatal("split streams start identically")
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(1)
	for _, n := range []int64{1, 2, 7, 1000, 1 << 40} {
		for i := 0; i < 200; i++ {
			if v := r.Intn(n); v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d", n, v)
			}
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 1000; i++ {
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v", f)
		}
	}
}

func TestPermuteIsBijection(t *testing.T) {
	for _, n := range []int64{1, 2, 7, 100, 1000, 4097} {
		p := NewPermute(n, 99)
		seen := make(map[int64]bool, n)
		for i := int64(0); i < n; i++ {
			v := p.Apply(i)
			if v < 0 || v >= n {
				t.Fatalf("n=%d: Apply(%d) = %d out of range", n, i, v)
			}
			if seen[v] {
				t.Fatalf("n=%d: duplicate image %d", n, v)
			}
			seen[v] = true
		}
	}
}

func TestPermuteIsBijectionQuick(t *testing.T) {
	f := func(rawN uint16, seed uint64) bool {
		n := int64(rawN%2000) + 1
		p := NewPermute(n, seed)
		seen := make(map[int64]bool, n)
		for i := int64(0); i < n; i++ {
			v := p.Apply(i)
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestZipfBoundsAndSkew(t *testing.T) {
	const n = 1000
	for _, theta := range []float64{0.1, 0.6, 0.9} {
		z := NewZipf(NewRNG(3), n, theta)
		counts := make([]int, n)
		const draws = 200000
		for i := 0; i < draws; i++ {
			r := z.Next()
			if r < 0 || r >= n {
				t.Fatalf("theta=%v: rank %d out of range", theta, r)
			}
			counts[r]++
		}
		// Rank 0 must be the most frequent, and more frequent for larger theta.
		top, rest := counts[0], 0
		for _, c := range counts[1:] {
			rest += c
			if c > top {
				t.Fatalf("theta=%v: rank 0 not hottest", theta)
			}
		}
		// The head probability should grow with skew: ~1/zeta(n) for rank 0.
		wantHead := 1.0 / zeta(n, theta)
		gotHead := float64(top) / draws
		if math.Abs(gotHead-wantHead) > wantHead*0.25+0.002 {
			t.Fatalf("theta=%v: head freq %.4f, want ≈%.4f", theta, gotHead, wantHead)
		}
	}
}

func TestZipfThetaZeroUniform(t *testing.T) {
	z := NewZipf(NewRNG(8), 100, 0)
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		counts[z.Next()]++
	}
	for r, c := range counts {
		if c < 700 || c > 1300 {
			t.Fatalf("theta=0 rank %d count %d deviates from uniform", r, c)
		}
	}
}

func TestZipfWithRNGSharesConstants(t *testing.T) {
	z := NewZipf(NewRNG(1), 5000, 0.6)
	z2 := z.WithRNG(NewRNG(2))
	if z2.zetan != z.zetan || z2.alpha != z.alpha {
		t.Fatal("WithRNG did not reuse constants")
	}
	if z2.rng == z.rng {
		t.Fatal("WithRNG shares the RNG")
	}
}

func TestMixDistribution(t *testing.T) {
	mixes := []Mix{MixReadHeavy, MixWriteOnly, {LookupPct: 25, InsertPct: 25, RemovePct: 25, RangePct: 25}}
	for _, m := range mixes {
		if err := m.Validate(); err != nil {
			t.Fatal(err)
		}
		r := NewRNG(6)
		counts := map[Op]int{}
		const draws = 100000
		for i := 0; i < draws; i++ {
			counts[m.Next(r)]++
		}
		check := func(op Op, pct int) {
			got := float64(counts[op]) / draws * 100
			if math.Abs(got-float64(pct)) > 1.5 {
				t.Fatalf("mix %v: %v = %.1f%%, want %d%%", m, op, got, pct)
			}
		}
		check(OpLookup, m.LookupPct)
		check(OpInsert, m.InsertPct)
		check(OpRemove, m.RemovePct)
		check(OpRange, m.RangePct)
	}
}

func TestMixValidateRejectsBad(t *testing.T) {
	bad := []Mix{
		{LookupPct: 50},
		{LookupPct: 120, InsertPct: -20},
		{},
	}
	for _, m := range bad {
		if m.Validate() == nil {
			t.Fatalf("mix %+v accepted", m)
		}
	}
}

func TestMixString(t *testing.T) {
	if MixReadHeavy.String() != "80/10/10" {
		t.Fatalf("String = %q", MixReadHeavy.String())
	}
	if MixWriteOnly.String() != "0/50/50" {
		t.Fatalf("String = %q", MixWriteOnly.String())
	}
}

func TestOpString(t *testing.T) {
	for op, want := range map[Op]string{
		OpLookup: "lookup", OpInsert: "insert", OpRemove: "remove", OpRange: "range",
	} {
		if op.String() != want {
			t.Fatalf("Op(%d).String() = %q", op, op.String())
		}
	}
}

func TestUniformKeyGen(t *testing.T) {
	u := NewUniform(NewRNG(4), 256)
	if u.Range() != 256 {
		t.Fatal("Range wrong")
	}
	seen := map[int64]bool{}
	for i := 0; i < 20000; i++ {
		k := u.Next()
		if k < 0 || k >= 256 {
			t.Fatalf("key %d out of range", k)
		}
		seen[k] = true
	}
	if len(seen) < 250 {
		t.Fatalf("uniform generator covered only %d/256 keys", len(seen))
	}
}

func TestZipfKeysScrambled(t *testing.T) {
	g := NewZipfKeys(NewRNG(1), 1024, 0.9, 77)
	counts := map[int64]int{}
	for i := 0; i < 50000; i++ {
		k := g.Next()
		if k < 0 || k >= 1024 {
			t.Fatalf("key %d out of range", k)
		}
		counts[k]++
	}
	// The two hottest keys should not be adjacent (scrambling).
	var hot1, hot2 int64 = -1, -1
	for k, c := range counts {
		if hot1 < 0 || c > counts[hot1] {
			hot1, hot2 = k, hot1
		} else if hot2 < 0 || c > counts[hot2] {
			hot2 = k
		}
	}
	if hot2 >= 0 && (hot1-hot2 == 1 || hot2-hot1 == 1) {
		t.Logf("warning: two hottest keys adjacent (%d,%d) — permutation may be weak", hot1, hot2)
	}
	g2 := g.WithRNG(NewRNG(9))
	if g2.Range() != 1024 {
		t.Fatal("WithRNG lost range")
	}
}

func TestSeqWindowRuns(t *testing.T) {
	const n, window = 1 << 16, 256
	g := NewSeqWindow(NewRNG(11), n, window)
	if g.Range() != n || g.Window() != window {
		t.Fatal("Range/Window wrong")
	}
	prev := g.Next()
	steps, jumps := 0, 0
	for i := 1; i < 10*window; i++ {
		k := g.Next()
		if k < 0 || k >= n {
			t.Fatalf("key %d out of range", k)
		}
		if k == prev+1 || (prev == n-1 && k == 0) {
			steps++
		} else {
			jumps++
		}
		prev = k
	}
	// In 10 windows of 256, exactly 9 or 10 discontinuities are possible
	// (the first draw may or may not land at a window boundary).
	if jumps > 10 {
		t.Fatalf("%d jumps in 10 windows, want ≤ 10", jumps)
	}
	if steps < 9*window {
		t.Fatalf("only %d sequential steps in 10 windows", steps)
	}
}

func TestSeqWindowDeterministic(t *testing.T) {
	a := NewSeqWindow(NewRNG(3), 1000, 10)
	b := NewSeqWindow(NewRNG(3), 1000, 10)
	for i := 0; i < 500; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestSeqWindowClampsWindow(t *testing.T) {
	g := NewSeqWindow(NewRNG(1), 8, 100)
	if g.Window() != 8 {
		t.Fatalf("window not clamped: %d", g.Window())
	}
	seen := map[int64]bool{}
	for i := 0; i < 8; i++ {
		seen[g.Next()] = true
	}
	if len(seen) != 8 {
		t.Fatalf("full-range window visited %d/8 keys", len(seen))
	}
}

func TestPrefillerHalfDistinct(t *testing.T) {
	const n = 1 << 12
	p := NewPrefiller(n, 31)
	if p.Count() != n/2 {
		t.Fatalf("Count = %d", p.Count())
	}
	seen := map[int64]bool{}
	p.Keys(0, p.Count(), func(k int64) {
		if k < 0 || k >= n {
			t.Fatalf("key %d out of range", k)
		}
		if seen[k] {
			t.Fatalf("duplicate prefill key %d", k)
		}
		seen[k] = true
	})
	if len(seen) != n/2 {
		t.Fatalf("prefilled %d keys, want %d", len(seen), n/2)
	}
}

func TestPrefillerSharding(t *testing.T) {
	const n = 1 << 10
	p := NewPrefiller(n, 5)
	whole := map[int64]bool{}
	p.Keys(0, p.Count(), func(k int64) { whole[k] = true })
	sharded := map[int64]bool{}
	mid := p.Count() / 2
	p.Keys(0, mid, func(k int64) { sharded[k] = true })
	p.Keys(mid, p.Count(), func(k int64) { sharded[k] = true })
	if len(sharded) != len(whole) {
		t.Fatalf("sharded prefill produced %d keys, want %d", len(sharded), len(whole))
	}
	for k := range whole {
		if !sharded[k] {
			t.Fatalf("sharded prefill missing key %d", k)
		}
	}
}
