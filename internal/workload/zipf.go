package workload

import "math"

// Zipf generates keys in [0,n) following a Zipfian distribution with
// exponent theta, using the Gray et al. "quickly generating billion-record
// synthetic databases" algorithm that YCSB (and hence DBx1000) uses. Rank 0
// is the hottest key; theta→0 approaches uniform, theta→1 is heavily
// skewed. The paper's Figure 6 uses theta ∈ {0.1, 0.6, 0.9}.
//
// A Zipf generator is not safe for concurrent use; derive one per goroutine
// with the same parameters (they share the precomputed constants via copy).
type Zipf struct {
	rng   *RNG
	n     int64
	theta float64
	alpha float64
	zetan float64
	eta   float64
	zeta2 float64
}

// NewZipf precomputes the distribution constants. The zeta(n) computation is
// O(n) once; reuse via WithRNG for additional streams.
func NewZipf(rng *RNG, n int64, theta float64) *Zipf {
	if n <= 0 {
		panic("workload: Zipf with non-positive n")
	}
	if theta < 0 || theta >= 1 {
		panic("workload: Zipf theta must be in [0,1)")
	}
	z := &Zipf{rng: rng, n: n, theta: theta}
	z.zeta2 = zeta(2, theta)
	z.zetan = zeta(n, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	return z
}

// WithRNG returns a copy of z driven by a different random stream, reusing
// the precomputed constants.
func (z *Zipf) WithRNG(rng *RNG) *Zipf {
	cp := *z
	cp.rng = rng
	return &cp
}

// zeta computes the generalized harmonic number H_{n,theta}.
func zeta(n int64, theta float64) float64 {
	sum := 0.0
	for i := int64(1); i <= n; i++ {
		sum += 1.0 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next draws the next rank in [0,n), rank 0 hottest.
func (z *Zipf) Next() int64 {
	if z.theta == 0 {
		return z.rng.Intn(z.n)
	}
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	return int64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}

// N returns the key-space size.
func (z *Zipf) N() int64 { return z.n }

// Theta returns the skew exponent.
func (z *Zipf) Theta() float64 { return z.theta }
