package workload

// SeqWindow emits runs of consecutive ascending keys: it jumps to a
// pseudo-random start, walks upward one key at a time for window steps
// (wrapping at the end of the key space), then jumps again. This is the
// locality extreme among the generators — the access pattern of a log
// replayer, a time-series appender, or a paginated scan — and is the
// workload where a search finger should convert almost every operation into
// an O(1) data-layer step. window=1 degenerates to Uniform; window=n is one
// endless sequential sweep.
//
// Like the other generators it is seeded through its RNG and keeps no global
// state; derive one per goroutine.
type SeqWindow struct {
	rng    *RNG
	n      int64
	window int64
	pos    int64
	left   int64 // keys remaining in the current run
}

// NewSeqWindow builds a sequential-window generator over [0,n) with runs of
// the given window length.
func NewSeqWindow(rng *RNG, n, window int64) *SeqWindow {
	if n <= 0 {
		panic("workload: SeqWindow with non-positive range")
	}
	if window <= 0 {
		panic("workload: SeqWindow with non-positive window")
	}
	if window > n {
		window = n
	}
	return &SeqWindow{rng: rng, n: n, window: window}
}

// Next implements KeyGen.
func (s *SeqWindow) Next() int64 {
	if s.left == 0 {
		s.pos = s.rng.Intn(s.n)
		s.left = s.window
	}
	k := s.pos
	s.pos++
	if s.pos >= s.n {
		s.pos = 0
	}
	s.left--
	return k
}

// Range implements KeyGen.
func (s *SeqWindow) Range() int64 { return s.n }

// Window returns the run length.
func (s *SeqWindow) Window() int64 { return s.window }
