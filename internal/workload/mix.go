package workload

import "fmt"

// Op is a map operation kind drawn from a Mix.
type Op int

// Operation kinds.
const (
	OpLookup Op = iota + 1
	OpInsert
	OpRemove
	OpRange
)

func (o Op) String() string {
	switch o {
	case OpLookup:
		return "lookup"
	case OpInsert:
		return "insert"
	case OpRemove:
		return "remove"
	case OpRange:
		return "range"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Mix is an operation mixture in percent. The paper's microbenchmarks use
// 80/10/10 (read-heavy) and 0/50/50 (write-only).
type Mix struct {
	LookupPct int
	InsertPct int
	RemovePct int
	RangePct  int
}

// Standard mixes from the paper's evaluation.
var (
	// MixReadHeavy is the 80% lookup / 10% insert / 10% remove mix of
	// Figures 1 and 4.
	MixReadHeavy = Mix{LookupPct: 80, InsertPct: 10, RemovePct: 10}
	// MixWriteOnly is the 0/50/50 mix of Figure 5.
	MixWriteOnly = Mix{InsertPct: 50, RemovePct: 50}
	// MixRangeHeavy approximates Figure 8's all-range workload.
	MixRangeHeavy = Mix{RangePct: 100}
)

// Validate checks that the percentages sum to 100.
func (m Mix) Validate() error {
	if s := m.LookupPct + m.InsertPct + m.RemovePct + m.RangePct; s != 100 {
		return fmt.Errorf("workload: mix sums to %d%%, want 100%%", s)
	}
	if m.LookupPct < 0 || m.InsertPct < 0 || m.RemovePct < 0 || m.RangePct < 0 {
		return fmt.Errorf("workload: negative percentage in mix %+v", m)
	}
	return nil
}

// String renders the mix the way the paper labels workloads, e.g. "80/10/10".
func (m Mix) String() string {
	if m.RangePct == 0 {
		return fmt.Sprintf("%d/%d/%d", m.LookupPct, m.InsertPct, m.RemovePct)
	}
	return fmt.Sprintf("%d/%d/%d/%dr", m.LookupPct, m.InsertPct, m.RemovePct, m.RangePct)
}

// Next draws an operation kind.
func (m Mix) Next(rng *RNG) Op {
	r := int(rng.Intn(100))
	switch {
	case r < m.LookupPct:
		return OpLookup
	case r < m.LookupPct+m.InsertPct:
		return OpInsert
	case r < m.LookupPct+m.InsertPct+m.RemovePct:
		return OpRemove
	default:
		return OpRange
	}
}

// KeyGen produces benchmark keys. Implementations must be cheap and
// deterministic per stream.
type KeyGen interface {
	// Next returns a key in [0, Range()).
	Next() int64
	// Range returns the key-space size.
	Range() int64
}

// Uniform draws keys uniformly from [0,n), matching the paper's
// microbenchmarks ("keys are drawn from a uniform distribution").
type Uniform struct {
	rng *RNG
	n   int64
}

// NewUniform builds a uniform key generator over [0,n).
func NewUniform(rng *RNG, n int64) *Uniform {
	if n <= 0 {
		panic("workload: Uniform with non-positive range")
	}
	return &Uniform{rng: rng, n: n}
}

// Next implements KeyGen.
func (u *Uniform) Next() int64 { return u.rng.Intn(u.n) }

// Range implements KeyGen.
func (u *Uniform) Range() int64 { return u.n }

// ZipfKeys adapts Zipf to KeyGen, scattering ranks over the key space with a
// Feistel permutation so the hot keys are not physically adjacent (as YCSB's
// scrambled Zipfian does).
type ZipfKeys struct {
	z *Zipf
	p *Permute
}

// NewZipfKeys builds a scrambled-Zipfian generator over [0,n).
func NewZipfKeys(rng *RNG, n int64, theta float64, seed uint64) *ZipfKeys {
	return &ZipfKeys{z: NewZipf(rng, n, theta), p: NewPermute(n, seed)}
}

// WithRNG derives a per-goroutine stream reusing the zeta precomputation.
func (g *ZipfKeys) WithRNG(rng *RNG) *ZipfKeys {
	return &ZipfKeys{z: g.z.WithRNG(rng), p: g.p}
}

// Next implements KeyGen.
func (g *ZipfKeys) Next() int64 { return g.p.Apply(g.z.Next()) }

// Range implements KeyGen.
func (g *ZipfKeys) Range() int64 { return g.z.N() }

// Prefiller inserts half of the keys in [0,n) in pseudo-random order, which
// is the paper's pre-fill protocol ("pre-filled each data structure with
// half of the keys in the range") — the set size then stays stable under
// balanced insert/remove mixes. The chosen keys are the even positions of a
// keyed permutation, so which keys are present is uniform but deterministic.
type Prefiller struct {
	perm *Permute
	n    int64
}

// NewPrefiller builds a prefiller for key range [0,n).
func NewPrefiller(n int64, seed uint64) *Prefiller {
	return &Prefiller{perm: NewPermute(n, seed), n: n}
}

// Count returns the number of keys Prefill will insert.
func (p *Prefiller) Count() int64 { return p.n / 2 }

// Keys calls insert for each chosen key, in pseudo-random order. Callers
// running multiple goroutines can shard [0,Count()) among themselves.
func (p *Prefiller) Keys(from, to int64, insert func(k int64)) {
	for i := from; i < to; i++ {
		insert(p.perm.Apply(2 * i % p.n))
	}
}
