package seqset

// SkipList is Pugh's classic sequential skip list with p = 1/2 — the
// Figure 1 baseline with the most pointer chasing per operation.
type SkipList struct {
	head   *slNode
	height int
	n      int
	rng    uint64
}

const slMaxHeight = 32

type slNode struct {
	key  int64
	next []*slNode
}

// NewSkipList returns an empty sequential skip list set.
func NewSkipList() *SkipList {
	return &SkipList{
		head:   &slNode{next: make([]*slNode, slMaxHeight)},
		height: 1,
		rng:    0x2545f4914f6cdd1d,
	}
}

// Name implements Set.
func (s *SkipList) Name() string { return "skip-list" }

// Len implements Set.
func (s *SkipList) Len() int { return s.n }

func (s *SkipList) random() uint64 {
	// xorshift64
	s.rng ^= s.rng << 13
	s.rng ^= s.rng >> 7
	s.rng ^= s.rng << 17
	return s.rng
}

func (s *SkipList) randomHeight() int {
	h := 1
	for h < slMaxHeight && s.random()&1 == 0 {
		h++
	}
	return h
}

// findPreds fills preds[l] with the rightmost node at level l whose key is
// < k, and returns the node after preds[0] (the candidate match).
func (s *SkipList) findPreds(k int64, preds *[slMaxHeight]*slNode) *slNode {
	x := s.head
	for l := s.height - 1; l >= 0; l-- {
		for x.next[l] != nil && x.next[l].key < k {
			x = x.next[l]
		}
		preds[l] = x
	}
	return x.next[0]
}

// Contains implements Set.
func (s *SkipList) Contains(k int64) bool {
	x := s.head
	for l := s.height - 1; l >= 0; l-- {
		for x.next[l] != nil && x.next[l].key < k {
			x = x.next[l]
		}
	}
	c := x.next[0]
	return c != nil && c.key == k
}

// Insert implements Set.
func (s *SkipList) Insert(k int64) bool {
	var preds [slMaxHeight]*slNode
	if c := s.findPreds(k, &preds); c != nil && c.key == k {
		return false
	}
	h := s.randomHeight()
	for s.height < h {
		preds[s.height] = s.head
		s.height++
	}
	n := &slNode{key: k, next: make([]*slNode, h)}
	for l := 0; l < h; l++ {
		n.next[l] = preds[l].next[l]
		preds[l].next[l] = n
	}
	s.n++
	return true
}

// Remove implements Set.
func (s *SkipList) Remove(k int64) bool {
	var preds [slMaxHeight]*slNode
	c := s.findPreds(k, &preds)
	if c == nil || c.key != k {
		return false
	}
	for l := 0; l < len(c.next); l++ {
		if preds[l].next[l] == c {
			preds[l].next[l] = c.next[l]
		}
	}
	for s.height > 1 && s.head.next[s.height-1] == nil {
		s.height--
	}
	s.n--
	return true
}
