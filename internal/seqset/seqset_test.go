package seqset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func allSets() []func() Set {
	return []func() Set{
		func() Set { return NewUnsortedVec() },
		func() Set { return NewSortedVec() },
		func() Set { return NewTreeMap() },
		func() Set { return NewSkipList() },
	}
}

func TestBasicSemantics(t *testing.T) {
	for _, mk := range allSets() {
		s := mk()
		t.Run(s.Name(), func(t *testing.T) {
			if s.Contains(1) {
				t.Fatal("empty set contains 1")
			}
			if !s.Insert(1) || s.Insert(1) {
				t.Fatal("Insert semantics wrong")
			}
			if !s.Contains(1) {
				t.Fatal("Contains(1) false after insert")
			}
			if !s.Remove(1) || s.Remove(1) {
				t.Fatal("Remove semantics wrong")
			}
			if s.Len() != 0 {
				t.Fatalf("Len = %d", s.Len())
			}
		})
	}
}

func TestModelEquivalence(t *testing.T) {
	for _, mk := range allSets() {
		s := mk()
		t.Run(s.Name(), func(t *testing.T) {
			model := map[int64]bool{}
			rng := rand.New(rand.NewSource(4))
			for i := 0; i < 8000; i++ {
				k := int64(rng.Intn(300))
				switch rng.Intn(3) {
				case 0:
					if s.Insert(k) == model[k] {
						t.Fatalf("op %d Insert(%d) mismatch", i, k)
					}
					model[k] = true
				case 1:
					if s.Remove(k) != model[k] {
						t.Fatalf("op %d Remove(%d) mismatch", i, k)
					}
					delete(model, k)
				default:
					if s.Contains(k) != model[k] {
						t.Fatalf("op %d Contains(%d) mismatch", i, k)
					}
				}
				if s.Len() != len(model) {
					t.Fatalf("op %d Len=%d model=%d", i, s.Len(), len(model))
				}
			}
		})
	}
}

func TestSetsAgreeWithEachOther(t *testing.T) {
	f := func(ops []int16) bool {
		sets := make([]Set, 0, 4)
		for _, mk := range allSets() {
			sets = append(sets, mk())
		}
		for _, raw := range ops {
			k := int64(raw % 64)
			op := (int(raw) / 64) % 3
			var first bool
			for i, s := range sets {
				var got bool
				switch op {
				case 0:
					got = s.Insert(k)
				case 1:
					got = s.Remove(k)
				default:
					got = s.Contains(k)
				}
				if i == 0 {
					first = got
				} else if got != first {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTreeMapBalance(t *testing.T) {
	tm := NewTreeMap()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		tm.Insert(int64(rng.Intn(10000)))
		if i%500 == 0 && !tm.checkRB() {
			t.Fatalf("red-black invariants violated after %d inserts", i)
		}
	}
	for i := 0; i < 5000; i++ {
		tm.Remove(int64(rng.Intn(10000)))
		if i%500 == 0 && !tm.checkRB() {
			t.Fatalf("red-black invariants violated after %d removes", i)
		}
	}
	if !tm.checkRB() {
		t.Fatal("final red-black invariants violated")
	}
}

func TestSkipListHeightShrinks(t *testing.T) {
	sl := NewSkipList()
	for k := int64(0); k < 4096; k++ {
		sl.Insert(k)
	}
	grown := sl.height
	if grown < 2 {
		t.Fatalf("height %d after 4096 inserts", grown)
	}
	for k := int64(0); k < 4096; k++ {
		sl.Remove(k)
	}
	if sl.height != 1 {
		t.Fatalf("height %d after drain, want 1", sl.height)
	}
}

func TestSortedVecStaysSorted(t *testing.T) {
	sv := NewSortedVec()
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		k := int64(rng.Intn(500))
		if rng.Intn(2) == 0 {
			sv.Insert(k)
		} else {
			sv.Remove(k)
		}
		for j := 1; j < len(sv.elems); j++ {
			if sv.elems[j] <= sv.elems[j-1] {
				t.Fatalf("unsorted after op %d", i)
			}
		}
	}
}
