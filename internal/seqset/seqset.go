// Package seqset provides the four single-threaded ordered sets compared in
// Figure 1 of the paper (after Stroustrup's 2012 vector-vs-list experiment):
//
//   - UnsortedVec: O(n) everything, but a single linear scan over a
//     contiguous array — unbeatable locality at small sizes.
//   - SortedVec: O(log n) lookup via binary search, O(n) insert/remove via
//     memmove.
//   - TreeMap: a left-leaning red-black tree standing in for C++ std::map —
//     O(log n) everything with pointer chasing on every step.
//   - SkipList: Pugh's sequential skip list (p = 1/2) — O(log n) expected,
//     the worst locality of the four.
//
// The crossing points between these curves as the key range grows motivate
// the skip vector: locality dominates until asymptotics take over.
package seqset

import "sort"

// Set is the common sequential-set interface benchmarked by Figure 1.
type Set interface {
	// Insert adds k, returning false if already present.
	Insert(k int64) bool
	// Remove deletes k, returning false if absent.
	Remove(k int64) bool
	// Contains reports membership.
	Contains(k int64) bool
	// Len returns the element count.
	Len() int
	// Name identifies the implementation in benchmark output.
	Name() string
}

// --- UnsortedVec ------------------------------------------------------------

// UnsortedVec is an unordered slice-backed set.
type UnsortedVec struct {
	elems []int64
}

// NewUnsortedVec returns an empty unsorted-vector set.
func NewUnsortedVec() *UnsortedVec { return &UnsortedVec{} }

// Name implements Set.
func (s *UnsortedVec) Name() string { return "unsorted-vector" }

// Len implements Set.
func (s *UnsortedVec) Len() int { return len(s.elems) }

func (s *UnsortedVec) indexOf(k int64) int {
	for i, e := range s.elems {
		if e == k {
			return i
		}
	}
	return -1
}

// Contains implements Set.
func (s *UnsortedVec) Contains(k int64) bool { return s.indexOf(k) >= 0 }

// Insert implements Set.
func (s *UnsortedVec) Insert(k int64) bool {
	if s.indexOf(k) >= 0 {
		return false
	}
	s.elems = append(s.elems, k)
	return true
}

// Remove implements Set.
func (s *UnsortedVec) Remove(k int64) bool {
	i := s.indexOf(k)
	if i < 0 {
		return false
	}
	last := len(s.elems) - 1
	s.elems[i] = s.elems[last]
	s.elems = s.elems[:last]
	return true
}

// --- SortedVec --------------------------------------------------------------

// SortedVec keeps its elements in ascending order.
type SortedVec struct {
	elems []int64
}

// NewSortedVec returns an empty sorted-vector set.
func NewSortedVec() *SortedVec { return &SortedVec{} }

// Name implements Set.
func (s *SortedVec) Name() string { return "sorted-vector" }

// Len implements Set.
func (s *SortedVec) Len() int { return len(s.elems) }

func (s *SortedVec) search(k int64) int {
	return sort.Search(len(s.elems), func(i int) bool { return s.elems[i] >= k })
}

// Contains implements Set.
func (s *SortedVec) Contains(k int64) bool {
	i := s.search(k)
	return i < len(s.elems) && s.elems[i] == k
}

// Insert implements Set.
func (s *SortedVec) Insert(k int64) bool {
	i := s.search(k)
	if i < len(s.elems) && s.elems[i] == k {
		return false
	}
	s.elems = append(s.elems, 0)
	copy(s.elems[i+1:], s.elems[i:])
	s.elems[i] = k
	return true
}

// Remove implements Set.
func (s *SortedVec) Remove(k int64) bool {
	i := s.search(k)
	if i >= len(s.elems) || s.elems[i] != k {
		return false
	}
	copy(s.elems[i:], s.elems[i+1:])
	s.elems = s.elems[:len(s.elems)-1]
	return true
}
