package seqset

// TreeMap is a left-leaning red-black BST (Sedgewick's LLRB), the stand-in
// for C++ std::map in Figure 1: a balanced binary tree with O(log n)
// operations and one pointer dereference per comparison.
type TreeMap struct {
	root *rbNode
	n    int
}

type rbNode struct {
	key         int64
	left, right *rbNode
	red         bool
}

// NewTreeMap returns an empty tree set.
func NewTreeMap() *TreeMap { return &TreeMap{} }

// Name implements Set.
func (t *TreeMap) Name() string { return "tree-map" }

// Len implements Set.
func (t *TreeMap) Len() int { return t.n }

// Contains implements Set.
func (t *TreeMap) Contains(k int64) bool {
	x := t.root
	for x != nil {
		switch {
		case k < x.key:
			x = x.left
		case k > x.key:
			x = x.right
		default:
			return true
		}
	}
	return false
}

func isRed(x *rbNode) bool { return x != nil && x.red }

func rotateLeft(h *rbNode) *rbNode {
	x := h.right
	h.right = x.left
	x.left = h
	x.red = h.red
	h.red = true
	return x
}

func rotateRight(h *rbNode) *rbNode {
	x := h.left
	h.left = x.right
	x.right = h
	x.red = h.red
	h.red = true
	return x
}

func flipColors(h *rbNode) {
	h.red = !h.red
	h.left.red = !h.left.red
	h.right.red = !h.right.red
}

func fixUp(h *rbNode) *rbNode {
	if isRed(h.right) && !isRed(h.left) {
		h = rotateLeft(h)
	}
	if isRed(h.left) && isRed(h.left.left) {
		h = rotateRight(h)
	}
	if isRed(h.left) && isRed(h.right) {
		flipColors(h)
	}
	return h
}

// Insert implements Set.
func (t *TreeMap) Insert(k int64) bool {
	var inserted bool
	t.root, inserted = t.insert(t.root, k)
	t.root.red = false
	if inserted {
		t.n++
	}
	return inserted
}

func (t *TreeMap) insert(h *rbNode, k int64) (*rbNode, bool) {
	if h == nil {
		return &rbNode{key: k, red: true}, true
	}
	var inserted bool
	switch {
	case k < h.key:
		h.left, inserted = t.insert(h.left, k)
	case k > h.key:
		h.right, inserted = t.insert(h.right, k)
	default:
		return h, false
	}
	return fixUp(h), inserted
}

func moveRedLeft(h *rbNode) *rbNode {
	flipColors(h)
	if isRed(h.right.left) {
		h.right = rotateRight(h.right)
		h = rotateLeft(h)
		flipColors(h)
	}
	return h
}

func moveRedRight(h *rbNode) *rbNode {
	flipColors(h)
	if isRed(h.left.left) {
		h = rotateRight(h)
		flipColors(h)
	}
	return h
}

func minNode(h *rbNode) *rbNode {
	for h.left != nil {
		h = h.left
	}
	return h
}

func deleteMin(h *rbNode) *rbNode {
	if h.left == nil {
		return nil
	}
	if !isRed(h.left) && !isRed(h.left.left) {
		h = moveRedLeft(h)
	}
	h.left = deleteMin(h.left)
	return fixUp(h)
}

// Remove implements Set.
func (t *TreeMap) Remove(k int64) bool {
	if !t.Contains(k) {
		return false
	}
	t.root = t.delete(t.root, k)
	if t.root != nil {
		t.root.red = false
	}
	t.n--
	return true
}

func (t *TreeMap) delete(h *rbNode, k int64) *rbNode {
	if k < h.key {
		if !isRed(h.left) && !isRed(h.left.left) {
			h = moveRedLeft(h)
		}
		h.left = t.delete(h.left, k)
	} else {
		if isRed(h.left) {
			h = rotateRight(h)
		}
		if k == h.key && h.right == nil {
			return nil
		}
		if !isRed(h.right) && !isRed(h.right.left) {
			h = moveRedRight(h)
		}
		if k == h.key {
			h.key = minNode(h.right).key
			h.right = deleteMin(h.right)
		} else {
			h.right = t.delete(h.right, k)
		}
	}
	return fixUp(h)
}

// checkRB validates red-black invariants (tests only): no red right links,
// no two consecutive red left links, uniform black height.
func (t *TreeMap) checkRB() bool {
	if isRed(t.root) {
		return false
	}
	_, ok := checkRBNode(t.root)
	return ok
}

func checkRBNode(h *rbNode) (blackHeight int, ok bool) {
	if h == nil {
		return 1, true
	}
	if isRed(h.right) {
		return 0, false
	}
	if isRed(h) && isRed(h.left) {
		return 0, false
	}
	lh, lok := checkRBNode(h.left)
	rh, rok := checkRBNode(h.right)
	if !lok || !rok || lh != rh {
		return 0, false
	}
	if !isRed(h) {
		lh++
	}
	return lh, true
}
