package vectormap

import (
	"encoding/binary"
	"errors"
)

// Chunk images. The chunk is the skip vector's unit of locality, which makes
// it the natural unit of serialization too: a checkpoint of the map is a
// sequence of sorted chunk images, each one bulk-loadable without any
// per-key descent. The image layout exploits the sortedness the checkpoint
// walk guarantees — the first key is zigzag-encoded, every following key is
// a strictly-positive delta, and values are length-prefixed byte strings:
//
//	count uvarint
//	key[0] varint (zigzag)
//	delta[i] = key[i] - key[i-1] uvarint, i ≥ 1 (always ≥ 1)
//	for each i: len(val[i]) uvarint, val[i] bytes
//
// Runs of nearby keys — the common case, since images come from chunk-sized
// windows of an ordered walk — compress to one or two bytes per key.

// ErrBadImage reports a malformed or non-ascending chunk image.
var ErrBadImage = errors.New("vectormap: bad chunk image")

// maxImageKeys bounds a single image's key count against corrupted headers.
const maxImageKeys = 1 << 24

// AppendImage appends the serialized image of one sorted chunk to dst.
// keys must be strictly ascending and len(vals) == len(keys).
func AppendImage(dst []byte, keys []int64, vals [][]byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(keys)))
	prev := int64(0)
	for i, k := range keys {
		if i == 0 {
			dst = binary.AppendVarint(dst, k)
		} else {
			if k <= prev {
				panic("vectormap: AppendImage keys not strictly ascending")
			}
			dst = binary.AppendUvarint(dst, uint64(k-prev))
		}
		prev = k
	}
	for _, v := range vals {
		dst = binary.AppendUvarint(dst, uint64(len(v)))
		dst = append(dst, v...)
	}
	return dst
}

// DecodeImage parses one chunk image, appending its keys and values to the
// provided slices (pass nil to allocate fresh ones). Returned values alias
// freshly-allocated memory, never b. It validates strict key ascent, so a
// corrupted image that still passes the log's CRC cannot smuggle an
// out-of-order key into the bulk-load fast path.
func DecodeImage(b []byte, keys []int64, vals [][]byte) ([]int64, [][]byte, error) {
	count, n := binary.Uvarint(b)
	if n <= 0 || count > maxImageKeys {
		return keys, vals, ErrBadImage
	}
	b = b[n:]
	prev := int64(0)
	for i := uint64(0); i < count; i++ {
		var k int64
		if i == 0 {
			var n int
			k, n = binary.Varint(b)
			if n <= 0 {
				return keys, vals, ErrBadImage
			}
			b = b[n:]
		} else {
			d, n := binary.Uvarint(b)
			if n <= 0 || d == 0 {
				return keys, vals, ErrBadImage
			}
			b = b[n:]
			k = prev + int64(d)
			if k <= prev { // overflow wrap
				return keys, vals, ErrBadImage
			}
		}
		keys = append(keys, k)
		prev = k
	}
	for i := uint64(0); i < count; i++ {
		vlen, n := binary.Uvarint(b)
		if n <= 0 || uint64(len(b)-n) < vlen {
			return keys, vals, ErrBadImage
		}
		b = b[n:]
		vals = append(vals, append([]byte(nil), b[:vlen]...))
		b = b[vlen:]
	}
	if len(b) != 0 {
		return keys, vals, ErrBadImage
	}
	return keys, vals, nil
}
