package vectormap

import (
	"testing"
)

// FuzzChunkModel drives a chunk with an op byte-stream cross-checked
// against a map model. Run with `go test -fuzz FuzzChunkModel` for
// continuous fuzzing; `go test` replays the seed corpus.
func FuzzChunkModel(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5}, true)
	f.Add([]byte{10, 200, 30, 40, 5, 60, 7, 80}, false)
	f.Add([]byte{255, 255, 0, 0, 128, 128}, true)

	f.Fuzz(func(t *testing.T, ops []byte, sorted bool) {
		var c Chunk[int64]
		c.Init(4, sorted) // capacity 8
		model := map[int64]int64{}
		for _, b := range ops {
			k := int64(b % 16)
			switch (b >> 4) % 3 {
			case 0:
				if len(model) == c.Cap() {
					continue
				}
				_, inModel := model[k]
				got := c.Insert(k, val(k*7))
				if got == inModel {
					t.Fatalf("Insert(%d) = %t, model has=%t", k, got, inModel)
				}
				if got {
					model[k] = k * 7
				}
			case 1:
				_, inModel := model[k]
				_, got := c.Remove(k)
				if got != inModel {
					t.Fatalf("Remove(%d) = %t, model has=%t", k, got, inModel)
				}
				delete(model, k)
			default:
				v, got := c.Get(k)
				mv, inModel := model[k]
				if got != inModel || (got && *v != mv) {
					t.Fatalf("Get(%d) mismatch", k)
				}
			}
			if err := c.CheckInvariants(); err != nil {
				t.Fatalf("invariants: %v", err)
			}
			if c.Size() != len(model) {
				t.Fatalf("size %d != model %d", c.Size(), len(model))
			}
		}
	})
}
