package vectormap

import (
	"encoding/binary"
	"sort"
	"testing"
)

// FuzzChunkModel drives a chunk with an op byte-stream cross-checked
// against a map model. Run with `go test -fuzz FuzzChunkModel` for
// continuous fuzzing; `go test` replays the seed corpus.
func FuzzChunkModel(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5}, true)
	f.Add([]byte{10, 200, 30, 40, 5, 60, 7, 80}, false)
	f.Add([]byte{255, 255, 0, 0, 128, 128}, true)

	f.Fuzz(func(t *testing.T, ops []byte, sorted bool) {
		defer SetBranchlessSearch(true)
		// Alternate implementations between runs so the model check also
		// differentially covers the branchless core at the API level.
		SetBranchlessSearch(len(ops)%2 == 0)
		var c Chunk[int64]
		c.Init(4, sorted) // capacity 8
		model := map[int64]int64{}
		for _, b := range ops {
			k := int64(b % 16)
			switch (b >> 4) % 3 {
			case 0:
				if len(model) == c.Cap() {
					continue
				}
				_, inModel := model[k]
				got := c.Insert(k, val(k*7))
				if got == inModel {
					t.Fatalf("Insert(%d) = %t, model has=%t", k, got, inModel)
				}
				if got {
					model[k] = k * 7
				}
			case 1:
				_, inModel := model[k]
				_, got := c.Remove(k)
				if got != inModel {
					t.Fatalf("Remove(%d) = %t, model has=%t", k, got, inModel)
				}
				delete(model, k)
			default:
				v, got := c.Get(k)
				mv, inModel := model[k]
				if got != inModel || (got && *v != mv) {
					t.Fatalf("Get(%d) mismatch", k)
				}
			}
			if err := c.CheckInvariants(); err != nil {
				t.Fatalf("invariants: %v", err)
			}
			if c.Size() != len(model) {
				t.Fatalf("size %d != model %d", c.Size(), len(model))
			}
		}
	})
}

// FuzzLowerBound is the differential proof obligation for the branchless
// search core (search.go): on every *non-decreasing* key array — duplicates
// included — lowerBound/upperBound must agree exactly with the reference
// binary searches, and on *arbitrary* array contents (the torn sizes and
// mid-shift states an optimistic reader can observe before seqlock
// validation rejects them) both must still terminate with a result in
// [0, s]. Keys are raw little-endian int64s so the fuzzer can reach the
// sentinel extremes (NegInf/PosInf) where the sign-flip bias matters.
func FuzzLowerBound(f *testing.F) {
	k8 := func(ks ...int64) []byte {
		b := make([]byte, 8*len(ks))
		for i, k := range ks {
			binary.LittleEndian.PutUint64(b[8*i:], uint64(k))
		}
		return b
	}
	f.Add(k8(1, 2, 3, 4), int64(3), uint8(4))
	f.Add(k8(5, 5, 5, 9), int64(5), uint8(4))           // duplicates
	f.Add(k8(NegInf, 0, PosInf), int64(NegInf), uint8(3)) // sentinel extremes
	f.Add(k8(9, 2, -7, 2), int64(2), uint8(200))        // unsorted + torn size
	f.Add(k8(), int64(0), uint8(0))                     // empty
	f.Add(k8(PosInf, NegInf), int64(PosInf-1), uint8(2)) // reversed at extremes

	f.Fuzz(func(t *testing.T, raw []byte, k int64, rawSize uint8) {
		var c Chunk[int64]
		c.Init(16, true) // capacity 32
		n := len(raw) / 8
		if n > c.Cap() {
			n = c.Cap()
		}
		keys := make([]int64, n)
		for i := range keys {
			keys[i] = int64(binary.LittleEndian.Uint64(raw[8*i:]))
			c.keys[i].Store(keys[i])
		}
		// A torn size may exceed the populated prefix or the capacity; the
		// clamp in snapshotSize is part of what this fuzz exercises.
		c.size.Store(int32(rawSize))
		s := int(rawSize)
		if s > c.Cap() {
			s = c.Cap()
		}

		// Arbitrary contents: in-bounds and terminating, nothing more.
		for _, got := range []int{
			c.lowerBound(k, s), c.upperBound(k, s),
			c.lowerBoundRef(k, s), c.upperBoundRef(k, s),
		} {
			if got < 0 || got > s {
				t.Fatalf("result %d outside [0, %d] on arbitrary keys", got, s)
			}
		}

		// Non-decreasing contents: exact equivalence with the oracle. Sort
		// the populated prefix and zero-fill the torn tail so the whole
		// probed window [0, s) is ordered (zeros may break global order when
		// keys are negative, so cap s at the populated prefix here).
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for i, kk := range keys {
			c.keys[i].Store(kk)
		}
		if s > n {
			s = n
		}
		if got, want := c.lowerBound(k, s), c.lowerBoundRef(k, s); got != want {
			t.Fatalf("lowerBound(%d, %d) = %d, reference = %d (keys %v)", k, s, got, want, keys[:s])
		}
		if got, want := c.upperBound(k, s), c.upperBoundRef(k, s); got != want {
			t.Fatalf("upperBound(%d, %d) = %d, reference = %d (keys %v)", k, s, got, want, keys[:s])
		}
	})
}
