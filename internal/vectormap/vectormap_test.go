package vectormap

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func newChunk(t *testing.T, target int, sorted bool) *Chunk[int64] {
	t.Helper()
	var c Chunk[int64]
	c.Init(target, sorted)
	return &c
}

func val(x int64) *int64 { return &x }

func bothPolicies(t *testing.T, fn func(t *testing.T, sorted bool)) {
	t.Run("sorted", func(t *testing.T) { fn(t, true) })
	t.Run("unsorted", func(t *testing.T) { fn(t, false) })
}

func TestInitCapacity(t *testing.T) {
	c := newChunk(t, 8, true)
	if c.Cap() != 16 {
		t.Fatalf("Cap = %d, want 16", c.Cap())
	}
	if c.Size() != 0 {
		t.Fatalf("Size = %d, want 0", c.Size())
	}
	if c.Full() {
		t.Fatal("fresh chunk reported full")
	}
}

func TestInitRejectsBadTarget(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for targetSize 0")
		}
	}()
	var c Chunk[int64]
	c.Init(0, true)
}

func TestInsertGetRemove(t *testing.T) {
	bothPolicies(t, func(t *testing.T, sorted bool) {
		c := newChunk(t, 8, sorted)
		keys := []int64{5, 1, 9, 3, 7}
		for _, k := range keys {
			if !c.Insert(k, val(k*10)) {
				t.Fatalf("Insert(%d) = false", k)
			}
		}
		if c.Insert(5, val(0)) {
			t.Fatal("duplicate Insert should fail")
		}
		if c.Size() != len(keys) {
			t.Fatalf("Size = %d, want %d", c.Size(), len(keys))
		}
		for _, k := range keys {
			v, ok := c.Get(k)
			if !ok || *v != k*10 {
				t.Fatalf("Get(%d) = %v,%t", k, v, ok)
			}
		}
		if _, ok := c.Get(4); ok {
			t.Fatal("Get(4) should miss")
		}
		if v, ok := c.Remove(3); !ok || *v != 30 {
			t.Fatalf("Remove(3) = %v,%t", v, ok)
		}
		if _, ok := c.Remove(3); ok {
			t.Fatal("double Remove should fail")
		}
		if c.Contains(3) {
			t.Fatal("removed key still present")
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestSetUpdatesPayload(t *testing.T) {
	bothPolicies(t, func(t *testing.T, sorted bool) {
		c := newChunk(t, 4, sorted)
		c.Insert(1, val(10))
		if !c.Set(1, val(99)) {
			t.Fatal("Set on present key failed")
		}
		if v, _ := c.Get(1); *v != 99 {
			t.Fatalf("after Set, Get = %d", *v)
		}
		if c.Set(2, val(0)) {
			t.Fatal("Set on absent key should fail")
		}
	})
}

func TestMinMaxKey(t *testing.T) {
	bothPolicies(t, func(t *testing.T, sorted bool) {
		c := newChunk(t, 8, sorted)
		if _, ok := c.MinKey(); ok {
			t.Fatal("MinKey on empty chunk should fail")
		}
		if _, ok := c.MaxKey(); ok {
			t.Fatal("MaxKey on empty chunk should fail")
		}
		for _, k := range []int64{42, -7, 100, 0} {
			c.Insert(k, val(k))
		}
		if minK, _ := c.MinKey(); minK != -7 {
			t.Fatalf("MinKey = %d, want -7", minK)
		}
		if maxK, _ := c.MaxKey(); maxK != 100 {
			t.Fatalf("MaxKey = %d, want 100", maxK)
		}
	})
}

func TestFindLE(t *testing.T) {
	bothPolicies(t, func(t *testing.T, sorted bool) {
		c := newChunk(t, 8, sorted)
		for _, k := range []int64{10, 20, 30, 40} {
			c.Insert(k, val(k))
		}
		cases := []struct {
			q      int64
			want   int64
			wantOK bool
		}{
			{5, 0, false},
			{10, 10, true},
			{15, 10, true},
			{40, 40, true},
			{99, 40, true},
		}
		for _, tc := range cases {
			k, v, ok := c.FindLE(tc.q)
			if ok != tc.wantOK || (ok && k != tc.want) {
				t.Fatalf("FindLE(%d) = %d,%t want %d,%t", tc.q, k, ok, tc.want, tc.wantOK)
			}
			if ok && *v != tc.want {
				t.Fatalf("FindLE(%d) payload = %d", tc.q, *v)
			}
		}
		empty := newChunk(t, 4, sorted)
		if _, _, ok := empty.FindLE(5); ok {
			t.Fatal("FindLE on empty chunk should fail")
		}
	})
}

func TestInsertFullPanics(t *testing.T) {
	c := newChunk(t, 1, true)
	c.Insert(1, val(1))
	c.Insert(2, val(2))
	if !c.Full() {
		t.Fatal("chunk should be full")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on Insert into full chunk")
		}
	}()
	c.Insert(3, val(3))
}

func TestMoveGreaterTo(t *testing.T) {
	bothPolicies(t, func(t *testing.T, sorted bool) {
		c := newChunk(t, 8, sorted)
		dst := newChunk(t, 8, sorted)
		for _, k := range []int64{10, 20, 30, 40, 50} {
			c.Insert(k, val(k))
		}
		c.MoveGreaterTo(25, dst)
		wantLeft, wantRight := []int64{10, 20}, []int64{30, 40, 50}
		checkKeys(t, c, wantLeft)
		checkKeys(t, dst, wantRight)
		for _, k := range wantRight {
			if v, ok := dst.Get(k); !ok || *v != k {
				t.Fatalf("payload for %d lost in move", k)
			}
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		if err := dst.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestMoveGreaterToBoundaryKey(t *testing.T) {
	bothPolicies(t, func(t *testing.T, sorted bool) {
		c := newChunk(t, 4, sorted)
		dst := newChunk(t, 4, sorted)
		for _, k := range []int64{1, 2, 3} {
			c.Insert(k, val(k))
		}
		c.MoveGreaterTo(3, dst) // strictly greater: nothing moves
		checkKeys(t, c, []int64{1, 2, 3})
		checkKeys(t, dst, nil)
		c.MoveGreaterTo(0, dst) // everything moves
		checkKeys(t, c, nil)
		checkKeys(t, dst, []int64{1, 2, 3})
	})
}

func TestSplitUpperHalfTo(t *testing.T) {
	bothPolicies(t, func(t *testing.T, sorted bool) {
		c := newChunk(t, 4, sorted)
		dst := newChunk(t, 4, sorted)
		all := []int64{5, 3, 8, 1, 9, 7, 2, 6}
		for _, k := range all {
			c.Insert(k, val(k))
		}
		pivot := c.SplitUpperHalfTo(dst)
		if got := c.Size() + dst.Size(); got != len(all) {
			t.Fatalf("elements lost in split: %d", got)
		}
		// Everything in dst >= pivot > everything in c.
		if maxLeft, _ := c.MaxKey(); maxLeft >= pivot {
			t.Fatalf("left max %d >= pivot %d", maxLeft, pivot)
		}
		if minRight, _ := dst.MinKey(); minRight != pivot {
			t.Fatalf("right min %d != pivot %d", minRight, pivot)
		}
		// Sizes roughly balanced.
		if c.Size() != 4 || dst.Size() != 4 {
			t.Fatalf("unbalanced split: %d / %d", c.Size(), dst.Size())
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		if err := dst.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestAbsorbFrom(t *testing.T) {
	bothPolicies(t, func(t *testing.T, sorted bool) {
		c := newChunk(t, 4, sorted)
		src := newChunk(t, 4, sorted)
		for _, k := range []int64{1, 2, 3} {
			c.Insert(k, val(k))
		}
		for _, k := range []int64{10, 11} {
			src.Insert(k, val(k))
		}
		c.AbsorbFrom(src)
		checkKeys(t, c, []int64{1, 2, 3, 10, 11})
		if src.Size() != 0 {
			t.Fatalf("src size = %d after absorb", src.Size())
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestAbsorbFromUnsortedIntoSorted(t *testing.T) {
	c := newChunk(t, 4, true)
	var src Chunk[int64]
	src.Init(4, false)
	c.Insert(1, val(1))
	for _, k := range []int64{12, 10, 11} {
		src.Insert(k, val(k))
	}
	c.AbsorbFrom(&src)
	checkKeys(t, c, []int64{1, 10, 11, 12})
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAbsorbOverflowPanics(t *testing.T) {
	c := newChunk(t, 1, true)
	src := newChunk(t, 1, true)
	c.Insert(1, val(1))
	src.Insert(2, val(2))
	src.Insert(3, val(3))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on overflowing absorb")
		}
	}()
	c.AbsorbFrom(src)
}

func TestForEachOrdered(t *testing.T) {
	bothPolicies(t, func(t *testing.T, sorted bool) {
		c := newChunk(t, 8, sorted)
		keys := []int64{9, 2, 7, 4, 1}
		for _, k := range keys {
			c.Insert(k, val(k))
		}
		var got []int64
		c.ForEachOrdered(func(k int64, v *int64) bool {
			got = append(got, k)
			return true
		})
		want := append([]int64(nil), keys...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			t.Fatalf("got %d keys, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("position %d: got %d want %d", i, got[i], want[i])
			}
		}
	})
}

func TestForEachEarlyStop(t *testing.T) {
	c := newChunk(t, 8, true)
	for k := int64(1); k <= 5; k++ {
		c.Insert(k, val(k))
	}
	n := 0
	c.ForEach(func(k int64, v *int64) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("ForEach visited %d, want 3", n)
	}
}

func TestInitReusesBackingArrays(t *testing.T) {
	c := newChunk(t, 4, true)
	for k := int64(0); k < 8; k++ {
		c.Insert(k, val(k))
	}
	c.Init(4, false)
	if c.Size() != 0 || c.Sorted() {
		t.Fatalf("reinit failed: size=%d sorted=%t", c.Size(), c.Sorted())
	}
	for i := 0; i < c.Cap(); i++ {
		if _, v := c.At(i); v != nil {
			t.Fatalf("slot %d payload not cleared on reinit", i)
		}
	}
	c.Insert(3, val(3))
	if v, ok := c.Get(3); !ok || *v != 3 {
		t.Fatal("chunk unusable after reinit")
	}
}

// checkKeys asserts the chunk contains exactly the given key set.
func checkKeys(t *testing.T, c *Chunk[int64], want []int64) {
	t.Helper()
	got := c.Keys()
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	w := append([]int64(nil), want...)
	sort.Slice(w, func(i, j int) bool { return w[i] < w[j] })
	if len(got) != len(w) {
		t.Fatalf("keys = %v, want %v", got, w)
	}
	for i := range w {
		if got[i] != w[i] {
			t.Fatalf("keys = %v, want %v", got, w)
		}
	}
}

// --- property-based tests -------------------------------------------------

// TestPropertyChunkMatchesModel replays random op sequences against a Go map
// model for both policies.
func TestPropertyChunkMatchesModel(t *testing.T) {
	bothPolicies(t, func(t *testing.T, sorted bool) {
		f := func(ops []uint16, seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			var c Chunk[int64]
			c.Init(8, sorted)
			model := map[int64]int64{}
			for _, raw := range ops {
				k := int64(raw % 32)
				switch rng.Intn(3) {
				case 0: // insert
					if len(model) == c.Cap() {
						continue
					}
					_, inModel := model[k]
					got := c.Insert(k, val(k*3))
					if got == inModel {
						return false
					}
					if got {
						model[k] = k * 3
					}
				case 1: // remove
					_, inModel := model[k]
					_, got := c.Remove(k)
					if got != inModel {
						return false
					}
					delete(model, k)
				case 2: // lookup
					v, got := c.Get(k)
					mv, inModel := model[k]
					if got != inModel || (got && *v != mv) {
						return false
					}
				}
				if c.CheckInvariants() != nil || c.Size() != len(model) {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
			t.Fatal(err)
		}
	})
}

// TestPropertySplitMergeConservation checks that split followed by absorb is
// the identity on the key set, for random chunk contents.
func TestPropertySplitMergeConservation(t *testing.T) {
	bothPolicies(t, func(t *testing.T, sorted bool) {
		f := func(rawKeys []int64) bool {
			// Dedup and bound the key count to chunk capacity.
			seen := map[int64]struct{}{}
			var keys []int64
			for _, k := range rawKeys {
				if _, dup := seen[k]; dup || len(keys) >= 16 {
					continue
				}
				seen[k] = struct{}{}
				keys = append(keys, k)
			}
			if len(keys) < 2 {
				return true
			}
			var c, d Chunk[int64]
			c.Init(8, sorted)
			d.Init(8, sorted)
			for _, k := range keys {
				c.Insert(k, val(k))
			}
			before := c.Keys()
			sort.Slice(before, func(i, j int) bool { return before[i] < before[j] })
			c.SplitUpperHalfTo(&d)
			if maxL, _ := c.MaxKey(); d.Size() > 0 {
				if minR, _ := d.MinKey(); c.Size() > 0 && maxL >= minR {
					return false
				}
			}
			c.AbsorbFrom(&d)
			after := c.Keys()
			sort.Slice(after, func(i, j int) bool { return after[i] < after[j] })
			if len(before) != len(after) {
				return false
			}
			for i := range before {
				if before[i] != after[i] {
					return false
				}
			}
			return c.CheckInvariants() == nil
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
			t.Fatal(err)
		}
	})
}

// TestPropertyFindLEMatchesScan cross-checks FindLE against a brute-force
// scan for random contents and random queries.
func TestPropertyFindLEMatchesScan(t *testing.T) {
	bothPolicies(t, func(t *testing.T, sorted bool) {
		f := func(rawKeys []int64, queries []int64) bool {
			var c Chunk[int64]
			c.Init(8, sorted)
			for _, k := range rawKeys {
				if c.Full() {
					break
				}
				c.Insert(k, val(k))
			}
			keys := c.Keys()
			for _, q := range queries {
				var want int64
				found := false
				for _, k := range keys {
					if k <= q && (!found || k > want) {
						want, found = k, true
					}
				}
				k, _, ok := c.FindLE(q)
				if ok != found || (ok && k != want) {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
			t.Fatal(err)
		}
	})
}

func TestFindGE(t *testing.T) {
	bothPolicies(t, func(t *testing.T, sorted bool) {
		c := newChunk(t, 8, sorted)
		for _, k := range []int64{10, 20, 30, 40} {
			c.Insert(k, val(k))
		}
		cases := []struct {
			q      int64
			want   int64
			wantOK bool
		}{
			{5, 10, true},
			{10, 10, true},
			{15, 20, true},
			{40, 40, true},
			{41, 0, false},
		}
		for _, tc := range cases {
			k, v, ok := c.FindGE(tc.q)
			if ok != tc.wantOK || (ok && k != tc.want) {
				t.Fatalf("FindGE(%d) = %d,%t want %d,%t", tc.q, k, ok, tc.want, tc.wantOK)
			}
			if ok && *v != tc.want {
				t.Fatalf("FindGE(%d) payload = %d", tc.q, *v)
			}
		}
		empty := newChunk(t, 4, sorted)
		if _, _, ok := empty.FindGE(5); ok {
			t.Fatal("FindGE on empty chunk should fail")
		}
	})
}

// TestPropertyFindGEMatchesScan cross-checks FindGE against a brute-force
// scan for random contents and queries.
func TestPropertyFindGEMatchesScan(t *testing.T) {
	bothPolicies(t, func(t *testing.T, sorted bool) {
		f := func(rawKeys []int64, queries []int64) bool {
			var c Chunk[int64]
			c.Init(8, sorted)
			for _, k := range rawKeys {
				if c.Full() {
					break
				}
				c.Insert(k, val(k))
			}
			keys := c.Keys()
			for _, q := range queries {
				var want int64
				found := false
				for _, k := range keys {
					if k >= q && (!found || k < want) {
						want, found = k, true
					}
				}
				k, _, ok := c.FindGE(q)
				if ok != found || (ok && k != want) {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
			t.Fatal(err)
		}
	})
}
