package vectormap

import (
	"math/rand"
	"sync"
	"testing"
)

// TestInsertIntoFullChunk pins the full-chunk contract: inserting a fresh
// key into a chunk at capacity panics (the skip vector must split first),
// while a duplicate key is rejected by the absence check before the
// capacity check and must NOT panic.
func TestInsertIntoFullChunk(t *testing.T) {
	cases := []struct {
		name      string
		sorted    bool
		key       int64 // key to insert once full
		wantPanic bool
	}{
		{"sorted-fresh-key", true, 100, true},
		{"unsorted-fresh-key", false, 100, true},
		{"sorted-duplicate", true, 0, false},
		{"unsorted-duplicate", false, 0, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := newChunk(t, 2, tc.sorted) // capacity 4
			for k := int64(0); k < 4; k++ {
				if !c.Insert(k, val(k)) {
					t.Fatalf("setup Insert(%d) failed", k)
				}
			}
			if !c.Full() {
				t.Fatal("chunk not full after filling to capacity")
			}
			panicked := func() (p bool) {
				defer func() { p = recover() != nil }()
				if c.Insert(tc.key, val(tc.key)) {
					t.Errorf("Insert(%d) into full chunk returned true", tc.key)
				}
				return
			}()
			if panicked != tc.wantPanic {
				t.Fatalf("panic = %t, want %t", panicked, tc.wantPanic)
			}
			if !tc.wantPanic {
				if err := c.CheckInvariants(); err != nil {
					t.Fatalf("invariants after rejected duplicate: %v", err)
				}
			}
		})
	}
}

// TestRemoveToEmpty drains a full chunk in several orders and checks every
// emptiness-related query plus reusability afterwards.
func TestRemoveToEmpty(t *testing.T) {
	orders := map[string]func(n int) []int64{
		"ascending": func(n int) []int64 {
			out := make([]int64, n)
			for i := range out {
				out[i] = int64(i)
			}
			return out
		},
		"descending": func(n int) []int64 {
			out := make([]int64, n)
			for i := range out {
				out[i] = int64(n - 1 - i)
			}
			return out
		},
		"shuffled": func(n int) []int64 {
			out := make([]int64, n)
			for i := range out {
				out[i] = int64(i)
			}
			rand.New(rand.NewSource(3)).Shuffle(n, func(i, j int) {
				out[i], out[j] = out[j], out[i]
			})
			return out
		},
	}
	bothPolicies(t, func(t *testing.T, sorted bool) {
		for name, order := range orders {
			t.Run(name, func(t *testing.T) {
				const n = 8
				c := newChunk(t, n/2, sorted)
				for k := int64(0); k < n; k++ {
					c.Insert(k, val(k*10))
				}
				for i, k := range order(n) {
					v, ok := c.Remove(k)
					if !ok || *v != k*10 {
						t.Fatalf("Remove(%d) = (%v,%t)", k, v, ok)
					}
					if c.Size() != n-1-i {
						t.Fatalf("size %d after %d removals", c.Size(), i+1)
					}
					if err := c.CheckInvariants(); err != nil {
						t.Fatalf("invariants mid-drain: %v", err)
					}
				}
				if c.Size() != 0 {
					t.Fatalf("size %d after drain", c.Size())
				}
				if _, ok := c.MinKey(); ok {
					t.Fatal("MinKey on empty chunk reported a key")
				}
				if _, ok := c.MaxKey(); ok {
					t.Fatal("MaxKey on empty chunk reported a key")
				}
				if _, _, ok := c.FindLE(1 << 40); ok {
					t.Fatal("FindLE on empty chunk reported an entry")
				}
				if _, ok := c.Remove(0); ok {
					t.Fatal("Remove on empty chunk succeeded")
				}
				// The drained chunk must be immediately reusable.
				if !c.Insert(7, val(77)) {
					t.Fatal("Insert into drained chunk failed")
				}
				if v, ok := c.Get(7); !ok || *v != 77 {
					t.Fatal("Get after refill failed")
				}
			})
		}
	})
}

// TestUnsortedDuplicateHandlingConcurrentReaders hammers an unsorted chunk
// with a single writer that repeatedly tries duplicate inserts (the
// unsorted policy's linear-scan absence check) and remove/re-insert
// churn, while optimistic readers scan concurrently. Mirroring the node
// discipline, the writer serializes through a mutex standing in for the
// seqlock; readers run without it — they may observe torn states but must
// never panic, index out of bounds, or loop past capacity. The final
// quiescent chunk must hold exactly one copy of each key.
func TestUnsortedDuplicateHandlingConcurrentReaders(t *testing.T) {
	const (
		target   = 8 // capacity 16
		keySpace = 10
		writes   = 4000
	)
	var c Chunk[int64]
	c.Init(target, false)
	var writerMu sync.Mutex // stands in for the owning node's write lock

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := int64(rng.Intn(keySpace))
				switch rng.Intn(4) {
				case 0:
					c.Get(k)
				case 1:
					c.FindLE(k)
				case 2:
					c.MinKey()
				default:
					calls := 0
					c.ForEach(func(int64, *int64) bool {
						calls++
						return true
					})
					if calls > c.Cap() {
						t.Errorf("ForEach visited %d > cap %d slots", calls, c.Cap())
						return
					}
				}
			}
		}(int64(r) + 1)
	}

	rng := rand.New(rand.NewSource(99))
	for i := 0; i < writes; i++ {
		k := int64(rng.Intn(keySpace))
		writerMu.Lock()
		if c.Contains(k) {
			if c.Insert(k, val(k)) {
				writerMu.Unlock()
				t.Fatal("duplicate insert succeeded")
			}
			if rng.Intn(2) == 0 {
				c.Remove(k)
			}
		} else {
			if !c.Insert(k, val(k)) {
				writerMu.Unlock()
				t.Fatal("insert of absent key failed")
			}
		}
		writerMu.Unlock()
	}
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}
	// Quiescent: exactly one copy of every present key.
	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("invariants after churn: %v", err)
	}
	seen := map[int64]int{}
	c.ForEach(func(k int64, _ *int64) bool {
		seen[k]++
		return true
	})
	for k, n := range seen {
		if n != 1 {
			t.Fatalf("key %d present %d times", k, n)
		}
	}
}
