package vectormap

import (
	"math/rand"
	"testing"
)

// applyAll is a test helper that runs ApplyOps and fails unless every op was
// consumed.
func applyAll(t *testing.T, c *Chunk[int64], ops []SlotOp[int64]) []SlotOutcome {
	t.Helper()
	out := make([]SlotOutcome, len(ops))
	if n := c.ApplyOps(ops, out); n != len(ops) {
		t.Fatalf("ApplyOps consumed %d of %d ops on a chunk with room", n, len(ops))
	}
	return out
}

func TestApplyOpsOutcomes(t *testing.T) {
	bothPolicies(t, func(t *testing.T, sorted bool) {
		c := newChunk(t, 8, sorted)
		c.Insert(5, val(50))
		c.Insert(9, val(90))

		out := applyAll(t, c, []SlotOp[int64]{
			{Key: 1, Val: val(10)},                   // fresh insert
			{Key: 5, Val: val(55)},                   // overwrite
			{Key: 9, Val: val(99), InsertOnly: true}, // blocked by presence
			{Key: 3, Val: val(30), InsertOnly: true}, // insert-only on absent key
			{Key: 5, Del: true},                      // remove present
			{Key: 7, Del: true},                      // remove absent
		})
		want := []SlotOutcome{SlotInserted, SlotUpdated, SlotExists, SlotInserted, SlotRemoved, SlotAbsent}
		for i := range want {
			if out[i] != want[i] {
				t.Fatalf("op %d: outcome %v, want %v", i, out[i], want[i])
			}
		}
		if v, ok := c.Get(9); !ok || *v != 90 {
			t.Fatalf("InsertOnly overwrote: Get(9) = %v, %t", v, ok)
		}
		if _, ok := c.Get(5); ok {
			t.Fatal("removed key 5 still present")
		}
		if c.Size() != 3 { // {1, 3, 9}
			t.Fatalf("Size = %d, want 3", c.Size())
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("invariants: %v", err)
		}
	})
}

// TestApplyOpsDuplicateKeys pins sequential (last-write-wins) resolution of
// intra-batch duplicates, on both cell policies.
func TestApplyOpsDuplicateKeys(t *testing.T) {
	bothPolicies(t, func(t *testing.T, sorted bool) {
		c := newChunk(t, 8, sorted)
		out := applyAll(t, c, []SlotOp[int64]{
			{Key: 4, Val: val(1)},
			{Key: 4, Val: val(2)},
			{Key: 4, Del: true},
			{Key: 4, Val: val(3), InsertOnly: true},
			{Key: 4, Val: val(4)},
		})
		want := []SlotOutcome{SlotInserted, SlotUpdated, SlotRemoved, SlotInserted, SlotUpdated}
		for i := range want {
			if out[i] != want[i] {
				t.Fatalf("op %d: outcome %v, want %v", i, out[i], want[i])
			}
		}
		if v, ok := c.Get(4); !ok || *v != 4 {
			t.Fatalf("last write did not win: Get(4) = %v, %t", v, ok)
		}
		if c.Size() != 1 {
			t.Fatalf("Size = %d, want 1", c.Size())
		}
	})
}

// TestApplyOpsStopsAtCapacity: an insert of a new key into a full chunk stops
// the apply mid-group, reporting how far it got; deletes and overwrites of
// present keys must still succeed on a full chunk.
func TestApplyOpsStopsAtCapacity(t *testing.T) {
	bothPolicies(t, func(t *testing.T, sorted bool) {
		c := newChunk(t, 2, sorted) // capacity 4
		for k := int64(0); k < 4; k++ {
			c.Insert(k*2, val(k))
		}
		if !c.Full() {
			t.Fatal("chunk not full after filling to capacity")
		}

		ops := []SlotOp[int64]{
			{Key: 0, Val: val(100)}, // overwrite: fine on a full chunk
			{Key: 2, Del: true},     // remove: frees a cell
			{Key: 3, Val: val(30)},  // fresh insert into the freed cell
			{Key: 5, Val: val(50)},  // fresh insert: full again — must stop here
			{Key: 6, Val: val(60)},  // never reached
		}
		out := make([]SlotOutcome, len(ops))
		n := c.ApplyOps(ops, out)
		if n != 3 {
			t.Fatalf("ApplyOps consumed %d ops, want 3 (stop at the insert that found the chunk full)", n)
		}
		want := []SlotOutcome{SlotUpdated, SlotRemoved, SlotInserted}
		for i := 0; i < n; i++ {
			if out[i] != want[i] {
				t.Fatalf("op %d: outcome %v, want %v", i, out[i], want[i])
			}
		}
		if out[3] != SlotNone || out[4] != SlotNone {
			t.Fatalf("unconsumed ops have outcomes: %v", out[3:])
		}
		// The caller's contract: split, then resume from ops[n:]. Simulate it.
		var right Chunk[int64]
		right.Init(2, sorted)
		pivot := c.SplitUpperHalfTo(&right)
		rest := ops[n:]
		rem := out[n:]
		var consumed int
		if rest[0].Key < pivot {
			consumed = c.ApplyOps(rest, rem)
		} else {
			consumed = right.ApplyOps(rest, rem)
		}
		if consumed != len(rest) {
			t.Fatalf("resume consumed %d of %d", consumed, len(rest))
		}
		for _, k := range []int64{0, 3, 4, 5, 6} {
			inLeft, _ := c.Get(k)
			inRight, _ := right.Get(k)
			if inLeft == nil && inRight == nil {
				t.Fatalf("key %d missing after split-and-resume", k)
			}
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("left invariants: %v", err)
		}
		if err := right.CheckInvariants(); err != nil {
			t.Fatalf("right invariants: %v", err)
		}
	})
}

// TestApplyOpsRemoveToEmpty: a delete run may drain the chunk entirely
// mid-group; later ops must still apply to the now-empty chunk.
func TestApplyOpsRemoveToEmpty(t *testing.T) {
	bothPolicies(t, func(t *testing.T, sorted bool) {
		c := newChunk(t, 4, sorted)
		c.Insert(1, val(1))
		c.Insert(2, val(2))
		out := applyAll(t, c, []SlotOp[int64]{
			{Key: 1, Del: true},
			{Key: 2, Del: true},
			{Key: 2, Del: true}, // already gone
			{Key: 3, Val: val(3)},
		})
		want := []SlotOutcome{SlotRemoved, SlotRemoved, SlotAbsent, SlotInserted}
		for i := range want {
			if out[i] != want[i] {
				t.Fatalf("op %d: outcome %v, want %v", i, out[i], want[i])
			}
		}
		if c.Size() != 1 {
			t.Fatalf("Size = %d, want 1", c.Size())
		}
	})
}

// TestApplyOpsMatchesSingletons is the property check: a random op sequence
// applied in one ApplyOps call must leave the same contents and report the
// same outcomes as the equivalent singleton calls on a second chunk.
func TestApplyOpsMatchesSingletons(t *testing.T) {
	bothPolicies(t, func(t *testing.T, sorted bool) {
		rng := rand.New(rand.NewSource(42))
		for round := 0; round < 200; round++ {
			batched := newChunk(t, 16, sorted)
			single := newChunk(t, 16, sorted)
			n := 1 + rng.Intn(24)
			ops := make([]SlotOp[int64], n)
			for i := range ops {
				k := int64(rng.Intn(12)) // small space: plenty of duplicates
				switch rng.Intn(4) {
				case 0:
					ops[i] = SlotOp[int64]{Key: k, Del: true}
				case 1:
					ops[i] = SlotOp[int64]{Key: k, Val: val(int64(round*100 + i)), InsertOnly: true}
				default:
					ops[i] = SlotOp[int64]{Key: k, Val: val(int64(round*100 + i))}
				}
			}

			got := applyAll(t, batched, ops)
			for i, op := range ops {
				var want SlotOutcome
				switch {
				case op.Del:
					if _, removed := single.Remove(op.Key); removed {
						want = SlotRemoved
					} else {
						want = SlotAbsent
					}
				default:
					if _, present := single.Get(op.Key); present {
						if op.InsertOnly {
							want = SlotExists
						} else {
							single.Set(op.Key, op.Val)
							want = SlotUpdated
						}
					} else {
						single.Insert(op.Key, op.Val)
						want = SlotInserted
					}
				}
				if got[i] != want {
					t.Fatalf("round %d op %d (%+v): outcome %v, singleton gives %v", round, i, op, got[i], want)
				}
			}

			if batched.Size() != single.Size() {
				t.Fatalf("round %d: batched size %d ≠ singleton size %d", round, batched.Size(), single.Size())
			}
			for _, k := range single.Keys() {
				bv, ok := batched.Get(k)
				sv, _ := single.Get(k)
				if !ok || *bv != *sv {
					t.Fatalf("round %d key %d: batched %v,%t ≠ singleton %v", round, k, bv, ok, sv)
				}
			}
			if err := batched.CheckInvariants(); err != nil {
				t.Fatalf("round %d invariants: %v", round, err)
			}
		}
	})
}

func TestSlotOutcomeString(t *testing.T) {
	for o, want := range map[SlotOutcome]string{
		SlotNone: "none", SlotInserted: "inserted", SlotUpdated: "updated",
		SlotRemoved: "removed", SlotAbsent: "absent", SlotExists: "exists",
	} {
		if o.String() != want {
			t.Fatalf("SlotOutcome(%d).String() = %q, want %q", o, o.String(), want)
		}
	}
}
