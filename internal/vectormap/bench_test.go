package vectormap

import (
	"fmt"
	"testing"
)

// These microbenchmarks quantify the per-chunk cost model behind Figure 7b:
// sorted chunks buy O(log T) lookups at O(T) mutation cost; unsorted chunks
// pay O(T) scans but O(1) writes.

func benchChunk(target int, sorted bool) *Chunk[int64] {
	var c Chunk[int64]
	c.Init(target, sorted)
	x := int64(1)
	for i := 0; i < target; i++ {
		c.Insert(int64(i*2), &x)
	}
	return &c
}

func BenchmarkChunkGet(b *testing.B) {
	for _, sorted := range []bool{true, false} {
		for _, target := range []int{8, 32, 128} {
			c := benchChunk(target, sorted)
			b.Run(fmt.Sprintf("sorted=%t/T=%d", sorted, target), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					c.Get(int64((i % target) * 2))
				}
			})
		}
	}
}

func BenchmarkChunkFindLE(b *testing.B) {
	for _, sorted := range []bool{true, false} {
		for _, target := range []int{8, 32, 128} {
			c := benchChunk(target, sorted)
			b.Run(fmt.Sprintf("sorted=%t/T=%d", sorted, target), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					c.FindLE(int64(i % (target * 2)))
				}
			})
		}
	}
}

func BenchmarkChunkInsertRemove(b *testing.B) {
	for _, sorted := range []bool{true, false} {
		for _, target := range []int{8, 32, 128} {
			b.Run(fmt.Sprintf("sorted=%t/T=%d", sorted, target), func(b *testing.B) {
				c := benchChunk(target, sorted)
				x := int64(1)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					k := int64((i%target)*2 + 1) // odd keys: always absent
					c.Insert(k, &x)
					c.Remove(k)
				}
			})
		}
	}
}

func BenchmarkChunkSplitAbsorb(b *testing.B) {
	for _, sorted := range []bool{true, false} {
		b.Run(fmt.Sprintf("sorted=%t", sorted), func(b *testing.B) {
			c := benchChunk(32, sorted)
			var d Chunk[int64]
			d.Init(32, sorted)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.SplitUpperHalfTo(&d)
				c.AbsorbFrom(&d)
			}
		})
	}
}
