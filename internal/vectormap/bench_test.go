package vectormap

import (
	"fmt"
	"math/rand"
	"testing"
	"unsafe"

	"skipvector/internal/cpuhint"
)

// These microbenchmarks quantify the per-chunk cost model behind Figure 7b:
// sorted chunks buy O(log T) lookups at O(T) mutation cost; unsorted chunks
// pay O(T) scans but O(1) writes.

func benchChunk(target int, sorted bool) *Chunk[int64] {
	var c Chunk[int64]
	c.Init(target, sorted)
	x := int64(1)
	for i := 0; i < target; i++ {
		c.Insert(int64(i*2), &x)
	}
	return &c
}

func BenchmarkChunkGet(b *testing.B) {
	for _, sorted := range []bool{true, false} {
		for _, target := range []int{8, 32, 128} {
			c := benchChunk(target, sorted)
			b.Run(fmt.Sprintf("sorted=%t/T=%d", sorted, target), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					c.Get(int64((i % target) * 2))
				}
			})
		}
	}
}

func BenchmarkChunkFindLE(b *testing.B) {
	for _, sorted := range []bool{true, false} {
		for _, target := range []int{8, 32, 128} {
			c := benchChunk(target, sorted)
			b.Run(fmt.Sprintf("sorted=%t/T=%d", sorted, target), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					c.FindLE(int64(i % (target * 2)))
				}
			})
		}
	}
}

func BenchmarkChunkInsertRemove(b *testing.B) {
	for _, sorted := range []bool{true, false} {
		for _, target := range []int{8, 32, 128} {
			b.Run(fmt.Sprintf("sorted=%t/T=%d", sorted, target), func(b *testing.B) {
				c := benchChunk(target, sorted)
				x := int64(1)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					k := int64((i%target)*2 + 1) // odd keys: always absent
					c.Insert(k, &x)
					c.Remove(k)
				}
			})
		}
	}
}

// BenchmarkChunkIndexOf pits the branchless lower-bound core against the
// reference binary search on sorted chunks of 8–512 keys with uniformly
// random (maximally branch-hostile) lookup targets. EXPERIMENTS.md cites
// these numbers for the hotpath ablation's intra-chunk component.
func BenchmarkChunkIndexOf(b *testing.B) {
	defer SetBranchlessSearch(true)
	for _, impl := range []string{"branchless", "ref"} {
		for _, size := range []int{8, 32, 64, 128, 512} {
			c := benchChunk(size, true)
			// Pre-generate probe keys: half present (even), half absent (odd),
			// in random order, so the probe sequence defeats the predictor the
			// same way uniform workload keys do.
			rng := rand.New(rand.NewSource(42))
			probes := make([]int64, 4096)
			for i := range probes {
				probes[i] = int64(rng.Intn(size * 2))
			}
			b.Run(fmt.Sprintf("impl=%s/T=%d", impl, size), func(b *testing.B) {
				SetBranchlessSearch(impl == "branchless")
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					c.Get(probes[i&4095])
				}
			})
		}
	}
}

// BenchmarkDescend models the descent's memory behaviour in isolation: a
// pointer-chase through a chain of chunks far larger than L2, searching each
// one, with the next hop's key lines either prefetched while the current
// search runs (as core.descendToData does) or not. The prefetch × branchless
// grid here is the microbenchmark backing for the full-map hotpath figure.
func BenchmarkDescend(b *testing.B) {
	defer cpuhint.SetEnabled(true)
	defer SetBranchlessSearch(true)
	const chainLen = 1 << 14 // 16Ki chunks × 64 keys ≈ 16 MiB of key cells
	chunks := make([]*Chunk[int64], chainLen)
	rng := rand.New(rand.NewSource(7))
	order := rng.Perm(chainLen)
	for i := range chunks {
		chunks[i] = benchChunk(64, true)
	}
	// Random probe targets, like ChunkIndexOf's: a periodic pattern would let
	// the branch predictor memorize the reference search's decisions, which no
	// uniform workload allows it.
	probes := make([]int64, 4096)
	for i := range probes {
		probes[i] = int64(rng.Intn(128))
	}
	for _, pf := range []bool{true, false} {
		for _, bl := range []bool{true, false} {
			b.Run(fmt.Sprintf("prefetch=%t/branchless=%t", pf, bl), func(b *testing.B) {
				cpuhint.SetEnabled(pf)
				SetBranchlessSearch(bl)
				b.ResetTimer()
				pos := 0
				for i := 0; i < b.N; i++ {
					c := chunks[order[pos]]
					pos++
					if pos == chainLen {
						pos = 0
					}
					// Hint the *next* chunk before searching the current one,
					// mirroring the overlap structure of the real descent.
					next := chunks[order[pos]]
					cpuhint.Prefetch(unsafe.Pointer(&next.keys[0]))
					next.PrefetchKeys()
					c.Get(probes[i&4095])
				}
			})
		}
	}
}

func BenchmarkChunkSplitAbsorb(b *testing.B) {
	for _, sorted := range []bool{true, false} {
		b.Run(fmt.Sprintf("sorted=%t", sorted), func(b *testing.B) {
			c := benchChunk(32, sorted)
			var d Chunk[int64]
			d.Init(32, sorted)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.SplitUpperHalfTo(&d)
				c.AbsorbFrom(&d)
			}
		})
	}
}
