// Package vectormap implements the fixed-capacity key/payload vectors
// ("chunks") that skip vector nodes flatten their layers into (Listing 1 of
// the paper: type VectorMap). A chunk stores up to 2×targetSize correlated
// key/payload pairs in two parallel arrays, which is the source of the skip
// vector's spatial locality: one chunk traversal touches a handful of
// contiguous cache lines instead of chasing per-element pointers.
//
// Chunks come in two flavours (Section V-B):
//
//   - sorted: keys kept in ascending order. Lookups binary-search in
//     O(log T); inserts and removals shift elements in O(T). Profitable in
//     index layers where reads dominate.
//   - unsorted: keys appended in arrival order. All lookups scan in O(T),
//     but inserts and removals write O(1) slots. Profitable in the data
//     layer where modifications are common.
//
// Synchronization discipline: a chunk has no lock of its own — the owning
// node's sequence lock protects it. Writers mutate a chunk only while
// holding that lock. Readers may scan a chunk optimistically (concurrently
// with a writer) and must validate the node's sequence lock afterwards;
// until validated, any value read from a chunk is a candidate that may be
// torn or stale. To make such racy-by-design reads well-defined under the Go
// memory model, every slot is an atomic cell, and all size loads are clamped
// to the capacity. Every read path terminates regardless of concurrent
// writes (the paper's requirement in Section IV-C).
package vectormap

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"skipvector/internal/telemetry"
)

// Shift-distance histograms, registered with the global telemetry registry:
// how many elements a sorted-chunk Insert or Remove displaces. The paper's
// sorted/unsorted chunk-policy trade-off is exactly this cost, so measuring
// it shows whether a layer's policy matches its workload. Chunks carry no
// per-structure identity (the owning node's lock protects them), so the
// metrics are process-wide; the caller holds the node's write lock, making
// the insertion position a fine stripe hint.
var (
	mInsertShift = telemetry.Global.Histogram("sv_vectormap_insert_shift",
		"Elements shifted right by a sorted-chunk Insert.")
	mRemoveShift = telemetry.Global.Histogram("sv_vectormap_remove_shift",
		"Elements shifted left by a sorted-chunk Remove.")
)

// Sentinel keys. NegInf lives in head nodes (the paper's ⊥) and PosInf in
// tail nodes (⊤). User keys must lie strictly between them.
const (
	NegInf = math.MinInt64
	PosInf = math.MaxInt64
)

// Chunk is a fixed-capacity map from int64 keys to *P payloads. In the skip
// vector, P is the value type for data-layer chunks and the node type for
// index-layer chunks (the payload is the "down" pointer).
//
// The zero value is unusable; call Init.
type Chunk[P any] struct {
	keys   []atomic.Int64
	vals   []atomic.Pointer[P]
	size   atomic.Int32
	sorted bool
}

// Init prepares the chunk with capacity 2×targetSize. It may be called again
// on a recycled chunk to reset it (the backing arrays are reused when the
// capacity matches).
func (c *Chunk[P]) Init(targetSize int, sorted bool) {
	if targetSize < 1 {
		panic(fmt.Sprintf("vectormap: targetSize %d < 1", targetSize))
	}
	capacity := 2 * targetSize
	if len(c.keys) != capacity {
		c.keys = make([]atomic.Int64, capacity)
		c.vals = make([]atomic.Pointer[P], capacity)
	} else {
		for i := range c.vals {
			c.vals[i].Store(nil)
		}
	}
	c.sorted = sorted
	c.size.Store(0)
}

// Sorted reports whether this chunk keeps its keys in ascending order.
func (c *Chunk[P]) Sorted() bool { return c.sorted }

// Cap returns the chunk capacity (2×targetSize).
func (c *Chunk[P]) Cap() int { return len(c.keys) }

// Size returns the current number of elements. Under optimistic readers it
// is a snapshot that must be validated by the node's sequence lock.
func (c *Chunk[P]) Size() int {
	return c.snapshotSize()
}

// Full reports whether the chunk is at capacity.
func (c *Chunk[P]) Full() bool { return c.snapshotSize() == len(c.keys) }

// snapshotSize loads size clamped into [0, cap] so that concurrent readers
// can never index out of bounds even if they observe a torn state.
func (c *Chunk[P]) snapshotSize() int {
	s := int(c.size.Load())
	if s < 0 {
		return 0
	}
	if s > len(c.keys) {
		return len(c.keys)
	}
	return s
}

// At returns the key/payload pair at position i. For sorted chunks positions
// are in key order; for unsorted chunks the order is arbitrary.
func (c *Chunk[P]) At(i int) (int64, *P) {
	return c.keys[i].Load(), c.vals[i].Load()
}

// MinKey returns the smallest key, or ok=false when empty.
func (c *Chunk[P]) MinKey() (int64, bool) {
	s := c.snapshotSize()
	if s == 0 {
		return 0, false
	}
	if c.sorted {
		return c.keys[0].Load(), true
	}
	minK := c.keys[0].Load()
	for i := 1; i < s; i++ {
		if k := c.keys[i].Load(); k < minK {
			minK = k
		}
	}
	return minK, true
}

// MaxKey returns the largest key, or ok=false when empty.
func (c *Chunk[P]) MaxKey() (int64, bool) {
	s := c.snapshotSize()
	if s == 0 {
		return 0, false
	}
	if c.sorted {
		return c.keys[s-1].Load(), true
	}
	maxK := c.keys[0].Load()
	for i := 1; i < s; i++ {
		if k := c.keys[i].Load(); k > maxK {
			maxK = k
		}
	}
	return maxK, true
}

// Bounds returns the smallest and largest keys in a single pass, or ok=false
// when the chunk is empty. It is the cheaper equivalent of calling MinKey and
// MaxKey back to back, used by hot paths that need both ends of the chunk's
// key span (the search-finger ownership check).
func (c *Chunk[P]) Bounds() (minK, maxK int64, ok bool) {
	s := c.snapshotSize()
	if s == 0 {
		return 0, 0, false
	}
	if c.sorted {
		return c.keys[0].Load(), c.keys[s-1].Load(), true
	}
	minK = c.keys[0].Load()
	maxK = minK
	for i := 1; i < s; i++ {
		k := c.keys[i].Load()
		if k < minK {
			minK = k
		}
		if k > maxK {
			maxK = k
		}
	}
	return minK, maxK, true
}

// indexOf returns the position of key k, or -1.
func (c *Chunk[P]) indexOf(k int64) int {
	s := c.snapshotSize()
	if c.sorted {
		if i := c.lowerBound(k, s); i < s && c.keys[i].Load() == k {
			return i
		}
		return -1
	}
	for i := 0; i < s; i++ {
		if c.keys[i].Load() == k {
			return i
		}
	}
	return -1
}

// Get returns the payload mapped to k.
func (c *Chunk[P]) Get(k int64) (*P, bool) {
	if i := c.indexOf(k); i >= 0 {
		return c.vals[i].Load(), true
	}
	return nil, false
}

// Contains reports whether k is present.
func (c *Chunk[P]) Contains(k int64) bool { return c.indexOf(k) >= 0 }

// FindLE returns the entry with the largest key ≤ k, which is the pivot for
// rightward/downward traversal (Listing 2 line 7). ok is false when the
// chunk is empty or every key exceeds k — under the traversal invariant
// (minKey ≤ k) that indicates a concurrent modification and the caller must
// validate and restart.
func (c *Chunk[P]) FindLE(k int64) (key int64, val *P, ok bool) {
	s := c.snapshotSize()
	if s == 0 {
		return 0, nil, false
	}
	if c.sorted {
		// Largest index with keys[i] <= k.
		i := c.upperBound(k, s)
		if i == 0 {
			return 0, nil, false
		}
		return c.keys[i-1].Load(), c.vals[i-1].Load(), true
	}
	best := -1
	var bestKey int64
	for i := 0; i < s; i++ {
		if kk := c.keys[i].Load(); kk <= k && (best < 0 || kk > bestKey) {
			best, bestKey = i, kk
		}
	}
	if best < 0 {
		return 0, nil, false
	}
	return bestKey, c.vals[best].Load(), true
}

// FindGE returns the entry with the smallest key ≥ k, for ceiling/successor
// queries. ok is false when every key is < k (or the chunk is empty).
func (c *Chunk[P]) FindGE(k int64) (key int64, val *P, ok bool) {
	s := c.snapshotSize()
	if s == 0 {
		return 0, nil, false
	}
	if c.sorted {
		i := c.lowerBound(k, s)
		if i == s {
			return 0, nil, false
		}
		return c.keys[i].Load(), c.vals[i].Load(), true
	}
	best := -1
	var bestKey int64
	for i := 0; i < s; i++ {
		if kk := c.keys[i].Load(); kk >= k && (best < 0 || kk < bestKey) {
			best, bestKey = i, kk
		}
	}
	if best < 0 {
		return 0, nil, false
	}
	return bestKey, c.vals[best].Load(), true
}

// Insert adds the mapping k→v. It returns false if k is already present.
// The caller must hold the owning node's write lock and must have ensured
// spare capacity (insert into a full chunk panics: the skip vector splits
// before inserting).
func (c *Chunk[P]) Insert(k int64, v *P) bool {
	if c.indexOf(k) >= 0 {
		return false
	}
	s := int(c.size.Load())
	if s == len(c.keys) {
		panic("vectormap: Insert into full chunk")
	}
	if c.sorted {
		// Find insertion point, shift right.
		pos := sort.Search(s, func(i int) bool { return c.keys[i].Load() >= k })
		mInsertShift.Observe(pos, int64(s-pos))
		for i := s; i > pos; i-- {
			c.keys[i].Store(c.keys[i-1].Load())
			c.vals[i].Store(c.vals[i-1].Load())
		}
		c.keys[pos].Store(k)
		c.vals[pos].Store(v)
	} else {
		c.keys[s].Store(k)
		c.vals[s].Store(v)
	}
	c.size.Store(int32(s + 1))
	return true
}

// Set updates the payload of an existing key, returning false if absent.
// Caller must hold the write lock.
func (c *Chunk[P]) Set(k int64, v *P) bool {
	i := c.indexOf(k)
	if i < 0 {
		return false
	}
	c.vals[i].Store(v)
	return true
}

// SlotOp is one element of a multi-slot batch application (ApplyOps): a put
// (optionally insert-only) or a delete of Key.
type SlotOp[P any] struct {
	Key int64
	Val *P   // payload for puts; ignored for deletes
	Del bool // delete Key instead of writing it
	// InsertOnly makes a put succeed only when Key is absent; an existing
	// key is left untouched and reported as SlotExists.
	InsertOnly bool
}

// SlotOutcome reports what one SlotOp did to the chunk.
type SlotOutcome uint8

const (
	// SlotNone means the op was not applied (past an overflow cut).
	SlotNone SlotOutcome = iota
	// SlotInserted: the key was absent and was added.
	SlotInserted
	// SlotUpdated: the key was present and its payload was overwritten.
	SlotUpdated
	// SlotRemoved: the key was present and was deleted.
	SlotRemoved
	// SlotAbsent: a delete found nothing to delete.
	SlotAbsent
	// SlotExists: an insert-only put found the key already present.
	SlotExists
)

// String names the outcome for results and test failures.
func (o SlotOutcome) String() string {
	switch o {
	case SlotNone:
		return "none"
	case SlotInserted:
		return "inserted"
	case SlotUpdated:
		return "updated"
	case SlotRemoved:
		return "removed"
	case SlotAbsent:
		return "absent"
	case SlotExists:
		return "exists"
	default:
		return fmt.Sprintf("SlotOutcome(%d)", int(o))
	}
}

// ApplyOps applies ops sequentially — so duplicate keys inside one batch
// resolve last-write-wins — recording each op's outcome in the parallel out
// slice, and returns the number of ops applied. It stops short (returning
// i < len(ops)) only when ops[i] must insert a new key into a full chunk;
// the caller splits the chunk and retries ops[i:] on the half that owns the
// key. Deletes, overwrites, and insert-only hits on existing keys never need
// capacity and never stop the run. Caller must hold the owning node's write
// lock; out must be at least as long as ops.
func (c *Chunk[P]) ApplyOps(ops []SlotOp[P], out []SlotOutcome) int {
	// The batch's slot searches walk the whole occupied prefix; pull its
	// first lines in while the loop sets up.
	c.PrefetchKeys()
	for i := range ops {
		op := &ops[i]
		if op.Del {
			if _, removed := c.Remove(op.Key); removed {
				out[i] = SlotRemoved
			} else {
				out[i] = SlotAbsent
			}
			continue
		}
		if j := c.indexOf(op.Key); j >= 0 {
			if op.InsertOnly {
				out[i] = SlotExists
			} else {
				c.vals[j].Store(op.Val)
				out[i] = SlotUpdated
			}
			continue
		}
		if c.Full() {
			return i
		}
		if !c.Insert(op.Key, op.Val) {
			panic("vectormap: ApplyOps insert failed after absence check")
		}
		out[i] = SlotInserted
	}
	return len(ops)
}

// Remove deletes k and returns its payload. Caller must hold the write lock.
func (c *Chunk[P]) Remove(k int64) (*P, bool) {
	i := c.indexOf(k)
	if i < 0 {
		return nil, false
	}
	v := c.vals[i].Load()
	s := int(c.size.Load())
	if c.sorted {
		mRemoveShift.Observe(i, int64(s-1-i))
		for j := i; j < s-1; j++ {
			c.keys[j].Store(c.keys[j+1].Load())
			c.vals[j].Store(c.vals[j+1].Load())
		}
	} else if i != s-1 {
		c.keys[i].Store(c.keys[s-1].Load())
		c.vals[i].Store(c.vals[s-1].Load())
	}
	c.vals[s-1].Store(nil) // release payload reference for the collector
	c.size.Store(int32(s - 1))
	return v, true
}

// MoveGreaterTo moves every element with key strictly greater than k from c
// into dst, which must be empty and have the same capacity class (at least
// as many free slots as elements moved). It is the splitting primitive used
// when an Insert at height h cuts a node at key k (Listing 3 line 36).
// Caller must hold write locks (or exclusive access) on both chunks.
func (c *Chunk[P]) MoveGreaterTo(k int64, dst *Chunk[P]) {
	if dst.Size() != 0 {
		panic("vectormap: MoveGreaterTo into non-empty chunk")
	}
	s := int(c.size.Load())
	if c.sorted {
		pos := sort.Search(s, func(i int) bool { return c.keys[i].Load() > k })
		n := 0
		for i := pos; i < s; i++ {
			dst.keys[n].Store(c.keys[i].Load())
			dst.vals[n].Store(c.vals[i].Load())
			c.vals[i].Store(nil)
			n++
		}
		dst.size.Store(int32(n))
		c.size.Store(int32(pos))
		return
	}
	n := 0
	w := 0
	for i := 0; i < s; i++ {
		kk := c.keys[i].Load()
		vv := c.vals[i].Load()
		if kk > k {
			dst.keys[n].Store(kk)
			dst.vals[n].Store(vv)
			n++
		} else {
			c.keys[w].Store(kk)
			c.vals[w].Store(vv)
			w++
		}
	}
	for i := w; i < s; i++ {
		c.vals[i].Store(nil)
	}
	dst.size.Store(int32(n))
	c.size.Store(int32(w))
}

// SplitUpperHalfTo moves the largest ⌈size/2⌉ elements into dst (which must
// be empty) and returns the minimum key of dst. It is the capacity split
// applied when an Insert finds a full chunk. Caller must hold write locks on
// both chunks.
func (c *Chunk[P]) SplitUpperHalfTo(dst *Chunk[P]) int64 {
	s := int(c.size.Load())
	if s < 2 {
		panic("vectormap: SplitUpperHalfTo of chunk with fewer than 2 elements")
	}
	if c.sorted {
		keep := s / 2
		n := 0
		for i := keep; i < s; i++ {
			dst.keys[n].Store(c.keys[i].Load())
			dst.vals[n].Store(c.vals[i].Load())
			c.vals[i].Store(nil)
			n++
		}
		dst.size.Store(int32(n))
		c.size.Store(int32(keep))
		return dst.keys[0].Load()
	}
	// Unsorted: select the median via an explicit copy + sort of keys.
	// Splits are rare (amortized across T inserts), so O(T log T) here is
	// acceptable and keeps the hot paths branch-light.
	tmp := make([]int64, s)
	for i := 0; i < s; i++ {
		tmp[i] = c.keys[i].Load()
	}
	sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
	pivot := tmp[s/2] // elements >= pivot move (upper half)
	n, w := 0, 0
	for i := 0; i < s; i++ {
		kk := c.keys[i].Load()
		vv := c.vals[i].Load()
		if kk >= pivot {
			dst.keys[n].Store(kk)
			dst.vals[n].Store(vv)
			n++
		} else {
			c.keys[w].Store(kk)
			c.vals[w].Store(vv)
			w++
		}
	}
	for i := w; i < s; i++ {
		c.vals[i].Store(nil)
	}
	dst.size.Store(int32(n))
	c.size.Store(int32(w))
	return pivot
}

// AbsorbFrom moves every element of src into c (the merge primitive for
// orphan cleanup, Listing 2 line 33). All of src's keys must exceed all of
// c's keys (src is c's right neighbour). Caller must hold write locks on
// both chunks. Panics if the combined size exceeds capacity.
func (c *Chunk[P]) AbsorbFrom(src *Chunk[P]) {
	cs, ss := int(c.size.Load()), int(src.size.Load())
	if cs+ss > len(c.keys) {
		panic("vectormap: AbsorbFrom overflows capacity")
	}
	if c.sorted && !src.sorted {
		// Normalize: absorb in ascending key order.
		idx := make([]int, ss)
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool {
			return src.keys[idx[a]].Load() < src.keys[idx[b]].Load()
		})
		for n, i := range idx {
			c.keys[cs+n].Store(src.keys[i].Load())
			c.vals[cs+n].Store(src.vals[i].Load())
		}
	} else {
		for i := 0; i < ss; i++ {
			c.keys[cs+i].Store(src.keys[i].Load())
			c.vals[cs+i].Store(src.vals[i].Load())
		}
	}
	for i := 0; i < ss; i++ {
		src.vals[i].Store(nil)
	}
	c.size.Store(int32(cs + ss))
	src.size.Store(0)
}

// ForEach calls fn for each element. For sorted chunks the iteration is in
// ascending key order; for unsorted chunks it is arbitrary. Returning false
// from fn stops the iteration.
func (c *Chunk[P]) ForEach(fn func(k int64, v *P) bool) {
	s := c.snapshotSize()
	for i := 0; i < s; i++ {
		if !fn(c.keys[i].Load(), c.vals[i].Load()) {
			return
		}
	}
}

// ForEachOrdered calls fn in ascending key order regardless of chunk policy.
// Unsorted chunks pay an O(T log T) index sort; it is used by range
// operations, which hold the node lock.
func (c *Chunk[P]) ForEachOrdered(fn func(k int64, v *P) bool) {
	s := c.snapshotSize()
	if c.sorted {
		for i := 0; i < s; i++ {
			if !fn(c.keys[i].Load(), c.vals[i].Load()) {
				return
			}
		}
		return
	}
	idx := make([]int, s)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return c.keys[idx[a]].Load() < c.keys[idx[b]].Load()
	})
	for _, i := range idx {
		if !fn(c.keys[i].Load(), c.vals[i].Load()) {
			return
		}
	}
}

// Keys returns a copy of the current keys (ascending for sorted chunks).
// Intended for tests and invariant checks.
func (c *Chunk[P]) Keys() []int64 {
	s := c.snapshotSize()
	out := make([]int64, s)
	for i := 0; i < s; i++ {
		out[i] = c.keys[i].Load()
	}
	return out
}

// CheckInvariants validates internal consistency (used by tests): size in
// bounds, no duplicate keys, and ascending order for sorted chunks.
func (c *Chunk[P]) CheckInvariants() error {
	s := int(c.size.Load())
	if s < 0 || s > len(c.keys) {
		return fmt.Errorf("size %d out of bounds [0,%d]", s, len(c.keys))
	}
	seen := make(map[int64]struct{}, s)
	var prev int64
	for i := 0; i < s; i++ {
		k := c.keys[i].Load()
		if _, dup := seen[k]; dup {
			return fmt.Errorf("duplicate key %d", k)
		}
		seen[k] = struct{}{}
		if c.sorted && i > 0 && k <= prev {
			return fmt.Errorf("sorted chunk out of order at %d: %d <= %d", i, k, prev)
		}
		prev = k
	}
	return nil
}
