package vectormap

import (
	"math/bits"
	"sync/atomic"
	"unsafe"

	"skipvector/internal/cpuhint"
)

// Branchless intra-chunk search. The sorted-chunk paths of indexOf, FindLE
// and FindGE were three near-identical binary searches, each taking a hard-
// to-predict branch per probe: on a uniformly distributed key every probe is
// a coin flip, so a 64-slot chunk costs ~6 probes × ~50% mispredicts on the
// hottest loop in the structure. This file replaces them with one shared
// lower/upper-bound core in the conditional-move shape ("Bridging Cache-
// Friendliness and Concurrency", and Khuong & Morin's branchless binary
// search). Go's if-conversion pass declines to CMOV-ify conditional updates
// of loop-carried values, so the select is spelled out arithmetically: each
// probe's signed comparison becomes a bits.Sub64 borrow (an intrinsic — one
// SUB/SBB pair) whose 0/1 result is negated into an all-ones/zero mask that
// gates the base advance. The loop thus has no data-dependent branches at
// all, only the trip count, which depends solely on the size.
//
// Bounds checks are hoisted out by construction rather than left to the
// compiler: probes use raw offset arithmetic on the key array's base
// pointer. The safety argument is exactly snapshotSize's: every probe index
// stays in [0, s) and s is clamped to the capacity, so even a torn size or
// concurrently shifting keys can only yield garbage *values* (discarded when
// the seqlock validation fails), never an out-of-bounds access. The fuzz
// suite (FuzzLowerBound) proves the core equivalent to the textbook binary
// search on every non-decreasing array — duplicates included — and in-bounds
// and terminating on arbitrary (torn, unsorted) array states.
//
// The old implementation is kept below (lowerBoundRef/upperBoundRef) as the
// differential oracle and as the runtime fallback selected by
// SetBranchlessSearch(false) for the svbench -fig hotpath ablation.

// branchlessOff disables the CMOV core and routes sorted-chunk searches
// through the reference binary search. Inverted so the zero value keeps the
// fast path on. Ablation-only, like cpuhint.SetEnabled.
var branchlessOff atomic.Bool

// SetBranchlessSearch selects between the branchless core (true, the
// default) and the reference binary search. It exists for the on/off
// ablation; toggling mid-trial is safe but makes the numbers meaningless.
func SetBranchlessSearch(on bool) { branchlessOff.Store(!on) }

// BranchlessSearch reports which implementation sorted-chunk searches use.
func BranchlessSearch() bool { return !branchlessOff.Load() }

// cellSize is the stride of the probe pointer arithmetic. atomic.Int64 is
// exactly its payload (the align64/noCopy markers are zero-sized), which the
// compile-time assertion below pins.
const cellSize = unsafe.Sizeof(atomic.Int64{})

var _ [1]struct{} = [cellSize / 8]struct{}{} // cellSize == 8

// signFlip maps int64 order onto uint64 order: a < b (signed) iff
// uint64(a)^signFlip < uint64(b)^signFlip (unsigned), which lets a probe's
// comparison be computed as the borrow of an unsigned subtract.
const signFlip = 1 << 63

// probeLT loads the key at cell index i and returns half when it is < k
// (with k pre-biased by signFlip), else 0 — the branch-free advance amount.
func probeLT(base unsafe.Pointer, i, half uintptr, kb uint64) uintptr {
	probe := uint64((*atomic.Int64)(unsafe.Add(base, i*cellSize)).Load()) ^ signFlip
	_, borrow := bits.Sub64(probe, kb, 0) // 1 iff probe < k
	return half & -uintptr(borrow)
}

// probeLE is probeLT's ≤ sibling: half when the key at i is ≤ k, else 0.
func probeLE(base unsafe.Pointer, i, half uintptr, kb uint64) uintptr {
	probe := uint64((*atomic.Int64)(unsafe.Add(base, i*cellSize)).Load()) ^ signFlip
	_, borrow := bits.Sub64(kb, probe, 0) // 1 iff k < probe
	return half & (uintptr(borrow) - 1)
}

// lowerBound returns the first position in [0, s) whose key is ≥ k, or s
// when no key qualifies, probing branchlessly (see the file comment). s must
// already be clamped (snapshotSize); s ≤ 0 returns 0.
func (c *Chunk[P]) lowerBound(k int64, s int) int {
	if s <= 0 {
		return 0
	}
	if branchlessOff.Load() {
		return c.lowerBoundRef(k, s)
	}
	base := unsafe.Pointer(unsafe.SliceData(c.keys))
	kb := uint64(k) ^ signFlip
	off, n := uintptr(0), uintptr(s)
	// Two probes per iteration: the trip count is ⌈log2 s⌉ total, so the 2×
	// unroll halves loop overhead for the 64-slot default without bloating
	// the small-chunk case.
	for n > 1 {
		half := n >> 1
		off += probeLT(base, off+half-1, half, kb)
		n -= half
		if n > 1 {
			half = n >> 1
			off += probeLT(base, off+half-1, half, kb)
			n -= half
		}
	}
	off += probeLT(base, off, 1, kb)
	return int(off)
}

// upperBound returns the first position in [0, s) whose key is > k, or s
// when no key qualifies. Same shape and safety argument as lowerBound; using
// a distinct ≤ comparison instead of lowerBound(k+1) sidesteps the k ==
// PosInf overflow.
func (c *Chunk[P]) upperBound(k int64, s int) int {
	if s <= 0 {
		return 0
	}
	if branchlessOff.Load() {
		return c.upperBoundRef(k, s)
	}
	base := unsafe.Pointer(unsafe.SliceData(c.keys))
	kb := uint64(k) ^ signFlip
	off, n := uintptr(0), uintptr(s)
	for n > 1 {
		half := n >> 1
		off += probeLE(base, off+half-1, half, kb)
		n -= half
		if n > 1 {
			half = n >> 1
			off += probeLE(base, off+half-1, half, kb)
			n -= half
		}
	}
	off += probeLE(base, off, 1, kb)
	return int(off)
}

// lowerBoundRef is the pre-existing binary search, kept verbatim as the
// differential oracle and the SetBranchlessSearch(false) fallback.
func (c *Chunk[P]) lowerBoundRef(k int64, s int) int {
	lo, hi := 0, s
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if c.keys[mid].Load() < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// upperBoundRef is the reference upper bound (first key > k).
func (c *Chunk[P]) upperBoundRef(k int64, s int) int {
	lo, hi := 0, s
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if c.keys[mid].Load() <= k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// keyLine is how many keys share one 64-byte cache line.
const keyLine = 64 / int(cellSize)

// PrefetchKeys hints the cache lines a search of this chunk will touch
// first: the first line (every linear scan, minKey, and the final probes of
// a binary search), the middle line (a binary search's first probe), and the
// last occupied line (maxKey, the traversal's stop test). Callers issue it
// for the *next* node of a descent while the current node's protocol work is
// still in flight; the reads here are the same speculative atomic-cell and
// clamped-size loads every optimistic reader performs, so a concurrently
// recycled chunk yields only useless (never unsafe) hints.
func (c *Chunk[P]) PrefetchKeys() {
	s := c.snapshotSize()
	if s == 0 {
		return
	}
	ks := c.keys
	if s <= keyLine {
		cpuhint.Prefetch(unsafe.Pointer(&ks[0]))
		return
	}
	cpuhint.Prefetch2(unsafe.Pointer(&ks[0]), unsafe.Pointer(&ks[s>>1]))
	if s > 2*keyLine {
		cpuhint.Prefetch(unsafe.Pointer(&ks[s-1]))
	}
}
