package bench

import (
	"math"
	"math/rand"
	"testing"
)

// Edge cases of the open-loop latency histogram: the shapes RunOpenLoop
// never produces in a healthy trial but a degenerate one (zero completions,
// one completion, an absurd stall) can — and the merge algebra the result
// aggregation depends on.

func TestLatHistEmpty(t *testing.T) {
	h := newLatHist()
	for _, q := range []float64{0, 0.5, 0.999, 1} {
		if got := h.percentile(q); got != 0 {
			t.Fatalf("empty histogram percentile(%v) = %d", q, got)
		}
	}
	if h.count != 0 || h.max != 0 {
		t.Fatalf("empty histogram count=%d max=%d", h.count, h.max)
	}
	// Merging an empty histogram into an empty histogram stays empty.
	h.merge(newLatHist())
	if h.count != 0 || h.percentile(0.5) != 0 {
		t.Fatal("empty merge mutated the histogram")
	}
}

func TestLatHistSingleSample(t *testing.T) {
	for _, v := range []int64{0, 1, 7, 1000, 123456789} {
		h := newLatHist()
		h.observe(v)
		// Every percentile of a single sample is that sample (clamped to
		// max, so exact even where the bucket bound exceeds it).
		for _, q := range []float64{0.01, 0.5, 0.99, 0.999} {
			if got := h.percentile(q); got != v {
				t.Fatalf("single sample %d: percentile(%v) = %d", v, q, got)
			}
		}
		if h.max != v || h.count != 1 {
			t.Fatalf("single sample %d: count=%d max=%d", v, h.count, h.max)
		}
	}
	// Negative latencies (clock skew) clamp to bucket 0 and never panic.
	h := newLatHist()
	h.observe(-5)
	if got := h.percentile(0.5); got != 0 {
		t.Fatalf("negative sample percentile = %d", got)
	}
}

func TestLatHistOverflowBucket(t *testing.T) {
	// MaxInt64 must land in the last bucket, not out of range, and the
	// reported percentile must clamp to the observed max rather than the
	// bucket's astronomically larger upper bound.
	if got := latBucket(math.MaxInt64); got != latBuckets-1 {
		t.Fatalf("latBucket(MaxInt64) = %d, want %d", got, latBuckets-1)
	}
	h := newLatHist()
	h.observe(math.MaxInt64)
	if got := h.percentile(0.999); got != math.MaxInt64 {
		t.Fatalf("overflow percentile = %d", got)
	}
	// A mixed population: the overflow sample owns only the top quantile.
	for i := 0; i < 999; i++ {
		h.observe(100)
	}
	if got := h.percentile(0.5); got > 103 {
		t.Fatalf("p50 pulled up by overflow sample: %d", got)
	}
	if got := h.percentile(0.9999); got != math.MaxInt64 {
		t.Fatalf("p99.99 missed the overflow sample: %d", got)
	}
}

func TestLatHistPercentileMonotonicUnderMerge(t *testing.T) {
	// Percentiles must be monotone in q, and merging histograms must
	// preserve that plus the merge algebra: count adds, max is the larger,
	// and every percentile of the merge is bounded below by the smaller
	// input percentile and above by the merged max.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		a, b := newLatHist(), newLatHist()
		na, nb := 1+rng.Intn(200), 1+rng.Intn(200)
		for i := 0; i < na; i++ {
			a.observe(rng.Int63n(1 << uint(4+rng.Intn(40))))
		}
		for i := 0; i < nb; i++ {
			b.observe(rng.Int63n(1 << uint(4+rng.Intn(40))))
		}
		m := newLatHist()
		m.merge(a)
		m.merge(b)
		if m.count != a.count+b.count {
			t.Fatalf("trial %d: merged count %d != %d+%d", trial, m.count, a.count, b.count)
		}
		wantMax := a.max
		if b.max > wantMax {
			wantMax = b.max
		}
		if m.max != wantMax {
			t.Fatalf("trial %d: merged max %d, want %d", trial, m.max, wantMax)
		}
		qs := []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1}
		prev := int64(-1)
		for _, q := range qs {
			p := m.percentile(q)
			if p < prev {
				t.Fatalf("trial %d: merged percentile(%v)=%d < previous %d", trial, q, p, prev)
			}
			prev = p
			// The merged quantile can't sort below BOTH inputs' quantiles
			// (it can exceed both: an input's percentile clamps to that
			// input's max, the merge clamps to the larger one).
			lo := a.percentile(q)
			if bp := b.percentile(q); bp < lo {
				lo = bp
			}
			if p < lo {
				t.Fatalf("trial %d: merged percentile(%v)=%d below both inputs' %d", trial, q, p, lo)
			}
			if p > m.max {
				t.Fatalf("trial %d: merged percentile(%v)=%d above merged max %d", trial, q, p, m.max)
			}
		}
		if m.percentile(1) != m.max {
			t.Fatalf("trial %d: p100 %d != max %d", trial, m.percentile(1), m.max)
		}
	}
}
