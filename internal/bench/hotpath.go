package bench

import (
	"fmt"

	"skipvector/internal/cpuhint"
	"skipvector/internal/vectormap"
	"skipvector/internal/workload"
)

// hotpathConfigs is the ablation grid of the hot-path sweep: both cache-miss
// engineering levers off, each alone, and both together (the shipping
// default).
var hotpathConfigs = []struct {
	Name       string
	Prefetch   bool
	Branchless bool
}{
	{Name: "neither", Prefetch: false, Branchless: false},
	{Name: "prefetch", Prefetch: true, Branchless: false},
	{Name: "branchless", Prefetch: false, Branchless: true},
	{Name: "both", Prefetch: true, Branchless: true},
}

// FigHotpath runs the hot-path micro-architecture ablation: the same two
// workloads — uniform point lookups (every probe a cold descent, the
// cache-miss worst case) and sequential scan windows (the locality best
// case) — under the four combinations of software prefetch and branchless
// intra-chunk search. Speedups are relative to the "neither" row. The sweep
// is the acceptance gate for the cache-miss engineering: uniform Get with
// both levers on must clearly beat both-off, and no cell may regress below
// it. The toggles are process-global, so rows run sequentially and the
// previous settings are restored before returning.
func FigHotpath(s Scale) (*Table, error) {
	keyRange := Pow2(s.SensitivityRangeExp)
	window := keyRange / 64
	if window < 512 {
		window = 512
	}
	t := NewTable(
		fmt.Sprintf("Hot-path ablation (ops/s), %d threads, 2^%d keys, prefetch supported=%v",
			s.SensitivityThreads, s.SensitivityRangeExp, cpuhint.Supported()),
		"config", []string{"uniform-get", "seq-scan", "get-speedup", "scan-speedup"})

	prevPrefetch := cpuhint.Enabled() || !cpuhint.Supported()
	prevBranchless := vectormap.BranchlessSearch()
	defer func() {
		cpuhint.SetEnabled(prevPrefetch)
		vectormap.SetBranchlessSearch(prevBranchless)
	}()

	var baseGet, baseScan float64
	for _, c := range hotpathConfigs {
		cpuhint.SetEnabled(c.Prefetch)
		vectormap.SetBranchlessSearch(c.Branchless)
		var get, scan float64
		for rep := 0; rep < s.Reps; rep++ {
			getCfg := TrialConfig{
				Threads:  s.SensitivityThreads,
				Duration: s.Duration,
				KeyRange: keyRange,
				Mix:      workload.Mix{LookupPct: 100},
				Seed:     s.Seed + uint64(rep)*0x9e37,
			}
			resGet, err := RunTrial(SVHP.New(keyRange), getCfg)
			if err != nil {
				return nil, fmt.Errorf("%s uniform-get: %w", c.Name, err)
			}
			scanCfg := getCfg
			scanCfg.SeqWindow = window
			resScan, err := RunTrial(SVHP.New(keyRange), scanCfg)
			if err != nil {
				return nil, fmt.Errorf("%s seq-scan: %w", c.Name, err)
			}
			get += resGet.Throughput
			scan += resScan.Throughput
		}
		r := float64(s.Reps)
		get, scan = get/r, scan/r
		if c.Name == "neither" {
			baseGet, baseScan = get, scan
		}
		getSpeedup, scanSpeedup := 0.0, 0.0
		if baseGet > 0 {
			getSpeedup = get / baseGet
		}
		if baseScan > 0 {
			scanSpeedup = scan / baseScan
		}
		t.AddRow(c.Name, []float64{get, scan, getSpeedup, scanSpeedup})
	}
	return t, nil
}

// fanoutTargets is the chunk-fanout grid of FigFanout (the paper's Figure 7a
// axis, cut down to the three interesting decades).
var fanoutTargets = []int{8, 32, 128}

// FigFanout sweeps the data- and index-chunk target sizes under the shipping
// hot-path configuration (prefetch and branchless search both on) on the
// read-heavy uniform mix. Larger chunks mean fewer pointer hops but longer
// intra-chunk searches and wider prefetch windows; the sweep shows where the
// trade-off peaks on the host it runs on, complementing the paper's Figure 7a
// with the cache-miss levers active.
func FigFanout(s Scale) (*Table, error) {
	keyRange := Pow2(s.SensitivityRangeExp)
	t := NewTable(
		fmt.Sprintf("Chunk fanout sweep (ops/s), %d threads, 2^%d keys, read-heavy uniform",
			s.SensitivityThreads, s.SensitivityRangeExp),
		"T_D/T_I", []string{"ops/s"})
	for _, td := range fanoutTargets {
		for _, ti := range fanoutTargets {
			v := TunedSV(fmt.Sprintf("SV-%d/%d", td, ti), td, ti, true, false)
			var tput float64
			for rep := 0; rep < s.Reps; rep++ {
				cfg := TrialConfig{
					Threads:  s.SensitivityThreads,
					Duration: s.Duration,
					KeyRange: keyRange,
					Mix:      workload.MixReadHeavy,
					Seed:     s.Seed + uint64(rep)*0x9e37,
				}
				res, err := RunTrial(v.New(keyRange), cfg)
				if err != nil {
					return nil, fmt.Errorf("T_D=%d/T_I=%d: %w", td, ti, err)
				}
				tput += res.Throughput
			}
			t.AddRow(fmt.Sprintf("%d/%d", td, ti), []float64{tput / float64(s.Reps)})
		}
	}
	return t, nil
}
