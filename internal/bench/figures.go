package bench

import (
	"fmt"
	"time"

	"skipvector/internal/core"
	"skipvector/internal/dbx"
	"skipvector/internal/seqset"
	"skipvector/internal/workload"
)

// Scale bundles the knobs that trade fidelity for runtime. The paper ran
// 5-second trials, five repetitions, 1-192 threads, and key ranges up to
// 2^31 on a 96-core, 768 GB machine; PaperScale is the same experiment
// shapes scaled to a small machine, and QuickScale is a smoke-test setting
// used by tests and CI.
type Scale struct {
	// Duration of each timed trial.
	Duration time.Duration
	// Reps is the number of runs averaged per cell.
	Reps int
	// Threads is the X axis of the scalability figures.
	Threads []int
	// MixedRangeExps are the key-range exponents for Figures 4/5 (the
	// paper used 20, 24, 28, 31).
	MixedRangeExps []int
	// Fig1RangeExps are the key-range exponents for Figure 1's sweep.
	Fig1RangeExps []int
	// Fig1Ops is the op count per Figure 1 cell (sequential, so counted
	// rather than timed).
	Fig1Ops int
	// SensitivityRangeExp is the key range for Figure 7 (paper: 28).
	SensitivityRangeExp int
	// SensitivityThreads is the thread count for Figure 7 sweeps.
	SensitivityThreads int
	// RangeKeyExp is Figure 8's key range (paper: 20).
	RangeKeyExp int
	// RangeSpanExps are Figure 8's two span exponents (paper: 12 and 17,
	// i.e. 1/256 and 1/8 of the key range).
	RangeSpanExps [2]int
	// YCSB parameters (Figure 6).
	YCSBRows    int64
	YCSBTxns    int
	YCSBThetas  []float64
	YCSBThreads []int
	// YCSBScanPct/YCSBScanLen enable the YCSB-E style scan extension
	// (0 = the paper's Figure 6 point-access workload).
	YCSBScanPct int
	YCSBScanLen int
	// ShardCounts is the shard-count axis of the sharding sweep (FigShard);
	// the first entry is the ratio baseline and should be 1.
	ShardCounts []int
	// Seed drives all randomness.
	Seed uint64
}

// QuickScale returns a seconds-long smoke configuration.
func QuickScale() Scale {
	return Scale{
		Duration:            50 * time.Millisecond,
		Reps:                1,
		Threads:             []int{1, 2},
		MixedRangeExps:      []int{12, 14},
		Fig1RangeExps:       []int{4, 8, 12},
		Fig1Ops:             20_000,
		SensitivityRangeExp: 14,
		SensitivityThreads:  2,
		RangeKeyExp:         12,
		RangeSpanExps:       [2]int{4, 9},
		YCSBRows:            1 << 14,
		YCSBTxns:            500,
		YCSBThetas:          []float64{0.1, 0.9},
		YCSBThreads:         []int{1, 2},
		ShardCounts:         []int{1, 2},
		Seed:                0xbe9c4,
	}
}

// PaperScale returns the full scaled-down reproduction (minutes of runtime
// on a small machine). Key ranges 2^20/2^24/2^28/2^31 scale to
// 2^16/2^18/2^20/2^23 and 1-192 threads scale to 1-8; crossover shapes, not
// absolute numbers, are the reproduction target (see EXPERIMENTS.md).
func PaperScale() Scale {
	return Scale{
		Duration:            1 * time.Second,
		Reps:                3,
		Threads:             []int{1, 2, 4, 8},
		MixedRangeExps:      []int{16, 18, 20, 23},
		Fig1RangeExps:       []int{4, 6, 8, 10, 12, 14, 16, 18},
		Fig1Ops:             200_000,
		SensitivityRangeExp: 20,
		SensitivityThreads:  4,
		RangeKeyExp:         18,
		RangeSpanExps:       [2]int{10, 15},
		YCSBRows:            1 << 20,
		YCSBTxns:            10_000,
		YCSBThetas:          []float64{0.1, 0.6, 0.9},
		YCSBThreads:         []int{1, 2, 4, 8},
		ShardCounts:         []int{1, 2, 4, 8},
		Seed:                0xbe9c4,
	}
}

// Fig1 reproduces Figure 1: sequential set throughput as a function of key
// range for an 80/10/10 mix, across the four classic set implementations.
func Fig1(s Scale) *Table {
	makers := []func() seqset.Set{
		func() seqset.Set { return seqset.NewUnsortedVec() },
		func() seqset.Set { return seqset.NewSortedVec() },
		func() seqset.Set { return seqset.NewTreeMap() },
		func() seqset.Set { return seqset.NewSkipList() },
	}
	cols := make([]string, len(makers))
	for i, mk := range makers {
		cols[i] = mk().Name()
	}
	t := NewTable("Fig 1: sequential sets, 80/10/10 mix", "key-bits", cols)
	for _, exp := range s.Fig1RangeExps {
		keyRange := Pow2(exp)
		row := make([]float64, len(makers))
		for i, mk := range makers {
			row[i] = runSequentialSet(mk(), keyRange, s.Fig1Ops, s.Seed)
		}
		t.AddRow(fmt.Sprintf("2^%d", exp), row)
	}
	return t
}

// runSequentialSet measures single-threaded ops/s for one Figure 1 cell.
func runSequentialSet(set seqset.Set, keyRange int64, ops int, seed uint64) float64 {
	pf := workload.NewPrefiller(keyRange, seed)
	pf.Keys(0, pf.Count(), func(k int64) { set.Insert(k) })
	rng := workload.NewRNG(seed ^ 0xf19)
	start := time.Now()
	for i := 0; i < ops; i++ {
		k := rng.Intn(keyRange)
		switch workload.MixReadHeavy.Next(rng) {
		case workload.OpLookup:
			set.Contains(k)
		case workload.OpInsert:
			set.Insert(k)
		default:
			set.Remove(k)
		}
	}
	return float64(ops) / time.Since(start).Seconds()
}

// scalabilityFigure produces one Figure 4/5-style table: throughput vs
// thread count for each variant at one key range.
func scalabilityFigure(title string, s Scale, keyRange int64, mix workload.Mix) (*Table, error) {
	variants := ScalabilityVariants()
	if err := checkVariantNames(variants); err != nil {
		return nil, err
	}
	cols := make([]string, len(variants))
	for i, v := range variants {
		cols[i] = v.Name
	}
	t := NewTable(title, "threads", cols)
	for _, threads := range s.Threads {
		row := make([]float64, len(variants))
		for i, v := range variants {
			tp, err := RunAveraged(v, TrialConfig{
				Threads:  threads,
				Duration: s.Duration,
				KeyRange: keyRange,
				Mix:      mix,
				Seed:     s.Seed,
			}, s.Reps)
			if err != nil {
				return nil, err
			}
			row[i] = tp
		}
		t.AddRow(fmt.Sprintf("%d", threads), row)
	}
	return t, nil
}

// Fig4 reproduces Figure 4 (80/10/10 mix): one table per key range.
func Fig4(s Scale) ([]*Table, error) {
	var out []*Table
	for _, exp := range s.MixedRangeExps {
		t, err := scalabilityFigure(
			fmt.Sprintf("Fig 4: 80/10/10 throughput, key range 2^%d", exp),
			s, Pow2(exp), workload.MixReadHeavy)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// Fig5 reproduces Figure 5 (0/50/50 mix): one table per key range.
func Fig5(s Scale) ([]*Table, error) {
	var out []*Table
	for _, exp := range s.MixedRangeExps {
		t, err := scalabilityFigure(
			fmt.Sprintf("Fig 5: 0/50/50 throughput, key range 2^%d", exp),
			s, Pow2(exp), workload.MixWriteOnly)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// Fig6 reproduces Figure 6: YCSB transaction throughput on the mini-DBx1000
// with SV-HP, USL-HP and SL-HP indexes, one table per Zipfian theta.
func Fig6(s Scale) ([]*Table, error) {
	indexes := []struct {
		name string
		mk   func(int64) dbx.Index
	}{
		{"SV-HP", dbx.NewSkipVectorIndex},
		{"USL-HP", dbx.NewUnrolledIndex},
		{"SL-HP", dbx.NewSkipListIndex},
	}
	cols := make([]string, len(indexes))
	for i, ix := range indexes {
		cols[i] = ix.name
	}
	var out []*Table
	for _, theta := range s.YCSBThetas {
		t := NewTable(fmt.Sprintf("Fig 6: YCSB throughput, theta=%.1f", theta), "threads", cols)
		// Load one table per index once per theta; runs reuse it (reads
		// and updates do not change the key set).
		tables := make([]*dbx.Table, len(indexes))
		base := dbx.YCSBConfig{
			Rows:           s.YCSBRows,
			TxnsPerThread:  s.YCSBTxns,
			AccessesPerTxn: 16,
			ReadPct:        90 - s.YCSBScanPct,
			ScanPct:        s.YCSBScanPct,
			ScanLen:        s.YCSBScanLen,
			Theta:          theta,
			Threads:        1,
			Seed:           s.Seed,
		}
		for i, ix := range indexes {
			tab, err := dbx.LoadTable(base, ix.mk(s.YCSBRows))
			if err != nil {
				return nil, err
			}
			tables[i] = tab
		}
		for _, threads := range s.YCSBThreads {
			row := make([]float64, len(indexes))
			for i := range indexes {
				cfg := base
				cfg.Threads = threads
				res, err := dbx.RunYCSB(tables[i], cfg)
				if err != nil {
					return nil, err
				}
				row[i] = res.Throughput
			}
			t.AddRow(fmt.Sprintf("%d", threads), row)
		}
		out = append(out, t)
	}
	return out, nil
}

// Fig7a reproduces Figure 7a: sensitivity to TargetIndexVectorSize on an
// 80/10/10 mix, adjusting the layer count to the minimum each size needs.
func Fig7a(s Scale) (*Table, error) {
	sizes := []int{2, 4, 8, 16, 32, 64, 128, 256}
	t := NewTable(
		fmt.Sprintf("Fig 7a: targetIndexVectorSize sensitivity, 80/10/10, 2^%d keys", s.SensitivityRangeExp),
		"T_I", []string{"SV-HP"})
	keyRange := Pow2(s.SensitivityRangeExp)
	for _, ti := range sizes {
		v := TunedSV(fmt.Sprintf("SV-HP-Ti%d", ti), 32, ti, true, false)
		tp, err := RunAveraged(v, TrialConfig{
			Threads:  s.SensitivityThreads,
			Duration: s.Duration,
			KeyRange: keyRange,
			Mix:      workload.MixReadHeavy,
			Seed:     s.Seed,
		}, s.Reps)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", ti), []float64{tp})
	}
	return t, nil
}

// Fig7b reproduces Figure 7b: the four sorted/unsorted chunk combinations.
func Fig7b(s Scale) (*Table, error) {
	combos := []struct {
		name                    string
		sortedIndex, sortedData bool
	}{
		{"idx-sorted/data-unsorted", true, false}, // the paper's best
		{"idx-sorted/data-sorted", true, true},
		{"idx-unsorted/data-unsorted", false, false},
		{"idx-unsorted/data-sorted", false, true},
	}
	t := NewTable(
		fmt.Sprintf("Fig 7b: sorted vs unsorted chunks, 80/10/10, 2^%d keys", s.SensitivityRangeExp),
		"combo", []string{"SV-HP"})
	keyRange := Pow2(s.SensitivityRangeExp)
	for _, c := range combos {
		v := TunedSV(c.name, 32, 32, c.sortedIndex, c.sortedData)
		tp, err := RunAveraged(v, TrialConfig{
			Threads:  s.SensitivityThreads,
			Duration: s.Duration,
			KeyRange: keyRange,
			Mix:      workload.MixReadHeavy,
			Seed:     s.Seed,
		}, s.Reps)
		if err != nil {
			return nil, err
		}
		t.AddRow(c.name, []float64{tp})
	}
	return t, nil
}

// Fig8 reproduces Figure 8: all-range-operation throughput, skip vector vs
// un-chunked skip list, for a small and a large range span.
func Fig8(s Scale) ([]*Table, error) {
	variants := []Variant{
		TunedSV("SV", 32, 32, true, false),
		TunedSV("SL", 1, 1, true, true),
	}
	cols := []string{"SV", "SL"}
	keyRange := Pow2(s.RangeKeyExp)
	var out []*Table
	for _, spanExp := range s.RangeSpanExps {
		span := Pow2(spanExp)
		t := NewTable(
			fmt.Sprintf("Fig 8: mutating range ops, 2^%d keys, span 2^%d", s.RangeKeyExp, spanExp),
			"threads", cols)
		for _, threads := range s.Threads {
			row := make([]float64, len(variants))
			for i, v := range variants {
				tp, err := RunAveraged(v, TrialConfig{
					Threads:   threads,
					Duration:  s.Duration,
					KeyRange:  keyRange,
					Mix:       workload.MixRangeHeavy,
					RangeSpan: span,
					Seed:      s.Seed,
				}, s.Reps)
				if err != nil {
					return nil, err
				}
				row[i] = tp
			}
			t.AddRow(fmt.Sprintf("%d", threads), row)
		}
		out = append(out, t)
	}
	return out, nil
}

// AblationHazardCost quantifies the Section V-A finding that hazard-pointer
// overhead shrinks as the key range grows: SV-HP vs SV-Leak with the
// overhead percentage as a third column.
func AblationHazardCost(s Scale) (*Table, error) {
	t := NewTable("Ablation: hazard-pointer cost vs key range (80/10/10)",
		"key-bits", []string{"SV-HP", "SV-Leak", "overhead%"})
	for _, exp := range s.MixedRangeExps {
		keyRange := Pow2(exp)
		threads := s.Threads[len(s.Threads)-1]
		hp, err := RunAveraged(SVHP, TrialConfig{
			Threads: threads, Duration: s.Duration, KeyRange: keyRange,
			Mix: workload.MixReadHeavy, Seed: s.Seed,
		}, s.Reps)
		if err != nil {
			return nil, err
		}
		leak, err := RunAveraged(SVLeak, TrialConfig{
			Threads: threads, Duration: s.Duration, KeyRange: keyRange,
			Mix: workload.MixReadHeavy, Seed: s.Seed,
		}, s.Reps)
		if err != nil {
			return nil, err
		}
		overhead := 0.0
		if leak > 0 {
			overhead = (leak - hp) / leak * 100
		}
		t.AddRow(fmt.Sprintf("2^%d", exp), []float64{hp, leak, overhead})
	}
	return t, nil
}

// AblationMergeThreshold sweeps the merge factor under the write-only mix,
// the workload where orphan merging matters most (Section V-B discussion).
func AblationMergeThreshold(s Scale) (*Table, error) {
	factors := []float64{1.0, 1.33, 1.67, 2.0}
	t := NewTable(
		fmt.Sprintf("Ablation: mergeThreshold factor, 0/50/50, 2^%d keys", s.SensitivityRangeExp),
		"factor", []string{"SV-HP"})
	keyRange := Pow2(s.SensitivityRangeExp)
	for _, f := range factors {
		f := f
		v := Variant{Name: fmt.Sprintf("SV-HP-m%.2f", f), New: func(r int64) IntMap {
			cfg := svConfig(r, 32, 32, core.ReclaimHazard)
			cfg.MergeFactor = f
			return NewSkipVector(cfg)
		}}
		tp, err := RunAveraged(v, TrialConfig{
			Threads:  s.SensitivityThreads,
			Duration: s.Duration,
			KeyRange: keyRange,
			Mix:      workload.MixWriteOnly,
			Seed:     s.Seed,
		}, s.Reps)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%.2f", f), []float64{tp})
	}
	return t, nil
}

// AblationBLinkTree compares the skip vector against the B-link tree
// comparator the paper wanted but lacked ("we were not able to find any
// correct, concurrent, high-performance open-source B+ trees to compare
// against", Section V-A), plus the FSL reference point, across key ranges.
func AblationBLinkTree(s Scale, mix workload.Mix) (*Table, error) {
	variants := []Variant{SVHP, BLT, FSL}
	cols := make([]string, len(variants))
	for i, v := range variants {
		cols[i] = v.Name
	}
	t := NewTable(
		fmt.Sprintf("Ablation: skip vector vs B-link tree, %s mix", mix),
		"key-bits", cols)
	threads := s.Threads[len(s.Threads)-1]
	for _, exp := range s.MixedRangeExps {
		keyRange := Pow2(exp)
		row := make([]float64, len(variants))
		for i, v := range variants {
			tp, err := RunAveraged(v, TrialConfig{
				Threads:  threads,
				Duration: s.Duration,
				KeyRange: keyRange,
				Mix:      mix,
				Seed:     s.Seed,
			}, s.Reps)
			if err != nil {
				return nil, err
			}
			row[i] = tp
		}
		t.AddRow(fmt.Sprintf("2^%d", exp), row)
	}
	return t, nil
}
