package bench

import (
	"strings"
	"testing"
	"time"

	"skipvector/internal/core"
	"skipvector/internal/workload"
)

func TestAdaptersBehaveAsMaps(t *testing.T) {
	maps := map[string]IntMap{
		"SV-HP":   SVHP.New(1 << 12),
		"SV-Leak": SVLeak.New(1 << 12),
		"USL-HP":  USLHP.New(1 << 12),
		"SL-HP":   SLHP.New(1 << 12),
		"FSL":     FSL.New(1 << 12),
	}
	for name, m := range maps {
		t.Run(name, func(t *testing.T) {
			if !m.Insert(5, 50) || m.Insert(5, 51) {
				t.Fatal("Insert semantics wrong")
			}
			if v, ok := m.Lookup(5); !ok || v != 50 {
				t.Fatalf("Lookup = %d,%t", v, ok)
			}
			if !m.Remove(5) || m.Remove(5) {
				t.Fatal("Remove semantics wrong")
			}
			if m.Len() != 0 {
				t.Fatalf("Len = %d", m.Len())
			}
		})
	}
}

func TestSVAdapterRangeUpdate(t *testing.T) {
	m := SVHP.New(1 << 10)
	rm, ok := m.(RangeMap)
	if !ok {
		t.Fatal("skip vector adapter must implement RangeMap")
	}
	for k := int64(0); k < 100; k++ {
		m.Insert(k, 1)
	}
	n := rm.RangeUpdate(10, 19, func(k int64, v uint64) uint64 { return v + 5 })
	if n != 10 {
		t.Fatalf("RangeUpdate visited %d", n)
	}
	if v, _ := m.Lookup(15); v != 6 {
		t.Fatalf("value = %d, want 6", v)
	}
}

func TestPrefillHalfFills(t *testing.T) {
	const keyRange = 1 << 12
	m := SVHP.New(keyRange)
	Prefill(m, keyRange, 7, 4)
	if got := m.Len(); got != keyRange/2 {
		t.Fatalf("prefilled %d, want %d", got, keyRange/2)
	}
}

func TestPrefillDeterministicAcrossThreadCounts(t *testing.T) {
	const keyRange = 1 << 10
	count := func(threads int) int {
		m := SVHP.New(keyRange)
		Prefill(m, keyRange, 7, threads)
		n := 0
		for k := int64(0); k < keyRange; k++ {
			if _, ok := m.Lookup(k); ok {
				n++
			}
		}
		return n
	}
	if a, b := count(1), count(4); a != b {
		t.Fatalf("prefill differs across thread counts: %d vs %d", a, b)
	}
}

func TestRunTrialProducesOps(t *testing.T) {
	res, err := RunTrial(SVHP.New(1<<10), TrialConfig{
		Threads:  2,
		Duration: 30 * time.Millisecond,
		KeyRange: 1 << 10,
		Mix:      workload.MixReadHeavy,
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops <= 0 || res.Throughput <= 0 {
		t.Fatalf("empty trial result: %+v", res)
	}
}

func TestRunTrialValidation(t *testing.T) {
	bad := []TrialConfig{
		{Threads: 0, Duration: time.Millisecond, KeyRange: 10, Mix: workload.MixReadHeavy},
		{Threads: 1, Duration: 0, KeyRange: 10, Mix: workload.MixReadHeavy},
		{Threads: 1, Duration: time.Millisecond, KeyRange: 1, Mix: workload.MixReadHeavy},
		{Threads: 1, Duration: time.Millisecond, KeyRange: 10, Mix: workload.Mix{LookupPct: 10}},
		{Threads: 1, Duration: time.Millisecond, KeyRange: 10, Mix: workload.MixRangeHeavy},
	}
	for i, cfg := range bad {
		if _, err := RunTrial(SVHP.New(16), cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestRunAveraged(t *testing.T) {
	tp, err := RunAveraged(FSL, TrialConfig{
		Threads:  1,
		Duration: 20 * time.Millisecond,
		KeyRange: 1 << 8,
		Mix:      workload.MixWriteOnly,
		Seed:     11,
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tp <= 0 {
		t.Fatal("zero throughput")
	}
}

func TestMinLayers(t *testing.T) {
	cases := []struct {
		n                 int64
		td, ti, wantAtMin int
	}{
		{1, 32, 32, 1},
		{1 << 10, 32, 32, 2},
		{1 << 20, 32, 32, 3},
		{1 << 20, 1, 2, 2},
	}
	for _, c := range cases {
		got := MinLayers(c.n, c.td, c.ti)
		if got < c.wantAtMin || got > core.MaxLayers {
			t.Errorf("MinLayers(%d,%d,%d) = %d, want >= %d", c.n, c.td, c.ti, got, c.wantAtMin)
		}
	}
	// Monotone: more elements never need fewer layers.
	prev := 0
	for exp := 4; exp <= 30; exp += 2 {
		l := MinLayers(Pow2(exp), 32, 32)
		if l < prev {
			t.Fatalf("MinLayers not monotone at 2^%d", exp)
		}
		prev = l
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("demo", "threads", []string{"A", "B"})
	tb.AddRow("1", []float64{1_500_000, 900})
	tb.AddRow("2", []float64{2_500_000, 1800})
	text := tb.Render()
	for _, want := range []string{"demo", "threads", "A", "B", "1.50M", "1.8K"} {
		if !strings.Contains(text, want) {
			t.Fatalf("Render missing %q:\n%s", want, text)
		}
	}
	csv := tb.CSV()
	if !strings.Contains(csv, "threads,A,B") || !strings.Contains(csv, "1,1500000.0,900.0") {
		t.Fatalf("CSV malformed:\n%s", csv)
	}
	if tb.Best(0) != "A" {
		t.Fatalf("Best = %q", tb.Best(0))
	}
	if tb.Col("B") != 1 || tb.Col("missing") != -1 {
		t.Fatal("Col lookup wrong")
	}
}

func TestTableAddRowMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTable("x", "x", []string{"a"}).AddRow("1", []float64{1, 2})
}

func TestVariantNamesUnique(t *testing.T) {
	if err := checkVariantNames(ScalabilityVariants()); err != nil {
		t.Fatal(err)
	}
	dup := []Variant{SVHP, SVHP}
	if err := checkVariantNames(dup); err == nil {
		t.Fatal("duplicate names accepted")
	}
}

// --- quick-scale smoke runs of every figure -------------------------------

func TestFig1Quick(t *testing.T) {
	tb := Fig1(QuickScale())
	if len(tb.XValues) != 3 || len(tb.Columns) != 4 {
		t.Fatalf("Fig1 shape %dx%d", len(tb.XValues), len(tb.Columns))
	}
	for i := range tb.XValues {
		for j, v := range tb.Cells[i] {
			if v <= 0 {
				t.Fatalf("Fig1 cell [%d][%d] = %v", i, j, v)
			}
		}
	}
}

func TestFig4Fig5Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s := QuickScale()
	for _, fig := range []func(Scale) ([]*Table, error){Fig4, Fig5} {
		tables, err := fig(s)
		if err != nil {
			t.Fatal(err)
		}
		if len(tables) != len(s.MixedRangeExps) {
			t.Fatalf("got %d tables", len(tables))
		}
		for _, tb := range tables {
			if len(tb.XValues) != len(s.Threads) {
				t.Fatalf("table %q has %d rows", tb.Title, len(tb.XValues))
			}
			for i := range tb.Cells {
				for j, v := range tb.Cells[i] {
					if v <= 0 {
						t.Fatalf("%s cell [%d][%d] = %v", tb.Title, i, j, v)
					}
				}
			}
		}
	}
}

func TestFig6Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s := QuickScale()
	tables, err := Fig6(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != len(s.YCSBThetas) {
		t.Fatalf("got %d tables", len(tables))
	}
	for _, tb := range tables {
		for i := range tb.Cells {
			for _, v := range tb.Cells[i] {
				if v <= 0 {
					t.Fatalf("%s has empty cell", tb.Title)
				}
			}
		}
	}
}

func TestFig7Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s := QuickScale()
	ta, err := Fig7a(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(ta.XValues) != 8 {
		t.Fatalf("Fig7a rows = %d", len(ta.XValues))
	}
	tb, err := Fig7b(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.XValues) != 4 {
		t.Fatalf("Fig7b rows = %d", len(tb.XValues))
	}
}

func TestFig8Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s := QuickScale()
	tables, err := Fig8(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("got %d tables", len(tables))
	}
	for _, tb := range tables {
		for i := range tb.Cells {
			for _, v := range tb.Cells[i] {
				if v <= 0 {
					t.Fatalf("%s has empty cell", tb.Title)
				}
			}
		}
	}
}

func TestAblationsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s := QuickScale()
	hp, err := AblationHazardCost(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(hp.XValues) != len(s.MixedRangeExps) {
		t.Fatalf("hazard ablation rows = %d", len(hp.XValues))
	}
	mt, err := AblationMergeThreshold(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(mt.XValues) != 4 {
		t.Fatalf("merge ablation rows = %d", len(mt.XValues))
	}
}

func TestPow2(t *testing.T) {
	if Pow2(0) != 1 || Pow2(10) != 1024 || Pow2(31) != 1<<31 {
		t.Fatal("Pow2 wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Pow2(63)
}

func TestMemoryFootprint(t *testing.T) {
	tb := MemoryFootprint([]int{12, 14}, 7)
	if len(tb.XValues) != 2 {
		t.Fatalf("rows = %d", len(tb.XValues))
	}
	svCol, fslCol := tb.Col("SV-HP"), tb.Col("FSL")
	for i := range tb.XValues {
		sv, fsl := tb.Cells[i][svCol], tb.Cells[i][fslCol]
		if sv <= 0 || fsl <= 0 {
			t.Fatalf("non-positive footprint row %d: sv=%v fsl=%v", i, sv, fsl)
		}
		// The paper's memory claim: chunking amortizes per-node overhead,
		// so the skip vector should be leaner per element than the
		// link-heavy lock-free skip list.
		if sv >= fsl {
			t.Logf("warning: SV-HP %.1f B/elem not below FSL %.1f B/elem", sv, fsl)
		}
	}
}

func TestMemoryChurnGarbageBounded(t *testing.T) {
	retired, hpMB, leakMB := MemoryChurnGarbage(1<<12, 60_000, 7)
	// The HP variant's outstanding garbage is bounded by handles×threshold;
	// a single-goroutine churn keeps it tiny.
	if retired > 1024 {
		t.Fatalf("retired nodes %d not bounded", retired)
	}
	t.Logf("hp heap %.2f MB, leak heap %.2f MB, retired %d", hpMB, leakMB, retired)
}

// TestDifferentialVariants replays identical random op sequences against
// every variant and a model map; all implementations must agree on every
// result (sequentially).
func TestDifferentialVariants(t *testing.T) {
	variants := ScalabilityVariants()
	maps := make([]IntMap, len(variants))
	for i, v := range variants {
		maps[i] = v.New(1 << 12)
	}
	model := map[int64]uint64{}
	rng := workload.NewRNG(77)
	for i := 0; i < 6000; i++ {
		k := rng.Intn(512)
		switch rng.Intn(3) {
		case 0:
			_, inModel := model[k]
			for j, m := range maps {
				if got := m.Insert(k, uint64(k)); got == inModel {
					t.Fatalf("op %d: %s Insert(%d) = %t", i, variants[j].Name, k, got)
				}
			}
			if !inModel {
				model[k] = uint64(k)
			}
		case 1:
			_, inModel := model[k]
			for j, m := range maps {
				if got := m.Remove(k); got != inModel {
					t.Fatalf("op %d: %s Remove(%d) = %t", i, variants[j].Name, k, got)
				}
			}
			delete(model, k)
		default:
			mv, inModel := model[k]
			for j, m := range maps {
				v, got := m.Lookup(k)
				if got != inModel || (got && v != mv) {
					t.Fatalf("op %d: %s Lookup(%d) mismatch", i, variants[j].Name, k)
				}
			}
		}
	}
	for j, m := range maps {
		if m.Len() != len(model) {
			t.Fatalf("%s Len = %d, model %d", variants[j].Name, m.Len(), len(model))
		}
	}
}

func TestBLTAdapter(t *testing.T) {
	m := BLT.New(1 << 10)
	if !m.Insert(5, 50) || m.Insert(5, 51) {
		t.Fatal("Insert semantics wrong")
	}
	if v, ok := m.Lookup(5); !ok || v != 50 {
		t.Fatalf("Lookup = %d,%t", v, ok)
	}
	if !m.Remove(5) || m.Remove(5) {
		t.Fatal("Remove semantics wrong")
	}
}

func TestDifferentialBLT(t *testing.T) {
	blt := BLT.New(1 << 10)
	sv := SVHP.New(1 << 10)
	model := map[int64]bool{}
	rng := workload.NewRNG(55)
	for i := 0; i < 5000; i++ {
		k := rng.Intn(256)
		switch rng.Intn(3) {
		case 0:
			a, b := blt.Insert(k, uint64(k)), sv.Insert(k, uint64(k))
			if a != b || a == model[k] {
				t.Fatalf("op %d Insert(%d): blt=%t sv=%t model=%t", i, k, a, b, model[k])
			}
			model[k] = true
		case 1:
			a, b := blt.Remove(k), sv.Remove(k)
			if a != b || a != model[k] {
				t.Fatalf("op %d Remove(%d): blt=%t sv=%t", i, k, a, b)
			}
			delete(model, k)
		default:
			_, a := blt.Lookup(k)
			_, b := sv.Lookup(k)
			if a != b || a != model[k] {
				t.Fatalf("op %d Lookup(%d): blt=%t sv=%t", i, k, a, b)
			}
		}
	}
	if blt.Len() != sv.Len() {
		t.Fatalf("Len: blt=%d sv=%d", blt.Len(), sv.Len())
	}
}

func TestAblationBLinkTreeQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tb, err := AblationBLinkTree(QuickScale(), workload.MixReadHeavy)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tb.Cells {
		for _, v := range tb.Cells[i] {
			if v <= 0 {
				t.Fatal("empty cell")
			}
		}
	}
}
