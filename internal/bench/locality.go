package bench

import (
	"fmt"

	"skipvector/internal/workload"
)

// FingerPatterns are the access patterns of the search-finger locality
// sweep, from no locality (uniform) through skew (Zipfian) to perfect
// locality (sequential scan windows).
func FingerPatterns(keyRange int64) []FingerPattern {
	window := keyRange / 64
	if window < 64 {
		window = 64
	}
	return []FingerPattern{
		{Name: "uniform", Mix: workload.MixReadHeavy},
		{Name: "zipf-0.9", Mix: workload.MixReadHeavy, Zipf: 0.9},
		{Name: "seq-scan", Mix: workload.Mix{LookupPct: 100}, SeqWindow: window},
	}
}

// FingerPattern is one row of the locality sweep.
type FingerPattern struct {
	Name      string
	Mix       workload.Mix
	Zipf      float64
	SeqWindow int64
}

// FigFinger runs the search-finger locality sweep: for each access pattern,
// the same trial with the finger enabled (SV-HP, the default) and disabled
// (SV-NoFinger), plus the resulting speedup and the finger hit rate observed
// on the enabled run. The sweep is the acceptance gate for the finger: the
// sequential scan should speed up substantially while uniform point
// operations — where almost every probe misses — must not regress.
func FigFinger(s Scale) (*Table, error) {
	keyRange := Pow2(s.SensitivityRangeExp)
	t := NewTable(
		fmt.Sprintf("Finger locality sweep, %d threads, 2^%d keys",
			s.SensitivityThreads, s.SensitivityRangeExp),
		"pattern", []string{"finger-on", "finger-off", "speedup", "hit%"})
	for _, p := range FingerPatterns(keyRange) {
		var on, off, hitPct float64
		for rep := 0; rep < s.Reps; rep++ {
			cfg := TrialConfig{
				Threads:   s.SensitivityThreads,
				Duration:  s.Duration,
				KeyRange:  keyRange,
				Mix:       p.Mix,
				Zipf:      p.Zipf,
				SeqWindow: p.SeqWindow,
				Seed:      s.Seed + uint64(rep)*0x9e37,
			}
			mOn := SVHP.New(keyRange)
			resOn, err := RunTrial(mOn, cfg)
			if err != nil {
				return nil, fmt.Errorf("%s finger-on: %w", p.Name, err)
			}
			if st := mOn.(*svMap).Stats(); st.FingerHits+st.FingerMisses > 0 {
				hitPct += float64(st.FingerHits) /
					float64(st.FingerHits+st.FingerMisses) * 100
			}
			resOff, err := RunTrial(SVNoFinger.New(keyRange), cfg)
			if err != nil {
				return nil, fmt.Errorf("%s finger-off: %w", p.Name, err)
			}
			on += resOn.Throughput
			off += resOff.Throughput
		}
		r := float64(s.Reps)
		on, off, hitPct = on/r, off/r, hitPct/r
		speedup := 0.0
		if off > 0 {
			speedup = on / off
		}
		t.AddRow(p.Name, []float64{on, off, speedup, hitPct})
	}
	return t, nil
}
