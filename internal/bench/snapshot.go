package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"skipvector/internal/core"
	"skipvector/internal/workload"
)

// scanMode selects the long-scan strategy of the writers-vs-scanners trial.
type scanMode int

const (
	// scanSnapshot pins an MVCC snapshot and iterates it: consistent by
	// construction, never restarts, never blocks the writers.
	scanSnapshot scanMode = iota
	// scanOptimistic is the strategy an application is forced into without
	// snapshots: scan the live map hand-over-hand, then validate against a
	// global write counter and throw the scan away if anything changed.
	// Under sustained writes it almost never validates.
	scanOptimistic
	// scanLocked reads through the 2PL range machinery (Ascend): consistent
	// and restart-free, but it holds every data lock for the whole scan and
	// stalls the writers.
	scanLocked
)

func (m scanMode) String() string {
	switch m {
	case scanSnapshot:
		return "snapshot"
	case scanOptimistic:
		return "optimistic"
	case scanLocked:
		return "locked"
	}
	return fmt.Sprintf("scanMode(%d)", int(m))
}

// snapTrialResult is one writers-vs-scanners trial's outcome.
type snapTrialResult struct {
	// scans is the number of consistent full-map scans the scanner finished.
	// For the optimistic mode only validated scans count.
	scans int64
	// restarts is the number of scans thrown away by failed validation.
	// Snapshot and locked scans are restart-free by construction.
	restarts int64
	// keys is the total number of pairs delivered by counted scans.
	keys int64
	// writerOps is the total operation count across the writer goroutines.
	writerOps int64
	elapsed   time.Duration
}

// FigSnapshot runs the writers-vs-scanners ablation behind the snapshot
// subsystem: W uniform writers churn the map at full speed while one scanner
// repeatedly performs a consistent full-map scan, once per strategy. The
// snapshot column must finish long scans with zero restarts while the
// writers keep their throughput; the optimistic baseline shows why that is
// not trivial (its validation loop restarts essentially every attempt), and
// the locked column shows the cost of the classic alternative (consistency
// bought by stalling every writer for the scan's duration).
func FigSnapshot(s Scale) (*Table, error) {
	keyRange := Pow2(s.SensitivityRangeExp)
	threads := s.SensitivityThreads
	t := NewTable(
		fmt.Sprintf("Writers vs. scanners: full-map scans against %d uniform writers, 2^%d keys",
			threads, s.SensitivityRangeExp),
		"scan strategy", []string{"scans", "restarts", "scan keys/s", "writer ops/s"})
	for _, mode := range []scanMode{scanSnapshot, scanOptimistic, scanLocked} {
		var agg snapTrialResult
		for rep := 0; rep < s.Reps; rep++ {
			cfg := TrialConfig{
				Threads:  threads,
				Duration: s.Duration,
				KeyRange: keyRange,
				Mix:      workload.MixWriteOnly,
				Seed:     s.Seed + uint64(rep)*0x9e37,
			}
			r, err := runSnapshotScanTrial(cfg, mode)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", mode, err)
			}
			agg.scans += r.scans
			agg.restarts += r.restarts
			agg.keys += r.keys
			agg.writerOps += r.writerOps
			agg.elapsed += r.elapsed
		}
		secs := agg.elapsed.Seconds()
		t.AddRow(mode.String(), []float64{
			float64(agg.scans),
			float64(agg.restarts),
			float64(agg.keys) / secs,
			float64(agg.writerOps) / secs,
		})
	}
	return t, nil
}

// runSnapshotScanTrial runs one timed trial: cfg.Threads writer goroutines
// churn uniform keys (insert/remove/upsert in rotation) while a single
// scanner goroutine repeats full-map scans with the given strategy. Writers
// publish a shared write counter; the optimistic scanner uses it as its
// validation token, which is exactly the consistency protocol an application
// without snapshots would have to build.
func runSnapshotScanTrial(cfg TrialConfig, mode scanMode) (snapTrialResult, error) {
	if err := cfg.Validate(); err != nil {
		return snapTrialResult{}, err
	}
	sv := NewSkipVector(svConfig(cfg.KeyRange, 32, 32, core.ReclaimHazard)).(*svMap)
	Prefill(sv, cfg.KeyRange, cfg.Seed, cfg.Threads)

	var (
		stop         atomic.Bool
		writes       atomic.Int64
		start, done  sync.WaitGroup
		writerCounts = make([]int64, cfg.Threads)
		res          snapTrialResult
		scanErr      error
	)
	root := workload.NewRNG(cfg.Seed ^ 0x5eed)
	start.Add(1)
	for t := 0; t < cfg.Threads; t++ {
		rng := root.Split()
		keys := workload.NewUniform(rng, cfg.KeyRange)
		done.Add(1)
		go func(id int, keys workload.KeyGen) {
			defer done.Done()
			sess := sv.NewSession()
			defer sess.Close()
			us := sess.(*svSession)
			start.Wait()
			var local int64
			for !stop.Load() {
				for i := 0; i < 64; i++ {
					k := keys.Next()
					switch local % 3 {
					case 0:
						us.Insert(k, uint64(k))
					case 1:
						us.Remove(k)
					default:
						us.Upsert(k, uint64(k))
					}
					local++
					writes.Add(1)
				}
			}
			writerCounts[id] = local
		}(t, keys)
	}

	// ascendingCheck returns a visitor that counts pairs and verifies the
	// scan stays sorted — a cheap teeth check that the scan delivered a real
	// ordered view rather than garbage.
	ascendingCheck := func(n *int64, prev *int64) func(k int64, v *uint64) bool {
		*prev = core.MinKey
		return func(k int64, _ *uint64) bool {
			if k <= *prev {
				scanErr = fmt.Errorf("scan went backwards: %d after %d", k, *prev)
				return false
			}
			*prev = k
			*n++
			return true
		}
	}

	done.Add(1)
	go func() {
		defer done.Done()
		start.Wait()
		switch mode {
		case scanSnapshot:
			for !stop.Load() && scanErr == nil {
				snap := sv.m.Snapshot()
				var n, prev int64
				snap.Ascend(ascendingCheck(&n, &prev))
				snap.Close()
				res.keys += n
				res.scans++
			}
		case scanOptimistic:
			h := sv.m.NewHandle()
			defer h.Close()
			for !stop.Load() && scanErr == nil {
				w0 := writes.Load()
				var n int64
				k := int64(core.MinKey) + 1
				for {
					kk, _, ok := h.Ceiling(k)
					if !ok || kk >= core.MaxKey-1 {
						break
					}
					n++
					k = kk + 1
				}
				if writes.Load() != w0 {
					res.restarts++
					continue
				}
				res.keys += n
				res.scans++
			}
		case scanLocked:
			for !stop.Load() && scanErr == nil {
				var n, prev int64
				sv.m.Ascend(ascendingCheck(&n, &prev))
				res.keys += n
				res.scans++
			}
		}
	}()

	begin := time.Now()
	start.Done()
	timer := time.NewTimer(cfg.Duration)
	<-timer.C
	stop.Store(true)
	done.Wait()
	res.elapsed = time.Since(begin)
	if scanErr != nil {
		return snapTrialResult{}, scanErr
	}
	for _, c := range writerCounts {
		res.writerOps += c
	}
	return res, nil
}
