package bench

import (
	"math"
	"testing"

	"skipvector/internal/cpuhint"
	"skipvector/internal/vectormap"
)

// TestFigHotpathQuick smoke-checks the hot-path ablation: the grid must
// report all four prefetch×branchless rows with usable throughputs and
// speedups, and running it must leave the process-global toggles exactly as
// it found them. Quick-scale trials are far too short to assert the ≥1.10×
// uniform-get gate itself — that applies to the paper-scale artifact
// (BENCH_hotpath.json) — so the cells are only checked for sanity here.
func TestFigHotpathQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	prevPrefetch := cpuhint.Enabled() || !cpuhint.Supported()
	prevBranchless := vectormap.BranchlessSearch()

	tb, err := FigHotpath(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if got := cpuhint.Enabled() || !cpuhint.Supported(); got != prevPrefetch {
		t.Errorf("FigHotpath left the prefetch toggle at %v (was %v)", got, prevPrefetch)
	}
	if got := vectormap.BranchlessSearch(); got != prevBranchless {
		t.Errorf("FigHotpath left the branchless toggle at %v (was %v)", got, prevBranchless)
	}

	if len(tb.XValues) != len(hotpathConfigs) {
		t.Fatalf("hotpath rows = %d, want %d", len(tb.XValues), len(hotpathConfigs))
	}
	for _, col := range []string{"uniform-get", "seq-scan", "get-speedup", "scan-speedup"} {
		if tb.Col(col) < 0 {
			t.Fatalf("hotpath sweep misses column %q: %v", col, tb.Columns)
		}
	}
	for i, label := range tb.XValues {
		for j, col := range tb.Columns {
			v := tb.Cells[i][j]
			if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("row %q column %q reports no usable value: %v", label, col, v)
			}
		}
		t.Logf("row %q: get=%.0f scan=%.0f speedups=%.3f/%.3f",
			label, tb.Cells[i][tb.Col("uniform-get")], tb.Cells[i][tb.Col("seq-scan")],
			tb.Cells[i][tb.Col("get-speedup")], tb.Cells[i][tb.Col("scan-speedup")])
	}
}

// TestFigFanoutQuick smoke-checks the fanout sweep's shape: one row per
// T_D×T_I grid cell, each with a positive throughput.
func TestFigFanoutQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tb, err := FigFanout(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	want := len(fanoutTargets) * len(fanoutTargets)
	if len(tb.XValues) != want {
		t.Fatalf("fanout rows = %d, want %d", len(tb.XValues), want)
	}
	for i, label := range tb.XValues {
		if v := tb.Cells[i][0]; v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("row %q reports no usable throughput: %v", label, v)
		}
	}
}
