package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"skipvector/internal/workload"
)

// batchSizes are the ApplyBatch request sizes of the batch-update sweep.
var batchSizes = []int{8, 64, 256}

// Uniform-traffic parity gate. When keys are drawn uniformly, almost every
// op in a batch lands in a different chunk, so chunk grouping amortizes
// little — yet ApplyBatch must still not lose to the equivalent singleton
// loop. Sorting the request buys each group a free in-lock extent bound (the
// locked chunk's own max key replaces the old always-paid validated walk to
// the successor's minimum) and lets consecutive groups share their position
// through a bounded rightward walk instead of fresh descents, which together
// push the uniform batched/singleton ratio to parity or above at every batch
// size. UniformBatchRatioFloor is therefore a hard gate at 1.0: a uniform
// row below it on a paper-scale run (BENCH_batch.json) means the group
// commit's fixed costs regressed past what the shared positioning saves.
// The sequential rows are where the multiplicative speedup lives; the
// uniform floor is the regression guard that batching never costs the caller
// throughput (FigBatch). TestFigBatchReportsRatio smoke-checks the gate at
// quick scale with a noise allowance.
const UniformBatchRatioFloor = 1.0

// FigBatch runs the chunk-grouped batch-update sweep: upsert-only workloads
// where each worker draws a run of keys and commits it either through one
// ApplyBatch call ("batched") or an equivalent per-key Upsert loop
// ("singleton"), on sequential-run and uniform key distributions. Throughput
// counts keys, not batches, so the two columns are directly comparable. The
// sweep is the acceptance gate for ApplyBatch: sequential batches of 64
// amortize one traversal and one lock hand-off over a whole chunk run and
// must beat the singleton loop clearly, while uniform small batches — where
// almost every op lands in a different chunk — must not collapse.
func FigBatch(s Scale) (*Table, error) {
	keyRange := Pow2(s.SensitivityRangeExp)
	window := keyRange / 64
	if window < 512 {
		window = 512
	}
	t := NewTable(
		fmt.Sprintf("Batch upsert throughput (keys/s), %d threads, 2^%d keys",
			s.SensitivityThreads, s.SensitivityRangeExp),
		"pattern/size", []string{"batched", "singleton", "speedup"})
	for _, pattern := range []struct {
		name      string
		seqWindow int64
	}{
		{name: "seq", seqWindow: window},
		{name: "uniform"},
	} {
		for _, size := range batchSizes {
			var on, off float64
			for rep := 0; rep < s.Reps; rep++ {
				cfg := TrialConfig{
					Threads:   s.SensitivityThreads,
					Duration:  s.Duration,
					KeyRange:  keyRange,
					Mix:       workload.Mix{InsertPct: 100},
					SeqWindow: pattern.seqWindow,
					Seed:      s.Seed + uint64(rep)*0x9e37,
				}
				resOn, err := runBatchTrial(SVHP.New(keyRange), cfg, size, true)
				if err != nil {
					return nil, fmt.Errorf("%s/%d batched: %w", pattern.name, size, err)
				}
				resOff, err := runBatchTrial(SVHP.New(keyRange), cfg, size, false)
				if err != nil {
					return nil, fmt.Errorf("%s/%d singleton: %w", pattern.name, size, err)
				}
				on += resOn.Throughput
				off += resOff.Throughput
			}
			r := float64(s.Reps)
			on, off = on/r, off/r
			speedup := 0.0
			if off > 0 {
				speedup = on / off
			}
			t.AddRow(fmt.Sprintf("%s/%d", pattern.name, size), []float64{on, off, speedup})
		}
	}
	return t, nil
}

// runBatchTrial is RunTrial's sibling for the batch sweep: every worker
// repeatedly draws batchSize keys from the trial's distribution and upserts
// them, as one ApplyBatch when batched or one key at a time otherwise. Both
// sides run through pinned sessions, so the singleton baseline keeps the
// search finger — the comparison isolates the batch commit protocol itself.
func runBatchTrial(m IntMap, cfg TrialConfig, batchSize int, batched bool) (TrialResult, error) {
	if err := cfg.Validate(); err != nil {
		return TrialResult{}, err
	}
	if batchSize < 1 {
		return TrialResult{}, fmt.Errorf("bench: batch size %d < 1", batchSize)
	}
	sp, ok := m.(Sessioner)
	if !ok {
		return TrialResult{}, fmt.Errorf("bench: %T offers no sessions; the batch trial needs them", m)
	}
	if probe := sp.NewSession(); true {
		_, isBW := probe.(BatchWriter)
		probe.Close()
		if !isBW {
			return TrialResult{}, fmt.Errorf("bench: %T sessions cannot batch-upsert", m)
		}
	}
	if !cfg.SkipPrefill {
		Prefill(m, cfg.KeyRange, cfg.Seed, cfg.Threads)
	}

	var (
		stop   atomic.Bool
		start  sync.WaitGroup
		done   sync.WaitGroup
		counts = make([]int64, cfg.Threads)
	)
	root := workload.NewRNG(cfg.Seed ^ 0xabcdef)
	start.Add(1)
	for t := 0; t < cfg.Threads; t++ {
		rng := root.Split()
		var keys workload.KeyGen
		if cfg.SeqWindow > 0 {
			keys = workload.NewSeqWindow(rng, cfg.KeyRange, cfg.SeqWindow)
		} else {
			keys = workload.NewUniform(rng, cfg.KeyRange)
		}
		done.Add(1)
		go func(id int, keys workload.KeyGen) {
			defer done.Done()
			sess := sp.NewSession()
			defer sess.Close()
			bw := sess.(BatchWriter)
			ks := make([]int64, batchSize)
			start.Wait()
			var local int64
			for !stop.Load() {
				for i := range ks {
					ks[i] = keys.Next()
				}
				if batched {
					bw.UpsertBatch(ks)
				} else {
					for _, k := range ks {
						bw.Upsert(k, uint64(k))
					}
				}
				local += int64(batchSize)
			}
			counts[id] = local
		}(t, keys)
	}

	begin := time.Now()
	start.Done()
	timer := time.NewTimer(cfg.Duration)
	<-timer.C
	stop.Store(true)
	done.Wait()
	elapsed := time.Since(begin)

	var total int64
	for _, c := range counts {
		total += c
	}
	return TrialResult{
		Ops:        total,
		Elapsed:    elapsed,
		Throughput: float64(total) / elapsed.Seconds(),
	}, nil
}
