package bench

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"skipvector/internal/workload"
)

// Sharding gates. The shards×threads sweep (FigShard) reports every cell's
// throughput as a ratio against the 1-shard baseline at the same thread
// count, and two constants turn the ratios into acceptance criteria:
//
// ShardParityFloor is the router-overhead guard: no shards×threads cell may
// fall below 0.95× the 1-shard baseline. Routing costs one atomic load and a
// short binary search per op, and per-shard structures are smaller, so
// sharding must never be a pessimization — a cell below the floor on a
// paper-scale run (BENCH_shard.json) means the router or the per-shard
// sizing regressed. The floor binds on cells whose worker count the host
// can schedule (threads ≤ NumCPU): oversubscribed cells measure scheduler
// time-slicing, not routing cost, and their ratios jitter tens of percent
// in either direction on a loaded host (all ratios are still reported).
//
// ShardScaleoutTarget is the scale-out gate: with 8 shards and 8 threads on
// uniform keys, throughput must reach ≥3× the 1-shard/8-thread baseline.
// This gate is machine-aware (ShardScaleoutEnforceable): the speedup comes
// from threads on different cores committing into disjoint shards in
// parallel, so it is enforced only where the hardware can actually
// parallelize 8 workers. On fewer cores — including the 1-vCPU reference
// environment EXPERIMENTS.md documents — the measured ratio is still
// reported in every artifact, but only the parity floor is enforced:
// goroutine counts above NumCPU measure contention, not parallel speedup,
// and no honest measurement reaches 3× on one core.
const (
	ShardParityFloor    = 0.95
	ShardScaleoutTarget = 3.0
)

// shardScaleoutCell is the shards/threads point the scale-out gate reads.
const shardScaleoutCell = 8

// ShardScaleoutEnforceable reports whether this machine can host the
// scale-out gate's premise: at least 8 schedulable cores for the 8 workers.
func ShardScaleoutEnforceable() bool {
	return runtime.NumCPU() >= shardScaleoutCell && runtime.GOMAXPROCS(0) >= shardScaleoutCell
}

// FigShard runs the shards×threads scaling sweep: a 50/50 upsert+get
// workload (closed loop, sessions pinned) over the sharded skip vector at
// every shard count and thread count of the scale, on uniform and Zipfian
// key distributions, one table per distribution. Each row reports the cell's
// throughput, its ratio against the 1-shard baseline at the same thread
// count (the column the gates read), and the open-loop p99/p999 completion
// latency at half the cell's measured capacity — fixed arrival schedule,
// latencies charged from scheduled arrival, so the tail includes queueing
// delay (coordinated-omission-safe).
func FigShard(s Scale) ([]*Table, error) {
	keyRange := Pow2(s.SensitivityRangeExp)
	shardCounts := s.ShardCounts
	if len(shardCounts) == 0 {
		shardCounts = []int{1, 2, 4, 8}
	}
	dists := []struct {
		name string
		zipf float64
	}{
		{"uniform", 0},
		{"zipf", 0.9},
	}
	var out []*Table
	for _, dist := range dists {
		t := NewTable(
			fmt.Sprintf("Sharding: 50/50 upsert+get, %s keys, 2^%d key range",
				dist.name, s.SensitivityRangeExp),
			"threads/shards", []string{"ops/s", "x-vs-1shard", "p99-us", "p999-us"})
		for _, threads := range s.Threads {
			base := 0.0
			for _, shards := range shardCounts {
				var tp float64
				for rep := 0; rep < s.Reps; rep++ {
					res, err := runShardTrial(NewShardedSV(keyRange, shards), shardTrialConfig{
						Threads:  threads,
						Duration: s.Duration,
						KeyRange: keyRange,
						Zipf:     dist.zipf,
						Seed:     s.Seed + uint64(rep)*0x9e37,
					})
					if err != nil {
						return nil, fmt.Errorf("shard %s T%d/S%d: %w", dist.name, threads, shards, err)
					}
					tp += res.Throughput
				}
				tp /= float64(s.Reps)
				if shards == shardCounts[0] {
					base = tp
				}
				ratio := 0.0
				if base > 0 {
					ratio = tp / base
				}
				// Open-loop tail at half the measured capacity: a stable
				// operating point where p99 reflects service jitter and
				// routing cost, not saturation collapse.
				ol, err := RunOpenLoop(NewShardedSV(keyRange, shards), OpenLoopConfig{
					Threads:   threads,
					Rate:      tp / 2,
					Duration:  s.Duration,
					KeyRange:  keyRange,
					UpsertPct: 50,
					Zipf:      dist.zipf,
					Seed:      s.Seed ^ 0x01e7,
				})
				if err != nil {
					return nil, fmt.Errorf("shard open-loop %s T%d/S%d: %w", dist.name, threads, shards, err)
				}
				t.AddRow(fmt.Sprintf("T%d/S%d", threads, shards), []float64{
					tp,
					ratio,
					float64(ol.P99) / float64(time.Microsecond),
					float64(ol.P999) / float64(time.Microsecond),
				})
			}
		}
		out = append(out, t)
	}
	return out, nil
}

// shardTrialConfig parameterizes one closed-loop 50/50 upsert+get trial.
type shardTrialConfig struct {
	Threads  int
	Duration time.Duration
	KeyRange int64
	Zipf     float64
	Seed     uint64
}

// runShardTrial is RunTrial's sibling for the sharding sweep: a 50/50
// upsert/lookup mix through pinned sessions. Upserts (rather than the set
// mix's inserts) keep the map at the prefill level for the whole trial —
// every write does chunk work regardless of key presence — which is the
// steady-state a sharded store serves.
func runShardTrial(m IntMap, cfg shardTrialConfig) (TrialResult, error) {
	if cfg.Threads < 1 || cfg.Duration <= 0 || cfg.KeyRange < 2 {
		return TrialResult{}, fmt.Errorf("bench: bad shard trial config %+v", cfg)
	}
	sp, ok := m.(Sessioner)
	if !ok {
		return TrialResult{}, fmt.Errorf("bench: %T offers no sessions; the shard trial needs them", m)
	}
	Prefill(m, cfg.KeyRange, cfg.Seed, cfg.Threads)

	var (
		stop   atomic.Bool
		start  sync.WaitGroup
		done   sync.WaitGroup
		counts = make([]int64, cfg.Threads)
	)
	root := workload.NewRNG(cfg.Seed ^ 0xabcdef)
	var sharedZipf *workload.ZipfKeys
	if cfg.Zipf > 0 {
		sharedZipf = workload.NewZipfKeys(root.Split(), cfg.KeyRange, cfg.Zipf, cfg.Seed)
	}
	start.Add(1)
	for t := 0; t < cfg.Threads; t++ {
		rng := root.Split()
		var keys workload.KeyGen
		if sharedZipf != nil {
			keys = sharedZipf.WithRNG(rng)
		} else {
			keys = workload.NewUniform(rng, cfg.KeyRange)
		}
		done.Add(1)
		go func(id int, rng *workload.RNG, keys workload.KeyGen) {
			defer done.Done()
			sess := sp.NewSession()
			defer sess.Close()
			bw, ok := sess.(BatchWriter)
			if !ok {
				panic(fmt.Sprintf("bench: %T sessions cannot upsert", m))
			}
			start.Wait()
			var local int64
			for !stop.Load() {
				for i := 0; i < 64; i++ {
					k := keys.Next()
					if rng.Intn(2) == 0 {
						bw.Upsert(k, uint64(k))
					} else {
						sess.Lookup(k)
					}
					local++
				}
			}
			counts[id] = local
		}(t, rng, keys)
	}

	begin := time.Now()
	start.Done()
	timer := time.NewTimer(cfg.Duration)
	<-timer.C
	stop.Store(true)
	done.Wait()
	elapsed := time.Since(begin)

	var total int64
	for _, c := range counts {
		total += c
	}
	return TrialResult{
		Ops:        total,
		Elapsed:    elapsed,
		Throughput: float64(total) / elapsed.Seconds(),
	}, nil
}
