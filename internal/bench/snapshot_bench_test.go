package bench

import (
	"math"
	"testing"
	"time"
)

// TestFigSnapshotQuick is the writers-vs-scanners acceptance smoke: the
// pinned snapshot scan must complete full-map scans under sustained write
// load with zero restarts, while the optimistic validate-and-retry baseline
// must be visibly restart-prone under the same load.
func TestFigSnapshotQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tb, err := FigSnapshot(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.XValues) != 3 {
		t.Fatalf("FigSnapshot rows = %d", len(tb.XValues))
	}
	scans, restarts := tb.Col("scans"), tb.Col("restarts")
	writer := tb.Col("writer ops/s")
	if scans < 0 || restarts < 0 || writer < 0 {
		t.Fatalf("missing columns: %v", tb.Columns)
	}
	row := func(label string) []float64 {
		for i, x := range tb.XValues {
			if x == label {
				return tb.Cells[i]
			}
		}
		t.Fatalf("no %q row", label)
		return nil
	}
	snap, opt, locked := row("snapshot"), row("optimistic"), row("locked")

	// The headline claims: snapshot scans complete, restart-free, with the
	// writers still running.
	if snap[scans] < 1 {
		t.Fatalf("snapshot scanner completed %v scans", snap[scans])
	}
	if snap[restarts] != 0 {
		t.Fatalf("snapshot scanner restarted %v times", snap[restarts])
	}
	if snap[writer] <= 0 {
		t.Fatalf("writers made no progress under snapshot scans: %v", snap[writer])
	}
	// The optimistic baseline's validation loop must have been forced to
	// throw scans away; that contrast is the whole point of the figure.
	if opt[restarts] < 1 {
		t.Fatalf("optimistic scanner never restarted (restarts=%v, scans=%v)",
			opt[restarts], opt[scans])
	}
	// The locked scan is restart-free too — its cost shows up in writer
	// throughput, not in this smoke test's assertions.
	if locked[restarts] != 0 {
		t.Fatalf("locked scanner restarted %v times", locked[restarts])
	}
	if locked[scans] < 1 {
		t.Fatalf("locked scanner completed %v scans", locked[scans])
	}
}

// TestFigBatchReportsRatio smoke-checks the uniform parity gate: the batch
// sweep must report the batched/singleton ratio (the "speedup" column) for
// every pattern/size row, and the uniform rows must sit at or near the hard
// UniformBatchRatioFloor of 1.0 — batching uniform traffic never loses to
// the singleton loop. Quick-scale trials are short enough to jitter a few
// percent, so the test enforces the gate with a fixed noise allowance; the
// allowance-free gate applies to paper-scale runs (BENCH_batch.json).
func TestFigBatchReportsRatio(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if UniformBatchRatioFloor < 1 {
		t.Fatalf("uniform parity floor %v < 1; the gate is hard parity",
			UniformBatchRatioFloor)
	}
	// Smoke-scale noise allowance: 50ms single-rep trials jitter by tens of
	// percent, so run the sweep a bit longer and averaged, and enforce the
	// gate minus a 15% allowance. The allowance-free ≥1.0 gate applies to
	// the checked-in paper-scale artifact (BENCH_batch.json).
	quickFloor := UniformBatchRatioFloor * 0.85
	s := QuickScale()
	s.Duration = 150 * time.Millisecond
	s.Reps = 2
	tb, err := FigBatch(s)
	if err != nil {
		t.Fatal(err)
	}
	col := tb.Col("speedup")
	if col < 0 {
		t.Fatalf("batch sweep does not report the batched/singleton ratio: %v", tb.Columns)
	}
	if len(tb.XValues) != 2*len(batchSizes) {
		t.Fatalf("batch sweep rows = %d", len(tb.XValues))
	}
	for i, label := range tb.XValues {
		r := tb.Cells[i][col]
		if r <= 0 || math.IsNaN(r) || math.IsInf(r, 0) {
			t.Fatalf("row %q reports no usable ratio: %v", label, r)
		}
		if r < quickFloor {
			t.Errorf("row %q: batched/singleton = %.3f, below the quick-scale floor %.2f (gate %.2f)",
				label, r, quickFloor, UniformBatchRatioFloor)
			continue
		}
		t.Logf("row %q: batched/singleton = %.3f (gate ≥%.2f at paper scale)",
			label, r, UniformBatchRatioFloor)
	}
}
