package bench

import (
	"fmt"
	"runtime"
)

// MemoryFootprint measures live bytes per element for each variant after a
// half-full prefill at the given key range — the quantitative face of the
// paper's memory observations (Section V-A: the competitors ran out of
// memory at 2^31 keys while the skip vector completed up to 2^35; chunking
// amortizes per-node overheads across T elements).
//
// The measurement forces a full GC before and after construction and reads
// HeapAlloc, so it reflects live structure size, not allocation churn.
func MemoryFootprint(keyRangeExps []int, seed uint64) *Table {
	variants := ScalabilityVariants()
	cols := make([]string, len(variants))
	for i, v := range variants {
		cols[i] = v.Name
	}
	t := NewTable("Memory: live bytes per element after half-range prefill", "key-bits", cols)
	for _, exp := range keyRangeExps {
		keyRange := Pow2(exp)
		row := make([]float64, len(variants))
		for i, v := range variants {
			row[i] = bytesPerElement(v, keyRange, seed)
		}
		t.AddRow(fmt.Sprintf("2^%d", exp), row)
	}
	return t
}

// bytesPerElement builds one structure and reports its live heap cost per
// contained element.
func bytesPerElement(v Variant, keyRange int64, seed uint64) float64 {
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	m := v.New(keyRange)
	Prefill(m, keyRange, seed, 1)

	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	n := m.Len()
	if n == 0 {
		return 0
	}
	delta := float64(after.HeapAlloc) - float64(before.HeapAlloc)
	if delta < 0 {
		delta = 0
	}
	perElem := delta / float64(n)
	runtime.KeepAlive(m)
	return perElem
}

// MemoryChurnGarbage measures the bounded-garbage property: after a heavy
// insert/remove churn, how many retired-but-unreclaimed nodes remain for
// the HP variant (bounded) versus how much extra heap the Leak variant has
// accumulated. Returns (hpRetiredNodes, hpHeapMB, leakHeapMB).
func MemoryChurnGarbage(keyRange int64, churnOps int, seed uint64) (int64, float64, float64) {
	measure := func(v Variant) (int64, float64) {
		runtime.GC()
		var before runtime.MemStats
		runtime.ReadMemStats(&before)
		m := v.New(keyRange)
		// Churn: repeatedly fill and drain a window so nodes retire.
		for i := 0; i < churnOps; i++ {
			k := int64(i) % keyRange
			m.Insert(k, uint64(k))
			m.Remove(k)
		}
		runtime.GC()
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		var retired int64
		if sv, ok := m.(*svMap); ok {
			retired = sv.Stats().Retired
		}
		heapMB := (float64(after.HeapAlloc) - float64(before.HeapAlloc)) / (1 << 20)
		if heapMB < 0 {
			heapMB = 0
		}
		runtime.KeepAlive(m)
		return retired, heapMB
	}
	retired, hpMB := measure(SVHP)
	_, leakMB := measure(SVLeak)
	return retired, hpMB, leakMB
}
