// Package bench is the throughput harness behind every figure in the
// paper's evaluation (Section V): it prefills a structure with half the key
// range, runs a fixed-duration timed trial with G worker goroutines drawing
// operations from a mix, and reports ops/second, averaged over repetitions.
package bench

import (
	"skipvector/internal/blink"
	"skipvector/internal/core"
	"skipvector/internal/skiplist"
	"skipvector/internal/telemetry"
)

// IntMap is the uniform adapter interface the harness drives: an ordered map
// from int64 keys to uint64 values (the paper benchmarks 64-bit keys with
// 64-bit pointer values).
type IntMap interface {
	Insert(k int64, v uint64) bool
	Lookup(k int64) (uint64, bool)
	Remove(k int64) bool
	Len() int
}

// RangeMap extends IntMap with a linearizable mutating range operation, used
// by the Figure 8 workload.
type RangeMap interface {
	IntMap
	// RangeUpdate applies fn to every value in [lo,hi] atomically and
	// returns the number of keys visited.
	RangeUpdate(lo, hi int64, fn func(k int64, v uint64) uint64) int
}

// Session is a single-goroutine view of an IntMap. Sessions carry
// per-goroutine state — for the skip vector, the pinned search finger — and
// must be Closed when the worker finishes.
type Session interface {
	IntMap
	Close()
}

// Sessioner is implemented by adapters whose structure supports pinned
// per-goroutine sessions. The trial runner gives each worker its own session
// when available, so locality optimizations that live in per-handle state are
// actually exercised under concurrency.
type Sessioner interface {
	NewSession() Session
}

// svMap adapts core.Map to IntMap/RangeMap.
type svMap struct {
	m *core.Map[uint64]
}

// NewSkipVector builds a skip vector adapter with the given configuration.
func NewSkipVector(cfg core.Config) IntMap {
	m, err := core.NewMap[uint64](cfg)
	if err != nil {
		panic("bench: " + err.Error())
	}
	return &svMap{m: m}
}

var (
	_ IntMap   = (*svMap)(nil)
	_ RangeMap = (*svMap)(nil)
)

func (s *svMap) Insert(k int64, v uint64) bool { return s.m.Insert(k, &v) }

func (s *svMap) Lookup(k int64) (uint64, bool) {
	p, ok := s.m.Lookup(k)
	if !ok {
		return 0, false
	}
	return *p, true
}

func (s *svMap) Remove(k int64) bool { return s.m.Remove(k) }

func (s *svMap) Len() int { return s.m.Len() }

func (s *svMap) RangeUpdate(lo, hi int64, fn func(k int64, v uint64) uint64) int {
	return s.m.RangeUpdate(lo, hi, func(k int64, v *uint64) *uint64 {
		nv := fn(k, *v)
		return &nv
	})
}

// Stats exposes the underlying skip vector counters (for ablation output).
func (s *svMap) Stats() core.StatsSnapshot { return s.m.Stats() }

// Metricser is implemented by adapters whose structure exposes a telemetry
// view; svbench uses it to serve and snapshot Prometheus metrics for the
// structure under test.
type Metricser interface {
	Metrics() *telemetry.View
}

var _ Metricser = (*svMap)(nil)

// Metrics exposes the skip vector's metric catalog (per-map registry plus the
// process-global seqlock/vectormap instruments).
func (s *svMap) Metrics() *telemetry.View { return s.m.Metrics() }

var _ Sessioner = (*svMap)(nil)

// NewSession pins a per-worker handle (and with it a search finger).
func (s *svMap) NewSession() Session {
	return &svSession{owner: s, h: s.m.NewHandle()}
}

// BatchWriter is the extra session capability the batch-update figure
// drives: upserts issued one key at a time and the same keys as one
// ApplyBatch call.
type BatchWriter interface {
	Upsert(k int64, v uint64) bool
	UpsertBatch(ks []int64)
}

// svSession is a worker-pinned view of a skip vector.
type svSession struct {
	owner *svMap
	h     *core.Handle[uint64]
	// ops is the reusable ApplyBatch request slice, so the batched side of
	// the figure measures the commit path rather than allocation.
	ops []core.BatchOp[uint64]
}

var _ BatchWriter = (*svSession)(nil)

func (ss *svSession) Insert(k int64, v uint64) bool { return ss.h.Insert(k, &v) }

func (ss *svSession) Upsert(k int64, v uint64) bool { return ss.h.Upsert(k, &v) }

func (ss *svSession) UpsertBatch(ks []int64) {
	ops := ss.ops[:0]
	// One value block per batch instead of one allocation per key — the
	// arena-style value handling batch callers get for free.
	vals := make([]uint64, len(ks))
	for i, k := range ks {
		vals[i] = uint64(k)
		ops = append(ops, core.BatchOp[uint64]{Key: k, Val: &vals[i]})
	}
	ss.ops = ops
	ss.h.ApplyBatch(ops)
}

func (ss *svSession) Lookup(k int64) (uint64, bool) {
	p, ok := ss.h.Lookup(k)
	if !ok {
		return 0, false
	}
	return *p, true
}

func (ss *svSession) Remove(k int64) bool { return ss.h.Remove(k) }

func (ss *svSession) Len() int { return ss.owner.Len() }

func (ss *svSession) Close() { ss.h.Close() }

// fslMap adapts the lock-free skip list baseline.
type fslMap struct {
	l *skiplist.List[uint64]
}

// NewFSL builds the Fraser-style lock-free skip list adapter.
func NewFSL() IntMap { return &fslMap{l: skiplist.New[uint64]()} }

var _ IntMap = (*fslMap)(nil)

func (f *fslMap) Insert(k int64, v uint64) bool { return f.l.Insert(k, &v) }

func (f *fslMap) Lookup(k int64) (uint64, bool) {
	p, ok := f.l.Lookup(k)
	if !ok {
		return 0, false
	}
	return *p, true
}

func (f *fslMap) Remove(k int64) bool { return f.l.Remove(k) }

func (f *fslMap) Len() int { return f.l.Len() }

// bltMap adapts the B-link tree comparator (the concurrent B+ tree the
// paper could not find an implementation of; see internal/blink).
type bltMap struct {
	t *blink.Tree[uint64]
}

// NewBLinkTree builds the B-link tree adapter.
func NewBLinkTree() IntMap { return &bltMap{t: blink.New[uint64]()} }

var _ IntMap = (*bltMap)(nil)

func (b *bltMap) Insert(k int64, v uint64) bool { return b.t.Insert(k, &v) }

func (b *bltMap) Lookup(k int64) (uint64, bool) {
	p, ok := b.t.Lookup(k)
	if !ok {
		return 0, false
	}
	return *p, true
}

func (b *bltMap) Remove(k int64) bool { return b.t.Remove(k) }

func (b *bltMap) Len() int { return b.t.Len() }
