package bench

import (
	"math"
	"testing"
	"time"
)

// TestFigRebalanceQuick smokes the skew/rebalance figure at quick scale and
// enforces what a 1-vCPU CI host can honestly enforce: the trial completes
// with zero lost sentinel writes (runSkewTrial fails the figure otherwise),
// the planner actually split the hot shard, the forced-churn open-loop
// phase survived real migrations, and every reported number is usable. The
// throughput gate itself (RebalanceSpeedupTarget) binds only where the
// workers can run in parallel — RebalanceEnforceable — with the same noise
// allowance the other quick gates use.
func TestFigRebalanceQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if RebalanceSpeedupTarget <= 1 {
		t.Fatalf("rebalance target %v ≤ 1 gates nothing", RebalanceSpeedupTarget)
	}
	s := QuickScale()
	s.Duration = 120 * time.Millisecond
	tb, err := FigRebalance(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.XValues) != 2 || tb.XValues[0] != "frozen" || tb.XValues[1] != "auto" {
		t.Fatalf("rows = %v, want [frozen auto]", tb.XValues)
	}
	ops, ratio := tb.Col("ops/s"), tb.Col("x-vs-frozen")
	shards, migs, p999 := tb.Col("shards-after"), tb.Col("migrations"), tb.Col("p999-us")
	if ops < 0 || ratio < 0 || shards < 0 || migs < 0 || p999 < 0 {
		t.Fatalf("missing columns: %v", tb.Columns)
	}
	for i, label := range tb.XValues {
		if v := tb.Cells[i][ops]; v <= 0 || math.IsNaN(v) {
			t.Fatalf("row %q reports no throughput: %v", label, v)
		}
		if v := tb.Cells[i][p999]; v <= 0 || math.IsNaN(v) {
			t.Fatalf("row %q reports no p999: %v", label, v)
		}
	}
	if n := tb.Cells[0][shards]; n != rebalanceInitialShards {
		t.Errorf("frozen row moved boundaries: %v shards", n)
	}
	if n := tb.Cells[1][shards]; n <= rebalanceInitialShards {
		t.Errorf("auto row never split the hot shard: %v shards after", n)
	}
	if n := tb.Cells[1][migs]; n < 1 {
		t.Errorf("open-loop phase saw no migrations: %v", n)
	}
	r := tb.Cells[1][ratio]
	t.Logf("auto/frozen ratio %.3f (target %.2f where enforceable)", r, RebalanceSpeedupTarget)
	threads := s.Threads[len(s.Threads)-1]
	if RebalanceEnforceable(threads) && r < RebalanceSpeedupTarget*0.85 {
		t.Errorf("auto/frozen ratio %.3f below target %.2f on an enforceable host",
			r, RebalanceSpeedupTarget)
	}
}
