package bench

import (
	"context"
	"fmt"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"skipvector/internal/workload"
)

// TrialConfig describes one timed throughput trial (one point on one curve
// of a figure).
type TrialConfig struct {
	// Threads is the number of worker goroutines.
	Threads int
	// Duration is the measured interval. The paper uses 5s; scaled-down
	// reproductions use shorter trials.
	Duration time.Duration
	// KeyRange is the key-space size; keys are drawn from [0,KeyRange).
	KeyRange int64
	// Mix is the operation mixture.
	Mix workload.Mix
	// Zipf, if nonzero, draws keys from a scrambled Zipfian with this theta
	// instead of the uniform distribution.
	Zipf float64
	// SeqWindow, if nonzero, draws keys in sequential ascending runs of this
	// length (jumping to a random start between runs) instead of the uniform
	// distribution — the locality extreme for the search-finger sweep.
	SeqWindow int64
	// RangeSpan is the width of range operations for OpRange.
	RangeSpan int64
	// Seed makes the trial deterministic.
	Seed uint64
	// SkipPrefill leaves the structure empty rather than half-full.
	SkipPrefill bool
}

// Validate checks the trial parameters.
func (c *TrialConfig) Validate() error {
	switch {
	case c.Threads < 1:
		return fmt.Errorf("bench: Threads %d < 1", c.Threads)
	case c.Duration <= 0:
		return fmt.Errorf("bench: non-positive duration")
	case c.KeyRange < 2:
		return fmt.Errorf("bench: KeyRange %d < 2", c.KeyRange)
	}
	if c.Mix.RangePct > 0 && c.RangeSpan <= 0 {
		return fmt.Errorf("bench: range ops requested with RangeSpan %d", c.RangeSpan)
	}
	if c.Zipf > 0 && c.SeqWindow > 0 {
		return fmt.Errorf("bench: Zipf and SeqWindow are mutually exclusive")
	}
	return c.Mix.Validate()
}

// TrialResult reports one trial's outcome.
type TrialResult struct {
	Ops        int64
	Elapsed    time.Duration
	Throughput float64 // operations per second
}

// Prefill loads m with half the keys of [0,keyRange) in pseudo-random
// order, sharded across goroutines the way the paper prefills "in a
// NUMA-fair way".
func Prefill(m IntMap, keyRange int64, seed uint64, threads int) {
	pf := workload.NewPrefiller(keyRange, seed)
	total := pf.Count()
	if threads < 1 {
		threads = 1
	}
	var wg sync.WaitGroup
	chunk := (total + int64(threads) - 1) / int64(threads)
	for t := 0; t < threads; t++ {
		from := int64(t) * chunk
		to := from + chunk
		if to > total {
			to = total
		}
		if from >= to {
			break
		}
		wg.Add(1)
		go func(from, to int64) {
			defer wg.Done()
			pf.Keys(from, to, func(k int64) { m.Insert(k, uint64(k)) })
		}(from, to)
	}
	wg.Wait()
}

// RunTrial executes one timed trial against m and returns its throughput.
func RunTrial(m IntMap, cfg TrialConfig) (TrialResult, error) {
	if err := cfg.Validate(); err != nil {
		return TrialResult{}, err
	}
	if !cfg.SkipPrefill {
		Prefill(m, cfg.KeyRange, cfg.Seed, cfg.Threads)
	}

	var (
		stop   atomic.Bool
		start  sync.WaitGroup
		done   sync.WaitGroup
		counts = make([]int64, cfg.Threads)
	)
	root := workload.NewRNG(cfg.Seed ^ 0xabcdef)
	var sharedZipf *workload.ZipfKeys
	if cfg.Zipf > 0 {
		sharedZipf = workload.NewZipfKeys(root.Split(), cfg.KeyRange, cfg.Zipf, cfg.Seed)
	}

	start.Add(1)
	for t := 0; t < cfg.Threads; t++ {
		rng := root.Split()
		var keys workload.KeyGen
		switch {
		case sharedZipf != nil:
			keys = sharedZipf.WithRNG(rng)
		case cfg.SeqWindow > 0:
			keys = workload.NewSeqWindow(rng, cfg.KeyRange, cfg.SeqWindow)
		default:
			keys = workload.NewUniform(rng, cfg.KeyRange)
		}
		done.Add(1)
		go func(id int, rng *workload.RNG, keys workload.KeyGen) {
			defer done.Done()
			// Label the worker for CPU profiles: `go tool pprof -tagfocus`
			// can then separate worker time by goroutine and key
			// distribution when svbench runs under -cpuprofile.
			labels := pprof.Labels(
				"sv_worker", strconv.Itoa(id),
				"sv_keys", keyGenLabel(cfg),
			)
			pprof.Do(context.Background(), labels, func(context.Context) {
				// Workers operate through a pinned session when the structure
				// offers one, so per-handle state (the search finger) sticks to
				// this goroutine instead of shuffling through the shared pool.
				view := m
				if sp, ok := m.(Sessioner); ok {
					sess := sp.NewSession()
					defer sess.Close()
					view = sess
				}
				start.Wait()
				var local int64
				rm, _ := m.(RangeMap)
				for !stop.Load() {
					// Batch 64 operations between stop checks to keep the
					// control overhead off the measured path.
					for i := 0; i < 64; i++ {
						k := keys.Next()
						switch cfg.Mix.Next(rng) {
						case workload.OpLookup:
							view.Lookup(k)
						case workload.OpInsert:
							view.Insert(k, uint64(k))
						case workload.OpRemove:
							view.Remove(k)
						case workload.OpRange:
							lo := k
							hi := lo + cfg.RangeSpan - 1
							if rm != nil {
								rm.RangeUpdate(lo, hi, func(_ int64, v uint64) uint64 {
									return v + 1
								})
							} else {
								view.Lookup(k)
							}
						}
						local++
					}
				}
				counts[id] = local
			})
		}(t, rng, keys)
	}

	begin := time.Now()
	start.Done()
	timer := time.NewTimer(cfg.Duration)
	<-timer.C
	stop.Store(true)
	done.Wait()
	elapsed := time.Since(begin)

	var total int64
	for _, c := range counts {
		total += c
	}
	return TrialResult{
		Ops:        total,
		Elapsed:    elapsed,
		Throughput: float64(total) / elapsed.Seconds(),
	}, nil
}

// keyGenLabel names the trial's key distribution for profile labels.
func keyGenLabel(cfg TrialConfig) string {
	switch {
	case cfg.Zipf > 0:
		return fmt.Sprintf("zipf%.1f", cfg.Zipf)
	case cfg.SeqWindow > 0:
		return fmt.Sprintf("seq%d", cfg.SeqWindow)
	default:
		return "uniform"
	}
}

// RunAveraged runs the trial reps times on fresh structures and returns the
// mean throughput, matching the paper's "average of five runs" protocol.
func RunAveraged(v Variant, cfg TrialConfig, reps int) (float64, error) {
	if reps < 1 {
		reps = 1
	}
	var sum float64
	for i := 0; i < reps; i++ {
		c := cfg
		c.Seed = cfg.Seed + uint64(i)*0x9e37
		res, err := RunTrial(v.New(cfg.KeyRange), c)
		if err != nil {
			return 0, fmt.Errorf("%s: %w", v.Name, err)
		}
		sum += res.Throughput
	}
	return sum / float64(reps), nil
}
