package bench

import (
	"fmt"
	"math/bits"
	"sync"
	"time"

	"skipvector/internal/workload"
)

// Open-loop load generation. The closed-loop trial (RunTrial) measures
// capacity: workers issue the next op the instant the previous one returns,
// so a slow op silently delays every op queued behind it and per-op timings
// understate tail latency — the coordinated-omission trap. The open-loop
// trial measures latency under a fixed arrival rate instead: each worker
// follows a precomputed arrival schedule, and every op's latency is measured
// from its SCHEDULED arrival time, not from when the worker got around to
// issuing it. An op that waits behind a stalled predecessor is charged the
// queueing delay it actually imposed on its notional client, so tail
// percentiles reflect what an outside observer would see.

// OpenLoopConfig describes one fixed-rate latency trial.
type OpenLoopConfig struct {
	// Threads is the number of load-generator goroutines; the total Rate is
	// divided evenly among them.
	Threads int
	// Rate is the total arrival rate across all workers, ops/second.
	Rate float64
	// Duration is the generation interval (measurement stops with it).
	Duration time.Duration
	// KeyRange is the key-space size; keys are drawn from [0,KeyRange).
	KeyRange int64
	// UpsertPct of ops are upserts; the rest are lookups.
	UpsertPct int
	// Zipf, if nonzero, draws keys Zipfian with this theta instead of
	// uniformly.
	Zipf float64
	// Seed makes the trial deterministic.
	Seed uint64
	// SkipPrefill leaves the structure empty rather than half-full.
	SkipPrefill bool
}

// Validate checks the trial parameters.
func (c *OpenLoopConfig) Validate() error {
	switch {
	case c.Threads < 1:
		return fmt.Errorf("bench: Threads %d < 1", c.Threads)
	case c.Rate <= 0:
		return fmt.Errorf("bench: Rate %v <= 0", c.Rate)
	case c.Duration <= 0:
		return fmt.Errorf("bench: non-positive duration")
	case c.KeyRange < 2:
		return fmt.Errorf("bench: KeyRange %d < 2", c.KeyRange)
	case c.UpsertPct < 0 || c.UpsertPct > 100:
		return fmt.Errorf("bench: UpsertPct %d outside [0,100]", c.UpsertPct)
	}
	return nil
}

// OpenLoopResult reports one fixed-rate trial: how much of the offered load
// completed and the completion-latency percentiles, measured from scheduled
// arrival.
type OpenLoopResult struct {
	Scheduled int64 // ops the schedule offered inside Duration
	Completed int64 // ops that finished (all of them — workers drain the backlog)
	Achieved  float64
	P50       time.Duration
	P95       time.Duration
	P99       time.Duration
	P999      time.Duration
	Max       time.Duration
}

// RunOpenLoop drives m at cfg.Rate for cfg.Duration and returns the latency
// distribution. Workers run through pinned sessions when available (the
// sessions must be BatchWriters when UpsertPct > 0, which both skip vector
// adapters are).
func RunOpenLoop(m IntMap, cfg OpenLoopConfig) (OpenLoopResult, error) {
	if err := cfg.Validate(); err != nil {
		return OpenLoopResult{}, err
	}
	if !cfg.SkipPrefill {
		Prefill(m, cfg.KeyRange, cfg.Seed, cfg.Threads)
	}

	interval := float64(time.Second) / (cfg.Rate / float64(cfg.Threads))
	root := workload.NewRNG(cfg.Seed ^ 0x0be11)
	var sharedZipf *workload.ZipfKeys
	if cfg.Zipf > 0 {
		sharedZipf = workload.NewZipfKeys(root.Split(), cfg.KeyRange, cfg.Zipf, cfg.Seed)
	}

	hists := make([]*latHist, cfg.Threads)
	var wg sync.WaitGroup
	begin := time.Now()
	for t := 0; t < cfg.Threads; t++ {
		rng := root.Split()
		var keys workload.KeyGen
		if sharedZipf != nil {
			keys = sharedZipf.WithRNG(rng)
		} else {
			keys = workload.NewUniform(rng, cfg.KeyRange)
		}
		h := newLatHist()
		hists[t] = h
		wg.Add(1)
		go func(rng *workload.RNG, keys workload.KeyGen, h *latHist) {
			defer wg.Done()
			view := m
			if sp, ok := m.(Sessioner); ok {
				sess := sp.NewSession()
				defer sess.Close()
				view = sess
			}
			up, _ := view.(BatchWriter)
			var issued int64
			for {
				sched := begin.Add(time.Duration(float64(issued) * interval))
				// Generation stops when the next arrival falls past the trial
				// window; ops already scheduled are always issued and
				// measured, however late — that backlog IS the tail.
				if sched.Sub(begin) >= cfg.Duration {
					return
				}
				if wait := time.Until(sched); wait > 0 {
					time.Sleep(wait)
				}
				k := keys.Next()
				if up != nil && int(rng.Intn(100)) < cfg.UpsertPct {
					up.Upsert(k, uint64(k))
				} else {
					view.Lookup(k)
				}
				h.observe(int64(time.Since(sched)))
				issued++
			}
		}(rng, keys, h)
	}
	wg.Wait()

	merged := newLatHist()
	for _, h := range hists {
		merged.merge(h)
	}
	res := OpenLoopResult{
		Scheduled: merged.count,
		Completed: merged.count,
		Achieved:  float64(merged.count) / time.Since(begin).Seconds(),
		P50:       time.Duration(merged.percentile(0.50)),
		P95:       time.Duration(merged.percentile(0.95)),
		P99:       time.Duration(merged.percentile(0.99)),
		P999:      time.Duration(merged.percentile(0.999)),
		Max:       time.Duration(merged.max),
	}
	return res, nil
}

// latHist is an HDR-style log-linear histogram over nanosecond latencies:
// exact below 2^latSubBits, then latSubBuckets linear sub-buckets per
// power-of-two octave, bounding the relative quantization error of any
// reported percentile at 1/latSubBuckets (6.25%) while spanning the full
// int64 range in ~1 KiB of counters.
type latHist struct {
	counts []int64
	count  int64
	max    int64
}

const (
	latSubBits    = 4
	latSubBuckets = 1 << latSubBits // 16
	// Octaves latSubBits..62 each contribute latSubBuckets buckets on top of
	// the exact low range.
	latBuckets = latSubBuckets + (63-latSubBits)*latSubBuckets
)

func newLatHist() *latHist { return &latHist{counts: make([]int64, latBuckets)} }

// latBucket maps a nanosecond value to its bucket index.
func latBucket(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < latSubBuckets {
		return int(v)
	}
	exp := 63 - bits.LeadingZeros64(uint64(v)) // ≥ latSubBits
	sub := int(v>>(exp-latSubBits)) & (latSubBuckets - 1)
	i := (exp-latSubBits+1)*latSubBuckets + sub
	if i >= latBuckets {
		i = latBuckets - 1
	}
	return i
}

// latUpper is the inclusive upper bound of bucket i — the value percentile
// reports, so quantization only ever rounds a percentile up, never down.
func latUpper(i int) int64 {
	if i < latSubBuckets {
		return int64(i)
	}
	o := i/latSubBuckets - 1 + latSubBits // octave exponent
	sub := int64(i%latSubBuckets) + latSubBuckets
	return (sub+1)<<(o-latSubBits) - 1
}

func (h *latHist) observe(v int64) {
	h.counts[latBucket(v)]++
	h.count++
	if v > h.max {
		h.max = v
	}
}

func (h *latHist) merge(o *latHist) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.count += o.count
	if o.max > h.max {
		h.max = o.max
	}
}

// percentile returns the q-quantile's bucket upper bound, clamped to the
// observed maximum (the top bucket's bound can exceed it).
func (h *latHist) percentile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	target := int64(q*float64(h.count) + 0.5)
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			if ub := latUpper(i); ub < h.max {
				return ub
			}
			return h.max
		}
	}
	return h.max
}
