package bench

import (
	"fmt"
	"strings"
)

// Table is a figure's data in row/column form: one row per X value (thread
// count, key range, parameter value), one column per series (variant).
type Table struct {
	Title   string
	XLabel  string
	Columns []string
	XValues []string
	Cells   [][]float64 // Cells[row][col]
}

// NewTable allocates a table with the given axes.
func NewTable(title, xlabel string, columns []string) *Table {
	return &Table{Title: title, XLabel: xlabel, Columns: columns}
}

// AddRow appends one X value's measurements (must match len(Columns)).
func (t *Table) AddRow(x string, values []float64) {
	if len(values) != len(t.Columns) {
		panic(fmt.Sprintf("bench: row with %d values for %d columns", len(values), len(t.Columns)))
	}
	t.XValues = append(t.XValues, x)
	row := make([]float64, len(values))
	copy(row, values)
	t.Cells = append(t.Cells, row)
}

// Render formats the table as aligned text, throughputs in Mops/s.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", t.Title)
	w := 12
	for _, c := range t.Columns {
		if len(c)+2 > w {
			w = len(c) + 2
		}
	}
	for _, x := range t.XValues {
		if len(x)+2 > w {
			w = len(x) + 2
		}
	}
	fmt.Fprintf(&b, "%-*s", w, t.XLabel)
	for _, c := range t.Columns {
		fmt.Fprintf(&b, "%*s", w, c)
	}
	b.WriteByte('\n')
	for i, x := range t.XValues {
		fmt.Fprintf(&b, "%-*s", w, x)
		for _, v := range t.Cells[i] {
			fmt.Fprintf(&b, "%*s", w, formatOps(v))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// formatOps renders a throughput in human units.
func formatOps(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fK", v/1e3)
	default:
		return fmt.Sprintf("%.1f", v)
	}
}

// CSV renders the table as comma-separated values with raw numbers.
func (t *Table) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s", csvEscape(t.XLabel))
	for _, c := range t.Columns {
		fmt.Fprintf(&b, ",%s", csvEscape(c))
	}
	b.WriteByte('\n')
	for i, x := range t.XValues {
		fmt.Fprintf(&b, "%s", csvEscape(x))
		for _, v := range t.Cells[i] {
			fmt.Fprintf(&b, ",%.1f", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// Best returns the column with the highest value in the given row (for
// quick who-wins assertions in tests and summaries).
func (t *Table) Best(row int) string {
	best, bestV := "", -1.0
	for c, v := range t.Cells[row] {
		if v > bestV {
			best, bestV = t.Columns[c], v
		}
	}
	return best
}

// Col returns the column index for a series name, or -1.
func (t *Table) Col(name string) int {
	for i, c := range t.Columns {
		if c == name {
			return i
		}
	}
	return -1
}
