package bench

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"skipvector/internal/shard"
	"skipvector/internal/workload"
)

// Rebalancing gate. FigRebalance runs the same 50/50 upsert+get closed loop
// as FigShard but with a range-concentrated Zipfian key stream — ranks used
// directly as keys, so the hot head is physically adjacent and lands in one
// shard — over frozen boundaries versus the automatic rebalancer. The ratio
// column is the acceptance gate:
//
// RebalanceSpeedupTarget requires the auto-split run to reach ≥1.3× the
// frozen-boundary throughput. The speedup comes from the planner splitting
// the hot shard so its traffic commits into multiple maps on multiple cores,
// so — like ShardScaleoutTarget — the gate is enforced only where the
// hardware can schedule the workers in parallel (RebalanceEnforceable); the
// ratio is still reported in every artifact. The trial also proves "zero
// lost operations" directly: every worker interleaves a read-your-writes
// sentinel on a private key through the whole run, so a write dropped by a
// migration fails the figure rather than shading a number.
const RebalanceSpeedupTarget = 1.3

// rebalanceInitialShards is the frozen/auto starting shard count (the
// acceptance criterion says ≥4).
const rebalanceInitialShards = 4

// RebalanceEnforceable reports whether the speedup gate's premise holds on
// this machine: the trial's workers need their own cores for a hot-shard
// split to buy parallelism (and at least the initial shard count of them,
// so the split traffic has somewhere to go).
func RebalanceEnforceable(threads int) bool {
	return threads >= rebalanceInitialShards &&
		runtime.NumCPU() >= threads && runtime.GOMAXPROCS(0) >= threads
}

// FigRebalance produces the skew/rebalance table: frozen boundaries vs the
// automatic rebalancer on a hot-ranked Zipfian stream, plus an open-loop
// p999 measured while a driver forces continuous split/merge churn — the
// "bounded tail during migration" row. Columns: throughput, ratio vs
// frozen, shard count after the trial (>initial proves the planner split),
// forced migrations survived during the open-loop phase, and p999.
func FigRebalance(s Scale) (*Table, error) {
	// The rebalance figure measures boundary ADAPTATION, not capacity, so
	// it runs a smaller key range than the scaling sweep: a hot-shard
	// migration must be completable well inside the trial window even
	// where the migrator shares one core with the workers, or the planner
	// can never converge within any honest measurement.
	exp := s.SensitivityRangeExp - 4
	if exp < 10 {
		exp = 10
	}
	keyRange := Pow2(exp)
	threads := s.Threads[len(s.Threads)-1]
	const theta = 0.9
	t := NewTable(
		fmt.Sprintf("Rebalancing: 50/50 upsert+get, hot-ranked zipf %.1f, %d initial shards, 2^%d key range",
			theta, rebalanceInitialShards, exp),
		"policy", []string{"ops/s", "x-vs-frozen", "shards-after", "migrations", "p999-us"})

	frozen, err := runRebalanceRow(s, keyRange, threads, theta, false)
	if err != nil {
		return nil, fmt.Errorf("rebalance frozen: %w", err)
	}
	auto, err := runRebalanceRow(s, keyRange, threads, theta, true)
	if err != nil {
		return nil, fmt.Errorf("rebalance auto: %w", err)
	}
	ratio := 0.0
	if frozen.throughput > 0 {
		ratio = auto.throughput / frozen.throughput
	}
	t.AddRow("frozen", []float64{frozen.throughput, 1.0,
		float64(frozen.shards), float64(frozen.migrations),
		float64(frozen.p999) / float64(time.Microsecond)})
	t.AddRow("auto", []float64{auto.throughput, ratio,
		float64(auto.shards), float64(auto.migrations),
		float64(auto.p999) / float64(time.Microsecond)})
	return t, nil
}

// rebalanceRow is one policy's measurements.
type rebalanceRow struct {
	throughput float64
	shards     int
	migrations int
	p999       time.Duration
}

// runRebalanceRow measures one policy: closed-loop throughput on the skewed
// stream (with the rebalancer running for auto), then an open-loop tail run
// at half that capacity — under forced split/merge churn for auto, so the
// p999 is measured across live migrations, not beside them.
func runRebalanceRow(s Scale, keyRange int64, threads int, theta float64, auto bool) (rebalanceRow, error) {
	// Tick fast enough that the planner can converge inside the warmup
	// window even at quick scale; MinOps stays high enough to ignore noise.
	interval := s.Duration / 20
	if interval < 2*time.Millisecond {
		interval = 2 * time.Millisecond
	}
	if interval > 200*time.Millisecond {
		interval = 200 * time.Millisecond
	}
	var (
		m     IntMap
		sm    *shardedMap
		tpSum float64
	)
	for rep := 0; rep < s.Reps; rep++ {
		m = NewShardedSV(keyRange, rebalanceInitialShards)
		sm = m.(*shardedMap)
		if auto {
			if err := sm.s.StartRebalancer(shard.RebalanceConfig{
				Interval:  interval,
				MinOps:    512,
				MaxShards: 4 * rebalanceInitialShards,
			}); err != nil {
				return rebalanceRow{}, err
			}
		}
		res, err := runSkewTrial(m, skewTrialConfig{
			Threads:  threads,
			Warmup:   2 * s.Duration, // splits must land before the measured window
			Duration: s.Duration,
			KeyRange: keyRange,
			Theta:    theta,
			Seed:     s.Seed ^ 0x4eb + uint64(rep)*0x9e37,
		})
		sm.s.StopRebalancer()
		if err != nil {
			return rebalanceRow{}, err
		}
		tpSum += res.Throughput
	}
	row := rebalanceRow{throughput: tpSum / float64(s.Reps), shards: sm.s.ShardCount()}

	// Open-loop tail at half capacity. For the auto row a driver forces a
	// split/merge oscillation on shard 0 for the whole window, so every
	// arrival races a live migration; the sentinel workers above already
	// proved no write is lost, this proves the tail stays bounded.
	var (
		churnStop chan struct{}
		churnDone chan struct{}
		churned   atomic.Int64
	)
	if auto {
		// The planner is stopped; a driver forces the churn instead.
		churnStop, churnDone = make(chan struct{}), make(chan struct{})
		go func() {
			defer close(churnDone)
			for {
				select {
				case <-churnStop:
					return
				default:
				}
				var err error
				var rep shard.Migration
				if sm.s.ShardCount() > rebalanceInitialShards {
					rep, err = sm.s.MergeShards(0)
				} else if i, mid, ok := widestShardMid(sm.s.Bounds(), keyRange); ok {
					rep, err = sm.s.SplitShard(i, mid)
				} else {
					return
				}
				if err == nil && !rep.Aborted {
					churned.Add(1)
				}
				// Pace the churn: the figure measures the tail while
				// migrations are in flight, not under back-to-back copy
				// saturation no deployment would schedule.
				time.Sleep(10 * time.Millisecond)
			}
		}()
	}
	ol, err := RunOpenLoop(m, OpenLoopConfig{
		Threads:   threads,
		Rate:      row.throughput / 2,
		Duration:  s.Duration,
		KeyRange:  keyRange,
		UpsertPct: 50,
		Zipf:      theta,
		Seed:      s.Seed ^ 0x01e8,
	})
	if auto {
		close(churnStop)
		<-churnDone
		row.migrations = int(churned.Load())
	}
	if err != nil {
		return rebalanceRow{}, err
	}
	row.p999 = ol.P999
	return row, nil
}

// widestShardMid picks the widest shard once intervals are clamped to the
// populated key space [0, keyRange) and returns its index and midpoint —
// always a legal split key for that shard, whatever boundaries earlier
// planner splits or churn merges left behind.
func widestShardMid(splits []int64, keyRange int64) (int, int64, bool) {
	lo := int64(0)
	best, bestWidth := -1, int64(0)
	var bestLo int64
	for i := 0; i <= len(splits); i++ {
		hi := keyRange
		if i < len(splits) {
			hi = splits[i]
			if hi > keyRange {
				hi = keyRange
			}
		}
		if hi > lo && hi-lo > bestWidth {
			best, bestWidth, bestLo = i, hi-lo, lo
		}
		if i < len(splits) {
			lo = splits[i]
		}
	}
	if best < 0 || bestWidth < 2 {
		return 0, 0, false
	}
	return best, bestLo + bestWidth/2, true
}

// skewTrialConfig parameterizes one hot-ranked closed-loop trial.
type skewTrialConfig struct {
	Threads  int
	Warmup   time.Duration
	Duration time.Duration
	KeyRange int64
	Theta    float64
	Seed     uint64
}

// runSkewTrial is runShardTrial's range-skewed sibling: 50/50 upsert+get
// through pinned sessions, keys drawn from an UNSCRAMBLED Zipfian (rank 0
// hottest, ranks adjacent) so the hot mass concentrates in the lowest
// shard's interval. Throughput is measured after a warmup window — the auto
// policy needs the warmup for its splits to converge — and every worker
// threads a read-your-writes sentinel on a private key (above the Zipf
// range, so no other worker can touch it) through the run: a migration that
// drops or resurrects a write fails the trial instead of skewing a number.
func runSkewTrial(m IntMap, cfg skewTrialConfig) (TrialResult, error) {
	if cfg.Threads < 1 || cfg.Duration <= 0 || cfg.KeyRange < 128 {
		return TrialResult{}, fmt.Errorf("bench: bad skew trial config %+v", cfg)
	}
	sp, ok := m.(Sessioner)
	if !ok {
		return TrialResult{}, fmt.Errorf("bench: %T offers no sessions; the skew trial needs them", m)
	}
	Prefill(m, cfg.KeyRange, cfg.Seed, cfg.Threads)
	hotRange := cfg.KeyRange - 64 // sentinel keys live in [hotRange, keyRange)

	var (
		stop   atomic.Bool
		start  sync.WaitGroup
		done   sync.WaitGroup
		failMu sync.Mutex
		fail   error
		counts = make([]atomic.Int64, cfg.Threads)
	)
	root := workload.NewRNG(cfg.Seed ^ 0xabcdef)
	start.Add(1)
	for t := 0; t < cfg.Threads; t++ {
		rng := root.Split()
		done.Add(1)
		go func(id int, rng *workload.RNG) {
			defer done.Done()
			keys := workload.NewZipf(rng, hotRange, cfg.Theta)
			sentinel := hotRange + int64(id)
			sess := sp.NewSession()
			defer sess.Close()
			bw := sess.(BatchWriter)
			start.Wait()
			var local, seq int64
			for !stop.Load() {
				for i := 0; i < 64; i++ {
					k := keys.Next()
					if rng.Intn(2) == 0 {
						bw.Upsert(k, uint64(k))
					} else {
						sess.Lookup(k)
					}
					local++
				}
				seq++
				bw.Upsert(sentinel, uint64(seq))
				if got, ok := sess.Lookup(sentinel); !ok || got != uint64(seq) {
					failMu.Lock()
					if fail == nil {
						fail = fmt.Errorf("bench: worker %d lost write %d=%d (got %d,%t)",
							id, sentinel, seq, got, ok)
					}
					failMu.Unlock()
					return
				}
				counts[id].Store(local)
			}
		}(t, rng)
	}

	start.Done()
	time.Sleep(cfg.Warmup)
	warm := make([]int64, cfg.Threads)
	for i := range counts {
		warm[i] = counts[i].Load()
	}
	begin := time.Now()
	time.Sleep(cfg.Duration)
	var total int64
	for i := range counts {
		total += counts[i].Load() - warm[i]
	}
	elapsed := time.Since(begin)
	stop.Store(true)
	done.Wait()
	if fail != nil {
		return TrialResult{}, fail
	}
	return TrialResult{
		Ops:        total,
		Elapsed:    elapsed,
		Throughput: float64(total) / elapsed.Seconds(),
	}, nil
}
