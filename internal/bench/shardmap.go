package bench

import (
	"strconv"

	"skipvector/internal/core"
	"skipvector/internal/shard"
	"skipvector/internal/telemetry"
)

// shardedMap adapts shard.Sharded to the harness interfaces. Each shard is
// sized for its slice of the key space (keyRange/shards expected keys at the
// prefill level), so the sharded variant pays for its shard count in fixed
// overhead, not in oversized towers.
type shardedMap struct {
	s *shard.Sharded[uint64]
}

// NewShardedSV builds a key-range sharded skip vector over [0, keyRange)
// with evenly spaced boundaries.
func NewShardedSV(keyRange int64, shards int) IntMap {
	per := keyRange / int64(shards)
	if per < 2 {
		per = 2
	}
	cfg := svConfig(per, 32, 32, core.ReclaimHazard)
	s, err := shard.New[uint64](cfg, shard.EvenBounds(0, keyRange, shards))
	if err != nil {
		panic("bench: " + err.Error())
	}
	return &shardedMap{s: s}
}

// ShardedVariant names a sharded skip vector for sweep legends.
func ShardedVariant(shards int) Variant {
	return Variant{
		Name: "SV-SHARD-" + strconv.Itoa(shards),
		New:  func(r int64) IntMap { return NewShardedSV(r, shards) },
	}
}

var (
	_ IntMap    = (*shardedMap)(nil)
	_ RangeMap  = (*shardedMap)(nil)
	_ Sessioner = (*shardedMap)(nil)
	_ Metricser = (*shardedMap)(nil)
)

func (s *shardedMap) Insert(k int64, v uint64) bool { return s.s.Insert(k, &v) }

func (s *shardedMap) Lookup(k int64) (uint64, bool) {
	p, ok := s.s.Lookup(k)
	if !ok {
		return 0, false
	}
	return *p, true
}

func (s *shardedMap) Remove(k int64) bool { return s.s.Remove(k) }

func (s *shardedMap) Len() int { return s.s.Len() }

func (s *shardedMap) RangeUpdate(lo, hi int64, fn func(k int64, v uint64) uint64) int {
	return s.s.RangeUpdate(lo, hi, func(k int64, v *uint64) *uint64 {
		nv := fn(k, *v)
		return &nv
	})
}

// Metrics rolls the router registry and every shard's labeled registry (plus
// the process-global instruments) into one view.
func (s *shardedMap) Metrics() *telemetry.View { return s.s.Metrics() }

// NewSession pins a per-worker sharded handle: one core session per shard the
// worker touches, lazily opened, so per-shard key locality becomes finger
// hits exactly as on the single map.
func (s *shardedMap) NewSession() Session {
	return &shardSession{owner: s, h: s.s.NewHandle()}
}

// shardSession is a worker-pinned view of a sharded skip vector.
type shardSession struct {
	owner *shardedMap
	h     *shard.Handle[uint64]
	ops   []core.BatchOp[uint64]
}

var _ BatchWriter = (*shardSession)(nil)

func (ss *shardSession) Insert(k int64, v uint64) bool { return ss.h.Insert(k, &v) }

func (ss *shardSession) Upsert(k int64, v uint64) bool { return ss.h.Upsert(k, &v) }

func (ss *shardSession) UpsertBatch(ks []int64) {
	ops := ss.ops[:0]
	vals := make([]uint64, len(ks))
	for i, k := range ks {
		vals[i] = uint64(k)
		ops = append(ops, core.BatchOp[uint64]{Key: k, Val: &vals[i]})
	}
	ss.ops = ops
	ss.h.ApplyBatch(ops)
}

func (ss *shardSession) Lookup(k int64) (uint64, bool) {
	p, ok := ss.h.Lookup(k)
	if !ok {
		return 0, false
	}
	return *p, true
}

func (ss *shardSession) Remove(k int64) bool { return ss.h.Remove(k) }

func (ss *shardSession) Len() int { return ss.owner.Len() }

func (ss *shardSession) Close() { ss.h.Close() }
