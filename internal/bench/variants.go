package bench

import (
	"fmt"
	"math"

	"skipvector/internal/core"
)

// Variant is a named data-structure configuration under test. The factory
// takes the key range so chunked variants can size their layer count.
type Variant struct {
	Name string
	New  func(keyRange int64) IntMap
}

// MinLayers returns the minimum layer count that preserves the skip vector's
// asymptotic guarantees for n expected elements (Section IV-B): enough index
// layers that the expected top layer shrinks to a single chunk. This is the
// "adjusting layerCount to the minimum value needed" rule of Figure 7a.
func MinLayers(n int64, targetData, targetIndex int) int {
	if n < 2 {
		return 1
	}
	dataNodes := float64(n) / float64(targetData)
	layers := 1
	for nodes := dataNodes; nodes > 1 && layers < core.MaxLayers; layers++ {
		if targetIndex <= 1 {
			// Un-chunked index layers halve like a classic skip list
			// (heights are geometric with p=1/2 when T_I=1... p=1/T_I
			// degenerates; use 2 to mimic the paper's USL/SL baselines).
			nodes /= 2
		} else {
			nodes /= float64(targetIndex)
		}
	}
	return layers
}

// uslHeightBase is the geometric base used for un-chunked index layers: with
// TargetIndexVectorSize=1 the paper's p = 1/T_I distribution degenerates, so
// the USL/SL variants follow the classic skip list's p = 1/2.
const uslHeightBase = 2

// svConfig builds a skip vector configuration for the given key range, with
// the expected stable size n = keyRange/2 (the prefill level).
func svConfig(keyRange int64, targetData, targetIndex int, reclaim core.ReclaimMode) core.Config {
	cfg := core.DefaultConfig()
	cfg.TargetDataVectorSize = targetData
	cfg.TargetIndexVectorSize = targetIndex
	cfg.Reclaim = reclaim
	heightIndex := targetIndex
	if heightIndex < uslHeightBase {
		heightIndex = uslHeightBase
	}
	cfg.LayerCount = MinLayers(keyRange/2, targetData, heightIndex)
	if cfg.LayerCount < 2 {
		cfg.LayerCount = 2
	}
	return cfg
}

// Standard variants from the paper's evaluation (Section V-A legends).
// Default tuning: targetData = targetIndex = 32 ("SV"); USL removes index
// chunking; SL removes all chunking; FSL is the lock-free skip list.
var (
	// SVHP is the skip vector with hazard-pointer reclamation ("SV-HP").
	SVHP = Variant{Name: "SV-HP", New: func(r int64) IntMap {
		return NewSkipVector(svConfig(r, 32, 32, core.ReclaimHazard))
	}}
	// SVLeak is the skip vector without reclamation ("SV-Leak").
	SVLeak = Variant{Name: "SV-Leak", New: func(r int64) IntMap {
		return NewSkipVector(svConfig(r, 32, 32, core.ReclaimLeak))
	}}
	// USLHP is the unrolled-skip-list approximation: chunked data layer,
	// un-chunked index layers ("USL-HP").
	USLHP = Variant{Name: "USL-HP", New: func(r int64) IntMap {
		return NewSkipVector(svConfig(r, 32, 1, core.ReclaimHazard))
	}}
	// USLLeak is the leaky unrolled skip list ("USL-Leak").
	USLLeak = Variant{Name: "USL-Leak", New: func(r int64) IntMap {
		return NewSkipVector(svConfig(r, 32, 1, core.ReclaimLeak))
	}}
	// SLHP is the fully un-chunked skip-list configuration ("SL-HP").
	SLHP = Variant{Name: "SL-HP", New: func(r int64) IntMap {
		return NewSkipVector(svConfig(r, 1, 1, core.ReclaimHazard))
	}}
	// SVNoFinger is the skip vector with the search finger disabled — the
	// ablation baseline for the locality sweep.
	SVNoFinger = Variant{Name: "SV-NoFinger", New: func(r int64) IntMap {
		cfg := svConfig(r, 32, 32, core.ReclaimHazard)
		cfg.DisableFinger = true
		return NewSkipVector(cfg)
	}}
	// FSL is the lock-free skip list baseline ("FSL").
	FSL = Variant{Name: "FSL", New: func(r int64) IntMap {
		return NewFSL()
	}}
	// BLT is the B-link tree comparator (Section V-A's missing concurrent
	// B+ tree, built in internal/blink on the same seqlock primitive).
	BLT = Variant{Name: "BLT", New: func(r int64) IntMap {
		return NewBLinkTree()
	}}
)

// ScalabilityVariants is the Figure 4/5 legend.
func ScalabilityVariants() []Variant {
	return []Variant{SVHP, SVLeak, USLHP, USLLeak, FSL}
}

// TunedSV returns a skip vector variant with explicit chunk parameters (for
// the Figure 7 sensitivity sweeps).
func TunedSV(name string, targetData, targetIndex int, sortedIndex, sortedData bool) Variant {
	return Variant{Name: name, New: func(r int64) IntMap {
		cfg := svConfig(r, targetData, targetIndex, core.ReclaimHazard)
		cfg.SortedIndex = sortedIndex
		cfg.SortedData = sortedData
		return NewSkipVector(cfg)
	}}
}

// checkVariantName guards against duplicate legend entries in experiment
// definitions.
func checkVariantNames(vs []Variant) error {
	seen := map[string]bool{}
	for _, v := range vs {
		if seen[v.Name] {
			return fmt.Errorf("bench: duplicate variant %q", v.Name)
		}
		seen[v.Name] = true
	}
	return nil
}

// Pow2 returns 2^e as an int64 (a readability helper for key ranges).
func Pow2(e int) int64 {
	if e < 0 || e > 62 {
		panic(fmt.Sprintf("bench: Pow2(%d) out of range", e))
	}
	return int64(math.Pow(2, float64(e)))
}
