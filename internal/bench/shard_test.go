package bench

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestLatHistBucketRoundtrip pins the log-linear histogram's two contracts:
// every value lands in a bucket whose bounds contain it, and latUpper is the
// inclusive upper bound (percentiles round up, never down) within the
// 1/latSubBuckets relative error budget.
func TestLatHistBucketRoundtrip(t *testing.T) {
	values := []int64{0, 1, 15, 16, 17, 31, 32, 100, 1000, 4095, 4096,
		1 << 20, (1 << 20) + 7, 1<<40 + 12345, 1<<62 - 1}
	for _, v := range values {
		i := latBucket(v)
		if i < 0 || i >= latBuckets {
			t.Fatalf("latBucket(%d) = %d out of range", v, i)
		}
		ub := latUpper(i)
		if ub < v {
			t.Fatalf("latUpper(latBucket(%d)) = %d < value (rounds down)", v, ub)
		}
		if v >= latSubBuckets {
			if rel := float64(ub-v) / float64(v); rel > 1.0/latSubBuckets {
				t.Fatalf("value %d: upper bound %d overshoots by %.4f (> %.4f)",
					v, ub, rel, 1.0/latSubBuckets)
			}
		} else if ub != v {
			t.Fatalf("exact range: latUpper(latBucket(%d)) = %d", v, ub)
		}
		// Bucket indices are monotone in the value.
		if v > 0 && latBucket(v-1) > i {
			t.Fatalf("latBucket not monotone at %d", v)
		}
	}
	if latBucket(-5) != 0 {
		t.Fatal("negative latency must clamp to bucket 0")
	}
}

func TestLatHistPercentiles(t *testing.T) {
	h := newLatHist()
	// 100 observations: 1..100 microseconds.
	for i := int64(1); i <= 100; i++ {
		h.observe(i * int64(time.Microsecond))
	}
	if h.count != 100 {
		t.Fatalf("count = %d", h.count)
	}
	p50 := h.percentile(0.50)
	p99 := h.percentile(0.99)
	if p50 < 50*int64(time.Microsecond) || p50 > 54*int64(time.Microsecond) {
		t.Fatalf("p50 = %v", time.Duration(p50))
	}
	if p99 < 99*int64(time.Microsecond) || p99 > h.max {
		t.Fatalf("p99 = %v (max %v)", time.Duration(p99), time.Duration(h.max))
	}
	if h.percentile(1.0) != h.max {
		t.Fatalf("p100 = %v, want max %v", time.Duration(h.percentile(1.0)), time.Duration(h.max))
	}
	// Ordering must hold for any distribution.
	if !(h.percentile(0.5) <= h.percentile(0.95) && h.percentile(0.95) <= h.percentile(0.999)) {
		t.Fatal("percentiles not monotone")
	}
	// Merge doubles the counts and preserves the max.
	m := newLatHist()
	m.merge(h)
	m.merge(h)
	if m.count != 200 || m.max != h.max {
		t.Fatalf("merge: count %d max %d", m.count, m.max)
	}
	// Empty histogram reports zeros.
	if e := newLatHist(); e.percentile(0.99) != 0 {
		t.Fatal("empty histogram percentile != 0")
	}
}

// TestRunOpenLoopSmoke drives a short fixed-rate trial against the sharded
// adapter and sanity-checks the result: the schedule was honored, every
// scheduled op completed, and the percentiles are ordered.
func TestRunOpenLoopSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := RunOpenLoop(NewShardedSV(1<<12, 4), OpenLoopConfig{
		Threads:   2,
		Rate:      20000,
		Duration:  100 * time.Millisecond,
		KeyRange:  1 << 12,
		UpsertPct: 50,
		Seed:      42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 || res.Completed != res.Scheduled {
		t.Fatalf("completed %d of %d scheduled", res.Completed, res.Scheduled)
	}
	// 20k ops/s × 100ms ≈ 2000 ops; the schedule is deterministic so the
	// count is exact per worker (±1 for the boundary arrival).
	if res.Scheduled < 1500 || res.Scheduled > 2100 {
		t.Fatalf("scheduled %d, want ≈2000", res.Scheduled)
	}
	if !(res.P50 <= res.P95 && res.P95 <= res.P99 && res.P99 <= res.P999 && res.P999 <= res.Max) {
		t.Fatalf("percentiles not ordered: %+v", res)
	}
	if res.Max <= 0 {
		t.Fatalf("max latency %v", res.Max)
	}

	// Config validation rejects nonsense.
	for _, bad := range []OpenLoopConfig{
		{Threads: 0, Rate: 1, Duration: time.Second, KeyRange: 8},
		{Threads: 1, Rate: 0, Duration: time.Second, KeyRange: 8},
		{Threads: 1, Rate: 1, Duration: 0, KeyRange: 8},
		{Threads: 1, Rate: 1, Duration: time.Second, KeyRange: 1},
		{Threads: 1, Rate: 1, Duration: time.Second, KeyRange: 8, UpsertPct: 101},
	} {
		if _, err := RunOpenLoop(NewShardedSV(8, 1), bad); err == nil {
			t.Fatalf("config %+v accepted", bad)
		}
	}
}

// TestFigShardQuick is the sharding sweep's smoke gate, mirroring the other
// figure smokes: run the shards×threads sweep at quick scale and enforce the
// parity floor with a noise allowance. Short trials on a shared CI core
// jitter by tens of percent in BOTH directions, so a below-floor cell is
// retried on a fresh sweep: a real router regression is systematic and fails
// every attempt, scheduler noise does not repeat. The allowance-free gates —
// every schedulable cell ≥ ShardParityFloor and the 8-shard/8-thread uniform
// cell ≥ ShardScaleoutTarget where ShardScaleoutEnforceable — apply to the
// checked-in paper-scale artifact (BENCH_shard.json).
func TestFigShardQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if ShardParityFloor >= 1 {
		t.Fatalf("parity floor %v ≥ 1; sharding may cost a little, not nothing", ShardParityFloor)
	}
	if ShardScaleoutTarget <= 1 {
		t.Fatalf("scale-out target %v ≤ 1 gates nothing", ShardScaleoutTarget)
	}
	quickFloor := ShardParityFloor * 0.85
	const attempts = 3
	var violations []string
	for attempt := 0; attempt < attempts; attempt++ {
		s := QuickScale()
		s.Duration = 150 * time.Millisecond
		s.Reps = 2
		s.Seed += uint64(attempt) * 0x51ab
		tables, err := FigShard(s)
		if err != nil {
			t.Fatal(err)
		}
		if len(tables) != 2 {
			t.Fatalf("FigShard tables = %d, want uniform + zipf", len(tables))
		}
		violations = violations[:0]
		wantRows := len(s.Threads) * len(s.ShardCounts)
		for _, tb := range tables {
			if len(tb.XValues) != wantRows {
				t.Fatalf("%q rows = %d, want %d", tb.Title, len(tb.XValues), wantRows)
			}
			ratioCol := tb.Col("x-vs-1shard")
			p99Col := tb.Col("p99-us")
			if ratioCol < 0 || p99Col < 0 {
				t.Fatalf("%q missing gate columns: %v", tb.Title, tb.Columns)
			}
			for i, label := range tb.XValues {
				r := tb.Cells[i][ratioCol]
				if r <= 0 || math.IsNaN(r) || math.IsInf(r, 0) {
					t.Fatalf("row %q reports no usable ratio: %v", label, r)
				}
				if p := tb.Cells[i][p99Col]; p <= 0 || math.IsNaN(p) {
					t.Fatalf("row %q reports no usable p99: %v", label, p)
				}
				// The floor binds only where the host can schedule the cell's
				// workers; oversubscribed cells measure time-slicing, not
				// routing cost.
				var rowThreads, rowShards int
				if _, err := fmt.Sscanf(label, "T%d/S%d", &rowThreads, &rowShards); err != nil {
					t.Fatalf("row label %q: %v", label, err)
				}
				if r < quickFloor && rowThreads <= runtime.NumCPU() {
					violations = append(violations, fmt.Sprintf(
						"%q row %q: ratio %.3f below quick floor %.2f (gate %.2f at paper scale)",
						tb.Title, label, r, quickFloor, ShardParityFloor))
					continue
				}
				t.Logf("%q row %q: ratio %.3f", tb.Title, label, r)
			}
			// The scale-out gate only binds where the hardware can host it; the
			// quick scale also rarely includes the 8/8 cell. Assert when both
			// hold.
			if ShardScaleoutEnforceable() && strings.Contains(tb.Title, "uniform") {
				for i, label := range tb.XValues {
					if label == "T8/S8" && tb.Cells[i][ratioCol] < ShardScaleoutTarget*0.85 {
						violations = append(violations, fmt.Sprintf(
							"scale-out cell %q: ratio %.3f below target %.1f",
							label, tb.Cells[i][ratioCol], ShardScaleoutTarget))
					}
				}
			}
		}
		if len(violations) == 0 {
			return
		}
		t.Logf("attempt %d: %d cells below floor, retrying on a fresh sweep", attempt+1, len(violations))
	}
	for _, v := range violations {
		t.Error(v)
	}
}
