package core

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"skipvector/internal/chaos"
	"skipvector/internal/lincheck"
)

// stressChaosConfig is the injector tuning shared by the chaos stress
// suite: frequent forced validation/CAS failures drive the restart and
// checkpoint-resume paths, yields and occasional delays stretch the
// freeze/split/merge/orphan windows other goroutines must navigate.
// SV_SEED (via stressSeed) replaces the per-test seed for replays; the
// chaos.Report each campaign logs on completion prints the seed in effect.
func stressChaosConfig(seed uint64) chaos.Config {
	return chaos.Config{
		Seed:       stressSeed(seed),
		FailOneIn:  48,
		YieldOneIn: 24,
		DelayOneIn: 4096,
		Delay:      5 * time.Microsecond,
	}
}

// TestChaosStressDifferential runs chaos-perturbed concurrent workloads
// against a mutex-guarded reference map. Each goroutine owns a disjoint
// key stripe, so its (skip vector op, reference op) pairs need not be
// atomic and every operation's result is exactly predicted by the
// reference. The run ends with a full content comparison and
// CheckInvariants, proving the forced interleavings never corrupted the
// structure.
func TestChaosStressDifferential(t *testing.T) {
	cfgs := map[string]Config{
		"tiny-chunks": testConfigs()["tiny-chunks"],
		"default":     testConfigs()["default"],
		"leak":        testConfigs()["leak"],
	}
	for name, cfg := range cfgs {
		t.Run(name, func(t *testing.T) {
			const goroutines = 6
			opsPerG := 2500
			if testing.Short() {
				opsPerG = 600
			}
			m := newTestMap(t, cfg)
			ref := make(map[int64]int64)
			var refMu sync.Mutex

			seed := uint64(0xd1ff + len(name))
			chaos.Enable(stressChaosConfig(seed))
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					base := int64(g) * 10_000 // disjoint stripe per goroutine
					rng := rand.New(rand.NewSource(int64(g) + 42))
					for i := 0; i < opsPerG; i++ {
						k := base + int64(rng.Intn(256))
						switch rng.Intn(6) {
						case 0, 1:
							v := int64(i)
							got := m.Insert(k, &v)
							refMu.Lock()
							_, had := ref[k]
							if got == had {
								refMu.Unlock()
								t.Errorf("Insert(%d) = %t but reference had=%t (chaos seed %#x)", k, got, had, seed)
								return
							}
							if got {
								ref[k] = v
							}
							refMu.Unlock()
						case 2:
							got := m.Remove(k)
							refMu.Lock()
							_, had := ref[k]
							if got != had {
								refMu.Unlock()
								t.Errorf("Remove(%d) = %t but reference had=%t (chaos seed %#x)", k, got, had, seed)
								return
							}
							delete(ref, k)
							refMu.Unlock()
						default:
							v, got := m.Lookup(k)
							refMu.Lock()
							want, had := ref[k]
							if got != had || (got && *v != want) {
								refMu.Unlock()
								t.Errorf("Lookup(%d) mismatch (chaos seed %#x)", k, seed)
								return
							}
							refMu.Unlock()
						}
					}
				}(g)
			}
			wg.Wait()
			rep := chaos.Disable()
			t.Logf("%v", rep)
			if t.Failed() {
				return
			}
			if rep.Fails() == 0 || rep.Perturbations() == 0 {
				t.Fatalf("chaos injected nothing: %v", rep)
			}
			// Differential sweep: the map must equal the reference exactly.
			if m.Len() != len(ref) {
				t.Fatalf("Len = %d, reference holds %d", m.Len(), len(ref))
			}
			for k, want := range ref {
				v, ok := m.Lookup(k)
				if !ok || *v != want {
					t.Fatalf("key %d: got (%v,%t), want %d", k, v, ok, want)
				}
			}
			for _, k := range m.Keys() {
				if _, ok := ref[k]; !ok {
					t.Fatalf("map holds key %d absent from reference", k)
				}
			}
			mustCheck(t, m)
		})
	}
}

// TestChaosStressSharedKeys hammers a small shared key space under chaos
// so every forced failure lands amid real contention, then verifies the
// per-key accounting identity and the structural invariants. Insertion
// races, merge/freeze collisions, and hand-over-hand removals all run
// against injected yields here.
func TestChaosStressSharedKeys(t *testing.T) {
	cfg := testConfigs()["tiny-chunks"]
	const goroutines, keySpace = 8, 48
	opsPerG := 2000
	if testing.Short() {
		opsPerG = 500
	}
	m := newTestMap(t, cfg)
	var inserts, removes [keySpace]atomic.Int64
	chaos.Enable(stressChaosConfig(0x5a7ed))
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < opsPerG; i++ {
				k := int64(rng.Intn(keySpace))
				switch rng.Intn(3) {
				case 0:
					if m.Insert(k, v64(k)) {
						inserts[k].Add(1)
					}
				case 1:
					if m.Remove(k) {
						removes[k].Add(1)
					}
				default:
					if v, found := m.Lookup(k); found && *v != k {
						t.Errorf("Lookup(%d) = %d", k, *v)
						return
					}
				}
			}
		}(int64(g) + 5)
	}
	wg.Wait()
	rep := chaos.Disable()
	t.Logf("%v", rep)
	if t.Failed() {
		return
	}
	if rep.Sites[chaos.SeqlockValidate].Fails == 0 {
		t.Fatalf("no forced validation failures under contention: %v", rep)
	}
	mustCheck(t, m)
	for k := 0; k < keySpace; k++ {
		diff := inserts[k].Load() - removes[k].Load()
		if diff != 0 && diff != 1 {
			t.Fatalf("key %d: inserts-removes = %d", k, diff)
		}
		_, present := m.Lookup(int64(k))
		if present != (diff == 1) {
			t.Fatalf("key %d: present=%t but diff=%d", k, present, diff)
		}
	}
}

// TestChaosStressRangeOps runs serializable range queries and updates
// against chaos-perturbed point mutations: forced upgrade failures hit
// lockedRange's acquisition loop and yields stretch its locked window.
func TestChaosStressRangeOps(t *testing.T) {
	cfg := testConfigs()["tiny-chunks"]
	const keySpace = 192
	iters := 120
	if testing.Short() {
		iters = 40
	}
	m := newTestMap(t, cfg)
	for k := int64(0); k < keySpace; k += 2 {
		m.Insert(k, v64(k))
	}
	chaos.Enable(stressChaosConfig(0xa11f))
	var stop atomic.Bool
	var mutators, readers sync.WaitGroup
	for g := 0; g < 3; g++ {
		mutators.Add(1)
		go func(seed int64) {
			defer mutators.Done()
			rng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				k := int64(rng.Intn(keySpace))
				if rng.Intn(2) == 0 {
					m.Insert(k, v64(k))
				} else {
					m.Remove(k)
				}
			}
		}(int64(g) + 11)
	}
	for g := 0; g < 3; g++ {
		readers.Add(1)
		go func(seed int64) {
			defer readers.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				lo := int64(rng.Intn(keySpace))
				hi := lo + int64(rng.Intn(64))
				prev := int64(-1)
				m.RangeQuery(lo, hi, func(k int64, v *int64) bool {
					if k < lo || k > hi || k <= prev || v == nil || *v != k {
						t.Errorf("inconsistent range scan [%d,%d] at key %d", lo, hi, k)
						return false
					}
					prev = k
					return true
				})
				if t.Failed() {
					return
				}
			}
		}(int64(g) + 101)
	}
	readers.Wait()
	stop.Store(true)
	mutators.Wait()
	rep := chaos.Disable()
	t.Logf("%v", rep)
	if t.Failed() {
		return
	}
	mustCheck(t, m)
}

// TestChaosLinearizability records short concurrent histories while chaos
// forces the restart paths, and checks each against the sequential map
// specification — the hard interleavings must stay linearizable, not just
// structurally sound.
func TestChaosLinearizability(t *testing.T) {
	cfg := testConfigs()["tiny-chunks"]
	rounds := 40
	if testing.Short() {
		rounds = 12
	}
	const (
		procs    = 3
		opsEach  = 4
		keySpace = 3
	)
	seed := uint64(0x11c)
	chaos.Enable(stressChaosConfig(seed))
	defer chaos.Disable()
	for round := 0; round < rounds; round++ {
		m := newTestMap(t, cfg)
		rec := lincheck.NewRecorder()
		var wg sync.WaitGroup
		for p := 0; p < procs; p++ {
			wg.Add(1)
			go func(p int, rseed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(rseed))
				for i := 0; i < opsEach; i++ {
					k := int64(rng.Intn(keySpace))
					switch rng.Intn(3) {
					case 0:
						v := int64(p*1000 + i)
						inv := rec.Begin()
						ok := m.Insert(k, &v)
						rec.End(lincheck.Event{Proc: p, Kind: lincheck.KindInsert, Key: k, Val: v, RetOK: ok}, inv)
					case 1:
						inv := rec.Begin()
						ok := m.Remove(k)
						rec.End(lincheck.Event{Proc: p, Kind: lincheck.KindRemove, Key: k, RetOK: ok}, inv)
					default:
						inv := rec.Begin()
						pv, ok := m.Lookup(k)
						var rv int64
						if ok {
							rv = *pv
						}
						rec.End(lincheck.Event{Proc: p, Kind: lincheck.KindLookup, Key: k, RetOK: ok, RetVal: rv}, inv)
					}
				}
			}(p, int64(round*131+p))
		}
		wg.Wait()
		if ok, msg := lincheck.Check(rec.History()); !ok {
			t.Fatalf("round %d (chaos seed %#x): %s\n%s", round, seed, msg, m.Dump())
		}
		mustCheck(t, m)
	}
}

// TestChaosSeedReproducesSchedule drives a fixed single-goroutine workload
// twice with the same chaos seed: the recorded injection schedule and the
// resulting map contents must be identical, which is the seed-reproduction
// workflow a failing stress run's log line hands to the investigator.
func TestChaosSeedReproducesSchedule(t *testing.T) {
	run := func(seed uint64) ([]int64, chaos.Report) {
		m := newTestMap(t, testConfigs()["tiny-chunks"])
		chaos.Enable(chaos.Config{Seed: seed, FailOneIn: 16, YieldOneIn: 8, Record: true})
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 800; i++ {
			k := int64(rng.Intn(64))
			switch rng.Intn(3) {
			case 0:
				v := int64(i)
				m.Insert(k, &v)
			case 1:
				m.Remove(k)
			default:
				m.Lookup(k)
			}
		}
		rep := chaos.Disable()
		mustCheck(t, m)
		return m.Keys(), rep
	}
	keys1, rep1 := run(0x51eed)
	keys2, rep2 := run(0x51eed)
	if rep1.Steps != rep2.Steps {
		t.Fatalf("step counts differ: %d vs %d", rep1.Steps, rep2.Steps)
	}
	if len(rep1.Trace) == 0 {
		t.Fatal("no injections recorded; tuning too weak for the test")
	}
	if len(rep1.Trace) != len(rep2.Trace) {
		t.Fatalf("trace lengths differ: %d vs %d", len(rep1.Trace), len(rep2.Trace))
	}
	for i := range rep1.Trace {
		if rep1.Trace[i] != rep2.Trace[i] {
			t.Fatalf("decision %d differs: %+v vs %+v", i, rep1.Trace[i], rep2.Trace[i])
		}
	}
	if len(keys1) != len(keys2) {
		t.Fatalf("final contents differ: %d vs %d keys", len(keys1), len(keys2))
	}
	for i := range keys1 {
		if keys1[i] != keys2[i] {
			t.Fatalf("final key %d differs: %d vs %d", i, keys1[i], keys2[i])
		}
	}
}
