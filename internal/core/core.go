package core
