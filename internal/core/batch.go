package core

import (
	"sort"

	"skipvector/internal/chaos"
	"skipvector/internal/seqlock"
	"skipvector/internal/vectormap"
)

// Chunk-grouped batch updates. ApplyBatch sorts its ops, groups the runs of
// keys that fall inside one data chunk's span, and commits each run under a
// single seqlock acquisition: one traversal per group (through the search
// finger when it covers the group's first key), one lock/unlock, and a
// multi-slot apply inside the chunk, with capacity splits handled privately
// inside the held lock. The whole point of chunking — spatial locality — thus
// pays on the write path too: a batch of B keys landing in one chunk costs
// one descent and one lock round trip instead of B of each (the Jiffy
// argument, specialized to the skip vector's seqlock protocol).
//
// Two refinements keep the grouped path ahead of the singleton loop even
// when the batch has no locality (uniform keys, group size ≈ 1): a group's
// extent is bounded by the locked chunk's own exact max key — free — rather
// than by an always-paid validated walk to the successor's minimum
// (succMinBound, now reserved for groups that straddle the gap past the
// max), and consecutive groups share their position: each group records the
// rightmost node it touched, and the next group resumes from it with a
// bounded rightward walk (batchSeek) instead of a fresh descent, with an
// adaptive cutoff so batches without locality stop paying for the attempt.
//
// Linearization. Every mutation a group makes — the owning chunk's slots and
// any split orphans — is reachable only through the group's locked node, so
// nothing a group does is observable until that node's single Release. Each
// group therefore linearizes as a unit at its release; a concurrent reader
// sees either none or all of a group, never a torn prefix. Cross-group
// ordering follows key order (groups commit left to right), and ops on the
// same key resolve in request order (last write wins), so the batch as a
// whole is equivalent to executing its ops sequentially in sorted-key,
// request-tiebroken order, with each chunk-run executed atomically.
//
// Tower heights. A put may need to raise an index tower. Heights are drawn at
// sort time, once per distinct key that contains a put — before any locks are
// taken — and the rare tall keys (probability 1/T_D) are routed around the
// group commit entirely, through the ordinary singleton insert path with the
// pre-drawn height. This keeps the index-layer densities identical to
// singleton ingest: drawing under the lock and re-drawing on deferral would
// bias the distribution, and raising towers inside a group would reintroduce
// the multi-layer freeze protocol the group commit exists to amortize.

// BatchOp is one element of an ApplyBatch request.
type BatchOp[V any] struct {
	Key int64
	Val *V   // payload for puts; ignored for deletes
	Del bool // delete Key instead of writing it
	// InsertOnly makes a put succeed only when Key is absent; an existing
	// key is left untouched and reported as BatchExists. The zero value is
	// an upsert (insert-or-overwrite).
	InsertOnly bool
}

// BatchOutcome reports what one batch op did; it aliases the chunk-level
// outcome so the multi-slot apply's results pass through unchanged.
type BatchOutcome = vectormap.SlotOutcome

// Per-op outcomes: puts report BatchInserted or BatchUpdated (BatchExists
// when InsertOnly found the key), deletes report BatchRemoved or BatchAbsent.
const (
	BatchInserted = vectormap.SlotInserted
	BatchUpdated  = vectormap.SlotUpdated
	BatchRemoved  = vectormap.SlotRemoved
	BatchAbsent   = vectormap.SlotAbsent
	BatchExists   = vectormap.SlotExists
)

// BatchResult reports the outcome of one BatchOp, positionally aligned with
// the request slice.
type BatchResult struct {
	Outcome BatchOutcome
}

// batchScratch holds ApplyBatch's working buffers. Contexts are pooled, so
// the buffers amortize to zero allocations per batch; release drops the
// pointer-bearing entries so a pooled context never pins user values or
// retired nodes.
type batchScratch[V any] struct {
	order   []int
	tall    []bool
	heights []int
	slots   []vectormap.SlotOp[V]
	outs    []vectormap.SlotOutcome
	segs    []*node[V]
	segMins []int64
	commits []CommitOp[V] // commit-hook argument buffer (commit.go)

	// Group-to-group descent sharing (batchSeek): the previous group's
	// rightmost segment with the clean version it was published at. Valid
	// only *within* one batch — group keys ascend, so the hint node's span
	// is always at or left of the next group's first key, which is exactly
	// the precondition of the rightward walk. A later batch through the same
	// pooled context may start anywhere, so release() clears the hint.
	hintNode *node[V]
	hintVer  seqlock.Version
	// hintFails counts consecutive failed hint walks; at batchHintFailLimit
	// the walks stop for the rest of the batch. The reach prediction in
	// batchSeek already skips walks the hint's key span says cannot succeed
	// (uniform batches put adjacent groups thousands of chunks apart), so
	// this counter only absorbs the residue the prediction gets wrong.
	hintFails uint8
}

func (sc *batchScratch[V]) release() {
	clear(sc.slots[:cap(sc.slots)])
	clear(sc.segs[:cap(sc.segs)])
	clear(sc.commits[:cap(sc.commits)])
	sc.hintNode, sc.hintVer, sc.hintFails = nil, 0, 0
}

// batchSorter stably sorts the order permutation by op key without the
// reflection overhead of sort.Slice (the batch hot path sorts on every call).
type batchSorter[V any] struct {
	ops   []BatchOp[V]
	order []int
}

func (s *batchSorter[V]) Len() int { return len(s.order) }
func (s *batchSorter[V]) Less(a, b int) bool {
	return s.ops[s.order[a]].Key < s.ops[s.order[b]].Key
}
func (s *batchSorter[V]) Swap(a, b int) {
	s.order[a], s.order[b] = s.order[b], s.order[a]
}

// ApplyBatch applies ops and returns one result per op, in request order.
// Ops are committed in ascending key order, same-key ops in request order
// (last write wins); each run of keys owned by one data chunk commits
// atomically under a single lock acquisition. ApplyBatch is not atomic as a
// whole — concurrent readers may observe a state between two group commits —
// but every state they can observe is one the equivalent sequential op
// sequence passes through.
func (m *Map[V]) ApplyBatch(ops []BatchOp[V]) []BatchResult {
	ctx := m.ctxs.get()
	defer m.ctxs.put(ctx)
	return m.applyBatchCtx(ctx, ops)
}

// applyBatchCtx is ApplyBatch against an explicit context (shared with
// Handle.ApplyBatch).
func (m *Map[V]) applyBatchCtx(ctx *opCtx[V], ops []BatchOp[V]) []BatchResult {
	for i := range ops {
		checkKey(ops[i].Key)
	}
	results := make([]BatchResult, len(ops))
	if len(ops) == 0 {
		return results
	}
	m.batchSize.Observe(ctx.stripe, int64(len(ops)))

	// Commit order: ascending key, same-key ops in request order. Bulk loads
	// arrive presorted, so detect that before paying for a sort.
	sc := &ctx.batch
	order := sc.order[:0]
	presorted := true
	for i := range ops {
		order = append(order, i)
		if i > 0 && ops[i].Key < ops[i-1].Key {
			presorted = false
		}
	}
	sc.order = order
	if !presorted {
		sort.Stable(&batchSorter[V]{ops: ops, order: order})
	}

	// Route each distinct key (see the file comment): a key run containing a
	// put draws its tower height now; a nonzero height routes the whole run
	// through the singleton paths. tall[i] is set only at the run start.
	tall := sc.tall[:0]
	heights := sc.heights[:0]
	for range order {
		tall = append(tall, false)
		heights = append(heights, 0)
	}
	sc.tall, sc.heights = tall, heights
	for i := 0; i < len(order); {
		j := keyRunEnd(ops, order, i)
		hasPut := false
		for p := i; p < j; p++ {
			if !ops[order[p]].Del {
				hasPut = true
			}
		}
		if hasPut {
			if h := ctx.randomHeight(); h > 0 {
				tall[i], heights[i] = true, h
			}
		}
		i = j
	}

	for i := 0; i < len(order); {
		if tall[i] {
			j := keyRunEnd(ops, order, i)
			m.applyKeySingletons(ctx, ops, order[i:j], results, heights[i])
			m.batchGroupSize.Observe(ctx.stripe, int64(j-i))
			i = j
			continue
		}
		// Grouped span: every position up to the next tall run start.
		lim := i + 1
		for lim < len(order) && !tall[lim] {
			lim++
		}
		for i < lim {
			n := m.applyBatchGroup(ctx, ops, order[i:lim], results)
			m.batchGroupSize.Observe(ctx.stripe, int64(n))
			i += n
		}
	}
	sc.release()
	return results
}

// keyRunEnd returns the end (exclusive) of the run of order positions that
// share the key at position i.
func keyRunEnd[V any](ops []BatchOp[V], order []int, i int) int {
	k := ops[order[i]].Key
	j := i + 1
	for j < len(order) && ops[order[j]].Key == k {
		j++
	}
	return j
}

// applyKeySingletons replays a same-key run of batch ops through the ordinary
// singleton paths, in request order, recording per-op outcomes. height is the
// run's pre-drawn tower height (0 when the run reaches here via the min-defer
// path, whose key is already present and whose tower the top-down remove
// handles). Restarts inside these ops charge their native kinds.
func (m *Map[V]) applyKeySingletons(
	ctx *opCtx[V], ops []BatchOp[V], run []int, results []BatchResult, height int,
) {
	for _, oi := range run {
		op := &ops[oi]
		switch {
		case op.Del:
			if m.removeCtx(ctx, op.Key) {
				results[oi].Outcome = BatchRemoved
			} else {
				results[oi].Outcome = BatchAbsent
			}
		case op.InsertOnly:
			if m.insertWithHeight(ctx, op.Key, op.Val, height) {
				results[oi].Outcome = BatchInserted
			} else {
				results[oi].Outcome = BatchExists
			}
		default:
			if m.upsertWithHeight(ctx, op.Key, op.Val, height) {
				results[oi].Outcome = BatchInserted
			} else {
				results[oi].Outcome = BatchUpdated
			}
		}
	}
}

// applyBatchGroup commits a prefix of the grouped span (order positions with
// ascending keys) under one lock acquisition and returns how many positions
// it consumed (always ≥ 1).
func (m *Map[V]) applyBatchGroup(
	ctx *opCtx[V], ops []BatchOp[V], group []int, results []BatchResult,
) int {
	for {
		if n, done := m.batchGroupAttempt(ctx, ops, group, results); done {
			return n
		}
		m.restart(ctx, opBatch)
	}
}

const (
	// batchHopBudget bounds batchSeek's rightward walk from the previous
	// group's node. Adjacent groups of a locality-bearing batch sit zero or
	// one chunk apart (an empty orphan or a fresh split in between at worst);
	// past a few hops a full descent is cheaper than the validated crawl.
	batchHopBudget = 4
	// batchHintFailLimit is how many consecutive walks may fail before
	// batchSeek stops trying for the remainder of the batch.
	batchHintFailLimit = 2
)

// batchSeek positions a group commit on the data node owning k. It tries, in
// order: a bounded rightward walk from the previous group's last segment, the
// search finger, and the full descent. The hint is revalidated exactly like
// the finger: hazard pointer first, then Validate of the recorded version — a
// node that was merged away, split, or recycled since its group committed
// fails the validation (lock words are monotonic across lifetimes) and the
// walk is skipped. On success the postcondition is descendToData's: a hazard
// pointer and a validated snapshot of the owner.
func (m *Map[V]) batchSeek(ctx *opCtx[V], k int64) (*node[V], seqlock.Version, bool) {
	sc := &ctx.batch
	if h := sc.hintNode; h != nil && sc.hintFails < batchHintFailLimit {
		// Cheap triage before any hazard traffic, on speculative reads of the
		// hint's key extremes (node memory is type-stable, so a recycled hint
		// yields garbage values, not a fault — and garbage only mispredicts;
		// every value this branch acts on is re-proven below).
		//
		// The walk's entry precondition is min(h) ≤ k: a rightward walk can
		// never correct a start that is already right of the owner, and its
		// stop test (k ≤ max) would happily return such a node. The hint does
		// not guarantee this by construction — the last split segment keeps
		// the chunk's pre-existing upper keys, and when a tall-key run cuts
		// the batch's grouped span, the next group can resume below them.
		//
		// Reach prediction: the walk only pays off when the owner of k is
		// within the hop budget, and the hint's own key span is a free density
		// estimate for the chunks around it. When k lies past the hint's max
		// by more than budget× that span, the owner is almost certainly out of
		// reach — a uniform batch over a large key space puts consecutive
		// groups thousands of chunks apart — so skip the walk entirely. Both
		// subtractions are non-negative under the guards (hm ≤ k, hm ≤ hx, the
		// latter also keeping the span divisor nonzero on garbage reads), so
		// the uint64 arithmetic is exact, and dividing by the span sidesteps
		// overflow.
		hm, hasMin := h.minKey()
		hx, hasMax := h.maxKey()
		inReach := hasMin && hasMax && hm <= k && hm <= hx &&
			(k <= hx || (uint64(k)-uint64(hx))/(uint64(hx)-uint64(hm)+1) <= batchHopBudget)
		if inReach {
			prefetchNode(h)
			ctx.take(h)
			// The hazard pointer is published; a Validate now pins the
			// speculative reads above (the word still carries the version this
			// batch released, so nothing was modified or recycled since — the
			// precondition held for real) and licenses the walk.
			if h.lock.Validate(sc.hintVer) {
				if n, v, ok := m.traverseRightN(ctx, h, sc.hintVer, k, modeWrite, batchHopBudget); ok {
					sc.hintFails = 0
					m.batchDescSaved.add(ctx.stripe, 1)
					return n, v, true
				}
			}
			// Budget exhausted despite the prediction, or a validation lost a
			// race. The batch positions this group from scratch; no restart is
			// charged (nothing was locked, nothing observed inconsistently).
			ctx.dropAll()
		}
		// Any non-success — failed walk, stale hint, or an out-of-reach skip —
		// counts toward the cutoff, so a batch whose groups show no locality
		// stops even the triage loads after batchHintFailLimit strikes.
		sc.hintFails++
	}
	curr, ver, hit := m.fingerSeek(ctx, k, fingerPoint)
	if hit {
		return curr, ver, true
	}
	return m.descendToData(ctx, k, modeWrite)
}

// succMinBound resolves the exclusive upper bound of curr's span — the first
// non-empty successor's minimum — with validated reads, while the caller
// holds curr's write lock. Under that lock nothing reachable only through
// curr can be unlinked from it and no key below that minimum can appear to
// the right (either mutation routes through curr's lock), so the bound holds
// until the lock's release. Empty orphans are skipped, not waited out: the
// group's own descent stops at curr and never crosses them, so restarting
// until someone unlinks them could spin forever on a privately-owned key
// range; a skipped empty node can only gain keys at or above the returned
// bound (absorption pulls from its right), which leaves it valid. No hazard
// pointers are needed — the chain hangs off the locked curr, and a node
// recycled mid-walk fails its validation. ok=false means a validated read
// lost a race (e.g. a successor mid-split); callers either retry the whole
// group or — on the extension path — simply keep the lock-exact prefix.
func (m *Map[V]) succMinBound(curr *node[V]) (int64, bool) {
	for next := curr.next.Load(); next != nil; {
		prefetchNode(next)
		nv, ok := next.lock.ReadVersion()
		if !ok {
			return 0, false
		}
		nm, has := next.minKey()
		nn := next.next.Load()
		if !next.lock.Validate(nv) {
			return 0, false
		}
		if has {
			return nm, true
		}
		next = nn
	}
	return 0, false
}

// batchGroupAttempt performs one optimistic group commit; done=false requests
// a restart.
func (m *Map[V]) batchGroupAttempt(
	ctx *opCtx[V], ops []BatchOp[V], group []int, results []BatchResult,
) (consumed int, done bool) {
	// Between-groups injection: a forced failure restarts this group after
	// its predecessors already committed — the batch must read as a clean
	// prefix of the sequential order at every such point.
	if chaos.Fail(chaos.CoreBatch) {
		return 0, false
	}
	k0 := ops[group[0]].Key
	curr, ver, ok := m.batchSeek(ctx, k0)
	if !ok {
		return 0, false
	}
	if !curr.lock.TryUpgrade(ver) {
		return 0, false
	}
	ctx.drop(curr)

	// Mid-group injection, after the lock is taken but before any slot is
	// applied: the abort must leave no trace of the group (Abort is legal —
	// nothing has been modified — and restores the pre-acquisition word).
	if chaos.Fail(chaos.CoreBatch) {
		m.recordFinger(ctx, curr, curr.lock.Abort())
		ctx.dropAll()
		return 0, false
	}

	// Group extent. While curr's write lock is held the data layer's
	// partition is frozen at curr: no key can enter or leave curr's span
	// (linking, merging, or unlinking a neighbor all require this lock), so
	// curr.data.Bounds() is exact and every group key ≤ max(curr) is
	// provably curr's — no successor reads at all. That covers nearly every
	// group of a uniform batch (groups of one or two keys deep inside a
	// chunk), which is what lets ApplyBatch dominate the singleton loop even
	// with no locality to exploit. Keys beyond max(curr) may still be curr's
	// — they can sit in the gap before the successor's minimum — but
	// resolving that costs a validated walk of successor minima
	// (succMinBound), so it is paid only when the next group key is within
	// curr's own key span (the locality scale at hand: if the batch is dense
	// enough to land ops within one span past the chunk, it is dense enough
	// to make extending the group worthwhile) or when curr offers no
	// evidence (k0 past its max, or an empty chunk).
	g := 0
	minK, maxK, hasBounds := curr.data.Bounds()
	if hasBounds && k0 <= maxK {
		// g ≥ 1: k0 ≤ maxK. A failed extension walk just keeps this prefix —
		// never a restart.
		g = sort.Search(len(group), func(i int) bool { return ops[group[i]].Key > maxK })
		if g < len(group) && uint64(ops[group[g]].Key)-uint64(maxK) <= uint64(maxK)-uint64(minK) {
			if bound, ok := m.succMinBound(curr); ok {
				g = sort.Search(len(group), func(i int) bool { return ops[group[i]].Key >= bound })
			}
		}
	} else {
		// k0 landed in the gap past curr's max (ascending ingest) or curr is
		// empty: only the successor's minimum can prove ownership. k0 ≥
		// bound means the positioning was stale — restart.
		bound, ok := m.succMinBound(curr)
		if !ok || k0 >= bound {
			m.recordFinger(ctx, curr, curr.lock.Abort())
			ctx.dropAll()
			return 0, false
		}
		g = sort.Search(len(group), func(i int) bool { return ops[group[i]].Key >= bound })
	}

	// Min-defer: removing the minimum key of a non-orphan node must take the
	// top-down singleton path (the key may own an index tower only that pass
	// can find and unlink — the same race check as removeFromDataLayer).
	// Only k0 can be curr's minimum (all group keys are ≥ k0 ≥ curr.min),
	// and only a net removal matters: a run that leaves k0 present keeps any
	// tower entry valid, and the intermediate states stay inside the lock.
	// Splitting the group before k0 preserves cross-group key order.
	if hasBounds && minK == k0 && !curr.lock.IsOrphan() {
		run := keyRunEnd(ops, group, 0)
		// k0 starts present, every put (insert-only included) leaves it
		// present and every delete leaves it absent, so the run's last op
		// decides its net effect.
		if ops[group[run-1]].Del {
			curr.lock.Abort()
			ctx.dropAll()
			// Replay k0's ops as singletons; height 0 is correct because k0
			// is present, so any insert in the run lands as a plain re-add
			// of a just-removed data key.
			m.applyKeySingletons(ctx, ops, group[:run], results, 0)
			return run, true
		}
	}

	// Apply phase. Everything below happens under curr's write lock; split
	// orphans are linked behind curr but remain unreachable until its
	// release (reaching them requires validating curr), so the release
	// publishes all of the group's effects at once. The CoW hook runs only
	// now — every earlier exit releases with Abort, which requires the node
	// (verEpoch included) untouched. One epoch covers the group: private
	// split orphans inherit curr's freshly stamped verEpoch, so a snapshot
	// pinned before this point reads the whole group's pre-image from the
	// version store (snapshot.go).
	m.noteDataWrite(curr)
	sc := &ctx.batch
	slots := sc.slots[:0]
	outs := sc.outs[:0]
	for i := 0; i < g; i++ {
		op := &ops[group[i]]
		slots = append(slots, vectormap.SlotOp[V]{Key: op.Key, Val: op.Val, Del: op.Del, InsertOnly: op.InsertOnly})
		outs = append(outs, vectormap.SlotNone)
	}
	sc.slots, sc.outs = slots, outs

	// The segment chain: curr plus the private orphans split off so far, in
	// key order; segMins[i] bounds segment i's keys from below.
	segs := append(sc.segs[:0], curr)
	segMins := append(sc.segMins[:0], MinKey)
	si, pos := 0, 0
	for pos < g {
		// Settle on the segment owning slots[pos].Key, then apply the run of
		// slots below the following segment's minimum.
		for si+1 < len(segs) && segMins[si+1] <= slots[pos].Key {
			si++
		}
		runEnd := g
		if si+1 < len(segs) {
			runEnd = pos + sort.Search(g-pos, func(i int) bool {
				return slots[pos+i].Key >= segMins[si+1]
			})
		}
		s := segs[si]
		pos += s.data.ApplyOps(slots[pos:runEnd], outs[pos:runEnd])
		chaos.Step(chaos.CoreBatch)
		if pos < runEnd {
			// The segment filled mid-run: split its upper half into a fresh
			// private orphan and retry the remaining slots against whichever
			// half owns them. Both halves of a split are strictly below
			// capacity, so the group always makes progress.
			o, pivot := m.splitOrphanHalf(ctx, s)
			segs = append(segs, nil)
			segMins = append(segMins, 0)
			copy(segs[si+2:], segs[si+1:])
			copy(segMins[si+2:], segMins[si+1:])
			segs[si+1] = o
			segMins[si+1] = pivot
		}
	}

	sc.segs, sc.segMins = segs, segMins

	// The hint version for a split-orphan last segment must be read *before*
	// the release below makes the orphan reachable: afterwards a concurrent
	// writer could lock, mutate, and cleanly release it — or merge it away
	// and recycle it into an arbitrary position — leaving a clean word that
	// a later Validate would accept. The batch hint, unlike the finger, is
	// trusted for *position* (batchSeek walks rightward from it without
	// re-deriving ownership), so its version must prove the node unchanged
	// since this group published it. While the orphan is private its word is
	// stable and clean, making this read exact, and any post-release touch
	// then fails the hint's validation — a conservative miss.
	last := segs[len(segs)-1]
	lver := seqlock.Version(0)
	if last != curr {
		lver = last.lock.Current()
	}

	// Commit hook fires under the lock whose release linearizes the group, so
	// hook order matches group commit order for conflicting keys.
	m.logBatchGroup(ctx, slots, outs)

	// Single release: the group's linearization point.
	fver := curr.lock.Release()
	if last == curr {
		lver = fver
	}

	var delta int64
	for i := 0; i < g; i++ {
		results[group[i]] = BatchResult{Outcome: outs[i]}
		switch outs[i] {
		case vectormap.SlotInserted:
			delta++
		case vectormap.SlotRemoved:
			delta--
		}
	}
	if delta != 0 {
		m.length.add(ctx.stripe, delta)
	}
	// Remember the right end of the chain twice over: in the finger (for
	// whatever operation runs next on this context) and in the batch hint
	// (for the next group's batchSeek, which can walk right from here instead
	// of descending). The next group's keys are higher, so the last segment's
	// span starts left of them — the walk's precondition.
	m.recordFinger(ctx, last, lver)
	if !lver.Locked() && !lver.Frozen() {
		sc.hintNode, sc.hintVer = last, lver
	}
	ctx.dropAll()
	return g, true
}
