package core

import (
	"sort"

	"skipvector/internal/chaos"
	"skipvector/internal/vectormap"
)

// Chunk-grouped batch updates. ApplyBatch sorts its ops, groups the runs of
// keys that fall inside one data chunk's span, and commits each run under a
// single seqlock acquisition: one traversal per group (through the search
// finger when it covers the group's first key), one lock/unlock, and a
// multi-slot apply inside the chunk, with capacity splits handled privately
// inside the held lock. The whole point of chunking — spatial locality — thus
// pays on the write path too: a batch of B keys landing in one chunk costs
// one descent and one lock round trip instead of B of each (the Jiffy
// argument, specialized to the skip vector's seqlock protocol).
//
// Linearization. Every mutation a group makes — the owning chunk's slots and
// any split orphans — is reachable only through the group's locked node, so
// nothing a group does is observable until that node's single Release. Each
// group therefore linearizes as a unit at its release; a concurrent reader
// sees either none or all of a group, never a torn prefix. Cross-group
// ordering follows key order (groups commit left to right), and ops on the
// same key resolve in request order (last write wins), so the batch as a
// whole is equivalent to executing its ops sequentially in sorted-key,
// request-tiebroken order, with each chunk-run executed atomically.
//
// Tower heights. A put may need to raise an index tower. Heights are drawn at
// sort time, once per distinct key that contains a put — before any locks are
// taken — and the rare tall keys (probability 1/T_D) are routed around the
// group commit entirely, through the ordinary singleton insert path with the
// pre-drawn height. This keeps the index-layer densities identical to
// singleton ingest: drawing under the lock and re-drawing on deferral would
// bias the distribution, and raising towers inside a group would reintroduce
// the multi-layer freeze protocol the group commit exists to amortize.

// BatchOp is one element of an ApplyBatch request.
type BatchOp[V any] struct {
	Key int64
	Val *V   // payload for puts; ignored for deletes
	Del bool // delete Key instead of writing it
	// InsertOnly makes a put succeed only when Key is absent; an existing
	// key is left untouched and reported as BatchExists. The zero value is
	// an upsert (insert-or-overwrite).
	InsertOnly bool
}

// BatchOutcome reports what one batch op did; it aliases the chunk-level
// outcome so the multi-slot apply's results pass through unchanged.
type BatchOutcome = vectormap.SlotOutcome

// Per-op outcomes: puts report BatchInserted or BatchUpdated (BatchExists
// when InsertOnly found the key), deletes report BatchRemoved or BatchAbsent.
const (
	BatchInserted = vectormap.SlotInserted
	BatchUpdated  = vectormap.SlotUpdated
	BatchRemoved  = vectormap.SlotRemoved
	BatchAbsent   = vectormap.SlotAbsent
	BatchExists   = vectormap.SlotExists
)

// BatchResult reports the outcome of one BatchOp, positionally aligned with
// the request slice.
type BatchResult struct {
	Outcome BatchOutcome
}

// batchScratch holds ApplyBatch's working buffers. Contexts are pooled, so
// the buffers amortize to zero allocations per batch; release drops the
// pointer-bearing entries so a pooled context never pins user values or
// retired nodes.
type batchScratch[V any] struct {
	order   []int
	tall    []bool
	heights []int
	slots   []vectormap.SlotOp[V]
	outs    []vectormap.SlotOutcome
	segs    []*node[V]
	segMins []int64
}

func (sc *batchScratch[V]) release() {
	clear(sc.slots[:cap(sc.slots)])
	clear(sc.segs[:cap(sc.segs)])
}

// batchSorter stably sorts the order permutation by op key without the
// reflection overhead of sort.Slice (the batch hot path sorts on every call).
type batchSorter[V any] struct {
	ops   []BatchOp[V]
	order []int
}

func (s *batchSorter[V]) Len() int { return len(s.order) }
func (s *batchSorter[V]) Less(a, b int) bool {
	return s.ops[s.order[a]].Key < s.ops[s.order[b]].Key
}
func (s *batchSorter[V]) Swap(a, b int) {
	s.order[a], s.order[b] = s.order[b], s.order[a]
}

// ApplyBatch applies ops and returns one result per op, in request order.
// Ops are committed in ascending key order, same-key ops in request order
// (last write wins); each run of keys owned by one data chunk commits
// atomically under a single lock acquisition. ApplyBatch is not atomic as a
// whole — concurrent readers may observe a state between two group commits —
// but every state they can observe is one the equivalent sequential op
// sequence passes through.
func (m *Map[V]) ApplyBatch(ops []BatchOp[V]) []BatchResult {
	ctx := m.ctxs.get()
	defer m.ctxs.put(ctx)
	return m.applyBatchCtx(ctx, ops)
}

// applyBatchCtx is ApplyBatch against an explicit context (shared with
// Handle.ApplyBatch).
func (m *Map[V]) applyBatchCtx(ctx *opCtx[V], ops []BatchOp[V]) []BatchResult {
	for i := range ops {
		checkKey(ops[i].Key)
	}
	results := make([]BatchResult, len(ops))
	if len(ops) == 0 {
		return results
	}
	m.batchSize.Observe(ctx.stripe, int64(len(ops)))

	// Commit order: ascending key, same-key ops in request order. Bulk loads
	// arrive presorted, so detect that before paying for a sort.
	sc := &ctx.batch
	order := sc.order[:0]
	presorted := true
	for i := range ops {
		order = append(order, i)
		if i > 0 && ops[i].Key < ops[i-1].Key {
			presorted = false
		}
	}
	sc.order = order
	if !presorted {
		sort.Stable(&batchSorter[V]{ops: ops, order: order})
	}

	// Route each distinct key (see the file comment): a key run containing a
	// put draws its tower height now; a nonzero height routes the whole run
	// through the singleton paths. tall[i] is set only at the run start.
	tall := sc.tall[:0]
	heights := sc.heights[:0]
	for range order {
		tall = append(tall, false)
		heights = append(heights, 0)
	}
	sc.tall, sc.heights = tall, heights
	for i := 0; i < len(order); {
		j := keyRunEnd(ops, order, i)
		hasPut := false
		for p := i; p < j; p++ {
			if !ops[order[p]].Del {
				hasPut = true
			}
		}
		if hasPut {
			if h := ctx.randomHeight(); h > 0 {
				tall[i], heights[i] = true, h
			}
		}
		i = j
	}

	for i := 0; i < len(order); {
		if tall[i] {
			j := keyRunEnd(ops, order, i)
			m.applyKeySingletons(ctx, ops, order[i:j], results, heights[i])
			m.batchGroupSize.Observe(ctx.stripe, int64(j-i))
			i = j
			continue
		}
		// Grouped span: every position up to the next tall run start.
		lim := i + 1
		for lim < len(order) && !tall[lim] {
			lim++
		}
		for i < lim {
			n := m.applyBatchGroup(ctx, ops, order[i:lim], results)
			m.batchGroupSize.Observe(ctx.stripe, int64(n))
			i += n
		}
	}
	sc.release()
	return results
}

// keyRunEnd returns the end (exclusive) of the run of order positions that
// share the key at position i.
func keyRunEnd[V any](ops []BatchOp[V], order []int, i int) int {
	k := ops[order[i]].Key
	j := i + 1
	for j < len(order) && ops[order[j]].Key == k {
		j++
	}
	return j
}

// applyKeySingletons replays a same-key run of batch ops through the ordinary
// singleton paths, in request order, recording per-op outcomes. height is the
// run's pre-drawn tower height (0 when the run reaches here via the min-defer
// path, whose key is already present and whose tower the top-down remove
// handles). Restarts inside these ops charge their native kinds.
func (m *Map[V]) applyKeySingletons(
	ctx *opCtx[V], ops []BatchOp[V], run []int, results []BatchResult, height int,
) {
	for _, oi := range run {
		op := &ops[oi]
		switch {
		case op.Del:
			if m.removeCtx(ctx, op.Key) {
				results[oi].Outcome = BatchRemoved
			} else {
				results[oi].Outcome = BatchAbsent
			}
		case op.InsertOnly:
			if m.insertWithHeight(ctx, op.Key, op.Val, height) {
				results[oi].Outcome = BatchInserted
			} else {
				results[oi].Outcome = BatchExists
			}
		default:
			if m.upsertWithHeight(ctx, op.Key, op.Val, height) {
				results[oi].Outcome = BatchInserted
			} else {
				results[oi].Outcome = BatchUpdated
			}
		}
	}
}

// applyBatchGroup commits a prefix of the grouped span (order positions with
// ascending keys) under one lock acquisition and returns how many positions
// it consumed (always ≥ 1).
func (m *Map[V]) applyBatchGroup(
	ctx *opCtx[V], ops []BatchOp[V], group []int, results []BatchResult,
) int {
	for {
		if n, done := m.batchGroupAttempt(ctx, ops, group, results); done {
			return n
		}
		m.restart(ctx, opBatch)
	}
}

// batchGroupAttempt performs one optimistic group commit; done=false requests
// a restart.
func (m *Map[V]) batchGroupAttempt(
	ctx *opCtx[V], ops []BatchOp[V], group []int, results []BatchResult,
) (consumed int, done bool) {
	// Between-groups injection: a forced failure restarts this group after
	// its predecessors already committed — the batch must read as a clean
	// prefix of the sequential order at every such point.
	if chaos.Fail(chaos.CoreBatch) {
		return 0, false
	}
	k0 := ops[group[0]].Key
	curr, ver, hit := m.fingerSeek(ctx, k0, fingerPoint)
	if !hit {
		var ok bool
		curr, ver, ok = m.descendToData(ctx, k0, modeWrite)
		if !ok {
			return 0, false
		}
	}
	if !curr.lock.TryUpgrade(ver) {
		return 0, false
	}
	ctx.drop(curr)

	// Mid-group injection, after the lock is taken but before any slot is
	// applied: the abort must leave no trace of the group (Abort is legal —
	// nothing has been modified — and restores the pre-acquisition word).
	if chaos.Fail(chaos.CoreBatch) {
		m.recordFinger(ctx, curr, curr.lock.Abort())
		ctx.dropAll()
		return 0, false
	}

	// Resolve the exclusive upper bound of curr's span with validated reads
	// of successor minima. While curr's write lock is held, nothing reachable
	// only through curr can be unlinked from it and no key below the first
	// non-empty successor's minimum can appear to the right (either mutation
	// routes through curr's lock), so that minimum bounds the keys curr owns
	// now and until the release below. Empty orphans left behind by removals
	// are skipped, not waited out: the group's own descent stops at curr and
	// never crosses them (traverseRight returns as soon as the owner's max
	// covers the key), so restarting until someone else unlinks them can spin
	// forever on a privately-owned key range. A skipped empty node can only
	// gain keys at or above the computed bound (absorption pulls from its
	// right), which leaves the bound valid. No hazard pointers are needed:
	// the chain hangs off the locked curr, and a node recycled mid-walk fails
	// its validation (sequence numbers are monotonic across lifetimes). The
	// validated reads can still fail against a concurrent writer of a
	// successor (e.g. a split) — that only costs a restart.
	bound := int64(0)
	haveBound := false
	for next := curr.next.Load(); next != nil; {
		nv, ok := next.lock.ReadVersion()
		if !ok {
			break
		}
		nm, has := next.minKey()
		nn := next.next.Load()
		if !next.lock.Validate(nv) {
			break
		}
		if has {
			bound, haveBound = nm, true
			break
		}
		next = nn
	}
	if !haveBound || k0 >= bound {
		m.recordFinger(ctx, curr, curr.lock.Abort())
		ctx.dropAll()
		return 0, false
	}

	// The group is the longest prefix owned by curr. g ≥ 1: curr owns k0.
	g := sort.Search(len(group), func(i int) bool { return ops[group[i]].Key >= bound })
	if g == 0 {
		m.recordFinger(ctx, curr, curr.lock.Abort())
		ctx.dropAll()
		return 0, false
	}

	// Min-defer: removing the minimum key of a non-orphan node must take the
	// top-down singleton path (the key may own an index tower only that pass
	// can find and unlink — the same race check as removeFromDataLayer).
	// Only k0 can be curr's minimum (all group keys are ≥ k0 ≥ curr.min),
	// and only a net removal matters: a run that leaves k0 present keeps any
	// tower entry valid, and the intermediate states stay inside the lock.
	// Splitting the group before k0 preserves cross-group key order.
	if minK, has := curr.data.MinKey(); has && minK == k0 && !curr.lock.IsOrphan() {
		run := keyRunEnd(ops, group, 0)
		// k0 starts present, every put (insert-only included) leaves it
		// present and every delete leaves it absent, so the run's last op
		// decides its net effect.
		if ops[group[run-1]].Del {
			curr.lock.Abort()
			ctx.dropAll()
			// Replay k0's ops as singletons; height 0 is correct because k0
			// is present, so any insert in the run lands as a plain re-add
			// of a just-removed data key.
			m.applyKeySingletons(ctx, ops, group[:run], results, 0)
			return run, true
		}
	}

	// Apply phase. Everything below happens under curr's write lock; split
	// orphans are linked behind curr but remain unreachable until its
	// release (reaching them requires validating curr), so the release
	// publishes all of the group's effects at once. The CoW hook runs only
	// now — every earlier exit releases with Abort, which requires the node
	// (verEpoch included) untouched. One epoch covers the group: private
	// split orphans inherit curr's freshly stamped verEpoch, so a snapshot
	// pinned before this point reads the whole group's pre-image from the
	// version store (snapshot.go).
	m.noteDataWrite(curr)
	sc := &ctx.batch
	slots := sc.slots[:0]
	outs := sc.outs[:0]
	for i := 0; i < g; i++ {
		op := &ops[group[i]]
		slots = append(slots, vectormap.SlotOp[V]{Key: op.Key, Val: op.Val, Del: op.Del, InsertOnly: op.InsertOnly})
		outs = append(outs, vectormap.SlotNone)
	}
	sc.slots, sc.outs = slots, outs

	// The segment chain: curr plus the private orphans split off so far, in
	// key order; segMins[i] bounds segment i's keys from below.
	segs := append(sc.segs[:0], curr)
	segMins := append(sc.segMins[:0], MinKey)
	si, pos := 0, 0
	for pos < g {
		// Settle on the segment owning slots[pos].Key, then apply the run of
		// slots below the following segment's minimum.
		for si+1 < len(segs) && segMins[si+1] <= slots[pos].Key {
			si++
		}
		runEnd := g
		if si+1 < len(segs) {
			runEnd = pos + sort.Search(g-pos, func(i int) bool {
				return slots[pos+i].Key >= segMins[si+1]
			})
		}
		s := segs[si]
		pos += s.data.ApplyOps(slots[pos:runEnd], outs[pos:runEnd])
		chaos.Step(chaos.CoreBatch)
		if pos < runEnd {
			// The segment filled mid-run: split its upper half into a fresh
			// private orphan and retry the remaining slots against whichever
			// half owns them. Both halves of a split are strictly below
			// capacity, so the group always makes progress.
			o, pivot := m.splitOrphanHalf(ctx, s)
			segs = append(segs, nil)
			segMins = append(segMins, 0)
			copy(segs[si+2:], segs[si+1:])
			copy(segMins[si+2:], segMins[si+1:])
			segs[si+1] = o
			segMins[si+1] = pivot
		}
	}

	sc.segs, sc.segMins = segs, segMins

	// Single release: the group's linearization point.
	fver := curr.lock.Release()

	var delta int64
	for i := 0; i < g; i++ {
		results[group[i]] = BatchResult{Outcome: outs[i]}
		switch outs[i] {
		case vectormap.SlotInserted:
			delta++
		case vectormap.SlotRemoved:
			delta--
		}
	}
	if delta != 0 {
		m.length.add(ctx.stripe, delta)
	}
	// Remember the right end of the chain: the next group's keys are higher,
	// so they resume from the last segment. A freshly published orphan's
	// word may already be claimed by a concurrent writer; recordFinger
	// rejects locked/frozen words, making the racy Current() read safe.
	if last := segs[len(segs)-1]; last == curr {
		m.recordFinger(ctx, curr, fver)
	} else {
		m.recordFinger(ctx, last, last.lock.Current())
	}
	ctx.dropAll()
	return g, true
}
