package core

import (
	"sort"
	"testing"
)

// FuzzApplyBatch is the differential fuzzer for the batch path: the same op
// stream is applied through ApplyBatch on one map and replayed as singleton
// ops (in ApplyBatch's declared order: ascending key, same-key ops in request
// order) on a second, and the two must agree on every per-op outcome and on
// the final contents. Key space 48 over single bytes breeds duplicate keys
// inside one batch; the tiny-chunk configs make batches straddle many chunk
// boundaries and split mid-group. Run with `go test -fuzz FuzzApplyBatch`;
// plain `go test` replays the seed corpus.
func FuzzApplyBatch(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}, uint8(0), uint8(12))  // one ascending batch
	f.Add([]byte{7, 7, 7, 71, 135, 199, 7, 7}, uint8(1), uint8(8))            // duplicate-heavy
	f.Add([]byte{255, 254, 253, 128, 127, 64, 63, 0}, uint8(1), uint8(4))     // descending, mixed kinds
	f.Add([]byte{0, 64, 128, 192, 1, 65, 129, 193, 2, 66}, uint8(2), uint8(5)) // kind sweep per key
	f.Add([]byte{40, 41, 42, 43, 44, 45, 46, 47, 40, 41, 42, 43}, uint8(3), uint8(6))

	f.Fuzz(func(t *testing.T, data []byte, cfgSel uint8, batchLen uint8) {
		cfg := DefaultConfig()
		switch cfgSel % 4 {
		case 1:
			cfg.TargetDataVectorSize = 2
			cfg.TargetIndexVectorSize = 2
			cfg.LayerCount = 5
		case 2:
			cfg.LayerCount = 1
		case 3:
			cfg.TargetDataVectorSize = 1
			cfg.TargetIndexVectorSize = 1
			cfg.LayerCount = 8
			cfg.SortedData = true
		}
		if len(data) > 4096 {
			data = data[:4096]
		}
		batched := newTestMap(t, cfg)
		replay := newTestMap(t, cfg)

		bl := int(batchLen%16) + 1
		for start := 0; start < len(data); start += bl {
			end := start + bl
			if end > len(data) {
				end = len(data)
			}
			chunk := data[start:end]
			ops := make([]BatchOp[int64], len(chunk))
			for i, b := range chunk {
				k := int64(b % 48)
				v := v64(int64(start + i))
				switch (b >> 6) % 4 {
				case 0:
					ops[i] = BatchOp[int64]{Key: k, Del: true}
				case 1:
					ops[i] = BatchOp[int64]{Key: k, Val: v, InsertOnly: true}
				default:
					ops[i] = BatchOp[int64]{Key: k, Val: v}
				}
			}

			got := batched.ApplyBatch(ops)
			order := make([]int, len(ops))
			for i := range order {
				order[i] = i
			}
			sort.SliceStable(order, func(a, b int) bool { return ops[order[a]].Key < ops[order[b]].Key })
			for _, oi := range order {
				op := ops[oi]
				var want BatchOutcome
				switch {
				case op.Del:
					if replay.Remove(op.Key) {
						want = BatchRemoved
					} else {
						want = BatchAbsent
					}
				case op.InsertOnly:
					if replay.Insert(op.Key, op.Val) {
						want = BatchInserted
					} else {
						want = BatchExists
					}
				default:
					if replay.Upsert(op.Key, op.Val) {
						want = BatchInserted
					} else {
						want = BatchUpdated
					}
				}
				if got[oi].Outcome != want {
					t.Fatalf("batch at %d, op %d (%+v): ApplyBatch says %v, singleton replay says %v",
						start, oi, op, got[oi].Outcome, want)
				}
			}
		}

		if batched.Len() != replay.Len() {
			t.Fatalf("Len: batched %d ≠ replay %d", batched.Len(), replay.Len())
		}
		for k := int64(0); k < 48; k++ {
			bv, bok := batched.Lookup(k)
			rv, rok := replay.Lookup(k)
			if bok != rok {
				t.Fatalf("Lookup(%d): batched %t ≠ replay %t", k, bok, rok)
			}
			if bok && *bv != *rv {
				t.Fatalf("Lookup(%d): batched %d ≠ replay %d", k, *bv, *rv)
			}
		}
		if err := batched.CheckInvariants(); err != nil {
			t.Fatalf("batched invariants: %v\n%s", err, batched.Dump())
		}
		if err := replay.CheckInvariants(); err != nil {
			t.Fatalf("replay invariants: %v", err)
		}
	})
}
