package core

// Ordered-map navigation queries. These make the skip vector usable as a
// drop-in ordered index (floor/ceiling are what database scans and
// time-series cursors are built from) and exercise the same optimistic
// traversal machinery as Lookup: every answer is validated against the
// owning node's sequence lock before being returned, so each query is
// linearizable at its final validation.
//
// Both queries participate in the search finger: they resume from the
// remembered data node when it still owns k, and they remember the node
// their answer came from, which turns an ascending sequence of Ceiling
// calls (the Cursor pattern) into a hand-over-hand walk with no descents.

// Floor returns the largest key ≤ k and its value, or ok=false when no such
// key exists.
func (m *Map[V]) Floor(k int64) (int64, *V, bool) {
	checkKey(k)
	ctx := m.ctxs.get()
	defer m.ctxs.put(ctx)
	return m.floorCtx(ctx, k)
}

// floorCtx is Floor's retry loop against an explicit context (shared with
// Handle.Floor).
func (m *Map[V]) floorCtx(ctx *opCtx[V], k int64) (int64, *V, bool) {
	for {
		if key, v, found, ok := m.floorOnce(ctx, k); ok {
			return key, v, found
		}
		m.restart(ctx, opNav)
	}
}

func (m *Map[V]) floorOnce(ctx *opCtx[V], k int64) (key int64, v *V, found, ok bool) {
	curr, ver, hit := m.fingerSeek(ctx, k, fingerPoint)
	if !hit {
		curr, ver, ok = m.descendToData(ctx, k, modeRead)
		if !ok {
			return 0, nil, false, false
		}
	}
	fk, fv, has := curr.data.FindLE(k)
	if !curr.lock.Validate(ver) {
		return 0, nil, false, false
	}
	m.recordFinger(ctx, curr, ver)
	ctx.dropAll()
	if !has || fk == MinKey {
		// Only the head sentinel is ≤ k: no user key qualifies. (The
		// traversal already settled on the rightmost node with min ≤ k, so
		// nothing to the left can hold a larger qualifying key.)
		return 0, nil, false, true
	}
	return fk, fv, true, true
}

// Ceiling returns the smallest key ≥ k and its value, or ok=false when no
// such key exists.
func (m *Map[V]) Ceiling(k int64) (int64, *V, bool) {
	checkKey(k)
	ctx := m.ctxs.get()
	defer m.ctxs.put(ctx)
	return m.ceilingCtx(ctx, k)
}

// ceilingCtx is Ceiling's retry loop against an explicit context (shared
// with Handle.Ceiling and the public Cursor).
func (m *Map[V]) ceilingCtx(ctx *opCtx[V], k int64) (int64, *V, bool) {
	for {
		if key, v, found, ok := m.ceilingOnce(ctx, k); ok {
			return key, v, found
		}
		m.restart(ctx, opNav)
	}
}

func (m *Map[V]) ceilingOnce(ctx *opCtx[V], k int64) (key int64, v *V, found, ok bool) {
	// fingerScan also accepts k == succ.min — the walk below crosses to the
	// successor in one validated step, which is how a cursor iterating in
	// ascending order hops chunk boundaries without a descent.
	curr, ver, hit := m.fingerSeek(ctx, k, fingerScan)
	if !hit {
		curr, ver, ok = m.descendToData(ctx, k, modeRead)
		if !ok {
			return 0, nil, false, false
		}
	}
	// Walk right until a node yields a key ≥ k. The first candidate node is
	// the one owning k; successors are reached hand-over-hand with the same
	// validation discipline as traverseRight.
	for {
		ck, cv, has := curr.data.FindGE(k)
		if has {
			if !curr.lock.Validate(ver) {
				return 0, nil, false, false
			}
			if ck == MaxKey {
				ctx.dropAll()
				return 0, nil, false, true // only the tail sentinel remains
			}
			// Remember the node the answer came from (never the tail, which
			// owns no user keys and could never produce a hit).
			m.recordFinger(ctx, curr, ver)
			ctx.dropAll()
			return ck, cv, true, true
		}
		next := curr.next.Load()
		if next == nil {
			return 0, nil, false, false // torn read of a recycled node
		}
		ctx.take(next)
		if !curr.lock.Validate(ver) {
			return 0, nil, false, false
		}
		nextVer, readOK := next.lock.ReadVersion()
		if !readOK {
			return 0, nil, false, false
		}
		ctx.drop(curr)
		curr, ver = next, nextVer
	}
}

// First returns the smallest key in the map.
func (m *Map[V]) First() (int64, *V, bool) {
	return m.Ceiling(MinKey + 1)
}

// Last returns the largest key in the map.
func (m *Map[V]) Last() (int64, *V, bool) {
	return m.Floor(MaxKey - 1)
}

// firstCtx/lastCtx are the Handle-bound variants.
func (m *Map[V]) firstCtx(ctx *opCtx[V]) (int64, *V, bool) {
	return m.ceilingCtx(ctx, MinKey+1)
}

func (m *Map[V]) lastCtx(ctx *opCtx[V]) (int64, *V, bool) {
	return m.floorCtx(ctx, MaxKey-1)
}
