package core

// Ordered-map navigation queries. These make the skip vector usable as a
// drop-in ordered index (floor/ceiling are what database scans and
// time-series cursors are built from) and exercise the same optimistic
// traversal machinery as Lookup: every answer is validated against the
// owning node's sequence lock before being returned, so each query is
// linearizable at its final validation.

// Floor returns the largest key ≤ k and its value, or ok=false when no such
// key exists.
func (m *Map[V]) Floor(k int64) (int64, *V, bool) {
	checkKey(k)
	ctx := m.ctxs.get()
	defer m.ctxs.put(ctx)
	for {
		if key, v, found, ok := m.floorOnce(ctx, k); ok {
			return key, v, found
		}
		m.stats.Restarts.Add(1)
		ctx.dropAll()
	}
}

func (m *Map[V]) floorOnce(ctx *opCtx[V], k int64) (key int64, v *V, found, ok bool) {
	curr, ver, ok := m.descendToData(ctx, k, modeRead)
	if !ok {
		return 0, nil, false, false
	}
	fk, fv, has := curr.data.FindLE(k)
	if !curr.lock.Validate(ver) {
		return 0, nil, false, false
	}
	ctx.dropAll()
	if !has || fk == MinKey {
		// Only the head sentinel is ≤ k: no user key qualifies. (The
		// traversal already settled on the rightmost node with min ≤ k, so
		// nothing to the left can hold a larger qualifying key.)
		return 0, nil, false, true
	}
	return fk, fv, true, true
}

// Ceiling returns the smallest key ≥ k and its value, or ok=false when no
// such key exists.
func (m *Map[V]) Ceiling(k int64) (int64, *V, bool) {
	checkKey(k)
	ctx := m.ctxs.get()
	defer m.ctxs.put(ctx)
	for {
		if key, v, found, ok := m.ceilingOnce(ctx, k); ok {
			return key, v, found
		}
		m.stats.Restarts.Add(1)
		ctx.dropAll()
	}
}

func (m *Map[V]) ceilingOnce(ctx *opCtx[V], k int64) (key int64, v *V, found, ok bool) {
	curr, ver, ok := m.descendToData(ctx, k, modeRead)
	if !ok {
		return 0, nil, false, false
	}
	// Walk right until a node yields a key ≥ k. The first candidate node is
	// the one owning k; successors are reached hand-over-hand with the same
	// validation discipline as traverseRight.
	for {
		ck, cv, has := curr.data.FindGE(k)
		if has {
			if !curr.lock.Validate(ver) {
				return 0, nil, false, false
			}
			ctx.dropAll()
			if ck == MaxKey {
				return 0, nil, false, true // only the tail sentinel remains
			}
			return ck, cv, true, true
		}
		next := curr.next.Load()
		if next == nil {
			return 0, nil, false, false // torn read of a recycled node
		}
		ctx.take(next)
		if !curr.lock.Validate(ver) {
			return 0, nil, false, false
		}
		nextVer, readOK := next.lock.ReadVersion()
		if !readOK {
			return 0, nil, false, false
		}
		ctx.drop(curr)
		curr, ver = next, nextVer
	}
}

// First returns the smallest key in the map.
func (m *Map[V]) First() (int64, *V, bool) {
	return m.Ceiling(MinKey + 1)
}

// Last returns the largest key in the map.
func (m *Map[V]) Last() (int64, *V, bool) {
	return m.Floor(MaxKey - 1)
}
