package core

import (
	"math/rand"
	"testing"
)

// FuzzMapModel drives the skip vector with an op byte-stream cross-checked
// against a map model, over several configurations, with full invariant
// checking at stream end. Run with `go test -fuzz FuzzMapModel`; plain
// `go test` replays the seed corpus.
func FuzzMapModel(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7}, uint8(0))
	f.Add([]byte{100, 2, 250, 3, 40, 0, 0, 9, 9, 9}, uint8(1))
	f.Add([]byte{255, 254, 253, 1, 2, 3, 128, 129}, uint8(2))
	f.Add([]byte{7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7}, uint8(3))

	f.Fuzz(func(t *testing.T, ops []byte, cfgSel uint8) {
		cfg := DefaultConfig()
		switch cfgSel % 4 {
		case 1:
			cfg.TargetDataVectorSize = 2
			cfg.TargetIndexVectorSize = 2
			cfg.LayerCount = 5
		case 2:
			cfg.TargetIndexVectorSize = 1
			cfg.LayerCount = 8
		case 3:
			cfg.SortedData = true
			cfg.SortedIndex = false
			cfg.Reclaim = ReclaimLeak
		}
		m, err := NewMap[int64](cfg)
		if err != nil {
			t.Fatal(err)
		}
		model := map[int64]int64{}
		for i, b := range ops {
			k := int64(b % 64)
			switch (b >> 6) % 4 {
			case 0:
				_, inModel := model[k]
				v := k + int64(i)
				got := m.Insert(k, &v)
				if got == inModel {
					t.Fatalf("op %d: Insert(%d) = %t, model=%t", i, k, got, inModel)
				}
				if got {
					model[k] = v
				}
			case 1:
				_, inModel := model[k]
				if got := m.Remove(k); got != inModel {
					t.Fatalf("op %d: Remove(%d) = %t, model=%t", i, k, got, inModel)
				}
				delete(model, k)
			case 2:
				v, got := m.Lookup(k)
				mv, inModel := model[k]
				if got != inModel || (got && *v != mv) {
					t.Fatalf("op %d: Lookup(%d) mismatch", i, k)
				}
			default:
				// Floor query cross-check.
				var wantK int64
				want := false
				for mk := range model {
					if mk <= k && (!want || mk > wantK) {
						wantK, want = mk, true
					}
				}
				gk, _, got := m.Floor(k)
				if got != want || (got && gk != wantK) {
					t.Fatalf("op %d: Floor(%d) = %d,%t want %d,%t", i, k, gk, got, wantK, want)
				}
			}
		}
		if m.Len() != len(model) {
			t.Fatalf("Len %d != model %d", m.Len(), len(model))
		}
		if err := m.CheckInvariants(); err != nil {
			t.Fatalf("invariants: %v\n%s", err, m.Dump())
		}
	})
}

// FuzzBulkLoad exercises BulkLoad across key-count and chunk-boundary
// combinations: the loaded structure must pass full invariant checking,
// answer lookups for every loaded key and miss the gaps between them, and
// remain correct after post-load mutation. The seed corpus pins the
// boundary shapes: empty input, exactly one target-size chunk, and one key
// past an exact two-chunk fill (2×targetSize+1), for both the default
// config (targetSize 32) and the tiny-chunk one (targetSize 2).
func FuzzBulkLoad(f *testing.F) {
	f.Add(uint16(0), uint8(0), uint8(1))  // empty, default config
	f.Add(uint16(32), uint8(0), uint8(1)) // exactly targetSize
	f.Add(uint16(65), uint8(0), uint8(1)) // 2*targetSize+1
	f.Add(uint16(0), uint8(1), uint8(3))  // empty, tiny chunks
	f.Add(uint16(2), uint8(1), uint8(3))  // exactly tiny targetSize
	f.Add(uint16(5), uint8(1), uint8(3))  // 2*targetSize+1, tiny chunks
	f.Add(uint16(31), uint8(2), uint8(7)) // one short of a chunk, single layer
	f.Add(uint16(64), uint8(3), uint8(2)) // exact two-chunk fill, deep index

	f.Fuzz(func(t *testing.T, n uint16, cfgSel uint8, stride uint8) {
		cfg := DefaultConfig()
		switch cfgSel % 4 {
		case 1:
			cfg.TargetDataVectorSize = 2
			cfg.TargetIndexVectorSize = 2
			cfg.LayerCount = 5
		case 2:
			cfg.LayerCount = 1
			cfg.Reclaim = ReclaimLeak
		case 3:
			cfg.TargetIndexVectorSize = 1
			cfg.LayerCount = 8
			cfg.SortedData = true
		}
		if n > 4096 {
			n = 4096 // bound structure size, not coverage
		}
		step := int64(stride%16) + 1
		keys := make([]int64, int(n))
		for i := range keys {
			keys[i] = int64(i)*step + 1
		}
		m, err := BulkLoad[int64](cfg, keys, nil)
		if err != nil {
			t.Fatalf("BulkLoad(%d keys, step %d): %v", n, step, err)
		}
		if err := m.CheckInvariants(); err != nil {
			t.Fatalf("invariants after load: %v\n%s", err, m.Dump())
		}
		if m.Len() != len(keys) {
			t.Fatalf("Len = %d, want %d", m.Len(), len(keys))
		}
		for _, k := range keys {
			if _, ok := m.Lookup(k); !ok {
				t.Fatalf("loaded key %d missing", k)
			}
			if step > 1 {
				if _, ok := m.Lookup(k + 1); ok {
					t.Fatalf("gap key %d present", k+1)
				}
			}
		}
		// Mutate across chunk boundaries and re-check: the bulk-loaded shape
		// (perfectly packed chunks, orphaned top layer) must split and merge
		// like a grown one.
		rng := rand.New(rand.NewSource(int64(n)*31 + int64(stride)))
		for i := 0; i < 128; i++ {
			k := int64(rng.Intn(int(n)*int(step)+8)) + 1
			if rng.Intn(2) == 0 {
				m.Insert(k, &k)
			} else {
				m.Remove(k)
			}
		}
		if err := m.CheckInvariants(); err != nil {
			t.Fatalf("invariants after mutation: %v\n%s", err, m.Dump())
		}
	})
}
