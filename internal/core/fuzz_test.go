package core

import "testing"

// FuzzMapModel drives the skip vector with an op byte-stream cross-checked
// against a map model, over several configurations, with full invariant
// checking at stream end. Run with `go test -fuzz FuzzMapModel`; plain
// `go test` replays the seed corpus.
func FuzzMapModel(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7}, uint8(0))
	f.Add([]byte{100, 2, 250, 3, 40, 0, 0, 9, 9, 9}, uint8(1))
	f.Add([]byte{255, 254, 253, 1, 2, 3, 128, 129}, uint8(2))
	f.Add([]byte{7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7}, uint8(3))

	f.Fuzz(func(t *testing.T, ops []byte, cfgSel uint8) {
		cfg := DefaultConfig()
		switch cfgSel % 4 {
		case 1:
			cfg.TargetDataVectorSize = 2
			cfg.TargetIndexVectorSize = 2
			cfg.LayerCount = 5
		case 2:
			cfg.TargetIndexVectorSize = 1
			cfg.LayerCount = 8
		case 3:
			cfg.SortedData = true
			cfg.SortedIndex = false
			cfg.Reclaim = ReclaimLeak
		}
		m, err := NewMap[int64](cfg)
		if err != nil {
			t.Fatal(err)
		}
		model := map[int64]int64{}
		for i, b := range ops {
			k := int64(b % 64)
			switch (b >> 6) % 4 {
			case 0:
				_, inModel := model[k]
				v := k + int64(i)
				got := m.Insert(k, &v)
				if got == inModel {
					t.Fatalf("op %d: Insert(%d) = %t, model=%t", i, k, got, inModel)
				}
				if got {
					model[k] = v
				}
			case 1:
				_, inModel := model[k]
				if got := m.Remove(k); got != inModel {
					t.Fatalf("op %d: Remove(%d) = %t, model=%t", i, k, got, inModel)
				}
				delete(model, k)
			case 2:
				v, got := m.Lookup(k)
				mv, inModel := model[k]
				if got != inModel || (got && *v != mv) {
					t.Fatalf("op %d: Lookup(%d) mismatch", i, k)
				}
			default:
				// Floor query cross-check.
				var wantK int64
				want := false
				for mk := range model {
					if mk <= k && (!want || mk > wantK) {
						wantK, want = mk, true
					}
				}
				gk, _, got := m.Floor(k)
				if got != want || (got && gk != wantK) {
					t.Fatalf("op %d: Floor(%d) = %d,%t want %d,%t", i, k, gk, got, wantK, want)
				}
			}
		}
		if m.Len() != len(model) {
			t.Fatalf("Len %d != model %d", m.Len(), len(model))
		}
		if err := m.CheckInvariants(); err != nil {
			t.Fatalf("invariants: %v\n%s", err, m.Dump())
		}
	})
}
