package core

import (
	"skipvector/internal/chaos"
	"skipvector/internal/seqlock"
)

// Remove deletes the mapping for k, returning true when k was present
// (Listing 4). A successful Remove linearizes at the write-acquisition of
// its last lock; an unsuccessful one at the validated observation that k is
// absent from the data layer.
func (m *Map[V]) Remove(k int64) bool {
	checkKey(k)
	ctx := m.ctxs.get()
	defer m.ctxs.put(ctx)
	return m.removeCtx(ctx, k)
}

// removeCtx is Remove's retry loop against an explicit context (shared with
// Handle.Remove).
func (m *Map[V]) removeCtx(ctx *opCtx[V], k int64) bool {
	for {
		if result, done := m.removeAttempt(ctx, k); done {
			return result
		}
		m.restart(ctx, opRemove)
	}
}

// removeAttempt performs one optimistic attempt; done=false requests a
// restart.
func (m *Map[V]) removeAttempt(ctx *opCtx[V], k int64) (result, done bool) {
	// An indexed key is always the minimum of its data node, and fingerRemove
	// accepts only keys strictly above the remembered node's minimum, so a
	// finger hit proves k has no index tower: the whole descent — including
	// the per-layer search for an index entry equal to k — can be skipped.
	if fcurr, fver, hit := m.fingerSeek(ctx, k, fingerRemove); hit {
		return m.removeFromDataLayer(ctx, fcurr, fver, k)
	}

	curr := m.head
	ctx.take(curr)
	ver, ok := curr.lock.ReadVersion()
	if !ok {
		return false, false
	}

	// Descend, watching for an index entry equal to k.
	var locked *node[V] // write-locked index node containing k, if found
	for curr.isIndex() {
		curr, ver, ok = m.traverseRight(ctx, curr, ver, k, modeWrite)
		if !ok {
			return false, false
		}
		kf, child, found := curr.index.FindLE(k)
		if !found || child == nil {
			return false, false
		}
		if kf == k {
			// k lives in this index layer. If k is the minimum of a
			// non-orphan node, then k must also appear one layer up — we
			// raced with an Insert and missed it; restart to find the true
			// topmost occurrence (Listing 4 line 13).
			minK, hasMin := curr.index.MinKey()
			if !curr.lock.Validate(ver) {
				return false, false
			}
			if hasMin && minK == k && !ver.Orphan() {
				return false, false
			}
			// Subsequent layers are traversed non-speculatively under
			// hand-over-hand write locks (Listing 4 line 16).
			if !curr.lock.TryUpgrade(ver) {
				return false, false
			}
			ctx.drop(curr)
			locked = curr
			break
		}
		curr, ver, ok = m.exchangeDown(ctx, curr, ver, child)
		if !ok {
			return false, false
		}
	}

	if locked == nil {
		// Common case: k was not in any index layer, so only the data
		// layer needs to change (Listing 4 lines 23-31). Settle on the
		// owning data node first.
		curr, ver, ok = m.traverseRight(ctx, curr, ver, k, modeWrite)
		if !ok {
			return false, false
		}
		return m.removeFromDataLayer(ctx, curr, ver, k)
	}

	// k was found in an index layer: walk down removing it from every
	// layer, marking each lower node an orphan, hand-over-hand (Listing 4
	// lines 36-44). The nodes below are reachable only through locked
	// parents, so no hazard pointers are needed.
	curr = locked
	for curr.isIndex() {
		child, found := curr.index.Remove(k)
		if !found || child == nil {
			panic("core: index entry vanished under write lock")
		}
		child.lock.Acquire()
		child.lock.SetOrphan(true)
		m.stats.Orphans.Add(1)
		// The child is locked+orphan while its (about to be released)
		// parent still holds k; stretch this hand-over-hand window.
		chaos.Step(chaos.CoreOrphan)
		curr.lock.Release()
		curr = child
	}
	m.noteDataWrite(curr) // CoW pre-image before the first mutation (snapshot.go)
	if _, found := curr.data.Remove(k); !found {
		panic("core: data entry for indexed key missing under write lock")
	}
	m.logDel(ctx, k) // before the release that publishes it (commit.go)
	fver := curr.lock.Release()
	ctx.dropAll()
	m.length.add(ctx.stripe, -1)
	m.recordFinger(ctx, curr, fver)
	return true, true
}

// removeFromDataLayer handles the common case where k has no index entries.
// curr is the data node reached by the descent, with snapshot ver.
func (m *Map[V]) removeFromDataLayer(
	ctx *opCtx[V], curr *node[V], ver seqlock.Version, k int64,
) (result, done bool) {
	if !curr.lock.TryUpgrade(ver) {
		return false, false
	}
	ctx.drop(curr)
	// Mirror of the index-layer race check (Listing 4 line 28): if k is the
	// minimum of a non-orphan data node, a concurrent Insert gave k an
	// index entry that this descent missed; restart and remove it top-down.
	minK, hasMin := curr.data.MinKey()
	if hasMin && minK == k && !curr.lock.IsOrphan() {
		curr.lock.Abort()
		return false, false
	}
	// With snapshots pinned the pre-image must be published before the chunk
	// changes, and only for a write that will actually change it: the
	// absence path releases with Abort, which forbids any modification —
	// including a verEpoch bump — so presence is settled first.
	if m.snaps.count.Load() > 0 {
		if !curr.data.Contains(k) {
			m.recordFinger(ctx, curr, curr.lock.Abort())
			ctx.dropAll()
			return false, true
		}
		m.noteDataWrite(curr)
	}
	_, removed := curr.data.Remove(k)
	if removed {
		m.logDel(ctx, k) // before the release that publishes it (commit.go)
		fver := curr.lock.Release()
		m.length.add(ctx.stripe, -1)
		m.recordFinger(ctx, curr, fver)
	} else {
		// Abort restores the pre-acquisition word, which is a valid snapshot
		// of the (unmodified) node — remember it for the next operation.
		m.recordFinger(ctx, curr, curr.lock.Abort())
	}
	ctx.dropAll()
	return removed, true
}
