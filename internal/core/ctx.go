package core

import (
	"sync"
	"sync/atomic"

	"skipvector/internal/hazard"
)

// opCtx is the per-operation (really per-goroutine, via pooling) state: the
// hazard-pointer handle, a private RNG stream for insertion heights, the
// stripe used for the length counter, and the search finger. It corresponds
// to the thread-local state a C++ implementation would keep.
//
// The finger deliberately survives put/get cycles through the pool: a
// single-threaded caller gets the same context back on every operation (the
// free list is LIFO), so its locality carries across operations with no API
// change. Callers that need guaranteed stickiness under concurrency pin a
// context with Map.NewHandle.
type opCtx[V any] struct {
	m      *Map[V]
	h      *hazard.Handle[node[V]] // nil in leak mode
	rng    uint64                  // splitmix64 state
	stripe int
	fing   finger[V]
	batch  batchScratch[V] // reusable ApplyBatch buffers (contexts are pooled)

	// walUnit tags commit-hook calls with the batch commit unit this context
	// is executing (0 outside ApplyBatchLogged); commitScratch is the
	// singleton hook's one-op argument buffer (see commit.go).
	walUnit       uint64
	commitScratch [1]CommitOp[V]
}

// splitmix64 advances the RNG and returns the next 64-bit value. It is the
// standard SplitMix64 generator: tiny state, excellent distribution for
// height generation, fully deterministic per seed.
func (c *opCtx[V]) splitmix64() uint64 {
	c.rng += 0x9e3779b97f4a7c15
	z := c.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// randomHeight draws an insertion height (Listing 3 line 1): height 0 with
// probability (T_D-1)/T_D, otherwise 1 plus a geometric tail with success
// probability 1/T_I, capped at LayerCount-1. The resulting expected layer
// densities match a skip list with p = 1/T (Section IV-A). Degenerate
// target sizes of 1 (the paper's USL/SL emulation, which removes chunking)
// fall back to the classic skip list's p = 1/2 — with p = 1/T the
// un-chunked distribution would put every key in every layer.
func (c *opCtx[V]) randomHeight() int {
	cfg := &c.m.cfg
	if cfg.LayerCount == 1 {
		return 0
	}
	dataP := uint64(cfg.TargetDataVectorSize)
	if dataP < 2 {
		dataP = 2
	}
	if c.splitmix64()%dataP != 0 {
		return 0
	}
	indexP := uint64(cfg.TargetIndexVectorSize)
	if indexP < 2 {
		indexP = 2
	}
	h := 1
	for h < cfg.LayerCount-1 && c.splitmix64()%indexP == 0 {
		h++
	}
	return h
}

// take publishes a hazard pointer for n ("HP.take"). The pointer is not yet
// safe to dereference: the caller must validate the sequence lock of the
// node it read n from, which proves n was still linked when the hazard
// pointer became visible.
func (c *opCtx[V]) take(n *node[V]) {
	if c.h == nil {
		return
	}
	for i := 0; i < hazard.SlotsPerHandle; i++ {
		if c.slotLoad(i) == nil {
			c.h.Protect(i, n)
			return
		}
	}
	panic("core: hazard-pointer slots exhausted")
}

// drop clears the hazard pointer protecting n ("HP.drop").
func (c *opCtx[V]) drop(n *node[V]) {
	if c.h == nil {
		return
	}
	for i := 0; i < hazard.SlotsPerHandle; i++ {
		if c.slotLoad(i) == n {
			c.h.Clear(i)
			return
		}
	}
}

// dropAll clears every hazard pointer ("HP.dropAll"), invoked on restarts.
func (c *opCtx[V]) dropAll() {
	if c.h != nil {
		c.h.ClearAll()
	}
}

// opKind classifies the operation whose attempt is restarting, so restart
// totals can be broken down by the path that paid them.
type opKind int

const (
	opLookup opKind = iota
	opInsert
	opRemove
	opNav   // Floor/Ceiling (and First/Last through them)
	opRange // RangeQuery/RangeUpdate window establishment
	opBatch // ApplyBatch group commits (singleton-routed batch ops charge their native kinds)
	opSnap  // snapshot point-read descents (snapshot scans have no restart path)
	numOpKinds
)

// restart accounts one failed optimistic attempt and resets the context so
// the operation can retry from the top. Every retry loop in the package goes
// through here, so stats.Restarts is a complete count of torn reads, failed
// validations, lost CAS races, and chaos-forced failures alike.
//
// The total is bumped before the per-kind counter; Stats loads the kinds
// before the total. Under that pairing every per-kind increment a snapshot
// observes has its total increment already visible, so the snapshot always
// satisfies sum(per-kind) ≤ Restarts, with equality at quiescence.
func (m *Map[V]) restart(ctx *opCtx[V], op opKind) {
	m.stats.Restarts.Add(1)
	m.restartsByOp[op].Add(1)
	ctx.dropAll()
}

// retire marks an unlinked node for reclamation ("HP.mark"). While snapshots
// are pinned, data nodes are stamped with a conservative upper bound on the
// unlinking write's epoch first: the hazard domain's recycle filter keeps
// the node until no pinned snapshot's epoch precedes that bound, so snapshot
// scans may keep traversing its next pointer (epoch-aware reclamation). With
// no snapshot pinned the stamp is skipped — a node retired before a pin is
// unreachable from any post-pin scan, so immediate recycling is safe.
func (c *opCtx[V]) retire(n *node[V]) {
	if n.level == 0 && c.m.snaps.count.Load() > 0 {
		n.retireEpoch.Store(c.m.epoch.Load() + 1)
	}
	c.m.mem.retires.Add(1)
	if c.h != nil {
		c.h.Retire(n)
	}
}

// slotLoad reads back slot i. The handle's slots are only written by this
// goroutine, so the scan here is exact.
func (c *opCtx[V]) slotLoad(i int) *node[V] {
	return c.h.Slot(i)
}

// ctxPool hands out opCtx values. Handles register with the hazard domain
// once and are reused across operations. A hand-rolled free stack is used
// instead of sync.Pool because pooled contexts own hazard-pointer retire
// lists: sync.Pool may drop items at any GC, which would strand their
// retired nodes (pinned by the domain's handle registry) forever. With the
// explicit stack, the number of contexts equals the peak concurrency and
// every retired node is eventually scanned.
type ctxPool[V any] struct {
	m    *Map[V]
	mu   sync.Mutex
	free []*opCtx[V]
	seq  atomic.Uint64
}

func newCtxPool[V any](m *Map[V]) *ctxPool[V] {
	return &ctxPool[V]{m: m}
}

func (p *ctxPool[V]) get() *opCtx[V] {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		c := p.free[n-1]
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return c
	}
	p.mu.Unlock()
	id := p.seq.Add(1)
	c := &opCtx[V]{
		m:      p.m,
		rng:    p.m.cfg.Seed ^ (id * 0x9e3779b97f4a7c15),
		stripe: int(id),
	}
	if p.m.mem.domain != nil {
		c.h = p.m.mem.domain.NewHandle()
	}
	return c
}

func (p *ctxPool[V]) put(c *opCtx[V]) {
	p.mu.Lock()
	p.free = append(p.free, c)
	p.mu.Unlock()
}
