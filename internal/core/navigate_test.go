package core

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
)

func TestFloorCeilingBasic(t *testing.T) {
	forAllConfigs(t, func(t *testing.T, cfg Config) {
		m := newTestMap(t, cfg)
		for _, k := range []int64{10, 20, 30, 40} {
			m.Insert(k, v64(k*10))
		}
		cases := []struct {
			q                    int64
			floorK, ceilK        int64
			floorOK, ceilOK      bool
			floorVal, ceilVal    int64
			checkFloor, checkVal bool
		}{
			{q: 5, floorOK: false, ceilK: 10, ceilOK: true, ceilVal: 100},
			{q: 10, floorK: 10, floorOK: true, floorVal: 100, ceilK: 10, ceilOK: true, ceilVal: 100},
			{q: 15, floorK: 10, floorOK: true, floorVal: 100, ceilK: 20, ceilOK: true, ceilVal: 200},
			{q: 40, floorK: 40, floorOK: true, floorVal: 400, ceilK: 40, ceilOK: true, ceilVal: 400},
			{q: 45, floorK: 40, floorOK: true, floorVal: 400, ceilOK: false},
		}
		for _, tc := range cases {
			fk, fv, fok := m.Floor(tc.q)
			if fok != tc.floorOK || (fok && (fk != tc.floorK || *fv != tc.floorVal)) {
				t.Fatalf("Floor(%d) = %d,%t", tc.q, fk, fok)
			}
			ck, cv, cok := m.Ceiling(tc.q)
			if cok != tc.ceilOK || (cok && (ck != tc.ceilK || *cv != tc.ceilVal)) {
				t.Fatalf("Ceiling(%d) = %d,%t", tc.q, ck, cok)
			}
		}
	})
}

func TestFirstLast(t *testing.T) {
	forAllConfigs(t, func(t *testing.T, cfg Config) {
		m := newTestMap(t, cfg)
		if _, _, ok := m.First(); ok {
			t.Fatal("First on empty map")
		}
		if _, _, ok := m.Last(); ok {
			t.Fatal("Last on empty map")
		}
		for _, k := range []int64{50, -3, 17, 99, 0} {
			m.Insert(k, v64(k))
		}
		if k, _, ok := m.First(); !ok || k != -3 {
			t.Fatalf("First = %d,%t", k, ok)
		}
		if k, _, ok := m.Last(); !ok || k != 99 {
			t.Fatalf("Last = %d,%t", k, ok)
		}
	})
}

func TestFloorCeilingAcrossEmptyOrphans(t *testing.T) {
	// Force orphan creation between keys, then navigate across the gaps.
	cfg := testConfigs()["tiny-chunks"]
	m := newTestMap(t, cfg)
	for k := int64(0); k < 200; k += 2 {
		m.Insert(k, v64(k))
	}
	for k := int64(50); k < 150; k += 2 {
		m.Remove(k)
	}
	mustCheck(t, m)
	if fk, _, ok := m.Floor(149); !ok || fk != 48 {
		t.Fatalf("Floor(149) = %d,%t, want 48", fk, ok)
	}
	if ck, _, ok := m.Ceiling(51); !ok || ck != 150 {
		t.Fatalf("Ceiling(51) = %d,%t, want 150", ck, ok)
	}
}

// TestFloorCeilingModel cross-checks against a sorted slice oracle under a
// random workload.
func TestFloorCeilingModel(t *testing.T) {
	cfg := testConfigs()["tiny-chunks"]
	m := newTestMap(t, cfg)
	present := map[int64]bool{}
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 3000; i++ {
		k := int64(rng.Intn(400))
		switch rng.Intn(4) {
		case 0:
			if m.Insert(k, v64(k)) {
				present[k] = true
			}
		case 1:
			if m.Remove(k) {
				delete(present, k)
			}
		default:
			keys := make([]int64, 0, len(present))
			for pk := range present {
				keys = append(keys, pk)
			}
			sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
			q := int64(rng.Intn(420)) - 10
			// Oracle floor/ceiling.
			var wantF, wantC int64
			haveF, haveC := false, false
			for _, pk := range keys {
				if pk <= q {
					wantF, haveF = pk, true
				}
				if pk >= q && !haveC {
					wantC, haveC = pk, true
				}
			}
			gotF, _, okF := m.Floor(q)
			if okF != haveF || (okF && gotF != wantF) {
				t.Fatalf("op %d: Floor(%d) = %d,%t want %d,%t", i, q, gotF, okF, wantF, haveF)
			}
			gotC, _, okC := m.Ceiling(q)
			if okC != haveC || (okC && gotC != wantC) {
				t.Fatalf("op %d: Ceiling(%d) = %d,%t want %d,%t", i, q, gotC, okC, wantC, haveC)
			}
		}
	}
	mustCheck(t, m)
}

// TestNavigateConcurrent verifies floor/ceiling results stay within the set
// of keys that were ever present, while mutators churn.
func TestNavigateConcurrent(t *testing.T) {
	cfg := testConfigs()["tiny-chunks"]
	m := newTestMap(t, cfg)
	const stableStep = 10
	// Stable keys at multiples of 10 are never removed.
	for k := int64(0); k <= 1000; k += stableStep {
		m.Insert(k, v64(k))
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < 6000; i++ {
			k := int64(rng.Intn(1000))
			if k%stableStep == 0 {
				k++
			}
			if rng.Intn(2) == 0 {
				m.Insert(k, v64(k))
			} else {
				m.Remove(k)
			}
		}
		close(stop)
	}()
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				q := int64(rng.Intn(1000))
				// The floor can never be farther than stableStep-1 below q,
				// because stable multiples of 10 are always present.
				if fk, _, ok := m.Floor(q); !ok || q-fk >= stableStep {
					t.Errorf("Floor(%d) = %d,%t violates stable-key bound", q, fk, ok)
					return
				}
				if ck, _, ok := m.Ceiling(q); !ok || ck-q >= stableStep {
					t.Errorf("Ceiling(%d) = %d,%t violates stable-key bound", q, ck, ok)
					return
				}
			}
		}(int64(r) + 21)
	}
	wg.Wait()
	mustCheck(t, m)
}
