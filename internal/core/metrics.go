package core

import (
	"io"

	"skipvector/internal/telemetry"
)

// initMetrics builds the map's metric registry. Most entries are func-backed
// collectors over counters the map already maintains (always-on atomics,
// striped counters, hazard-domain totals), evaluated only at exposition time;
// the registry therefore adds no cost to any operation. The two instruments
// that would sit on per-operation paths — the descent-depth histogram and the
// freeze counter — are telemetry-native and gated on the global enable flag.
func (m *Map[V]) initMetrics() {
	r := telemetry.NewLabeledRegistry(m.cfg.MetricLabels...)
	m.reg = r

	m.descentDepth = r.Histogram("sv_descent_depth",
		"Index layers crossed by full read-path descents (finger hits skip the descent and are not observed).")
	m.freezes = r.Counter("sv_freezes_total",
		"Successful node freezes by Insert, tower and data layer (recorded only while telemetry is enabled).")
	m.batchSize = r.Histogram("sv_batch_size",
		"Op counts of non-empty ApplyBatch calls (recorded only while telemetry is enabled).")
	m.batchGroupSize = r.Histogram("sv_batch_group_size",
		"Op counts of ApplyBatch commit units — grouped chunk commits and singleton-routed key runs (recorded only while telemetry is enabled).")
	m.snapChainLen = r.Histogram("sv_snapshot_chain_len",
		"Resident version-store records observed at each copy-on-write push (recorded only while telemetry is enabled).")

	r.CounterFunc("sv_restarts_total",
		"Operation restarts after failed validation, across all op kinds.", m.stats.Restarts.Load)
	for op, name := range map[opKind]string{
		opLookup: "sv_restarts_lookup_total",
		opInsert: "sv_restarts_insert_total",
		opRemove: "sv_restarts_remove_total",
		opNav:    "sv_restarts_nav_total",
		opRange:  "sv_restarts_range_total",
		opBatch:  "sv_restarts_batch_total",
		opSnap:   "sv_restarts_snapshot_total",
	} {
		r.CounterFunc(name, "Restarts charged to this operation kind.", m.restartsByOp[op].Load)
	}
	r.CounterFunc("sv_splits_total", "Chunk splits (capacity or keyed).", m.stats.Splits.Load)
	r.CounterFunc("sv_merges_total", "Orphan merges, including empty-orphan unlinks.", m.stats.Merges.Load)
	r.CounterFunc("sv_orphans_total", "Orphan nodes created by splits and index-tower removals.", m.stats.Orphans.Load)
	r.CounterFunc("sv_node_allocs_total", "Fresh node allocations.", m.mem.allocs.Load)
	r.CounterFunc("sv_node_reuses_total", "Nodes reused from the freelist.", m.mem.reuses.Load)
	r.CounterFunc("sv_node_retires_total", "Nodes retired for reclamation.", m.mem.retires.Load)
	r.CounterFunc("sv_finger_hits_total", "Operations that resumed from the search finger.", m.fingerHits.load)
	r.CounterFunc("sv_finger_misses_total", "Finger attempts that fell back to the full descent.", m.fingerMisses.load)
	r.CounterFunc("sv_batch_descents_saved_total",
		"ApplyBatch groups positioned from the previous group's node by a bounded rightward walk, skipping the descent.",
		m.batchDescSaved.load)
	r.GaugeFunc("sv_len", "Current key count.", func() float64 { return float64(m.length.load()) })

	r.CounterFunc("sv_snapshots_pinned_total", "Snapshots acquired.", m.snaps.pinnedTotal.Load)
	r.CounterFunc("sv_snapshots_released_total", "Snapshots released via Close.", m.snaps.releasedTotal.Load)
	r.CounterFunc("sv_snapshots_leaked_total",
		"Snapshots reclaimed by a finalizer without ever being closed.", m.snaps.leaked.Load)
	r.CounterFunc("sv_snapshot_cow_total",
		"Pre-image records pushed into the version store by copy-on-write writes.", m.vstore.pushed.Load)
	r.CounterFunc("sv_snapshot_cow_pruned_total",
		"Pre-image records pruned once no pinned snapshot could see them.", m.vstore.pruned.Load)
	r.GaugeFunc("sv_snapshots_active", "Snapshots currently pinned.",
		func() float64 { return float64(m.snaps.count.Load()) })
	r.GaugeFunc("sv_snapshot_records", "Pre-image records resident in the version store.",
		func() float64 { return float64(m.vstore.resident()) })
	r.GaugeFunc("sv_snapshot_epoch", "Current global write epoch.",
		func() float64 { return float64(m.epoch.Load()) })

	if d := m.mem.domain; d != nil {
		r.CounterFunc("sv_hazard_retired_total", "Retire calls into the hazard domain.", d.RetiredTotal)
		r.CounterFunc("sv_hazard_reclaimed_total", "Nodes a scan proved unreachable and recycled.", d.RecycledCount)
		r.CounterFunc("sv_hazard_scans_total", "Reclamation scans performed.", d.Scans)
		r.GaugeFunc("sv_hazard_pending", "Nodes retired but not yet recycled (bounded garbage).",
			func() float64 { return float64(d.RetiredCount()) })
		r.GaugeFunc("sv_hazard_retire_hwm", "Longest retired list any handle reached (telemetry-gated).",
			func() float64 { return float64(d.RetireHWM()) })
		r.GaugeFunc("sv_hazard_handles", "Hazard handles registered with the domain.",
			func() float64 { return float64(d.Handles()) })
	}

	// Occupancy is collected by walking the structure at scrape time rather
	// than instrumenting the hot paths: chunk sizes change on every insert
	// and remove, but a scrape only needs the current distribution. The walk
	// reads sizes speculatively, so concurrent mutators make it approximate;
	// it is exact at quiescence, which is when the invariant suite reads it.
	r.HistogramFunc("sv_data_chunk_occupancy",
		"Element counts of data-layer chunks (walked at scrape time).",
		func() telemetry.HistSnapshot { return m.occupancyHist(true) })
	r.HistogramFunc("sv_index_chunk_occupancy",
		"Element counts of index-layer chunks (walked at scrape time).",
		func() telemetry.HistSnapshot { return m.occupancyHist(false) })
	r.GaugeFunc("sv_data_occupancy_mean", "Mean data-chunk element count.",
		func() float64 { return m.Occupancy().DataMean })
}

// Metrics returns the map's metrics combined with the process-global registry
// (seqlock and vectormap instruments) as a single exposable view. The view
// satisfies expvar.Var, so expvar.Publish("skipvector", m.Metrics()) puts the
// whole catalog on /debug/vars.
func (m *Map[V]) Metrics() *telemetry.View {
	return telemetry.NewView(m.reg, telemetry.Global)
}

// Registry exposes the map's own metric registry so callers can compose it
// with others (the WAL's, say) into one view.
func (m *Map[V]) Registry() *telemetry.Registry { return m.reg }

// WriteMetrics renders the full metric catalog in Prometheus text exposition
// format.
func (m *Map[V]) WriteMetrics(w io.Writer) error {
	return m.Metrics().WritePrometheus(w)
}

// OccupancySnapshot aggregates chunk fill across the structure. Interior
// (non-sentinel) nodes only: head and tail hold sentinel entries, not user
// data, and would skew the means the paper's locality argument rests on.
type OccupancySnapshot struct {
	DataChunks  int
	DataElems   int
	DataMean    float64
	IndexChunks int
	IndexElems  int
	IndexMean   float64
}

// Occupancy walks every layer and reports chunk-fill aggregates. Sizes are
// read speculatively, so the snapshot is approximate while mutators run and
// exact at quiescence.
func (m *Map[V]) Occupancy() OccupancySnapshot {
	var s OccupancySnapshot
	for l := 0; l < m.cfg.LayerCount; l++ {
		m.walkLayer(l, func(n *node[V]) {
			if n.isIndex() {
				s.IndexChunks++
				s.IndexElems += n.index.Size()
			} else {
				s.DataChunks++
				s.DataElems += n.data.Size()
			}
		})
	}
	if s.DataChunks > 0 {
		s.DataMean = float64(s.DataElems) / float64(s.DataChunks)
	}
	if s.IndexChunks > 0 {
		s.IndexMean = float64(s.IndexElems) / float64(s.IndexChunks)
	}
	return s
}

// occupancyHist walks one layer class into a histogram snapshot for the
// scrape-time collectors. The snapshot is assembled locally, not through a
// live Histogram: a scrape that asked for the distribution should get it
// regardless of whether hot-path recording is enabled.
func (m *Map[V]) occupancyHist(data bool) telemetry.HistSnapshot {
	var snap telemetry.HistSnapshot
	for l := 0; l < m.cfg.LayerCount; l++ {
		if (l == 0) != data {
			continue
		}
		m.walkLayer(l, func(n *node[V]) {
			v := int64(n.size())
			snap.Buckets[telemetry.BucketOf(v)]++
			snap.Count++
			if v > 0 {
				snap.Sum += v
			}
		})
	}
	return snap
}

// walkLayer calls fn for every interior node of layer l, left to right. The
// head is m.heads[l]; the tail is the unique node whose next pointer is nil.
// Both are excluded.
func (m *Map[V]) walkLayer(l int, fn func(n *node[V])) {
	for n := m.heads[l].next.Load(); n != nil && n.next.Load() != nil; n = n.next.Load() {
		fn(n)
	}
}

// FlushRetired forces a reclamation scan on every pooled context's hazard
// handle. At quiescence — no operations in flight, all Handles and Cursors
// closed, so every context is back in the pool and no hazard slot is
// published — it drains pending garbage to exactly zero. The leak test uses
// it to separate "awaiting a scan" (fine, bounded) from "leaked" (a bug).
func (m *Map[V]) FlushRetired() {
	if m.mem.domain == nil {
		return
	}
	m.ctxs.mu.Lock()
	free := append([]*opCtx[V](nil), m.ctxs.free...)
	m.ctxs.mu.Unlock()
	for _, c := range free {
		if c.h != nil {
			c.h.Flush()
		}
	}
}
