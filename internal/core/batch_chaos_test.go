package core

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"skipvector/internal/chaos"
)

// TestChaosBatchAtomicity proves group commits are all-or-nothing under
// injected failures at the CoreBatch site. The single-layer config with a key
// space far below one chunk's capacity pins every batch to exactly one group
// commit (no splits, no tall-key routing, no min-defer — the head chunk owns
// everything), so batch atomicity is exactly group atomicity: writers flip
// (2i, 2i+1) pairs in and out with one batch per flip, and no reader snapshot
// may ever see half a pair, even though chaos keeps failing attempts between
// the lock acquisition and the release.
func TestChaosBatchAtomicity(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LayerCount = 1 // randomHeight ≡ 0: no singleton routing, ever

	const (
		pairs   = 8 // 16 keys ≪ one chunk's capacity of 64
		writers = 2
		readers = 2
	)
	rounds := 400
	if testing.Short() {
		rounds = 120
	}
	m := newTestMap(t, cfg)

	chaos.Enable(stressChaosConfig(0xba7c4))
	var stop atomic.Bool
	var torn atomic.Int64
	var tornMsg atomic.Value
	var wwg, rwg sync.WaitGroup

	for w := 0; w < writers; w++ {
		wwg.Add(1)
		go func(w int) {
			defer wwg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 17))
			for r := 0; r < rounds; r++ {
				p := int64(rng.Intn(pairs))
				k := 2 * p
				v := v64(int64(r))
				if rng.Intn(2) == 0 {
					m.ApplyBatch([]BatchOp[int64]{{Key: k, Val: v}, {Key: k + 1, Val: v}})
				} else {
					m.ApplyBatch([]BatchOp[int64]{{Key: k, Del: true}, {Key: k + 1, Del: true}})
				}
			}
		}(w)
	}
	for rd := 0; rd < readers; rd++ {
		rwg.Add(1)
		go func(rd int) {
			defer rwg.Done()
			rng := rand.New(rand.NewSource(int64(rd) + 71))
			for !stop.Load() {
				p := int64(rng.Intn(pairs))
				k := 2 * p
				var got []int64
				var vals []int64
				m.RangeQuery(k, k+1, func(qk int64, qv *int64) bool {
					got = append(got, qk)
					vals = append(vals, *qv)
					return true
				})
				switch {
				case len(got) == 1:
					torn.Add(1)
					tornMsg.Store("half a pair visible")
				case len(got) == 2 && vals[0] != vals[1]:
					// Both writers write the pair with one value per batch, so
					// mismatched halves mean two batches interleaved mid-commit.
					torn.Add(1)
					tornMsg.Store("pair halves from different batches")
				}
			}
		}(rd)
	}

	wwg.Wait()
	stop.Store(true)
	rwg.Wait()

	rep := chaos.Disable()
	t.Logf("%v", rep)
	if torn.Load() != 0 {
		t.Fatalf("%d torn pair observations (%v): group commit is not atomic", torn.Load(), tornMsg.Load())
	}
	if rep.Sites[chaos.CoreBatch].Fails == 0 {
		t.Fatalf("no failures injected at the CoreBatch site: %v", rep)
	}
	if rep.Perturbations() == 0 {
		t.Fatalf("chaos injected no perturbations: %v", rep)
	}
	mustCheck(t, m)
}

// TestChaosBatchPrefixVisibility covers the cross-group contract on a
// multi-chunk structure: a batch is not atomic as a whole, but its groups
// commit in ascending key order, so a linearizable range snapshot taken
// mid-batch must see a clean key-order prefix of the new round's values and
// the old round's values after it — never an out-of-order mix, and never a
// torn group. Chaos keeps failing commits between groups and after lock
// acquisition (the CoreBatch site), which is exactly where a buggy
// implementation would leak a partial state.
func TestChaosBatchPrefixVisibility(t *testing.T) {
	cfg := testConfigs()["tiny-chunks"] // T_D = 2: every batch spans many chunks

	const (
		stripeLen = 16
		writers   = 2
	)
	rounds := 150
	if testing.Short() {
		rounds = 50
	}
	m := newTestMap(t, cfg)

	// Round 0 prefill, before chaos and before the readers start: every
	// stripe key present.
	for w := 0; w < writers; w++ {
		base := int64(w) * 1000
		ops := make([]BatchOp[int64], stripeLen)
		for i := range ops {
			ops[i] = BatchOp[int64]{Key: base + int64(i), Val: v64(0)}
		}
		m.ApplyBatch(ops)
	}

	chaos.Enable(stressChaosConfig(0xba7c5))
	var stop atomic.Bool
	var violations atomic.Int64
	var detail atomic.Value
	var wg sync.WaitGroup

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := int64(w) * 1000
			h := m.NewHandle()
			defer h.Close()
			for r := 1; r <= rounds; r++ {
				ops := make([]BatchOp[int64], stripeLen)
				for i := range ops {
					ops[i] = BatchOp[int64]{Key: base + int64(i), Val: v64(int64(r))}
				}
				h.ApplyBatch(ops)
			}
		}(w)
	}

	var rwg sync.WaitGroup
	for rd := 0; rd < 2; rd++ {
		rwg.Add(1)
		go func(rd int) {
			defer rwg.Done()
			rng := rand.New(rand.NewSource(int64(rd) + 3))
			for !stop.Load() {
				base := int64(rng.Intn(writers)) * 1000
				var vals []int64
				m.RangeQuery(base, base+stripeLen-1, func(_ int64, v *int64) bool {
					vals = append(vals, *v)
					return true
				})
				// The snapshot linearizes between two group commits of some
				// round r: values must read r..r, r-1..r-1 in key order.
				if len(vals) != stripeLen {
					violations.Add(1)
					detail.Store("stripe key vanished during upsert-only rounds")
					continue
				}
				for i := 1; i < len(vals); i++ {
					if vals[i] > vals[i-1] {
						violations.Add(1)
						detail.Store("later group visible before an earlier one")
					}
				}
				if vals[0]-vals[len(vals)-1] > 1 {
					violations.Add(1)
					detail.Store("snapshot spans more than two rounds: lost a group commit")
				}
			}
		}(rd)
	}
	wg.Wait()
	stop.Store(true)
	rwg.Wait()

	rep := chaos.Disable()
	t.Logf("%v", rep)
	if violations.Load() != 0 {
		t.Fatalf("%d prefix-visibility violations (%v)", violations.Load(), detail.Load())
	}
	if rep.Sites[chaos.CoreBatch].Fails == 0 {
		t.Fatalf("no failures injected at the CoreBatch site: %v", rep)
	}
	mustCheck(t, m)

	// Quiescent content check: the last round's value everywhere.
	for w := 0; w < writers; w++ {
		base := int64(w) * 1000
		for i := int64(0); i < stripeLen; i++ {
			if pv, ok := m.Lookup(base + i); !ok || *pv != int64(rounds) {
				t.Fatalf("key %d = %v, %t after %d rounds", base+i, pv, ok, rounds)
			}
		}
	}
}
