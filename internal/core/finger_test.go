package core

import (
	"math/rand"
	"sync"
	"testing"

	"skipvector/internal/chaos"
	"skipvector/internal/lincheck"
)

// fingerTestMap builds a tiny-chunk map prefilled with keys 0, step, 2*step,
// ... below limit, so data nodes hold only a handful of keys and every
// structural event (split, merge, orphan) is easy to provoke.
func fingerTestMap(t *testing.T, step, limit int64) *Map[int64] {
	t.Helper()
	cfg := testConfigs()["tiny-chunks"]
	m := newTestMap(t, cfg)
	for k := int64(0); k < limit; k += step {
		m.Insert(k, v64(k))
	}
	return m
}

// fingerOn runs one lookup through ctx and returns the data node the finger
// now remembers, with its exact bounds read under the remembered version.
func fingerOn(t *testing.T, m *Map[int64], ctx *opCtx[int64], k int64) (n *node[int64], minK, maxK int64) {
	t.Helper()
	if _, found := m.lookupCtx(ctx, k); !found {
		t.Fatalf("Lookup(%d) lost the key", k)
	}
	n = ctx.fing.node
	if n == nil {
		t.Fatalf("lookup(%d) did not record a finger", k)
	}
	minK, maxK, ok := n.data.Bounds()
	if !ok {
		t.Fatalf("finger node for %d is empty", k)
	}
	if !n.lock.Validate(ctx.fing.ver) {
		t.Fatalf("recorded finger version already stale")
	}
	return n, minK, maxK
}

// seek probes the finger with a fresh backoff window and releases any hazard
// pointer a hit leaves published, so tests can chain probes deterministically.
func seek(m *Map[int64], ctx *opCtx[int64], k int64, mode fingerMode) bool {
	ctx.fing.backoff = 0
	_, _, hit := m.fingerSeek(ctx, k, mode)
	ctx.dropAll()
	return hit
}

func TestFingerHitAfterLookup(t *testing.T) {
	m := fingerTestMap(t, 2, 400)
	ctx := m.ctxs.get()
	defer m.ctxs.put(ctx)

	before := m.Stats()
	_, _, _ = fingerOn(t, m, ctx, 100)
	if !seek(m, ctx, 100, fingerPoint) {
		t.Fatal("repeat probe of the same key missed")
	}
	if got := m.Stats(); got.FingerHits <= before.FingerHits {
		t.Fatalf("FingerHits did not advance: %d -> %d", before.FingerHits, got.FingerHits)
	}
	// A repeated lookup through the same context must also hit end to end.
	hits := m.Stats().FingerHits
	if _, found := m.lookupCtx(ctx, 100); !found {
		t.Fatal("repeat lookup lost the key")
	}
	if m.Stats().FingerHits <= hits {
		t.Fatal("repeat lookup did not use the finger")
	}
}

func TestFingerSpanOwnership(t *testing.T) {
	m := fingerTestMap(t, 2, 800)
	ctx := m.ctxs.get()
	defer m.ctxs.put(ctx)

	n, minK, maxK := fingerOn(t, m, ctx, 400)
	succ := n.next.Load()
	if succ == nil {
		t.Fatal("finger node unexpectedly last")
	}
	succMin, ok := succ.minKey()
	if !ok {
		t.Fatal("successor has no minimum")
	}

	// Both stored extremes hit for point lookups.
	if !seek(m, ctx, minK, fingerPoint) || !seek(m, ctx, maxK, fingerPoint) {
		t.Fatal("in-chunk keys missed")
	}
	// The gap before the successor's minimum belongs to this node: with
	// step-2 keys, maxK+1 is absent but owned (the ascending-ingest case).
	if succMin != maxK+2 {
		t.Fatalf("layout surprise: maxK=%d succMin=%d", maxK, succMin)
	}
	if !seek(m, ctx, maxK+1, fingerPoint) {
		t.Fatal("gap key before successor missed")
	}
	if v, found := m.lookupCtx(ctx, maxK+1); found {
		t.Fatalf("gap key reported present: %v", v)
	}
	// The successor's minimum is out of span for point mode but in span for
	// scan mode (Ceiling walks right from here).
	if seek(m, ctx, succMin, fingerPoint) {
		t.Fatal("successor's minimum hit in point mode")
	}
	if !seek(m, ctx, succMin, fingerScan) {
		t.Fatal("successor's minimum missed in scan mode")
	}
	// Keys beyond the successor's minimum miss in every mode.
	if seek(m, ctx, succMin+1, fingerScan) || seek(m, ctx, succMin+1, fingerPoint) {
		t.Fatal("key beyond successor hit")
	}
	// Keys below the node's minimum miss (quick reject once bounds cached).
	if seek(m, ctx, minK-1, fingerPoint) {
		t.Fatal("key below node minimum hit")
	}
}

func TestFingerRemoveModeExcludesMinimum(t *testing.T) {
	m := fingerTestMap(t, 2, 400)
	ctx := m.ctxs.get()
	defer m.ctxs.put(ctx)

	_, minK, maxK := fingerOn(t, m, ctx, 200)
	if maxK == minK {
		t.Skip("finger node holds a single key; layout too sparse for this test")
	}
	// Removing a node's minimum may need to unlink an index tower, which
	// only the full descent can find — remove mode must decline.
	if seek(m, ctx, minK, fingerRemove) {
		t.Fatal("remove-mode probe hit on the node minimum")
	}
	if !seek(m, ctx, minK, fingerPoint) {
		t.Fatal("point-mode probe missed the node minimum")
	}
	// Non-minimum keys are never indexed (indexed keys are data-node
	// minima), so remove mode accepts them.
	if !seek(m, ctx, maxK, fingerRemove) {
		t.Fatal("remove-mode probe missed a non-minimum key")
	}
}

func TestFingerInvalidatedByWrite(t *testing.T) {
	m := fingerTestMap(t, 10, 1000)
	ctx := m.ctxs.get()
	defer m.ctxs.put(ctx)

	n, _, maxK := fingerOn(t, m, ctx, 500)
	ver := ctx.fing.ver
	// A write into the remembered node (map-level: separate context) bumps
	// its word, so the stale version must fail validation.
	if !m.Insert(maxK+1, v64(maxK+1)) {
		t.Fatal("Insert into finger node failed")
	}
	if n.lock.Validate(ver) {
		t.Fatal("write did not bump the node's word")
	}
	if seek(m, ctx, 500, fingerPoint) {
		t.Fatal("probe hit through a stale version")
	}
	if ctx.fing.node != nil {
		t.Fatal("failed validation did not drop the finger")
	}
	// The fallback descent re-records and the finger recovers.
	if _, found := m.lookupCtx(ctx, 500); !found {
		t.Fatal("lookup after invalidation lost the key")
	}
	if !seek(m, ctx, 500, fingerPoint) {
		t.Fatal("finger did not recover after re-record")
	}
}

func TestFingerInvalidatedBySplit(t *testing.T) {
	m := fingerTestMap(t, 10, 1000)
	ctx := m.ctxs.get()
	defer m.ctxs.put(ctx)

	_, minK, _ := fingerOn(t, m, ctx, 500)
	splitsBefore := m.Stats().Splits
	// Stuff the remembered node until it splits (tiny chunks overflow after
	// a couple of insertions into the same span).
	for d := int64(1); d <= 8; d++ {
		m.Insert(minK+d, v64(minK+d))
	}
	if m.Stats().Splits <= splitsBefore {
		t.Fatalf("no split occurred (before=%d after=%d)", splitsBefore, m.Stats().Splits)
	}
	if seek(m, ctx, 500, fingerPoint) {
		t.Fatal("probe hit across a split through a stale version")
	}
	for d := int64(0); d <= 8; d++ {
		if _, found := m.lookupCtx(ctx, minK+d); !found {
			t.Fatalf("key %d lost across the split", minK+d)
		}
	}
	mustCheck(t, m)
}

func TestFingerInvalidatedByFreeze(t *testing.T) {
	m := fingerTestMap(t, 2, 400)
	ctx := m.ctxs.get()
	defer m.ctxs.put(ctx)

	n, _, _ := fingerOn(t, m, ctx, 100)
	fver, ok := n.lock.TryFreeze(ctx.fing.ver)
	if !ok {
		t.Fatal("TryFreeze on a quiescent node failed")
	}
	if seek(m, ctx, 100, fingerPoint) {
		n.lock.Thaw()
		t.Fatal("probe hit on a frozen node through a stale version")
	}
	if ctx.fing.node != nil {
		n.lock.Thaw()
		t.Fatal("failed validation did not drop the finger")
	}
	// A frozen word must also be refused at record time — the thaw would
	// invalidate it immediately.
	m.recordFinger(ctx, n, fver)
	if ctx.fing.node != nil {
		n.lock.Thaw()
		t.Fatal("recordFinger accepted a frozen version")
	}
	n.lock.Thaw()
	if _, found := m.lookupCtx(ctx, 100); !found {
		t.Fatal("lookup after thaw lost the key")
	}
	if !seek(m, ctx, 100, fingerPoint) {
		t.Fatal("finger did not recover after thaw")
	}
}

func TestFingerRecordRefusesLockedWord(t *testing.T) {
	m := fingerTestMap(t, 2, 400)
	ctx := m.ctxs.get()
	defer m.ctxs.put(ctx)

	n, _, _ := fingerOn(t, m, ctx, 100)
	ctx.fing.node = nil // clear so a refused record is observable
	n.lock.Acquire()
	locked := n.lock.Current()
	m.recordFinger(ctx, n, locked)
	n.lock.Release()
	if ctx.fing.node != nil {
		t.Fatal("recordFinger accepted a locked version")
	}
}

func TestFingerFollowsOrphans(t *testing.T) {
	m, _ := buildOrphanChain(t)
	ctx := m.ctxs.get()
	defer m.ctxs.put(ctx)

	// Find a surviving orphan and a key it still holds.
	var orphanKey int64
	found := false
	for n := m.heads[0]; n != nil; n = n.next.Load() {
		if n.lock.IsOrphan() {
			if k, ok := n.data.MinKey(); ok {
				orphanKey, found = k, true
				break
			}
		}
	}
	if !found {
		t.Fatal("orphan chain has no non-empty orphan")
	}
	// Orphan nodes are recorded — capacity-split orphans are long-lived and
	// are exactly the hot node of an ascending ingest.
	if _, ok := m.lookupCtx(ctx, orphanKey); !ok {
		t.Fatalf("Lookup(%d) lost an orphan-held key", orphanKey)
	}
	f := &ctx.fing
	if f.node == nil || !f.node.lock.IsOrphan() || !f.ver.Orphan() {
		t.Fatal("lookup into an orphan did not record the orphan finger")
	}
	if !seek(m, ctx, orphanKey, fingerPoint) {
		t.Fatal("probe on a recorded orphan missed")
	}
}

func TestFingerSurvivesDrainAndMerge(t *testing.T) {
	m := fingerTestMap(t, 2, 400)
	ctx := m.ctxs.get()
	defer m.ctxs.put(ctx)

	_, _, _ = fingerOn(t, m, ctx, 200)
	// Drain the whole map through map-level contexts: the remembered node is
	// emptied, merged away, and retired while our stale finger still points
	// at it. Monotonic lock words across node lifetimes guarantee the next
	// probe fails validation even if the node was recycled.
	for k := int64(0); k < 400; k += 2 {
		if !m.Remove(k) {
			t.Fatalf("Remove(%d) failed", k)
		}
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d after drain", m.Len())
	}
	if seek(m, ctx, 200, fingerPoint) {
		t.Fatal("probe hit a retired node")
	}
	if _, found := m.lookupCtx(ctx, 200); found {
		t.Fatal("lookup found a drained key")
	}
	mustCheck(t, m)
}

func TestFingerProbeBackoff(t *testing.T) {
	m := fingerTestMap(t, 2, 800)
	ctx := m.ctxs.get()
	defer m.ctxs.put(ctx)

	_, _, _ = fingerOn(t, m, ctx, 100)
	far := int64(700) // far outside the remembered node's span
	f := &ctx.fing
	// The prefill ran through the same pooled context; start from a clean
	// backoff state.
	f.penalty, f.backoff = 0, 0

	// Each wasted full probe doubles the skip window.
	wantPenalty := uint8(0)
	for round := 0; round < 3; round++ {
		if _, _, hit := m.fingerSeek(ctx, far, fingerPoint); hit {
			t.Fatalf("round %d: far key hit", round)
		}
		wantPenalty++
		if f.penalty != wantPenalty || f.backoff != (1<<wantPenalty)-1 {
			t.Fatalf("round %d: penalty=%d backoff=%d, want penalty=%d backoff=%d",
				round, f.penalty, f.backoff, wantPenalty, (1<<wantPenalty)-1)
		}
		// The window is spent declining without touching the node.
		for f.backoff > 0 {
			prev := f.backoff
			if _, _, hit := m.fingerSeek(ctx, 100, fingerPoint); hit {
				t.Fatal("probe during backoff window")
			}
			if f.backoff != prev-1 {
				t.Fatalf("backoff did not decrement: %d -> %d", prev, f.backoff)
			}
		}
	}
	// The cap bounds the window.
	for round := 0; round < 10; round++ {
		ctx.fing.backoff = 0
		m.fingerSeek(ctx, far, fingerPoint)
	}
	if f.penalty != maxFingerPenalty {
		t.Fatalf("penalty=%d, want cap %d", f.penalty, maxFingerPenalty)
	}
	// One hit restores full eagerness.
	if !seek(m, ctx, 100, fingerPoint) {
		t.Fatal("in-span probe missed after backoff")
	}
	if f.penalty != 0 || f.backoff != 0 {
		t.Fatalf("hit did not reset backoff: penalty=%d backoff=%d", f.penalty, f.backoff)
	}
}

func TestFingerDisabled(t *testing.T) {
	cfg := testConfigs()["tiny-chunks"]
	cfg.DisableFinger = true
	m := newTestMap(t, cfg)
	h := m.NewHandle()
	defer h.Close()
	for k := int64(0); k < 500; k++ {
		if !h.Insert(k, v64(k)) {
			t.Fatalf("Insert(%d) failed", k)
		}
		if _, found := h.Lookup(k); !found {
			t.Fatalf("Lookup(%d) missed", k)
		}
	}
	st := m.Stats()
	if st.FingerHits != 0 || st.FingerMisses != 0 {
		t.Fatalf("disabled finger recorded activity: hits=%d misses=%d", st.FingerHits, st.FingerMisses)
	}
	mustCheck(t, m)
}

func TestFingerHitRateOnAscendingHandle(t *testing.T) {
	m := newTestMap(t, testConfigs()["default"])
	h := m.NewHandle()
	defer h.Close()
	const n = 4000
	for k := int64(0); k < n; k++ {
		h.Insert(k, v64(k))
	}
	for k := int64(0); k < n; k++ {
		if _, found := h.Lookup(k); !found {
			t.Fatalf("Lookup(%d) missed", k)
		}
	}
	st := m.Stats()
	total := st.FingerHits + st.FingerMisses
	if total == 0 {
		t.Fatal("no finger activity recorded")
	}
	if rate := float64(st.FingerHits) / float64(total); rate < 0.5 {
		t.Fatalf("ascending hit rate %.2f (hits=%d misses=%d); locality lost",
			rate, st.FingerHits, st.FingerMisses)
	}
	mustCheck(t, m)
}

// TestFingerChaosStress drives handle-pinned, locality-heavy workloads with
// the chaos injector forcing finger validation failures (chaos.CoreFinger),
// alongside the usual seqlock/CAS perturbations. Each goroutine owns a
// disjoint key stripe and checks every result against a private reference,
// so a finger hit that lands on the wrong node — or a forced miss whose
// fallback descent misbehaves — is caught at the operation that saw it.
func TestFingerChaosStress(t *testing.T) {
	cfg := testConfigs()["tiny-chunks"]
	const goroutines = 6
	sweeps := 12
	if testing.Short() {
		sweeps = 4
	}
	m := newTestMap(t, cfg)
	seed := uint64(0xf19e)
	chaos.Enable(stressChaosConfig(seed))
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := m.NewHandle()
			defer h.Close()
			base := int64(g) * 10_000 // disjoint stripe per goroutine
			const span = 300
			ref := make(map[int64]int64, span)
			rng := rand.New(rand.NewSource(int64(g) + 77))
			for s := 0; s < sweeps; s++ {
				// Ascending sweeps keep the finger hot; the op mix still
				// exercises insert, remove, lookup, and navigation paths.
				for i := int64(0); i < span; i++ {
					k := base + i
					switch rng.Intn(5) {
					case 0, 1:
						v := int64(s)
						got := h.Insert(k, &v)
						_, had := ref[k]
						if got == had {
							t.Errorf("Insert(%d) = %t, reference had=%t (chaos seed %#x)", k, got, had, seed)
							return
						}
						if got {
							ref[k] = v
						}
					case 2:
						got := h.Remove(k)
						if _, had := ref[k]; got != had {
							t.Errorf("Remove(%d) = %t, reference had=%t (chaos seed %#x)", k, got, had, seed)
							return
						}
						delete(ref, k)
					case 3:
						v, got := h.Lookup(k)
						want, had := ref[k]
						if got != had || (got && *v != want) {
							t.Errorf("Lookup(%d) mismatch (chaos seed %#x)", k, seed)
							return
						}
					default:
						// Ceiling within the stripe: the result must be the
						// reference's smallest key >= k (stripes are disjoint
						// and ceilings stay inside the sweep span).
						ck, _, ok := h.Ceiling(k)
						wantK, want := int64(0), false
						for rk := range ref {
							if rk >= k && (!want || rk < wantK) {
								wantK, want = rk, true
							}
						}
						if want != (ok && ck < base+10_000) {
							t.Errorf("Ceiling(%d) presence mismatch (chaos seed %#x)", k, seed)
							return
						}
						if want && ck != wantK {
							t.Errorf("Ceiling(%d) = %d, want %d (chaos seed %#x)", k, ck, wantK, seed)
							return
						}
					}
				}
			}
			// Final differential sweep over the stripe.
			for i := int64(0); i < span; i++ {
				k := base + i
				v, got := h.Lookup(k)
				want, had := ref[k]
				if got != had || (got && *v != want) {
					t.Errorf("final Lookup(%d) mismatch (chaos seed %#x)", k, seed)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	rep := chaos.Disable()
	t.Logf("%v", rep)
	if t.Failed() {
		return
	}
	if rep.Sites[chaos.CoreFinger].Fails == 0 {
		t.Fatalf("chaos never forced a finger validation failure: %v", rep)
	}
	if m.Stats().FingerHits == 0 {
		t.Fatal("no finger hits under the locality workload")
	}
	mustCheck(t, m)
}

// TestFingerLinearizabilityWithHandles re-runs the chaos linearizability
// rounds with every process operating through a pinned handle, so finger
// hits and chaos-forced finger misses are interleaved into the recorded
// histories. The finger must not change any operation's outcome: every
// history must still match the sequential map specification.
func TestFingerLinearizabilityWithHandles(t *testing.T) {
	cfg := testConfigs()["tiny-chunks"]
	rounds := 40
	if testing.Short() {
		rounds = 12
	}
	const (
		procs    = 3
		opsEach  = 4
		keySpace = 3
	)
	seed := uint64(0xf1a9)
	chaos.Enable(stressChaosConfig(seed))
	defer chaos.Disable()
	for round := 0; round < rounds; round++ {
		m := newTestMap(t, cfg)
		rec := lincheck.NewRecorder()
		var wg sync.WaitGroup
		for p := 0; p < procs; p++ {
			wg.Add(1)
			go func(p int, rseed int64) {
				defer wg.Done()
				h := m.NewHandle()
				defer h.Close()
				rng := rand.New(rand.NewSource(rseed))
				for i := 0; i < opsEach; i++ {
					k := int64(rng.Intn(keySpace))
					switch rng.Intn(3) {
					case 0:
						v := int64(p*1000 + i)
						inv := rec.Begin()
						ok := h.Insert(k, &v)
						rec.End(lincheck.Event{Proc: p, Kind: lincheck.KindInsert, Key: k, Val: v, RetOK: ok}, inv)
					case 1:
						inv := rec.Begin()
						ok := h.Remove(k)
						rec.End(lincheck.Event{Proc: p, Kind: lincheck.KindRemove, Key: k, RetOK: ok}, inv)
					default:
						inv := rec.Begin()
						pv, ok := h.Lookup(k)
						var rv int64
						if ok {
							rv = *pv
						}
						rec.End(lincheck.Event{Proc: p, Kind: lincheck.KindLookup, Key: k, RetOK: ok, RetVal: rv}, inv)
					}
				}
			}(p, int64(round*173+p))
		}
		wg.Wait()
		if ok, msg := lincheck.Check(rec.History()); !ok {
			t.Fatalf("round %d (chaos seed %#x): %s\n%s", round, seed, msg, m.Dump())
		}
		mustCheck(t, m)
	}
}
