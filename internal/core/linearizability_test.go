package core

import (
	"math/rand"
	"sync"
	"testing"

	"skipvector/internal/lincheck"
)

// TestLinearizability records many short concurrent histories against the
// skip vector and verifies each is linearizable under the sequential map
// specification. Tiny chunks and a tiny key space maximize the chance that
// operations overlap inside one node, which is where the seqlock/freeze
// machinery must deliver atomicity.
func TestLinearizability(t *testing.T) {
	cfgs := map[string]Config{
		"tiny-chunks": testConfigs()["tiny-chunks"],
		"sl":          testConfigs()["sl"],
		"default":     testConfigs()["default"],
	}
	for name, cfg := range cfgs {
		t.Run(name, func(t *testing.T) {
			const (
				rounds   = 60
				procs    = 3
				opsEach  = 4
				keySpace = 3
			)
			for round := 0; round < rounds; round++ {
				m := newTestMap(t, cfg)
				rec := lincheck.NewRecorder()
				var wg sync.WaitGroup
				for p := 0; p < procs; p++ {
					wg.Add(1)
					go func(p int, seed int64) {
						defer wg.Done()
						rng := rand.New(rand.NewSource(seed))
						for i := 0; i < opsEach; i++ {
							k := int64(rng.Intn(keySpace))
							switch rng.Intn(3) {
							case 0:
								v := int64(p*1000 + i)
								inv := rec.Begin()
								ok := m.Insert(k, &v)
								rec.End(lincheck.Event{
									Proc: p, Kind: lincheck.KindInsert,
									Key: k, Val: v, RetOK: ok,
								}, inv)
							case 1:
								inv := rec.Begin()
								ok := m.Remove(k)
								rec.End(lincheck.Event{
									Proc: p, Kind: lincheck.KindRemove,
									Key: k, RetOK: ok,
								}, inv)
							default:
								inv := rec.Begin()
								pv, ok := m.Lookup(k)
								var rv int64
								if ok {
									rv = *pv
								}
								rec.End(lincheck.Event{
									Proc: p, Kind: lincheck.KindLookup,
									Key: k, RetOK: ok, RetVal: rv,
								}, inv)
							}
						}
					}(p, int64(round*100+p))
				}
				wg.Wait()
				if ok, msg := lincheck.Check(rec.History()); !ok {
					t.Fatalf("round %d: %s\n%s", round, msg, m.Dump())
				}
				mustCheck(t, m)
			}
		})
	}
}

// TestLinearizabilityWithRangeOps mixes point ops with genuine multi-key
// range operations, machine-checking the linearizable-range claim
// (Section IV-C / V-B): every RangeQuery snapshot must equal some
// linearization point's state restricted to its window, and every
// RangeUpdate must apply its delta to the whole window atomically.
func TestLinearizabilityWithRangeOps(t *testing.T) {
	cfg := testConfigs()["tiny-chunks"]
	const (
		rounds   = 40
		procs    = 3
		opsEach  = 4
		keySpace = 4
	)
	for round := 0; round < rounds; round++ {
		m := newTestMap(t, cfg)
		rec := lincheck.NewRecorder()
		var wg sync.WaitGroup
		for p := 0; p < procs; p++ {
			wg.Add(1)
			go func(p int, seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for i := 0; i < opsEach; i++ {
					k := int64(rng.Intn(keySpace))
					switch rng.Intn(5) {
					case 0:
						v := int64(p*1000 + i)
						inv := rec.Begin()
						ok := m.Insert(k, &v)
						rec.End(lincheck.Event{Proc: p, Kind: lincheck.KindInsert, Key: k, Val: v, RetOK: ok}, inv)
					case 1:
						inv := rec.Begin()
						ok := m.Remove(k)
						rec.End(lincheck.Event{Proc: p, Kind: lincheck.KindRemove, Key: k, RetOK: ok}, inv)
					case 2:
						inv := rec.Begin()
						pv, ok := m.Lookup(k)
						var rv int64
						if ok {
							rv = *pv
						}
						rec.End(lincheck.Event{Proc: p, Kind: lincheck.KindLookup, Key: k, RetOK: ok, RetVal: rv}, inv)
					case 3:
						// Multi-key window: the snapshot must be exact.
						lo := k
						hi := lo + int64(rng.Intn(keySpace))
						inv := rec.Begin()
						var pairs []lincheck.KV
						m.RangeQuery(lo, hi, func(qk int64, qv *int64) bool {
							pairs = append(pairs, lincheck.KV{K: qk, V: *qv})
							return true
						})
						rec.End(lincheck.Event{Proc: p, Kind: lincheck.KindRangeQuery, Key: lo, Hi: hi, Pairs: pairs}, inv)
					default:
						// Atomic increment over a window.
						lo := k
						hi := lo + int64(rng.Intn(keySpace))
						inv := rec.Begin()
						count := m.RangeUpdate(lo, hi, func(_ int64, v *int64) *int64 {
							nv := *v + 1
							return &nv
						})
						rec.End(lincheck.Event{Proc: p, Kind: lincheck.KindRangeUpdate, Key: lo, Hi: hi, Delta: 1, RetVal: int64(count)}, inv)
					}
				}
			}(p, int64(round*31+p))
		}
		wg.Wait()
		if ok, msg := lincheck.Check(rec.History()); !ok {
			t.Fatalf("round %d: %s\n%s", round, msg, m.Dump())
		}
		mustCheck(t, m)
	}
}

// lcOutcome converts a core batch outcome to the lincheck enum.
func lcOutcome(o BatchOutcome) lincheck.BatchOutcome {
	switch o {
	case BatchInserted:
		return lincheck.BatchInserted
	case BatchUpdated:
		return lincheck.BatchUpdated
	case BatchRemoved:
		return lincheck.BatchRemoved
	case BatchAbsent:
		return lincheck.BatchAbsent
	case BatchExists:
		return lincheck.BatchExists
	default:
		return 0
	}
}

// randomBatchEvent issues one small mixed batch (duplicate keys included) and
// returns the recorded event.
func randomBatchEvent(m *Map[int64], rng *rand.Rand, p, i, keySpace int) ([]BatchOp[int64], []lincheck.BatchItem) {
	n := 1 + rng.Intn(3)
	ops := make([]BatchOp[int64], n)
	items := make([]lincheck.BatchItem, n)
	for b := range ops {
		k := int64(rng.Intn(keySpace))
		v := int64(p*1000 + i*10 + b)
		switch rng.Intn(4) {
		case 0:
			ops[b] = BatchOp[int64]{Key: k, Del: true}
			items[b] = lincheck.BatchItem{Key: k, Del: true}
		case 1:
			ops[b] = BatchOp[int64]{Key: k, Val: &v, InsertOnly: true}
			items[b] = lincheck.BatchItem{Key: k, Val: v, InsertOnly: true}
		default:
			ops[b] = BatchOp[int64]{Key: k, Val: &v}
			items[b] = lincheck.BatchItem{Key: k, Val: v}
		}
	}
	return ops, items
}

// TestLinearizabilityWithBatches machine-checks the batch commit protocol's
// headline claim: a batch whose keys all fall in one data chunk commits as a
// single atomic unit. The single-layer, wide-chunk config pins every batch to
// one group (the head chunk owns the whole key space, towers never route ops
// out, the sentinel occupies the minimum), so the recorded histories must
// linearize with KindBatch as one event. Point ops and range queries mix in
// as independent observers.
func TestLinearizabilityWithBatches(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LayerCount = 1

	const (
		rounds   = 60
		procs    = 3
		opsEach  = 4
		keySpace = 4
	)
	for round := 0; round < rounds; round++ {
		m := newTestMap(t, cfg)
		rec := lincheck.NewRecorder()
		var wg sync.WaitGroup
		for p := 0; p < procs; p++ {
			wg.Add(1)
			go func(p int, seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for i := 0; i < opsEach; i++ {
					k := int64(rng.Intn(keySpace))
					switch rng.Intn(5) {
					case 0:
						v := int64(p*1000 + i)
						inv := rec.Begin()
						ok := m.Insert(k, &v)
						rec.End(lincheck.Event{Proc: p, Kind: lincheck.KindInsert, Key: k, Val: v, RetOK: ok}, inv)
					case 1:
						inv := rec.Begin()
						ok := m.Remove(k)
						rec.End(lincheck.Event{Proc: p, Kind: lincheck.KindRemove, Key: k, RetOK: ok}, inv)
					case 2:
						inv := rec.Begin()
						pv, ok := m.Lookup(k)
						var rv int64
						if ok {
							rv = *pv
						}
						rec.End(lincheck.Event{Proc: p, Kind: lincheck.KindLookup, Key: k, RetOK: ok, RetVal: rv}, inv)
					case 3:
						lo := k
						hi := lo + int64(rng.Intn(keySpace))
						inv := rec.Begin()
						var pairs []lincheck.KV
						m.RangeQuery(lo, hi, func(qk int64, qv *int64) bool {
							pairs = append(pairs, lincheck.KV{K: qk, V: *qv})
							return true
						})
						rec.End(lincheck.Event{Proc: p, Kind: lincheck.KindRangeQuery, Key: lo, Hi: hi, Pairs: pairs}, inv)
					default:
						ops, items := randomBatchEvent(m, rng, p, i, keySpace)
						inv := rec.Begin()
						res := m.ApplyBatch(ops)
						for b := range res {
							items[b].Outcome = lcOutcome(res[b].Outcome)
						}
						rec.End(lincheck.Event{Proc: p, Kind: lincheck.KindBatch, Items: items}, inv)
					}
				}
			}(p, int64(round*131+p))
		}
		wg.Wait()
		if ok, msg := lincheck.Check(rec.History()); !ok {
			t.Fatalf("round %d: %s\n%s", round, msg, m.Dump())
		}
		mustCheck(t, m)
	}
}

// TestBatchOutcomesSequentialLincheck replays single-threaded mixed batches on
// the multi-chunk configs through the lincheck model. Atomicity is moot with
// one thread; what this pins is that the per-op outcomes and final state of
// the full batch path — groups, splits, min-defer detours, tall-key routing —
// match the sequential specification exactly.
func TestBatchOutcomesSequentialLincheck(t *testing.T) {
	for _, name := range []string{"default", "tiny-chunks"} {
		cfg := testConfigs()[name]
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			const keySpace = 24
			for i := 0; i < 40; i++ {
				// Each window is a self-contained history on a fresh map: the
				// checker's model starts empty. The opening bulk batch grows
				// the structure (splits inside one group on tiny chunks), the
				// mixed batches then churn it, and the closing range query
				// pins the final state in full.
				m := newTestMap(t, cfg)
				rec := lincheck.NewRecorder()

				bulk := make([]BatchOp[int64], 16)
				bulkItems := make([]lincheck.BatchItem, len(bulk))
				for b := range bulk {
					k := int64(rng.Intn(keySpace))
					v := int64(i*1000 + b)
					bulk[b] = BatchOp[int64]{Key: k, Val: &v}
					bulkItems[b] = lincheck.BatchItem{Key: k, Val: v}
				}
				inv := rec.Begin()
				res := m.ApplyBatch(bulk)
				for b := range res {
					bulkItems[b].Outcome = lcOutcome(res[b].Outcome)
				}
				rec.End(lincheck.Event{Kind: lincheck.KindBatch, Items: bulkItems}, inv)

				for j := 0; j < 6; j++ {
					ops, items := randomBatchEvent(m, rng, 0, i*10+j, keySpace)
					inv := rec.Begin()
					res := m.ApplyBatch(ops)
					for b := range res {
						items[b].Outcome = lcOutcome(res[b].Outcome)
					}
					rec.End(lincheck.Event{Kind: lincheck.KindBatch, Items: items}, inv)
				}

				inv = rec.Begin()
				var pairs []lincheck.KV
				m.RangeQuery(0, keySpace, func(qk int64, qv *int64) bool {
					pairs = append(pairs, lincheck.KV{K: qk, V: *qv})
					return true
				})
				rec.End(lincheck.Event{Kind: lincheck.KindRangeQuery, Key: 0, Hi: keySpace, Pairs: pairs}, inv)

				if ok, msg := lincheck.Check(rec.History()); !ok {
					t.Fatalf("window %d: %s\n%s", i, msg, m.Dump())
				}
				mustCheck(t, m)
			}
		})
	}
}
