package core

import (
	"math/rand"
	"sync"
	"testing"

	"skipvector/internal/lincheck"
)

// TestLinearizability records many short concurrent histories against the
// skip vector and verifies each is linearizable under the sequential map
// specification. Tiny chunks and a tiny key space maximize the chance that
// operations overlap inside one node, which is where the seqlock/freeze
// machinery must deliver atomicity.
func TestLinearizability(t *testing.T) {
	cfgs := map[string]Config{
		"tiny-chunks": testConfigs()["tiny-chunks"],
		"sl":          testConfigs()["sl"],
		"default":     testConfigs()["default"],
	}
	for name, cfg := range cfgs {
		t.Run(name, func(t *testing.T) {
			const (
				rounds   = 60
				procs    = 3
				opsEach  = 4
				keySpace = 3
			)
			for round := 0; round < rounds; round++ {
				m := newTestMap(t, cfg)
				rec := lincheck.NewRecorder()
				var wg sync.WaitGroup
				for p := 0; p < procs; p++ {
					wg.Add(1)
					go func(p int, seed int64) {
						defer wg.Done()
						rng := rand.New(rand.NewSource(seed))
						for i := 0; i < opsEach; i++ {
							k := int64(rng.Intn(keySpace))
							switch rng.Intn(3) {
							case 0:
								v := int64(p*1000 + i)
								inv := rec.Begin()
								ok := m.Insert(k, &v)
								rec.End(lincheck.Event{
									Proc: p, Kind: lincheck.KindInsert,
									Key: k, Val: v, RetOK: ok,
								}, inv)
							case 1:
								inv := rec.Begin()
								ok := m.Remove(k)
								rec.End(lincheck.Event{
									Proc: p, Kind: lincheck.KindRemove,
									Key: k, RetOK: ok,
								}, inv)
							default:
								inv := rec.Begin()
								pv, ok := m.Lookup(k)
								var rv int64
								if ok {
									rv = *pv
								}
								rec.End(lincheck.Event{
									Proc: p, Kind: lincheck.KindLookup,
									Key: k, RetOK: ok, RetVal: rv,
								}, inv)
							}
						}
					}(p, int64(round*100+p))
				}
				wg.Wait()
				if ok, msg := lincheck.Check(rec.History()); !ok {
					t.Fatalf("round %d: %s\n%s", round, msg, m.Dump())
				}
				mustCheck(t, m)
			}
		})
	}
}

// TestLinearizabilityWithRangeOps mixes point ops with genuine multi-key
// range operations, machine-checking the linearizable-range claim
// (Section IV-C / V-B): every RangeQuery snapshot must equal some
// linearization point's state restricted to its window, and every
// RangeUpdate must apply its delta to the whole window atomically.
func TestLinearizabilityWithRangeOps(t *testing.T) {
	cfg := testConfigs()["tiny-chunks"]
	const (
		rounds   = 40
		procs    = 3
		opsEach  = 4
		keySpace = 4
	)
	for round := 0; round < rounds; round++ {
		m := newTestMap(t, cfg)
		rec := lincheck.NewRecorder()
		var wg sync.WaitGroup
		for p := 0; p < procs; p++ {
			wg.Add(1)
			go func(p int, seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for i := 0; i < opsEach; i++ {
					k := int64(rng.Intn(keySpace))
					switch rng.Intn(5) {
					case 0:
						v := int64(p*1000 + i)
						inv := rec.Begin()
						ok := m.Insert(k, &v)
						rec.End(lincheck.Event{Proc: p, Kind: lincheck.KindInsert, Key: k, Val: v, RetOK: ok}, inv)
					case 1:
						inv := rec.Begin()
						ok := m.Remove(k)
						rec.End(lincheck.Event{Proc: p, Kind: lincheck.KindRemove, Key: k, RetOK: ok}, inv)
					case 2:
						inv := rec.Begin()
						pv, ok := m.Lookup(k)
						var rv int64
						if ok {
							rv = *pv
						}
						rec.End(lincheck.Event{Proc: p, Kind: lincheck.KindLookup, Key: k, RetOK: ok, RetVal: rv}, inv)
					case 3:
						// Multi-key window: the snapshot must be exact.
						lo := k
						hi := lo + int64(rng.Intn(keySpace))
						inv := rec.Begin()
						var pairs []lincheck.KV
						m.RangeQuery(lo, hi, func(qk int64, qv *int64) bool {
							pairs = append(pairs, lincheck.KV{K: qk, V: *qv})
							return true
						})
						rec.End(lincheck.Event{Proc: p, Kind: lincheck.KindRangeQuery, Key: lo, Hi: hi, Pairs: pairs}, inv)
					default:
						// Atomic increment over a window.
						lo := k
						hi := lo + int64(rng.Intn(keySpace))
						inv := rec.Begin()
						count := m.RangeUpdate(lo, hi, func(_ int64, v *int64) *int64 {
							nv := *v + 1
							return &nv
						})
						rec.End(lincheck.Event{Proc: p, Kind: lincheck.KindRangeUpdate, Key: lo, Hi: hi, Delta: 1, RetVal: int64(count)}, inv)
					}
				}
			}(p, int64(round*31+p))
		}
		wg.Wait()
		if ok, msg := lincheck.Check(rec.History()); !ok {
			t.Fatalf("round %d: %s\n%s", round, msg, m.Dump())
		}
		mustCheck(t, m)
	}
}
