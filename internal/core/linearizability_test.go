package core

import (
	"math/rand"
	"sync"
	"testing"

	"skipvector/internal/lincheck"
)

// TestLinearizability records many short concurrent histories against the
// skip vector and verifies each is linearizable under the sequential map
// specification. Tiny chunks and a tiny key space maximize the chance that
// operations overlap inside one node, which is where the seqlock/freeze
// machinery must deliver atomicity.
func TestLinearizability(t *testing.T) {
	cfgs := map[string]Config{
		"tiny-chunks": testConfigs()["tiny-chunks"],
		"sl":          testConfigs()["sl"],
		"default":     testConfigs()["default"],
	}
	for name, cfg := range cfgs {
		t.Run(name, func(t *testing.T) {
			const (
				rounds   = 60
				procs    = 3
				opsEach  = 4
				keySpace = 3
			)
			for round := 0; round < rounds; round++ {
				m := newTestMap(t, cfg)
				rec := lincheck.NewRecorder()
				var wg sync.WaitGroup
				for p := 0; p < procs; p++ {
					wg.Add(1)
					go func(p int, seed int64) {
						defer wg.Done()
						rng := rand.New(rand.NewSource(seed))
						for i := 0; i < opsEach; i++ {
							k := int64(rng.Intn(keySpace))
							switch rng.Intn(3) {
							case 0:
								v := int64(p*1000 + i)
								inv := rec.Begin()
								ok := m.Insert(k, &v)
								rec.End(lincheck.Event{
									Proc: p, Kind: lincheck.KindInsert,
									Key: k, Val: v, RetOK: ok,
								}, inv)
							case 1:
								inv := rec.Begin()
								ok := m.Remove(k)
								rec.End(lincheck.Event{
									Proc: p, Kind: lincheck.KindRemove,
									Key: k, RetOK: ok,
								}, inv)
							default:
								inv := rec.Begin()
								pv, ok := m.Lookup(k)
								var rv int64
								if ok {
									rv = *pv
								}
								rec.End(lincheck.Event{
									Proc: p, Kind: lincheck.KindLookup,
									Key: k, RetOK: ok, RetVal: rv,
								}, inv)
							}
						}
					}(p, int64(round*100+p))
				}
				wg.Wait()
				if ok, msg := lincheck.Check(rec.History()); !ok {
					t.Fatalf("round %d: %s\n%s", round, msg, m.Dump())
				}
				mustCheck(t, m)
			}
		})
	}
}

// TestLinearizabilityWithRangeOps mixes point ops with single-key
// RangeUpdate (modelled as remove+insert? No — RangeUpdate preserves
// presence, so model its observation as a Lookup and its write as a value
// change). Here we restrict to RangeQuery observations: every key/value
// pair a linearizable range query reports must be consistent with some
// linearization, which for a single-key window reduces to a Lookup event.
func TestLinearizabilityWithRangeOps(t *testing.T) {
	cfg := testConfigs()["tiny-chunks"]
	const (
		rounds  = 40
		procs   = 3
		opsEach = 4
	)
	for round := 0; round < rounds; round++ {
		m := newTestMap(t, cfg)
		rec := lincheck.NewRecorder()
		var wg sync.WaitGroup
		for p := 0; p < procs; p++ {
			wg.Add(1)
			go func(p int, seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for i := 0; i < opsEach; i++ {
					k := int64(rng.Intn(3))
					switch rng.Intn(4) {
					case 0:
						v := int64(p*1000 + i)
						inv := rec.Begin()
						ok := m.Insert(k, &v)
						rec.End(lincheck.Event{Proc: p, Kind: lincheck.KindInsert, Key: k, Val: v, RetOK: ok}, inv)
					case 1:
						inv := rec.Begin()
						ok := m.Remove(k)
						rec.End(lincheck.Event{Proc: p, Kind: lincheck.KindRemove, Key: k, RetOK: ok}, inv)
					case 2:
						inv := rec.Begin()
						pv, ok := m.Lookup(k)
						var rv int64
						if ok {
							rv = *pv
						}
						rec.End(lincheck.Event{Proc: p, Kind: lincheck.KindLookup, Key: k, RetOK: ok, RetVal: rv}, inv)
					default:
						// Single-key linearizable range query == Lookup.
						inv := rec.Begin()
						found := false
						var rv int64
						m.RangeQuery(k, k, func(_ int64, v *int64) bool {
							found = true
							rv = *v
							return true
						})
						rec.End(lincheck.Event{Proc: p, Kind: lincheck.KindLookup, Key: k, RetOK: found, RetVal: rv}, inv)
					}
				}
			}(p, int64(round*31+p))
		}
		wg.Wait()
		if ok, msg := lincheck.Check(rec.History()); !ok {
			t.Fatalf("round %d: %s", round, msg)
		}
	}
}
