package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"skipvector/internal/chaos"
	"skipvector/internal/hazard"
	"skipvector/internal/telemetry"
)

// invariantExpect parameterizes verifyMetricInvariants for the workload that
// preceded the check. Zero values disable the corresponding assertion.
type invariantExpect struct {
	// minFreezes is a lower bound on the freeze counter; a successful Insert
	// freezes at least one node per layer it touches, so a run with telemetry
	// enabled throughout must report Freezes ≥ successful inserts.
	minFreezes int64
	// occLo/occHi bound the mean interior data-chunk occupancy. Asserted only
	// when the structure holds at least minDataChunks interior data chunks,
	// so a nearly empty map cannot trip the envelope on noise.
	occLo, occHi  float64
	minDataChunks int
	// batchOps, when nonzero, is the exact number of per-op results the
	// workload collected from ApplyBatch calls with telemetry enabled
	// throughout: the batch-size histogram's mass must equal it.
	batchOps int64
	// snapshotsClosed asserts the workload closed every snapshot it pinned:
	// no snapshot may remain active and the version store must have pruned
	// to empty. This is the check the suppressed-release teeth test trips.
	snapshotsClosed bool
	// minSnapshots is a lower bound on snapshots pinned during the run.
	minSnapshots int64
}

// verifyMetricInvariants asserts the paper-level accounting identities over a
// quiescent map's metric surface. It is the headline check of the telemetry
// suite: any regression in reclamation precision, restart accounting, or chunk
// balance surfaces here as a non-nil error. Callers must guarantee quiescence
// (no operations in flight) — the identities below hold mid-churn only in
// their inequality forms, and this helper checks the stronger quiescent forms.
func verifyMetricInvariants(m *Map[int64], exp invariantExpect) error {
	s := m.Stats()

	// Reclamation precision: every reclaimed node was first retired, and at
	// quiescence the pending garbage is exactly the gap between the two.
	if s.Reclaimed > s.RetiredTotal {
		return fmt.Errorf("reclaimed %d > retired %d: reclamation double-counted a node",
			s.Reclaimed, s.RetiredTotal)
	}
	if got := s.RetiredTotal - s.Reclaimed; got != s.Retired {
		return fmt.Errorf("pending garbage %d ≠ retired %d − reclaimed %d",
			s.Retired, s.RetiredTotal, s.Reclaimed)
	}

	// Bounded garbage (Michael's bound): a handle scans once its retired list
	// reaches ScanThreshold, and a scan leaves at most one node per published
	// hazard slot behind, so neither the pending total nor the per-handle
	// high-water mark may exceed ScanThreshold + handles × SlotsPerHandle
	// (per handle for the HWM, × handles for the total). The bound does not
	// apply while a snapshot is pinned: the epoch-aware recycle filter holds
	// every post-pin-retired data chunk regardless of hazard slots, which is
	// the documented price of a pinned snapshot, not a reclamation bug. (The
	// sticky RetireHWM can also record such an era; callers reset it along
	// with the pin, as the teeth tests do.)
	if s.Handles > 0 && s.SnapshotsActive == 0 {
		perHandle := int64(hazard.ScanThreshold + s.Handles*hazard.SlotsPerHandle)
		if s.Retired > s.Handles*perHandle {
			return fmt.Errorf("pending garbage %d exceeds precise-reclamation bound %d (%d handles)",
				s.Retired, s.Handles*perHandle, s.Handles)
		}
		if s.RetireHWM > perHandle {
			return fmt.Errorf("retire-list high-water %d exceeds per-handle bound %d (%d handles)",
				s.RetireHWM, perHandle, s.Handles)
		}
	}

	// Restart accounting: every restart is charged to exactly one op kind.
	// opSnap joined the partition with MVCC snapshots (point-read descents;
	// snapshot scans have no restart path at all).
	kinds := s.RestartsLookup + s.RestartsInsert + s.RestartsRemove + s.RestartsNav + s.RestartsRange + s.RestartsBatch + s.RestartsSnap
	if kinds != s.Restarts {
		return fmt.Errorf("per-kind restarts sum to %d but total is %d", kinds, s.Restarts)
	}

	// Snapshot accounting. Release conservation: a snapshot releases at most
	// once (Close is idempotent via a swap), so released never exceeds pinned
	// and the active gauge is exactly the difference at quiescence. Version
	// mass conservation: every pre-image record the store ever admitted was
	// counted by exactly one push and leaves through exactly one prune, so
	// the resident count is the difference of the two monotone totals. (The
	// tempting "CoW copies ≤ freezes" does NOT hold in general — Remove,
	// merges, and range updates publish pre-images without freezing — so the
	// suite asserts the conservation identities instead.)
	if s.SnapshotsReleased > s.SnapshotsPinned {
		return fmt.Errorf("snapshots released %d > pinned %d", s.SnapshotsReleased, s.SnapshotsPinned)
	}
	if s.SnapshotsActive != s.SnapshotsPinned-s.SnapshotsReleased {
		return fmt.Errorf("active snapshots %d ≠ pinned %d − released %d",
			s.SnapshotsActive, s.SnapshotsPinned, s.SnapshotsReleased)
	}
	if s.SnapshotCowPruned > s.SnapshotCow {
		return fmt.Errorf("pruned records %d > pushed records %d", s.SnapshotCowPruned, s.SnapshotCow)
	}
	if s.SnapshotRecords != s.SnapshotCow-s.SnapshotCowPruned {
		return fmt.Errorf("resident records %d ≠ pushed %d − pruned %d: version mass not conserved",
			s.SnapshotRecords, s.SnapshotCow, s.SnapshotCowPruned)
	}
	if s.SnapshotsPinned < exp.minSnapshots {
		return fmt.Errorf("snapshots pinned %d < expected minimum %d", s.SnapshotsPinned, exp.minSnapshots)
	}
	if exp.snapshotsClosed {
		if s.SnapshotsActive != 0 {
			return fmt.Errorf("%d snapshots still pinned at quiescence", s.SnapshotsActive)
		}
		if s.SnapshotRecords != 0 {
			return fmt.Errorf("version store holds %d records with no snapshot pinned", s.SnapshotRecords)
		}
	}

	// Batch accounting: commit units partition batches. Every op of a recorded
	// batch lands in exactly one commit unit (a grouped chunk commit or a
	// singleton-routed key run), so the two histograms carry the same mass, a
	// batch commits in at least one unit, and no unit outgrows the largest
	// batch.
	bs := m.batchSize.Snapshot()
	gs := m.batchGroupSize.Snapshot()
	if gs.Sum != bs.Sum {
		return fmt.Errorf("commit-unit mass %d ≠ batch-size mass %d: batch ops lost or double-committed",
			gs.Sum, bs.Sum)
	}
	if gs.Count < bs.Count {
		return fmt.Errorf("%d commit units for %d batches: some batch committed in zero units",
			gs.Count, bs.Count)
	}
	maxBucket := func(h telemetry.HistSnapshot) int {
		for i := telemetry.NumBuckets - 1; i >= 0; i-- {
			if h.Buckets[i] != 0 {
				return i
			}
		}
		return -1
	}
	if mg, mb := maxBucket(gs), maxBucket(bs); mg > mb {
		return fmt.Errorf("largest commit unit falls in bucket %d but the largest batch only in bucket %d",
			mg, mb)
	}
	if exp.batchOps > 0 && bs.Sum != exp.batchOps {
		return fmt.Errorf("batch-size histogram mass %d ≠ %d per-op results returned",
			bs.Sum, exp.batchOps)
	}

	if s.Freezes < exp.minFreezes {
		return fmt.Errorf("freezes %d < expected minimum %d", s.Freezes, exp.minFreezes)
	}

	// Descent depth can never exceed the number of index layers: each
	// observation counts exchangeDown calls, one per index layer at most.
	maxDepth := int64(m.cfg.LayerCount - 1)
	depth := m.descentDepth.Snapshot()
	for i := telemetry.BucketOf(maxDepth) + 1; i < telemetry.NumBuckets; i++ {
		if depth.Buckets[i] != 0 {
			return fmt.Errorf("descent-depth bucket %d nonempty but depth is bounded by %d index layers",
				i, maxDepth)
		}
	}
	if depth.Sum > depth.Count*maxDepth {
		return fmt.Errorf("descent-depth sum %d exceeds %d observations × %d layers",
			depth.Sum, depth.Count, maxDepth)
	}

	// Chunk balance: interior data chunks must average inside the configured
	// envelope once the structure is big enough for means to be meaningful.
	if occ := m.Occupancy(); exp.occHi > 0 && occ.DataChunks >= exp.minDataChunks {
		if occ.DataMean < exp.occLo || occ.DataMean > exp.occHi {
			return fmt.Errorf("mean data occupancy %.2f outside envelope [%.2f, %.2f] (%d chunks, %d elems)",
				occ.DataMean, exp.occLo, exp.occHi, occ.DataChunks, occ.DataElems)
		}
	}
	return nil
}

// TestMetricInvariantsAfterChaosStress is the positive half of the invariant
// suite: a chaos-perturbed concurrent mixed workload (all six op kinds, so
// every restart counter is exercised), then the full quiescent verification
// plus a well-formedness pass over both exposition formats.
func TestMetricInvariantsAfterChaosStress(t *testing.T) {
	cfgs := map[string]Config{
		"default":     testConfigs()["default"],
		"tiny-chunks": testConfigs()["tiny-chunks"],
	}
	for name, cfg := range cfgs {
		t.Run(name, func(t *testing.T) {
			prev := telemetry.Enabled()
			telemetry.SetEnabled(true)
			defer telemetry.SetEnabled(prev)

			const goroutines = 6
			opsPerG := 3000
			if testing.Short() {
				opsPerG = 800
			}
			m := newTestMap(t, cfg)
			var inserts, batchOps, snapsTaken atomic.Int64

			seed := uint64(0x7e1e + len(name))
			chaos.Enable(stressChaosConfig(seed))
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					base := int64(g) * 10_000
					rng := rand.New(rand.NewSource(int64(g) + 7))
					for i := 0; i < opsPerG; i++ {
						k := base + int64(rng.Intn(512))
						if i%250 == 249 {
							// Pin, scan, point-read, close: exercises the CoW
							// push/prune counters and the opSnap restart lane.
							s := m.Snapshot()
							s.Range(k, k+128, func(int64, *int64) bool { return true })
							s.Contains(k)
							s.Close()
							snapsTaken.Add(1)
							continue
						}
						switch rng.Intn(9) {
						case 0, 1, 2:
							v := int64(i)
							if m.Insert(k, &v) {
								inserts.Add(1)
							}
						case 3:
							m.Remove(k)
						case 4:
							m.Floor(k)
						case 5:
							m.Ceiling(k)
						case 6:
							m.RangeQuery(k, k+64, func(int64, *int64) bool { return true })
						case 7:
							// Mixed batch over a clustered key window: upserts,
							// insert-onlys, and deletes, duplicates included.
							n := 1 + rng.Intn(8)
							batch := make([]BatchOp[int64], n)
							for b := range batch {
								bk := k + int64(rng.Intn(16))
								switch rng.Intn(4) {
								case 0:
									batch[b] = BatchOp[int64]{Key: bk, Del: true}
								case 1:
									batch[b] = BatchOp[int64]{Key: bk, Val: v64(int64(i + b)), InsertOnly: true}
								default:
									batch[b] = BatchOp[int64]{Key: bk, Val: v64(int64(i + b))}
								}
							}
							batchOps.Add(int64(len(m.ApplyBatch(batch))))
						default:
							m.Lookup(k)
						}
					}
				}(g)
			}
			wg.Wait()
			rep := chaos.Disable()
			t.Logf("%v", rep)
			if rep.Fails() == 0 || rep.Perturbations() == 0 {
				t.Fatalf("chaos injected nothing: %v", rep)
			}

			exp := invariantExpect{
				minFreezes:      inserts.Load(),
				occLo:           float64(cfg.TargetDataVectorSize) / 2,
				occHi:           2 * float64(cfg.TargetDataVectorSize),
				minDataChunks:   4,
				batchOps:        batchOps.Load(),
				snapshotsClosed: true,
				minSnapshots:    snapsTaken.Load(),
			}
			if err := verifyMetricInvariants(m, exp); err != nil {
				t.Fatalf("metric invariants violated after stress: %v\nstats: %+v", err, m.Stats())
			}
			occ := m.Occupancy()
			t.Logf("occupancy: data %.2f over %d chunks, index %.2f over %d chunks",
				occ.DataMean, occ.DataChunks, occ.IndexMean, occ.IndexChunks)
			mustCheck(t, m)

			// Exposition well-formedness over live data: the Prometheus text
			// must carry the headline series, and the expvar JSON must parse.
			var buf bytes.Buffer
			if err := m.WriteMetrics(&buf); err != nil {
				t.Fatalf("WriteMetrics: %v", err)
			}
			text := buf.String()
			for _, want := range []string{
				"sv_restarts_total", "sv_descent_depth_bucket", "sv_hazard_retired_total",
				"sv_data_chunk_occupancy_sum", "sv_seqlock_read_spins_total",
			} {
				if !strings.Contains(text, want) {
					t.Errorf("Prometheus exposition missing %q", want)
				}
			}
			var decoded map[string]any
			if err := json.Unmarshal([]byte(m.Metrics().String()), &decoded); err != nil {
				t.Fatalf("expvar JSON does not parse: %v", err)
			}
		})
	}
}

// TestInvariantSuiteDetectsSuppressedReclaim proves the suite has teeth: with
// reclamation deliberately suppressed through the hazard domain's test hook,
// retired nodes accumulate past the precise-reclamation bound and
// verifyMetricInvariants must fail. Lifting the suppression and flushing must
// then restore a passing state, showing the failure was the injected bug and
// not a latent one.
func TestInvariantSuiteDetectsSuppressedReclaim(t *testing.T) {
	prev := telemetry.Enabled()
	telemetry.SetEnabled(true)
	defer telemetry.SetEnabled(prev)

	cfg := testConfigs()["tiny-chunks"]
	m := newTestMap(t, cfg)
	m.mem.domain.SetReclaimSuppressed(true)

	// Heavy single-threaded churn: with T_D = 2 every few inserts split and
	// every removal wave merges, so retirements pile up fast.
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 4000; i++ {
		k := int64(rng.Intn(512))
		if rng.Intn(2) == 0 {
			m.Insert(k, v64(int64(i)))
		} else {
			m.Remove(k)
		}
	}

	s := m.Stats()
	if s.Reclaimed != 0 {
		t.Fatalf("suppression hook leaked: %d nodes reclaimed", s.Reclaimed)
	}
	if s.RetiredTotal == 0 {
		t.Fatalf("workload retired nothing; suppression cannot be observed")
	}
	err := verifyMetricInvariants(m, invariantExpect{})
	if err == nil {
		t.Fatalf("invariant suite passed despite suppressed reclamation (retired=%d pending=%d)",
			s.RetiredTotal, s.Retired)
	}
	t.Logf("suite correctly rejected suppressed reclamation: %v", err)

	// Lift the injected fault. The retire-list high-water mark is sticky by
	// design and still records the pile-up, so it is reset along with the
	// fault that caused it; everything else must recover on its own.
	m.mem.domain.SetReclaimSuppressed(false)
	m.FlushRetired()
	m.mem.domain.ResetRetireHWM()
	if err := verifyMetricInvariants(m, invariantExpect{}); err != nil {
		t.Fatalf("invariants still failing after suppression lifted and retirees flushed: %v", err)
	}
	if s = m.Stats(); s.Retired != 0 {
		t.Fatalf("flush after unsuppression left %d nodes pending", s.Retired)
	}
	mustCheck(t, m)
}

// TestInvariantSuiteDetectsSuppressedSnapshotRelease is the snapshot teeth
// test: a chaos-churned run that pins snapshots and deliberately never closes
// one must fail the quiescent snapshot checks (an active pin, a non-empty
// version store, and retired chunks the epoch filter refuses to recycle).
// Closing the pin and flushing must restore a passing state.
func TestInvariantSuiteDetectsSuppressedSnapshotRelease(t *testing.T) {
	prev := telemetry.Enabled()
	telemetry.SetEnabled(true)
	defer telemetry.SetEnabled(prev)

	cfg := testConfigs()["tiny-chunks"]
	m := newTestMap(t, cfg)
	for k := int64(0); k < 256; k++ {
		m.Insert(k, v64(k))
	}

	chaos.Enable(stressChaosConfig(0x5a7e9))
	leakedPin := m.Snapshot() // the suppressed release
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) + 3))
			for i := 0; i < 1500; i++ {
				k := int64(rng.Intn(512))
				switch rng.Intn(4) {
				case 0:
					m.Remove(k)
				case 1:
					m.Upsert(k, v64(int64(i)))
				case 2:
					s := m.Snapshot() // well-behaved pins, properly closed
					s.Contains(k)
					s.Close()
				default:
					m.Insert(k, v64(int64(i)))
				}
			}
		}(g)
	}
	wg.Wait()
	rep := chaos.Disable()
	if rep.Fails() == 0 {
		t.Fatalf("chaos injected nothing: %v", rep)
	}

	m.FlushRetired()
	st := m.Stats()
	if st.SnapshotRecords == 0 {
		t.Fatal("churn under the leaked pin published no pre-images; suppression cannot be observed")
	}
	if st.Retired == 0 {
		t.Fatal("no retired chunks held by the leaked pin; suppression cannot be observed")
	}
	err := verifyMetricInvariants(m, invariantExpect{snapshotsClosed: true})
	if err == nil {
		t.Fatalf("invariant suite passed despite an unreleased snapshot (active=%d records=%d)",
			st.SnapshotsActive, st.SnapshotRecords)
	}
	t.Logf("suite correctly rejected suppressed snapshot release: %v", err)

	// Lift the fault: close the pin, flush, and everything must recover. The
	// retire-list high-water mark is sticky and still records the pinned-era
	// pile-up, so it is reset along with the fault that caused it.
	leakedPin.Close()
	m.FlushRetired()
	m.mem.domain.ResetRetireHWM()
	if err := verifyMetricInvariants(m, invariantExpect{snapshotsClosed: true}); err != nil {
		t.Fatalf("invariants still failing after the pin was released: %v", err)
	}
	if st = m.Stats(); st.Retired != 0 {
		t.Fatalf("flush after release left %d nodes pending", st.Retired)
	}
	mustCheck(t, m)
}

// TestHazardChurnNoLeak drives insert/remove churn through many explicit
// handles, drains the map, and proves precise reclamation end to end: pending
// garbage stays under Michael's bound during churn, drains to exactly zero at
// quiescence, and the live structure shrinks back to its sentinels.
func TestHazardChurnNoLeak(t *testing.T) {
	cfg := DefaultConfig()
	m := newTestMap(t, cfg)

	const workers = 8
	keySpace := int64(4096)
	opsPerW := 6000
	if testing.Short() {
		keySpace, opsPerW = 1024, 1500
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := m.NewHandle()
			defer h.Close()
			rng := rand.New(rand.NewSource(int64(w) * 31))
			for i := 0; i < opsPerW; i++ {
				k := int64(rng.Intn(int(keySpace)))
				if rng.Intn(3) == 0 {
					h.Remove(k)
				} else {
					h.Insert(k, v64(k))
				}
			}
		}(w)
	}
	wg.Wait()

	// Mid-life checks: garbage bounded, structure sized O(n / targetSize).
	s := m.Stats()
	bound := s.Handles * int64(hazard.ScanThreshold+s.Handles*hazard.SlotsPerHandle)
	if s.Retired > bound {
		t.Fatalf("pending garbage %d exceeds bound %d after churn (%d handles)", s.Retired, bound, s.Handles)
	}
	interior := 0
	for _, c := range m.NodeCount() {
		interior += c - 2 // exclude the head and tail sentinels per layer
	}
	maxNodes := 4 + 4*int(keySpace)/cfg.TargetDataVectorSize
	if interior > maxNodes {
		t.Fatalf("%d interior nodes for ≤%d keys (limit %d): structure not O(n/targetSize)",
			interior, keySpace, maxNodes)
	}

	// Drain every key, then sweep readers across the empty map so lazy
	// maintenance unlinks the empty orphans the drain left behind.
	for k := int64(0); k < keySpace; k++ {
		m.Remove(k)
	}
	for k := int64(0); k < keySpace; k += keySpace / 16 {
		m.Contains(k)
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d after full drain", m.Len())
	}
	m.FlushRetired()

	s = m.Stats()
	if s.Retired != 0 {
		t.Fatalf("%d nodes still pending after quiescent flush (retired %d, reclaimed %d)",
			s.Retired, s.RetiredTotal, s.Reclaimed)
	}
	if s.RetiredTotal != s.Reclaimed {
		t.Fatalf("retired %d ≠ reclaimed %d at quiescence", s.RetiredTotal, s.Reclaimed)
	}
	interior = 0
	for _, c := range m.NodeCount() {
		interior += c - 2
	}
	if interior > 2*cfg.LayerCount {
		t.Fatalf("%d interior nodes survive an empty map (layers %d): leak", interior, cfg.LayerCount)
	}
	mustCheck(t, m)
}

// TestStatsSnapshotTearFree snapshots Stats continuously while chaos-stressed
// mutators run, asserting on every snapshot the two ordering identities the
// collector promises (per-kind restarts never exceed the total; reclaimed
// never exceeds retired) plus monotonicity of the cumulative counters between
// consecutive snapshots. Under -race this also proves the collector performs
// no unsynchronized reads.
func TestStatsSnapshotTearFree(t *testing.T) {
	prev := telemetry.Enabled()
	telemetry.SetEnabled(true)
	defer telemetry.SetEnabled(prev)

	cfg := testConfigs()["tiny-chunks"]
	m := newTestMap(t, cfg)
	const goroutines = 4
	opsPerG := 4000
	if testing.Short() {
		opsPerG = 1000
	}

	chaos.Enable(stressChaosConfig(0x5a45))
	var wg sync.WaitGroup
	done := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := int64(g) * 10_000
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < opsPerG; i++ {
				k := base + int64(rng.Intn(128))
				switch rng.Intn(5) {
				case 0, 1:
					m.Insert(k, v64(int64(i)))
				case 2:
					m.Remove(k)
				case 3:
					m.ApplyBatch([]BatchOp[int64]{
						{Key: k, Val: v64(int64(i))},
						{Key: k + 1, Del: true},
						{Key: k + 2, Val: v64(int64(i)), InsertOnly: true},
					})
				default:
					m.Lookup(k)
				}
			}
		}(g)
	}

	var snapshots atomic.Int64
	var mutating atomic.Bool
	mutating.Store(true)
	var snapErr error
	go func() {
		defer close(done)
		var last StatsSnapshot
		// One extra pass after the mutators stop so the final quiescent state
		// is also checked.
		for final := false; ; final = !mutating.Load() {
			s := m.Stats()
			snapshots.Add(1)
			kinds := s.RestartsLookup + s.RestartsInsert + s.RestartsRemove + s.RestartsNav + s.RestartsRange + s.RestartsBatch
			switch {
			case kinds > s.Restarts:
				snapErr = fmt.Errorf("snapshot tore: per-kind restarts %d > total %d", kinds, s.Restarts)
			case s.Reclaimed > s.RetiredTotal:
				snapErr = fmt.Errorf("snapshot tore: reclaimed %d > retired %d", s.Reclaimed, s.RetiredTotal)
			case s.Restarts < last.Restarts, s.Splits < last.Splits, s.Merges < last.Merges,
				s.Orphans < last.Orphans, s.RetiredTotal < last.RetiredTotal,
				s.Reclaimed < last.Reclaimed, s.Freezes < last.Freezes:
				snapErr = fmt.Errorf("cumulative counter went backwards: %+v then %+v", last, s)
			}
			if snapErr != nil || final {
				return
			}
			last = s
			// Throttle: an unyielding spin loop starves the chaos-injected
			// Gosched yields in the mutators, and tens of snapshots per
			// millisecond prove nothing extra.
			time.Sleep(50 * time.Microsecond)
		}
	}()
	wg.Wait()
	mutating.Store(false)
	<-done
	rep := chaos.Disable()
	if rep.Fails() == 0 {
		t.Fatalf("chaos injected nothing: %v", rep)
	}
	if snapErr != nil {
		t.Fatalf("%v (after %d snapshots)", snapErr, snapshots.Load())
	}
	if snapshots.Load() < 10 {
		t.Fatalf("snapshotter only ran %d times; test proved nothing", snapshots.Load())
	}
	t.Logf("%d tear-free snapshots under chaos", snapshots.Load())
	mustCheck(t, m)
}
