package core

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"skipvector/internal/chaos"
	"skipvector/internal/lincheck"
)

// snapPairs materializes a snapshot's full content via Ascend.
func snapPairs(s *Snapshot[int64]) ([]int64, []int64) {
	var ks, vs []int64
	s.Ascend(func(k int64, v *int64) bool {
		ks = append(ks, k)
		vs = append(vs, *v)
		return true
	})
	return ks, vs
}

// modelPairs sorts a reference map into (keys, values) slices.
func modelPairs(ref map[int64]int64) ([]int64, []int64) {
	ks := make([]int64, 0, len(ref))
	for k := range ref {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	vs := make([]int64, len(ks))
	for i, k := range ks {
		vs[i] = ref[k]
	}
	return ks, vs
}

// mustEqualModel fails unless the snapshot's content equals the reference
// exactly — same keys, same values, ascending order — via Ascend, and agrees
// on point reads for every reference key.
func mustEqualModel(t *testing.T, s *Snapshot[int64], ref map[int64]int64, label string) {
	t.Helper()
	ks, vs := snapPairs(s)
	wantK, wantV := modelPairs(ref)
	if len(ks) != len(wantK) {
		t.Fatalf("%s: snapshot holds %d keys, model %d\n got %v\nwant %v", label, len(ks), len(wantK), ks, wantK)
	}
	for i := range ks {
		if ks[i] != wantK[i] || vs[i] != wantV[i] {
			t.Fatalf("%s: position %d: got (%d,%d), want (%d,%d)", label, i, ks[i], vs[i], wantK[i], wantV[i])
		}
	}
	for k, want := range ref {
		v, ok := s.Get(k)
		if !ok || *v != want {
			t.Fatalf("%s: Get(%d) = (%v,%t), want %d", label, k, v, ok, want)
		}
	}
}

// TestSnapshotBasicSemantics pins a view and proves post-pin writes of every
// kind — insert, remove, overwrite, range update, batch — are invisible to
// it while the live map moves on.
func TestSnapshotBasicSemantics(t *testing.T) {
	forAllConfigs(t, func(t *testing.T, cfg Config) {
		m := newTestMap(t, cfg)
		ref := map[int64]int64{}
		for k := int64(0); k < 300; k += 3 {
			m.Insert(k, v64(k*10))
			ref[k] = k * 10
		}

		s := m.Snapshot()
		defer s.Close()

		// Churn the live map in every way the API offers.
		for k := int64(1); k < 300; k += 3 {
			m.Insert(k, v64(-k)) // new keys
		}
		for k := int64(0); k < 150; k += 3 {
			m.Remove(k) // old keys gone
		}
		for k := int64(150); k < 300; k += 6 {
			m.Upsert(k, v64(777)) // old keys overwritten
		}
		m.RangeUpdate(200, 250, func(_ int64, v *int64) *int64 { return v64(*v + 1) })
		m.ApplyBatch([]BatchOp[int64]{
			{Key: 298, Del: true},
			{Key: 5000, Val: v64(1)},
		})

		mustEqualModel(t, s, ref, "pinned view after churn")

		// Absent-at-pin keys stay absent no matter what the live map holds.
		for _, k := range []int64{1, 299, 5000, 100000} {
			if s.Contains(k) {
				t.Fatalf("snapshot sees key %d inserted after the pin", k)
			}
		}
		if got := s.Len(); got != len(ref) {
			t.Fatalf("snapshot Len = %d, want %d", got, len(ref))
		}
		mustCheck(t, m)
	})
}

// TestSnapshotEmptyMap covers the degenerate pins: an empty map, and a map
// emptied after the pin.
func TestSnapshotEmptyMap(t *testing.T) {
	m := newTestMap(t, testConfigs()["tiny-chunks"])
	s := m.Snapshot()
	defer s.Close()
	if n := s.Len(); n != 0 {
		t.Fatalf("empty snapshot Len = %d", n)
	}
	if _, ok := s.Get(7); ok {
		t.Fatal("empty snapshot contains a key")
	}
	if _, _, ok := s.Cursor(MinKey + 1).Next(); ok {
		t.Fatal("empty snapshot cursor produced a pair")
	}

	for k := int64(0); k < 50; k++ {
		m.Insert(k, v64(k))
	}
	s2 := m.Snapshot()
	defer s2.Close()
	for k := int64(0); k < 50; k++ {
		m.Remove(k)
	}
	if m.Len() != 0 {
		t.Fatalf("live map should be empty, Len=%d", m.Len())
	}
	if got := s2.Len(); got != 50 {
		t.Fatalf("snapshot of emptied map Len = %d, want 50", got)
	}
	if n := s.Len(); n != 0 {
		t.Fatalf("first snapshot grew: Len = %d", n)
	}
}

// TestSnapshotOfBulkLoaded pins a bulk-loaded map (whose nodes carry epoch 0
// verbatim) and churns it.
func TestSnapshotOfBulkLoaded(t *testing.T) {
	const n = 2000
	keys := make([]int64, n)
	vals := make([]*int64, n)
	ref := map[int64]int64{}
	for i := range keys {
		keys[i] = int64(i * 2)
		vals[i] = v64(int64(i))
		ref[keys[i]] = int64(i)
	}
	m, err := BulkLoad(DefaultConfig(), keys, vals)
	if err != nil {
		t.Fatalf("BulkLoad: %v", err)
	}
	s := m.Snapshot()
	defer s.Close()
	for i := 0; i < n; i += 2 {
		m.Remove(keys[i])
		m.Insert(keys[i]+1, v64(-1))
	}
	mustEqualModel(t, s, ref, "bulk-loaded pin")
	mustCheck(t, m)
}

// TestSnapshotMultipleEpochs pins a sequence of snapshots between write
// waves: each must hold exactly its own era's state, epochs must be monotone,
// and closing them (out of order) must drain the version store.
func TestSnapshotMultipleEpochs(t *testing.T) {
	m := newTestMap(t, testConfigs()["tiny-chunks"])
	ref := map[int64]int64{}
	var snaps []*Snapshot[int64]
	var models []map[int64]int64
	rng := rand.New(rand.NewSource(41))

	for era := 0; era < 8; era++ {
		for i := 0; i < 120; i++ {
			k := int64(rng.Intn(400))
			if rng.Intn(3) == 0 {
				m.Remove(k)
				delete(ref, k)
			} else {
				v := int64(era*1000 + i)
				m.Upsert(k, &v)
				ref[k] = v
			}
		}
		snaps = append(snaps, m.Snapshot())
		cp := make(map[int64]int64, len(ref))
		for k, v := range ref {
			cp[k] = v
		}
		models = append(models, cp)
	}
	for i := 1; i < len(snaps); i++ {
		if snaps[i].Epoch() < snaps[i-1].Epoch() {
			t.Fatalf("epochs not monotone: %d then %d", snaps[i-1].Epoch(), snaps[i].Epoch())
		}
	}
	// Every era still reads its own state, interleaved with more churn.
	for i := 0; i < 300; i++ {
		m.Upsert(int64(rng.Intn(400)), v64(int64(-i)))
	}
	for i, s := range snaps {
		mustEqualModel(t, s, models[i], fmt.Sprintf("era %d", i))
	}
	// Close out of order; surviving snapshots must stay intact.
	order := rng.Perm(len(snaps))
	for _, i := range order {
		snaps[i].Close()
		for j, s := range snaps {
			if !s.Closed() {
				mustEqualModel(t, s, models[j], fmt.Sprintf("era %d after partial close", j))
			}
		}
	}
	if got := m.Stats().SnapshotRecords; got != 0 {
		t.Fatalf("version store holds %d records after all snapshots closed", got)
	}
	mustCheck(t, m)
}

// TestSnapshotCloseSemantics: Close is idempotent, use-after-close panics,
// and MarkLeaked counts exactly the never-closed snapshots.
func TestSnapshotCloseSemantics(t *testing.T) {
	m := newTestMap(t, DefaultConfig())
	m.Insert(1, v64(10))

	s := m.Snapshot()
	s.Close()
	s.Close() // idempotent
	st := m.Stats()
	if st.SnapshotsPinned != 1 || st.SnapshotsReleased != 1 || st.SnapshotsActive != 0 {
		t.Fatalf("after double close: pinned=%d released=%d active=%d",
			st.SnapshotsPinned, st.SnapshotsReleased, st.SnapshotsActive)
	}

	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Get on closed snapshot did not panic")
			}
		}()
		s.Get(1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Ascend on closed snapshot did not panic")
			}
		}()
		s.Ascend(func(int64, *int64) bool { return true })
	}()

	// A leaked snapshot is released and counted by MarkLeaked (the facade's
	// finalizer path); marking an already-closed one counts nothing.
	s2 := m.Snapshot()
	s2.MarkLeaked()
	s.MarkLeaked()
	st = m.Stats()
	if leaked := m.snaps.leaked.Load(); leaked != 1 {
		t.Fatalf("leaked counter = %d, want 1", leaked)
	}
	if st.SnapshotsReleased != 2 || st.SnapshotsActive != 0 {
		t.Fatalf("after leak release: released=%d active=%d", st.SnapshotsReleased, st.SnapshotsActive)
	}
}

// TestSnapshotCursorMidScanClose: a snapshot closed while one of its cursors
// is mid-scan must make the next cursor step panic rather than return data
// from a released version.
func TestSnapshotCursorMidScanClose(t *testing.T) {
	m := newTestMap(t, testConfigs()["tiny-chunks"])
	for k := int64(0); k < 100; k++ {
		m.Insert(k, v64(k))
	}
	s := m.Snapshot()
	c := s.Cursor(0)
	for i := 0; i < 10; i++ {
		if _, _, ok := c.Next(); !ok {
			t.Fatal("cursor exhausted early")
		}
	}
	s.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("cursor Next after snapshot Close did not panic")
		}
	}()
	c.Next()
}

// TestSnapshotSplitMergeChurn drives the pinned view through heavy
// structural churn on tiny chunks — splits on the way up, orphan merges and
// empty-chunk unlinks on the way down — and demands exactness throughout.
func TestSnapshotSplitMergeChurn(t *testing.T) {
	for _, name := range []string{"tiny-chunks", "sl", "leak"} {
		cfg := testConfigs()[name]
		t.Run(name, func(t *testing.T) {
			m := newTestMap(t, cfg)
			ref := map[int64]int64{}
			for k := int64(0); k < 256; k++ {
				m.Insert(k, v64(k))
				ref[k] = k
			}
			s := m.Snapshot()
			defer s.Close()

			// Down: remove everything, forcing merges and unlinks under the pin.
			for k := int64(0); k < 256; k++ {
				m.Remove(k)
			}
			// Sweep readers so lazy maintenance finishes its unlinking.
			for k := int64(0); k < 256; k += 16 {
				m.Contains(k)
			}
			mustEqualModel(t, s, ref, "after full drain")

			// Up again: double density, forcing splits of post-pin chunks.
			for k := int64(0); k < 512; k++ {
				m.Insert(k, v64(-k))
			}
			mustEqualModel(t, s, ref, "after regrow")
			mustCheck(t, m)
		})
	}
}

// TestSnapshotRangeAndCursor exercises windowed reads against a model:
// sub-windows, early stop, cursor-vs-Ascend agreement, cursor from offsets.
func TestSnapshotRangeAndCursor(t *testing.T) {
	m := newTestMap(t, testConfigs()["tiny-chunks"])
	ref := map[int64]int64{}
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 400; i++ {
		k := int64(rng.Intn(1000))
		m.Upsert(k, v64(k * 3))
		ref[k] = k * 3
	}
	s := m.Snapshot()
	defer s.Close()
	// Post-pin churn so the store, not just live chunks, answers.
	for i := 0; i < 400; i++ {
		k := int64(rng.Intn(1000))
		if rng.Intn(2) == 0 {
			m.Remove(k)
		} else {
			m.Upsert(k, v64(-1))
		}
	}

	wantK, wantV := modelPairs(ref)
	for trial := 0; trial < 50; trial++ {
		lo := int64(rng.Intn(1100)) - 50
		hi := lo + int64(rng.Intn(300))
		var gotK, gotV []int64
		s.Range(lo, hi, func(k int64, v *int64) bool {
			gotK = append(gotK, k)
			gotV = append(gotV, *v)
			return true
		})
		var expK, expV []int64
		for i, k := range wantK {
			if k >= lo && k <= hi {
				expK = append(expK, k)
				expV = append(expV, wantV[i])
			}
		}
		if fmt.Sprint(gotK, gotV) != fmt.Sprint(expK, expV) {
			t.Fatalf("Range[%d,%d]: got %v/%v, want %v/%v", lo, hi, gotK, gotV, expK, expV)
		}
	}

	// Early stop: exactly 5 pairs.
	count := 0
	s.Range(0, 999, func(int64, *int64) bool { count++; return count < 5 })
	if count != 5 {
		t.Fatalf("early stop visited %d pairs", count)
	}

	// Cursor from a mid-key offset must agree with the model's tail.
	start := wantK[len(wantK)/2]
	c := s.Cursor(start)
	i := len(wantK) / 2
	for {
		k, v, ok := c.Next()
		if !ok {
			break
		}
		if i >= len(wantK) || k != wantK[i] || *v != wantV[i] {
			t.Fatalf("cursor position %d: got (%d,%d)", i, k, *v)
		}
		i++
	}
	if i != len(wantK) {
		t.Fatalf("cursor stopped after %d of %d", i, len(wantK))
	}
}

// TestSnapshotPinsRetiredChunks is the epoch-reclamation edge suite: retired
// data chunks must survive FlushRetired while any snapshot that can reach
// them is pinned — including when two snapshots pin the same retired chunk
// and only one closes — and must drain to zero once the last pin drops.
func TestSnapshotPinsRetiredChunks(t *testing.T) {
	cfg := testConfigs()["tiny-chunks"]
	m := newTestMap(t, cfg)
	ref := map[int64]int64{}
	for k := int64(0); k < 256; k++ {
		m.Insert(k, v64(k))
		ref[k] = k
	}
	m.FlushRetired()

	s1 := m.Snapshot()
	s2 := m.Snapshot() // same era: both pin the same soon-to-be-retired chunks

	// Drain the map: merges and unlinks retire nearly every data chunk.
	for k := int64(0); k < 256; k++ {
		m.Remove(k)
	}
	for k := int64(0); k < 256; k += 16 {
		m.Contains(k)
	}
	m.FlushRetired()
	if st := m.Stats(); st.Retired == 0 {
		t.Fatalf("no retired nodes pending under two pins; churn retired %d total", st.RetiredTotal)
	}

	// Close one pin: the other still holds the chunks and still reads them.
	s1.Close()
	m.FlushRetired()
	if st := m.Stats(); st.Retired == 0 {
		t.Fatal("retired chunks reclaimed while a second snapshot still pins them")
	}
	mustEqualModel(t, s2, ref, "second pin after first closed")

	// Last pin drops: everything must drain.
	s2.Close()
	m.FlushRetired()
	if st := m.Stats(); st.Retired != 0 {
		t.Fatalf("%d retired nodes pending after all snapshots closed (retired %d, reclaimed %d)",
			st.Retired, st.RetiredTotal, st.Reclaimed)
	}
	if got := m.Stats().SnapshotRecords; got != 0 {
		t.Fatalf("version store holds %d records after all pins dropped", got)
	}
	mustCheck(t, m)
}

// TestSnapshotReleaseRace closes snapshots at exactly the moment their last
// scan finishes, racing write churn whose threshold-driven reclamation
// scans run continuously, under the epoch-aware recycle filter. Every scan
// must still read its pinned era exactly; -race runs of this test are the
// memory-safety proof for the unprotected snapshot walk. (FlushRetired is a
// quiescence-only API, so reclamation pressure comes from the writers' own
// hazard scans: tiny chunks plus continuous remove churn retire nodes far
// past the scan threshold for the whole run.)
func TestSnapshotReleaseRace(t *testing.T) {
	cfg := testConfigs()["tiny-chunks"]
	m := newTestMap(t, cfg)
	const stable = 64
	for k := int64(0); k < stable; k++ {
		m.Insert(k, v64(k)) // class A: never touched, present in every era
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	// Writers churn a disjoint key region, retiring chunks continuously.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 5))
			for !stop.Load() {
				k := stable + int64(rng.Intn(256))
				if rng.Intn(2) == 0 {
					m.Insert(k, v64(k))
				} else {
					m.Remove(k)
				}
			}
		}(w)
	}
	// Scanners: pin, scan, close immediately — the release lands exactly at
	// scan-completion time, adjacent to the writers' concurrent reclamation
	// scans.
	scans := 0
	for scans < 300 {
		s := m.Snapshot()
		seen := 0
		prev := int64(MinKey)
		s.Ascend(func(k int64, v *int64) bool {
			if k <= prev {
				t.Errorf("scan not strictly ascending: %d after %d", k, prev)
			}
			prev = k
			if k < stable {
				seen++
				if *v != k {
					t.Errorf("class-A key %d carries value %d", k, *v)
				}
			}
			return true
		})
		s.Close()
		if seen != stable {
			t.Fatalf("scan %d: saw %d of %d class-A keys", scans, seen, stable)
		}
		scans++
	}
	stop.Store(true)
	wg.Wait()
	m.FlushRetired()
	if st := m.Stats(); st.Retired != 0 {
		t.Fatalf("%d retired nodes pending at quiescence", st.Retired)
	}
	mustCheck(t, m)
}

// TestSnapshotChaosWritersVsScanner is the headline stress: chaos-perturbed
// writers churn four key classes while scanners pin and iterate snapshots.
// Classes make the checks sharp without a lock-step model:
//
//	A — inserted before any pin, never touched: present in every snapshot.
//	B — inserted up front, then removed in strictly increasing order: any
//	    snapshot sees a suffix of the B sequence.
//	C — inserted during the run in strictly increasing order: any snapshot
//	    sees a prefix of the C sequence.
//	D — random churn: consistency only (ascending, duplicate-free, repeat
//	    iteration identical, point reads agree with the scan).
func TestSnapshotChaosWritersVsScanner(t *testing.T) {
	const (
		aBase, aN = 0, 80
		bBase, bN = 10_000, 200
		cBase, cN = 20_000, 200
		dBase, dN = 30_000, 160
	)
	cfgs := map[string]Config{
		"tiny-chunks": testConfigs()["tiny-chunks"],
		"default":     testConfigs()["default"],
		"leak":        testConfigs()["leak"],
	}
	for name, cfg := range cfgs {
		t.Run(name, func(t *testing.T) {
			m := newTestMap(t, cfg)
			for i := int64(0); i < aN; i++ {
				m.Insert(aBase+i, v64(aBase+i))
			}
			for i := int64(0); i < bN; i++ {
				m.Insert(bBase+i, v64(bBase+i))
			}

			scanRounds := 40
			if testing.Short() {
				scanRounds = 10
			}
			chaos.Enable(stressChaosConfig(uint64(0x54a9 + len(name))))
			var stop atomic.Bool
			var wg sync.WaitGroup

			// Long-lived pin across the whole run: its first observation must
			// still hold, bit for bit, at the end.
			long := m.Snapshot()
			longK, longV := snapPairs(long)

			wg.Add(1)
			go func() { // B remover, ascending
				defer wg.Done()
				for i := int64(0); i < bN && !stop.Load(); i++ {
					m.Remove(bBase + i)
				}
			}()
			wg.Add(1)
			go func() { // C inserter, ascending
				defer wg.Done()
				for i := int64(0); i < cN && !stop.Load(); i++ {
					m.Insert(cBase+i, v64(cBase+i))
				}
			}()
			for w := 0; w < 2; w++ { // D churners
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(w) + 99))
					for !stop.Load() {
						k := dBase + int64(rng.Intn(dN))
						switch rng.Intn(3) {
						case 0:
							m.Insert(k, v64(int64(w)))
						case 1:
							m.Remove(k)
						default:
							m.Upsert(k, v64(int64(w)*1000))
						}
					}
				}(w)
			}

			check := func(round int) {
				s := m.Snapshot()
				defer s.Close()
				ks1, vs1 := snapPairs(s)
				// Repeat iteration must be identical: the view is immutable.
				ks2, vs2 := snapPairs(s)
				if fmt.Sprint(ks1, vs1) != fmt.Sprint(ks2, vs2) {
					t.Errorf("round %d: two iterations of one snapshot differ", round)
					return
				}
				seenA, minB, maxB, maxC := 0, int64(-1), int64(-1), int64(-1)
				nB, nC := int64(0), int64(0)
				prev := int64(MinKey)
				for i, k := range ks1 {
					if k <= prev {
						t.Errorf("round %d: keys not strictly ascending at %d", round, i)
						return
					}
					prev = k
					switch {
					case k < aN:
						seenA++
						if vs1[i] != k {
							t.Errorf("round %d: class-A key %d has value %d", round, k, vs1[i])
						}
					case k >= bBase && k < bBase+bN:
						if minB < 0 {
							minB = k
						}
						maxB = k
						nB++
					case k >= cBase && k < cBase+cN:
						maxC = k
						nC++
					}
				}
				if seenA != aN {
					t.Errorf("round %d: saw %d of %d class-A keys", round, seenA, aN)
				}
				// Suffix check: observed B keys are contiguous up to the top.
				if nB > 0 && (maxB != bBase+bN-1 || maxB-minB+1 != nB) {
					t.Errorf("round %d: B keys not a suffix: min=%d max=%d n=%d", round, minB, maxB, nB)
				}
				// Prefix check: observed C keys are contiguous from the base.
				if nC > 0 && maxC-cBase+1 != nC {
					t.Errorf("round %d: C keys not a prefix: max=%d n=%d", round, maxC, nC)
				}
				// Point reads agree with the scan on a sample, both ways.
				rng := rand.New(rand.NewSource(int64(round)))
				inScan := make(map[int64]int64, len(ks1))
				for i, k := range ks1 {
					inScan[k] = vs1[i]
				}
				for i := 0; i < 40; i++ {
					k := ks1[rng.Intn(len(ks1))]
					if v, ok := s.Get(k); !ok || *v != inScan[k] {
						t.Errorf("round %d: Get(%d) disagrees with scan", round, k)
					}
					probe := dBase + int64(rng.Intn(dN))
					v, ok := s.Get(probe)
					if want, scanned := inScan[probe]; ok != scanned || (ok && *v != want) {
						t.Errorf("round %d: Get(%d)=(%v,%t) but scan said (%d,%t)", round, probe, v, ok, want, scanned)
					}
				}
			}
			for round := 0; round < scanRounds && !t.Failed(); round++ {
				check(round)
			}
			stop.Store(true)
			wg.Wait()
			rep := chaos.Disable()
			t.Logf("%v", rep)
			if t.Failed() {
				return
			}
			if rep.Sites[chaos.CoreSnapshot].Fails == 0 {
				t.Fatalf("chaos never fired the core.snapshot site: %v", rep)
			}

			// The long pin read nothing from the future.
			gotK, gotV := snapPairs(long)
			if fmt.Sprint(gotK, gotV) != fmt.Sprint(longK, longV) {
				t.Fatal("long-lived snapshot drifted across the run")
			}
			long.Close()
			mustCheck(t, m)
		})
	}
}

// TestLinearizabilityWithSnapshots machine-checks the acquisition claim:
// the snapshot's interval covers ONLY Map.Snapshot(), yet its content —
// read at the very end of the proc, after more writes — must equal the
// model state at a linearization point inside that interval. Histories
// with torn or future-leaking snapshots are rejected by the checker
// (illegal-history self-tests live in the lincheck package).
func TestLinearizabilityWithSnapshots(t *testing.T) {
	cfgs := map[string]Config{
		"tiny-chunks": testConfigs()["tiny-chunks"],
		"default":     testConfigs()["default"],
	}
	for name, cfg := range cfgs {
		t.Run(name, func(t *testing.T) {
			const (
				rounds   = 60
				procs    = 3
				opsEach  = 4
				keySpace = 4
			)
			for round := 0; round < rounds; round++ {
				m := newTestMap(t, cfg)
				rec := lincheck.NewRecorder()
				var wg sync.WaitGroup
				for p := 0; p < procs; p++ {
					wg.Add(1)
					go func(p int, seed int64) {
						defer wg.Done()
						rng := rand.New(rand.NewSource(seed))
						type pendingSnap struct {
							s        *Snapshot[int64]
							inv, ret int64
						}
						var pending []pendingSnap
						for i := 0; i < opsEach; i++ {
							k := int64(rng.Intn(keySpace))
							switch rng.Intn(5) {
							case 0, 1:
								v := int64(p*1000 + i)
								inv := rec.Begin()
								ok := m.Insert(k, &v)
								rec.End(lincheck.Event{Proc: p, Kind: lincheck.KindInsert, Key: k, Val: v, RetOK: ok}, inv)
							case 2:
								inv := rec.Begin()
								ok := m.Remove(k)
								rec.End(lincheck.Event{Proc: p, Kind: lincheck.KindRemove, Key: k, RetOK: ok}, inv)
							case 3:
								inv := rec.Begin()
								pv, ok := m.Lookup(k)
								var rv int64
								if ok {
									rv = *pv
								}
								rec.End(lincheck.Event{Proc: p, Kind: lincheck.KindLookup, Key: k, RetOK: ok, RetVal: rv}, inv)
							default:
								inv := rec.Begin()
								s := m.Snapshot()
								ret := rec.Now() // interval closes at acquisition
								pending = append(pending, pendingSnap{s, inv, ret})
							}
						}
						// Read the pinned views only now, after every later
						// write this proc issued.
						for _, ps := range pending {
							var pairs []lincheck.KV
							ps.s.Range(0, keySpace, func(qk int64, qv *int64) bool {
								pairs = append(pairs, lincheck.KV{K: qk, V: *qv})
								return true
							})
							ps.s.Close()
							rec.EndAt(lincheck.Event{
								Proc: p, Kind: lincheck.KindSnapshot,
								Key: 0, Hi: keySpace, Pairs: pairs,
							}, ps.inv, ps.ret)
						}
					}(p, int64(round*167+p))
				}
				wg.Wait()
				if ok, msg := lincheck.Check(rec.History()); !ok {
					t.Fatalf("round %d: %s\n%s", round, msg, m.Dump())
				}
				mustCheck(t, m)
			}
		})
	}
}

// snapDiffOps decodes a fuzz byte stream into a deterministic single-thread
// op sequence, mirroring each op on a reference map and pinning model copies
// at snapshot points. It is shared by the fuzz target and its seeded replay.
func snapDiffRun(t *testing.T, cfg Config, data []byte, keySpace int) {
	t.Helper()
	m := newTestMap(t, cfg)
	ref := map[int64]int64{}
	type pin struct {
		s     *Snapshot[int64]
		model map[int64]int64
	}
	var pins []pin
	verify := func() {
		for i, p := range pins {
			if p.s.Closed() {
				continue
			}
			mustEqualModel(t, p.s, p.model, fmt.Sprintf("pin %d", i))
		}
	}
	for i := 0; i+1 < len(data); i += 2 {
		k := int64(data[i]) % int64(keySpace)
		switch op := data[i+1] % 8; op {
		case 0, 1:
			v := int64(i)
			if m.Insert(k, &v) {
				ref[k] = v
			}
		case 2:
			m.Upsert(k, v64(int64(i)))
			ref[k] = int64(i)
		case 3:
			m.Remove(k)
			delete(ref, k)
		case 4:
			hi := k + int64(data[i]%32)
			n := m.RangeUpdate(k, hi, func(_ int64, v *int64) *int64 { return v64(*v + 1) })
			cnt := 0
			for rk := range ref {
				if rk >= k && rk <= hi {
					ref[rk]++
					cnt++
				}
			}
			if n != cnt {
				t.Fatalf("op %d: RangeUpdate visited %d, model %d", i, n, cnt)
			}
		case 5:
			cp := make(map[int64]int64, len(ref))
			for rk, rv := range ref {
				cp[rk] = rv
			}
			pins = append(pins, pin{m.Snapshot(), cp})
		case 6:
			if len(pins) > 0 {
				pins[int(data[i])%len(pins)].s.Close()
			}
		default:
			if v, ok := m.Lookup(k); ok != (func() bool { _, r := ref[k]; return r }()) ||
				(ok && *v != ref[k]) {
				t.Fatalf("op %d: Lookup(%d) diverged from model", i, k)
			}
		}
		if i%64 == 0 {
			verify()
		}
	}
	verify()
	for _, p := range pins {
		p.s.Close()
	}
	if got := m.Stats().SnapshotRecords; got != 0 {
		t.Fatalf("version store holds %d records after final close", got)
	}
	mustCheck(t, m)
}

// FuzzSnapshotDiff feeds random op tapes through snapDiffRun on tiny chunks,
// differentially checking every open snapshot against its pinned model copy.
func FuzzSnapshotDiff(f *testing.F) {
	f.Add([]byte{10, 0, 20, 0, 0, 5, 10, 3, 30, 0, 0, 5, 20, 3, 0, 6})
	f.Add([]byte{0, 0, 1, 0, 2, 0, 3, 0, 0, 5, 0, 3, 1, 3, 2, 3, 3, 3, 0, 5, 9, 4})
	f.Add([]byte{200, 2, 200, 5, 200, 3, 200, 2, 200, 5, 100, 6, 200, 7})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			t.Skip()
		}
		snapDiffRun(t, testConfigs()["tiny-chunks"], data, 64)
	})
}

// TestSnapshotDifferentialSeeded replays long pseudo-random tapes through the
// differential harness on several configs — the deterministic companion to
// FuzzSnapshotDiff that always runs in CI.
func TestSnapshotDifferentialSeeded(t *testing.T) {
	for _, name := range []string{"tiny-chunks", "default", "sl", "data-only"} {
		cfg := testConfigs()[name]
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(len(name)) * 1327))
			tape := make([]byte, 6000)
			if testing.Short() {
				tape = tape[:1500]
			}
			rng.Read(tape)
			snapDiffRun(t, cfg, tape, 96)
		})
	}
}
