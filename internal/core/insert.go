package core

import (
	"skipvector/internal/chaos"
	"skipvector/internal/seqlock"
)

// insertState carries Insert's cross-restart bookkeeping: the nodes frozen
// at each layer (prevs, Listing 3 line 13) and the checkpoint. Frozen nodes
// are immune to modification, so when a validation fails below the frozen
// frontier the operation resumes from the lowest frozen node instead of the
// top of the map (Listing 3 "set checkpoint").
type insertState[V any] struct {
	prevs        [MaxLayers]*node[V]
	lowestFrozen int // layer of the checkpoint node; -1 when none frozen
}

func (st *insertState[V]) reset() {
	for i := range st.prevs {
		st.prevs[i] = nil
	}
	st.lowestFrozen = -1
}

// thawAll releases every frozen node without modifying it, preserving the
// validity of concurrent readers whose snapshots predate the freezes.
func (st *insertState[V]) thawAll(height int) {
	for l := st.lowestFrozen; l <= height; l++ {
		if l >= 0 && st.prevs[l] != nil {
			st.prevs[l].lock.Thaw()
		}
	}
	st.reset()
}

// Insert adds the mapping k→v and returns true, or returns false when k is
// already present (Listing 3). A successful Insert linearizes at the
// write-acquisition of its last lock; a failed one at the validated
// observation of the existing key.
func (m *Map[V]) Insert(k int64, v *V) bool {
	checkKey(k)
	ctx := m.ctxs.get()
	defer m.ctxs.put(ctx)
	return m.insertCtx(ctx, k, v)
}

// insertCtx is Insert's retry loop against an explicit context (shared with
// Handle.Insert).
func (m *Map[V]) insertCtx(ctx *opCtx[V], k int64, v *V) bool {
	return m.insertWithHeight(ctx, k, v, ctx.randomHeight())
}

// insertWithHeight is the insert retry loop at a caller-chosen tower height.
// ApplyBatch routes its ops at sort time — drawing each distinct key's height
// once, before any locks are taken — so the singleton replay of a tall key
// must not re-draw (re-drawing after deferral would square the tall
// probability and starve the index layers).
func (m *Map[V]) insertWithHeight(ctx *opCtx[V], k int64, v *V, height int) bool {
	st := insertState[V]{lowestFrozen: -1}
	for {
		result, done := m.insertAttempt(ctx, &st, k, v, height)
		if done {
			return result
		}
		m.restart(ctx, opInsert)
	}
}

// insertAttempt performs one descent. done=false requests a restart; frozen
// nodes recorded in st survive the restart and become the resume point.
func (m *Map[V]) insertAttempt(
	ctx *opCtx[V], st *insertState[V], k int64, v *V, height int,
) (result, done bool) {
	var (
		curr   *node[V]
		ver    seqlock.Version
		ok     bool
		resume = st.lowestFrozen >= 1
	)
	// Height-0 inserts (the (T_D-1)/T_D common case) touch only the data
	// layer, so when the search finger still covers k the whole index
	// descent — including the per-layer duplicate check, which the
	// data-layer Contains below subsumes (an indexed key is always present
	// in the data layer) — can be skipped.
	if height == 0 && !resume {
		if fcurr, fver, hit := m.fingerSeek(ctx, k, fingerPoint); hit {
			return m.finishInsertData(ctx, st, fcurr, fver, k, v, height)
		}
	}
	if resume {
		// Resume from the checkpoint: the lowest frozen node is stable, so
		// its current word is a trivially valid snapshot and no hazard
		// pointer is needed.
		curr = st.prevs[st.lowestFrozen]
		ver = curr.lock.Current()
	} else {
		curr = m.head
		ctx.take(curr)
		ver, ok = curr.lock.ReadVersion()
		if !ok {
			return false, false
		}
	}

	for curr.isIndex() {
		if !resume {
			curr, ver, ok = m.traverseRight(ctx, curr, ver, k, modeWrite)
			if !ok {
				return false, false
			}
			if int(curr.level) <= height {
				fver, frozen := curr.lock.TryFreeze(ver)
				if !frozen {
					return false, false
				}
				// Frozen nodes cannot change or be retired, so the hazard
				// pointer is no longer needed (Listing 3 line 12).
				ctx.drop(curr)
				st.prevs[curr.level] = curr
				st.lowestFrozen = int(curr.level)
				ver = fver
				m.freezes.Inc(ctx.stripe)
				chaos.Step(chaos.CoreFreeze)
			}
		}
		resume = false

		kf, child, found := curr.index.FindLE(k)
		if !found || child == nil {
			// Violates the traversal invariant; only possible on a torn
			// read of an unfrozen node. Restart.
			return false, false
		}
		if kf == k {
			// k already has an index entry: it is present in the map. For
			// an unfrozen node the observation must be validated first.
			if !ver.Frozen() && !curr.lock.Validate(ver) {
				return false, false
			}
			st.thawAll(height)
			ctx.dropAll()
			return false, true
		}
		curr, ver, ok = m.exchangeDown(ctx, curr, ver, child)
		if !ok {
			return false, false
		}
	}

	// Data layer: settle on the target node and freeze it.
	curr, ver, ok = m.traverseRight(ctx, curr, ver, k, modeWrite)
	if !ok {
		return false, false
	}
	return m.finishInsertData(ctx, st, curr, ver, k, v, height)
}

// finishInsertData is the data-layer tail of an insert attempt: curr owns k
// under the validated snapshot ver (reached either by the full descent or by
// a finger hit). It freezes curr, settles presence, and applies the write
// phase. done=false requests a restart.
func (m *Map[V]) finishInsertData(
	ctx *opCtx[V], st *insertState[V], curr *node[V], ver seqlock.Version, k int64, v *V, height int,
) (result, done bool) {
	if _, frozen := curr.lock.TryFreeze(ver); !frozen {
		return false, false
	}
	ctx.drop(curr)
	st.prevs[0] = curr
	st.lowestFrozen = 0
	m.freezes.Inc(ctx.stripe)
	chaos.Step(chaos.CoreFreeze)

	if curr.data.Contains(k) {
		st.thawAll(height)
		ctx.dropAll()
		return false, true
	}

	fnode, fver := m.applyInsert(ctx, st, k, v, height)
	st.reset()
	ctx.dropAll()
	m.length.add(ctx.stripe, 1)
	m.recordFinger(ctx, fnode, fver)
	return true, true
}

// applyInsert performs the write phase of a successful Insert (Listing 3
// lines 31-43). Every prevs[layer] for layer ∈ [0,height] is frozen by this
// operation; nodes are upgraded to write-locked one at a time, bottom-up, so
// concurrent searches that land on already-updated layers still complete
// correctly (Section IV-C). It returns the data node that received k together
// with a version snapshot suitable for recordFinger (which rejects unusable
// words, so a best-effort Current() read is fine for nodes this operation no
// longer holds locked).
func (m *Map[V]) applyInsert(
	ctx *opCtx[V], st *insertState[V], k int64, v *V, height int,
) (*node[V], seqlock.Version) {
	// Layer 0.
	d := st.prevs[0]
	d.lock.UpgradeFrozen()
	m.noteDataWrite(d) // CoW pre-image before the first mutation (snapshot.go)
	if height == 0 {
		target := d
		if d.data.Full() {
			target = m.splitFull(ctx, d, k)
		}
		if !target.data.Insert(k, v) {
			panic("core: insert into data chunk failed after absence check")
		}
		m.logPut(ctx, k, v) // before the release that publishes it (commit.go)
		dver := d.lock.Release()
		if target == d {
			return d, dver
		}
		// k went into the split orphan, which became reachable (and thus
		// shared) at the release above; snapshot whatever word it has now.
		return target, target.lock.Current()
	}

	// height ≥ 1: the key becomes the minimum of a new node in every layer
	// below its height, each stealing the elements greater than k from its
	// frozen predecessor.
	nd := m.mem.allocRaw(0)
	d.data.MoveGreaterTo(k, &nd.data)
	nd.data.Insert(k, v)
	inheritVerEpoch(d, nd)
	nd.next.Store(d.next.Load())
	d.next.Store(nd)
	m.logPut(ctx, k, v) // the data write publishes here, not at the tower top
	d.lock.Release()
	m.stats.Splits.Add(1)

	child := nd
	for layer := 1; layer < height; layer++ {
		// Lower layers are already published; searches may land on them
		// before this layer's entry exists (Section IV-C). Stretch that
		// window.
		chaos.Step(chaos.CoreSplit)
		p := st.prevs[layer]
		p.lock.UpgradeFrozen()
		ni := m.mem.allocRaw(layer)
		p.index.MoveGreaterTo(k, &ni.index)
		ni.index.Insert(k, child)
		ni.next.Store(p.next.Load())
		p.next.Store(ni)
		p.lock.Release()
		m.stats.Splits.Add(1)
		child = ni
	}

	// At the chosen height, k joins an existing node (splitting only if it
	// is at capacity).
	chaos.Step(chaos.CoreSplit)
	p := st.prevs[height]
	p.lock.UpgradeFrozen()
	target := p
	if p.index.Full() {
		target = m.splitFull(ctx, p, k)
	}
	if !target.index.Insert(k, child) {
		panic("core: insert into index chunk failed after absence check")
	}
	p.lock.Release()
	// nd (k's data node) became shared when d released above; snapshot its
	// current word for the finger.
	return nd, nd.lock.Current()
}

// splitFull splits the write-locked full node n, moving its upper half into
// a fresh orphan linked immediately to n's right (Section III: orphan
// creation by capacity splits). It returns whichever node should receive k.
// The orphan is invisible to other operations until n's lock is released,
// because reaching it requires reading n.next and then validating n.
func (m *Map[V]) splitFull(ctx *opCtx[V], n *node[V], k int64) *node[V] {
	o, pivot := m.splitOrphanHalf(ctx, n)
	if k >= pivot {
		return o
	}
	return n
}

// splitOrphanHalf is the capacity-split primitive shared by splitFull and
// ApplyBatch's group commit: it moves the upper half of the write-locked full
// node n into a fresh private orphan linked to n's right and returns the
// orphan with its pivot (minimum) key. The orphan stays invisible until the
// lock that covers n is released.
func (m *Map[V]) splitOrphanHalf(ctx *opCtx[V], n *node[V]) (*node[V], int64) {
	o := m.mem.allocRaw(int(n.level))
	var pivot int64
	if n.isIndex() {
		pivot = n.index.SplitUpperHalfTo(&o.index)
	} else {
		pivot = n.data.SplitUpperHalfTo(&o.data)
	}
	// The orphan's content was part of n's at every epoch n's current
	// verEpoch covers; the caller already ran noteDataWrite on n.
	inheritVerEpoch(n, o)
	o.markOrphanPrivate()
	o.next.Store(n.next.Load())
	chaos.Step(chaos.CoreSplit)
	n.next.Store(o)
	m.stats.Splits.Add(1)
	m.stats.Orphans.Add(1)
	return o, pivot
}
