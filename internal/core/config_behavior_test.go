package core

import (
	"math/rand"
	"testing"
)

// TestOversizedLayerCountHarmless reproduces the Section V-B observation
// that a too-high layer guess costs almost nothing: extra top layers stay
// near-empty and all behaviour is preserved.
func TestOversizedLayerCountHarmless(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LayerCount = 16 // far more than 1000 keys need
	m := newTestMap(t, cfg)
	for k := int64(0); k < 1000; k++ {
		if !m.Insert(k, v64(k)) {
			t.Fatalf("Insert(%d) failed", k)
		}
	}
	counts := m.NodeCount()
	// Topmost layers should contain only the two sentinels.
	for l := 8; l < 16; l++ {
		if counts[l] > 3 {
			t.Fatalf("layer %d has %d nodes; expected near-empty", l, counts[l])
		}
	}
	for k := int64(0); k < 1000; k += 37 {
		if _, found := m.Lookup(k); !found {
			t.Fatalf("Lookup(%d) failed", k)
		}
	}
	mustCheck(t, m)
}

// TestHeightDistribution verifies the paper's geometric height scheme
// (Section III-A): roughly (T_D-1)/T_D of inserted keys stay at height 0,
// and each index layer is ~T_I times sparser than the one below.
func TestHeightDistribution(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TargetDataVectorSize = 8
	cfg.TargetIndexVectorSize = 4
	cfg.LayerCount = 6
	cfg.Seed = 12345
	m := newTestMap(t, cfg)
	const n = 40000
	for k := int64(0); k < n; k++ {
		m.Insert(k, v64(k))
	}
	// Count user keys per layer.
	layerKeys := make([]int, cfg.LayerCount)
	for l := 0; l < cfg.LayerCount; l++ {
		for node := m.heads[l]; node != nil; node = node.next.Load() {
			if node.isIndex() {
				node.index.ForEach(func(k int64, _ *node_alias[int64]) bool {
					if k != MinKey && k != MaxKey {
						layerKeys[l]++
					}
					return true
				})
			} else {
				node.data.ForEach(func(k int64, _ *int64) bool {
					if k != MinKey && k != MaxKey {
						layerKeys[l]++
					}
					return true
				})
			}
		}
	}
	if layerKeys[0] != n {
		t.Fatalf("data layer holds %d keys", layerKeys[0])
	}
	// Expected L1 density: n / T_D = 5000. Allow ±40%.
	wantL1 := n / cfg.TargetDataVectorSize
	if layerKeys[1] < wantL1*6/10 || layerKeys[1] > wantL1*14/10 {
		t.Fatalf("layer 1 holds %d keys, want ≈%d", layerKeys[1], wantL1)
	}
	// Each higher layer ~1/T_I of the one below. Allow wide tolerance for
	// small counts.
	for l := 2; l < cfg.LayerCount && layerKeys[l-1] > 200; l++ {
		want := layerKeys[l-1] / cfg.TargetIndexVectorSize
		if layerKeys[l] < want/3 || layerKeys[l] > want*3 {
			t.Fatalf("layer %d holds %d keys, want ≈%d", l, layerKeys[l], want)
		}
	}
}

// node_alias lets the test name the generic node type in a callback.
type node_alias[V any] = node[V]

// TestMergeFactorExtremes drives churn under the smallest and largest legal
// merge thresholds; both must preserve correctness.
func TestMergeFactorExtremes(t *testing.T) {
	for _, f := range []float64{0.01, 2.0} {
		cfg := DefaultConfig()
		cfg.MergeFactor = f
		cfg.TargetDataVectorSize = 2
		cfg.TargetIndexVectorSize = 2
		cfg.LayerCount = 5
		m := newTestMap(t, cfg)
		rng := rand.New(rand.NewSource(8))
		model := map[int64]bool{}
		for i := 0; i < 4000; i++ {
			k := int64(rng.Intn(300))
			if rng.Intn(2) == 0 {
				if m.Insert(k, v64(k)) {
					model[k] = true
				}
			} else if m.Remove(k) {
				delete(model, k)
			}
		}
		if m.Len() != len(model) {
			t.Fatalf("factor %v: Len=%d model=%d", f, m.Len(), len(model))
		}
		mustCheck(t, m)
	}
}

// TestSingleLayerDegenerate exercises LayerCount=1 (a pure chunked list):
// all operations must still work, just with O(n/T) traversal.
func TestSingleLayerDegenerate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LayerCount = 1
	m := newTestMap(t, cfg)
	for k := int64(200); k > 0; k-- {
		m.Insert(k, v64(k))
	}
	for k := int64(1); k <= 200; k += 2 {
		m.Remove(k)
	}
	if m.Len() != 100 {
		t.Fatalf("Len = %d", m.Len())
	}
	if k, _, ok := m.First(); !ok || k != 2 {
		t.Fatalf("First = %d,%t", k, ok)
	}
	if k, _, ok := m.Last(); !ok || k != 200 {
		t.Fatalf("Last = %d,%t", k, ok)
	}
	mustCheck(t, m)
}

// TestSeedDeterminism: same seed ⇒ identical structure (node counts per
// layer), different seed ⇒ (almost surely) different index shape.
func TestSeedDeterminism(t *testing.T) {
	build := func(seed uint64) []int {
		cfg := DefaultConfig()
		cfg.Seed = seed
		cfg.TargetDataVectorSize = 4
		cfg.TargetIndexVectorSize = 4
		m, err := NewMap[int64](cfg)
		if err != nil {
			t.Fatal(err)
		}
		for k := int64(0); k < 2000; k++ {
			m.Insert(k, v64(k))
		}
		return m.NodeCount()
	}
	a, b := build(1), build(1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed produced different shapes: %v vs %v", a, b)
		}
	}
	c := build(2)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Log("warning: different seeds produced identical shapes (possible but unlikely)")
	}
}
