package core

// Handle pins an operation context — and with it the search finger — to one
// caller. Map methods draw contexts from a shared LIFO pool, which keeps the
// finger sticky for a single-threaded caller but shuffles contexts (and thus
// fingers) between goroutines under concurrency. A Handle removes the
// shuffle: every operation through it reuses the same context, so locality in
// the caller's key sequence translates directly into finger hits.
//
// A Handle is NOT safe for concurrent use — it is a per-goroutine session
// object (the map itself remains fully concurrent; any number of handles can
// operate in parallel). Close returns the context to the pool; using a
// closed handle panics.
type Handle[V any] struct {
	m   *Map[V]
	ctx *opCtx[V]
}

// NewHandle pins a fresh operation context for a single-goroutine session.
func (m *Map[V]) NewHandle() *Handle[V] {
	return &Handle[V]{m: m, ctx: m.ctxs.get()}
}

// Close returns the pinned context (its hazard-pointer handle and finger
// included) to the map's pool. Close is idempotent.
func (h *Handle[V]) Close() {
	if h.ctx != nil {
		h.m.ctxs.put(h.ctx)
		h.ctx = nil
	}
}

// Lookup is Map.Lookup through the pinned context.
func (h *Handle[V]) Lookup(k int64) (*V, bool) {
	checkKey(k)
	return h.m.lookupCtx(h.ctx, k)
}

// Contains is Map.Contains through the pinned context.
func (h *Handle[V]) Contains(k int64) bool {
	_, found := h.Lookup(k)
	return found
}

// Insert is Map.Insert through the pinned context.
func (h *Handle[V]) Insert(k int64, v *V) bool {
	checkKey(k)
	return h.m.insertCtx(h.ctx, k, v)
}

// Remove is Map.Remove through the pinned context.
func (h *Handle[V]) Remove(k int64) bool {
	checkKey(k)
	return h.m.removeCtx(h.ctx, k)
}

// Upsert is Map.Upsert through the pinned context.
func (h *Handle[V]) Upsert(k int64, v *V) bool {
	checkKey(k)
	return h.m.upsertWithHeight(h.ctx, k, v, h.ctx.randomHeight())
}

// ApplyBatch is Map.ApplyBatch through the pinned context. Batches whose key
// runs fall where the previous operation finished resume from the finger,
// skipping even the one descent per group.
func (h *Handle[V]) ApplyBatch(ops []BatchOp[V]) []BatchResult {
	return h.m.applyBatchCtx(h.ctx, ops)
}

// Floor is Map.Floor through the pinned context.
func (h *Handle[V]) Floor(k int64) (int64, *V, bool) {
	checkKey(k)
	return h.m.floorCtx(h.ctx, k)
}

// Ceiling is Map.Ceiling through the pinned context.
func (h *Handle[V]) Ceiling(k int64) (int64, *V, bool) {
	checkKey(k)
	return h.m.ceilingCtx(h.ctx, k)
}

// First is Map.First through the pinned context.
func (h *Handle[V]) First() (int64, *V, bool) {
	return h.m.firstCtx(h.ctx)
}

// Last is Map.Last through the pinned context.
func (h *Handle[V]) Last() (int64, *V, bool) {
	return h.m.lastCtx(h.ctx)
}
