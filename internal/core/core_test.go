package core

import (
	"fmt"
	"math/rand"
	"testing"
)

// testConfigs enumerates the configuration corners the tests sweep:
// chunked/unchunked layers, sorted/unsorted chunks, hazard/leak reclamation.
func testConfigs() map[string]Config {
	base := DefaultConfig()
	cfgs := map[string]Config{
		"default": base,
	}

	small := base
	small.TargetDataVectorSize = 2
	small.TargetIndexVectorSize = 2
	small.LayerCount = 5
	cfgs["tiny-chunks"] = small

	usl := base
	usl.TargetIndexVectorSize = 1
	usl.LayerCount = 12
	cfgs["usl"] = usl

	sl := base
	sl.TargetDataVectorSize = 1
	sl.TargetIndexVectorSize = 1
	sl.LayerCount = 14
	cfgs["sl"] = sl

	sorted := base
	sorted.SortedData = true
	cfgs["sorted-data"] = sorted

	unsortedIdx := base
	unsortedIdx.SortedIndex = false
	cfgs["unsorted-index"] = unsortedIdx

	leak := base
	leak.Reclaim = ReclaimLeak
	cfgs["leak"] = leak

	shallow := base
	shallow.LayerCount = 1
	cfgs["data-only"] = shallow

	return cfgs
}

func newTestMap(t testing.TB, cfg Config) *Map[int64] {
	t.Helper()
	m, err := NewMap[int64](cfg)
	if err != nil {
		t.Fatalf("NewMap: %v", err)
	}
	return m
}

func mustCheck(t testing.TB, m *Map[int64]) {
	t.Helper()
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("invariants violated: %v\n%s", err, m.Dump())
	}
}

func v64(x int64) *int64 { return &x }

func forAllConfigs(t *testing.T, fn func(t *testing.T, cfg Config)) {
	for name, cfg := range testConfigs() {
		t.Run(name, func(t *testing.T) { fn(t, cfg) })
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.LayerCount = 0 },
		func(c *Config) { c.LayerCount = MaxLayers + 1 },
		func(c *Config) { c.TargetDataVectorSize = 0 },
		func(c *Config) { c.TargetIndexVectorSize = 0 },
		func(c *Config) { c.MergeFactor = 0 },
		func(c *Config) { c.MergeFactor = 2.5 },
		func(c *Config) { c.Reclaim = 0 },
	}
	for i, mutate := range cases {
		cfg := DefaultConfig()
		mutate(&cfg)
		if _, err := NewMap[int64](cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	valid := DefaultConfig()
	if err := valid.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestEmptyMap(t *testing.T) {
	forAllConfigs(t, func(t *testing.T, cfg Config) {
		m := newTestMap(t, cfg)
		if m.Len() != 0 {
			t.Fatalf("Len = %d", m.Len())
		}
		if _, found := m.Lookup(42); found {
			t.Fatal("Lookup on empty map found a key")
		}
		if m.Remove(42) {
			t.Fatal("Remove on empty map returned true")
		}
		mustCheck(t, m)
	})
}

func TestInsertLookupRemoveBasic(t *testing.T) {
	forAllConfigs(t, func(t *testing.T, cfg Config) {
		m := newTestMap(t, cfg)
		if !m.Insert(10, v64(100)) {
			t.Fatal("Insert(10) failed")
		}
		if m.Insert(10, v64(200)) {
			t.Fatal("duplicate Insert(10) succeeded")
		}
		if v, found := m.Lookup(10); !found || *v != 100 {
			t.Fatalf("Lookup(10) = %v,%t", v, found)
		}
		if !m.Remove(10) {
			t.Fatal("Remove(10) failed")
		}
		if m.Remove(10) {
			t.Fatal("double Remove(10) succeeded")
		}
		if _, found := m.Lookup(10); found {
			t.Fatal("Lookup found removed key")
		}
		if m.Len() != 0 {
			t.Fatalf("Len = %d", m.Len())
		}
		mustCheck(t, m)
	})
}

func TestSentinelKeysPanic(t *testing.T) {
	m := newTestMap(t, DefaultConfig())
	for _, k := range []int64{MinKey, MaxKey} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("key %d accepted", k)
				}
			}()
			m.Insert(k, v64(1))
		}()
	}
}

func TestAscendingInsertions(t *testing.T) {
	forAllConfigs(t, func(t *testing.T, cfg Config) {
		m := newTestMap(t, cfg)
		const n = 500
		for k := int64(0); k < n; k++ {
			if !m.Insert(k, v64(k*2)) {
				t.Fatalf("Insert(%d) failed", k)
			}
		}
		if m.Len() != n {
			t.Fatalf("Len = %d, want %d", m.Len(), n)
		}
		for k := int64(0); k < n; k++ {
			if v, found := m.Lookup(k); !found || *v != k*2 {
				t.Fatalf("Lookup(%d) = %v,%t", k, v, found)
			}
		}
		mustCheck(t, m)
	})
}

func TestDescendingInsertions(t *testing.T) {
	forAllConfigs(t, func(t *testing.T, cfg Config) {
		m := newTestMap(t, cfg)
		const n = 500
		for k := int64(n - 1); k >= 0; k-- {
			if !m.Insert(k, v64(k)) {
				t.Fatalf("Insert(%d) failed", k)
			}
		}
		keys := m.Keys()
		if len(keys) != n {
			t.Fatalf("got %d keys", len(keys))
		}
		for i, k := range keys {
			if k != int64(i) {
				t.Fatalf("keys[%d] = %d", i, k)
			}
		}
		mustCheck(t, m)
	})
}

func TestInsertRemoveInterleaved(t *testing.T) {
	forAllConfigs(t, func(t *testing.T, cfg Config) {
		m := newTestMap(t, cfg)
		const n = 400
		for k := int64(0); k < n; k++ {
			m.Insert(k, v64(k))
		}
		// Remove the odd keys.
		for k := int64(1); k < n; k += 2 {
			if !m.Remove(k) {
				t.Fatalf("Remove(%d) failed", k)
			}
		}
		mustCheck(t, m)
		for k := int64(0); k < n; k++ {
			_, found := m.Lookup(k)
			if want := k%2 == 0; found != want {
				t.Fatalf("Lookup(%d) = %t, want %t", k, found, want)
			}
		}
		// Re-insert the odd keys, remove the even ones.
		for k := int64(1); k < n; k += 2 {
			if !m.Insert(k, v64(-k)) {
				t.Fatalf("re-Insert(%d) failed", k)
			}
		}
		for k := int64(0); k < n; k += 2 {
			if !m.Remove(k) {
				t.Fatalf("Remove(%d) failed", k)
			}
		}
		mustCheck(t, m)
		if m.Len() != n/2 {
			t.Fatalf("Len = %d, want %d", m.Len(), n/2)
		}
		for k := int64(1); k < n; k += 2 {
			if v, found := m.Lookup(k); !found || *v != -k {
				t.Fatalf("Lookup(%d) = %v,%t", k, v, found)
			}
		}
	})
}

func TestDrainToEmpty(t *testing.T) {
	forAllConfigs(t, func(t *testing.T, cfg Config) {
		m := newTestMap(t, cfg)
		rng := rand.New(rand.NewSource(7))
		keys := rng.Perm(300)
		for _, k := range keys {
			m.Insert(int64(k), v64(int64(k)))
		}
		for _, k := range rng.Perm(300) {
			if !m.Remove(int64(k)) {
				t.Fatalf("Remove(%d) failed", k)
			}
		}
		if m.Len() != 0 {
			t.Fatalf("Len = %d after drain", m.Len())
		}
		mustCheck(t, m)
		// The map must remain fully usable after a complete drain.
		for _, k := range keys[:50] {
			if !m.Insert(int64(k), v64(1)) {
				t.Fatalf("post-drain Insert(%d) failed", k)
			}
		}
		mustCheck(t, m)
	})
}

// TestSequentialModel replays long random op sequences against a Go map and
// checks every response plus the full invariant suite periodically.
func TestSequentialModel(t *testing.T) {
	forAllConfigs(t, func(t *testing.T, cfg Config) {
		m := newTestMap(t, cfg)
		model := make(map[int64]int64)
		rng := rand.New(rand.NewSource(42))
		const (
			ops      = 6000
			keySpace = 200
		)
		for i := 0; i < ops; i++ {
			k := int64(rng.Intn(keySpace))
			switch rng.Intn(3) {
			case 0:
				_, inModel := model[k]
				got := m.Insert(k, v64(k+int64(i)))
				if got == inModel {
					t.Fatalf("op %d: Insert(%d) = %t, model has=%t", i, k, got, inModel)
				}
				if got {
					model[k] = k + int64(i)
				}
			case 1:
				_, inModel := model[k]
				if got := m.Remove(k); got != inModel {
					t.Fatalf("op %d: Remove(%d) = %t, model has=%t", i, k, got, inModel)
				}
				delete(model, k)
			case 2:
				v, found := m.Lookup(k)
				mv, inModel := model[k]
				if found != inModel || (found && *v != mv) {
					t.Fatalf("op %d: Lookup(%d) mismatch", i, k)
				}
			}
			if m.Len() != len(model) {
				t.Fatalf("op %d: Len=%d model=%d", i, m.Len(), len(model))
			}
			if i%1000 == 999 {
				mustCheck(t, m)
			}
		}
		mustCheck(t, m)
	})
}

func TestKeysSortedAfterRandomWorkload(t *testing.T) {
	m := newTestMap(t, DefaultConfig())
	rng := rand.New(rand.NewSource(3))
	inserted := map[int64]bool{}
	for i := 0; i < 2000; i++ {
		k := int64(rng.Intn(1000))
		if rng.Intn(2) == 0 {
			if m.Insert(k, v64(k)) {
				inserted[k] = true
			}
		} else if m.Remove(k) {
			delete(inserted, k)
		}
	}
	keys := m.Keys()
	if len(keys) != len(inserted) {
		t.Fatalf("Keys() len %d, want %d", len(keys), len(inserted))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			t.Fatalf("Keys() not strictly ascending at %d", i)
		}
	}
	for _, k := range keys {
		if !inserted[k] {
			t.Fatalf("unexpected key %d", k)
		}
	}
}

func TestNodeCountGrowsWithChunking(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 99
	m := newTestMap(t, cfg)
	for k := int64(0); k < 4096; k++ {
		m.Insert(k, v64(k))
	}
	counts := m.NodeCount()
	// Data layer should hold ~4096/32..4096/64 nodes plus sentinels; well
	// over 64 and well under 4096.
	if counts[0] < 64 || counts[0] > 4096 {
		t.Fatalf("data layer node count %d implausible", counts[0])
	}
	// Each index layer should be much smaller than the one below.
	for l := 1; l < len(counts); l++ {
		if counts[l] > counts[l-1] {
			t.Fatalf("layer %d has %d nodes, more than layer %d's %d",
				l, counts[l], l-1, counts[l-1])
		}
	}
	mustCheck(t, m)
}

func TestStatsCounters(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TargetDataVectorSize = 2
	cfg.TargetIndexVectorSize = 2
	m := newTestMap(t, cfg)
	for k := int64(0); k < 200; k++ {
		m.Insert(k, v64(k))
	}
	s := m.Stats()
	if s.Splits == 0 {
		t.Fatal("expected splits with tiny chunks")
	}
	for k := int64(0); k < 200; k++ {
		m.Remove(k)
	}
	s = m.Stats()
	if s.Merges == 0 {
		t.Fatal("expected merges after removals")
	}
	mustCheck(t, m)
}

func TestHazardReclamationRecyclesNodes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TargetDataVectorSize = 2
	cfg.TargetIndexVectorSize = 2
	cfg.LayerCount = 5
	m := newTestMap(t, cfg)
	// Churn: repeated fill/drain cycles must reuse retired nodes.
	for cycle := 0; cycle < 6; cycle++ {
		for k := int64(0); k < 500; k++ {
			m.Insert(k, v64(k))
		}
		for k := int64(0); k < 500; k++ {
			m.Remove(k)
		}
	}
	s := m.Stats()
	if s.Reuses == 0 {
		t.Fatalf("no node reuse after churn: %+v", s)
	}
	mustCheck(t, m)
}

func TestLeakModeNeverRecycles(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Reclaim = ReclaimLeak
	cfg.TargetDataVectorSize = 2
	m := newTestMap(t, cfg)
	for cycle := 0; cycle < 3; cycle++ {
		for k := int64(0); k < 300; k++ {
			m.Insert(k, v64(k))
		}
		for k := int64(0); k < 300; k++ {
			m.Remove(k)
		}
	}
	if s := m.Stats(); s.Reuses != 0 {
		t.Fatalf("leak mode reused nodes: %+v", s)
	}
	mustCheck(t, m)
}

func TestValuesArePointerStable(t *testing.T) {
	m := newTestMap(t, DefaultConfig())
	p := v64(7)
	m.Insert(1, p)
	got, _ := m.Lookup(1)
	if got != p {
		t.Fatal("Lookup returned a different pointer")
	}
	*p = 9
	got, _ = m.Lookup(1)
	if *got != 9 {
		t.Fatal("value mutation not visible through map")
	}
}

func TestReclaimModeString(t *testing.T) {
	if ReclaimHazard.String() != "hp" || ReclaimLeak.String() != "leak" {
		t.Fatal("ReclaimMode.String mismatch")
	}
	if s := ReclaimMode(9).String(); s != "ReclaimMode(9)" {
		t.Fatalf("unknown mode string = %q", s)
	}
}

func TestLargeSequentialLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := DefaultConfig()
	m := newTestMap(t, cfg)
	const n = 50000
	rng := rand.New(rand.NewSource(5))
	perm := rng.Perm(n)
	for _, k := range perm {
		if !m.Insert(int64(k), v64(int64(k))) {
			t.Fatalf("Insert(%d) failed", k)
		}
	}
	if m.Len() != n {
		t.Fatalf("Len = %d", m.Len())
	}
	for i := 0; i < n; i += 97 {
		if v, found := m.Lookup(int64(i)); !found || *v != int64(i) {
			t.Fatalf("Lookup(%d) failed", i)
		}
	}
	mustCheck(t, m)
}

func ExampleMap() {
	m, _ := NewMap[string](DefaultConfig())
	hello := "hello"
	m.Insert(1, &hello)
	if v, ok := m.Lookup(1); ok {
		fmt.Println(*v)
	}
	// Output: hello
}
