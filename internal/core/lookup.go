package core

// Lookup returns the value mapped to k, or ok=false when k is absent
// (Listing 2). The operation is read-only and linearizes at the final
// validation of the data node's sequence lock.
func (m *Map[V]) Lookup(k int64) (*V, bool) {
	checkKey(k)
	ctx := m.ctxs.get()
	defer m.ctxs.put(ctx)
	return m.lookupCtx(ctx, k)
}

// Contains reports whether k is present.
func (m *Map[V]) Contains(k int64) bool {
	_, found := m.Lookup(k)
	return found
}

// lookupCtx is Lookup's retry loop against an explicit context (shared with
// Handle.Lookup).
func (m *Map[V]) lookupCtx(ctx *opCtx[V], k int64) (*V, bool) {
	for {
		if v, found, ok := m.lookupOnce(ctx, k); ok {
			return v, found
		}
		m.restart(ctx, opLookup)
	}
}

// lookupOnce is one optimistic attempt; ok=false requests a restart. The
// search finger short-circuits the descent when k falls inside the data node
// the context's previous operation finished on.
func (m *Map[V]) lookupOnce(ctx *opCtx[V], k int64) (v *V, found, ok bool) {
	curr, ver, hit := m.fingerSeek(ctx, k, fingerPoint)
	if !hit {
		curr, ver, ok = m.descendToData(ctx, k, modeRead)
		if !ok {
			return nil, false, false
		}
	}
	v, found = curr.data.Get(k)
	// Linearization point: if the data node is unchanged, the speculative
	// Get above observed a consistent state (Listing 2 line 14).
	if !curr.lock.Validate(ver) {
		return nil, false, false
	}
	m.recordFinger(ctx, curr, ver)
	ctx.dropAll()
	return v, found, true
}
