package core

import (
	"sync"
	"testing"
)

// buildOrphanChain constructs a map whose data layer contains several
// consecutive orphan nodes by removing the indexed (tower) keys between
// chunked runs of height-0 keys. Removing an indexed key marks its data
// node an orphan (Listing 4), and lookups/inserts must then traverse the
// orphan chain through next pointers alone.
func buildOrphanChain(t *testing.T) (*Map[int64], []int64) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.TargetDataVectorSize = 2
	cfg.TargetIndexVectorSize = 2
	cfg.LayerCount = 5
	// Large MergeFactor would eagerly merge the orphans away on the next
	// write; keep it tiny so the chain persists (merges only fire when the
	// combined size is *below* the threshold).
	cfg.MergeFactor = 0.01
	m := newTestMap(t, cfg)
	for k := int64(0); k < 400; k++ {
		m.Insert(k, v64(k))
	}
	// Find the keys that have index towers (minima of non-orphan data
	// nodes, excluding sentinels): removing them orphans their nodes.
	var towers []int64
	for n := m.heads[0]; n != nil; n = n.next.Load() {
		if n == m.heads[0] || n.next.Load() == nil {
			continue
		}
		if !n.lock.IsOrphan() {
			if minK, ok := n.data.MinKey(); ok {
				towers = append(towers, minK)
			}
		}
	}
	if len(towers) < 8 {
		t.Fatalf("expected many indexed keys, got %d", len(towers))
	}
	for _, k := range towers {
		if !m.Remove(k) {
			t.Fatalf("Remove(%d) failed", k)
		}
	}
	mustCheck(t, m)
	return m, towers
}

func TestLookupAcrossOrphanChains(t *testing.T) {
	m, towers := buildOrphanChain(t)
	removed := map[int64]bool{}
	for _, k := range towers {
		removed[k] = true
	}
	// Count surviving orphans to confirm the scenario is non-trivial.
	orphans := 0
	for n := m.heads[0]; n != nil; n = n.next.Load() {
		if n.lock.IsOrphan() {
			orphans++
		}
	}
	if orphans < 4 {
		t.Fatalf("only %d orphan nodes; scenario too weak", orphans)
	}
	for k := int64(0); k < 400; k++ {
		_, found := m.Lookup(k)
		if found == removed[k] {
			t.Fatalf("Lookup(%d) = %t, removed=%t", k, found, removed[k])
		}
	}
	// Navigation across orphan chains.
	for _, k := range towers {
		if ck, _, ok := m.Ceiling(k); ok && ck < k {
			t.Fatalf("Ceiling(%d) = %d", k, ck)
		}
		if fk, _, ok := m.Floor(k); ok && fk > k {
			t.Fatalf("Floor(%d) = %d", k, fk)
		}
	}
}

func TestWritesMergeOrphanChains(t *testing.T) {
	m, _ := buildOrphanChain(t)
	before := m.Stats().Merges
	// Raise the effective merge appetite by removing most keys: empty
	// orphans are unlinked by any operation, under-full ones by writers.
	for k := int64(0); k < 400; k++ {
		m.Remove(k)
	}
	mustCheck(t, m)
	if m.Len() != 0 {
		t.Fatalf("Len = %d", m.Len())
	}
	if after := m.Stats().Merges; after <= before {
		t.Fatalf("no merges happened during drain (before %d, after %d)", before, after)
	}
	// The data layer should have collapsed to near-minimal length.
	if counts := m.NodeCount(); counts[0] > 8 {
		t.Fatalf("data layer still has %d nodes after drain", counts[0])
	}
}

func TestRangeQueryAcrossOrphanChain(t *testing.T) {
	m, towers := buildOrphanChain(t)
	removed := map[int64]bool{}
	for _, k := range towers {
		removed[k] = true
	}
	var got []int64
	m.RangeQuery(0, 399, func(k int64, _ *int64) bool {
		got = append(got, k)
		return true
	})
	want := 0
	for k := int64(0); k < 400; k++ {
		if !removed[k] {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("range saw %d keys, want %d", len(got), want)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatal("range out of order across orphan chain")
		}
	}
}

// TestRestartCounterUnderContention sanity-checks the restart statistic:
// heavy same-chunk contention must produce at least some restarts, and the
// structure must stay correct.
func TestRestartCounterUnderContention(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TargetDataVectorSize = 64 // one hot chunk
	cfg.LayerCount = 2
	m := newTestMap(t, cfg)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(base int64) {
			defer wg.Done()
			for i := 0; i < 3000; i++ {
				k := base + int64(i%16)
				m.Insert(k, v64(k))
				m.Remove(k)
			}
		}(int64(g) * 16)
	}
	wg.Wait()
	mustCheck(t, m)
	if m.Stats().Restarts == 0 {
		t.Log("note: zero restarts under contention (possible on a single-core scheduler)")
	}
}
