package core

import (
	"fmt"
	"sort"
)

// BulkLoad constructs a skip vector from pre-sorted data in O(n) time with
// perfectly packed chunks — the ordered-map analogue of B+-tree bulk
// loading, and the fast path database index builds want (the paper's
// future-work direction of using the skip vector as a database index). Keys
// must be strictly ascending and within (MinKey, MaxKey); vals must be the
// same length as keys (vals may be nil to load all-nil values).
//
// Every chunk is filled to exactly its target size, so the loaded structure
// matches the steady-state shape the height distribution would converge to,
// and every node at layer L>0 gets a parent entry except at the top layer,
// where non-head nodes are marked orphans (the invariant normal operation
// maintains; lazy merging will coalesce them if the top layer is overfull
// for the configured LayerCount).
func BulkLoad[V any](cfg Config, keys []int64, vals []*V) (*Map[V], error) {
	if vals != nil && len(vals) != len(keys) {
		return nil, fmt.Errorf("core: BulkLoad with %d keys but %d values", len(keys), len(vals))
	}
	for i, k := range keys {
		if k == MinKey || k == MaxKey {
			return nil, fmt.Errorf("core: BulkLoad key %d is a sentinel", k)
		}
		if i > 0 && keys[i-1] >= k {
			return nil, fmt.Errorf("core: BulkLoad keys not strictly ascending at %d", i)
		}
	}
	m, err := NewMap[V](cfg)
	if err != nil {
		return nil, err
	}
	if len(keys) == 0 {
		return m, nil
	}

	// Build the data layer: a chain of nodes with T_D keys each, linked
	// between the head and tail sentinels.
	type childRef[W any] struct {
		min  int64
		node *node[W]
	}
	var refs []childRef[V]
	head := m.heads[0]
	tail := head.next.Load()
	prev := head
	for off := 0; off < len(keys); off += cfg.TargetDataVectorSize {
		end := off + cfg.TargetDataVectorSize
		if end > len(keys) {
			end = len(keys)
		}
		n := m.mem.allocRaw(0)
		for i := off; i < end; i++ {
			var v *V
			if vals != nil {
				v = vals[i]
			}
			n.data.Insert(keys[i], v)
		}
		prev.next.Store(n)
		prev = n
		if cfg.LayerCount == 1 {
			// Degenerate configuration: the data layer is the top layer,
			// so non-head nodes must be orphans (the shape splits produce).
			n.markOrphanPrivate()
		} else {
			refs = append(refs, childRef[V]{min: keys[off], node: n})
		}
	}
	prev.next.Store(tail)

	// Build index layers bottom-up: one entry per child node, T_I entries
	// per index node, until the top configured layer absorbs the rest.
	for level := 1; level < cfg.LayerCount; level++ {
		lhead := m.heads[level]
		ltail := lhead.next.Load()
		lprev := lhead
		var parents []childRef[V]
		isTop := level == cfg.LayerCount-1
		for off := 0; off < len(refs); off += cfg.TargetIndexVectorSize {
			end := off + cfg.TargetIndexVectorSize
			if end > len(refs) {
				end = len(refs)
			}
			n := m.mem.allocRaw(level)
			for i := off; i < end; i++ {
				n.index.Insert(refs[i].min, refs[i].node)
			}
			lprev.next.Store(n)
			lprev = n
			if isTop {
				// Top-layer rule: non-head nodes must be orphans.
				n.markOrphanPrivate()
			} else {
				parents = append(parents, childRef[V]{min: refs[off].min, node: n})
			}
		}
		lprev.next.Store(ltail)
		if isTop {
			break
		}
		refs = parents
		if len(refs) == 0 {
			break
		}
	}

	m.length.add(0, int64(len(keys)))
	return m, nil
}

// BulkLoadUnsorted sorts (key, value) pairs and bulk-loads them; a
// convenience for callers with unsorted input. Duplicate keys are rejected.
func BulkLoadUnsorted[V any](cfg Config, keys []int64, vals []*V) (*Map[V], error) {
	if vals != nil && len(vals) != len(keys) {
		return nil, fmt.Errorf("core: BulkLoadUnsorted with %d keys but %d values", len(keys), len(vals))
	}
	idx := make([]int, len(keys))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
	sk := make([]int64, len(keys))
	var sv []*V
	if vals != nil {
		sv = make([]*V, len(vals))
	}
	for n, i := range idx {
		sk[n] = keys[i]
		if vals != nil {
			sv[n] = vals[i]
		}
	}
	return BulkLoad(cfg, sk, sv)
}
