package core

import (
	"fmt"
	"sort"
	"strings"
)

// CheckInvariants validates the entire structure. It must only be called in
// a quiescent state (no concurrent operations); tests call it after stress
// runs to prove the structure survived intact. The checks cover every
// structural invariant Section IV relies on:
//
//  1. per-chunk consistency (size bounds, uniqueness, sort order);
//  2. strict key ordering across each layer (max of a node < min of its
//     successor), which also implies layer-wide uniqueness;
//  3. every index entry ⟨K, child⟩ points to a node in the layer below
//     whose minimum key is exactly K and which is not an orphan;
//  4. the orphan flag is set exactly on the nodes with no parent entry
//     (heads and tails excepted);
//  5. every key present in layer L > 0 is present in layer L-1 (and hence
//     in the data layer);
//  6. no node is locked or frozen;
//  7. the length counter equals the number of user keys in the data layer.
func (m *Map[V]) CheckInvariants() error {
	// Collect the nodes of each layer by walking next pointers.
	layers := make([][]*node[V], m.cfg.LayerCount)
	for l := 0; l < m.cfg.LayerCount; l++ {
		for n := m.heads[l]; n != nil; n = n.next.Load() {
			if int(n.level) != l {
				return fmt.Errorf("layer %d: node has level %d", l, n.level)
			}
			layers[l] = append(layers[l], n)
		}
	}

	for l, nodes := range layers {
		prevMax := int64(0)
		havePrev := false
		for i, n := range nodes {
			w := n.lock.Current()
			if w.Locked() || w.Frozen() {
				return fmt.Errorf("layer %d node %d: lock word dirty (%v)", l, i, w)
			}
			var chunkErr error
			if n.isIndex() {
				chunkErr = n.index.CheckInvariants()
			} else {
				chunkErr = n.data.CheckInvariants()
			}
			if chunkErr != nil {
				return fmt.Errorf("layer %d node %d: %w", l, i, chunkErr)
			}
			minK, hasMin := n.minKey()
			maxK, _ := n.maxKey()
			if hasMin {
				if havePrev && minK <= prevMax {
					return fmt.Errorf("layer %d node %d: min %d <= previous max %d",
						l, i, minK, prevMax)
				}
				prevMax, havePrev = maxK, true
			} else if i == 0 || i == len(nodes)-1 {
				return fmt.Errorf("layer %d: empty sentinel node", l)
			} else if !w.Orphan() {
				return fmt.Errorf("layer %d node %d: empty non-orphan node", l, i)
			}
		}
	}

	// Parent/child relationships and orphan-flag accuracy.
	for l := m.cfg.LayerCount - 1; l >= 1; l-- {
		childHasParent := make(map[*node[V]]bool)
		childKeys := keySet(layers[l-1])
		for i, n := range layers[l] {
			var badEntry error
			n.index.ForEach(func(k int64, child *node[V]) bool {
				if child == nil {
					if k == MaxKey && n == layers[l][len(layers[l])-1] {
						return true // tail sentinel entry carries no child
					}
					badEntry = fmt.Errorf("layer %d node %d: nil child for key %d", l, i, k)
					return false
				}
				childMin, ok := child.minKey()
				if !ok || childMin != k {
					badEntry = fmt.Errorf("layer %d node %d: entry %d points to child with min %d",
						l, i, k, childMin)
					return false
				}
				if child.lock.IsOrphan() {
					badEntry = fmt.Errorf("layer %d node %d: entry %d points to orphan child", l, i, k)
					return false
				}
				if int(child.level) != l-1 {
					badEntry = fmt.Errorf("layer %d node %d: entry %d child at level %d",
						l, i, k, child.level)
					return false
				}
				childHasParent[child] = true
				if k != MinKey {
					if _, present := childKeys[k]; !present {
						badEntry = fmt.Errorf("layer %d key %d missing from layer %d", l, k, l-1)
						return false
					}
				}
				return true
			})
			if badEntry != nil {
				return badEntry
			}
		}
		// Orphan flags in layer l-1 must mirror the parent map exactly.
		below := layers[l-1]
		for i, c := range below {
			isSentinel := i == 0 || i == len(below)-1
			if isSentinel {
				if c.lock.IsOrphan() {
					return fmt.Errorf("layer %d: sentinel marked orphan", l-1)
				}
				continue
			}
			if childHasParent[c] == c.lock.IsOrphan() {
				return fmt.Errorf("layer %d node %d: orphan flag %t but parent present %t",
					l-1, i, c.lock.IsOrphan(), childHasParent[c])
			}
		}
	}

	// Top-layer rule: every non-sentinel node in the topmost layer must be
	// an orphan. Remove's "k is the minimum of a non-orphan node ⇒ k exists
	// one layer up" restart rule (Listing 4 line 13) depends on it: a
	// non-orphan minimum in the top layer would make a Remove of that key
	// retry forever. Normal operation maintains the rule because top-layer
	// nodes are only ever created by capacity splits, which mark orphans.
	top := layers[m.cfg.LayerCount-1]
	for i, n := range top {
		if i == 0 || i == len(top)-1 {
			continue
		}
		if !n.lock.IsOrphan() {
			return fmt.Errorf("top layer node %d is not an orphan", i)
		}
	}

	// Length accounting.
	dataKeys := 0
	for _, n := range layers[0] {
		n.data.ForEach(func(k int64, _ *V) bool {
			if k != MinKey && k != MaxKey {
				dataKeys++
			}
			return true
		})
	}
	if got := m.Len(); got != dataKeys {
		return fmt.Errorf("Len() = %d but data layer holds %d keys", got, dataKeys)
	}
	return nil
}

// keySet flattens a layer's user keys into a set.
func keySet[V any](nodes []*node[V]) map[int64]struct{} {
	set := make(map[int64]struct{})
	for _, n := range nodes {
		collect := func(k int64) {
			if k != MinKey && k != MaxKey {
				set[k] = struct{}{}
			}
		}
		if n.isIndex() {
			n.index.ForEach(func(k int64, _ *node[V]) bool { collect(k); return true })
		} else {
			n.data.ForEach(func(k int64, _ *V) bool { collect(k); return true })
		}
	}
	return set
}

// Keys returns all user keys in ascending order. Quiescent use only (tests
// and debugging); concurrent callers should use RangeQuery.
func (m *Map[V]) Keys() []int64 {
	var out []int64
	for n := m.heads[0]; n != nil; n = n.next.Load() {
		n.data.ForEach(func(k int64, _ *V) bool {
			if k != MinKey && k != MaxKey {
				out = append(out, k)
			}
			return true
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Dump renders the layer structure for debugging.
func (m *Map[V]) Dump() string {
	var b strings.Builder
	for l := m.cfg.LayerCount - 1; l >= 0; l-- {
		fmt.Fprintf(&b, "L%d:", l)
		for n := m.heads[l]; n != nil; n = n.next.Load() {
			keys := make([]int64, 0, 8)
			if n.isIndex() {
				n.index.ForEach(func(k int64, _ *node[V]) bool { keys = append(keys, k); return true })
			} else {
				n.data.ForEach(func(k int64, _ *V) bool { keys = append(keys, k); return true })
			}
			sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
			flag := ""
			if n.lock.IsOrphan() {
				flag = "*"
			}
			fmt.Fprintf(&b, " [%s%v]", flag, keys)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// NodeCount returns the number of nodes per layer (for stats and tests).
func (m *Map[V]) NodeCount() []int {
	counts := make([]int, m.cfg.LayerCount)
	for l := range m.heads {
		for n := m.heads[l]; n != nil; n = n.next.Load() {
			counts[l]++
		}
	}
	return counts
}
