package core

import (
	"skipvector/internal/chaos"
	"skipvector/internal/seqlock"
)

// The search finger is a per-context locality cache in the spirit of
// "finger search" skip lists: every operation that settles on a data-layer
// node remembers that node together with the seqlock version it validated.
// The next operation through the same context first asks whether its key
// still falls inside the remembered node's span; if so, it skips the whole
// top-down descent (descendToData) and resumes directly at the data layer —
// O(1) instead of O(log_T n) for the spatially local access patterns the
// paper's chunking already favours (cursors, range scans, Zipfian traffic,
// ascending bulk ingest).
//
// Safety: the finger's authoritative content is (node, version); everything
// else it carries (cached bounds, backoff counters) is heuristic. Nothing
// about the node is trusted until the next operation (a) publishes a hazard
// pointer for it and (b) revalidates the remembered version. The publication/validation order is
// the same as everywhere else in the traversal: under Go's sequentially
// consistent atomics, a successful validation proves no writer locked, froze,
// or released the node between record and seek, and any writer that retires
// the node afterwards must first lock it — changing the word forever, since
// sequence numbers grow monotonically across node lifetimes — and will then
// see the published hazard pointer during its reclamation scan. A validation
// failure (or a frozen/orphan/locked word at record time, or an out-of-span
// key) simply falls back to the full descent, so the finger can delay but
// never change any operation's outcome.
//
// Ownership is derived fresh at seek time from the validated chunk instead of
// being cached: the data layer partitions the key space, so an unchanged node
// n owns exactly [n.min, succ(n).min), and succ(n).min cannot decrease while
// n's word is unchanged (linking or merging a successor requires locking n).
// Keys in (n.max, succ(n).min) — the common case for ascending ingest — are
// resolved with one extra validated read of the successor's minimum.

// finger remembers where the previous operation through a context finished.
//
// Two refinements keep the finger near-free when locality is absent:
//
//   - Bound caching: a successful probe caches the node's exact [lo, hi] key
//     bounds. They are trusted again only while the node's lock word still
//     equals ver (any modification bumps the word), which lets a run of
//     read-only operations on the same chunk skip the O(T_D) bounds scan —
//     a probe is then one load, one compare against the word, and two key
//     compares.
//   - Probe backoff: every wasted full probe (failed validation or
//     out-of-span key) doubles a skip window, during which seeks decline to
//     probe at all (two branches). Any hit resets the window. Under uniform
//     or scrambled-Zipfian traffic — where consecutive operations almost
//     never share a chunk — the finger quickly throttles itself to one probe
//     per 2^maxFingerPenalty operations, bounding its overhead to well under
//     a percent; when the workload turns local again the first successful
//     probe restores full eagerness.
type finger[V any] struct {
	node *node[V]
	ver  seqlock.Version
	lo   int64 // cached bounds, exact while node's word == ver
	hi   int64
	// hasBounds marks lo/hi as valid for ver. Cleared whenever the finger
	// moves to a new (node, ver) pair without a validated bounds read.
	hasBounds bool
	backoff   uint8 // probes still to skip
	penalty   uint8 // log2 of the next skip window
}

// maxFingerPenalty caps the probe backoff at one probe per 2^6-1 = 63
// operations: small enough to notice a workload turning local within tens of
// operations, large enough to make wasted probes statistically invisible.
const maxFingerPenalty = 6

// punish widens the skip window after a wasted full probe.
func (f *finger[V]) punish() {
	if f.penalty < maxFingerPenalty {
		f.penalty++
	}
	f.backoff = (1 << f.penalty) - 1
}

// fingerMode selects the ownership test fingerSeek applies.
type fingerMode int

const (
	// fingerPoint requires the key to lie strictly inside the remembered
	// node's span: [min, succMin).
	fingerPoint fingerMode = iota
	// fingerScan additionally accepts key == succMin: Ceiling walks right
	// hand-over-hand anyway, so starting one node early is still O(1) and
	// lets sequential scans cross chunk boundaries without a descent.
	fingerScan
	// fingerRemove excludes key == min: removing a node's minimum must take
	// the full descent, because the key may own an index tower that only the
	// top-down pass can find and unlink.
	fingerRemove
)

// fingerSeek tries to resume at the remembered data node. On a hit the
// caller holds a hazard pointer on the returned node and a validated
// snapshot of its lock — exactly the postcondition of descendToData. On a
// miss nothing is held and the caller performs the full descent.
func (m *Map[V]) fingerSeek(ctx *opCtx[V], k int64, mode fingerMode) (*node[V], seqlock.Version, bool) {
	if m.cfg.DisableFinger {
		return nil, 0, false
	}
	f := &ctx.fing
	n := f.node
	if n == nil {
		m.fingerMisses.add(ctx.stripe, 1)
		return nil, 0, false
	}
	if f.backoff > 0 {
		// Still backing off after wasted probes: decline without touching
		// the node (misses here include skipped probes by design).
		f.backoff--
		m.fingerMisses.add(ctx.stripe, 1)
		return nil, 0, false
	}
	// Quick reject on the cached lower bound, before any shared-memory
	// write: a node's minimum can only change under its lock, so if the
	// bounds are stale the reject is merely conservative (a miss is always
	// safe). Keys above hi are NOT rejected here — they may sit in the gap
	// before the successor (the ascending-ingest case) and need the probe.
	if f.hasBounds && k < f.lo {
		m.fingerMisses.add(ctx.stripe, 1)
		return nil, 0, false
	}
	// Publish the hazard pointer first, then revalidate: a successful
	// validation proves the node was still live (not retired) when the
	// pointer became visible, so it is protected from here on.
	ctx.take(n)
	if chaos.Fail(chaos.CoreFinger) || !n.lock.Validate(f.ver) {
		ctx.drop(n)
		f.node = nil // stale: the node changed (or was merged away) behind us
		f.punish()
		m.fingerMisses.add(ctx.stripe, 1)
		return nil, 0, false
	}
	// n is unchanged since the finger was recorded, so its chunk reads below
	// are consistent — and cached bounds, taken under the same word, are
	// still exact and save the scan.
	var minK, maxK int64
	if f.hasBounds {
		minK, maxK = f.lo, f.hi
	} else {
		var ok bool
		minK, maxK, ok = n.data.Bounds()
		if !ok {
			ctx.drop(n)
			f.punish()
			m.fingerMisses.add(ctx.stripe, 1)
			return nil, 0, false
		}
		f.lo, f.hi, f.hasBounds = minK, maxK, true
	}
	if k < minK || (mode == fingerRemove && k == minK) {
		ctx.drop(n)
		f.punish()
		m.fingerMisses.add(ctx.stripe, 1)
		return nil, 0, false
	}
	if k > maxK {
		// k may still belong to n if it falls in the gap before the
		// successor's minimum. One validated read of succ.min decides; the
		// final revalidation of n proves succ was n's successor throughout.
		// The successor follows the usual exposure rule: publish its hazard
		// pointer, revalidate n (unlinking the successor would have locked
		// n), and only then dereference it.
		next := n.next.Load()
		hit := false
		if next != nil {
			ctx.take(next)
			if n.lock.Validate(f.ver) {
				if nv, ok := next.lock.ReadVersion(); ok {
					if nm, has := next.minKey(); has && next.lock.Validate(nv) && n.lock.Validate(f.ver) {
						hit = k < nm || (mode == fingerScan && k == nm)
					}
				}
			}
			ctx.drop(next)
		}
		if !hit {
			ctx.drop(n)
			f.punish()
			m.fingerMisses.add(ctx.stripe, 1)
			return nil, 0, false
		}
	}
	f.penalty = 0
	m.fingerHits.add(ctx.stripe, 1)
	return n, f.ver, true
}

// recordFinger remembers the data node an operation finished on, for the
// next operation through the same context to resume from. n must be a
// data-layer node. ver must be a snapshot the caller just validated (or the
// return of Release/Abort on a lock it held, or a clean Current() word of a
// node the caller just published). Locked or frozen words are not recorded —
// the writer's release would invalidate them immediately. Orphan nodes ARE
// recorded: capacity splits leave long-lived orphans that are exactly the
// hot node of an ascending ingest, and a merge that absorbs one bumps its
// lock, so the next seek's validation detects it. Recording is O(1) —
// ownership is recomputed at seek time.
//
// recordFinger must not dereference n: callers may invoke it after dropping
// hazard protection, when a concurrent retire could already be recycling the
// node — its non-atomic fields may be mid-reinitialization. Only the pointer
// and the version are stored; nothing about the node is trusted until the
// next probe re-publishes a hazard pointer and revalidates ver (which a
// recycled node's monotonic lock word always fails).
func (m *Map[V]) recordFinger(ctx *opCtx[V], n *node[V], ver seqlock.Version) {
	if m.cfg.DisableFinger || n == nil {
		return
	}
	if ver.Locked() || ver.Frozen() {
		return
	}
	f := &ctx.fing
	if f.node == n && f.ver == ver {
		return // unchanged — keep the cached bounds (and backoff state)
	}
	f.node, f.ver = n, ver
	f.hasBounds = false
}
