package core

import (
	"math/rand"
	"sort"
	"testing"
)

// applyBatchModel replays a batch against a plain map model with ApplyBatch's
// declared semantics — ascending key order, same-key ops in request order —
// and returns the expected per-op outcomes in request positions.
func applyBatchModel(model map[int64]int64, ops []BatchOp[int64]) []BatchOutcome {
	order := make([]int, len(ops))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return ops[order[a]].Key < ops[order[b]].Key })
	outs := make([]BatchOutcome, len(ops))
	for _, oi := range order {
		op := ops[oi]
		_, present := model[op.Key]
		switch {
		case op.Del:
			if present {
				delete(model, op.Key)
				outs[oi] = BatchRemoved
			} else {
				outs[oi] = BatchAbsent
			}
		case op.InsertOnly:
			if present {
				outs[oi] = BatchExists
			} else {
				model[op.Key] = *op.Val
				outs[oi] = BatchInserted
			}
		default:
			if present {
				outs[oi] = BatchUpdated
			} else {
				outs[oi] = BatchInserted
			}
			model[op.Key] = *op.Val
		}
	}
	return outs
}

// checkBatchAgainstModel applies ops to both the map and the model and fails
// on any outcome mismatch.
func checkBatchAgainstModel(t *testing.T, m *Map[int64], model map[int64]int64, ops []BatchOp[int64]) {
	t.Helper()
	want := applyBatchModel(model, ops)
	got := m.ApplyBatch(ops)
	if len(got) != len(ops) {
		t.Fatalf("ApplyBatch returned %d results for %d ops", len(got), len(ops))
	}
	for i := range got {
		if got[i].Outcome != want[i] {
			t.Fatalf("op %d (%+v): outcome %v, model wants %v\nops: %+v",
				i, ops[i], got[i].Outcome, want[i], ops)
		}
	}
}

// checkMapMatchesModel verifies lookups and length against the model.
func checkMapMatchesModel(t *testing.T, m *Map[int64], model map[int64]int64, keySpace int64) {
	t.Helper()
	if m.Len() != len(model) {
		t.Fatalf("Len = %d, model holds %d\n%s", m.Len(), len(model), m.Dump())
	}
	for k := int64(0); k < keySpace; k++ {
		pv, ok := m.Lookup(k)
		mv, inModel := model[k]
		if ok != inModel {
			t.Fatalf("Lookup(%d) = %t, model = %t", k, ok, inModel)
		}
		if ok && *pv != mv {
			t.Fatalf("Lookup(%d) = %d, model = %d", k, *pv, mv)
		}
	}
}

// TestApplyBatchBasic walks a handful of directed batches through every config:
// a bulk insert, a mixed update/insert-only/delete batch, and a full drain.
func TestApplyBatchBasic(t *testing.T) {
	forAllConfigs(t, func(t *testing.T, cfg Config) {
		m := newTestMap(t, cfg)
		model := map[int64]int64{}

		// Bulk insert, unsorted request order.
		var load []BatchOp[int64]
		for _, k := range []int64{12, 3, 45, 7, 29, 18, 40, 1, 33, 22} {
			load = append(load, BatchOp[int64]{Key: k, Val: v64(k * 10)})
		}
		checkBatchAgainstModel(t, m, model, load)
		checkMapMatchesModel(t, m, model, 64)
		mustCheck(t, m)

		// Mixed batch: overwrite, insert-only on present and absent keys,
		// delete present and absent keys.
		mixed := []BatchOp[int64]{
			{Key: 3, Val: v64(333)},                   // update
			{Key: 5, Val: v64(555)},                   // fresh insert
			{Key: 7, Val: v64(777), InsertOnly: true}, // exists
			{Key: 9, Val: v64(999), InsertOnly: true}, // inserted
			{Key: 12, Del: true},                      // removed
			{Key: 13, Del: true},                      // absent
		}
		checkBatchAgainstModel(t, m, model, mixed)
		checkMapMatchesModel(t, m, model, 64)
		mustCheck(t, m)

		// Drain everything, including misses.
		var drain []BatchOp[int64]
		for k := int64(0); k < 48; k++ {
			drain = append(drain, BatchOp[int64]{Key: k, Del: true})
		}
		checkBatchAgainstModel(t, m, model, drain)
		if m.Len() != 0 {
			t.Fatalf("Len = %d after drain", m.Len())
		}
		mustCheck(t, m)
	})
}

// TestApplyBatchDuplicateKeys pins the last-write-wins contract: same-key ops
// resolve in request order, each reporting the outcome of its own step.
func TestApplyBatchDuplicateKeys(t *testing.T) {
	forAllConfigs(t, func(t *testing.T, cfg Config) {
		m := newTestMap(t, cfg)
		model := map[int64]int64{}

		// insert → update → delete → insert-only on one key, interleaved with
		// a neighbor so the run sits inside a larger batch.
		ops := []BatchOp[int64]{
			{Key: 10, Val: v64(1)},
			{Key: 11, Val: v64(100)},
			{Key: 10, Val: v64(2)},
			{Key: 10, Del: true},
			{Key: 10, Val: v64(3), InsertOnly: true},
		}
		checkBatchAgainstModel(t, m, model, ops)
		if pv, ok := m.Lookup(10); !ok || *pv != 3 {
			t.Fatalf("Lookup(10) after duplicate run: %v, %t (want 3)", pv, ok)
		}

		// Net-delete run: present key put twice then deleted.
		ops = []BatchOp[int64]{
			{Key: 10, Val: v64(4)},
			{Key: 10, Val: v64(5)},
			{Key: 10, Del: true},
		}
		checkBatchAgainstModel(t, m, model, ops)
		if _, ok := m.Lookup(10); ok {
			t.Fatal("key 10 survived a net-delete run")
		}
		checkMapMatchesModel(t, m, model, 16)
		mustCheck(t, m)
	})
}

// TestApplyBatchEmptyAndMisses covers the degenerate inputs: a nil batch, an
// empty batch, and a batch of pure misses on an empty map.
func TestApplyBatchEmptyAndMisses(t *testing.T) {
	m := newTestMap(t, DefaultConfig())
	if got := m.ApplyBatch(nil); len(got) != 0 {
		t.Fatalf("nil batch returned %d results", len(got))
	}
	if got := m.ApplyBatch([]BatchOp[int64]{}); len(got) != 0 {
		t.Fatalf("empty batch returned %d results", len(got))
	}
	got := m.ApplyBatch([]BatchOp[int64]{{Key: 1, Del: true}, {Key: 2, Del: true}})
	for i, r := range got {
		if r.Outcome != BatchAbsent {
			t.Fatalf("miss %d reported %v", i, r.Outcome)
		}
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d", m.Len())
	}
	mustCheck(t, m)
}

// TestApplyBatchSentinelKeyPanics: sentinel keys are rejected up front, before
// any op commits.
func TestApplyBatchSentinelKeyPanics(t *testing.T) {
	m := newTestMap(t, DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("sentinel key accepted")
		}
		if m.Len() != 0 {
			t.Fatalf("batch partially committed before the key check: Len = %d", m.Len())
		}
	}()
	m.ApplyBatch([]BatchOp[int64]{{Key: 1, Val: v64(1)}, {Key: MaxKey, Val: v64(2)}})
}

// TestApplyBatchChunkStraddle drives batches far wider than one chunk through
// the tiny-chunk config, forcing repeated in-group splits, then drains the map
// in sorted batches so removals keep landing on node minima (the min-defer
// path).
func TestApplyBatchChunkStraddle(t *testing.T) {
	cfg := testConfigs()["tiny-chunks"]
	m := newTestMap(t, cfg)
	model := map[int64]int64{}

	// One batch of 128 sequential keys against T_D = 2 chunks: every group
	// must split its segment several times before the single release.
	var load []BatchOp[int64]
	for k := int64(0); k < 128; k++ {
		load = append(load, BatchOp[int64]{Key: k, Val: v64(k)})
	}
	checkBatchAgainstModel(t, m, model, load)
	checkMapMatchesModel(t, m, model, 128)
	mustCheck(t, m)

	// Sorted drain in batches of 8: the head of every batch is the global
	// minimum — guaranteed to be some node's minimum — so the min-defer
	// singleton route is exercised repeatedly, tower unlinks included.
	for lo := int64(0); lo < 128; lo += 8 {
		var drain []BatchOp[int64]
		for k := lo; k < lo+8; k++ {
			drain = append(drain, BatchOp[int64]{Key: k, Del: true})
		}
		checkBatchAgainstModel(t, m, model, drain)
		mustCheck(t, m)
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d after sorted drain", m.Len())
	}
}

// TestApplyBatchMinKeyNetPut pins the min-defer split: a same-key run on a
// node's minimum that nets to a put must stay in the grouped path (the tower
// entry remains valid), while a net delete must detour through the top-down
// singleton remove. Both must leave a consistent structure.
func TestApplyBatchMinKeyNetPut(t *testing.T) {
	cfg := testConfigs()["tiny-chunks"]
	m := newTestMap(t, cfg)
	model := map[int64]int64{}
	var load []BatchOp[int64]
	for k := int64(0); k < 32; k++ {
		load = append(load, BatchOp[int64]{Key: k, Val: v64(k)})
	}
	checkBatchAgainstModel(t, m, model, load)

	for k := int64(0); k < 32; k++ {
		// delete → reinsert nets to a put on every key, node minima included.
		ops := []BatchOp[int64]{
			{Key: k, Del: true},
			{Key: k, Val: v64(k * 2)},
			{Key: k + 1, Del: true},
			{Key: k + 1, Val: v64((k + 1) * 2), InsertOnly: true},
		}
		checkBatchAgainstModel(t, m, model, ops)
	}
	checkMapMatchesModel(t, m, model, 40)
	mustCheck(t, m)
}

// TestApplyBatchDifferential is the randomized sweep: random mixed batches with
// duplicate keys against the model, over every config, with full invariant and
// content checks at the end of each round.
func TestApplyBatchDifferential(t *testing.T) {
	forAllConfigs(t, func(t *testing.T, cfg Config) {
		const keySpace = 96
		m := newTestMap(t, cfg)
		model := map[int64]int64{}
		rng := rand.New(rand.NewSource(int64(cfg.TargetDataVectorSize*100 + cfg.LayerCount)))
		for round := 0; round < 60; round++ {
			n := 1 + rng.Intn(24)
			ops := make([]BatchOp[int64], n)
			for i := range ops {
				k := int64(rng.Intn(keySpace))
				switch rng.Intn(10) {
				case 0, 1, 2:
					ops[i] = BatchOp[int64]{Key: k, Del: true}
				case 3, 4:
					ops[i] = BatchOp[int64]{Key: k, Val: v64(int64(round*1000 + i)), InsertOnly: true}
				default:
					ops[i] = BatchOp[int64]{Key: k, Val: v64(int64(round*1000 + i))}
				}
			}
			checkBatchAgainstModel(t, m, model, ops)
			if round%10 == 9 {
				checkMapMatchesModel(t, m, model, keySpace)
				mustCheck(t, m)
			}
		}
		checkMapMatchesModel(t, m, model, keySpace)
		mustCheck(t, m)
	})
}

// TestUpsertBasic covers the singleton upsert both ways through Map and
// Handle: fresh insert reports true, overwrite reports false and replaces the
// payload.
func TestUpsertBasic(t *testing.T) {
	forAllConfigs(t, func(t *testing.T, cfg Config) {
		m := newTestMap(t, cfg)
		if !m.Upsert(5, v64(50)) {
			t.Fatal("fresh Upsert reported overwrite")
		}
		if m.Upsert(5, v64(51)) {
			t.Fatal("overwriting Upsert reported fresh insert")
		}
		if pv, ok := m.Lookup(5); !ok || *pv != 51 {
			t.Fatalf("Lookup(5) = %v, %t after upsert", pv, ok)
		}
		h := m.NewHandle()
		defer h.Close()
		if h.Upsert(5, v64(52)) {
			t.Fatal("handle overwrite reported fresh insert")
		}
		if !h.Upsert(6, v64(60)) {
			t.Fatal("handle fresh upsert reported overwrite")
		}
		if pv, ok := m.Lookup(5); !ok || *pv != 52 {
			t.Fatalf("Lookup(5) = %v, %t after handle upsert", pv, ok)
		}
		if m.Len() != 2 {
			t.Fatalf("Len = %d", m.Len())
		}
		mustCheck(t, m)
	})
}

// TestHandleApplyBatch runs consecutive ascending batches through one pinned
// handle — the finger should carry from one batch to the next — and verifies
// contents and finger traffic.
func TestHandleApplyBatch(t *testing.T) {
	cfg := DefaultConfig()
	m := newTestMap(t, cfg)
	model := map[int64]int64{}
	h := m.NewHandle()
	defer h.Close()

	for base := int64(0); base < 512; base += 16 {
		ops := make([]BatchOp[int64], 16)
		for i := range ops {
			ops[i] = BatchOp[int64]{Key: base + int64(i), Val: v64(base)}
		}
		want := applyBatchModel(model, ops)
		got := h.ApplyBatch(ops)
		for i := range got {
			if got[i].Outcome != want[i] {
				t.Fatalf("batch at %d, op %d: outcome %v want %v", base, i, got[i].Outcome, want[i])
			}
		}
	}
	checkMapMatchesModel(t, m, model, 512)
	s := m.Stats()
	if s.FingerHits == 0 {
		t.Fatalf("no finger hits across 32 ascending handle batches: %+v", s)
	}
	mustCheck(t, m)
}
