// Package core implements the concurrent skip vector map of Rodriguez,
// Hassan and Spear, "Exploiting Locality in Scalable Ordered Maps" (ICDCS
// 2021). The skip vector is a skip list whose index and data layers are
// flattened into fixed-capacity vectors ("chunks"), traversed optimistically
// under per-node sequence locks and reclaimed precisely with hazard
// pointers.
//
// Layers are numbered bottom-up: layer 0 is the data layer (key → value);
// layers 1..LayerCount-1 are index layers (key → node one layer down). Every
// layer is a singly linked list of chunked nodes bracketed by head (⊥) and
// tail (⊤) sentinels. A node with no parent entry in the layer above is an
// "orphan": reachable only through its left neighbour's next pointer,
// created by splits and removals, and lazily merged away by later
// operations.
//
// Concurrency follows Listings 2-4 of the paper: readers traverse
// hand-over-hand, snapshotting each node's sequence lock and validating the
// snapshot after every exposure; writers freeze their target nodes on the
// way down (Insert) or lock top-down (Remove) and restart whenever a
// validation fails. All optimistically read fields are atomic cells, so the
// implementation is well-defined under the Go memory model and clean under
// the race detector.
package core

import (
	"fmt"
	"math"
	"sync/atomic"

	"skipvector/internal/telemetry"
	"skipvector/internal/vectormap"
)

// MaxLayers bounds LayerCount. With TargetIndexVectorSize ≥ 2 even 2^64 keys
// need at most 64 index layers; practical configurations use ≤ 8.
const MaxLayers = 32

// ReclaimMode selects the memory-reclamation strategy.
type ReclaimMode int

const (
	// ReclaimHazard runs the full hazard-pointer protocol and recycles
	// retired nodes through a freelist ("HP" variants in the paper).
	ReclaimHazard ReclaimMode = iota + 1
	// ReclaimLeak skips the protocol; unlinked nodes are left for the
	// garbage collector ("Leak" variants in the paper).
	ReclaimLeak
)

func (m ReclaimMode) String() string {
	switch m {
	case ReclaimHazard:
		return "hp"
	case ReclaimLeak:
		return "leak"
	default:
		return fmt.Sprintf("ReclaimMode(%d)", int(m))
	}
}

// Config carries the tunables from Listing 1 and Section V-B. The zero
// value is not valid; start from DefaultConfig.
type Config struct {
	// LayerCount is the total number of layers including the data layer.
	LayerCount int
	// TargetDataVectorSize (T_D) is the expected data-chunk occupancy;
	// chunk capacity is twice this.
	TargetDataVectorSize int
	// TargetIndexVectorSize (T_I) is the expected index-chunk occupancy.
	TargetIndexVectorSize int
	// MergeFactor scales the merge threshold: two adjacent nodes whose
	// combined size is below MergeFactor×targetSize are merged when the
	// right one is an orphan. The paper's default is 1.67.
	MergeFactor float64
	// SortedIndex selects sorted index chunks (binary-searchable). The
	// paper's best performer uses sorted index vectors.
	SortedIndex bool
	// SortedData selects sorted data chunks. The paper's best performer
	// uses unsorted data vectors.
	SortedData bool
	// Reclaim selects hazard-pointer or leaky reclamation.
	Reclaim ReclaimMode
	// Seed seeds the per-operation height RNG streams. A zero seed is
	// replaced with a fixed constant so behaviour is reproducible.
	Seed uint64
	// DisableFinger turns off the per-context search finger (the locality
	// cache that lets an operation skip the top-down descent when its key
	// falls inside the data node the previous operation finished on). The
	// zero value keeps the finger enabled; disabling exists for ablation
	// benchmarks and as an escape hatch.
	DisableFinger bool
	// MetricLabels are constant label name/value pairs attached to every
	// series of the map's metric registry. Nil (the default) leaves series
	// unlabeled. A sharded deployment labels each shard's map (shard="3") so
	// a combined telemetry.View over all shards exports distinct series
	// instead of N colliding copies of each name.
	MetricLabels []string
}

// DefaultConfig returns the paper's general-purpose tuning (Section V-A):
// LayerCount 6, both target sizes 32, merge threshold 1.67×targetSize,
// sorted index chunks over unsorted data chunks, hazard-pointer reclamation.
func DefaultConfig() Config {
	return Config{
		LayerCount:            6,
		TargetDataVectorSize:  32,
		TargetIndexVectorSize: 32,
		MergeFactor:           1.67,
		SortedIndex:           true,
		SortedData:            false,
		Reclaim:               ReclaimHazard,
		Seed:                  0x5eed5eed5eed5eed,
	}
}

// Validate reports whether the configuration is usable.
func (c *Config) Validate() error {
	switch {
	case c.LayerCount < 1 || c.LayerCount > MaxLayers:
		return fmt.Errorf("core: LayerCount %d outside [1,%d]", c.LayerCount, MaxLayers)
	case c.TargetDataVectorSize < 1:
		return fmt.Errorf("core: TargetDataVectorSize %d < 1", c.TargetDataVectorSize)
	case c.TargetIndexVectorSize < 1:
		return fmt.Errorf("core: TargetIndexVectorSize %d < 1", c.TargetIndexVectorSize)
	case c.MergeFactor <= 0 || c.MergeFactor > 2:
		return fmt.Errorf("core: MergeFactor %v outside (0,2]", c.MergeFactor)
	case c.Reclaim != ReclaimHazard && c.Reclaim != ReclaimLeak:
		return fmt.Errorf("core: invalid ReclaimMode %d", c.Reclaim)
	case len(c.MetricLabels)%2 != 0:
		return fmt.Errorf("core: MetricLabels has %d elements; need name/value pairs", len(c.MetricLabels))
	}
	return nil
}

// mergeThreshold computes ⌈factor × target⌉ clamped to chunk capacity, so a
// merge can never overflow the absorbing chunk.
func mergeThreshold(factor float64, target int) int {
	th := int(math.Ceil(factor * float64(target)))
	if th > 2*target {
		th = 2 * target
	}
	if th < 1 {
		th = 1
	}
	return th
}

// Map is a concurrent ordered map from int64 keys to *V values. Keys must
// lie strictly between MinKey and MaxKey (the sentinel values). All methods
// are safe for concurrent use by any number of goroutines.
type Map[V any] struct {
	cfg        Config
	mergeData  int // merge threshold for data-layer nodes
	mergeIndex int // merge threshold for index-layer nodes

	// head is the head node of the topmost layer; heads[l] is the head of
	// layer l. Head and tail nodes are never retired, never orphans, and
	// never change identity, so traversals may start from head without
	// hazard-pointer ceremony.
	head  *node[V]
	heads []*node[V]

	mem    *memory[V]
	ctxs   *ctxPool[V]
	length lengthCounter
	stats  Stats

	// Finger hit/miss counters are striped like the length counter: they
	// are touched once per operation, and a single shared cache line would
	// become a contention point at exactly the thread counts the finger is
	// meant to help.
	fingerHits   lengthCounter
	fingerMisses lengthCounter

	// batchDescSaved counts ApplyBatch groups positioned by walking from the
	// previous group's node instead of a fresh descent (striped for the same
	// reason as the finger counters: one touch per group commit).
	batchDescSaved lengthCounter

	// restartsByOp breaks stats.Restarts down by the operation kind that
	// paid the restart. Always-on like Restarts itself: restarts are a cold
	// path, and the invariant suite wants the identity
	// Restarts == Σ restartsByOp to hold without telemetry enabled.
	restartsByOp [numOpKinds]atomic.Int64

	// reg is this map's metric registry (always built; recording into the
	// gated instruments is off unless telemetry is enabled). descentDepth
	// and freezes are the two instruments hot enough to need gating — one
	// potential observation per operation; the batch histograms sit on the
	// per-call (not per-op) path of ApplyBatch and share the gate.
	reg            *telemetry.Registry
	descentDepth   *telemetry.Histogram
	freezes        *telemetry.Counter
	batchSize      *telemetry.Histogram
	batchGroupSize *telemetry.Histogram
	snapChainLen   *telemetry.Histogram

	// commitHook, when set, observes every effective mutation at its
	// linearization point (commit.go). Read without synchronization on the
	// write paths; must be installed before the map is shared.
	commitHook CommitHook[V]

	// MVCC snapshot state (snapshot.go): the global write epoch, the pinned
	// snapshot registry, and the copy-on-write version store. With no
	// snapshot pinned the only cost any write pays is one load of
	// snaps.count.
	epoch  atomic.Uint64
	snaps  snapRegistry
	vstore versionStore[V]
}

// Key sentinels: user keys must satisfy MinKey < k < MaxKey.
const (
	MinKey = vectormap.NegInf
	MaxKey = vectormap.PosInf
)

// NewMap builds an empty skip vector with the given configuration.
func NewMap[V any](cfg Config) (*Map[V], error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Map[V]{
		cfg:        cfg,
		mergeData:  mergeThreshold(cfg.MergeFactor, cfg.TargetDataVectorSize),
		mergeIndex: mergeThreshold(cfg.MergeFactor, cfg.TargetIndexVectorSize),
	}
	m.mem = newMemory[V](&cfg)
	m.ctxs = newCtxPool[V](m)

	// Build per-layer head/tail sentinels, bottom-up, linking each layer's
	// ⊥ entry down to the head below (Figure 3a).
	m.heads = make([]*node[V], cfg.LayerCount)
	var below *node[V]
	for l := 0; l < cfg.LayerCount; l++ {
		head := m.mem.allocRaw(l)
		tail := m.mem.allocRaw(l)
		if l == 0 {
			head.data.Insert(MinKey, nil)
			tail.data.Insert(MaxKey, nil)
		} else {
			head.index.Insert(MinKey, below)
			tail.index.Insert(MaxKey, nil)
		}
		head.next.Store(tail)
		m.heads[l] = head
		below = head
	}
	m.head = m.heads[cfg.LayerCount-1]
	if m.mem.domain != nil {
		// Epoch-aware reclamation: retired data nodes must outlive every
		// pinned snapshot that can still traverse them. Installed before any
		// node can be retired (see hazard.SetRecycleFilter's contract).
		m.mem.domain.SetRecycleFilter(m.snapshotsPermitRecycle)
	}
	m.initMetrics()
	return m, nil
}

// Config returns a copy of the map's configuration.
func (m *Map[V]) Config() Config { return m.cfg }

// Len returns the number of keys currently in the map. It is maintained
// with a striped counter and is linearizable only in quiescent states.
func (m *Map[V]) Len() int { return int(m.length.load()) }

// checkKey panics on sentinel keys; accepting them would corrupt the
// sentinel structure. This is a programming error, not a runtime condition.
func checkKey(k int64) {
	if k == MinKey || k == MaxKey {
		panic(fmt.Sprintf("core: key %d is reserved as a sentinel", k))
	}
}
