package core

import (
	"os"
	"testing"

	"skipvector/internal/chaos"
)

// seedOverride is the SV_SEED environment override for every chaos stress
// campaign in this package: zero means "use each test's baked-in seed",
// anything else replays the whole suite under that seed. A failure report's
// chaos.Report line prints the effective seed, so a flaky run is reproduced
// with SV_SEED=<printed seed> go test ./internal/core/ -run <test>.
var seedOverride uint64

func TestMain(m *testing.M) {
	seedOverride = chaos.SeedFromEnv(0)
	os.Exit(m.Run())
}

// stressSeed resolves a campaign's seed: the SV_SEED override when set,
// otherwise the test's default.
func stressSeed(def uint64) uint64 {
	if seedOverride != 0 {
		return seedOverride
	}
	return def
}
