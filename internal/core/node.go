package core

import (
	"sync"
	"sync/atomic"

	"skipvector/internal/hazard"
	"skipvector/internal/seqlock"
	"skipvector/internal/vectormap"
)

// node is a skip vector node at any layer. Data-layer nodes (level 0) use
// the data chunk (key → *V); index nodes use the index chunk (key → child
// node one layer down). Exactly one of the two chunks is initialized.
//
// The sequence lock protects both chunks and the next pointer. Optimistic
// readers snapshot the lock, read atomic cells, and validate; writers hold
// the lock. The lock word is never reset when a node is recycled, so its
// sequence number grows monotonically across lifetimes and a validation
// against a stale snapshot from a previous lifetime always fails.
type node[V any] struct {
	lock  seqlock.Lock
	next  atomic.Pointer[node[V]]
	level int32
	data  vectormap.Chunk[V]
	index vectormap.Chunk[node[V]]
}

// isIndex reports whether the node belongs to an index layer.
func (n *node[V]) isIndex() bool { return n.level > 0 }

// size returns the current element count of the active chunk.
func (n *node[V]) size() int {
	if n.isIndex() {
		return n.index.Size()
	}
	return n.data.Size()
}

// minKey returns the smallest key in the node (ok=false when empty).
func (n *node[V]) minKey() (int64, bool) {
	if n.isIndex() {
		return n.index.MinKey()
	}
	return n.data.MinKey()
}

// maxKey returns the largest key in the node (ok=false when empty).
func (n *node[V]) maxKey() (int64, bool) {
	if n.isIndex() {
		return n.index.MaxKey()
	}
	return n.data.MaxKey()
}

// markOrphanPrivate flags an unpublished node as an orphan. The node must
// not be reachable by other goroutines yet: the transient lock acquisition
// cannot block anyone and Abort leaves the sequence number untouched.
func (n *node[V]) markOrphanPrivate() {
	n.lock.Acquire()
	n.lock.SetOrphan(true)
	n.lock.Abort()
}

// memory allocates and recycles nodes. In hazard mode, retired nodes flow
// through the hazard domain's scan into per-layer-class freelists and are
// reused, giving the paper's precise reclamation; in leak mode nodes are
// always freshly allocated and unlinked nodes are left to the collector.
type memory[V any] struct {
	cfg    *Config
	domain *hazard.Domain[node[V]] // nil in leak mode

	mu        sync.Mutex
	freeData  []*node[V]
	freeIndex []*node[V]

	allocs  atomic.Int64
	reuses  atomic.Int64
	retires atomic.Int64
}

func newMemory[V any](cfg *Config) *memory[V] {
	m := &memory[V]{cfg: cfg}
	if cfg.Reclaim == ReclaimHazard {
		m.domain = hazard.NewDomain(m.recycle)
	}
	return m
}

// recycle receives nodes the hazard scan proved unreachable.
func (m *memory[V]) recycle(n *node[V]) {
	m.mu.Lock()
	if n.level == 0 {
		m.freeData = append(m.freeData, n)
	} else {
		m.freeIndex = append(m.freeIndex, n)
	}
	m.mu.Unlock()
}

// allocRaw returns a node for the given layer with an initialized, empty
// chunk. Recycled nodes keep their sequence-lock word (see node docs) but
// have next cleared and their chunk reset.
func (m *memory[V]) allocRaw(level int) *node[V] {
	var n *node[V]
	if m.domain != nil {
		m.mu.Lock()
		if level == 0 {
			if l := len(m.freeData); l > 0 {
				n, m.freeData = m.freeData[l-1], m.freeData[:l-1]
			}
		} else {
			if l := len(m.freeIndex); l > 0 {
				n, m.freeIndex = m.freeIndex[l-1], m.freeIndex[:l-1]
			}
		}
		m.mu.Unlock()
	}
	if n == nil {
		n = &node[V]{}
		m.allocs.Add(1)
	} else {
		m.reuses.Add(1)
		n.next.Store(nil)
		if n.lock.IsOrphan() {
			// Clear the stale orphan flag from the previous lifetime.
			n.lock.Acquire()
			n.lock.SetOrphan(false)
			n.lock.Abort()
		}
	}
	n.level = int32(level)
	if level == 0 {
		n.data.Init(m.cfg.TargetDataVectorSize, m.cfg.SortedData)
	} else {
		n.index.Init(m.cfg.TargetIndexVectorSize, m.cfg.SortedIndex)
	}
	return n
}

// lengthCounter is a striped counter: per-stripe atomics avoid making the
// map size a global contention point on the hot insert/remove paths.
type lengthCounter struct {
	stripes [8]struct {
		v atomic.Int64
		_ [7]int64 // pad to a cache line to avoid false sharing
	}
}

func (c *lengthCounter) add(stripe int, delta int64) {
	c.stripes[stripe&7].v.Add(delta)
}

func (c *lengthCounter) load() int64 {
	var sum int64
	for i := range c.stripes {
		sum += c.stripes[i].v.Load()
	}
	return sum
}

// Stats exposes internal event counters for benchmarks and ablations. All
// counters are updated on rare paths (restarts, splits, merges), never on
// the per-element hot path.
type Stats struct {
	Restarts atomic.Int64 // operation restarts after failed validation
	Splits   atomic.Int64 // chunk splits (capacity or keyed)
	Merges   atomic.Int64 // orphan merges (including empty-orphan unlinks)
}

// StatsSnapshot is a plain-value copy of Stats, extended with the memory
// counters and the search-finger hit/miss totals (which live on the map as
// striped counters, not in Stats, because they are bumped once per
// operation).
type StatsSnapshot struct {
	Restarts     int64
	Splits       int64
	Merges       int64
	Allocs       int64
	Reuses       int64
	Retired      int64 // nodes retired but not yet recycled (bounded garbage)
	FingerHits   int64 // operations that resumed from the search finger
	FingerMisses int64 // finger attempts that fell back to the full descent
}

// Stats returns a snapshot of the map's internal counters.
func (m *Map[V]) Stats() StatsSnapshot {
	s := StatsSnapshot{
		Restarts:     m.stats.Restarts.Load(),
		Splits:       m.stats.Splits.Load(),
		Merges:       m.stats.Merges.Load(),
		Allocs:       m.mem.allocs.Load(),
		Reuses:       m.mem.reuses.Load(),
		FingerHits:   m.fingerHits.load(),
		FingerMisses: m.fingerMisses.load(),
	}
	if m.mem.domain != nil {
		s.Retired = m.mem.domain.RetiredCount()
	}
	return s
}
