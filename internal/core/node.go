package core

import (
	"sync"
	"sync/atomic"

	"skipvector/internal/hazard"
	"skipvector/internal/seqlock"
	"skipvector/internal/vectormap"
)

// node is a skip vector node at any layer. Data-layer nodes (level 0) use
// the data chunk (key → *V); index nodes use the index chunk (key → child
// node one layer down). Exactly one of the two chunks is initialized.
//
// The sequence lock protects both chunks and the next pointer. Optimistic
// readers snapshot the lock, read atomic cells, and validate; writers hold
// the lock. The lock word is never reset when a node is recycled, so its
// sequence number grows monotonically across lifetimes and a validation
// against a stale snapshot from a previous lifetime always fails.
type node[V any] struct {
	lock  seqlock.Lock
	next  atomic.Pointer[node[V]]
	level int32
	data  vectormap.Chunk[V]
	index vectormap.Chunk[node[V]]

	// verEpoch is the snapshot epoch at which the node's current data-layer
	// contents were installed. It is only advanced by a writer holding the
	// node's write lock, and only while at least one snapshot is pinned
	// (m.snaps.active()); with no snapshots pinned writers leave it alone,
	// which is sound because any later snapshot pins an epoch ≥ every epoch
	// ever issued. A snapshot pinned at epoch s treats the node's live
	// contents as visible iff verEpoch ≤ s; otherwise the pre-image record
	// the advancing writer pushed into the version store covers the node.
	// Meaningful only for data-layer nodes; index nodes never consult it.
	verEpoch atomic.Uint64

	// retireEpoch is a conservative upper bound on the epoch of the write
	// that unlinked the node, stamped by retire. The hazard domain's recycle
	// filter keeps a retired data node while any pinned snapshot's epoch is
	// below this bound, so snapshot scans may still traverse its next
	// pointer (see snapshot.go for the reachability argument).
	retireEpoch atomic.Uint64
}

// isIndex reports whether the node belongs to an index layer.
func (n *node[V]) isIndex() bool { return n.level > 0 }

// size returns the current element count of the active chunk.
func (n *node[V]) size() int {
	if n.isIndex() {
		return n.index.Size()
	}
	return n.data.Size()
}

// minKey returns the smallest key in the node (ok=false when empty).
func (n *node[V]) minKey() (int64, bool) {
	if n.isIndex() {
		return n.index.MinKey()
	}
	return n.data.MinKey()
}

// maxKey returns the largest key in the node (ok=false when empty).
func (n *node[V]) maxKey() (int64, bool) {
	if n.isIndex() {
		return n.index.MaxKey()
	}
	return n.data.MaxKey()
}

// markOrphanPrivate flags an unpublished node as an orphan. The node must
// not be reachable by other goroutines yet: the transient lock acquisition
// cannot block anyone and Abort leaves the sequence number untouched.
func (n *node[V]) markOrphanPrivate() {
	n.lock.Acquire()
	n.lock.SetOrphan(true)
	n.lock.Abort()
}

// memory allocates and recycles nodes. In hazard mode, retired nodes flow
// through the hazard domain's scan into per-layer-class freelists and are
// reused, giving the paper's precise reclamation; in leak mode nodes are
// always freshly allocated and unlinked nodes are left to the collector.
type memory[V any] struct {
	cfg    *Config
	domain *hazard.Domain[node[V]] // nil in leak mode

	mu        sync.Mutex
	freeData  []*node[V]
	freeIndex []*node[V]

	allocs  atomic.Int64
	reuses  atomic.Int64
	retires atomic.Int64
}

func newMemory[V any](cfg *Config) *memory[V] {
	m := &memory[V]{cfg: cfg}
	if cfg.Reclaim == ReclaimHazard {
		m.domain = hazard.NewDomain(m.recycle)
	}
	return m
}

// recycle receives nodes the hazard scan proved unreachable.
func (m *memory[V]) recycle(n *node[V]) {
	m.mu.Lock()
	if n.level == 0 {
		m.freeData = append(m.freeData, n)
	} else {
		m.freeIndex = append(m.freeIndex, n)
	}
	m.mu.Unlock()
}

// allocRaw returns a node for the given layer with an initialized, empty
// chunk. Recycled nodes keep their sequence-lock word (see node docs) but
// have next cleared and their chunk reset.
func (m *memory[V]) allocRaw(level int) *node[V] {
	var n *node[V]
	if m.domain != nil {
		m.mu.Lock()
		if level == 0 {
			if l := len(m.freeData); l > 0 {
				n, m.freeData = m.freeData[l-1], m.freeData[:l-1]
			}
		} else {
			if l := len(m.freeIndex); l > 0 {
				n, m.freeIndex = m.freeIndex[l-1], m.freeIndex[:l-1]
			}
		}
		m.mu.Unlock()
	}
	if n == nil {
		n = &node[V]{}
		m.allocs.Add(1)
	} else {
		m.reuses.Add(1)
		n.next.Store(nil)
		n.verEpoch.Store(0)
		n.retireEpoch.Store(0)
		if n.lock.IsOrphan() {
			// Clear the stale orphan flag from the previous lifetime.
			n.lock.Acquire()
			n.lock.SetOrphan(false)
			n.lock.Abort()
		}
	}
	n.level = int32(level)
	if level == 0 {
		n.data.Init(m.cfg.TargetDataVectorSize, m.cfg.SortedData)
	} else {
		n.index.Init(m.cfg.TargetIndexVectorSize, m.cfg.SortedIndex)
	}
	return n
}

// lengthCounter is a striped counter: per-stripe atomics avoid making the
// map size a global contention point on the hot insert/remove paths.
type lengthCounter struct {
	stripes [8]struct {
		v atomic.Int64
		_ [7]int64 // pad to a cache line to avoid false sharing
	}
}

func (c *lengthCounter) add(stripe int, delta int64) {
	c.stripes[stripe&7].v.Add(delta)
}

func (c *lengthCounter) load() int64 {
	var sum int64
	for i := range c.stripes {
		sum += c.stripes[i].v.Load()
	}
	return sum
}

// Stats exposes internal event counters for benchmarks and ablations. All
// counters are updated on rare paths (restarts, splits, merges), never on
// the per-element hot path.
type Stats struct {
	Restarts atomic.Int64 // operation restarts after failed validation
	Splits   atomic.Int64 // chunk splits (capacity or keyed)
	Merges   atomic.Int64 // orphan merges (including empty-orphan unlinks)
	Orphans  atomic.Int64 // orphan nodes created (capacity splits + index-tower removals)
}

// StatsSnapshot is a plain-value copy of Stats, extended with the memory,
// hazard-domain, and search-finger counters. Collection is tear-free in the
// sense that every field is a single atomic load (striped counters are sums
// of atomic loads) taken with no lock held: a snapshot under concurrent
// mutators shows each counter at some instant during the call. Cross-field
// identities that must hold in any snapshot are preserved by load ordering:
// the per-kind restart counters are loaded before the total (writers bump
// the total first), and Reclaimed before RetiredTotal (a node is counted
// retired before it can be counted reclaimed) — so
// RestartsLookup+…+RestartsBatch ≤ Restarts and Reclaimed ≤ RetiredTotal
// hold even mid-churn, with equality of the former at quiescence.
type StatsSnapshot struct {
	Restarts       int64
	RestartsLookup int64
	RestartsInsert int64
	RestartsRemove int64
	RestartsNav    int64 // Floor/Ceiling (and First/Last through them)
	RestartsRange  int64 // range-window establishment
	RestartsBatch  int64 // ApplyBatch group commits
	RestartsSnap   int64 // snapshot point-read descents (snapshot scans cannot restart)
	Splits         int64
	Merges         int64
	Orphans        int64
	Freezes        int64 // successful Insert freezes; recorded only while telemetry is enabled
	Allocs         int64
	Reuses         int64
	Retired        int64 // nodes retired but not yet recycled (bounded garbage)
	RetiredTotal   int64 // monotonic Retire calls into the hazard domain
	Reclaimed      int64 // nodes a scan proved unreachable and recycled
	Scans          int64 // hazard reclamation scans
	RetireHWM      int64 // longest retired list any handle reached (telemetry-gated)
	Handles        int64 // hazard handles registered with the domain
	FingerHits     int64 // operations that resumed from the search finger
	FingerMisses   int64 // finger attempts that fell back to the full descent

	BatchDescentsSaved int64 // batch groups positioned from the previous group's node, no descent

	SnapshotsPinned   int64 // snapshots acquired (monotonic)
	SnapshotsReleased int64 // snapshots released via Close (monotonic; ≤ SnapshotsPinned)
	SnapshotsActive   int64 // snapshots currently pinned
	SnapshotCow       int64 // pre-image records pushed by copy-on-write writes
	SnapshotCowPruned int64 // pre-image records pruned (≤ SnapshotCow)
	SnapshotRecords   int64 // records resident in the version store (= Cow − Pruned at quiescence)
}

// Stats returns a snapshot of the map's internal counters.
func (m *Map[V]) Stats() StatsSnapshot {
	s := StatsSnapshot{
		// Per-kind restarts load before the total; see the type comment.
		RestartsLookup: m.restartsByOp[opLookup].Load(),
		RestartsInsert: m.restartsByOp[opInsert].Load(),
		RestartsRemove: m.restartsByOp[opRemove].Load(),
		RestartsNav:    m.restartsByOp[opNav].Load(),
		RestartsRange:  m.restartsByOp[opRange].Load(),
		RestartsBatch:  m.restartsByOp[opBatch].Load(),
		RestartsSnap:   m.restartsByOp[opSnap].Load(),
	}
	s.Restarts = m.stats.Restarts.Load()
	s.Splits = m.stats.Splits.Load()
	s.Merges = m.stats.Merges.Load()
	s.Orphans = m.stats.Orphans.Load()
	s.Freezes = m.freezes.Load()
	s.Allocs = m.mem.allocs.Load()
	s.Reuses = m.mem.reuses.Load()
	s.FingerHits = m.fingerHits.load()
	s.FingerMisses = m.fingerMisses.load()
	s.BatchDescentsSaved = m.batchDescSaved.load()
	// Released and Pruned load before Pinned and Cow respectively (a release
	// is counted only after its pin; a prune only after its push), so
	// Released ≤ Pinned and Pruned ≤ Cow hold in any snapshot.
	s.SnapshotsReleased = m.snaps.releasedTotal.Load()
	s.SnapshotsPinned = m.snaps.pinnedTotal.Load()
	s.SnapshotsActive = m.snaps.count.Load()
	s.SnapshotCowPruned = m.vstore.pruned.Load()
	s.SnapshotCow = m.vstore.pushed.Load()
	s.SnapshotRecords = int64(m.vstore.resident())
	if d := m.mem.domain; d != nil {
		// Reclaimed before RetiredTotal; see the type comment.
		s.Reclaimed = d.RecycledCount()
		s.RetiredTotal = d.RetiredTotal()
		s.Retired = d.RetiredCount()
		s.Scans = d.Scans()
		s.RetireHWM = d.RetireHWM()
		s.Handles = int64(d.Handles())
	}
	return s
}
