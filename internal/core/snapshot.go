package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"skipvector/internal/chaos"
)

// This file implements MVCC snapshots: Map.Snapshot() pins a point-in-time
// view that supports Get/Contains/Range/Cursor without ever blocking writers
// and — for scans — without ever restarting, no matter how much churn the
// live structure sees. The design is copy-on-write at chunk granularity:
//
//   - A global epoch counter orders writes against snapshot acquisitions.
//     While at least one snapshot is pinned, every data-layer write advances
//     the epoch under its node's write lock; that Add is the write's
//     linearization point relative to snapshots, because the held lock
//     already fences every optimistic reader of the node.
//
//   - Each data node remembers verEpoch, the epoch at which its current
//     contents were installed. Before the first mutation of a write that
//     advanced the epoch to e, the writer publishes the node's pre-image
//     (its full live content) into the version store as a record visible on
//     the epoch interval [verEpoch, e), then stamps verEpoch = e. With no
//     snapshots pinned, writers skip all of this: a later snapshot pins an
//     epoch ≥ every epoch ever issued, so un-stamped nodes are trivially
//     visible to it.
//
//   - The pin protocol closes the writer/snapshot race without making
//     writers wait: Snapshot raises snaps.count before reading the epoch,
//     and a writer consults snaps.count from inside its locked section. In
//     the sequentially consistent total order over those two atomics, a
//     writer that saw count == 0 precedes the pin's epoch read, so the pin's
//     epoch covers the write and no pre-image was needed; a writer that saw
//     count > 0 published the pre-image any pinned snapshot could require.
//
//   - Snapshot point reads ride the ordinary hazard-protected descent (they
//     may restart, charged to opSnap); if the landing node's verEpoch is ≤
//     the pinned epoch its live content answers, otherwise the version store
//     does. The store, not the node, is consulted for misses because
//     ownership of a key can move both left (splits) and right (min
//     removals) of where the current routing lands.
//
//   - Snapshot scans walk the data layer hand-over-hand with no hazard
//     pointers and no restarts: a torn node read retries the same node, and
//     unlinked nodes remain safe to traverse because retirement is
//     epoch-aware — the hazard domain's recycle filter refuses to recycle a
//     data node while any pinned snapshot's epoch is below the node's
//     retireEpoch. Any stale node a post-pin walker can reach was unlinked
//     after the pin (unlink happens under locks the walker's validated reads
//     respect, and stale next pointers only lead to nodes that were in the
//     list at unlink time), so its retireEpoch exceeds the pinned epoch and
//     the filter keeps it. Such nodes contribute nothing live to the scan —
//     the write that unlinked them also advanced their verEpoch past the
//     pinned epoch — and their content at the pinned epoch is covered by
//     version-store records.

// opSnap restarts are charged by snapshot point reads (descent retries).
// Snapshot scans never restart by construction; they have no restart path.

// verRecord is one copy-on-write pre-image: the full (sentinel-free,
// ascending) content a data node held on the epoch interval
// [installed, superseded). Records are immutable once inserted.
type verRecord[V any] struct {
	installed  uint64
	superseded uint64
	keys       []int64
	vals       []*V
}

func (r *verRecord[V]) minKey() int64 { return r.keys[0] }
func (r *verRecord[V]) maxKey() int64 { return r.keys[len(r.keys)-1] }

// visibleAt reports whether the record is the version a snapshot pinned at
// epoch s must read.
func (r *verRecord[V]) visibleAt(s uint64) bool {
	return r.installed <= s && s < r.superseded
}

// versionStore holds every published pre-image record, ordered by
// (minKey, installed). The key invariant (proved by the unique-owner
// argument in DESIGN.md §9): records visible at any single epoch have
// pairwise disjoint key ranges, so a point lookup needs only the visible
// record with the largest minKey ≤ k, and a scan can concatenate visible
// records in minKey order.
type versionStore[V any] struct {
	mu   sync.RWMutex
	recs []*verRecord[V]

	// pushed/pruned are monotonic counters; resident records == pushed −
	// pruned is the mass-conservation identity the invariant suite checks.
	pushed atomic.Int64
	pruned atomic.Int64
}

// insert adds a record, keeping the (minKey, installed) order. It returns
// the resident record count after the insert (for the chain-length metric).
func (vs *versionStore[V]) insert(r *verRecord[V]) int {
	vs.mu.Lock()
	i := sort.Search(len(vs.recs), func(i int) bool {
		ri := vs.recs[i]
		return ri.minKey() > r.minKey() ||
			(ri.minKey() == r.minKey() && ri.installed >= r.installed)
	})
	vs.recs = append(vs.recs, nil)
	copy(vs.recs[i+1:], vs.recs[i:])
	vs.recs[i] = r
	n := len(vs.recs)
	vs.mu.Unlock()
	vs.pushed.Add(1)
	return n
}

// get resolves key k at epoch s from the store. Scanning left from the
// insertion point for k, the first record visible at s is the unique
// visible record whose range can contain k.
func (vs *versionStore[V]) get(s uint64, k int64) (*V, bool) {
	vs.mu.RLock()
	defer vs.mu.RUnlock()
	i := sort.Search(len(vs.recs), func(i int) bool { return vs.recs[i].minKey() > k })
	for i--; i >= 0; i-- {
		r := vs.recs[i]
		if !r.visibleAt(s) {
			continue
		}
		if r.maxKey() < k {
			return nil, false
		}
		j := sort.Search(len(r.keys), func(j int) bool { return r.keys[j] >= k })
		if j < len(r.keys) && r.keys[j] == k {
			return r.vals[j], true
		}
		return nil, false
	}
	return nil, false
}

// collect appends (into out, reused) the records visible at s whose key
// ranges intersect [lo, hi], in minKey order. The returned records are
// immutable and safe to read after the lock is dropped.
func (vs *versionStore[V]) collect(s uint64, lo, hi int64, out []*verRecord[V]) []*verRecord[V] {
	out = out[:0]
	vs.mu.RLock()
	for _, r := range vs.recs {
		if r.minKey() > hi {
			break
		}
		if r.maxKey() >= lo && r.visibleAt(s) {
			out = append(out, r)
		}
	}
	vs.mu.RUnlock()
	return out
}

// resident returns the number of records currently in the store.
func (vs *versionStore[V]) resident() int {
	vs.mu.RLock()
	n := len(vs.recs)
	vs.mu.RUnlock()
	return n
}

// prune drops every record no pinned snapshot can see. A record is garbage
// once its superseded epoch is ≤ the minimum pinned epoch (new pins always
// acquire an epoch ≥ every issued epoch, so they can never need it either).
// Returns the number of records dropped.
func (vs *versionStore[V]) prune(minPinned uint64, anyPinned bool) int {
	vs.mu.Lock()
	kept := vs.recs[:0]
	for _, r := range vs.recs {
		if !anyPinned || r.superseded <= minPinned {
			continue
		}
		kept = append(kept, r)
	}
	dropped := len(vs.recs) - len(kept)
	for i := len(kept); i < len(vs.recs); i++ {
		vs.recs[i] = nil
	}
	vs.recs = kept
	vs.mu.Unlock()
	vs.pruned.Add(int64(dropped))
	return dropped
}

// snapRegistry tracks pinned snapshots. count is the only field touched by
// writers' fast path (one shared read-only load per data write when no
// snapshot is pinned); everything else is mutex-protected cold state.
type snapRegistry struct {
	count atomic.Int64 // pinned snapshots, readable without the mutex

	mu     sync.Mutex
	pinned map[uint64]int // pinned epoch → snapshots pinned at it

	pinnedTotal   atomic.Int64
	releasedTotal atomic.Int64
	leaked        atomic.Int64 // snapshots reclaimed by a finalizer, never Closed
}

// minPinnedLocked returns the smallest pinned epoch. Caller holds mu.
func (r *snapRegistry) minPinnedLocked() (uint64, bool) {
	var mp uint64
	any := false
	for e := range r.pinned {
		if !any || e < mp {
			mp, any = e, true
		}
	}
	return mp, any
}

// Snapshot is an immutable point-in-time view of the map, pinned at a single
// epoch. It is safe for concurrent use by multiple goroutines. Close must be
// called to release the pin: a pinned snapshot retains every pre-image
// record and retired node it might still read. Using a snapshot after Close
// panics; Close itself is idempotent.
type Snapshot[V any] struct {
	m        *Map[V]
	epoch    uint64
	released atomic.Bool
}

// Snapshot pins the map's current state and returns a read-only view of it.
// Acquisition is linearizable and wait-free apart from one mutex-protected
// registry update: the snapshot's state is the map's state at the moment the
// epoch was read, and every write that linearizes later is invisible to it.
func (m *Map[V]) Snapshot() *Snapshot[V] {
	r := &m.snaps
	r.mu.Lock()
	// count must rise before the epoch is read: a writer that observes
	// count == 0 is thereby ordered before this epoch read, so the pinned
	// epoch covers its write and no pre-image is required from it.
	r.count.Add(1)
	s := m.epoch.Load()
	if r.pinned == nil {
		r.pinned = make(map[uint64]int)
	}
	r.pinned[s]++
	r.pinnedTotal.Add(1)
	r.mu.Unlock()
	// A fresh pin has the maximal epoch, so it cannot resurrect records an
	// earlier prune dropped; pruning here only clears leftovers from eras
	// with no pinned snapshots.
	m.pruneVersions()
	return &Snapshot[V]{m: m, epoch: s}
}

// Epoch returns the epoch the snapshot is pinned at (diagnostics/tests).
func (s *Snapshot[V]) Epoch() uint64 { return s.epoch }

// Closed reports whether the snapshot has been released.
func (s *Snapshot[V]) Closed() bool { return s.released.Load() }

// Close releases the pin, allowing pre-image records and retired nodes the
// snapshot was holding to be reclaimed. Idempotent.
func (s *Snapshot[V]) Close() {
	if s.released.Swap(true) {
		return
	}
	r := &s.m.snaps
	r.mu.Lock()
	r.pinned[s.epoch]--
	if r.pinned[s.epoch] <= 0 {
		delete(r.pinned, s.epoch)
	}
	r.count.Add(-1)
	r.releasedTotal.Add(1)
	r.mu.Unlock()
	s.m.pruneVersions()
}

// MarkLeaked records a snapshot that was garbage-collected without Close
// (invoked by the facade's finalizer) and then releases it.
func (s *Snapshot[V]) MarkLeaked() {
	if !s.released.Load() {
		s.m.snaps.leaked.Add(1)
		s.Close()
	}
}

func (s *Snapshot[V]) check() {
	if s.released.Load() {
		panic("core: use of closed snapshot")
	}
}

// pruneVersions drops unreachable pre-image records under the registry's
// current pin set.
func (m *Map[V]) pruneVersions() {
	r := &m.snaps
	r.mu.Lock()
	mp, any := r.minPinnedLocked()
	r.mu.Unlock()
	m.vstore.prune(mp, any)
}

// snapshotsPermitRecycle is the hazard domain's recycle filter: a retired
// data node must outlive every pinned snapshot whose epoch precedes the
// node's unlink, because a snapshot scan may still traverse its next
// pointer. Index nodes are never touched by unprotected snapshot reads and
// are always recyclable.
func (m *Map[V]) snapshotsPermitRecycle(n *node[V]) bool {
	if n.level != 0 {
		return true
	}
	r := &m.snaps
	if r.count.Load() == 0 {
		return true
	}
	r.mu.Lock()
	mp, any := r.minPinnedLocked()
	r.mu.Unlock()
	return !any || mp >= n.retireEpoch.Load()
}

// noteDataWrite is the copy-on-write hook, called by every data-layer write
// with the node's write lock held and no mutation performed yet. With no
// snapshot pinned it is a single shared atomic load. Otherwise it advances
// the epoch (the write's linearization point relative to snapshots),
// publishes the node's pre-image, and stamps the node's verEpoch. It
// returns the epoch it issued (0 when no snapshot was pinned) so callers
// that create sibling nodes inside the same locked section can stamp them.
func (m *Map[V]) noteDataWrite(n *node[V]) uint64 {
	if m.snaps.count.Load() == 0 {
		return 0
	}
	e := m.epoch.Add(1)
	m.publishPreImage(n, e)
	return e
}

// noteDataWrite2 is noteDataWrite for a write that mutates two nodes under
// one pair of held locks (an orphan merge): both pre-images share a single
// linearization epoch.
func (m *Map[V]) noteDataWrite2(a, b *node[V]) uint64 {
	if m.snaps.count.Load() == 0 {
		return 0
	}
	e := m.epoch.Add(1)
	m.publishPreImage(a, e)
	m.publishPreImage(b, e)
	return e
}

// publishPreImage copies n's current live content into the version store as
// the record for epochs [n.verEpoch, e), then installs verEpoch = e. The
// caller holds n's write lock and has not mutated the chunk yet, so the copy
// is exact; snapshot readers cannot observe the intermediate states because
// the held lock blocks their validation until release, by which point both
// the record and the new verEpoch are in place.
func (m *Map[V]) publishPreImage(n *node[V], e uint64) {
	old := n.verEpoch.Load()
	n.verEpoch.Store(e)
	sz := n.data.Size()
	if sz == 0 {
		return
	}
	keys := make([]int64, 0, sz)
	vals := make([]*V, 0, sz)
	n.data.ForEachOrdered(func(k int64, v *V) bool {
		if k != MinKey && k != MaxKey {
			keys = append(keys, k)
			vals = append(vals, v)
		}
		return true
	})
	if len(keys) == 0 {
		return
	}
	// Stretch the publication window (epoch advanced, record not yet
	// visible); safe because the node lock is held throughout.
	chaos.Step(chaos.CoreSnapshot)
	chain := m.vstore.insert(&verRecord[V]{
		installed: old, superseded: e, keys: keys, vals: vals,
	})
	m.snapChainLen.Observe(int(e), int64(chain))
}

// inheritVerEpoch stamps a freshly linked data node created from src's
// content inside src's locked section (splits). The child shares src's
// version: its content was part of src's at every epoch src's current
// verEpoch covers.
func inheritVerEpoch[V any](src, dst *node[V]) {
	if src.level == 0 {
		dst.verEpoch.Store(src.verEpoch.Load())
	}
}

// Get returns the value bound to k at the snapshot's epoch.
func (s *Snapshot[V]) Get(k int64) (*V, bool) {
	s.check()
	checkKey(k)
	m := s.m
	ctx := m.ctxs.get()
	defer m.ctxs.put(ctx)
	for {
		curr, ver, ok := m.descendToData(ctx, k, modeRead)
		if !ok {
			m.restart(ctx, opSnap)
			continue
		}
		ve := curr.verEpoch.Load()
		v, found := curr.data.Get(k)
		if !curr.lock.Validate(ver) {
			m.restart(ctx, opSnap)
			continue
		}
		ctx.dropAll()
		if ve <= s.epoch && found {
			// The node is unchanged since before the pin, and in-chunk
			// membership implies current ownership of k, so this is the
			// pinned version of k.
			return v, true
		}
		// Either the node moved past the pin (its pinned content is in the
		// store) or k is absent from its unchanged owner — in which case k
		// may still exist at the pinned epoch under a node that has since
		// changed (ownership moves across splits/merges/min-removals), which
		// the store also answers.
		return s.m.vstore.get(s.epoch, k)
	}
}

// Contains reports whether k was present at the snapshot's epoch.
func (s *Snapshot[V]) Contains(k int64) bool {
	_, ok := s.Get(k)
	return ok
}

// Range calls fn in ascending key order for every pair with lo ≤ k ≤ hi at
// the snapshot's epoch. fn returning false stops the iteration. The scan
// never restarts and never blocks writers.
func (s *Snapshot[V]) Range(lo, hi int64, fn func(k int64, v *V) bool) {
	s.check()
	checkKey(lo)
	checkKey(hi)
	if lo > hi {
		return
	}
	w := s.newWalker(lo, hi)
	for w.step() {
		for i := range w.outK {
			if !fn(w.outK[i], w.outV[i]) {
				return
			}
		}
	}
}

// Ascend calls fn for every pair in the snapshot in ascending key order.
func (s *Snapshot[V]) Ascend(fn func(k int64, v *V) bool) {
	s.check()
	w := s.newWalker(MinKey+1, MaxKey-1)
	for w.step() {
		for i := range w.outK {
			if !fn(w.outK[i], w.outV[i]) {
				return
			}
		}
	}
}

// Len counts the snapshot's pairs with a full scan.
func (s *Snapshot[V]) Len() int {
	n := 0
	s.Ascend(func(int64, *V) bool { n++; return true })
	return n
}

// Cursor returns an iterator over the snapshot's pairs with keys ≥ start,
// in ascending order. Next is amortized O(1); the cursor holds no locks and
// never restarts. The cursor borrows the snapshot: it must not be used
// after the snapshot is closed.
func (s *Snapshot[V]) Cursor(start int64) *SnapCursor[V] {
	s.check()
	checkKey(start)
	return &SnapCursor[V]{w: s.newWalker(start, MaxKey-1)}
}

// SnapCursor iterates a pinned snapshot. Not safe for concurrent use.
type SnapCursor[V any] struct {
	w *snapWalker[V]
	i int
}

// Next returns the next pair, or ok=false when the scan is exhausted.
func (c *SnapCursor[V]) Next() (int64, *V, bool) {
	c.w.s.check()
	for c.i >= len(c.w.outK) {
		if !c.w.step() {
			return 0, nil, false
		}
		c.i = 0
	}
	k, v := c.w.outK[c.i], c.w.outV[c.i]
	c.i++
	return k, v, true
}

// snapWalker is the restart-free scan engine shared by Range, Ascend and
// SnapCursor. It walks the data layer hand-over-hand; for every visited node
// whose live content is visible at the pinned epoch it merges that content
// with the version-store records covering the same key window, emitting each
// key exactly once in ascending order. Nodes whose content moved past the
// pin contribute nothing live — the records that cover them are flushed as
// later windows open (or at the tail).
type snapWalker[V any] struct {
	s        *Snapshot[V]
	n        *node[V]
	pos      int64 // next key to emit is ≥ pos
	hi       int64 // inclusive upper bound of the scan
	finished bool

	// scratch reused across node visits
	liveK []int64
	liveV []*V
	recs  []*verRecord[V]
	next  *node[V]
	qual  bool

	// output of the last successful step
	outK []int64
	outV []*V
}

// newWalker seeks the data node owning lo via the ordinary hazard-protected
// descent and positions a walker there. The descent may restart (charged to
// opSnap); everything after it is restart-free. Dropping the hazard pointers
// before walking is safe: any node the walker can reach that is later
// unlinked was unlinked after the pin, so the epoch-aware recycle filter
// keeps it until the snapshot closes (in leak mode the collector does).
func (s *Snapshot[V]) newWalker(lo, hi int64) *snapWalker[V] {
	m := s.m
	ctx := m.ctxs.get()
	var start *node[V]
	for {
		n, _, ok := m.descendToData(ctx, lo, modeRead)
		if !ok {
			m.restart(ctx, opSnap)
			continue
		}
		start = n
		ctx.dropAll()
		break
	}
	m.ctxs.put(ctx)
	return &snapWalker[V]{s: s, n: start, pos: lo, hi: hi}
}

// readNode copies the walker's current node under seqlock validation: its
// sentinel-free live content (only when visible at the pinned epoch), its
// next pointer, and whether it qualified. A torn read retries the same node
// — never the scan.
func (w *snapWalker[V]) readNode() {
	n := w.n
	for {
		if chaos.Fail(chaos.CoreSnapshot) {
			// Simulate a torn read; the retry stays on this node.
			runtime.Gosched()
			continue
		}
		w.liveK, w.liveV = w.liveK[:0], w.liveV[:0]
		ver, ok := n.lock.ReadVersion()
		if !ok {
			runtime.Gosched()
			continue
		}
		qual := n.verEpoch.Load() <= w.s.epoch
		if qual {
			n.data.ForEachOrdered(func(k int64, v *V) bool {
				if k != MinKey && k != MaxKey {
					w.liveK = append(w.liveK, k)
					w.liveV = append(w.liveV, v)
				}
				return true
			})
		}
		w.next = n.next.Load()
		if n.lock.Validate(ver) {
			w.qual = qual
			return
		}
	}
}

// step advances the walk until it has produced at least one pair (in
// outK/outV) or exhausted the scan. It returns false when no output remains.
func (w *snapWalker[V]) step() bool {
	w.outK, w.outV = w.outK[:0], w.outV[:0]
	for !w.finished {
		if w.pos > w.hi {
			w.finished = true
			break
		}
		w.readNode()
		if w.next == nil {
			// Tail sentinel: flush the remaining records and finish.
			w.emitWindow(w.hi, nil, nil)
			w.finished = true
			break
		}
		if w.qual && len(w.liveK) > 0 {
			u := w.liveK[len(w.liveK)-1]
			if u >= w.pos {
				w.emitWindow(u, w.liveK, w.liveV)
			}
		}
		w.n = w.next
		if len(w.outK) > 0 {
			return true
		}
	}
	return len(w.outK) > 0
}

// emitWindow merges the version-store records visible on [pos, u] with the
// live pairs of the current node into outK/outV, in ascending key order,
// then advances pos past the window. Records visible at one epoch have
// disjoint ranges; the only possible duplicate is a record that is the
// pre-image of the very content just read live (pushed between our read and
// this query), and since the copies are identical the live pair wins.
func (w *snapWalker[V]) emitWindow(u int64, liveK []int64, liveV []*V) {
	if u > w.hi {
		u = w.hi
	}
	if u < w.pos {
		return
	}
	w.recs = w.s.m.vstore.collect(w.s.epoch, w.pos, u, w.recs)
	li := 0
	for li < len(liveK) && liveK[li] < w.pos {
		li++
	}
	for _, r := range w.recs {
		for j, k := range r.keys {
			if k < w.pos {
				continue
			}
			if k > u {
				break
			}
			for li < len(liveK) && liveK[li] < k {
				if liveK[li] <= u {
					w.outK = append(w.outK, liveK[li])
					w.outV = append(w.outV, liveV[li])
				}
				li++
			}
			if li < len(liveK) && liveK[li] == k {
				continue // identical duplicate; live copy already emitted next
			}
			w.outK = append(w.outK, k)
			w.outV = append(w.outV, r.vals[j])
		}
	}
	for ; li < len(liveK) && liveK[li] <= u; li++ {
		w.outK = append(w.outK, liveK[li])
		w.outV = append(w.outV, liveV[li])
	}
	w.pos = u + 1
}

// SnapshotDebugString summarizes snapshot-subsystem state for tests.
func (m *Map[V]) SnapshotDebugString() string {
	r := &m.snaps
	r.mu.Lock()
	mp, any := r.minPinnedLocked()
	n := r.count.Load()
	r.mu.Unlock()
	return fmt.Sprintf("snapshots=%d minPinned=%d(any=%t) records=%d epoch=%d",
		n, mp, any, m.vstore.resident(), m.epoch.Load())
}
