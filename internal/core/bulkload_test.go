package core

import (
	"math/rand"
	"sync"
	"testing"
)

func sortedKeys(n int) []int64 {
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = int64(i * 3)
	}
	return keys
}

func TestBulkLoadBasic(t *testing.T) {
	forAllConfigs(t, func(t *testing.T, cfg Config) {
		keys := sortedKeys(1000)
		vals := make([]*int64, len(keys))
		for i, k := range keys {
			vals[i] = v64(k * 10)
		}
		m, err := BulkLoad(cfg, keys, vals)
		if err != nil {
			t.Fatal(err)
		}
		if m.Len() != len(keys) {
			t.Fatalf("Len = %d", m.Len())
		}
		mustCheck(t, m)
		for _, k := range keys {
			v, found := m.Lookup(k)
			if !found || *v != k*10 {
				t.Fatalf("Lookup(%d) = %v,%t", k, v, found)
			}
		}
		if _, found := m.Lookup(1); found {
			t.Fatal("absent key found")
		}
	})
}

func TestBulkLoadEmpty(t *testing.T) {
	m, err := BulkLoad[int64](DefaultConfig(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 0 {
		t.Fatal("empty load not empty")
	}
	mustCheck(t, m)
	if !m.Insert(5, v64(5)) {
		t.Fatal("insert after empty bulk load failed")
	}
}

func TestBulkLoadNilValues(t *testing.T) {
	m, err := BulkLoad[int64](DefaultConfig(), sortedKeys(100), nil)
	if err != nil {
		t.Fatal(err)
	}
	if v, found := m.Lookup(0); !found || v != nil {
		t.Fatalf("Lookup = %v,%t", v, found)
	}
	mustCheck(t, m)
}

func TestBulkLoadRejectsBadInput(t *testing.T) {
	cfg := DefaultConfig()
	if _, err := BulkLoad(cfg, []int64{1, 1}, []*int64{v64(1), v64(1)}); err == nil {
		t.Fatal("duplicate keys accepted")
	}
	if _, err := BulkLoad(cfg, []int64{2, 1}, []*int64{v64(1), v64(1)}); err == nil {
		t.Fatal("descending keys accepted")
	}
	if _, err := BulkLoad(cfg, []int64{MinKey}, []*int64{v64(1)}); err == nil {
		t.Fatal("sentinel key accepted")
	}
	if _, err := BulkLoad(cfg, []int64{1, 2}, []*int64{v64(1)}); err == nil {
		t.Fatal("mismatched vals accepted")
	}
	bad := cfg
	bad.LayerCount = 0
	if _, err := BulkLoad[int64](bad, []int64{1}, nil); err == nil {
		t.Fatal("invalid config accepted")
	}
}

// TestBulkLoadThenMutate verifies the loaded structure behaves identically
// to an incrementally built one under further mutation.
func TestBulkLoadThenMutate(t *testing.T) {
	forAllConfigs(t, func(t *testing.T, cfg Config) {
		keys := sortedKeys(600)
		m, err := BulkLoad[int64](cfg, keys, nil)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(10))
		model := map[int64]bool{}
		for _, k := range keys {
			model[k] = true
		}
		for i := 0; i < 4000; i++ {
			k := int64(rng.Intn(2000))
			if rng.Intn(2) == 0 {
				if m.Insert(k, v64(k)) == model[k] {
					t.Fatalf("op %d: Insert(%d) disagreed with model", i, k)
				}
				model[k] = true
			} else {
				if m.Remove(k) != model[k] {
					t.Fatalf("op %d: Remove(%d) disagreed with model", i, k)
				}
				delete(model, k)
			}
		}
		if m.Len() != len(model) {
			t.Fatalf("Len = %d, model %d", m.Len(), len(model))
		}
		mustCheck(t, m)
	})
}

// TestBulkLoadConcurrentAccess hammers a bulk-loaded map concurrently right
// after construction (no quiescent warm-up).
func TestBulkLoadConcurrentAccess(t *testing.T) {
	cfg := testConfigs()["tiny-chunks"]
	keys := sortedKeys(2000)
	m, err := BulkLoad[int64](cfg, keys, nil)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 2000; i++ {
				k := int64(rng.Intn(6000))
				switch rng.Intn(3) {
				case 0:
					m.Insert(k, v64(k))
				case 1:
					m.Remove(k)
				default:
					m.Lookup(k)
				}
			}
		}(int64(g))
	}
	wg.Wait()
	mustCheck(t, m)
}

func TestBulkLoadChunkPacking(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TargetDataVectorSize = 8
	cfg.TargetIndexVectorSize = 4
	cfg.LayerCount = 4
	m, err := BulkLoad[int64](cfg, sortedKeys(512), nil)
	if err != nil {
		t.Fatal(err)
	}
	counts := m.NodeCount()
	// 512 keys / 8 per node = 64 data nodes (+2 sentinels).
	if counts[0] != 66 {
		t.Fatalf("data layer nodes = %d, want 66", counts[0])
	}
	// 64 refs / 4 per node = 16 index nodes at L1 (+2).
	if counts[1] != 18 {
		t.Fatalf("L1 nodes = %d, want 18", counts[1])
	}
	// 16/4 = 4 at L2 (+2); 4/4 → 1 at top (+2).
	if counts[2] != 6 || counts[3] != 3 {
		t.Fatalf("upper layers = %v", counts)
	}
	mustCheck(t, m)
}

func TestBulkLoadUnsorted(t *testing.T) {
	keys := []int64{50, 10, 30, 20, 40}
	vals := []*int64{v64(5), v64(1), v64(3), v64(2), v64(4)}
	m, err := BulkLoadUnsorted(DefaultConfig(), keys, vals)
	if err != nil {
		t.Fatal(err)
	}
	got := m.Keys()
	want := []int64{10, 20, 30, 40, 50}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("keys = %v", got)
		}
	}
	if v, _ := m.Lookup(30); *v != 3 {
		t.Fatal("value misaligned after sort")
	}
	mustCheck(t, m)
}

func TestBulkLoadOverfullTopLayer(t *testing.T) {
	// Tiny LayerCount forces many orphan nodes in the top layer; the
	// structure must still verify and operate.
	cfg := DefaultConfig()
	cfg.TargetDataVectorSize = 2
	cfg.TargetIndexVectorSize = 2
	cfg.LayerCount = 2
	m, err := BulkLoad[int64](cfg, sortedKeys(400), nil)
	if err != nil {
		t.Fatal(err)
	}
	mustCheck(t, m)
	for _, k := range []int64{0, 300, 1197} {
		if _, found := m.Lookup(k); !found {
			t.Fatalf("Lookup(%d) failed", k)
		}
	}
	// Mutations across the orphan-heavy top layer must keep working.
	for k := int64(0); k < 1200; k += 3 {
		if !m.Remove(k) {
			t.Fatalf("Remove(%d) failed", k)
		}
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d", m.Len())
	}
	mustCheck(t, m)
}
