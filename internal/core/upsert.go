package core

// Upsert adds or overwrites the mapping k→v, returning true when k was newly
// inserted and false when an existing value was overwritten. A fresh insert
// linearizes as Insert does; an overwrite linearizes at the release of the
// owning data node's lock.
func (m *Map[V]) Upsert(k int64, v *V) bool {
	checkKey(k)
	ctx := m.ctxs.get()
	defer m.ctxs.put(ctx)
	return m.upsertWithHeight(ctx, k, v, ctx.randomHeight())
}

// upsertWithHeight is the upsert loop at a caller-chosen tower height (shared
// with ApplyBatch's singleton route, which draws heights at sort time). The
// insert and overwrite attempts alternate until one of them wins: each
// settles the key's presence at its own linearization point, and a mismatch
// (the key appeared or vanished in between) simply takes the other path.
func (m *Map[V]) upsertWithHeight(ctx *opCtx[V], k int64, v *V, height int) bool {
	for {
		if m.insertWithHeight(ctx, k, v, height) {
			return true
		}
		if updated, done := m.setOnce(ctx, k, v); done {
			if updated {
				return false
			}
			continue // k vanished since the failed insert; insert again
		}
		m.restart(ctx, opInsert)
	}
}

// setOnce attempts one in-place overwrite of an existing key: settle on the
// owning data node (finger fast path first), upgrade, and store the new
// payload. done=false requests a restart; (false, true) is a validated
// observation that k is absent.
func (m *Map[V]) setOnce(ctx *opCtx[V], k int64, v *V) (updated, done bool) {
	curr, ver, hit := m.fingerSeek(ctx, k, fingerPoint)
	if !hit {
		var ok bool
		curr, ver, ok = m.descendToData(ctx, k, modeWrite)
		if !ok {
			return false, false
		}
	}
	if !curr.lock.TryUpgrade(ver) {
		return false, false
	}
	ctx.drop(curr)
	// As in removeFromDataLayer: with snapshots pinned, settle presence
	// before publishing the pre-image, because the absence path must leave
	// the node (and its verEpoch) untouched for Abort.
	if m.snaps.count.Load() > 0 {
		if !curr.data.Contains(k) {
			m.recordFinger(ctx, curr, curr.lock.Abort())
			ctx.dropAll()
			return false, true
		}
		m.noteDataWrite(curr)
	}
	if curr.data.Set(k, v) {
		m.logPut(ctx, k, v) // before the release that publishes it (commit.go)
		fver := curr.lock.Release()
		m.recordFinger(ctx, curr, fver)
		ctx.dropAll()
		return true, true
	}
	// curr owns k and does not contain it: a validated absence. Abort keeps
	// earlier readers' snapshots intact (nothing was modified).
	m.recordFinger(ctx, curr, curr.lock.Abort())
	ctx.dropAll()
	return false, true
}
