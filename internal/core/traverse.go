package core

import (
	"unsafe"

	"skipvector/internal/chaos"
	"skipvector/internal/cpuhint"
	"skipvector/internal/seqlock"
)

// prefetchNode hints the first two cache lines of n's struct — the seqlock
// word, next pointer, and both chunks' slice headers — so the header reads
// that follow (ReadVersion, size, the chunk's key-array address) hit cache.
// It only does address arithmetic on the pointer value, never a dereference,
// so it is safe on a speculative, not-yet-validated pointer: a prefetch of a
// recycled node's memory is a wasted hint, not a fault or a data race (the
// race detector does not observe the asm stub).
func prefetchNode[V any](n *node[V]) {
	cpuhint.Prefetch2(unsafe.Pointer(n), unsafe.Add(unsafe.Pointer(n), 64))
}

// prefetchKeys hints the key-array cache lines of n's active chunk. Unlike
// prefetchNode this reads the chunk's slice header, so callers must already
// hold a validated hazard pointer for n (the header write happened-before
// the node's publication, which the validation ordered before these reads).
func prefetchKeys[V any](n *node[V]) {
	if n.isIndex() {
		n.index.PrefetchKeys()
	} else {
		n.data.PrefetchKeys()
	}
}

// traverseMode distinguishes read-only traversals from mutating ones:
// Lookup only unlinks empty orphans, while Insert and Remove additionally
// merge under-full orphans into their predecessors (Listing 2 line 29).
type traverseMode int

const (
	modeRead traverseMode = iota + 1
	modeWrite
)

// traverseRight walks rightward in curr's layer until it reaches the node
// that owns key k: the rightmost node whose minimum key is ≤ k (Listing 2,
// TraverseRight). Along the way it performs lazy maintenance, unlinking
// empty orphans (any mode) and merging under-full orphans (write mode).
//
// On entry the caller holds a hazard pointer for curr and a validated-so-far
// snapshot ver of curr's lock. On success the same holds for the returned
// node. ok=false means a validation failed and the whole operation must
// restart; the caller is responsible for dropping hazard pointers.
func (m *Map[V]) traverseRight(
	ctx *opCtx[V], curr *node[V], ver seqlock.Version, k int64, mode traverseMode,
) (*node[V], seqlock.Version, bool) {
	return m.traverseRightN(ctx, curr, ver, k, mode, -1)
}

// traverseRightN is traverseRight with a hop budget: when budget ≥ 0, the
// walk gives up (ok=false) instead of advancing past budget nodes. A bounded
// walk is how ApplyBatch resumes the next group from the previous group's
// node — adjacent groups usually sit zero or one chunk apart, and when they
// don't, a full descent beats an O(n) rightward crawl. budget < 0 is the
// ordinary unbounded traversal. Orphan merges do not count against the
// budget: each merge removes a node, so they are globally bounded, and
// charging them would make a maintenance backlog look like missing locality.
func (m *Map[V]) traverseRightN(
	ctx *opCtx[V], curr *node[V], ver seqlock.Version, k int64, mode traverseMode, budget int,
) (*node[V], seqlock.Version, bool) {
	for {
		// Stop when curr plausibly owns k: it has elements and its max key
		// is ≥ k. The reads are speculative; if they lied, a later
		// validation catches it.
		if sz := curr.size(); sz != 0 {
			if maxK, ok := curr.maxKey(); ok && k <= maxK {
				return curr, ver, true
			}
		}

		next := curr.next.Load()
		if next == nil {
			// Torn read (only a recycled node has nil next); curr must
			// have changed.
			return nil, 0, false
		}
		// Overlap next's header miss with the hazard publish and the two
		// validations below — by the time ReadVersion demands the line it is
		// (ideally) already in flight. Safe pre-validation; see prefetchNode.
		prefetchNode(next)
		ctx.take(next)
		// Validating curr proves next was still curr's successor when the
		// hazard pointer above became visible, so next is protected.
		if !curr.lock.Validate(ver) {
			return nil, 0, false
		}
		nextVer, ok := next.lock.ReadVersion()
		if !ok {
			return nil, 0, false
		}

		// Lazy maintenance: unlink an empty orphan, or merge an under-full
		// one when we are a mutating operation.
		if nextVer.Orphan() {
			nextSize := next.size()
			if nextSize == 0 || (mode == modeWrite && curr.size()+nextSize < m.mergeLimit(curr)) {
				merged, newVer := m.mergeOrphan(ctx, curr, ver, next, nextVer)
				if !merged {
					return nil, 0, false
				}
				ver = newVer
				continue
			}
		}

		nextMin, hasMin := next.minKey()
		if !hasMin {
			// next is empty but was not merged (e.g. a read-mode pass over
			// a non-orphan mid-state); treat as inconsistent.
			if !next.lock.Validate(nextVer) {
				return nil, 0, false
			}
			return nil, 0, false
		}
		if k < nextMin {
			// k belongs to curr; rule next out and stop.
			if !next.lock.Validate(nextVer) {
				return nil, 0, false
			}
			ctx.drop(next)
			return curr, ver, true
		}

		// Advance: hand over from curr to next.
		if budget == 0 {
			return nil, 0, false
		}
		if budget > 0 {
			budget--
		}
		if !curr.lock.Validate(ver) {
			return nil, 0, false
		}
		ctx.drop(curr)
		curr, ver = next, nextVer
	}
}

// mergeLimit returns the merge threshold for curr's layer class.
func (m *Map[V]) mergeLimit(curr *node[V]) int {
	if curr.isIndex() {
		return m.mergeIndex
	}
	return m.mergeData
}

// mergeOrphan absorbs the orphan next into curr and unlinks it (Listing 2
// lines 30-38). Both locks are taken with tryUpgrade from the validated
// snapshots; any failure aborts without modification and forces a restart.
// On success it returns curr's post-release version so the caller can keep
// traversing from curr.
func (m *Map[V]) mergeOrphan(
	ctx *opCtx[V], curr *node[V], ver seqlock.Version, next *node[V], nextVer seqlock.Version,
) (bool, seqlock.Version) {
	if !curr.lock.TryUpgrade(ver) {
		return false, 0
	}
	if !next.lock.TryUpgrade(nextVer) {
		curr.lock.Abort()
		return false, 0
	}
	// Both nodes are now locked but nothing is absorbed or unlinked yet;
	// stretch the window optimistic readers must detect and restart from.
	chaos.Step(chaos.CoreMerge)
	// Re-check under the locks: the snapshots guaranteed this held at
	// upgrade time, but make the invariant explicit.
	if next.isIndex() != curr.isIndex() {
		panic("core: merging nodes from different layer classes")
	}
	if curr.isIndex() {
		curr.index.AbsorbFrom(&next.index)
	} else {
		// One epoch covers the whole merge: both pre-images (the absorber's
		// and the emptied source's) are published before either chunk moves,
		// so a snapshot pinned before this point reads the pair from the
		// version store and skips both nodes' live content (snapshot.go).
		m.noteDataWrite2(curr, next)
		curr.data.AbsorbFrom(&next.data)
	}
	curr.next.Store(next.next.Load())
	ctx.retire(next)
	next.lock.Release()
	ctx.drop(next)
	newVer := curr.lock.Release()
	m.stats.Merges.Add(1)
	return true, newVer
}

// exchangeDown moves the traversal one layer down through the child pointer
// found in curr (Listing 2, ExchangeDown). The hazard pointer for the child
// is published first and proven valid by re-validating curr; then the
// child's lock is snapshotted and curr validated once more so the snapshot
// is known to belong to a still-reachable child.
func (m *Map[V]) exchangeDown(
	ctx *opCtx[V], curr *node[V], ver seqlock.Version, child *node[V],
) (*node[V], seqlock.Version, bool) {
	ctx.take(child)
	if !curr.lock.Validate(ver) {
		return nil, 0, false
	}
	childVer, ok := child.lock.ReadVersion()
	if !ok {
		return nil, 0, false
	}
	if !curr.lock.Validate(ver) {
		return nil, 0, false
	}
	ctx.drop(curr)
	return child, childVer, true
}

// descendToData performs the read path shared by Lookup and the range
// operations: from the top head, repeatedly traverse right and exchange down
// until the data layer, then traverse right once more. On success the caller
// holds a hazard pointer on the returned data node and a snapshot of its
// lock to validate against.
func (m *Map[V]) descendToData(
	ctx *opCtx[V], k int64, mode traverseMode,
) (*node[V], seqlock.Version, bool) {
	curr := m.head
	ctx.take(curr)
	ver, ok := curr.lock.ReadVersion()
	if !ok {
		return nil, 0, false
	}
	depth := 0
	for curr.isIndex() {
		curr, ver, ok = m.traverseRight(ctx, curr, ver, k, mode)
		if !ok {
			return nil, 0, false
		}
		_, child, found := curr.index.FindLE(k)
		if !found || child == nil {
			// The traversal invariant (minKey ≤ k) says this cannot happen
			// in a consistent snapshot; restart. The speculative FindLE
			// result itself is proven consistent by exchangeDown's first
			// validation of curr.
			return nil, 0, false
		}
		// Hint the child's header across exchangeDown's publish-and-validate
		// dance, then — once the child is validated — the key lines its
		// search will probe, so the three lines stream in parallel instead
		// of serializing as demand misses.
		prefetchNode(child)
		curr, ver, ok = m.exchangeDown(ctx, curr, ver, child)
		if !ok {
			return nil, 0, false
		}
		prefetchKeys(curr)
		depth++
	}
	n, v, ok := m.traverseRight(ctx, curr, ver, k, mode)
	if ok {
		m.descentDepth.Observe(ctx.stripe, int64(depth))
	}
	return n, v, ok
}
