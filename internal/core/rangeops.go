package core

import "skipvector/internal/seqlock"

// Range operations (Section V-B, Figure 8). Because the skip vector is
// lock-based, serializable range operations fall out of two-phase locking:
// the operation locks every data node spanning [lo,hi], applies its
// function, and only then releases. Mutating and read-only range operations
// are both linearizable; concurrent point operations either complete before
// the range takes its locks or are forced to restart and observe its result.

// RangeQuery calls fn for every mapping with lo ≤ key ≤ hi, in ascending key
// order. fn returning false stops the iteration early (locks are still
// released properly). fn must not call back into the map.
func (m *Map[V]) RangeQuery(lo, hi int64, fn func(k int64, v *V) bool) {
	if lo > hi {
		return
	}
	m.lockedRange(lo, hi, false, func(k int64, v *V) (*V, bool) {
		return v, fn(k, v)
	})
}

// RangeUpdate calls fn for every mapping with lo ≤ key ≤ hi in ascending key
// order and replaces each value with fn's return. It returns the number of
// mappings visited. The whole update is a single serializable operation.
func (m *Map[V]) RangeUpdate(lo, hi int64, fn func(k int64, v *V) *V) int {
	if lo > hi {
		return 0
	}
	count := 0
	m.lockedRange(lo, hi, true, func(k int64, v *V) (*V, bool) {
		count++
		return fn(k, v), true
	})
	return count
}

// Ascend iterates every mapping in ascending key order under range locks.
func (m *Map[V]) Ascend(fn func(k int64, v *V) bool) {
	m.RangeQuery(MinKey+1, MaxKey-1, fn)
}

// lockedRange implements both range operations. It descends optimistically
// to the data node owning lo, upgrades to a write lock, and then extends the
// locked window rightward hand-over-hand until the node minima exceed hi.
// All locks are held until the function has been applied everywhere (strict
// two-phase locking); read-only ranges release with Abort so that concurrent
// optimistic readers of untouched nodes stay valid.
func (m *Map[V]) lockedRange(lo, hi int64, mutate bool, fn func(k int64, v *V) (*V, bool)) {
	// Clamp the window to the user key space so sentinel entries (⊥ in the
	// head, ⊤ in the tail) are never exposed to fn.
	if lo <= MinKey {
		lo = MinKey + 1
	}
	if hi >= MaxKey {
		hi = MaxKey - 1
	}
	ctx := m.ctxs.get()
	defer m.ctxs.put(ctx)

	var locked []*node[V]
	for {
		curr, ver, hit := m.fingerSeek(ctx, lo, fingerPoint)
		if !hit {
			var ok bool
			curr, ver, ok = m.descendToData(ctx, lo, modeRead)
			if !ok {
				m.restart(ctx, opRange)
				continue
			}
		}
		if !curr.lock.TryUpgrade(ver) {
			m.restart(ctx, opRange)
			continue
		}
		// From here on locks, not hazard pointers, protect the traversal:
		// a locked node cannot be retired, and its next pointer cannot
		// change, so the next node is reachable and stable once locked too.
		ctx.dropAll()
		locked = append(locked[:0], curr)
		break
	}

	// Growth phase: extend the locked window right while nodes may hold
	// keys ≤ hi. Node minima are strictly increasing along the layer, so
	// the first locked node whose minimum exceeds hi ends the window.
	for {
		last := locked[len(locked)-1]
		next := last.next.Load()
		if next == nil {
			break
		}
		next.lock.Acquire()
		locked = append(locked, next)
		if minK, ok := next.minKey(); ok && minK > hi {
			break
		}
		if next.next.Load() == nil {
			break // tail
		}
	}

	// Apply phase: every element in [lo,hi] is covered by the window. The
	// copy-on-write decision is made once, at the first actual mutation, and
	// one epoch covers every node the window modifies: all locks are held
	// until the end (2PL), so either every modified node's pre-image is
	// published under that single epoch, or none is and the whole range op
	// is ordered before any snapshot pinned mid-window (snapshot.go). An
	// unmodified node is released with its verEpoch untouched either way.
	stopped := false
	var cowEpoch uint64
	cowDecided := false
	logging := mutate && m.commitHook != nil
	rcommits := ctx.batch.commits[:0]
	notePre := func(n *node[V]) {
		if !cowDecided {
			cowDecided = true
			cowEpoch = m.noteDataWrite(n)
			return
		}
		if cowEpoch != 0 {
			m.publishPreImage(n, cowEpoch)
		}
	}
	for _, n := range locked {
		if stopped {
			break
		}
		noted := false
		n.data.ForEachOrdered(func(k int64, v *V) bool {
			if k < lo || k > hi {
				return true
			}
			nv, cont := fn(k, v)
			if mutate && nv != v {
				if !noted {
					noted = true
					notePre(n)
				}
				n.data.Set(k, nv)
				if logging {
					rcommits = append(rcommits, CommitOp[V]{Key: k, Val: nv})
				}
			}
			if !cont {
				stopped = true
				return false
			}
			return true
		})
	}

	// Commit hook: one CommitRange invocation with the whole update set,
	// fired while every window lock is still held — the 2PL span is the
	// operation's linearization point, so no conflicting write can order
	// itself between the hook call and the releases below (commit.go).
	if len(rcommits) > 0 {
		m.commitHook(ctx.walUnit, CommitRange, rcommits)
		clear(rcommits) // don't pin the values past the call
	}
	ctx.batch.commits = rcommits[:0]

	// Shrink phase: release everything. Mutating ranges bump sequence
	// numbers; read-only ranges restore the pre-lock words. The last window
	// node still covering hi becomes the search finger, so a follow-up
	// operation near the range's right edge (the next slice of a segmented
	// scan, say) resumes without a descent.
	var fnode *node[V]
	var fver seqlock.Version
	for _, n := range locked {
		minK, hasMin := n.minKey() // read under the lock, before release
		var ver seqlock.Version
		if mutate {
			ver = n.lock.Release()
		} else {
			ver = n.lock.Abort()
		}
		if hasMin && minK <= hi {
			fnode, fver = n, ver
		}
	}
	m.recordFinger(ctx, fnode, fver)
}
