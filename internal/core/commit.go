package core

import "skipvector/internal/vectormap"

// Commit hooks: the map's seam for write-ahead logging. The hook observes
// every *effective* mutation — inserts that inserted, overwrites, removes
// that removed; failed insert-only puts and absent deletes never fire it —
// with the op already resolved to its final effect (put value or delete), so
// a log built from hook calls replays as a plain upsert/delete stream.
//
// Ordering contract. The hook is invoked while the owning data node's write
// lock is still held, immediately before the release that publishes the
// mutation. Two operations that conflict (touch the same key) serialize on
// that node's lock, so their hook invocations are ordered exactly as their
// linearization points; non-conflicting operations may interleave freely in
// the hook's sink, which is harmless because they commute. A group commit
// (ApplyBatch) fires the hook once per group, under the single lock whose
// release linearizes the whole group; a serializable RangeUpdate fires it
// once with every updated pair, under the full 2PL window.
//
// The hook must be fast and allocation-shy (it runs under a seqlock write
// lock), must not call back into the map, and must not retain the ops slice
// (it is scratch, reused by the next operation on the same context).

// CommitKind classifies a commit-hook invocation.
type CommitKind uint8

const (
	// CommitSingleton is one self-contained point write.
	CommitSingleton CommitKind = iota
	// CommitBatchGroup is one ApplyBatch group commit (atomic as a unit).
	CommitBatchGroup
	// CommitRange is one serializable RangeUpdate's full update set.
	CommitRange
)

// CommitOp is one effective mutation reported to the commit hook.
type CommitOp[V any] struct {
	Key int64
	Val *V   // payload for puts; nil for deletes
	Del bool // Key was removed
}

// CommitHook observes effective writes at their linearization points. unit
// is nonzero when the write belongs to a batch commit unit (ApplyBatchLogged)
// — including batch ops routed through the singleton paths — and zero for
// independent writes.
type CommitHook[V any] func(unit uint64, kind CommitKind, ops []CommitOp[V])

// SetCommitHook installs h as the map's commit hook. It must be installed
// before the map is shared with writers (it is read without synchronization
// on every write path); installing it on a live map is a race.
func (m *Map[V]) SetCommitHook(h CommitHook[V]) { m.commitHook = h }

// ApplyBatchLogged is ApplyBatch with commit-unit framing: every hook call
// made on behalf of this batch — group commits and singleton-routed tall-key
// or min-defer ops alike — carries unit, letting the log frame the batch as
// one atomic unit across crashes.
func (m *Map[V]) ApplyBatchLogged(unit uint64, ops []BatchOp[V]) []BatchResult {
	ctx := m.ctxs.get()
	defer m.ctxs.put(ctx)
	ctx.walUnit = unit
	res := m.applyBatchCtx(ctx, ops)
	ctx.walUnit = 0
	return res
}

// logPut reports one effective put. Caller holds the write lock whose
// release publishes it.
func (m *Map[V]) logPut(ctx *opCtx[V], k int64, v *V) {
	if m.commitHook == nil {
		return
	}
	ctx.commitScratch[0] = CommitOp[V]{Key: k, Val: v}
	m.commitHook(ctx.walUnit, CommitSingleton, ctx.commitScratch[:1])
	ctx.commitScratch[0] = CommitOp[V]{} // don't pin the value past the call
}

// logDel reports one effective delete under the same contract as logPut.
func (m *Map[V]) logDel(ctx *opCtx[V], k int64) {
	if m.commitHook == nil {
		return
	}
	ctx.commitScratch[0] = CommitOp[V]{Key: k, Del: true}
	m.commitHook(ctx.walUnit, CommitSingleton, ctx.commitScratch[:1])
	ctx.commitScratch[0] = CommitOp[V]{}
}

// logBatchGroup reports one group commit's effective ops, in slot order
// (same-key runs keep request order, so replay preserves last-write-wins).
// Caller holds the group's lock.
func (m *Map[V]) logBatchGroup(ctx *opCtx[V], slots []vectormap.SlotOp[V], outs []vectormap.SlotOutcome) {
	if m.commitHook == nil {
		return
	}
	sc := &ctx.batch
	cs := sc.commits[:0]
	for i := range slots {
		switch outs[i] {
		case vectormap.SlotInserted, vectormap.SlotUpdated:
			cs = append(cs, CommitOp[V]{Key: slots[i].Key, Val: slots[i].Val})
		case vectormap.SlotRemoved:
			cs = append(cs, CommitOp[V]{Key: slots[i].Key, Del: true})
		}
	}
	sc.commits = cs
	if len(cs) > 0 {
		m.commitHook(ctx.walUnit, CommitBatchGroup, cs)
	}
}
