package core

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// stressConfigs are the configurations worth hammering concurrently: tiny
// chunks maximize splits/merges, usl/sl exercise degenerate chunking, and
// both reclamation modes run.
func stressConfigs() map[string]Config {
	all := testConfigs()
	return map[string]Config{
		"default":     all["default"],
		"tiny-chunks": all["tiny-chunks"],
		"usl":         all["usl"],
		"sl":          all["sl"],
		"leak":        all["leak"],
	}
}

// TestConcurrentDisjointKeys gives each goroutine a private key range; every
// operation's result is then fully deterministic even under concurrency.
func TestConcurrentDisjointKeys(t *testing.T) {
	for name, cfg := range stressConfigs() {
		t.Run(name, func(t *testing.T) {
			m := newTestMap(t, cfg)
			const (
				goroutines = 8
				perG       = 300
			)
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(base int64) {
					defer wg.Done()
					for i := int64(0); i < perG; i++ {
						k := base + i
						if !m.Insert(k, v64(k)) {
							t.Errorf("Insert(%d) failed", k)
							return
						}
					}
					for i := int64(0); i < perG; i += 2 {
						k := base + i
						if !m.Remove(k) {
							t.Errorf("Remove(%d) failed", k)
							return
						}
					}
					for i := int64(0); i < perG; i++ {
						k := base + i
						v, found := m.Lookup(k)
						want := i%2 == 1
						if found != want {
							t.Errorf("Lookup(%d) = %t, want %t", k, found, want)
							return
						}
						if found && *v != k {
							t.Errorf("Lookup(%d) wrong value %d", k, *v)
							return
						}
					}
				}(int64(g) * 10_000)
			}
			wg.Wait()
			if t.Failed() {
				return
			}
			if want := goroutines * perG / 2; m.Len() != want {
				t.Fatalf("Len = %d, want %d", m.Len(), want)
			}
			mustCheck(t, m)
		})
	}
}

// TestConcurrentSharedKeys hammers a small key space from many goroutines
// and checks the per-key accounting identity: successful inserts minus
// successful removes equals final presence.
func TestConcurrentSharedKeys(t *testing.T) {
	for name, cfg := range stressConfigs() {
		t.Run(name, func(t *testing.T) {
			m := newTestMap(t, cfg)
			const (
				goroutines = 8
				opsPerG    = 1500
				keySpace   = 64
			)
			var inserts, removes [keySpace]atomic.Int64
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for i := 0; i < opsPerG; i++ {
						k := int64(rng.Intn(keySpace))
						switch rng.Intn(3) {
						case 0:
							if m.Insert(k, v64(k)) {
								inserts[k].Add(1)
							}
						case 1:
							if m.Remove(k) {
								removes[k].Add(1)
							}
						case 2:
							if v, found := m.Lookup(k); found && *v != k {
								t.Errorf("Lookup(%d) = %d", k, *v)
								return
							}
						}
					}
				}(int64(g) + 1)
			}
			wg.Wait()
			if t.Failed() {
				return
			}
			mustCheck(t, m)
			total := 0
			for k := 0; k < keySpace; k++ {
				diff := inserts[k].Load() - removes[k].Load()
				if diff != 0 && diff != 1 {
					t.Fatalf("key %d: inserts-removes = %d", k, diff)
				}
				_, present := m.Lookup(int64(k))
				if present != (diff == 1) {
					t.Fatalf("key %d: present=%t but diff=%d", k, present, diff)
				}
				if present {
					total++
				}
			}
			if m.Len() != total {
				t.Fatalf("Len = %d, want %d", m.Len(), total)
			}
		})
	}
}

// TestConcurrentInsertRace has every goroutine insert the same keys; exactly
// one insert per key may succeed.
func TestConcurrentInsertRace(t *testing.T) {
	cfg := testConfigs()["tiny-chunks"]
	m := newTestMap(t, cfg)
	const (
		goroutines = 8
		keys       = 200
	)
	var wins [keys]atomic.Int32
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int64) {
			defer wg.Done()
			for k := int64(0); k < keys; k++ {
				if m.Insert(k, v64(id)) {
					wins[k].Add(1)
				}
			}
		}(int64(g))
	}
	wg.Wait()
	for k := 0; k < keys; k++ {
		if w := wins[k].Load(); w != 1 {
			t.Fatalf("key %d won %d times", k, w)
		}
	}
	if m.Len() != keys {
		t.Fatalf("Len = %d", m.Len())
	}
	mustCheck(t, m)
}

// TestConcurrentRemoveRace pre-fills and lets every goroutine remove the
// same keys; exactly one remove per key may succeed.
func TestConcurrentRemoveRace(t *testing.T) {
	cfg := testConfigs()["tiny-chunks"]
	m := newTestMap(t, cfg)
	const (
		goroutines = 8
		keys       = 200
	)
	for k := int64(0); k < keys; k++ {
		m.Insert(k, v64(k))
	}
	var wins [keys]atomic.Int32
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := int64(0); k < keys; k++ {
				if m.Remove(k) {
					wins[k].Add(1)
				}
			}
		}()
	}
	wg.Wait()
	for k := 0; k < keys; k++ {
		if w := wins[k].Load(); w != 1 {
			t.Fatalf("key %d removed %d times", k, w)
		}
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d", m.Len())
	}
	mustCheck(t, m)
}

// TestConcurrentRangeQueryConsistency runs range queries concurrently with
// point mutations; every query result must be strictly ascending and confined
// to [lo,hi] — a torn traversal would violate one of those.
func TestConcurrentRangeQueryConsistency(t *testing.T) {
	cfg := testConfigs()["tiny-chunks"]
	m := newTestMap(t, cfg)
	const keySpace = 512
	for k := int64(0); k < keySpace; k += 2 {
		m.Insert(k, v64(k))
	}
	var stop atomic.Bool
	var mutators, readers sync.WaitGroup
	for g := 0; g < 4; g++ {
		mutators.Add(1)
		go func(seed int64) {
			defer mutators.Done()
			rng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				k := int64(rng.Intn(keySpace))
				if rng.Intn(2) == 0 {
					m.Insert(k, v64(k))
				} else {
					m.Remove(k)
				}
			}
		}(int64(g) + 11)
	}
	// Range readers.
	for g := 0; g < 3; g++ {
		readers.Add(1)
		go func(seed int64) {
			defer readers.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 150; i++ {
				lo := int64(rng.Intn(keySpace))
				hi := lo + int64(rng.Intn(128))
				prev := int64(-1)
				okScan := true
				m.RangeQuery(lo, hi, func(k int64, v *int64) bool {
					if k < lo || k > hi || k <= prev || v == nil || *v != k {
						okScan = false
						return false
					}
					prev = k
					return true
				})
				if !okScan {
					t.Errorf("inconsistent range scan [%d,%d]", lo, hi)
					return
				}
			}
		}(int64(g) + 101)
	}
	readers.Wait()
	stop.Store(true)
	mutators.Wait()
	mustCheck(t, m)
}

// TestConcurrentRangeUpdateAtomicity: each RangeUpdate adds 1 to every value
// in a window. Concurrent point lookups must never observe a value that is
// impossible (greater than total updates applied to that key's windows).
// After quiescence, each key's value equals its initial value plus the
// number of updates covering it.
func TestConcurrentRangeUpdateAtomicity(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TargetDataVectorSize = 4
	m := newTestMap(t, cfg)
	const keySpace = 256
	for k := int64(0); k < keySpace; k++ {
		m.Insert(k, v64(0))
	}
	var covered [keySpace]atomic.Int64
	var wg sync.WaitGroup
	const updaters = 4
	const updatesPerG = 60
	for g := 0; g < updaters; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < updatesPerG; i++ {
				lo := int64(rng.Intn(keySpace))
				hi := lo + int64(rng.Intn(64))
				if hi >= keySpace {
					hi = keySpace - 1
				}
				m.RangeUpdate(lo, hi, func(k int64, v *int64) *int64 {
					nv := *v + 1
					return &nv
				})
				for k := lo; k <= hi; k++ {
					covered[k].Add(1)
				}
			}
		}(int64(g) + 31)
	}
	wg.Wait()
	mustCheck(t, m)
	for k := int64(0); k < keySpace; k++ {
		v, found := m.Lookup(k)
		if !found {
			t.Fatalf("key %d vanished", k)
		}
		if *v != covered[k].Load() {
			t.Fatalf("key %d: value %d, want %d", k, *v, covered[k].Load())
		}
	}
}

// TestConcurrentChurnWithReclamation drives sustained insert/remove churn in
// hazard mode so nodes are retired, scanned, recycled, and reused while
// readers traverse — the scenario hazard pointers exist for.
func TestConcurrentChurnWithReclamation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TargetDataVectorSize = 2
	cfg.TargetIndexVectorSize = 2
	cfg.LayerCount = 5
	m := newTestMap(t, cfg)
	const keySpace = 128
	var stop atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 4000; i++ {
				k := int64(rng.Intn(keySpace))
				switch rng.Intn(3) {
				case 0:
					m.Insert(k, v64(k))
				case 1:
					m.Remove(k)
				default:
					if v, found := m.Lookup(k); found && *v != k {
						t.Errorf("corrupt value for %d: %d", k, *v)
						return
					}
				}
			}
		}(int64(g) + 77)
	}
	wg.Wait()
	stop.Store(true)
	if t.Failed() {
		return
	}
	mustCheck(t, m)
	if s := m.Stats(); s.Reuses == 0 {
		t.Logf("warning: churn produced no node reuse (stats %+v)", s)
	}
}

// TestConcurrentLookupDuringSplits drives inserts that force splits while
// readers look up keys known to be present; a reader must never miss one.
func TestConcurrentLookupDuringSplits(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TargetDataVectorSize = 2
	cfg.TargetIndexVectorSize = 2
	m := newTestMap(t, cfg)
	const stable = 200
	// Stable keys at even positions; they are never removed.
	for k := int64(0); k < stable; k++ {
		m.Insert(k*10, v64(k*10))
	}
	var wg sync.WaitGroup
	var stop atomic.Bool
	wg.Add(1)
	go func() { // writer: churns keys between the stable ones
		defer wg.Done()
		rng := rand.New(rand.NewSource(13))
		for i := 0; i < 8000; i++ {
			k := int64(rng.Intn(stable*10))*1 + 1 // odd-ish keys, never multiples of 10
			if k%10 == 0 {
				k++
			}
			if rng.Intn(2) == 0 {
				m.Insert(k, v64(k))
			} else {
				m.Remove(k)
			}
		}
		stop.Store(true)
	}()
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				k := int64(rng.Intn(stable)) * 10
				if v, found := m.Lookup(k); !found || *v != k {
					t.Errorf("stable key %d missing or corrupt", k)
					return
				}
			}
		}(int64(r) + 991)
	}
	wg.Wait()
	mustCheck(t, m)
}
