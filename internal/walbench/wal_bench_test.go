package walbench

import (
	"math"

	"skipvector/internal/bench"
	"strings"
	"testing"
	"time"
)

// TestFigWALQuick smoke-checks the durability-cost sweep: every variant/size
// row reports usable throughput, the memory rows carry ratio 1.0, and the
// durable/interval rows clear a loosened version of the
// WALIntervalRatioFloor gate. Quick-scale trials on shared CI storage jitter
// wildly (and per-commit fsync cost is storage-dependent by design), so the
// hard ≥0.5 gate applies to the checked-in paper-scale artifact
// (BENCH_wal.json); here interval rows must only stay above a fraction of it.
func TestFigWALQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s := bench.QuickScale()
	s.Duration = 100 * time.Millisecond
	s.Reps = 1
	tb, err := FigWAL(s)
	if err != nil {
		t.Fatal(err)
	}
	tput := tb.Col("keys/s")
	ratio := tb.Col("vs memory")
	if tput < 0 || ratio < 0 {
		t.Fatalf("wal sweep missing columns: %v", tb.Columns)
	}
	if len(tb.XValues) != 4*len(walBatchSizes) {
		t.Fatalf("wal sweep rows = %d, want %d", len(tb.XValues), 4*len(walBatchSizes))
	}
	for i, label := range tb.XValues {
		kps, r := tb.Cells[i][tput], tb.Cells[i][ratio]
		if kps <= 0 || math.IsNaN(kps) || math.IsInf(kps, 0) {
			t.Fatalf("row %q reports no usable throughput: %v", label, kps)
		}
		switch {
		case strings.HasPrefix(label, "memory/"):
			if r != 1.0 {
				t.Errorf("row %q: memory baseline ratio = %v, want 1.0", label, r)
			}
		case strings.HasPrefix(label, "durable/interval/"):
			if quickFloor := WALIntervalRatioFloor * 0.3; r < quickFloor {
				t.Errorf("row %q: durable/memory = %.3f, below quick-scale floor %.2f (gate %.2f)",
					label, r, quickFloor, WALIntervalRatioFloor)
			}
		default:
			if r <= 0 {
				t.Errorf("row %q reports no ratio: %v", label, r)
			}
		}
	}
}
