// Package walbench holds the durability-cost sweep. It lives outside
// internal/bench because it drives the public durable-map API: internal/bench
// is imported by the root package's own tests, so importing the root package
// from there would cycle.
package walbench

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	sv "skipvector"
	"skipvector/internal/bench"
	"skipvector/internal/workload"
)

// Interval-fsync durability gate. With SyncInterval the log acknowledges
// writes immediately and fsyncs on a background ticker, so the durable map's
// write path adds only the commit-hook encode and an in-memory log append to
// the in-memory ApplyBatch — the fsync is off the critical path. On the
// sequential batch-64 workload (the chunk-grouping sweet spot, one log record
// per chunk run) that overhead must stay under half the total cost:
// WALIntervalRatioFloor gates the durable/interval seq/64 row of the
// paper-scale artifact (BENCH_wal.json) at ≥ 0.5× the in-memory row. A lower
// ratio means the logging path regressed — encode allocations, appendMu
// contention, or fsync leaking back under the commit. The per-commit-fsync
// rows are expected to be storage-bound and are reported to quantify that
// cost, not gated.
const WALIntervalRatioFloor = 0.5

// walBatchSizes mirrors internal/bench's batch-update sweep sizes.
var walBatchSizes = []int{8, 64, 256}

// FigWAL measures what durability costs: sequential batched upserts through
// the in-memory map versus the durable map under each sync policy, at batch
// sizes 8/64/256. Throughput counts keys, not batches; the "vs memory"
// column is the ratio against the in-memory row at the same batch size. The
// durable rows run against the real filesystem in a temp directory — fsync
// latency is the phenomenon under test, so an in-memory filesystem would
// measure nothing.
func FigWAL(s bench.Scale) (*bench.Table, error) {
	keyRange := bench.Pow2(s.SensitivityRangeExp)
	window := keyRange / 64
	if window < 512 {
		window = 512
	}
	t := bench.NewTable(
		fmt.Sprintf("Durability cost: seq batched upserts (keys/s), %d threads, 2^%d keys",
			s.SensitivityThreads, s.SensitivityRangeExp),
		"variant/size", []string{"keys/s", "vs memory"})

	variants := []struct {
		name   string
		policy sv.SyncPolicy
		mem    bool
	}{
		{name: "memory", mem: true},
		{name: "durable/interval", policy: sv.SyncInterval},
		{name: "durable/os", policy: sv.SyncOS},
		{name: "durable/commit", policy: sv.SyncEveryCommit},
	}
	baseline := make(map[int]float64)
	for _, v := range variants {
		for _, size := range walBatchSizes {
			var sum float64
			for rep := 0; rep < s.Reps; rep++ {
				cfg := bench.TrialConfig{
					Threads:   s.SensitivityThreads,
					Duration:  s.Duration,
					KeyRange:  keyRange,
					Mix:       workload.Mix{InsertPct: 100},
					SeqWindow: window,
					Seed:      s.Seed + uint64(rep)*0x9e37,
				}
				r, err := runWALTrial(cfg, size, v.mem, v.policy)
				if err != nil {
					return nil, fmt.Errorf("%s/%d: %w", v.name, size, err)
				}
				sum += r.Throughput
			}
			tput := sum / float64(s.Reps)
			if v.mem {
				baseline[size] = tput
			}
			ratio := 0.0
			if b := baseline[size]; b > 0 {
				ratio = tput / b
			}
			t.AddRow(fmt.Sprintf("%s/%d", v.name, size), []float64{tput, ratio})
		}
	}
	return t, nil
}

// runWALTrial runs one timed trial: cfg.Threads workers repeatedly draw
// batchSize sequential-window keys and commit them through one ApplyBatch
// call, against either the bare in-memory map or a durable map opened on a
// fresh temp directory with the given sync policy.
func runWALTrial(cfg bench.TrialConfig, batchSize int, mem bool, policy sv.SyncPolicy) (bench.TrialResult, error) {
	if err := cfg.Validate(); err != nil {
		return bench.TrialResult{}, err
	}

	var (
		apply   func(ops []sv.BatchOp[int64]) error
		cleanup func()
	)
	if mem {
		m := sv.New[int64]()
		apply = func(ops []sv.BatchOp[int64]) error {
			m.ApplyBatch(ops)
			return nil
		}
		cleanup = func() {}
	} else {
		dir, err := os.MkdirTemp("", "svwal-bench-*")
		if err != nil {
			return bench.TrialResult{}, err
		}
		d, err := sv.OpenDurable[int64](dir, sv.Int64Codec(), sv.WithSyncPolicy(policy))
		if err != nil {
			os.RemoveAll(dir)
			return bench.TrialResult{}, err
		}
		apply = func(ops []sv.BatchOp[int64]) error {
			_, err := d.ApplyBatch(ops)
			return err
		}
		cleanup = func() {
			d.Close()
			os.RemoveAll(dir)
		}
	}
	defer cleanup()

	var (
		stop     atomic.Bool
		start    sync.WaitGroup
		done     sync.WaitGroup
		counts   = make([]int64, cfg.Threads)
		firstErr atomic.Value
	)
	root := workload.NewRNG(cfg.Seed ^ 0x4a1)
	start.Add(1)
	for t := 0; t < cfg.Threads; t++ {
		rng := root.Split()
		keys := workload.NewSeqWindow(rng, cfg.KeyRange, cfg.SeqWindow)
		done.Add(1)
		go func(id int, keys workload.KeyGen) {
			defer done.Done()
			ops := make([]sv.BatchOp[int64], batchSize)
			start.Wait()
			var local int64
			for !stop.Load() {
				for i := range ops {
					k := keys.Next()
					ops[i] = sv.BatchOp[int64]{Key: k, Val: k}
				}
				if err := apply(ops); err != nil {
					firstErr.Store(err)
					return
				}
				local += int64(batchSize)
			}
			counts[id] = local
		}(t, keys)
	}

	begin := time.Now()
	start.Done()
	timer := time.NewTimer(cfg.Duration)
	<-timer.C
	stop.Store(true)
	done.Wait()
	elapsed := time.Since(begin)
	if err, ok := firstErr.Load().(error); ok {
		return bench.TrialResult{}, err
	}

	var total int64
	for _, c := range counts {
		total += c
	}
	return bench.TrialResult{
		Ops:        total,
		Elapsed:    elapsed,
		Throughput: float64(total) / elapsed.Seconds(),
	}, nil
}
