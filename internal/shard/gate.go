package shard

import (
	"runtime"
	"sync/atomic"
	"time"
)

// Writer gate: the quiescence mechanism rebalancing needs. Every write
// operation loads the boundary table and then commits into the map that
// table routes to; a migration that swaps the table must therefore know when
// every write still holding the PREVIOUS table has finished, or an in-flight
// write could land in a source shard after its range was copied out — a lost
// update. The gate is an RCU-flavored, generation-stamped reference count:
//
//   - A writer enters the gate (one striped atomic increment into the slot
//     of the current generation), loads the table, commits, and exits (one
//     striped decrement of the same slot).
//   - The migrator publishes the sealed table, flips the generation, and
//     waits for the retired generation's slot to drain to zero. Writers that
//     entered the retired slot before the flip finish normally and are
//     waited for; writers that race the flip re-check the generation after
//     incrementing and retry into the new slot without touching the table,
//     so a zero-sum observation proves no pre-flip table reference remains.
//
// Readers never enter the gate: a read through a stale table targets a map
// that was authoritative for its keys at some instant inside the read's own
// execution window (sources stop changing at the drain and only the swap
// makes the copies live), so point reads stay linearizable with no gate
// cost. See DESIGN.md §13 for the full argument.
//
// Counters are striped by key across cache-line-padded cells: the gate costs
// a write two uncontended atomic adds and two generation loads, and the
// drain sums the stripes.

// gateStripes is the stripe count of each generation slot; a power of two.
const gateStripes = 32

// padCell is a cache-line-padded atomic counter cell.
type padCell struct {
	n atomic.Int64
	_ [56]byte
}

// stripeOf maps a key to its gate/load stripe: the top bits of a SplitMix
// multiply, so adjacent keys spread across stripes.
func stripeOf(k int64) uint32 {
	return uint32((uint64(k)*0x9e3779b97f4a7c15)>>58) & (gateStripes - 1)
}

// writerGate is the two-generation striped reference count. The zero value
// is ready to use.
type writerGate struct {
	gen   atomic.Uint64
	slots [2][gateStripes]padCell
}

// enter counts the caller into the current generation and returns it. The
// caller must load the boundary table AFTER enter returns and call exit with
// the returned generation when its write completes.
func (g *writerGate) enter(stripe uint32) uint64 {
	for {
		gen := g.gen.Load()
		c := &g.slots[gen&1][stripe]
		c.n.Add(1)
		// Re-check after the increment: if a migration flipped the
		// generation in between, this increment landed in (or raced into)
		// a slot the migrator may already be draining — undo and retry so
		// drained slots only ever count writers that entered pre-flip.
		if g.gen.Load() == gen {
			return gen
		}
		c.n.Add(-1)
	}
}

// exit removes the caller from the generation it entered under.
func (g *writerGate) exit(gen uint64, stripe uint32) {
	g.slots[gen&1][stripe].n.Add(-1)
}

// flipDrain retires the current generation and blocks until every writer
// counted in it has exited: on return, no write that loaded the boundary
// table before the flip is still in flight. Only one drain may run at a
// time (migrations are serialized by the caller); draining the retired slot
// to zero before returning is what makes its reuse two flips later safe.
func (g *writerGate) flipDrain() {
	old := g.gen.Add(1) - 1
	slot := &g.slots[old&1]
	for spins := 0; ; spins++ {
		var sum int64
		for i := range slot {
			sum += slot[i].n.Load()
		}
		if sum == 0 {
			return
		}
		if spins < 128 {
			runtime.Gosched()
		} else {
			time.Sleep(20 * time.Microsecond)
		}
	}
}

// loadStripes is the stripe count of each shard's op counter.
const loadStripes = 8

// shardLoad counts operations routed to one shard, striped by key so the
// always-on accounting does not become a contention point on hot shards.
// One shardLoad per shard lives in each boundary table; a fresh table (every
// publication) starts from zero, so totals read as "ops since this table
// landed" — exactly the window the skew observer wants.
type shardLoad struct {
	stripes [loadStripes]padCell
}

// inc counts one operation on key k.
func (l *shardLoad) inc(k int64) {
	l.stripes[stripeOf(k)&(loadStripes-1)].n.Add(1)
}

// add counts n operations attributed to key k's stripe (batch parts).
func (l *shardLoad) add(k int64, n int64) {
	l.stripes[stripeOf(k)&(loadStripes-1)].n.Add(n)
}

// total sums the stripes.
func (l *shardLoad) total() int64 {
	var sum int64
	for i := range l.stripes {
		sum += l.stripes[i].n.Load()
	}
	return sum
}
