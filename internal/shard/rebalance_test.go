package shard

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// collect returns the map's full content as key→value.
func collect(s *Sharded[int64]) map[int64]int64 {
	out := make(map[int64]int64)
	s.Ascend(func(k int64, v *int64) bool {
		out[k] = *v
		return true
	})
	return out
}

func TestSplitShardBasic(t *testing.T) {
	s := newTest(t, tinyCfg(), []int64{100})
	for k := int64(0); k < 200; k += 3 {
		v := k * 10
		s.Upsert(k, &v)
	}
	before := collect(s)

	rep, err := s.SplitShard(0, 50)
	if err != nil {
		t.Fatalf("SplitShard: %v", err)
	}
	if rep.Aborted || rep.Step != "done" || rep.Kind != "split" {
		t.Fatalf("unexpected report %+v", rep)
	}
	if got := s.Bounds(); len(got) != 2 || got[0] != 50 || got[1] != 100 {
		t.Fatalf("bounds after split: %v", got)
	}
	if s.ShardCount() != 3 {
		t.Fatalf("shard count %d", s.ShardCount())
	}
	// rep.Copied covered exactly shard 0's keys (0,3,...,99 → 34 keys).
	if rep.Copied != 34 {
		t.Fatalf("copied %d keys, want 34", rep.Copied)
	}
	after := collect(s)
	if len(after) != len(before) {
		t.Fatalf("content size changed: %d → %d", len(before), len(after))
	}
	for k, v := range before {
		if after[k] != v {
			t.Fatalf("key %d: %d → %d", k, v, after[k])
		}
	}
	mustCheck(t, s)
	if s.ShardFor(49) != 0 || s.ShardFor(50) != 1 || s.ShardFor(100) != 2 {
		t.Fatalf("routing after split: %d %d %d", s.ShardFor(49), s.ShardFor(50), s.ShardFor(100))
	}
}

func TestMergeShardsBasic(t *testing.T) {
	s := newTest(t, tinyCfg(), []int64{50, 100})
	for k := int64(0); k < 150; k += 2 {
		v := k
		s.Upsert(k, &v)
	}
	before := collect(s)

	rep, err := s.MergeShards(0)
	if err != nil {
		t.Fatalf("MergeShards: %v", err)
	}
	if rep.Aborted || rep.Step != "done" || rep.Kind != "merge" {
		t.Fatalf("unexpected report %+v", rep)
	}
	if got := s.Bounds(); len(got) != 1 || got[0] != 100 {
		t.Fatalf("bounds after merge: %v", got)
	}
	after := collect(s)
	if len(after) != len(before) {
		t.Fatalf("content size changed: %d → %d", len(before), len(after))
	}
	for k, v := range before {
		if after[k] != v {
			t.Fatalf("key %d: %d → %d", k, v, after[k])
		}
	}
	mustCheck(t, s)
}

func TestMigrationInvalidArgs(t *testing.T) {
	s := newTest(t, tinyCfg(), []int64{50})
	cases := []func() error{
		func() error { _, err := s.SplitShard(-1, 10); return err },
		func() error { _, err := s.SplitShard(2, 10); return err },
		func() error { _, err := s.SplitShard(0, 50); return err },  // == highOf(0)
		func() error { _, err := s.SplitShard(1, 50); return err },  // == lowOf(1)
		func() error { _, err := s.SplitShard(0, MinKey); return err },
		func() error { _, err := s.MergeShards(-1); return err },
		func() error { _, err := s.MergeShards(1); return err }, // no right neighbor
	}
	for i, f := range cases {
		if err := f(); err == nil {
			t.Errorf("case %d: invalid migration accepted", i)
		}
	}
	// Valid boundary keys at the extremes of the interval are accepted.
	if _, err := s.SplitShard(0, 49); err != nil {
		t.Fatalf("split at interval edge: %v", err)
	}
	mustCheck(t, s)
}

// TestMigrationReconcileCarriesDelta mutates the migrating range between
// the snapshot pin and the seal — exactly the window whose writes only the
// reconcile diff can carry — and proves all three delta shapes (update,
// insert, delete after the snapshot) land in the destinations.
func TestMigrationReconcileCarriesDelta(t *testing.T) {
	s := newTest(t, tinyCfg(), []int64{100})
	for k := int64(0); k < 100; k += 5 {
		v := k
		s.Upsert(k, &v)
	}
	mutated := false
	s.snapObserver = func(k int64, _ *int64) {
		if mutated {
			return
		}
		mutated = true
		// These run mid-copy: the snapshots are pinned (so the copy won't
		// see them) and the seal is not yet published (so they land in the
		// source). Reconcile must carry all three.
		nv := int64(9999)
		s.Upsert(10, &nv) // changed value → pointer differs from baseline
		iv := int64(7777)
		s.Upsert(13, &iv) // key the snapshot never had
		s.Remove(20)      // key the snapshot did have
	}
	rep, err := s.SplitShard(0, 50)
	s.snapObserver = nil
	if err != nil {
		t.Fatalf("SplitShard: %v", err)
	}
	if !mutated {
		t.Fatal("snapshot observer never ran (empty copy?)")
	}
	if rep.Reconciled < 3 {
		t.Fatalf("reconciled %d fixes, want ≥3", rep.Reconciled)
	}
	if v, ok := s.Lookup(10); !ok || *v != 9999 {
		t.Fatalf("updated key lost: %v %v", v, ok)
	}
	if v, ok := s.Lookup(13); !ok || *v != 7777 {
		t.Fatalf("inserted key lost: %v %v", v, ok)
	}
	if _, ok := s.Lookup(20); ok {
		t.Fatal("deleted key resurrected")
	}
	mustCheck(t, s)
}

// TestSealParksWriters proves the write redirect: a write into the sealed
// range issued during the sealed window must not complete until the
// successor table is published, and must land in the destination.
func TestSealParksWriters(t *testing.T) {
	s := newTest(t, tinyCfg(), []int64{100})
	for k := int64(0); k < 100; k += 10 {
		v := k
		s.Upsert(k, &v)
	}
	wrote := make(chan struct{})
	var sawParked atomic.Bool
	s.testHookSealed = func() {
		// Runs after the drain: the range is frozen. Launch a writer into
		// it and give it time to park; it must not complete while sealed.
		go func() {
			v := int64(4242)
			s.Upsert(42, &v)
			close(wrote)
		}()
		deadline := time.After(200 * time.Millisecond)
		for s.sealWaits.Load() == 0 {
			select {
			case <-wrote:
				t.Error("sealed write completed during the sealed window")
				return
			case <-deadline:
				// The writer may legitimately still be scheduling; the
				// post-publish assertions below still hold either way.
				return
			default:
				time.Sleep(time.Millisecond)
			}
		}
		sawParked.Store(true)
		select {
		case <-wrote:
			t.Error("write completed while parked on the seal")
		default:
		}
	}
	rep, err := s.SplitShard(0, 50)
	s.testHookSealed = nil
	if err != nil {
		t.Fatalf("SplitShard: %v", err)
	}
	if rep.Aborted {
		t.Fatalf("unexpected abort: %+v", rep)
	}
	select {
	case <-wrote:
	case <-time.After(2 * time.Second):
		t.Fatal("parked writer never released after publish")
	}
	if !sawParked.Load() {
		t.Skip("writer goroutine never reached the seal during the window (scheduling)")
	}
	if v, ok := s.Lookup(42); !ok || *v != 4242 {
		t.Fatalf("parked write lost: %v %v", v, ok)
	}
	if s.sealWaits.Load() == 0 {
		t.Fatal("seal wait not counted")
	}
	mustCheck(t, s)
}

// TestHandleRebindAcrossMigration opens a session, splits and merges under
// it, and proves the handle keeps routing correctly — a handle that pinned
// the old table would write into a frozen, unreferenced source map.
func TestHandleRebindAcrossMigration(t *testing.T) {
	s := newTest(t, tinyCfg(), []int64{100})
	h := s.NewHandle()
	defer h.Close()
	for k := int64(0); k < 200; k += 10 {
		v := k
		if !h.Upsert(k, &v) {
			t.Fatalf("Upsert(%d) found existing key", k)
		}
	}
	if _, err := s.SplitShard(0, 50); err != nil {
		t.Fatalf("SplitShard: %v", err)
	}
	// Writes through the stale handle must land in the NEW maps.
	v := int64(1)
	h.Upsert(10, &v)
	if got, ok := s.Lookup(10); !ok || *got != 1 {
		t.Fatalf("handle write after split lost: %v %v", got, ok)
	}
	if got, ok := h.Lookup(110); !ok || *got != 110 {
		t.Fatalf("handle read after split: %v %v", got, ok)
	}
	if _, err := s.MergeShards(1); err != nil {
		t.Fatalf("MergeShards: %v", err)
	}
	v2 := int64(2)
	h.Upsert(60, &v2)
	if got, ok := s.Lookup(60); !ok || *got != 2 {
		t.Fatalf("handle write after merge lost: %v %v", got, ok)
	}
	if k, fv, ok := h.Floor(65); !ok || k != 60 || *fv != 2 {
		t.Fatalf("handle Floor after merge: %d %v %v", k, fv, ok)
	}
	mustCheck(t, s)
}

// TestRebalancePlannerSplitsHotShard drives a skewed load — every op on
// shard 0 — and checks one Rebalance pass splits it at the occupancy
// median.
func TestRebalancePlannerSplitsHotShard(t *testing.T) {
	s := newTest(t, tinyCfg(), []int64{1000, 2000, 3000})
	for k := int64(0); k < 4000; k += 10 {
		v := k
		s.Upsert(k, &v)
	}
	// Fresh window (migration-free so far): hammer shard 0 only.
	for i := 0; i < 3000; i++ {
		s.Lookup(int64(i % 1000))
	}
	cfg := RebalanceConfig{MinOps: 100, HotFactor: 2, MinKeys: 4}
	rep, acted, err := s.Rebalance(cfg)
	if err != nil {
		t.Fatalf("Rebalance: %v", err)
	}
	if !acted || rep.Kind != "split" || rep.Aborted {
		t.Fatalf("planner did not split the hot shard: acted=%t rep=%+v stats=%+v",
			acted, rep, s.LoadStats())
	}
	b := s.Bounds()
	if len(b) != 4 {
		t.Fatalf("bounds after planner split: %v", b)
	}
	// The new split is the hot shard's occupancy median: strictly inside
	// (MinKey, 1000), near 500 for the uniform 100-key population.
	if b[0] <= 0 || b[0] >= 1000 {
		t.Fatalf("split key %d outside hot shard's interval", b[0])
	}
	if b[0] < 300 || b[0] > 700 {
		t.Fatalf("split key %d far from occupancy median ~500", b[0])
	}
	mustCheck(t, s)
}

// TestRebalancePlannerMergesColdPair drives load everywhere except two
// adjacent shards and checks the planner reclaims them.
func TestRebalancePlannerMergesColdPair(t *testing.T) {
	s := newTest(t, tinyCfg(), []int64{100, 200, 300})
	for k := int64(0); k < 400; k += 5 {
		v := k
		s.Upsert(k, &v)
	}
	// Shards 0 and 3 hot (evenly), shards 1 and 2 cold.
	for i := 0; i < 2000; i++ {
		s.Lookup(int64(i % 100))
		s.Lookup(300 + int64(i%100))
	}
	cfg := RebalanceConfig{MinOps: 100, HotFactor: 1000 /* never split */, ColdFactor: 0.5}
	rep, acted, err := s.Rebalance(cfg)
	if err != nil {
		t.Fatalf("Rebalance: %v", err)
	}
	if !acted || rep.Kind != "merge" {
		t.Fatalf("planner did not merge: acted=%t rep=%+v stats=%+v", acted, rep, s.LoadStats())
	}
	if got := s.Bounds(); len(got) != 2 {
		t.Fatalf("bounds after merge: %v", got)
	}
	mustCheck(t, s)
}

func TestRebalanceBelowMinOpsDoesNothing(t *testing.T) {
	s := newTest(t, tinyCfg(), []int64{100})
	put(t, s, 1, 2, 3)
	_, acted, err := s.Rebalance(RebalanceConfig{MinOps: 1 << 30})
	if err != nil || acted {
		t.Fatalf("acted=%t err=%v on a quiet window", acted, err)
	}
}

// TestLoadStatsWindowResets proves the observer window: counters count ops
// since the current table landed and reset at every publication.
func TestLoadStatsWindowResets(t *testing.T) {
	s := newTest(t, tinyCfg(), []int64{100})
	for k := int64(0); k < 200; k += 10 {
		v := k
		s.Upsert(k, &v)
	}
	base := s.LoadStats()
	if base[0].Ops == 0 || base[1].Ops == 0 {
		t.Fatalf("writes not counted: %+v", base)
	}
	if base[0].Keys != 10 || base[1].Keys != 10 {
		t.Fatalf("occupancy wrong: %+v", base)
	}
	if _, err := s.SplitShard(0, 50); err != nil {
		t.Fatalf("SplitShard: %v", err)
	}
	fresh := s.LoadStats()
	if len(fresh) != 3 {
		t.Fatalf("stats arity after split: %+v", fresh)
	}
	for i, st := range fresh {
		if st.Ops != 0 {
			t.Fatalf("shard %d window not reset: %+v", i, fresh)
		}
	}
}

func TestStartStopRebalancer(t *testing.T) {
	s := newTest(t, tinyCfg(), []int64{1000})
	for k := int64(0); k < 1000; k += 5 {
		v := k
		s.Upsert(k, &v)
	}
	cfg := RebalanceConfig{Interval: 2 * time.Millisecond, MinOps: 50, HotFactor: 1.5, MinKeys: 4}
	if err := s.StartRebalancer(cfg); err != nil {
		t.Fatalf("StartRebalancer: %v", err)
	}
	if err := s.StartRebalancer(cfg); err == nil {
		t.Fatal("double StartRebalancer accepted")
	}
	// Skewed load on shard 0; the background observer must split it.
	deadline := time.After(5 * time.Second)
	for s.ShardCount() < 3 {
		for i := 0; i < 500; i++ {
			s.Lookup(int64(i))
		}
		select {
		case <-deadline:
			t.Fatalf("rebalancer never split under skew: stats=%+v", s.LoadStats())
		default:
		}
	}
	s.StopRebalancer()
	s.StopRebalancer() // idempotent
	if s.rebSplits.Load() == 0 {
		t.Fatal("split not counted")
	}
	mustCheck(t, s)
}

// TestRebalanceMetricsExposed checks the new counter families render in the
// combined exposition and move after a migration.
func TestRebalanceMetricsExposed(t *testing.T) {
	s := newTest(t, tinyCfg(), []int64{100})
	for k := int64(0); k < 200; k += 10 {
		v := k
		s.Upsert(k, &v)
	}
	if _, err := s.SplitShard(0, 50); err != nil {
		t.Fatalf("SplitShard: %v", err)
	}
	if _, err := s.MergeShards(0); err != nil {
		t.Fatalf("MergeShards: %v", err)
	}
	var b strings.Builder
	if err := s.WriteMetrics(&b); err != nil {
		t.Fatalf("WriteMetrics: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		"sv_shard_rebalance_splits_total 1",
		"sv_shard_rebalance_merges_total 1",
		"sv_shard_rebalance_aborts_total 0",
		"sv_shard_rebalance_keys_copied_total",
		"sv_shard_rebalance_reconciled_total",
		"sv_shard_rebalance_seal_ns_total",
		"sv_shard_rebalance_seal_waits_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Migration-built shards carry fresh identity labels: the split made
	// shards 2 and 3, the merge made shard 4.
	if !strings.Contains(out, `shard="4"`) {
		t.Error("migration-built shard label missing")
	}
}

// TestMigrationLostUpdateCampaign is the zero-lost-ops proof: workers own
// disjoint key slices and read back every write immediately (owner-keyed
// read-your-writes — any write landing in a frozen source or a swallowed
// delete fails the very next read), while the main goroutine drives
// continuous splits and merges through the full protocol. The final state
// is compared against each worker's own record.
func TestMigrationLostUpdateCampaign(t *testing.T) {
	const (
		workers  = 4
		perSlice = 256
	)
	rounds := 30
	if testing.Short() {
		rounds = 8
	}
	seed := campaignSeed(0x9eba1a)
	s := newTest(t, tinyCfg(), []int64{256, 512, 768})
	var (
		wg   sync.WaitGroup
		stop atomic.Bool
		fail atomic.Value // first worker error, if any
	)
	finals := make([]map[int64]int64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(seed) + int64(w)))
			base := int64(w) * perSlice
			mine := make(map[int64]int64)
			for i := 0; !stop.Load(); i++ {
				k := base + int64(rng.Intn(perSlice))
				switch rng.Intn(4) {
				case 0: // remove + read-your-delete
					_, had := mine[k]
					got := s.Remove(k)
					if got != had {
						fail.Store(fmt.Errorf("worker %d: Remove(%d)=%t, owner state says %t %s", w, k, got, had, seedNote(seed)))
						return
					}
					delete(mine, k)
					if _, ok := s.Lookup(k); ok {
						fail.Store(fmt.Errorf("worker %d: key %d visible after own delete %s", w, k, seedNote(seed)))
						return
					}
				default: // upsert + read-your-write
					v := int64(i)
					_, had := mine[k]
					inserted := s.Upsert(k, &v)
					if inserted == had {
						fail.Store(fmt.Errorf("worker %d: Upsert(%d) inserted=%t, owner state says present=%t %s", w, k, inserted, had, seedNote(seed)))
						return
					}
					mine[k] = v
					got, ok := s.Lookup(k)
					if !ok || *got != v {
						fail.Store(fmt.Errorf("worker %d: lost own write %d=%d (got %v,%t) %s", w, k, v, got, ok, seedNote(seed)))
						return
					}
				}
			}
			finals[w] = mine
		}(w)
	}

	// Migration driver: alternate splits of the currently-largest shard and
	// merges of the first pair, exercising every protocol step under fire.
	rng := rand.New(rand.NewSource(int64(seed) ^ 0x5eed))
	for r := 0; r < rounds; r++ {
		if s.ShardCount() < 6 && rng.Intn(2) == 0 {
			stats := s.LoadStats()
			big, bigKeys := 0, -1
			for i, st := range stats {
				if st.Keys > bigKeys {
					big, bigKeys = i, st.Keys
				}
			}
			t0 := s.tab.Load()
			if key, ok := medianKey(t0.maps[big], t0.lowOf(big), t0.highOf(big)); ok {
				if _, err := s.SplitShard(big, key); err != nil {
					t.Fatalf("round %d SplitShard: %v %s", r, err, seedNote(seed))
				}
			}
		} else if s.ShardCount() > 1 {
			if _, err := s.MergeShards(rng.Intn(s.ShardCount() - 1)); err != nil {
				t.Fatalf("round %d MergeShards: %v %s", r, err, seedNote(seed))
			}
		}
		if fail.Load() != nil {
			break
		}
	}
	stop.Store(true)
	wg.Wait()
	if err := fail.Load(); err != nil {
		t.Fatal(err)
	}

	// Final differential: the map's content is exactly the union of the
	// workers' records — nothing lost, nothing resurrected.
	got := collect(s)
	want := make(map[int64]int64)
	for _, m := range finals {
		for k, v := range m {
			want[k] = v
		}
	}
	if len(got) != len(want) {
		t.Fatalf("final size %d, want %d %s", len(got), len(want), seedNote(seed))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("final key %d = %d, want %d %s", k, got[k], v, seedNote(seed))
		}
	}
	if s.rebSplits.Load()+s.rebMerges.Load() == 0 {
		t.Fatalf("campaign ran no migrations %s", seedNote(seed))
	}
	mustCheck(t, s)
}
