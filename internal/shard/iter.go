package shard

// Stitched ordered iteration. A window [lo, hi] that crosses split keys is
// served shard by shard, left to right: each shard contributes the clamp of
// the window to its own boundary interval, and because shard i's keys are all
// strictly below shard i+1's, concatenating the per-shard segments yields the
// whole window in key order with no merge step.
//
// Each per-shard segment runs under that shard's strict-2PL range protocol
// and is individually linearizable; the stitched whole is NOT one atomic
// operation — a writer can commit into shard i+1 after the segment over shard
// i completed and still be observed. Callers needing an atomic range must
// keep it inside one shard (or use a single-shard map).
//
// The boundary table is reloaded at every segment boundary, so a scan that
// straddles a rebalance swap finishes against the new table: the remaining
// window re-routes to the freshly-migrated shards instead of draining a
// frozen source map. A swap landing mid-segment is harmless — the segment's
// source map holds every key it owned at the drain, and stitched iteration
// makes no cross-segment atomicity promise anyway.

// RangeQuery streams every k→v with lo ≤ k ≤ hi to fn in ascending key
// order, stopping early when fn returns false.
func (s *Sharded[V]) RangeQuery(lo, hi int64, fn func(k int64, v *V) bool) {
	if lo > hi {
		return
	}
	stopped := false
	next := lo
	for next <= hi && !stopped {
		t := s.tab.Load()
		i := t.indexOf(next)
		slo, shi := clamp(t, i, next, hi)
		t.load[i].inc(next)
		t.maps[i].RangeQuery(slo, shi, func(k int64, v *V) bool {
			if !fn(k, v) {
				stopped = true
				return false
			}
			return true
		})
		if i >= len(t.splits) {
			break // last shard: window exhausted
		}
		next = t.splits[i]
	}
}

// RangeUpdate applies fn to every k→v with lo ≤ k ≤ hi in ascending key
// order, storing each returned pointer, and reports how many entries were
// visited. Updates are atomic per shard segment, not across the whole window.
// Each segment is a gated write: a concurrent migration drains it, and a
// segment over a sealed shard parks until the successor table lands (the
// seal covers whole shard intervals, so one covers-check decides for the
// segment).
func (s *Sharded[V]) RangeUpdate(lo, hi int64, fn func(k int64, v *V) *V) int {
	if lo > hi {
		return 0
	}
	count := 0
	next := lo
	for next <= hi {
		stripe := stripeOf(next)
		gen := s.gate.enter(stripe)
		t := s.tab.Load()
		if t.sealCovers(next) {
			s.gate.exit(gen, stripe)
			s.sealWaits.Add(1)
			<-t.swapped
			continue
		}
		i := t.indexOf(next)
		slo, shi := clamp(t, i, next, hi)
		t.load[i].inc(next)
		count += t.maps[i].RangeUpdate(slo, shi, fn)
		s.gate.exit(gen, stripe)
		if i >= len(t.splits) {
			break
		}
		next = t.splits[i]
	}
	return count
}

// Ascend streams the whole map in ascending key order.
func (s *Sharded[V]) Ascend(fn func(k int64, v *V) bool) {
	s.RangeQuery(MinKey+1, MaxKey-1, fn)
}

// clamp intersects [lo, hi] with shard i's boundary interval, returning an
// inverted pair when the intersection is empty.
func clamp[V any](t *table[V], i int, lo, hi int64) (int64, int64) {
	if l := t.lowOf(i); lo < l {
		lo = l
	}
	if i < len(t.splits) && hi >= t.splits[i] {
		hi = t.splits[i] - 1
	}
	return lo, hi
}
