package shard

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"skipvector/internal/chaos"
)

// rebalanceChaos confines injection to the migration's step boundaries:
// with FailOneIn 3 over the 6 chaos.ShardRebalance call sites, different
// seeds abort at different steps; seeds that inject nothing complete.
func rebalanceChaos(seed uint64) chaos.Config {
	return chaos.Config{
		Seed:      seed,
		FailOneIn: 3,
		Sites:     chaos.MaskOf(chaos.ShardRebalance),
	}
}

// TestChaosRebalanceAbortEveryStep sweeps seeds until an injected abort has
// been observed at EVERY migration step — plan, snapshot, copy, seal,
// reconcile, publish — and proves each abort is a perfect rollback: same
// bounds, same content, invariants intact, and the very next migration (no
// chaos) completes. Loop-until-dry beats a fixed seed list: it cannot
// silently stop covering a step when the schedule shifts.
func TestChaosRebalanceAbortEveryStep(t *testing.T) {
	wantSteps := map[string]bool{
		"plan": false, "snapshot": false, "copy": false,
		"seal": false, "reconcile": false, "publish": false,
	}
	base := campaignSeed(0xab027)
	remaining := len(wantSteps)
	const maxSeeds = 4096
	for i := 0; i < maxSeeds && remaining > 0; i++ {
		seed := base + uint64(i)*0x9e37
		s := newTest(t, tinyCfg(), []int64{100})
		for k := int64(0); k < 200; k += 7 {
			v := k * 3
			s.Upsert(k, &v)
		}
		boundsBefore := s.Bounds()
		contentBefore := collect(s)

		chaos.Enable(rebalanceChaos(seed))
		rep, err := s.SplitShard(0, 50)
		chaosRep := chaos.Disable()
		if err != nil {
			t.Fatalf("seed %#x: SplitShard error %v %s", seed, err, seedNote(seed))
		}
		if !rep.Aborted {
			continue // this seed's schedule injected nothing
		}
		if chaosRep.Fails() == 0 {
			t.Fatalf("seed %#x: abort reported with no injected failure %s", seed, seedNote(seed))
		}
		seen, known := wantSteps[rep.Step]
		if !known {
			t.Fatalf("seed %#x: abort at unknown step %q %s", seed, rep.Step, seedNote(seed))
		}
		if !seen {
			wantSteps[rep.Step] = true
			remaining--
		}

		// Rollback must be perfect regardless of how deep the abort struck.
		if got := s.Bounds(); !reflect.DeepEqual(got, boundsBefore) {
			t.Fatalf("seed %#x: abort at %q changed bounds %v→%v %s", seed, rep.Step, boundsBefore, got, seedNote(seed))
		}
		if got := collect(s); !reflect.DeepEqual(got, contentBefore) {
			t.Fatalf("seed %#x: abort at %q changed content %s", seed, rep.Step, seedNote(seed))
		}
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("seed %#x: abort at %q broke invariants: %v %s", seed, rep.Step, err, seedNote(seed))
		}
		if s.rebAborts.Load() != 1 {
			t.Fatalf("seed %#x: abort count %d %s", seed, s.rebAborts.Load(), seedNote(seed))
		}
		// Writers must not be left parked: a write into the aborted range
		// completes promptly.
		v := int64(1)
		done := make(chan struct{})
		go func() { s.Upsert(42, &v); close(done) }()
		select {
		case <-done:
		case <-time.After(2 * time.Second):
			t.Fatalf("seed %#x: writer stuck after abort at %q %s", seed, rep.Step, seedNote(seed))
		}
		// And the same migration retried without chaos must complete.
		retry, err := s.SplitShard(0, 50)
		if err != nil || retry.Aborted || retry.Step != "done" {
			t.Fatalf("seed %#x: retry after abort at %q: %+v err=%v %s", seed, rep.Step, retry, err, seedNote(seed))
		}
		mustCheck(t, s)
	}
	for step, seen := range wantSteps {
		if !seen {
			t.Errorf("no seed in the sweep aborted at step %q %s", step, seedNote(base))
		}
	}
}

// TestChaosRebalanceCampaignUnderFire runs concurrent owner-keyed
// read-your-writes workers while the driver loops migrations under chaos
// injection — a mix of completed moves and mid-flight aborts at every
// depth. No worker may ever lose a write, whichever way each migration
// ends.
func TestChaosRebalanceCampaignUnderFire(t *testing.T) {
	const (
		workers  = 3
		perSlice = 128
	)
	rounds := 60
	if testing.Short() {
		rounds = 15
	}
	seed := campaignSeed(0xf12e)
	s := newTest(t, tinyCfg(), []int64{128, 256})
	var (
		wg   sync.WaitGroup
		stop atomic.Bool
		fail atomic.Value
	)
	finals := make([]map[int64]int64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(seed) + int64(w)))
			base := int64(w) * perSlice
			mine := make(map[int64]int64)
			for i := 0; !stop.Load(); i++ {
				k := base + int64(rng.Intn(perSlice))
				if rng.Intn(4) == 0 {
					s.Remove(k)
					delete(mine, k)
					if _, ok := s.Lookup(k); ok {
						fail.Store(fmt.Errorf("worker %d: key %d visible after own delete %s", w, k, seedNote(seed)))
						return
					}
				} else {
					v := int64(i)
					s.Upsert(k, &v)
					mine[k] = v
					got, ok := s.Lookup(k)
					if !ok || *got != v {
						fail.Store(fmt.Errorf("worker %d: lost own write %d=%d %s", w, k, v, seedNote(seed)))
						return
					}
				}
			}
			finals[w] = mine
		}(w)
	}

	chaos.Enable(rebalanceChaos(seed))
	rng := rand.New(rand.NewSource(int64(seed)))
	aborted, completed := 0, 0
	for r := 0; r < rounds && fail.Load() == nil; r++ {
		var rep Migration
		var err error
		if s.ShardCount() < 5 && rng.Intn(2) == 0 {
			t0 := s.tab.Load()
			big, bigKeys := 0, -1
			for i := range t0.maps {
				if n := t0.maps[i].Len(); n > bigKeys {
					big, bigKeys = i, n
				}
			}
			key, ok := medianKey(t0.maps[big], t0.lowOf(big), t0.highOf(big))
			if !ok {
				continue
			}
			rep, err = s.SplitShard(big, key)
		} else if s.ShardCount() > 1 {
			rep, err = s.MergeShards(rng.Intn(s.ShardCount() - 1))
		} else {
			continue
		}
		if err != nil {
			chaos.Disable()
			t.Fatalf("round %d: %v %s", r, err, seedNote(seed))
		}
		if rep.Aborted {
			aborted++
		} else {
			completed++
		}
	}
	rep := chaos.Disable()
	stop.Store(true)
	wg.Wait()
	t.Logf("%v; migrations completed=%d aborted=%d", rep, completed, aborted)
	if err := fail.Load(); err != nil {
		t.Fatal(err)
	}
	if completed == 0 || aborted == 0 {
		t.Fatalf("campaign must mix completions (%d) and aborts (%d) %s", completed, aborted, seedNote(seed))
	}

	got := collect(s)
	want := make(map[int64]int64)
	for _, m := range finals {
		for k, v := range m {
			want[k] = v
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("final content diverged: got %d keys, want %d %s", len(got), len(want), seedNote(seed))
	}
	mustCheck(t, s)
}
