package shard

import (
	"fmt"
	"time"

	"skipvector/internal/chaos"
	"skipvector/internal/core"
)

// Online migration: moving a key range between boundary tables while point
// operations keep running. The protocol (DESIGN.md §13):
//
//  1. plan      — validate the boundary move; nothing observable yet.
//  2. build     — fresh destination maps from the stored shard config.
//  3. snapshot  — pin a point-in-time snapshot of every source shard.
//  4. copy      — stream the snapshots into the destinations in routed
//                 ApplyBatch chunks. Concurrent writes keep landing in the
//                 sources; the copy is a (possibly stale) baseline.
//  5. seal      — publish T1: identical routing to the current table T0,
//                 plus a seal over the migrating range. New writes into the
//                 range park on T1's swap channel; then flip-drain the
//                 writer gate, after which no write holding T0 is in
//                 flight. The sources are now frozen inside the range.
//  6. reconcile — diff the frozen sources against the copied baseline and
//                 fix the destinations: upsert keys that changed or
//                 appeared after the snapshots, delete keys that vanished.
//                 The copy shares value pointers with the sources, so
//                 pointer inequality is exactly "changed since snapshot".
//  7. publish   — swap in T2 with the new boundaries and destination maps
//                 spliced over the sources. Closing T1's swap channel
//                 releases the parked writers, which re-route against T2.
//
// chaos.Fail(chaos.ShardRebalance) guards every step boundary: an injected
// failure aborts the migration at that step. Aborts before seal discard
// private state only; aborts after seal republish an unsealed table with
// T0's routing so parked writers resume against the sources — either way no
// operation is lost and the map is exactly as if the migration never ran.
//
// Linearizability across the swap: a write either (a) held T0 and committed
// into a source before the drain — the reconcile diff carries it into the
// destination; (b) parked on the seal and committed into a destination
// after T2 — trivially current; or (c) targeted an unsealed shard, whose
// map is the same object in T0, T1 and T2. A read through any of the three
// tables reaches a map that was authoritative for its key at some instant
// inside the read's own window (sources change only before the drain, and
// only the swap makes destinations reachable), so reads never gate.

// migrateBatchSize is the chunk size of the pre-copy ApplyBatch stream.
const migrateBatchSize = 256

// Migration reports what one boundary move did (or where it stopped).
type Migration struct {
	Kind       string        // "split" or "merge"
	Aborted    bool          // chaos-injected abort; the table is unchanged
	Step       string        // last step reached: plan…publish, or "done"
	Copied     int           // pairs streamed from the pinned snapshots
	Reconciled int           // sealed-window fixes (delta upserts + deletes)
	Sealed     time.Duration // how long the write redirect was in force
	Bounds     []int64       // interior splits after the move
}

// SplitShard splits shard i at key: keys below key stay in a fresh left
// map, keys at or above it move to a fresh right map, and the boundary
// table gains one split. The migration runs online; see the protocol above.
func (s *Sharded[V]) SplitShard(i int, key int64) (Migration, error) {
	s.mig.Lock()
	defer s.mig.Unlock()
	t := s.tab.Load()
	if i < 0 || i >= len(t.maps) {
		return Migration{}, fmt.Errorf("shard: split index %d out of range [0,%d)", i, len(t.maps))
	}
	if len(t.maps)+1 > MaxShards {
		return Migration{}, fmt.Errorf("shard: split would exceed MaxShards %d", MaxShards)
	}
	if lo, hi := t.lowOf(i), t.highOf(i); key <= lo || key >= hi {
		return Migration{}, fmt.Errorf("shard: split key %d not strictly inside shard %d's interval (%d,%d)", key, i, lo, hi)
	}
	m, err := s.migrate(t, i, i, []int64{key}, "split")
	if err == nil && !m.Aborted {
		s.rebSplits.Add(1)
	}
	return m, err
}

// MergeShards merges shards i and i+1 into one fresh map, dropping the
// split between them. The migration runs online; see the protocol above.
func (s *Sharded[V]) MergeShards(i int) (Migration, error) {
	s.mig.Lock()
	defer s.mig.Unlock()
	t := s.tab.Load()
	if i < 0 || i+1 >= len(t.maps) {
		return Migration{}, fmt.Errorf("shard: merge index %d out of range [0,%d)", i, len(t.maps)-1)
	}
	m, err := s.migrate(t, i, i+1, nil, "merge")
	if err == nil && !m.Aborted {
		s.rebMerges.Add(1)
	}
	return m, err
}

// migPair is one copied key→value, retained as the reconcile baseline.
type migPair[V any] struct {
	k int64
	v *V
}

// migrate replaces shards first..last of t with len(newSplits)+1 fresh maps
// partitioned by newSplits, which must lie strictly inside the replaced
// range (lowOf(first), highOf(last)) in ascending order. Caller holds s.mig
// and guarantees t is the current table (only migrations swap tables).
func (s *Sharded[V]) migrate(t *table[V], first, last int, newSplits []int64, kind string) (Migration, error) {
	rep := Migration{Kind: kind, Step: "plan"}
	abort := func() (Migration, error) {
		rep.Aborted = true
		s.rebAborts.Add(1)
		return rep, nil
	}
	if chaos.Fail(chaos.ShardRebalance) {
		return abort()
	}
	lo, hi := t.lowOf(first), t.highOf(last)

	// build: destination maps, one per new interval.
	rep.Step = "build"
	dests := make([]*core.Map[V], len(newSplits)+1)
	for d := range dests {
		m, err := s.newShardMap()
		if err != nil {
			return rep, fmt.Errorf("shard: migration dest %d: %w", d, err)
		}
		dests[d] = m
	}
	// destOf routes a key inside [lo, hi) to its destination index.
	destOf := func(k int64) int {
		d := 0
		for d < len(newSplits) && newSplits[d] <= k {
			d++
		}
		return d
	}

	// snapshot: pin every source before reading anything.
	rep.Step = "snapshot"
	if chaos.Fail(chaos.ShardRebalance) {
		return abort()
	}
	snaps := make([]*core.Snapshot[V], 0, last-first+1)
	defer func() {
		for _, sn := range snaps {
			sn.Close()
		}
	}()
	for i := first; i <= last; i++ {
		snaps = append(snaps, t.maps[i].Snapshot())
	}

	// copy: stream the snapshots into the destinations in routed chunks,
	// retaining every copied pair as the reconcile baseline.
	rep.Step = "copy"
	if chaos.Fail(chaos.ShardRebalance) {
		return abort()
	}
	var baseline []migPair[V]
	buf := make([]core.BatchOp[V], 0, migrateBatchSize)
	bufDest := -1
	flush := func() {
		if len(buf) > 0 {
			dests[bufDest].ApplyBatch(buf)
			buf = buf[:0]
		}
	}
	for _, sn := range snaps {
		sn.Range(lo, hi-1, func(k int64, v *V) bool {
			if s.snapObserver != nil {
				s.snapObserver(k, v)
			}
			baseline = append(baseline, migPair[V]{k, v})
			d := destOf(k)
			if d != bufDest || len(buf) == migrateBatchSize {
				flush()
				bufDest = d
			}
			buf = append(buf, core.BatchOp[V]{Key: k, Val: v})
			return true
		})
	}
	flush()
	rep.Copied = len(baseline)

	// seal: publish T1 (same routing, sealed range) and drain the gate.
	rep.Step = "seal"
	if chaos.Fail(chaos.ShardRebalance) {
		return abort()
	}
	t1 := newTable(t.splits, t.maps, &sealRange{lo: lo, hi: hi})
	sealedAt := time.Now()
	s.publish(t1)
	s.gate.flipDrain()
	if s.testHookSealed != nil {
		s.testHookSealed()
	}
	// unseal republishes T0's routing without the seal, releasing parked
	// writers back onto the sources; used by post-seal aborts.
	unseal := func() {
		s.publish(newTable(t.splits, t.maps, nil))
		rep.Sealed = time.Since(sealedAt)
		s.rebSealNanos.Add(int64(rep.Sealed))
	}

	// reconcile: the sources are frozen inside [lo, hi); diff them against
	// the copied baseline and fix the destinations.
	rep.Step = "reconcile"
	if chaos.Fail(chaos.ShardRebalance) {
		unseal()
		return abort()
	}
	var fixes []core.BatchOp[V]
	bi := 0
	for i := first; i <= last; i++ {
		t.maps[i].RangeQuery(lo, hi-1, func(k int64, v *V) bool {
			for bi < len(baseline) && baseline[bi].k < k {
				// In the baseline, gone from the live source: deleted after
				// the snapshot. Remove it from its destination.
				fixes = append(fixes, core.BatchOp[V]{Key: baseline[bi].k, Del: true})
				bi++
			}
			if bi < len(baseline) && baseline[bi].k == k {
				if baseline[bi].v != v {
					// Same key, different pointer: upserted after the
					// snapshot (copies share pointers with the sources).
					fixes = append(fixes, core.BatchOp[V]{Key: k, Val: v})
				}
				bi++
			} else {
				// Live but never copied: inserted after the snapshot.
				fixes = append(fixes, core.BatchOp[V]{Key: k, Val: v})
			}
			return true
		})
	}
	for ; bi < len(baseline); bi++ {
		fixes = append(fixes, core.BatchOp[V]{Key: baseline[bi].k, Del: true})
	}
	rep.Reconciled = len(fixes)
	// Fixes arrive in ascending key order; apply per destination.
	for flo := 0; flo < len(fixes); {
		d := destOf(fixes[flo].Key)
		fhi := flo + 1
		for fhi < len(fixes) && destOf(fixes[fhi].Key) == d {
			fhi++
		}
		dests[d].ApplyBatch(fixes[flo:fhi])
		flo = fhi
	}

	// publish: splice the destinations over the sources and swap in T2,
	// releasing the parked writers onto the new boundaries.
	rep.Step = "publish"
	if chaos.Fail(chaos.ShardRebalance) {
		unseal()
		return abort()
	}
	splits := make([]int64, 0, len(t.splits)+len(newSplits))
	splits = append(splits, t.splits[:first]...)
	splits = append(splits, newSplits...)
	splits = append(splits, t.splits[last:]...)
	maps := make([]*core.Map[V], 0, len(t.maps)+len(dests)-(last-first+1))
	maps = append(maps, t.maps[:first]...)
	maps = append(maps, dests...)
	maps = append(maps, t.maps[last+1:]...)
	s.publish(newTable(splits, maps, nil))
	rep.Sealed = time.Since(sealedAt)
	s.rebSealNanos.Add(int64(rep.Sealed))
	s.rebCopied.Add(int64(rep.Copied))
	s.rebReconciled.Add(int64(rep.Reconciled))

	rep.Step = "done"
	rep.Bounds = splits
	return rep, nil
}
