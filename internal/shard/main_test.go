package shard

import (
	"os"
	"strconv"
	"testing"

	"skipvector/internal/chaos"
)

// seedOverride is the SV_SEED campaign override, read once in TestMain:
// zero means "use each harness's default seed". Campaign failures log the
// effective seed, so any stress/chaos/lincheck failure in this package
// replays with SV_SEED=<logged value>.
var seedOverride uint64

func TestMain(m *testing.M) {
	seedOverride = chaos.SeedFromEnv(0)
	os.Exit(m.Run())
}

// campaignSeed returns the seed a stress campaign should run with: the
// SV_SEED override when set, otherwise def. Pair with seedNote in failure
// messages.
func campaignSeed(def uint64) uint64 {
	if seedOverride != 0 {
		return seedOverride
	}
	return def
}

// seedNote renders the reproduction hint campaign failures must carry.
func seedNote(seed uint64) string {
	return "(rerun with SV_SEED=" + strconv.FormatUint(seed, 10) + ")"
}
