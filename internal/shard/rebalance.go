package shard

import (
	"fmt"
	"time"

	"skipvector/internal/core"
)

// Skew observer and planner. The per-table load counters (gate.go) record
// how many operations routed to each shard since the current boundary table
// was published; the planner compares each shard's share against the fair
// share and proposes at most one boundary move per pass — split the hottest
// shard at its occupancy median, or merge the coldest adjacent pair. One
// move per pass keeps the feedback loop stable: every publication resets
// the counters, so the next pass observes the new boundaries from scratch.

// RebalanceConfig tunes the skew observer. The zero value is usable; every
// field falls back to the documented default.
type RebalanceConfig struct {
	// Interval is the background observation tick (StartRebalancer only).
	// Default 200ms.
	Interval time.Duration

	// HotFactor splits a shard when its op share exceeds HotFactor × the
	// fair share (1/shards). Default 2.0.
	HotFactor float64

	// ColdFactor merges an adjacent pair when their combined op share is
	// below ColdFactor × the fair share — reclaiming shards the hot side
	// can split again. Default 0.5. Merging never runs below 2 shards.
	ColdFactor float64

	// MinOps is the minimum total ops in the observation window before the
	// planner acts; smaller windows are noise. Default 1024.
	MinOps int64

	// MinKeys is the minimum occupancy of a shard worth splitting — a hot
	// single key cannot be spread by a boundary. Default 16.
	MinKeys int

	// MaxShards caps the shard count splits may reach. Default (0) is the
	// package MaxShards limit.
	MaxShards int
}

func (c RebalanceConfig) withDefaults() RebalanceConfig {
	if c.Interval <= 0 {
		c.Interval = 200 * time.Millisecond
	}
	if c.HotFactor <= 1 {
		c.HotFactor = 2.0
	}
	if c.ColdFactor <= 0 {
		c.ColdFactor = 0.5
	}
	if c.MinOps <= 0 {
		c.MinOps = 1024
	}
	if c.MinKeys <= 0 {
		c.MinKeys = 16
	}
	if c.MaxShards <= 0 || c.MaxShards > MaxShards {
		c.MaxShards = MaxShards
	}
	return c
}

// Rebalance runs one observe→plan→migrate pass: at most one split or merge,
// chosen from the current table's load counters. It returns the migration
// report and whether a move was attempted. Safe to call concurrently with
// all map operations; concurrent passes serialize on the migration lock.
func (s *Sharded[V]) Rebalance(cfg RebalanceConfig) (Migration, bool, error) {
	cfg = cfg.withDefaults()
	t := s.tab.Load()
	n := len(t.maps)
	stats := make([]ShardLoadStat, n)
	var total int64
	for i := range t.maps {
		stats[i] = ShardLoadStat{Ops: t.load[i].total(), Keys: t.maps[i].Len()}
		total += stats[i].Ops
	}
	if total < cfg.MinOps {
		return Migration{}, false, nil
	}
	fair := float64(total) / float64(n)

	// Hottest shard first: a split spreads its traffic over two maps.
	hot := -1
	for i, st := range stats {
		if float64(st.Ops) > cfg.HotFactor*fair && st.Keys >= cfg.MinKeys {
			if hot < 0 || st.Ops > stats[hot].Ops {
				hot = i
			}
		}
	}
	if hot >= 0 {
		if n+1 <= cfg.MaxShards {
			key, ok := medianKey(t.maps[hot], t.lowOf(hot), t.highOf(hot))
			if ok {
				m, err := s.SplitShard(hot, key)
				return m, true, err
			}
		}
		// A hot shard we cannot split (cap reached, or nothing to split
		// at): do NOT fall through to a merge. Under a heavy-tailed load
		// the hottest shard stays above HotFactor × fair no matter how
		// often it splits, so merging a cold pair here would only open a
		// slot for the next pass to split again — a perpetual split/merge
		// oscillation copying the hot range back and forth. Idling is the
		// stable answer; cold pairs are reclaimed once nothing is hot.
		return Migration{}, false, nil
	}

	// Nothing hot: reclaim by merging the coldest adjacent pair.
	if n >= 2 {
		cold := -1
		var coldOps int64
		for i := 0; i+1 < n; i++ {
			pair := stats[i].Ops + stats[i+1].Ops
			if cold < 0 || pair < coldOps {
				cold, coldOps = i, pair
			}
		}
		if cold >= 0 && float64(coldOps) < cfg.ColdFactor*fair {
			m, err := s.MergeShards(cold)
			return m, true, err
		}
	}
	return Migration{}, false, nil
}

// medianKey returns the occupancy-median key of m's interval [lo, hi) — the
// key with half the shard's entries below it — or false when the shard is
// too small to split (under two keys). The returned key is strictly inside
// the interval: the median index is ≥1, so at least one key sorts below it.
func medianKey[V any](m *core.Map[V], lo, hi int64) (int64, bool) {
	n := m.Len()
	if n < 2 {
		return 0, false
	}
	target := n / 2
	var key int64
	found := false
	idx := 0
	m.RangeQuery(lo, hi-1, func(k int64, _ *V) bool {
		if idx == target {
			key, found = k, true
			return false
		}
		idx++
		return true
	})
	return key, found
}

// rebalancer is the background skew-observer loop.
type rebalancer struct {
	stop chan struct{}
	done chan struct{}
}

// StartRebalancer runs Rebalance(cfg) every cfg.Interval in a background
// goroutine until StopRebalancer. Starting twice is an error.
func (s *Sharded[V]) StartRebalancer(cfg RebalanceConfig) error {
	cfg = cfg.withDefaults()
	s.rebMu.Lock()
	defer s.rebMu.Unlock()
	if s.reb != nil {
		return fmt.Errorf("shard: rebalancer already running")
	}
	r := &rebalancer{stop: make(chan struct{}), done: make(chan struct{})}
	s.reb = r
	go func() {
		defer close(r.done)
		tick := time.NewTicker(cfg.Interval)
		defer tick.Stop()
		for {
			select {
			case <-r.stop:
				return
			case <-tick.C:
				s.Rebalance(cfg) //nolint:errcheck // best-effort background pass
			}
		}
	}()
	return nil
}

// StopRebalancer stops the background loop and waits for it to exit (any
// in-flight migration completes first). No-op when not running.
func (s *Sharded[V]) StopRebalancer() {
	s.rebMu.Lock()
	r := s.reb
	s.reb = nil
	s.rebMu.Unlock()
	if r != nil {
		close(r.stop)
		<-r.done
	}
}
