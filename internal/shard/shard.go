// Package shard partitions the key space across N independent skip vector
// maps behind a router, buying write parallelism the single structure cannot
// reach: each shard has its own chunks, seqlocks, hazard domain, and
// telemetry registry, so point operations on different shards share no
// synchronization state at all.
//
// The router is an immutable boundary table swapped atomically: resolving a
// key to its shard costs one atomic pointer load and a binary search over a
// handful of split keys — no lock, no per-operation allocation. Batches are
// partitioned at shard boundaries and fanned out to the owning shards in
// parallel with an all-shards commit barrier; ordered iteration stitches
// per-shard iterators back together at the boundaries, in key order.
//
// Boundaries are not fixed: the migrator (migrate.go) splits hot shards and
// merges cold ones online, copying the affected key range into fresh maps
// through pinned snapshots and swapping a new table in, while the skew
// observer (rebalance.go) decides when from per-shard op counters and
// occupancy. Readers never block during a migration; writes into the
// migrating range are redirected (briefly parked) across the swap, and every
// write is counted through a generation gate (gate.go) so the migrator can
// drain in-flight writes before it captures the sealed range's final state.
// Point operations stay linearizable across a table swap.
//
// Consistency model: point operations and per-shard batch units are
// linearizable (each shard is a fully linearizable map), including across
// rebalance swaps. Operations that span shards — ApplyBatch across
// boundaries, RangeQuery/Ascend windows crossing a split key — are sequences
// of per-shard linearizable segments, not one atomic operation: a concurrent
// reader can observe a state between two shards' commits. Callers that need
// cross-shard atomicity must either align their batches to shard boundaries
// or route everything to one shard.
package shard

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"skipvector/internal/core"
	"skipvector/internal/telemetry"
)

// Key sentinels, re-exported so callers need not import core for bounds math.
const (
	MinKey = core.MinKey
	MaxKey = core.MaxKey
)

// MaxShards bounds the shard count. The router's hot path is a binary search
// over the split keys; past a few hundred shards the per-shard fixed costs
// (registries, sentinel chunks, hazard domains) dominate any win.
const MaxShards = 1024

// sealRange marks the half-open key interval a migration is moving. Writes
// routed inside it park until the successor table is published; reads are
// unaffected (the source maps stay authoritative until the swap).
type sealRange struct {
	lo, hi int64
}

// table is the router's immutable state: the boundary table, the shard maps
// it routes to, and the per-shard op counters for this table's lifetime. A
// table is never mutated after publication — rebalancing builds a new table
// and swaps the pointer — so readers need no synchronization beyond the one
// atomic load.
type table[V any] struct {
	// splits are the interior boundary keys, strictly ascending, one fewer
	// than the shard count: shard 0 owns keys < splits[0], shard i owns
	// [splits[i-1], splits[i]), and the last shard owns keys ≥ the final
	// split. The whole user key space is always covered.
	splits []int64
	maps   []*core.Map[V]

	// load counts ops routed to each shard since this table was published
	// (striped, always on). Fresh per table, so the skew observer's window
	// resets at every swap.
	load []shardLoad

	// seal, when non-nil, is the key range a migration is moving out of this
	// table's shards. Immutable, like everything else here: sealing is done
	// by publishing a successor table that carries the seal.
	seal *sealRange

	// swapped is closed when a successor table is published. Writers parked
	// on a sealed range block on it; publish closes it exactly once.
	swapped chan struct{}
}

// newTable allocates a table over the given splits and maps with fresh load
// counters and swap channel.
func newTable[V any](splits []int64, maps []*core.Map[V], seal *sealRange) *table[V] {
	return &table[V]{
		splits:  splits,
		maps:    maps,
		load:    make([]shardLoad, len(maps)),
		seal:    seal,
		swapped: make(chan struct{}),
	}
}

// indexOf resolves a key to its owning shard: the number of split keys ≤ k.
func (t *table[V]) indexOf(k int64) int {
	lo, hi := 0, len(t.splits)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if t.splits[mid] <= k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// lowOf returns the lowest key shard i can own (MinKey+1 for shard 0).
func (t *table[V]) lowOf(i int) int64 {
	if i == 0 {
		return MinKey + 1
	}
	return t.splits[i-1]
}

// highOf returns the exclusive upper bound of shard i's interval (MaxKey for
// the last shard).
func (t *table[V]) highOf(i int) int64 {
	if i < len(t.splits) {
		return t.splits[i]
	}
	return MaxKey
}

// sealCovers reports whether k lies in this table's sealed (migrating)
// range.
func (t *table[V]) sealCovers(k int64) bool {
	return t.seal != nil && k >= t.seal.lo && k < t.seal.hi
}

// Sharded is a key-range-partitioned ordered map: N core maps behind an
// atomically-swapped boundary table. All methods are safe for concurrent use
// by any number of goroutines.
type Sharded[V any] struct {
	tab atomic.Pointer[table[V]]

	// gate counts in-flight writes per table generation so a migration can
	// drain them before capturing a sealed range's final state.
	gate writerGate

	// cfg is the per-shard configuration New was given; migrations build
	// replacement shards from it.
	cfg core.Config

	// nextID hands out metric-label identities for shard maps. The initial
	// maps take 0..n-1; migration-built replacements continue the sequence,
	// so the shard label names a map's identity, not its current position —
	// two live maps never share a label even across rebalances.
	mig    sync.Mutex // serializes migrations (one boundary move at a time)
	nextID atomic.Int64

	// rebMu guards the background rebalancer's lifecycle.
	rebMu sync.Mutex
	reb   *rebalancer

	// Router metrics: always-on atomics collected func-backed at exposition
	// time, so the hot path pays nothing for them.
	swaps       atomic.Int64 // boundary-table publications (1 at construction)
	fanouts     atomic.Int64 // ApplyBatch calls that spanned >1 shard
	fanoutParts atomic.Int64 // per-shard commit units issued by fan-out batches
	singleBatch atomic.Int64 // ApplyBatch calls resolved entirely by one shard

	// Rebalance metrics (migrate.go / rebalance.go).
	rebSplits     atomic.Int64 // completed split migrations
	rebMerges     atomic.Int64 // completed merge migrations
	rebAborts     atomic.Int64 // migrations aborted mid-flight (all rolled back)
	rebCopied     atomic.Int64 // pairs pre-copied through pinned snapshots
	rebReconciled atomic.Int64 // sealed-window fixes (delta upserts + deletes)
	rebSealNanos  atomic.Int64 // total ns the write redirect was in force
	sealWaits     atomic.Int64 // writes that parked on a sealed range

	// testHookSealed, when set, runs after the writer drain completes and
	// before the sealed reconciliation — the window in which the migrating
	// range is frozen. Test instrumentation only; never set in production.
	testHookSealed func()

	// snapObserver, when set, receives every pair a migration pre-copies
	// from its pinned snapshots (test instrumentation for the lincheck
	// rebalance histories). Guarded by mig.
	snapObserver func(k int64, v *V)

	reg *telemetry.Registry
}

// EvenBounds returns the interior split keys that partition [lo, hi) into
// shards near-equal key ranges: the bounds argument for New when keys are
// expected to be uniform over a known interval. Keys outside [lo, hi) still
// route (to the first or last shard); only balance suffers.
func EvenBounds(lo, hi int64, shards int) []int64 {
	if shards < 1 || hi <= lo {
		return nil
	}
	span := uint64(hi-lo) / uint64(shards)
	splits := make([]int64, 0, shards-1)
	for i := 1; i < shards; i++ {
		splits = append(splits, lo+int64(span)*int64(i))
	}
	return splits
}

// New builds a sharded map of len(splits)+1 shards, each an independent core
// map configured from cfg. splits are the interior boundary keys, strictly
// ascending and strictly inside the user key space (see EvenBounds). Each
// shard's registry is labeled with a unique shard id (on top of any labels
// already in cfg.MetricLabels) so the combined Metrics view exports distinct
// series, and each shard's height RNG stream is decorrelated from its
// siblings.
func New[V any](cfg core.Config, splits []int64) (*Sharded[V], error) {
	n := len(splits) + 1
	if n > MaxShards {
		return nil, fmt.Errorf("shard: %d shards exceeds MaxShards %d", n, MaxShards)
	}
	for i, s := range splits {
		if s <= MinKey || s >= MaxKey {
			return nil, fmt.Errorf("shard: split %d outside the user key space", s)
		}
		if i > 0 && splits[i-1] >= s {
			return nil, fmt.Errorf("shard: splits not strictly ascending at index %d", i)
		}
	}
	s := &Sharded[V]{cfg: cfg}
	maps := make([]*core.Map[V], n)
	for i := 0; i < n; i++ {
		m, err := s.newShardMap()
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		maps[i] = m
	}
	s.publish(newTable(append([]int64(nil), splits...), maps, nil))
	s.initMetrics()
	return s, nil
}

// newShardMap builds one shard map from the stored configuration with the
// next unique metric-label id and a decorrelated height RNG stream. Used at
// construction and by migrations for replacement shards.
func (s *Sharded[V]) newShardMap() (*core.Map[V], error) {
	id := s.nextID.Add(1) - 1
	c := s.cfg
	c.MetricLabels = append(append([]string(nil), s.cfg.MetricLabels...),
		"shard", strconv.FormatInt(id, 10))
	if c.Seed == 0 {
		c.Seed = core.DefaultConfig().Seed
	}
	c.Seed += uint64(id) * 0x9e3779b97f4a7c15
	return core.NewMap[V](c)
}

// publish swaps in a new boundary table and wakes every writer parked on the
// predecessor. The table must be fully built — it is visible to every
// concurrent operation the instant the pointer lands. Construction publishes
// the initial table; migrations publish the sealed table and then the
// rebalanced one through the same protocol.
func (s *Sharded[V]) publish(t *table[V]) {
	prev := s.tab.Swap(t)
	s.swaps.Add(1)
	if prev != nil {
		close(prev.swapped)
	}
}

// writeEnter begins a gated write to key k: it enters the writer gate, loads
// the current table, and resolves k's shard, parking until the next swap if
// k lies in a sealed (migrating) range. On return the caller holds a gate
// reference — a concurrent migration's drain waits for it — and MUST call
// s.gate.exit(gen, stripe) as soon as the shard-map write returns.
func (s *Sharded[V]) writeEnter(k int64) (t *table[V], i int, gen uint64, stripe uint32) {
	stripe = stripeOf(k)
	for {
		gen = s.gate.enter(stripe)
		t = s.tab.Load()
		if t.sealCovers(k) {
			// Exit before parking: the migrator's drain must not wait on a
			// writer that is itself waiting for the migrator's swap.
			s.gate.exit(gen, stripe)
			s.sealWaits.Add(1)
			<-t.swapped
			continue
		}
		i = t.indexOf(k)
		t.load[i].inc(k)
		return t, i, gen, stripe
	}
}

// ShardCount returns the number of shards in the current table.
func (s *Sharded[V]) ShardCount() int { return len(s.tab.Load().maps) }

// Bounds returns the current interior boundary keys (a copy).
func (s *Sharded[V]) Bounds() []int64 {
	return append([]int64(nil), s.tab.Load().splits...)
}

// ShardFor returns the index of the shard owning k (diagnostics, tests).
func (s *Sharded[V]) ShardFor(k int64) int { return s.tab.Load().indexOf(k) }

// Insert adds k→v to the owning shard; false when k is already present.
func (s *Sharded[V]) Insert(k int64, v *V) bool {
	t, i, gen, stripe := s.writeEnter(k)
	ok := t.maps[i].Insert(k, v)
	s.gate.exit(gen, stripe)
	return ok
}

// Upsert adds or replaces k→v; true when the key was newly inserted.
func (s *Sharded[V]) Upsert(k int64, v *V) bool {
	t, i, gen, stripe := s.writeEnter(k)
	ok := t.maps[i].Upsert(k, v)
	s.gate.exit(gen, stripe)
	return ok
}

// Lookup returns the value mapped to k.
func (s *Sharded[V]) Lookup(k int64) (*V, bool) {
	t := s.tab.Load()
	i := t.indexOf(k)
	t.load[i].inc(k)
	return t.maps[i].Lookup(k)
}

// Contains reports whether k is present.
func (s *Sharded[V]) Contains(k int64) bool {
	t := s.tab.Load()
	i := t.indexOf(k)
	t.load[i].inc(k)
	return t.maps[i].Contains(k)
}

// Remove deletes the mapping for k, reporting whether it was present.
func (s *Sharded[V]) Remove(k int64) bool {
	t, i, gen, stripe := s.writeEnter(k)
	ok := t.maps[i].Remove(k)
	s.gate.exit(gen, stripe)
	return ok
}

// Len sums the shard lengths. Like the core map's Len it is linearizable
// only at quiescence.
func (s *Sharded[V]) Len() int {
	total := 0
	for _, m := range s.tab.Load().maps {
		total += m.Len()
	}
	return total
}

// Floor returns the largest key ≤ k and its value, searching the owning
// shard first and walking left across emptier shards as needed.
func (s *Sharded[V]) Floor(k int64) (int64, *V, bool) {
	t := s.tab.Load()
	start := t.indexOf(k)
	t.load[start].inc(k)
	for i := start; i >= 0; i-- {
		if fk, v, ok := t.maps[i].Floor(k); ok {
			return fk, v, true
		}
	}
	return 0, nil, false
}

// Ceiling returns the smallest key ≥ k and its value, walking right from the
// owning shard.
func (s *Sharded[V]) Ceiling(k int64) (int64, *V, bool) {
	t := s.tab.Load()
	start := t.indexOf(k)
	t.load[start].inc(k)
	for i := start; i < len(t.maps); i++ {
		if ck, v, ok := t.maps[i].Ceiling(k); ok {
			return ck, v, true
		}
	}
	return 0, nil, false
}

// First returns the smallest key and its value across all shards.
func (s *Sharded[V]) First() (int64, *V, bool) {
	for _, m := range s.tab.Load().maps {
		if k, v, ok := m.First(); ok {
			return k, v, true
		}
	}
	return 0, nil, false
}

// Last returns the largest key and its value across all shards.
func (s *Sharded[V]) Last() (int64, *V, bool) {
	maps := s.tab.Load().maps
	for i := len(maps) - 1; i >= 0; i-- {
		if k, v, ok := maps[i].Last(); ok {
			return k, v, true
		}
	}
	return 0, nil, false
}

// Keys concatenates the shard key sets in key order. Quiescent use only.
func (s *Sharded[V]) Keys() []int64 {
	var out []int64
	for _, m := range s.tab.Load().maps {
		out = append(out, m.Keys()...)
	}
	return out
}

// ShardStats returns each shard's counter snapshot, indexed by shard.
func (s *Sharded[V]) ShardStats() []core.StatsSnapshot {
	maps := s.tab.Load().maps
	out := make([]core.StatsSnapshot, len(maps))
	for i, m := range maps {
		out[i] = m.Stats()
	}
	return out
}

// ShardLoadStat is one shard's standing in the current boundary table: ops
// routed to it since the table was published and its current occupancy.
type ShardLoadStat struct {
	Ops  int64
	Keys int
}

// LoadStats samples each shard's op count (since the current table landed)
// and occupancy, indexed by shard. This is the skew observer's input; the
// counters are always on.
func (s *Sharded[V]) LoadStats() []ShardLoadStat {
	t := s.tab.Load()
	out := make([]ShardLoadStat, len(t.maps))
	for i := range t.maps {
		out[i] = ShardLoadStat{Ops: t.load[i].total(), Keys: t.maps[i].Len()}
	}
	return out
}

// FlushRetired forces a reclamation scan on every shard (tests, teardown).
func (s *Sharded[V]) FlushRetired() {
	for _, m := range s.tab.Load().maps {
		m.FlushRetired()
	}
}

// CheckInvariants validates every shard's structure and the routing
// invariant that each shard holds only keys inside its boundary interval.
// Quiescent use only.
func (s *Sharded[V]) CheckInvariants() error {
	t := s.tab.Load()
	if !sort.SliceIsSorted(t.splits, func(i, j int) bool { return t.splits[i] < t.splits[j] }) {
		return fmt.Errorf("shard: splits out of order: %v", t.splits)
	}
	for i, m := range t.maps {
		if err := m.CheckInvariants(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		lo := t.lowOf(i)
		hi := t.highOf(i)
		for _, k := range m.Keys() {
			if k < lo || k >= hi {
				return fmt.Errorf("shard %d holds key %d outside [%d,%d)", i, k, lo, hi)
			}
		}
	}
	return nil
}
