package shard

import (
	"sync"

	"skipvector/internal/core"
)

// ApplyBatch partitions ops at shard boundaries and applies each part with
// the owning shard's chunk-grouped ApplyBatch, returning outcomes
// positionally aligned with the request slice.
//
// Partitioning is zero-copy when the ops arrive sorted by key (the common
// case — callers that batch usually batch sorted runs): shard indices are
// then non-decreasing, so each part is a contiguous subslice of ops and the
// result subslices land directly in the right positions. Unsorted ops fall
// back to bucketing with an index map and a result scatter.
//
// Parts run in parallel, one goroutine per non-resident part with the first
// part applied inline, and ApplyBatch returns only after every part has
// committed (the all-shards commit barrier). Same-key ops cannot span shards,
// so per-key last-write-wins order is exactly the core map's. Atomicity is
// per shard: each part linearizes as the owning shard's ApplyBatch does
// (per-chunk groups), but a concurrent reader can observe a state where some
// shards have committed their parts and others have not. Callers needing a
// cross-shard atomic batch must align it to one shard.
//
// The whole fan-out runs inside one writer-gate reference: a concurrent
// migration drains it like any point write, and a batch touching a sealed
// range parks until the successor table lands, then re-routes against it.
func (s *Sharded[V]) ApplyBatch(ops []core.BatchOp[V]) []core.BatchResult {
	if len(ops) == 0 {
		return nil
	}
	stripe := stripeOf(ops[0].Key)
	for {
		gen := s.gate.enter(stripe)
		t := s.tab.Load()
		if t.seal != nil && batchSealed(t, ops) {
			s.gate.exit(gen, stripe)
			s.sealWaits.Add(1)
			<-t.swapped
			continue
		}
		res := s.applyBatchOn(t, ops)
		s.gate.exit(gen, stripe)
		return res
	}
}

// batchSealed reports whether any op routes into t's sealed range.
func batchSealed[V any](t *table[V], ops []core.BatchOp[V]) bool {
	for i := range ops {
		if t.sealCovers(ops[i].Key) {
			return true
		}
	}
	return false
}

// applyBatchOn routes and applies ops against a specific table. The caller
// holds a gate reference and has verified no op is sealed.
func (s *Sharded[V]) applyBatchOn(t *table[V], ops []core.BatchOp[V]) []core.BatchResult {
	if len(t.maps) == 1 {
		s.singleBatch.Add(1)
		t.load[0].add(ops[0].Key, int64(len(ops)))
		return t.maps[0].ApplyBatch(ops)
	}

	// One routing pass decides the partition shape: sorted input keeps shard
	// indices non-decreasing and admits the contiguous fast path.
	first := t.indexOf(ops[0].Key)
	contiguous := true
	spans := first
	prev := first
	for i := 1; i < len(ops); i++ {
		si := t.indexOf(ops[i].Key)
		if si < prev {
			contiguous = false
			break
		}
		if si != prev {
			spans = si
			prev = si
		}
	}
	if contiguous && spans == first {
		// Every op routes to one shard: no fan-out, no barrier.
		s.singleBatch.Add(1)
		t.load[first].add(ops[0].Key, int64(len(ops)))
		return t.maps[first].ApplyBatch(ops)
	}

	results := make([]core.BatchResult, len(ops))
	if contiguous {
		s.applyContiguous(t, ops, results)
	} else {
		s.applyScattered(t, ops, results)
	}
	return results
}

// applyContiguous fans out contiguous subslices of ops: part boundaries are
// found by routing, each part shares the caller's backing array, and each
// part's results are written straight into the aligned results window.
func (s *Sharded[V]) applyContiguous(t *table[V], ops []core.BatchOp[V], results []core.BatchResult) {
	type part struct {
		shard  int
		lo, hi int // ops[lo:hi]
	}
	var parts []part
	lo := 0
	cur := t.indexOf(ops[0].Key)
	for i := 1; i < len(ops); i++ {
		if si := t.indexOf(ops[i].Key); si != cur {
			parts = append(parts, part{cur, lo, i})
			lo, cur = i, si
		}
	}
	parts = append(parts, part{cur, lo, len(ops)})
	s.fanouts.Add(1)
	s.fanoutParts.Add(int64(len(parts)))
	for _, p := range parts {
		t.load[p.shard].add(ops[p.lo].Key, int64(p.hi-p.lo))
	}

	var wg sync.WaitGroup
	for _, p := range parts[1:] {
		wg.Add(1)
		go func(p part) {
			defer wg.Done()
			copy(results[p.lo:p.hi], t.maps[p.shard].ApplyBatch(ops[p.lo:p.hi]))
		}(p)
	}
	// The first part runs inline: the calling goroutine is a worker too, so a
	// two-shard batch spawns one goroutine, not two.
	p := parts[0]
	copy(results[p.lo:p.hi], t.maps[p.shard].ApplyBatch(ops[p.lo:p.hi]))
	wg.Wait()
}

// applyScattered buckets unsorted ops by shard, preserving request order
// inside each bucket — the core ApplyBatch sorts stably, so per-key request
// order survives the detour — and scatters each part's results back through
// the recorded original indices.
func (s *Sharded[V]) applyScattered(t *table[V], ops []core.BatchOp[V], results []core.BatchResult) {
	n := len(t.maps)
	bucketOps := make([][]core.BatchOp[V], n)
	bucketIdx := make([][]int, n)
	for i, op := range ops {
		si := t.indexOf(op.Key)
		bucketOps[si] = append(bucketOps[si], op)
		bucketIdx[si] = append(bucketIdx[si], i)
	}
	parts := 0
	for si := 0; si < n; si++ {
		if len(bucketOps[si]) > 0 {
			t.load[si].add(bucketOps[si][0].Key, int64(len(bucketOps[si])))
			parts++
		}
	}
	s.fanouts.Add(1)
	s.fanoutParts.Add(int64(parts))

	var wg sync.WaitGroup
	inline := -1
	for si := 0; si < n; si++ {
		if len(bucketOps[si]) == 0 {
			continue
		}
		if inline < 0 {
			inline = si
			continue
		}
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			for j, r := range t.maps[si].ApplyBatch(bucketOps[si]) {
				results[bucketIdx[si][j]] = r
			}
		}(si)
	}
	for j, r := range t.maps[inline].ApplyBatch(bucketOps[inline]) {
		results[bucketIdx[inline][j]] = r
	}
	wg.Wait()
}
