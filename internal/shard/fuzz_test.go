package shard

import (
	"encoding/binary"
	"sort"
	"testing"
)

// linearIndexOf is the routing oracle: walk the splits left to right and
// count how many are ≤ k. Split keys belong to the RIGHT shard.
func linearIndexOf(splits []int64, k int64) int {
	i := 0
	for i < len(splits) && splits[i] <= k {
		i++
	}
	return i
}

// fuzzSplits decodes a fuzz payload into a strictly-ascending split set and
// a probe key: the first byte picks the split count, each split is derived
// from 8 bytes (deduped and sorted), the rest seeds the probe.
func fuzzSplits(data []byte) (splits []int64, probe int64, ok bool) {
	if len(data) < 2 {
		return nil, 0, false
	}
	n := int(data[0]%16) + 1
	data = data[1:]
	raw := make(map[int64]bool)
	for i := 0; i < n && len(data) >= 8; i++ {
		k := int64(binary.LittleEndian.Uint64(data[:8]))
		data = data[8:]
		if k > MinKey && k < MaxKey {
			raw[k] = true
		}
	}
	if len(raw) == 0 {
		return nil, 0, false
	}
	for k := range raw {
		splits = append(splits, k)
	}
	sort.Slice(splits, func(i, j int) bool { return splits[i] < splits[j] })
	if len(data) >= 8 {
		probe = int64(binary.LittleEndian.Uint64(data[:8]))
	}
	if probe <= MinKey || probe >= MaxKey {
		probe = splits[0]
	}
	return splits, probe, true
}

// FuzzRouting drives the binary-search router against the linear-scan
// oracle over fuzz-derived boundary tables: the probe key itself, both
// neighbors of every split (the exact-boundary cases), and the routing
// invariants lowOf/highOf around the resolved shard.
func FuzzRouting(f *testing.F) {
	f.Add([]byte{3, 10, 0, 0, 0, 0, 0, 0, 0, 20, 0, 0, 0, 0, 0, 0, 0, 10, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0, 0x80, 5, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{16, 255, 255, 255, 255, 255, 255, 255, 127})
	f.Fuzz(func(t *testing.T, data []byte) {
		splits, probe, ok := fuzzSplits(data)
		if !ok {
			return
		}
		tab := &table[int64]{splits: splits}
		probes := []int64{probe}
		for _, s := range splits {
			// Keys exactly at, just below, and just above every split.
			probes = append(probes, s)
			if s > MinKey+1 {
				probes = append(probes, s-1)
			}
			if s < MaxKey-1 {
				probes = append(probes, s+1)
			}
		}
		for _, k := range probes {
			got := tab.indexOf(k)
			want := linearIndexOf(splits, k)
			if got != want {
				t.Fatalf("indexOf(%d) over %v = %d, oracle %d", k, splits, got, want)
			}
			if lo := tab.lowOf(got); k < lo {
				t.Fatalf("key %d below lowOf(%d)=%d over %v", k, got, lo, splits)
			}
			if hi := tab.highOf(got); k >= hi {
				t.Fatalf("key %d at/above highOf(%d)=%d over %v", k, got, hi, splits)
			}
		}
	})
}

// FuzzFloorCeilingAtBoundaries builds a real sharded map from fuzz-derived
// splits, populates both neighbors of every boundary, and cross-checks
// Floor/Ceiling — the operations that must walk across shards — against a
// sorted-slice oracle, probing exactly at, below, and above each split.
func FuzzFloorCeilingAtBoundaries(f *testing.F) {
	f.Add([]byte{2, 50, 0, 0, 0, 0, 0, 0, 0, 100, 0, 0, 0, 0, 0, 0, 0, 75, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{4, 1, 0, 0, 0, 0, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0, 3, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		splits, probe, ok := fuzzSplits(data)
		if !ok || len(splits) > 8 {
			return
		}
		s, err := New[int64](tinyCfg(), splits)
		if err != nil {
			t.Fatalf("New(%v): %v", splits, err)
		}
		present := make(map[int64]bool)
		ins := func(k int64) {
			if k <= MinKey || k >= MaxKey || present[k] {
				return
			}
			v := k
			s.Upsert(k, &v)
			present[k] = true
		}
		for _, sp := range splits {
			ins(sp - 1)
			ins(sp)
			ins(sp + 1)
		}
		ins(probe)
		keys := make([]int64, 0, len(present))
		for k := range present {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

		oracleFloor := func(k int64) (int64, bool) {
			i := sort.Search(len(keys), func(i int) bool { return keys[i] > k })
			if i == 0 {
				return 0, false
			}
			return keys[i-1], true
		}
		oracleCeiling := func(k int64) (int64, bool) {
			i := sort.Search(len(keys), func(i int) bool { return keys[i] >= k })
			if i == len(keys) {
				return 0, false
			}
			return keys[i], true
		}

		probes := []int64{probe}
		for _, sp := range splits {
			probes = append(probes, sp)
			if sp > MinKey+1 {
				probes = append(probes, sp-1)
			}
			if sp < MaxKey-1 {
				probes = append(probes, sp+1)
			}
		}
		for _, k := range probes {
			if fk, fv, ok := s.Floor(k); true {
				wk, wok := oracleFloor(k)
				if ok != wok || (ok && (fk != wk || *fv != wk)) {
					t.Fatalf("Floor(%d) over %v = (%d,%t), oracle (%d,%t)", k, splits, fk, ok, wk, wok)
				}
			}
			if ck, cv, ok := s.Ceiling(k); true {
				wk, wok := oracleCeiling(k)
				if ok != wok || (ok && (ck != wk || *cv != wk)) {
					t.Fatalf("Ceiling(%d) over %v = (%d,%t), oracle (%d,%t)", k, splits, ck, ok, wk, wok)
				}
			}
		}
		mustCheck(t, s)
	})
}
