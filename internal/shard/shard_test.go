package shard

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"

	"skipvector/internal/core"
)

// tinyCfg keeps chunks small so even small key spaces split across nodes.
func tinyCfg() core.Config {
	cfg := core.DefaultConfig()
	cfg.LayerCount = 3
	cfg.TargetDataVectorSize = 2
	cfg.TargetIndexVectorSize = 2
	return cfg
}

func newTest(t *testing.T, cfg core.Config, splits []int64) *Sharded[int64] {
	t.Helper()
	s, err := New[int64](cfg, splits)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func put(t *testing.T, s *Sharded[int64], keys ...int64) {
	t.Helper()
	for _, k := range keys {
		v := k * 10
		if !s.Upsert(k, &v) {
			t.Fatalf("Upsert(%d) found existing key", k)
		}
	}
}

func mustCheck(t *testing.T, s *Sharded[int64]) {
	t.Helper()
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

func TestEvenBounds(t *testing.T) {
	cases := []struct {
		lo, hi int64
		shards int
		want   []int64
	}{
		{0, 100, 4, []int64{25, 50, 75}},
		{0, 100, 1, []int64{}},
		{-50, 50, 2, []int64{0}},
		{0, 7, 3, []int64{2, 4}},
	}
	for _, c := range cases {
		got := EvenBounds(c.lo, c.hi, c.shards)
		if len(got) != len(c.want) {
			t.Fatalf("EvenBounds(%d,%d,%d) = %v, want %v", c.lo, c.hi, c.shards, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("EvenBounds(%d,%d,%d) = %v, want %v", c.lo, c.hi, c.shards, got, c.want)
			}
		}
	}
	if got := EvenBounds(0, 0, 4); got != nil {
		t.Fatalf("empty interval: %v", got)
	}
	if got := EvenBounds(0, 100, 0); got != nil {
		t.Fatalf("zero shards: %v", got)
	}
}

func TestRouterBoundaryExactness(t *testing.T) {
	s := newTest(t, tinyCfg(), []int64{10, 20})
	cases := map[int64]int{
		MinKey + 1: 0, -5: 0, 9: 0,
		10: 1, 15: 1, 19: 1, // split keys belong to the RIGHT shard
		20: 2, 1000: 2, MaxKey - 1: 2,
	}
	for k, want := range cases {
		if got := s.ShardFor(k); got != want {
			t.Errorf("ShardFor(%d) = %d, want %d", k, got, want)
		}
	}
	// A key on each side of each boundary must land where routing says.
	for _, k := range []int64{9, 10, 19, 20} {
		v := k
		s.Upsert(k, &v)
	}
	mustCheck(t, s)
	if s.ShardCount() != 3 {
		t.Fatalf("ShardCount = %d", s.ShardCount())
	}
	if b := s.Bounds(); len(b) != 2 || b[0] != 10 || b[1] != 20 {
		t.Fatalf("Bounds = %v", b)
	}
}

func TestNewRejectsBadSplits(t *testing.T) {
	for name, splits := range map[string][]int64{
		"descending": {20, 10},
		"duplicate":  {10, 10},
		"min-key":    {MinKey},
		"max-key":    {MaxKey},
	} {
		if _, err := New[int64](tinyCfg(), splits); err == nil {
			t.Errorf("%s splits %v accepted", name, splits)
		}
	}
	if _, err := New[int64](tinyCfg(), make([]int64, MaxShards)); err == nil {
		t.Error("MaxShards+1 shards accepted")
	}
}

func TestPointOpsAcrossShards(t *testing.T) {
	s := newTest(t, tinyCfg(), []int64{32, 64, 96})
	var keys []int64
	for k := int64(0); k < 128; k += 3 {
		keys = append(keys, k)
	}
	put(t, s, keys...)
	if s.Len() != len(keys) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(keys))
	}
	for _, k := range keys {
		p, ok := s.Lookup(k)
		if !ok || *p != k*10 {
			t.Fatalf("Lookup(%d) = %v,%v", k, p, ok)
		}
	}
	got := s.Keys()
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("Keys not sorted: %v", got)
	}
	if len(got) != len(keys) {
		t.Fatalf("Keys len = %d, want %d", len(got), len(keys))
	}
	// Remove every key that sits exactly on a boundary.
	for _, k := range []int64{33, 66, 96} {
		if s.Contains(k) != (k%3 == 0) {
			t.Fatalf("Contains(%d) wrong", k)
		}
	}
	for _, k := range keys[:10] {
		if !s.Remove(k) {
			t.Fatalf("Remove(%d) missed", k)
		}
	}
	if s.Len() != len(keys)-10 {
		t.Fatalf("Len after removes = %d", s.Len())
	}
	mustCheck(t, s)
}

// TestFloorCeilingAcrossBoundaries pins the shard-walk: when the owning
// shard has no answer, Floor walks left and Ceiling walks right — including
// across entirely empty shards and shards holding a single key.
func TestFloorCeilingAcrossBoundaries(t *testing.T) {
	// Shards: [..,10) {5}, [10,20) empty, [20,30) {25} single-key, [30,..) {40}
	s := newTest(t, tinyCfg(), []int64{10, 20, 30})
	put(t, s, 5, 25, 40)

	if k, v, ok := s.Floor(22); !ok || k != 5 || *v != 50 {
		t.Fatalf("Floor(22) = %d,%v,%v want 5 (two shards left)", k, v, ok)
	}
	if k, _, ok := s.Floor(25); !ok || k != 25 {
		t.Fatalf("Floor(25) = %d,%v want exact hit", k, ok)
	}
	if k, _, ok := s.Ceiling(11); !ok || k != 25 {
		t.Fatalf("Ceiling(11) = %d,%v want 25 (across empty shard)", k, ok)
	}
	if k, _, ok := s.Ceiling(26); !ok || k != 40 {
		t.Fatalf("Ceiling(26) = %d,%v want 40", k, ok)
	}
	if _, _, ok := s.Floor(4); ok {
		t.Fatal("Floor(4) found a key below the minimum")
	}
	if _, _, ok := s.Ceiling(41); ok {
		t.Fatal("Ceiling(41) found a key above the maximum")
	}
	if k, _, ok := s.First(); !ok || k != 5 {
		t.Fatalf("First = %d,%v", k, ok)
	}
	if k, _, ok := s.Last(); !ok || k != 40 {
		t.Fatalf("Last = %d,%v", k, ok)
	}

	// Fully empty map: every navigation comes back empty.
	e := newTest(t, tinyCfg(), []int64{10})
	if _, _, ok := e.First(); ok {
		t.Fatal("First on empty")
	}
	if _, _, ok := e.Last(); ok {
		t.Fatal("Last on empty")
	}
}

// TestRangeStitching drives windows that start before, inside, and after
// shard boundaries — including windows whose middle shard is empty — and
// checks the stitched stream is exactly the sorted key order.
func TestRangeStitching(t *testing.T) {
	s := newTest(t, tinyCfg(), []int64{10, 20, 30})
	keys := []int64{1, 5, 9, 10, 11, 25, 30, 35} // shard [10,20) nonempty, [20,30) holds 25
	put(t, s, keys...)

	collect := func(lo, hi int64) []int64 {
		var got []int64
		s.RangeQuery(lo, hi, func(k int64, v *int64) bool {
			if *v != k*10 {
				t.Fatalf("RangeQuery(%d,%d) key %d has value %d", lo, hi, k, *v)
			}
			got = append(got, k)
			return true
		})
		return got
	}
	want := func(lo, hi int64) []int64 {
		var w []int64
		for _, k := range keys {
			if k >= lo && k <= hi {
				w = append(w, k)
			}
		}
		return w
	}
	for _, win := range [][2]int64{
		{0, 40},                  // all shards
		{9, 10},                  // exactly straddles a boundary
		{10, 19},                 // one interior shard
		{5, 25},                  // three shards
		{12, 24},                 // starts mid-shard, ends mid-shard
		{36, 100},                // past the last key
		{MinKey + 1, MaxKey - 1}, // full key space
	} {
		got, w := collect(win[0], win[1]), want(win[0], win[1])
		if fmt.Sprint(got) != fmt.Sprint(w) {
			t.Errorf("RangeQuery(%d,%d) = %v, want %v", win[0], win[1], got, w)
		}
	}
	// Inverted window is a no-op.
	if got := collect(30, 10); got != nil {
		t.Fatalf("inverted window returned %v", got)
	}

	// Early stop must halt the stitching mid-shard, not just mid-segment.
	var seen []int64
	s.RangeQuery(0, 40, func(k int64, _ *int64) bool {
		seen = append(seen, k)
		return len(seen) < 4
	})
	if len(seen) != 4 || seen[3] != 10 {
		t.Fatalf("early stop saw %v", seen)
	}

	// Ascend is the full-space window.
	var all []int64
	s.Ascend(func(k int64, _ *int64) bool { all = append(all, k); return true })
	if fmt.Sprint(all) != fmt.Sprint(keys) {
		t.Fatalf("Ascend = %v, want %v", all, keys)
	}

	// RangeUpdate across a boundary touches exactly the window.
	n := s.RangeUpdate(9, 25, func(k int64, v *int64) *int64 {
		nv := *v + 1
		return &nv
	})
	if n != 4 { // 9, 10, 11, 25
		t.Fatalf("RangeUpdate visited %d", n)
	}
	if p, _ := s.Lookup(10); *p != 101 {
		t.Fatalf("RangeUpdate missed key 10: %d", *p)
	}
	if p, _ := s.Lookup(30); *p != 300 {
		t.Fatalf("RangeUpdate leaked past the window: %d", *p)
	}
	mustCheck(t, s)
}

// TestApplyBatchSpanningShards drives both fan-out paths: a sorted batch
// spanning every shard (contiguous zero-copy partition) and an unsorted
// batch with duplicate keys (scatter partition), checking positional
// outcomes and last-write-wins per key.
func TestApplyBatchSpanningShards(t *testing.T) {
	s := newTest(t, tinyCfg(), []int64{10, 20, 30})

	// Sorted batch across all four shards.
	var ops []core.BatchOp[int64]
	vals := make([]int64, 8)
	for i, k := range []int64{1, 9, 10, 15, 20, 29, 30, 99} {
		vals[i] = k * 10
		ops = append(ops, core.BatchOp[int64]{Key: k, Val: &vals[i]})
	}
	res := s.ApplyBatch(ops)
	if len(res) != len(ops) {
		t.Fatalf("results len %d", len(res))
	}
	for i, r := range res {
		if r.Outcome != core.BatchInserted {
			t.Fatalf("op %d outcome %v", i, r.Outcome)
		}
	}
	if s.Len() != len(ops) {
		t.Fatalf("Len = %d", s.Len())
	}

	// Unsorted batch with duplicates: same key written twice in request
	// order must resolve last-write-wins; deletes interleave.
	v1, v2, v3 := int64(111), int64(222), int64(333)
	res = s.ApplyBatch([]core.BatchOp[int64]{
		{Key: 99, Val: &v1},                  // update in last shard
		{Key: 1, Del: true},                  // delete in first shard
		{Key: 15, Val: &v2},                  // update middle
		{Key: 15, Val: &v3},                  // duplicate: must win
		{Key: 555, Del: true},                // absent key in last shard
		{Key: 9, Val: &v1, InsertOnly: true}, // present: BatchExists
	})
	wantOutcomes := []core.BatchOutcome{
		core.BatchUpdated, core.BatchRemoved, core.BatchUpdated,
		core.BatchUpdated, core.BatchAbsent, core.BatchExists,
	}
	for i, w := range wantOutcomes {
		if res[i].Outcome != w {
			t.Fatalf("op %d outcome %v, want %v", i, res[i].Outcome, w)
		}
	}
	if p, _ := s.Lookup(15); *p != 333 {
		t.Fatalf("duplicate key resolved to %d, want 333 (last write wins)", *p)
	}
	if s.Contains(1) {
		t.Fatal("delete did not land")
	}

	// Fan-out telemetry: both multi-shard calls counted, the parts add up.
	stats := shardCounters(s)
	if stats["fanouts"] != 2 {
		t.Fatalf("fanouts = %d", stats["fanouts"])
	}
	if stats["parts"] != 4+3 { // first batch hit 4 shards, second hit 3 (555 shares shard 3 with 99)
		t.Fatalf("fanout parts = %d", stats["parts"])
	}

	// A batch confined to one shard takes the no-barrier path.
	v := int64(7)
	s.ApplyBatch([]core.BatchOp[int64]{{Key: 21, Val: &v}, {Key: 22, Val: &v}})
	if got := shardCounters(s)["single"]; got != 1 {
		t.Fatalf("single-shard batches = %d", got)
	}
	// Empty batch is a no-op.
	if out := s.ApplyBatch(nil); out != nil {
		t.Fatalf("empty batch returned %v", out)
	}
	mustCheck(t, s)
}

// shardCounters reads the router metric atomics for assertions.
func shardCounters(s *Sharded[int64]) map[string]int64 {
	return map[string]int64{
		"fanouts": s.fanouts.Load(),
		"parts":   s.fanoutParts.Load(),
		"single":  s.singleBatch.Load(),
		"swaps":   s.swaps.Load(),
	}
}

// TestHandleAcrossShards drives the lazily-pinned session API over shard
// boundaries, including the single-shard batch fast path.
func TestHandleAcrossShards(t *testing.T) {
	s := newTest(t, tinyCfg(), []int64{10, 20})
	h := s.NewHandle()
	defer h.Close()

	for _, k := range []int64{5, 15, 25} {
		v := k * 10
		if !h.Upsert(k, &v) {
			t.Fatalf("handle Upsert(%d)", k)
		}
	}
	for _, k := range []int64{5, 15, 25} {
		p, ok := h.Lookup(k)
		if !ok || *p != k*10 {
			t.Fatalf("handle Lookup(%d) = %v,%v", k, p, ok)
		}
	}
	if k, _, ok := h.Floor(14); !ok || k != 5 {
		t.Fatalf("handle Floor(14) = %d,%v", k, ok)
	}
	if k, _, ok := h.Ceiling(16); !ok || k != 25 {
		t.Fatalf("handle Ceiling(16) = %d,%v", k, ok)
	}
	if k, _, ok := h.First(); !ok || k != 5 {
		t.Fatalf("handle First = %d,%v", k, ok)
	}
	if k, _, ok := h.Last(); !ok || k != 25 {
		t.Fatalf("handle Last = %d,%v", k, ok)
	}

	// Single-shard batch goes through the pinned session...
	v := int64(1)
	h.ApplyBatch([]core.BatchOp[int64]{{Key: 11, Val: &v}, {Key: 12, Val: &v}})
	// ...and a spanning batch falls back to the fan-out.
	h.ApplyBatch([]core.BatchOp[int64]{{Key: 1, Val: &v}, {Key: 28, Val: &v}})
	c := shardCounters(s)
	if c["single"] != 1 || c["fanouts"] != 1 {
		t.Fatalf("handle batch routing: %v", c)
	}
	if !h.Remove(11) || h.Contains(11) {
		t.Fatal("handle Remove")
	}
	h.Close()
	h.Close() // idempotent
	mustCheck(t, s)
}

// TestMetricsDoNotCollide is the telemetry satellite's contract at the shard
// level: one combined exposition over N shards has one TYPE header per
// family, N labeled series, and per-shard sv_len values that sum to Len.
func TestMetricsDoNotCollide(t *testing.T) {
	s := newTest(t, tinyCfg(), []int64{10, 20, 30})
	var keys []int64
	for k := int64(0); k < 40; k++ {
		keys = append(keys, k)
	}
	put(t, s, keys...)

	var b strings.Builder
	if err := s.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if got := strings.Count(out, "# TYPE sv_len gauge"); got != 1 {
		t.Fatalf("sv_len TYPE headers = %d, want 1", got)
	}
	if !strings.Contains(out, "sv_shard_count 4") {
		t.Fatalf("router gauge missing:\n%s", out)
	}
	total := 0.0
	for i := 0; i < 4; i++ {
		prefix := fmt.Sprintf("sv_len{shard=%q} ", fmt.Sprint(i))
		idx := strings.Index(out, prefix)
		if idx < 0 {
			t.Fatalf("missing series %q", prefix)
		}
		var v float64
		if _, err := fmt.Sscanf(out[idx+len(prefix):], "%g", &v); err != nil {
			t.Fatalf("parse %q: %v", prefix, err)
		}
		total += v
	}
	if int(total) != s.Len() {
		t.Fatalf("Σ sv_len{shard} = %v, Len = %d", total, s.Len())
	}

	names := s.Metrics().Names()
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("colliding series %q", n)
		}
		seen[n] = true
	}

	if len(s.ShardStats()) != 4 {
		t.Fatalf("ShardStats len = %d", len(s.ShardStats()))
	}
}

// TestConcurrentStress churns point ops, spanning batches, and stitched
// ranges across boundaries from many goroutines (race-detector exercise),
// then validates structure and routing at quiescence.
func TestConcurrentStress(t *testing.T) {
	s := newTest(t, tinyCfg(), []int64{16, 32, 48})
	const (
		procs   = 4
		opsEach = 3000
		keys    = 64
	)
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(p) * 977))
			h := s.NewHandle()
			defer h.Close()
			for i := 0; i < opsEach; i++ {
				k := int64(rng.Intn(keys))
				switch rng.Intn(6) {
				case 0:
					v := k
					h.Upsert(k, &v)
				case 1:
					h.Remove(k)
				case 2:
					h.Lookup(k)
				case 3:
					// Spanning batch through both fan-out paths.
					n := 2 + rng.Intn(4)
					ops := make([]core.BatchOp[int64], n)
					vals := make([]int64, n)
					for b := range ops {
						bk := int64(rng.Intn(keys))
						vals[b] = bk
						ops[b] = core.BatchOp[int64]{Key: bk, Val: &vals[b], Del: rng.Intn(4) == 0}
					}
					s.ApplyBatch(ops)
				case 4:
					lo := k
					s.RangeQuery(lo, lo+20, func(qk int64, qv *int64) bool {
						if *qv != qk {
							panic(fmt.Sprintf("key %d holds %d", qk, *qv))
						}
						return true
					})
				default:
					s.Floor(k)
					s.Ceiling(k)
				}
			}
		}(p)
	}
	wg.Wait()
	s.FlushRetired()
	mustCheck(t, s)
}
