package shard

import (
	"math/rand"
	"sync"
	"testing"

	"skipvector/internal/core"
	"skipvector/internal/lincheck"
)

// coreOp shortens batch construction in the histories below.
type coreOp = core.BatchOp[int64]

// TestRebalanceLinearizability machine-checks point-op linearizability
// ACROSS forced mid-history table swaps. Worker procs hammer a 6-key space
// spanning the boundary; the migrator proc runs a full split or merge and
// files it as a KindRebalance event whose Pairs are what its pinned
// snapshots actually observed (via the copy-phase observer) and whose
// interval covers the acquisition. The checker then demands a single
// linearization explaining every op's result AND the migrator's view: a
// write lost across the swap, a resurrected delete, or a torn pre-copy all
// fail the whole history.
func TestRebalanceLinearizability(t *testing.T) {
	const (
		procs   = 3
		opsEach = 4
	)
	rounds := 120
	if testing.Short() {
		rounds = 30
	}
	seed := campaignSeed(0x11c4eb)
	for round := 0; round < rounds; round++ {
		s := newTest(t, tinyCfg(), []int64{3})
		rec := lincheck.NewRecorder()
		var wg sync.WaitGroup

		// Migrator proc: one full migration mid-history. Pairs collected by
		// the snapshot observer are exactly the pinned pre-copy view;
		// EndAt confines the interval to the acquisition (Begin → the end
		// of SplitShard/MergeShards, which covers the pin), mirroring how
		// KindSnapshot events are recorded.
		wg.Add(1)
		go func() {
			defer wg.Done()
			var pairs []lincheck.KV
			s.mig.Lock() // observer set/cleared under the migration lock
			s.snapObserver = func(k int64, v *int64) {
				pairs = append(pairs, lincheck.KV{K: k, V: *v})
			}
			s.mig.Unlock()
			var lo, hi int64
			inv := rec.Begin()
			if round%2 == 0 {
				// Split shard 1 ([3,+inf)) at 5: window is its interval.
				lo, hi = 3, MaxKey-1
				if _, err := s.SplitShard(1, 5); err != nil {
					t.Errorf("round %d: SplitShard: %v %s", round, err, seedNote(seed))
				}
			} else {
				// Merge the two shards: window is the whole key space.
				lo, hi = MinKey+1, MaxKey-1
				if _, err := s.MergeShards(0); err != nil {
					t.Errorf("round %d: MergeShards: %v %s", round, err, seedNote(seed))
				}
			}
			ret := rec.Now()
			s.mig.Lock()
			s.snapObserver = nil
			s.mig.Unlock()
			rec.EndAt(lincheck.Event{
				Proc: procs, Kind: lincheck.KindRebalance,
				Key: lo, Hi: hi, Pairs: pairs,
			}, inv, ret)
		}()

		for p := 0; p < procs; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(seed) + int64(round*100+p)))
				for i := 0; i < opsEach; i++ {
					k := int64(rng.Intn(6))
					switch rng.Intn(3) {
					case 0:
						v := int64(p*1000 + i)
						inv := rec.Begin()
						ok := s.Insert(k, &v)
						rec.End(lincheck.Event{Proc: p, Kind: lincheck.KindInsert, Key: k, Val: v, RetOK: ok}, inv)
					case 1:
						inv := rec.Begin()
						ok := s.Remove(k)
						rec.End(lincheck.Event{Proc: p, Kind: lincheck.KindRemove, Key: k, RetOK: ok}, inv)
					default:
						inv := rec.Begin()
						pv, ok := s.Lookup(k)
						var rv int64
						if ok {
							rv = *pv
						}
						rec.End(lincheck.Event{Proc: p, Kind: lincheck.KindLookup, Key: k, RetOK: ok, RetVal: rv}, inv)
					}
				}
			}(p)
		}
		wg.Wait()
		if ok, msg := lincheck.Check(rec.History()); !ok {
			t.Fatalf("round %d: %s %s", round, msg, seedNote(seed))
		}
		mustCheck(t, s)
	}
}

// TestRebalanceLinearizabilityWithBatches mixes atomic in-shard batches
// with a mid-history merge of the two shards they target, on single-layer
// shards so each in-shard part commits as one unit. Batches confined to a
// pre-merge shard stay single-shard through the swap (the merged shard
// contains both intervals), so every KindBatch event must linearize
// atomically whichever table it committed under — a batch half-applied
// across the swap, or outcomes computed against a frozen source, fail the
// history alongside the migrator's own KindRebalance view.
func TestRebalanceLinearizabilityWithBatches(t *testing.T) {
	cfg := tinyCfg()
	cfg.LayerCount = 1

	rounds := 80
	if testing.Short() {
		rounds = 20
	}
	seed := campaignSeed(0xbb4c4)
	for round := 0; round < rounds; round++ {
		// Shard 0 owns {2,3}, shard 1 owns {4,5} (keys below 2 unused).
		s := newTest(t, cfg, []int64{4})
		rec := lincheck.NewRecorder()
		var wg sync.WaitGroup

		wg.Add(1)
		go func() {
			defer wg.Done()
			var pairs []lincheck.KV
			s.mig.Lock()
			s.snapObserver = func(k int64, v *int64) {
				pairs = append(pairs, lincheck.KV{K: k, V: *v})
			}
			s.mig.Unlock()
			inv := rec.Begin()
			// Merge the two shards: window is the whole key space.
			if _, err := s.MergeShards(0); err != nil {
				t.Errorf("round %d: MergeShards: %v %s", round, err, seedNote(seed))
			}
			ret := rec.Now()
			s.mig.Lock()
			s.snapObserver = nil
			s.mig.Unlock()
			rec.EndAt(lincheck.Event{
				Proc: 2, Kind: lincheck.KindRebalance,
				Key: MinKey + 1, Hi: MaxKey - 1, Pairs: pairs,
			}, inv, ret)
		}()

		for p := 0; p < 2; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(seed) + int64(round*37+p)))
				for i := 0; i < 4; i++ {
					if rng.Intn(2) == 0 {
						// Batch confined to one pre-merge shard's key pair:
						// single-shard under every table the swap produces.
						base := int64(2 + 2*rng.Intn(2))
						n := 1 + rng.Intn(2)
						ops := make([]coreOp, n)
						vals := make([]int64, n)
						items := make([]lincheck.BatchItem, n)
						for b := range ops {
							bk := base + int64(rng.Intn(2))
							vals[b] = int64(p*1000 + i*10 + b)
							if rng.Intn(3) == 0 {
								ops[b] = coreOp{Key: bk, Del: true}
								items[b] = lincheck.BatchItem{Key: bk, Del: true}
							} else {
								ops[b] = coreOp{Key: bk, Val: &vals[b]}
								items[b] = lincheck.BatchItem{Key: bk, Val: vals[b]}
							}
						}
						inv := rec.Begin()
						res := s.ApplyBatch(ops)
						for b := range res {
							items[b].Outcome = lcOutcome(res[b].Outcome)
						}
						rec.End(lincheck.Event{Proc: p, Kind: lincheck.KindBatch, Items: items}, inv)
					} else {
						k := 2 + int64(rng.Intn(4))
						inv := rec.Begin()
						pv, ok := s.Lookup(k)
						var rv int64
						if ok {
							rv = *pv
						}
						rec.End(lincheck.Event{Proc: p, Kind: lincheck.KindLookup, Key: k, RetOK: ok, RetVal: rv}, inv)
					}
				}
			}(p)
		}
		wg.Wait()
		if ok, msg := lincheck.Check(rec.History()); !ok {
			t.Fatalf("round %d: %s %s", round, msg, seedNote(seed))
		}
		mustCheck(t, s)
	}
}
