package shard

import (
	"io"

	"skipvector/internal/telemetry"
)

// initMetrics builds the router's own registry. Everything is func-backed
// over always-on atomics, so the hot path pays nothing for exposition.
func (s *Sharded[V]) initMetrics() {
	r := telemetry.NewRegistry()
	s.reg = r
	r.GaugeFunc("sv_shard_count", "Shards in the current boundary table.",
		func() float64 { return float64(len(s.tab.Load().maps)) })
	r.CounterFunc("sv_shard_router_swaps_total",
		"Boundary-table publications (1 at construction; +1 per rebalance).", s.swaps.Load)
	r.CounterFunc("sv_shard_batch_fanout_total",
		"ApplyBatch calls partitioned across more than one shard.", s.fanouts.Load)
	r.CounterFunc("sv_shard_batch_fanout_parts_total",
		"Per-shard commit units issued by fanned-out batches.", s.fanoutParts.Load)
	r.CounterFunc("sv_shard_batch_single_total",
		"ApplyBatch calls resolved entirely inside one shard.", s.singleBatch.Load)
	r.CounterFunc("sv_shard_rebalance_splits_total",
		"Completed shard-split migrations.", s.rebSplits.Load)
	r.CounterFunc("sv_shard_rebalance_merges_total",
		"Completed shard-merge migrations.", s.rebMerges.Load)
	r.CounterFunc("sv_shard_rebalance_aborts_total",
		"Migrations aborted mid-flight and rolled back.", s.rebAborts.Load)
	r.CounterFunc("sv_shard_rebalance_keys_copied_total",
		"Pairs pre-copied through pinned snapshots by completed migrations.", s.rebCopied.Load)
	r.CounterFunc("sv_shard_rebalance_reconciled_total",
		"Sealed-window reconcile fixes (delta upserts plus deletes).", s.rebReconciled.Load)
	r.CounterFunc("sv_shard_rebalance_seal_ns_total",
		"Total nanoseconds the per-range write redirect was in force.", s.rebSealNanos.Load)
	r.CounterFunc("sv_shard_rebalance_seal_waits_total",
		"Writes that parked on a sealed (migrating) key range.", s.sealWaits.Load)
}

// Metrics rolls the router registry, every shard's labeled registry, and the
// process-global registry into one exposable view. Shard registries carry
// shard="i" const labels, so the N copies of each sv_* family appear as N
// distinct series under a single HELP/TYPE header.
func (s *Sharded[V]) Metrics() *telemetry.View {
	maps := s.tab.Load().maps
	regs := make([]*telemetry.Registry, 0, len(maps)+2)
	regs = append(regs, s.reg)
	for _, m := range maps {
		regs = append(regs, m.Registry())
	}
	regs = append(regs, telemetry.Global)
	return telemetry.NewView(regs...)
}

// Registry exposes the router's own registry for external composition.
func (s *Sharded[V]) Registry() *telemetry.Registry { return s.reg }

// WriteMetrics renders the combined catalog in Prometheus text exposition
// format.
func (s *Sharded[V]) WriteMetrics(w io.Writer) error {
	return s.Metrics().WritePrometheus(w)
}
