package shard

import "skipvector/internal/core"

// Handle is a per-goroutine session over the sharded map: it lazily pins one
// core handle per shard, so a caller with key locality gets the same search
// finger benefits a single-map Handle gives — the finger lives in the shard
// the caller's keys keep landing in. Like the core Handle it is NOT safe for
// concurrent use; open one per goroutine (the sharded map itself remains
// fully concurrent).
//
// A Handle caches the boundary table but REBINDS when a rebalance publishes
// a new one: every operation compares the cached table against the current
// pointer and, on a swap, re-keys its per-shard sessions to the new table —
// sessions over shards the migration did not touch survive with their search
// fingers intact; sessions over replaced shards are closed. Routing through
// a retired table would silently write into a frozen, unreferenced source
// map, so this check is what keeps handle writes linearizable across swaps.
type Handle[V any] struct {
	t      *table[V]
	s      *Sharded[V]
	shards []*core.Handle[V] // lazily opened, indexed by shard
}

// NewHandle opens a session against the current boundary table. Close it.
func (s *Sharded[V]) NewHandle() *Handle[V] {
	t := s.tab.Load()
	return &Handle[V]{t: t, s: s, shards: make([]*core.Handle[V], len(t.maps))}
}

// Close releases every per-shard session. Idempotent.
func (h *Handle[V]) Close() {
	for i, sh := range h.shards {
		if sh != nil {
			sh.Close()
			h.shards[i] = nil
		}
	}
}

// rebind refreshes the cached table if a rebalance swapped it, carrying the
// open per-shard sessions of every map that survives into the new table
// (same *core.Map, possibly at a new index) and closing the sessions of maps
// the migration retired. Swaps are rare, so the quadratic carry-over scan is
// irrelevant; the common case is one pointer compare.
func (h *Handle[V]) rebind() *table[V] {
	cur := h.s.tab.Load()
	if cur == h.t {
		return cur
	}
	old := h.shards
	oldMaps := h.t.maps
	h.shards = make([]*core.Handle[V], len(cur.maps))
	for i, m := range cur.maps {
		for j, om := range oldMaps {
			if om == m && old[j] != nil {
				h.shards[i] = old[j]
				old[j] = nil
				break
			}
		}
	}
	for _, sh := range old {
		if sh != nil {
			sh.Close()
		}
	}
	h.t = cur
	return cur
}

// at returns the pinned session for shard i, opening it on first use: a
// caller whose keys stay inside one shard never pays for contexts in the
// others.
func (h *Handle[V]) at(i int) *core.Handle[V] {
	if h.shards[i] == nil {
		h.shards[i] = h.t.maps[i].NewHandle()
	}
	return h.shards[i]
}

// writeEnter is Sharded.writeEnter for handle writes: gate in, rebind, park
// if k is sealed. The caller must exit the gate right after the shard write.
func (h *Handle[V]) writeEnter(k int64) (i int, gen uint64, stripe uint32) {
	stripe = stripeOf(k)
	for {
		gen = h.s.gate.enter(stripe)
		t := h.rebind()
		if t.sealCovers(k) {
			h.s.gate.exit(gen, stripe)
			h.s.sealWaits.Add(1)
			<-t.swapped
			continue
		}
		i = t.indexOf(k)
		t.load[i].inc(k)
		return
	}
}

// Lookup is Sharded.Lookup through the pinned sessions.
func (h *Handle[V]) Lookup(k int64) (*V, bool) {
	t := h.rebind()
	i := t.indexOf(k)
	t.load[i].inc(k)
	return h.at(i).Lookup(k)
}

// Contains is Sharded.Contains through the pinned sessions.
func (h *Handle[V]) Contains(k int64) bool {
	t := h.rebind()
	i := t.indexOf(k)
	t.load[i].inc(k)
	return h.at(i).Contains(k)
}

// Insert is Sharded.Insert through the pinned sessions.
func (h *Handle[V]) Insert(k int64, v *V) bool {
	i, gen, stripe := h.writeEnter(k)
	ok := h.at(i).Insert(k, v)
	h.s.gate.exit(gen, stripe)
	return ok
}

// Upsert is Sharded.Upsert through the pinned sessions.
func (h *Handle[V]) Upsert(k int64, v *V) bool {
	i, gen, stripe := h.writeEnter(k)
	ok := h.at(i).Upsert(k, v)
	h.s.gate.exit(gen, stripe)
	return ok
}

// Remove is Sharded.Remove through the pinned sessions.
func (h *Handle[V]) Remove(k int64) bool {
	i, gen, stripe := h.writeEnter(k)
	ok := h.at(i).Remove(k)
	h.s.gate.exit(gen, stripe)
	return ok
}

// ApplyBatch is Sharded.ApplyBatch with the single-shard fast path routed
// through the pinned session (finger-resumable); batches that span shards
// fall back to the map-level fan-out, whose parallel parts cannot share one
// session anyway. Like every write it runs gated and parks on a sealed
// range. The seal always covers whole shard intervals of the table carrying
// it, so for a single-shard batch checking one key decides for all.
func (h *Handle[V]) ApplyBatch(ops []core.BatchOp[V]) []core.BatchResult {
	if len(ops) == 0 {
		return nil
	}
	stripe := stripeOf(ops[0].Key)
	for {
		gen := h.s.gate.enter(stripe)
		t := h.rebind()
		si := t.indexOf(ops[0].Key)
		for i := 1; i < len(ops); i++ {
			if t.indexOf(ops[i].Key) != si {
				h.s.gate.exit(gen, stripe)
				return h.s.ApplyBatch(ops)
			}
		}
		if t.sealCovers(ops[0].Key) {
			h.s.gate.exit(gen, stripe)
			h.s.sealWaits.Add(1)
			<-t.swapped
			continue
		}
		h.s.singleBatch.Add(1)
		t.load[si].add(ops[0].Key, int64(len(ops)))
		res := h.at(si).ApplyBatch(ops)
		h.s.gate.exit(gen, stripe)
		return res
	}
}

// Floor is Sharded.Floor through the pinned sessions.
func (h *Handle[V]) Floor(k int64) (int64, *V, bool) {
	t := h.rebind()
	t.load[t.indexOf(k)].inc(k)
	for i := t.indexOf(k); i >= 0; i-- {
		if fk, v, ok := h.at(i).Floor(k); ok {
			return fk, v, true
		}
	}
	return 0, nil, false
}

// Ceiling is Sharded.Ceiling through the pinned sessions.
func (h *Handle[V]) Ceiling(k int64) (int64, *V, bool) {
	t := h.rebind()
	t.load[t.indexOf(k)].inc(k)
	for i := t.indexOf(k); i < len(t.maps); i++ {
		if ck, v, ok := h.at(i).Ceiling(k); ok {
			return ck, v, true
		}
	}
	return 0, nil, false
}

// First returns the smallest key across all shards.
func (h *Handle[V]) First() (int64, *V, bool) {
	t := h.rebind()
	for i := range t.maps {
		if k, v, ok := h.at(i).First(); ok {
			return k, v, true
		}
	}
	return 0, nil, false
}

// Last returns the largest key across all shards.
func (h *Handle[V]) Last() (int64, *V, bool) {
	t := h.rebind()
	for i := len(t.maps) - 1; i >= 0; i-- {
		if k, v, ok := h.at(i).Last(); ok {
			return k, v, true
		}
	}
	return 0, nil, false
}
