package shard

import "skipvector/internal/core"

// Handle is a per-goroutine session over the sharded map: it lazily pins one
// core handle per shard, so a caller with key locality gets the same search
// finger benefits a single-map Handle gives — the finger lives in the shard
// the caller's keys keep landing in. Like the core Handle it is NOT safe for
// concurrent use; open one per goroutine (the sharded map itself remains
// fully concurrent).
//
// A Handle pins the boundary table it was opened against, so its routing is
// stable for its whole lifetime even across a concurrent rebalance swap.
type Handle[V any] struct {
	t      *table[V]
	s      *Sharded[V]
	shards []*core.Handle[V] // lazily opened, indexed by shard
}

// NewHandle opens a session against the current boundary table. Close it.
func (s *Sharded[V]) NewHandle() *Handle[V] {
	t := s.tab.Load()
	return &Handle[V]{t: t, s: s, shards: make([]*core.Handle[V], len(t.maps))}
}

// Close releases every per-shard session. Idempotent.
func (h *Handle[V]) Close() {
	for i, sh := range h.shards {
		if sh != nil {
			sh.Close()
			h.shards[i] = nil
		}
	}
}

// at returns the pinned session for shard i, opening it on first use: a
// caller whose keys stay inside one shard never pays for contexts in the
// others.
func (h *Handle[V]) at(i int) *core.Handle[V] {
	if h.shards[i] == nil {
		h.shards[i] = h.t.maps[i].NewHandle()
	}
	return h.shards[i]
}

// Lookup is Sharded.Lookup through the pinned sessions.
func (h *Handle[V]) Lookup(k int64) (*V, bool) {
	return h.at(h.t.indexOf(k)).Lookup(k)
}

// Contains is Sharded.Contains through the pinned sessions.
func (h *Handle[V]) Contains(k int64) bool {
	return h.at(h.t.indexOf(k)).Contains(k)
}

// Insert is Sharded.Insert through the pinned sessions.
func (h *Handle[V]) Insert(k int64, v *V) bool {
	return h.at(h.t.indexOf(k)).Insert(k, v)
}

// Upsert is Sharded.Upsert through the pinned sessions.
func (h *Handle[V]) Upsert(k int64, v *V) bool {
	return h.at(h.t.indexOf(k)).Upsert(k, v)
}

// Remove is Sharded.Remove through the pinned sessions.
func (h *Handle[V]) Remove(k int64) bool {
	return h.at(h.t.indexOf(k)).Remove(k)
}

// ApplyBatch is Sharded.ApplyBatch with the single-shard fast path routed
// through the pinned session (finger-resumable); batches that span shards
// fall back to the map-level fan-out, whose parallel parts cannot share one
// session anyway.
func (h *Handle[V]) ApplyBatch(ops []core.BatchOp[V]) []core.BatchResult {
	if len(ops) == 0 {
		return nil
	}
	si := h.t.indexOf(ops[0].Key)
	for i := 1; i < len(ops); i++ {
		if h.t.indexOf(ops[i].Key) != si {
			return h.s.ApplyBatch(ops)
		}
	}
	h.s.singleBatch.Add(1)
	return h.at(si).ApplyBatch(ops)
}

// Floor is Sharded.Floor through the pinned sessions.
func (h *Handle[V]) Floor(k int64) (int64, *V, bool) {
	for i := h.t.indexOf(k); i >= 0; i-- {
		if fk, v, ok := h.at(i).Floor(k); ok {
			return fk, v, true
		}
	}
	return 0, nil, false
}

// Ceiling is Sharded.Ceiling through the pinned sessions.
func (h *Handle[V]) Ceiling(k int64) (int64, *V, bool) {
	for i := h.t.indexOf(k); i < len(h.t.maps); i++ {
		if ck, v, ok := h.at(i).Ceiling(k); ok {
			return ck, v, true
		}
	}
	return 0, nil, false
}

// First returns the smallest key across all shards.
func (h *Handle[V]) First() (int64, *V, bool) {
	for i := range h.t.maps {
		if k, v, ok := h.at(i).First(); ok {
			return k, v, true
		}
	}
	return 0, nil, false
}

// Last returns the largest key across all shards.
func (h *Handle[V]) Last() (int64, *V, bool) {
	for i := len(h.t.maps) - 1; i >= 0; i-- {
		if k, v, ok := h.at(i).Last(); ok {
			return k, v, true
		}
	}
	return 0, nil, false
}
