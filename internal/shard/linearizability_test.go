package shard

import (
	"math/rand"
	"sync"
	"testing"

	"skipvector/internal/core"
	"skipvector/internal/lincheck"
)

// This file machine-checks the sharded facade's consistency contract at both
// scopes the package doc promises:
//
//   - Point operations are linearizable across the whole sharded map: the
//     router adds one atomic table load, and each op then linearizes inside
//     its shard, so cross-boundary concurrent histories must still pass the
//     whole-map checker.
//   - Batches and range windows confined to ONE shard inherit that shard's
//     atomicity (a single-chunk config commits a batch as one unit).
//   - Cross-shard batches are NOT atomic as a unit but ARE per-key exact:
//     sequential replay through the lincheck model pins outcomes and final
//     state of the fan-out paths (contiguous and scattered).

// lcOutcome converts a core batch outcome to the lincheck enum.
func lcOutcome(o core.BatchOutcome) lincheck.BatchOutcome {
	switch o {
	case core.BatchInserted:
		return lincheck.BatchInserted
	case core.BatchUpdated:
		return lincheck.BatchUpdated
	case core.BatchRemoved:
		return lincheck.BatchRemoved
	case core.BatchAbsent:
		return lincheck.BatchAbsent
	case core.BatchExists:
		return lincheck.BatchExists
	default:
		return 0
	}
}

// TestShardedLinearizabilityPointOps hammers a 2-shard map whose boundary
// sits in the middle of a 4-key space, so every history mixes ops that route
// to different shards. The whole history must linearize: routing is a pure
// function of the key, so per-shard linearizability composes to whole-map
// linearizability for single-key ops.
func TestShardedLinearizabilityPointOps(t *testing.T) {
	const (
		rounds   = 60
		procs    = 3
		opsEach  = 4
		keySpace = 4
	)
	for round := 0; round < rounds; round++ {
		s := newTest(t, tinyCfg(), []int64{2})
		rec := lincheck.NewRecorder()
		var wg sync.WaitGroup
		for p := 0; p < procs; p++ {
			wg.Add(1)
			go func(p int, seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for i := 0; i < opsEach; i++ {
					k := int64(rng.Intn(keySpace))
					switch rng.Intn(3) {
					case 0:
						v := int64(p*1000 + i)
						inv := rec.Begin()
						ok := s.Insert(k, &v)
						rec.End(lincheck.Event{
							Proc: p, Kind: lincheck.KindInsert,
							Key: k, Val: v, RetOK: ok,
						}, inv)
					case 1:
						inv := rec.Begin()
						ok := s.Remove(k)
						rec.End(lincheck.Event{
							Proc: p, Kind: lincheck.KindRemove,
							Key: k, RetOK: ok,
						}, inv)
					default:
						inv := rec.Begin()
						pv, ok := s.Lookup(k)
						var rv int64
						if ok {
							rv = *pv
						}
						rec.End(lincheck.Event{
							Proc: p, Kind: lincheck.KindLookup,
							Key: k, RetOK: ok, RetVal: rv,
						}, inv)
					}
				}
			}(p, int64(round*100+p))
		}
		wg.Wait()
		if ok, msg := lincheck.Check(rec.History()); !ok {
			t.Fatalf("round %d: %s", round, msg)
		}
		mustCheck(t, s)
	}
}

// TestShardedLinearizabilityConfinedBatches runs concurrent batches and range
// queries each confined to a single shard, on single-layer shards (every
// shard's head chunk owns its whole slice, so an in-shard batch commits
// atomically). With confinement, KindBatch and KindRangeQuery events must
// linearize as single atomic events even while other procs hit other shards.
func TestShardedLinearizabilityConfinedBatches(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.LayerCount = 1

	const (
		rounds  = 60
		procs   = 3
		opsEach = 4
		// Two shards, two keys each: shard 0 owns {0,1}, shard 1 owns {2,3}.
		perShard = 2
	)
	for round := 0; round < rounds; round++ {
		s := newTest(t, cfg, []int64{perShard})
		rec := lincheck.NewRecorder()
		var wg sync.WaitGroup
		for p := 0; p < procs; p++ {
			wg.Add(1)
			go func(p int, seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for i := 0; i < opsEach; i++ {
					// Pick a shard, then keep every key of this op inside it.
					base := int64(rng.Intn(2)) * perShard
					k := base + int64(rng.Intn(perShard))
					switch rng.Intn(5) {
					case 0:
						v := int64(p*1000 + i)
						inv := rec.Begin()
						ok := s.Insert(k, &v)
						rec.End(lincheck.Event{Proc: p, Kind: lincheck.KindInsert, Key: k, Val: v, RetOK: ok}, inv)
					case 1:
						inv := rec.Begin()
						ok := s.Remove(k)
						rec.End(lincheck.Event{Proc: p, Kind: lincheck.KindRemove, Key: k, RetOK: ok}, inv)
					case 2:
						inv := rec.Begin()
						pv, ok := s.Lookup(k)
						var rv int64
						if ok {
							rv = *pv
						}
						rec.End(lincheck.Event{Proc: p, Kind: lincheck.KindLookup, Key: k, RetOK: ok, RetVal: rv}, inv)
					case 3:
						// In-shard window observer.
						lo, hi := base, base+perShard-1
						inv := rec.Begin()
						var pairs []lincheck.KV
						s.RangeQuery(lo, hi, func(qk int64, qv *int64) bool {
							pairs = append(pairs, lincheck.KV{K: qk, V: *qv})
							return true
						})
						rec.End(lincheck.Event{Proc: p, Kind: lincheck.KindRangeQuery, Key: lo, Hi: hi, Pairs: pairs}, inv)
					default:
						// In-shard batch: all keys share the op's shard.
						n := 1 + rng.Intn(3)
						ops := make([]core.BatchOp[int64], n)
						vals := make([]int64, n)
						items := make([]lincheck.BatchItem, n)
						for b := range ops {
							bk := base + int64(rng.Intn(perShard))
							vals[b] = int64(p*1000 + i*10 + b)
							switch rng.Intn(4) {
							case 0:
								ops[b] = core.BatchOp[int64]{Key: bk, Del: true}
								items[b] = lincheck.BatchItem{Key: bk, Del: true}
							case 1:
								ops[b] = core.BatchOp[int64]{Key: bk, Val: &vals[b], InsertOnly: true}
								items[b] = lincheck.BatchItem{Key: bk, Val: vals[b], InsertOnly: true}
							default:
								ops[b] = core.BatchOp[int64]{Key: bk, Val: &vals[b]}
								items[b] = lincheck.BatchItem{Key: bk, Val: vals[b]}
							}
						}
						inv := rec.Begin()
						res := s.ApplyBatch(ops)
						for b := range res {
							items[b].Outcome = lcOutcome(res[b].Outcome)
						}
						rec.End(lincheck.Event{Proc: p, Kind: lincheck.KindBatch, Items: items}, inv)
					}
				}
			}(p, int64(round*131+p))
		}
		wg.Wait()
		if ok, msg := lincheck.Check(rec.History()); !ok {
			t.Fatalf("round %d: %s", round, msg)
		}
		mustCheck(t, s)
	}
}

// TestShardedCrossShardBatchSequentialLincheck replays single-threaded
// batches that deliberately span shards — sorted (contiguous fan-out) and
// shuffled with duplicate keys (scatter fan-out) — through the lincheck
// model. Atomicity is moot with one thread; what this pins is that the
// routed, partitioned, parallel-committed batch produces exactly the
// sequential specification's per-op outcomes and final state, including
// last-write-wins for duplicate keys that stay in one shard.
func TestShardedCrossShardBatchSequentialLincheck(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const keySpace = 24
	for i := 0; i < 40; i++ {
		s := newTest(t, tinyCfg(), []int64{6, 12, 18})
		rec := lincheck.NewRecorder()

		// Opening bulk batch in sorted key order: the contiguous path.
		bulk := make([]core.BatchOp[int64], 16)
		bulkVals := make([]int64, len(bulk))
		bulkItems := make([]lincheck.BatchItem, len(bulk))
		k := int64(0)
		for b := range bulk {
			k += 1 + int64(rng.Intn(2)) // ascending, spans all four shards
			if k >= keySpace {
				k = keySpace - 1
			}
			bulkVals[b] = int64(i*1000 + b)
			bulk[b] = core.BatchOp[int64]{Key: k, Val: &bulkVals[b]}
			bulkItems[b] = lincheck.BatchItem{Key: k, Val: bulkVals[b]}
		}
		inv := rec.Begin()
		res := s.ApplyBatch(bulk)
		for b := range res {
			bulkItems[b].Outcome = lcOutcome(res[b].Outcome)
		}
		rec.End(lincheck.Event{Kind: lincheck.KindBatch, Items: bulkItems}, inv)

		// Mixed shuffled batches with duplicates: the scatter path.
		for j := 0; j < 6; j++ {
			n := 1 + rng.Intn(4)
			ops := make([]core.BatchOp[int64], n)
			vals := make([]int64, n)
			items := make([]lincheck.BatchItem, n)
			for b := range ops {
				bk := int64(rng.Intn(keySpace))
				vals[b] = int64(i*1000 + j*100 + b)
				switch rng.Intn(4) {
				case 0:
					ops[b] = core.BatchOp[int64]{Key: bk, Del: true}
					items[b] = lincheck.BatchItem{Key: bk, Del: true}
				case 1:
					ops[b] = core.BatchOp[int64]{Key: bk, Val: &vals[b], InsertOnly: true}
					items[b] = lincheck.BatchItem{Key: bk, Val: vals[b], InsertOnly: true}
				default:
					ops[b] = core.BatchOp[int64]{Key: bk, Val: &vals[b]}
					items[b] = lincheck.BatchItem{Key: bk, Val: vals[b]}
				}
			}
			inv := rec.Begin()
			res := s.ApplyBatch(ops)
			for b := range res {
				items[b].Outcome = lcOutcome(res[b].Outcome)
			}
			rec.End(lincheck.Event{Kind: lincheck.KindBatch, Items: items}, inv)
		}

		// Closing stitched range query pins the final state in full.
		inv = rec.Begin()
		var pairs []lincheck.KV
		s.RangeQuery(0, keySpace, func(qk int64, qv *int64) bool {
			pairs = append(pairs, lincheck.KV{K: qk, V: *qv})
			return true
		})
		rec.End(lincheck.Event{Kind: lincheck.KindRangeQuery, Key: 0, Hi: keySpace, Pairs: pairs}, inv)

		if ok, msg := lincheck.Check(rec.History()); !ok {
			t.Fatalf("window %d: %s", i, msg)
		}
		mustCheck(t, s)
	}
}
