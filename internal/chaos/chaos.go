// Package chaos is a deterministic fault-injection layer for the skip
// vector's concurrency-critical paths. The correctness argument of the
// structure (Section IV of the paper) hinges on rare interleavings —
// seqlock validation failures mid-traversal, freeze/orphan transitions
// during splits and merges, hazard-pointer scans racing retirement — that
// ordinary test schedules almost never exercise. This package lets tests
// force those interleavings on demand.
//
// Production code calls two hooks at its injection sites:
//
//   - Step(site): may yield the processor or sleep briefly, widening the
//     window in which the calling goroutine is exposed mid-transition.
//   - Fail(site) bool: like Step, and additionally reports whether the
//     caller should simulate a failure (a spurious validation miss, a
//     failed freeze/upgrade, an early hazard scan). Forced failures are
//     only wired into sites where the caller's failure path is a retry, so
//     injection can never corrupt the structure — it only drives execution
//     down the restart/cleanup paths that real races would.
//
// When disabled (the default), both hooks reduce to a single atomic load
// and a predicted branch, so the layer costs nothing measurable on the hot
// paths. Tests enable it with Enable(Config) and must pair that with
// Disable(), which returns a Report of everything that was injected.
//
// Determinism: every decision is a pure function of (Config.Seed, the
// global step counter, the site). A single-goroutine run therefore
// replays its exact injection schedule from the seed alone; concurrent
// runs replay the same decision *sequence* (decision n is identical across
// runs), with the goroutine→step assignment following the actual
// interleaving. Reproducing a failure is: re-run with the same seed and
// tuning, which re-applies the same perturbation schedule.
package chaos

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// SeedFromEnv returns the seed a stress campaign should run with: the
// SV_SEED environment variable when set (decimal, or any base strconv's
// auto-detection accepts, e.g. 0x-prefixed hex), otherwise def. Harnesses
// that derive their chaos/lincheck schedules through this helper — and log
// the effective seed on failure — make every campaign failure replayable
// with SV_SEED=<logged value>. A malformed override is ignored in favor of
// def rather than silently zeroing the schedule.
func SeedFromEnv(def uint64) uint64 {
	if s := os.Getenv("SV_SEED"); s != "" {
		if v, err := strconv.ParseUint(s, 0, 64); err == nil {
			return v
		}
	}
	return def
}

// Site identifies an injection point in the production code.
type Site uint8

// Injection sites. The Seqlock* sites live in internal/seqlock, the
// Hazard* sites in internal/hazard, and the Core* sites at the structural
// transitions in internal/core.
const (
	// SeqlockRead is hit on every ReadVersion; a forced failure makes the
	// snapshot attempt report a held lock, restarting the operation.
	SeqlockRead Site = iota
	// SeqlockValidate is hit on every Validate; a forced failure reports a
	// changed lock word, restarting the operation.
	SeqlockValidate
	// SeqlockUpgrade is hit on TryUpgrade (forced failure → CAS loss) and,
	// perturbation-only, on UpgradeFrozen.
	SeqlockUpgrade
	// SeqlockFreeze is hit on TryFreeze; a forced failure loses the CAS.
	SeqlockFreeze
	// SeqlockAcquire perturbs blocking Acquire before it takes the lock.
	SeqlockAcquire
	// HazardRetire is hit on Retire; a forced failure triggers an early
	// scan, racing reclamation against in-flight traversals.
	HazardRetire
	// HazardScan perturbs the window between a scan's hazard snapshot and
	// its reclamation sweep.
	HazardScan
	// CoreFreeze perturbs Insert right after it froze a node, widening the
	// frozen window other operations must navigate around.
	CoreFreeze
	// CoreSplit perturbs splits: between per-layer publications of a
	// multi-layer insert and before a capacity split links its orphan.
	CoreSplit
	// CoreMerge perturbs mergeOrphan between lock acquisition and the
	// absorb/unlink writes.
	CoreMerge
	// CoreOrphan perturbs Remove's hand-over-hand descent right after a
	// child is marked an orphan and before its parent is released.
	CoreOrphan
	// CoreFinger is hit when an operation tries to resume from its search
	// finger, between publishing the hazard pointer and revalidating the
	// remembered seqlock version; a forced failure simulates the node having
	// changed, driving the finger-miss fallback to the full descent.
	CoreFinger
	// CoreBatch is hit in ApplyBatch's group-commit path: before a group's
	// descent (a forced failure restarts the group after its predecessor
	// groups already committed), after the group's write lock is taken but
	// before any slot is applied (a forced failure aborts and restarts the
	// group — the window where a torn batch would be observable if groups
	// were not individually atomic), and perturbation-only between the
	// multi-slot applications inside one held lock.
	CoreBatch
	// CoreSnapshot is hit in the snapshot subsystem: on every node visit of
	// a snapshot scan (a forced failure simulates a torn optimistic read of
	// the node, driving the local re-read loop — never a full restart), and
	// perturbation-only inside the copy-on-write publication window between
	// the epoch advance and the version-store insert.
	CoreSnapshot
	// WALTornWrite is consulted by the WAL's crash-simulating filesystem when
	// it discards unsynced bytes: a forced failure tears the last unsynced
	// write to a byte prefix instead of dropping or keeping it whole, so
	// recovery must truncate a mid-frame tail. Failure here drives the
	// recovery/truncation path, never corruption of a synced prefix.
	WALTornWrite
	// WALCrashPoint perturbs the WAL's crash-critical transitions: before and
	// after an fsync, between a checkpoint's segment writes, and on either
	// side of the manifest rename that commits a compaction. Perturbation-only
	// in production code; the crash campaign schedules actual kills at these
	// same boundaries through the injected filesystem.
	WALCrashPoint
	// ShardRebalance is hit at every step boundary of a shard migration
	// (destination build, snapshot pin, pre-copy batches, seal publication,
	// writer drain, sealed reconciliation, final table publication): a forced
	// failure makes the migrator abort and roll back at exactly that step —
	// unsealing if it had sealed, dropping the half-built destination shards
	// — so injection drives the abort/retry paths a mid-migration crash or
	// planner cancellation would. Aborts never lose data: the source shards
	// stay authoritative until the final publication succeeds.
	ShardRebalance

	// NumSites is the number of injection sites (array-sizing constant).
	NumSites
)

// String names the site for reports and failure messages.
func (s Site) String() string {
	switch s {
	case SeqlockRead:
		return "seqlock.read"
	case SeqlockValidate:
		return "seqlock.validate"
	case SeqlockUpgrade:
		return "seqlock.upgrade"
	case SeqlockFreeze:
		return "seqlock.freeze"
	case SeqlockAcquire:
		return "seqlock.acquire"
	case HazardRetire:
		return "hazard.retire"
	case HazardScan:
		return "hazard.scan"
	case CoreFreeze:
		return "core.freeze"
	case CoreSplit:
		return "core.split"
	case CoreMerge:
		return "core.merge"
	case CoreOrphan:
		return "core.orphan"
	case CoreFinger:
		return "core.finger"
	case CoreBatch:
		return "core.batch"
	case CoreSnapshot:
		return "core.snapshot"
	case WALTornWrite:
		return "wal.tornwrite"
	case WALCrashPoint:
		return "wal.crashpoint"
	case ShardRebalance:
		return "shard.rebalance"
	default:
		return fmt.Sprintf("Site(%d)", int(s))
	}
}

// SiteMask selects which sites an injector acts on.
type SiteMask uint32

// AllSites enables every injection site.
func AllSites() SiteMask { return SiteMask(1)<<NumSites - 1 }

// MaskOf builds a mask from individual sites.
func MaskOf(sites ...Site) SiteMask {
	var m SiteMask
	for _, s := range sites {
		m |= SiteMask(1) << s
	}
	return m
}

// Action is what the injector decided to do at one hook hit.
type Action uint8

// Actions, in decision-priority order.
const (
	ActionNone  Action = iota
	ActionFail         // simulate a failure (Fail sites only)
	ActionDelay        // sleep Config.Delay
	ActionYield        // runtime.Gosched
)

func (a Action) String() string {
	switch a {
	case ActionNone:
		return "none"
	case ActionFail:
		return "fail"
	case ActionDelay:
		return "delay"
	case ActionYield:
		return "yield"
	default:
		return fmt.Sprintf("Action(%d)", int(a))
	}
}

// Config tunes an injection run. The *OneIn fields are probability
// denominators: each hook hit draws an independent 1-in-N chance per
// action; zero disables that action entirely.
type Config struct {
	// Seed makes the decision schedule reproducible. Zero is replaced with
	// a fixed constant so an empty Config is still deterministic.
	Seed uint64
	// FailOneIn forces a failure on ~1/N of Fail-site hits.
	FailOneIn uint64
	// DelayOneIn sleeps Delay on ~1/N of hits.
	DelayOneIn uint64
	// YieldOneIn yields the processor on ~1/N of hits.
	YieldOneIn uint64
	// Delay is the ActionDelay sleep length (default 20µs).
	Delay time.Duration
	// Sites restricts injection to the masked sites (default: all).
	Sites SiteMask
	// Record captures every non-none decision in the Report's Trace.
	Record bool
}

// SiteStats counts what happened at one site during a run.
type SiteStats struct {
	Calls  uint64 // hook hits (after site masking)
	Fails  uint64
	Delays uint64
	Yields uint64
}

// Decision is one recorded injection: at global step Step, site Site took
// action Action.
type Decision struct {
	Step   uint64
	Site   Site
	Action Action
}

// Report summarizes an injection run; returned by Disable.
type Report struct {
	Seed  uint64
	Steps uint64 // total hook hits across all sites
	Sites [NumSites]SiteStats
	Trace []Decision // non-none decisions, when Config.Record was set
}

// Fails returns the total number of forced failures across all sites.
func (r Report) Fails() uint64 {
	var n uint64
	for _, s := range r.Sites {
		n += s.Fails
	}
	return n
}

// Perturbations returns the total number of yields and delays.
func (r Report) Perturbations() uint64 {
	var n uint64
	for _, s := range r.Sites {
		n += s.Yields + s.Delays
	}
	return n
}

// String renders a per-site summary for test logs.
func (r Report) String() string {
	out := fmt.Sprintf("chaos seed=%#x steps=%d", r.Seed, r.Steps)
	for i, s := range r.Sites {
		if s.Calls == 0 {
			continue
		}
		out += fmt.Sprintf(" %v{calls=%d fails=%d delays=%d yields=%d}",
			Site(i), s.Calls, s.Fails, s.Delays, s.Yields)
	}
	return out
}

// injector is the state of one enabled run.
type injector struct {
	cfg   Config
	steps atomic.Uint64
	stats [NumSites]struct {
		calls, fails, delays, yields atomic.Uint64
	}
	mu    sync.Mutex
	trace []Decision
}

var (
	// enabled gates the hooks; it is the only state touched when disabled.
	enabled atomic.Bool
	active  atomic.Pointer[injector]
	adminMu sync.Mutex // serializes Enable/Disable
)

// Enabled reports whether an injector is active.
func Enabled() bool { return enabled.Load() }

// Enable installs an injector. It panics if one is already active: chaos
// is process-global, so tests must not overlap enabled regions.
func Enable(cfg Config) {
	adminMu.Lock()
	defer adminMu.Unlock()
	if enabled.Load() {
		panic("chaos: Enable while already enabled")
	}
	if cfg.Seed == 0 {
		cfg.Seed = 0xc4a05c4a05c4a05
	}
	if cfg.Sites == 0 {
		cfg.Sites = AllSites()
	}
	if cfg.Delay <= 0 {
		cfg.Delay = 20 * time.Microsecond
	}
	active.Store(&injector{cfg: cfg})
	enabled.Store(true)
}

// Disable removes the active injector and returns its report. It panics
// when no injector is active.
func Disable() Report {
	adminMu.Lock()
	defer adminMu.Unlock()
	in := active.Load()
	if in == nil {
		panic("chaos: Disable while not enabled")
	}
	enabled.Store(false)
	active.Store(nil)
	// Hooks that passed the enabled check before the store may still be
	// finishing inside in.do; they only touch in's own fields, which stay
	// valid, so the report below is at worst a few steps short.
	return in.report()
}

// Step gives the injector a chance to perturb scheduling at site. It never
// forces a failure. No-op (one atomic load) when chaos is disabled.
func Step(site Site) {
	if !enabled.Load() {
		return
	}
	if in := active.Load(); in != nil {
		in.do(site, false)
	}
}

// Fail perturbs like Step and reports whether the caller should simulate a
// failure at site. Always false when chaos is disabled.
func Fail(site Site) bool {
	if !enabled.Load() {
		return false
	}
	if in := active.Load(); in != nil {
		return in.do(site, true)
	}
	return false
}

// do draws the deterministic decision for one hook hit and applies its
// side effect. It returns true when the caller should simulate a failure.
func (in *injector) do(site Site, allowFail bool) bool {
	if in.cfg.Sites&(SiteMask(1)<<site) == 0 {
		return false
	}
	n := in.steps.Add(1)
	st := &in.stats[site]
	st.calls.Add(1)

	// Decision = pure function of (seed, step, site). Independent bit
	// ranges of one mixed word drive the per-action draws.
	h := mix64(in.cfg.Seed ^ n*0x9e3779b97f4a7c15 ^ uint64(site)<<56)
	act := ActionNone
	switch {
	case allowFail && in.cfg.FailOneIn > 0 && h%in.cfg.FailOneIn == 0:
		act = ActionFail
		st.fails.Add(1)
	case in.cfg.DelayOneIn > 0 && (h>>21)%in.cfg.DelayOneIn == 0:
		act = ActionDelay
		st.delays.Add(1)
	case in.cfg.YieldOneIn > 0 && (h>>42)%in.cfg.YieldOneIn == 0:
		act = ActionYield
		st.yields.Add(1)
	}
	if in.cfg.Record && act != ActionNone {
		in.mu.Lock()
		in.trace = append(in.trace, Decision{Step: n, Site: site, Action: act})
		in.mu.Unlock()
	}
	switch act {
	case ActionDelay:
		time.Sleep(in.cfg.Delay)
	case ActionYield:
		runtime.Gosched()
	}
	return act == ActionFail
}

func (in *injector) report() Report {
	r := Report{Seed: in.cfg.Seed, Steps: in.steps.Load()}
	for i := range in.stats {
		r.Sites[i] = SiteStats{
			Calls:  in.stats[i].calls.Load(),
			Fails:  in.stats[i].fails.Load(),
			Delays: in.stats[i].delays.Load(),
			Yields: in.stats[i].yields.Load(),
		}
	}
	in.mu.Lock()
	r.Trace = append([]Decision(nil), in.trace...)
	in.mu.Unlock()
	return r
}

// mix64 is the SplitMix64 finalizer: a cheap, well-distributed bijection.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
